type violation = Overflow | Underflow

let violation_name = function Overflow -> "overflow" | Underflow -> "underflow"

type scenario = {
  label : string;
  scen : Simnet.Scenario.t;
  transient : float;
  underflow_frac : float;
}

let of_scenario ?transient ?(underflow_frac = 0.9) ~label scen =
  let scen = Simnet.Scenario.validate scen in
  let t_end = scen.Simnet.Scenario.t_end in
  let transient = match transient with Some t -> t | None -> t_end /. 2. in
  if transient < 0. || transient >= t_end then
    invalid_arg "Resilience.of_scenario: transient must be in [0, t_end)";
  if underflow_frac <= 0. || underflow_frac > 1. then
    invalid_arg "Resilience.of_scenario: underflow_frac must be in (0, 1]";
  if scen.Simnet.Scenario.replicas <> 1 then
    invalid_arg "Resilience.of_scenario: margins probe a single replica";
  (match scen.Simnet.Scenario.fault with
  | Some _ ->
      invalid_arg "Resilience.of_scenario: the probe owns the fault plan"
  | None -> ());
  { label; scen; transient; underflow_frac }

let scenario ?(t_end = 20e-3) ?transient ?underflow_frac ~label params =
  of_scenario ?transient ?underflow_frac ~label
    (Simnet.Scenario.bcn ~t_end params)

let paper_cases ?t_end ?transient () =
  let base = Fluid.Params.default in
  let case1 =
    Fluid.Params.with_buffer base (2. *. Fluid.Criterion.required_buffer base)
  in
  let case2 = Fluid.Params.with_sampling ~w:8000. base in
  let case3 =
    Fluid.Params.with_sampling ~w:3000. (Fluid.Params.with_gains ~gd:1. base)
  in
  [
    scenario ?t_end ?transient ~label:"case1" case1;
    scenario ?t_end ?transient ~label:"case2" case2;
    scenario ?t_end ?transient ~label:"case3" case3;
  ]

let protocol_cases ?(t_end = 20e-3) ?transient () =
  let p = Fluid.Params.default in
  [
    of_scenario ?transient ~label:"bcn" (Simnet.Scenario.bcn ~t_end p);
    of_scenario ?transient ~label:"e2cm" (Simnet.Scenario.e2cm ~t_end p);
    of_scenario ?transient ~label:"fera" (Simnet.Scenario.fera ~t_end p);
    of_scenario ?transient ~label:"rcp" (Simnet.Scenario.rcp ~t_end p);
  ]

type axis =
  | Bcn_loss
  | Pause_loss
  | Flap_depth of { period : float; duty : float }

let axis_name = function
  | Bcn_loss -> "bcn_loss"
  | Pause_loss -> "pause_loss"
  | Flap_depth _ -> "flap_depth"

let max_severity = function
  | Bcn_loss | Pause_loss -> 1.
  | Flap_depth _ -> 0.95

let plan_add plan axis ~severity ~t_end =
  match axis with
  | Bcn_loss ->
      let l = Plan.loss_of_severity severity in
      Plan.with_bcn_loss ~pos:l ~neg:l plan
  | Pause_loss -> Plan.with_pause_loss plan (Plan.loss_of_severity severity)
  | Flap_depth { period; duty } ->
      Plan.with_capacity plan
        (Plan.square_flaps ~period ~duty ~depth:severity ~t_end)

let plan_of axis ~severity ~seed ~t_end =
  plan_add (Plan.with_seed Plan.none seed) axis ~severity ~t_end

let supports sc ax =
  let t_end = sc.scen.Simnet.Scenario.t_end in
  let plan = plan_of ax ~severity:(0.5 *. max_severity ax) ~seed:0 ~t_end in
  match Simnet.Scenario.validate (Simnet.Scenario.with_fault sc.scen plan) with
  | _ -> true
  | exception Invalid_argument _ -> false

let baseline sc = Exec.run ~jobs:1 sc.scen

type probe_summary = {
  utilization : float;
  drops : int;
  q_tail_max : float;
}

type memo = {
  lookup : string -> probe_summary option;
  save : string -> probe_summary -> unit;
}

let summarize sc (r : Simnet.Scenario.run_stats) =
  let tail = Numerics.Series.tail_from r.Simnet.Scenario.queue sc.transient in
  let q_tail_max =
    if Numerics.Series.is_empty tail then 0.
    else snd (Numerics.Series.argmax tail)
  in
  {
    utilization = r.Simnet.Scenario.utilization;
    drops = r.Simnet.Scenario.drops;
    q_tail_max;
  }

let summarize_outcome sc outcome =
  match Simnet.Scenario.outcome_stats outcome with
  | [| r |] -> summarize sc r
  | _ -> invalid_arg "Resilience.summarize: expected a single-replica outcome"

let check_summary sc ~baseline_utilization (s : probe_summary) =
  let buffer = sc.scen.Simnet.Scenario.params.Fluid.Params.buffer in
  if s.drops > 0 || s.q_tail_max >= buffer then Some Overflow
  else if s.utilization < sc.underflow_frac *. baseline_utilization then
    Some Underflow
  else None

let check sc ~baseline_utilization outcome =
  check_summary sc ~baseline_utilization (summarize_outcome sc outcome)

(* Key material for one probe: the probe is just the cell's scenario
   plus the plan, so the canonical Scenario encoding is the stable
   identity (the model arm included — protocols cannot collide);
   [transient] shapes the summary's q_tail_max and so belongs in the
   material too. The @v1 prefix predates the scenario generalization —
   BCN probes encode to the same bytes as before, so warm stores stay
   warm across the change. *)
let probed_scenario sc plan =
  match plan with
  | Some p -> Simnet.Scenario.with_fault sc.scen p
  | None -> sc.scen

let probe_material sc plan =
  Printf.sprintf "resilience-probe@v1\ntransient=%s\n%s"
    (Telemetry.Json.float_full sc.transient)
    (Simnet.Scenario.encode (probed_scenario sc plan))

let run_summary ?memo sc plan =
  let run () =
    summarize_outcome sc (Exec.run ~jobs:1 (probed_scenario sc plan))
  in
  match memo with
  | None -> run ()
  | Some m -> (
      let material = probe_material sc plan in
      match m.lookup material with
      | Some s -> s
      | None ->
          let s = run () in
          m.save material s;
          s)

let probe ?memo sc axis ~seed ~baseline_utilization ~severity =
  let plan =
    plan_of axis ~severity ~seed ~t_end:sc.scen.Simnet.Scenario.t_end
  in
  check_summary sc ~baseline_utilization (run_summary ?memo sc (Some plan))

type margin = {
  scenario : string;
  axis : string;
  margin : float;
  ceiling : float;
  violation : violation option;
  evaluations : int;
}

let bisect ?(iters = 8) ?memo ~seed sc ax =
  if iters < 0 then invalid_arg "Resilience.bisect: iters must be >= 0";
  (* [evals] counts logical evaluations, cached or not: a warm rerun
     must produce a byte-identical margin table, so the count cannot
     depend on the memo's hit pattern *)
  let evals = ref 1 in
  let s0 = run_summary ?memo sc None in
  let bu = s0.utilization in
  let eval severity =
    incr evals;
    probe ?memo sc ax ~seed ~baseline_utilization:bu ~severity
  in
  let cell margin ceiling violation =
    {
      scenario = sc.label;
      axis = axis_name ax;
      margin;
      ceiling;
      violation;
      evaluations = !evals;
    }
  in
  (* The unfaulted run itself can violate (a scenario that overflows or
     was handed an unreachable underflow_frac); report margin 0. *)
  match check_summary sc ~baseline_utilization:bu s0 with
  | Some v -> cell 0. 0. (Some v)
  | None -> (
      let hi0 = max_severity ax in
      match eval hi0 with
      | None -> cell hi0 hi0 None
      | Some v0 ->
          let lo = ref 0. and hi = ref hi0 and viol = ref v0 in
          for _ = 1 to iters do
            let mid = 0.5 *. (!lo +. !hi) in
            match eval mid with
            | None -> lo := mid
            | Some v ->
                hi := mid;
                viol := v
          done;
          cell !lo !hi (Some !viol))

(* The dense 1-D baseline the bracketed bisection replaces: walk the
   severity axis in [n] uniform steps from 0 and report the last
   surviving / first violating pair. Same margin semantics as {!bisect}
   at resolution [hi0 / n] (bisect reaches the same resolution with
   [log2 n] probes), kept as the reference the adaptive paths are
   benchmarked and cross-checked against. *)
let scan ?(n = 256) ?memo ~seed sc ax =
  if n < 1 then invalid_arg "Resilience.scan: n must be >= 1";
  let evals = ref 1 in
  let s0 = run_summary ?memo sc None in
  let bu = s0.utilization in
  let eval severity =
    incr evals;
    probe ?memo sc ax ~seed ~baseline_utilization:bu ~severity
  in
  let cell margin ceiling violation =
    {
      scenario = sc.label;
      axis = axis_name ax;
      margin;
      ceiling;
      violation;
      evaluations = !evals;
    }
  in
  match check_summary sc ~baseline_utilization:bu s0 with
  | Some v -> cell 0. 0. (Some v)
  | None ->
      let hi0 = max_severity ax in
      let step k = hi0 *. float_of_int k /. float_of_int n in
      let rec go k =
        if k > n then cell hi0 hi0 None
        else
          match eval (step k) with
          | None -> go (k + 1)
          | Some v -> cell (step (k - 1)) (step k) (Some v)
      in
      go 1

let sweep_cells ?jobs ?iters ?memo ~seed cells =
  let task (sc, ax) = bisect ?iters ?memo ~seed sc ax in
  match jobs with
  | Some 1 -> Array.map task cells
  | _ ->
      Parallel.Pool.with_pool ?size:jobs (fun pool ->
          Parallel.Pool.map_array pool task cells)

let sweep ?jobs ?iters ?memo ~seed scenarios axes =
  sweep_cells ?jobs ?iters ?memo ~seed
    (Array.of_list
       (List.concat_map (fun sc -> List.map (fun ax -> (sc, ax)) axes) scenarios))

let violation_cell = function Some v -> violation_name v | None -> "none"

module J = Telemetry.Json

let to_csv margins =
  let b = Buffer.create 256 in
  Buffer.add_string b "scenario,axis,margin,ceiling,violation,evaluations\n";
  Array.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%s,%s,%s,%d\n" m.scenario m.axis
           (J.float_full m.margin) (J.float_full m.ceiling)
           (violation_cell m.violation) m.evaluations))
    margins;
  Buffer.contents b

let to_json margins =
  let b = Buffer.create 512 in
  Buffer.add_string b "[";
  Array.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b
        (J.obj
           [
             ("scenario", J.str m.scenario);
             ("axis", J.str m.axis);
             ("margin", J.float_full m.margin);
             ("ceiling", J.float_full m.ceiling);
             ("violation", J.str (violation_cell m.violation));
             ("evaluations", J.int m.evaluations);
           ]))
    margins;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
