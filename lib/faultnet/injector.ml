(* Per-class loss channel: its own RNG stream plus the Gilbert–Elliott
   good/bad state (unused under Bernoulli loss). *)
type chan = { rng : Random.State.t; mutable bad : bool }

type t = {
  plan : Plan.t;
  pos : chan;
  neg : chan;
  pause : chan;
  delay_rng : Random.State.t;
  flap_rng : Random.State.t;
  mutable last_delivery : float;
      (* monotonisation floor for no-reorder delayed delivery *)
  mutable seen_pos : int;
  mutable seen_neg : int;
  mutable seen_pause : int;
  mutable dropped_pos : int;
  mutable dropped_neg : int;
  mutable dropped_pause : int;
  mutable delayed : int;
  mutable max_added_delay : float;
  mutable capacity_flaps : int;
  mutable blackout_toggles : int;
}

let create ?(salt = 0) plan =
  let plan = Plan.validate plan in
  (* One root state per (seed, salt); the split order below is part of
     the determinism contract — each fault component owns a stream, so
     e.g. enabling jitter cannot shift the loss channels' draws. *)
  let root = Random.State.make [| plan.Plan.seed; salt; 0x666c74 |] in
  let split () = Random.State.split root in
  let pos = { rng = split (); bad = false } in
  let neg = { rng = split (); bad = false } in
  let pause = { rng = split (); bad = false } in
  let delay_rng = split () in
  let flap_rng = split () in
  {
    plan;
    pos;
    neg;
    pause;
    delay_rng;
    flap_rng;
    last_delivery = 0.;
    seen_pos = 0;
    seen_neg = 0;
    seen_pause = 0;
    dropped_pos = 0;
    dropped_neg = 0;
    dropped_pause = 0;
    delayed = 0;
    max_added_delay = 0.;
    capacity_flaps = 0;
    blackout_toggles = 0;
  }

let plan inj = inj.plan

let decide_drop chan = function
  | None -> false
  | Some (Plan.Bernoulli p) -> Random.State.float chan.rng 1. < p
  | Some (Plan.Burst { p_enter; p_exit; p_drop }) ->
      (* Advance the chain once per frame, then (maybe) drop. *)
      if chan.bad then begin
        if Random.State.float chan.rng 1. < p_exit then chan.bad <- false
      end
      else if Random.State.float chan.rng 1. < p_enter then chan.bad <- true;
      chan.bad && Random.State.float chan.rng 1. < p_drop

(* The per-frame body, in direct-call style (no intermediate tuple):
   with an empty or loss-only plan this path allocates nothing, so an
   installed injector keeps the engine's forwarding fast path at ~0
   minor words per frame. Only a delayed delivery allocates (the
   rescheduling closure). [code] is the Plan.code of the class. *)
let process inj e pkt ~deliver ~drop ch spec ~fb ~code =
  let open Simnet in
  (match code with
  | 0 -> inj.seen_pos <- inj.seen_pos + 1
  | 1 -> inj.seen_neg <- inj.seen_neg + 1
  | _ -> inj.seen_pause <- inj.seen_pause + 1);
  if decide_drop ch spec then begin
    (match code with
    | 0 -> inj.dropped_pos <- inj.dropped_pos + 1
    | 1 -> inj.dropped_neg <- inj.dropped_neg + 1
    | _ -> inj.dropped_pause <- inj.dropped_pause + 1);
    Telemetry.Probe.fault_drop (Engine.probe e) ~t:(Engine.now e) ~fb
      ~cls:code ~seq:pkt.Packet.seq;
    drop e pkt
  end
  else begin
    match inj.plan.Plan.delay with
    | None -> deliver e pkt
    | Some { Plan.fixed; jitter; reorder } ->
        let extra =
          fixed
          +. (if jitter > 0. then Random.State.float inj.delay_rng jitter
              else 0.)
        in
        let now = Engine.now e in
        let target =
          if reorder then now +. extra
          else begin
            let tt = Float.max (now +. extra) inj.last_delivery in
            inj.last_delivery <- tt;
            tt
          end
        in
        let added = target -. now in
        if added <= 0. then deliver e pkt
        else begin
          inj.delayed <- inj.delayed + 1;
          if added > inj.max_added_delay then inj.max_added_delay <- added;
          Telemetry.Probe.fault_delay (Engine.probe e) ~t:now ~delay:added
            ~cls:code ~seq:pkt.Packet.seq;
          Engine.schedule e ~delay:added (fun e -> deliver e pkt)
        end
  end

let channel inj : Simnet.Runner.control_channel =
 fun e pkt ~deliver ~drop ->
  let open Simnet in
  match pkt.Packet.kind with
  | Packet.Data _ ->
      (* Data frames never take the control path; be transparent. *)
      deliver e pkt
  | Packet.Bcn b ->
      if b.fb < 0. then
        process inj e pkt ~deliver ~drop inj.neg inj.plan.Plan.bcn_neg_loss
          ~fb:b.fb ~code:1
      else
        process inj e pkt ~deliver ~drop inj.pos inj.plan.Plan.bcn_pos_loss
          ~fb:b.fb ~code:0
  | Packet.Pause _ ->
      process inj e pkt ~deliver ~drop inj.pause inj.plan.Plan.pause_loss
        ~fb:0. ~code:2

let exp_draw rng mean = -.mean *. log (1. -. Random.State.float rng 1.)

let install inj e sw =
  let open Simnet in
  let cpid = (Switch.config sw).Switch.cpid in
  let base = Switch.capacity sw in
  let apply_capacity e c =
    let old = Switch.capacity sw in
    Switch.set_capacity sw c;
    inj.capacity_flaps <- inj.capacity_flaps + 1;
    Telemetry.Probe.fault_capacity (Engine.probe e) ~t:(Engine.now e)
      ~capacity:c ~old_capacity:old ~cpid
  in
  (match inj.plan.Plan.capacity with
  | None -> ()
  | Some (Plan.Flap_schedule steps) ->
      List.iter
        (fun (time, factor) ->
          Engine.schedule_at e ~time (fun e ->
              apply_capacity e (factor *. base)))
        steps
  | Some (Plan.Flap_markov { mean_up; mean_down; factor }) ->
      let rec go_down e =
        apply_capacity e (factor *. base);
        Engine.schedule e ~delay:(exp_draw inj.flap_rng mean_down) go_up
      and go_up e =
        apply_capacity e base;
        Engine.schedule e ~delay:(exp_draw inj.flap_rng mean_up) go_down
      in
      Engine.schedule e ~delay:(exp_draw inj.flap_rng mean_up) go_down);
  match inj.plan.Plan.blackout with
  | None -> ()
  | Some { Plan.start; duration; reset } ->
      Engine.schedule_at e ~time:start (fun e ->
          Switch.set_bcn_enabled sw false;
          inj.blackout_toggles <- inj.blackout_toggles + 1;
          Telemetry.Probe.fault_blackout (Engine.probe e) ~t:(Engine.now e)
            ~on:true ~cpid);
      Engine.schedule_at e ~time:(start +. duration) (fun e ->
          if reset then Switch.reset_congestion_point sw;
          Switch.set_bcn_enabled sw true;
          inj.blackout_toggles <- inj.blackout_toggles + 1;
          Telemetry.Probe.fault_blackout (Engine.probe e) ~t:(Engine.now e)
            ~on:false ~cpid)

let attach inj (cfg : Simnet.Runner.config) =
  {
    cfg with
    Simnet.Runner.control_channel = Some (channel inj);
    on_setup = Some (install inj);
  }

let seen inj = function
  | Plan.Bcn_positive -> inj.seen_pos
  | Plan.Bcn_negative -> inj.seen_neg
  | Plan.Pause -> inj.seen_pause

let dropped inj = function
  | Plan.Bcn_positive -> inj.dropped_pos
  | Plan.Bcn_negative -> inj.dropped_neg
  | Plan.Pause -> inj.dropped_pause

let dropped_total inj = inj.dropped_pos + inj.dropped_neg + inj.dropped_pause

let delivered_total inj =
  inj.seen_pos + inj.seen_neg + inj.seen_pause - dropped_total inj

let delayed inj = inj.delayed
let max_added_delay inj = inj.max_added_delay
let capacity_flaps inj = inj.capacity_flaps
let blackout_toggles inj = inj.blackout_toggles
