(** Deprecated spelling of {!Simnet.Fault_plan}, kept so existing
    [Faultnet.Plan] callers compile unchanged. The plan description
    moved into [simnet] so the first-class [Simnet.Scenario] can embed a
    fault plan in its canonical encoding; this alias re-exports every
    type (with equality — [Faultnet.Plan.t] {e is}
    [Simnet.Fault_plan.t]) and value. New code should prefer
    [Simnet.Fault_plan]. *)

include module type of struct
  include Simnet.Fault_plan
end
