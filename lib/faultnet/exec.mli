(** Execute any scenario with its fault plan wired.

    This is the one place the fault layer meets the scenario API:
    [Scenario.compile] produces the model's configs plus a hook-wiring
    function, and this module supplies the hooks — a fresh {!Injector}
    per replica (salted with the replica index, so Bernoulli fault
    draws decorrelate across replicas exactly as sampling seeds do).
    Every model the scenario layer learns to compile is therefore
    fault-injectable here with zero per-protocol code. *)

val hooks : Plan.t -> replica:int -> Simnet.Scenario.hooks
(** The injector hooks for one replica: the plan's control channel
    (loss/delay on classified feedback frames) plus a setup hook that
    arms capacity flaps and blackout windows on the run's switch. *)

val run : ?jobs:int -> Simnet.Scenario.t -> Simnet.Scenario.outcome
(** Compile, wire the scenario's fault plan (if any) into every
    replica, run, pack. Deterministic: byte-identical results for any
    [jobs]. Raises [Invalid_argument] on scenarios whose model cannot
    express their plan (see [Scenario.validate]). *)
