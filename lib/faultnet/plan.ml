(* Thin re-export: the plan description itself moved to
   [Simnet.Fault_plan] so that [Simnet.Scenario] can embed it without a
   dependency cycle (faultnet depends on simnet). Kept here under the
   historical name so every existing [Faultnet.Plan] caller keeps
   compiling; the types are equal, not copies. *)
include Simnet.Fault_plan
