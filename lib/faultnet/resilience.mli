(** Strong-stability resilience margins under injected faults.

    The paper's Definition 1 calls the system strongly stable when,
    after a finite transient, the queue stays strictly inside (0, B).
    At packet granularity the literal lower bound is vacuous — healthy
    AIMD runs drain the queue to exactly 0 between bursts — so this
    module checks the definition's operational content instead:

    - {e overflow}: the buffer overruns — any frame drop, or the
      post-transient queue trace reaching B;
    - {e underflow}: the link starves — run utilization falls below a
      configured fraction (default 0.9) of the same scenario's
      fault-free baseline. (In the fluid model [q > 0] is precisely the
      condition for the bottleneck never idling, so lost utilization is
      what a persistent underflow costs.)

    For a severity axis (feedback-loss probability, PAUSE-loss
    probability, capacity-flap depth) the module bisects for the
    largest severity whose run still satisfies both. Everything is
    deterministic: the packet runs use deterministic sampling, the
    injector RNG derives from the caller's [seed], and the sweep fans
    out over an order-preserving {!Parallel.Pool} — the margin table is
    byte-identical for any [jobs] value. *)

type violation =
  | Overflow  (** frame drops, or the post-transient queue reached B *)
  | Underflow
      (** utilization below [underflow_frac] of the fault-free baseline *)

val violation_name : violation -> string

(** What the margins are measured on — any single-replica
    {!Simnet.Scenario.t}, so the same machinery produces margins for
    every protocol the scenario layer can compile. [transient] seconds
    at the head of the run are excluded from the queue-bound check;
    frame drops count as overflow wherever they occur. *)
type scenario = {
  label : string;
  scen : Simnet.Scenario.t;
  transient : float;
  underflow_frac : float;
}

val of_scenario :
  ?transient:float ->
  ?underflow_frac:float ->
  label:string ->
  Simnet.Scenario.t ->
  scenario
(** Wrap a scenario for margin probing. Raises [Invalid_argument] on
    invalid scenarios, [replicas <> 1], or a scenario that already
    carries a fault plan (the probe owns the plan). Defaults:
    [transient = t_end / 2], [underflow_frac = 0.9]. *)

val scenario :
  ?t_end:float ->
  ?transient:float ->
  ?underflow_frac:float ->
  label:string ->
  Fluid.Params.t ->
  scenario
(** {!of_scenario} over [Simnet.Scenario.bcn] on the parameter point
    (the historical BCN-only constructor). [t_end] defaults to
    [20 ms]. *)

val paper_cases : ?t_end:float -> ?transient:float -> unit -> scenario list
(** The paper's Case 1–3 parameter points (the gallery's settings):
    Case 1 = the Theorem-1 example with twice the required buffer,
    Case 2 = [w = 8000], Case 3 = [Gd = 1, w = 3000]. *)

val protocol_cases : ?t_end:float -> ?transient:float -> unit -> scenario list
(** One case per congestion-control protocol — labels ["bcn"],
    ["e2cm"], ["fera"], ["rcp"] — all on [Fluid.Params.default], for
    cross-protocol margin tables under identical fault plans. Use
    {!supports} to filter axes a protocol cannot express. *)

(** Severity axis being bisected. Severity is the Bernoulli loss
    probability for the loss axes, and the relative capacity dip (the
    flap takes the link to [(1 − severity)·C]) for {!Flap_depth}. *)
type axis =
  | Bcn_loss  (** drop BCN+ and BCN− with the same probability *)
  | Pause_loss
  | Flap_depth of { period : float; duty : float }
      (** {!Plan.square_flaps} with depth = severity *)

val axis_name : axis -> string
(** ["bcn_loss"], ["pause_loss"], ["flap_depth"]. *)

val max_severity : axis -> float
(** Upper end of the bisection bracket: 1 for the loss axes, 0.95 for
    flap depth (the dipped capacity must stay positive). *)

val plan_of : axis -> severity:float -> seed:int -> t_end:float -> Plan.t
(** The fault plan one probe run uses. *)

val plan_add : Plan.t -> axis -> severity:float -> t_end:float -> Plan.t
(** Apply one axis' fault at the given severity on top of an existing
    plan (the plan's seed is kept). [plan_of] is [plan_add] over a
    fresh seeded empty plan; composing two axes onto one plan is how
    2-D fault planes are built. *)

val supports : scenario -> axis -> bool
(** Whether the scenario's model can express the axis' fault (e.g.
    capacity flaps need a switch — E2CM/FERA cannot take them).
    Probing an unsupported combination raises [Invalid_argument]. *)

val baseline : scenario -> Simnet.Scenario.outcome
(** The scenario's fault-free run (severity 0, no injector). *)

(** {1 Memoized probes}

    A probe run collapses to three numbers for the margin decision;
    persisting those instead of full results keeps stored entries tiny
    and makes warm margin tables cheap. *)

(** Everything {!check} needs from one finished run: run utilization,
    total frame drops, and the post-transient queue maximum. *)
type probe_summary = {
  utilization : float;
  drops : int;
  q_tail_max : float;
}

(** Persistence hooks for probe summaries, keyed by an opaque {e key
    material} string (canonical scenario encoding + transient — equal
    material ⇒ identical deterministic probe). [Store.Sweep.resilience_memo]
    adapts the content-addressed store to this; injecting the hooks
    keeps this library free of any on-disk dependency. *)
type memo = {
  lookup : string -> probe_summary option;
  save : string -> probe_summary -> unit;
}

val summarize : scenario -> Simnet.Scenario.run_stats -> probe_summary
(** Protocol-agnostic: works off the generic stats view, so any model
    the scenario layer reports stats for can be margin-checked. *)

val check_summary :
  scenario ->
  baseline_utilization:float ->
  probe_summary ->
  violation option

val check :
  scenario ->
  baseline_utilization:float ->
  Simnet.Scenario.outcome ->
  violation option
(** Apply the operational Definition 1 above to a finished run.
    [Overflow] takes precedence when both bounds fail. *)

val run_summary : ?memo:memo -> scenario -> Plan.t option -> probe_summary
(** One (possibly fault-injected) run of the scenario, summarized.
    The memoized core of {!probe}, exposed so composed plans (e.g. the
    2-D severity planes in [Refine.Fault_plane]) share the same probe
    cache; [None] runs the fault-free baseline. *)

val probe :
  ?memo:memo ->
  scenario ->
  axis ->
  seed:int ->
  baseline_utilization:float ->
  severity:float ->
  violation option
(** One fault-injected run at the given severity, checked. With
    [?memo], the summary is looked up before simulating and saved
    after. Raises [Invalid_argument] when the model cannot express the
    axis (see {!supports}). *)

type margin = {
  scenario : string;
  axis : string;
  margin : float;  (** largest severity observed to keep strong stability *)
  ceiling : float;
      (** smallest severity observed to break it; equals [max_severity]
          when even that severity kept the property *)
  violation : violation option;  (** what broke at [ceiling], if anything *)
  evaluations : int;  (** simulation runs spent on this cell *)
}

val bisect : ?iters:int -> ?memo:memo -> seed:int -> scenario -> axis -> margin
(** Bracketed bisection: run the fault-free baseline, evaluate
    [max_severity], then halve the bracket [iters] (default 8) times.
    A scenario whose baseline already violates reports [margin = 0]
    with that violation; one surviving [max_severity] reports
    [margin = ceiling = max_severity] and [violation = None].
    [evaluations] counts {e logical} evaluations whether or not the
    memo answered them, so a warm rerun's margin table is byte-identical
    to the cold one. *)

val scan : ?n:int -> ?memo:memo -> seed:int -> scenario -> axis -> margin
(** The dense baseline {!bisect} replaces: after the fault-free
    baseline, walk the axis in [n] (default 256) uniform severity
    steps from [max_severity / n] upward and stop at the first
    violation. Reports the same margin/ceiling semantics as {!bisect}
    at resolution [max_severity / n], for [1 + k] probe runs where [k]
    is the first violating step (all [n] when nothing violates) —
    versus bisection's [1 + log2 n] for the same resolution.
    [evaluations] counts logical evaluations exactly as in {!bisect}. *)

val sweep_cells :
  ?jobs:int ->
  ?iters:int ->
  ?memo:memo ->
  seed:int ->
  (scenario * axis) array ->
  margin array
(** Bisect an explicit cell list — e.g. a cross-protocol table with
    the combinations {!supports} rejects filtered out. One pool task
    per cell, fanned out over [jobs] lanes (default
    {!Parallel.Pool.default_size}); results are in input order and
    byte-identical for any [jobs]. *)

val sweep :
  ?jobs:int ->
  ?iters:int ->
  ?memo:memo ->
  seed:int ->
  scenario list ->
  axis list ->
  margin array
(** {!sweep_cells} over the full scenario × axis cross product
    (row-major: all axes of the first scenario, then the next). *)

val to_csv : margin array -> string
(** Header plus one line per cell; floats as [%.17g] so the file is an
    exact witness of the computed margins. *)

val to_json : margin array -> string
(** A JSON array of margin objects, same field names as the CSV. *)
