module S = Simnet.Scenario

let hooks plan ~replica =
  let inj = Injector.create ~salt:replica plan in
  {
    S.channel = Some (Injector.channel inj);
    setup = Some (Injector.install inj);
  }

let run ?jobs s =
  match S.compile s with
  | S.Runnable c ->
      let cfgs =
        match (s.S.fault, c.S.wire) with
        | None, _ | _, None -> c.S.configs
        | Some plan, Some wire ->
            Array.mapi
              (fun i cfg -> wire cfg (hooks plan ~replica:i))
              c.S.configs
      in
      c.S.pack (c.S.run_many ?jobs cfgs)
