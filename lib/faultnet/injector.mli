(** Seeded fault injector: a {!Plan.t} made executable against one run.

    An injector is single-run mutable state (RNG streams, burst-loss
    chains, the delay monotonisation floor, fault counters). Create one
    per run — never share across replicas or domains. All randomness is
    drawn from split [Random.State]s derived from [plan.seed] (and the
    optional [salt]), so a (plan, salt) pair perturbs a run
    byte-identically wherever it executes.

    Wiring: pass {!channel} as the runner's [control_channel] and
    {!install} as its [on_setup] ({!attach} does both). The channel sees
    every BCN/PAUSE frame synchronously at emission, so after a run the
    injector's {!seen} counts equal the switch's emission counters and
    {!dropped} equals the flight recorder's [Fault_drop] total — the
    [@faults-smoke] check relies on this exactness. *)

type t

val create : ?salt:int -> Plan.t -> t
(** Validates the plan ({!Plan.validate}) and derives the injector's RNG
    streams from [(plan.seed, salt)] ([salt] defaults to 0; use it to
    decorrelate replicas sharing one plan). *)

val plan : t -> Plan.t

val channel : t -> Simnet.Runner.control_channel
(** The interposition function: classifies each control frame (BCN+ /
    BCN− / PAUSE), applies the plan's loss process for that class, then
    the extra-delay process, and finally calls exactly one of the
    [deliver] / [drop] continuations. Emits [Fault_drop] / [Fault_delay]
    telemetry through the engine's probe. *)

val install : t -> Simnet.Engine.t -> Simnet.Switch.t -> unit
(** Arm the plan's capacity flaps and congestion-point blackout as
    scheduled events against [sw]. Pass as the runner's [on_setup]. *)

val attach : t -> Simnet.Runner.config -> Simnet.Runner.config
(** [attach inj cfg] sets [cfg.control_channel] and [cfg.on_setup] to
    this injector. Overwrites any channel/hook already present. *)

(** {1 Post-run fault counters} *)

val seen : t -> Plan.frame_class -> int
(** Control frames of the class that reached the injector. *)

val dropped : t -> Plan.frame_class -> int
val dropped_total : t -> int
val delivered_total : t -> int
(** [seen − dropped] summed over classes. *)

val delayed : t -> int
(** Frames delivered late (positive added delay). *)

val max_added_delay : t -> float
(** Largest added delay over the run, seconds (0 if none). *)

val capacity_flaps : t -> int
(** Capacity retargets applied (each also a [Fault_capacity] event). *)

val blackout_toggles : t -> int
(** Blackout on/off transitions applied (each a [Fault_blackout]). *)
