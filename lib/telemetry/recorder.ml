type t = {
  cap : int;
  kinds : int array;  (* Event codes; column-wise so recording is stores *)
  ts : float array;
  av : float array;
  bv : float array;
  iv : int array;
  jv : int array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
  mutable total : int;
  counts : int array;  (* per-kind totals, never reset by wrap *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Telemetry.Recorder.create: capacity < 0";
  {
    cap = capacity;
    kinds = Array.make capacity 0;
    ts = Array.make capacity 0.;
    av = Array.make capacity 0.;
    bv = Array.make capacity 0.;
    iv = Array.make capacity 0;
    jv = Array.make capacity 0;
    head = 0;
    len = 0;
    total = 0;
    counts = Array.make Event.n_kinds 0;
  }

let capacity r = r.cap
let length r = r.len
let total r = r.total
let overwritten r = r.total - r.len
let count r kind = r.counts.(Event.to_code kind)

let[@inline] record r ~kind ~t ~a ~b ~i ~j =
  let code = Event.to_code kind in
  r.counts.(code) <- r.counts.(code) + 1;
  r.total <- r.total + 1;
  if r.cap > 0 then begin
    let h = r.head in
    r.kinds.(h) <- code;
    r.ts.(h) <- t;
    r.av.(h) <- a;
    r.bv.(h) <- b;
    r.iv.(h) <- i;
    r.jv.(h) <- j;
    let h = h + 1 in
    r.head <- (if h >= r.cap then 0 else h);
    if r.len < r.cap then r.len <- r.len + 1
  end

let slot r i =
  if i < 0 || i >= r.len then invalid_arg "Telemetry.Recorder.nth: out of range";
  (* oldest event sits at [head - len] modulo the ring *)
  let s = r.head - r.len + i in
  if s < 0 then s + r.cap else s

let nth r i =
  let s = slot r i in
  {
    Event.kind = Event.of_code r.kinds.(s);
    t = r.ts.(s);
    a = r.av.(s);
    b = r.bv.(s);
    i = r.iv.(s);
    j = r.jv.(s);
  }

let iter r f =
  for i = 0 to r.len - 1 do
    f (nth r i)
  done

let clear r =
  r.head <- 0;
  r.len <- 0;
  r.total <- 0;
  Array.fill r.counts 0 Event.n_kinds 0

let write_jsonl r oc =
  iter r (fun ev ->
      output_string oc (Event.to_line ev);
      output_char oc '\n')
