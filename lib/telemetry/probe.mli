(** Per-run probe: the handle components emit telemetry through.

    A probe bundles a {!Recorder} (the flight recorder ring) and a
    {!Metrics} registry. Every emitter below is an [@inline] wrapper
    whose body starts with [if p.enabled]; with the disabled probe the
    call compiles down to a load and an untaken branch — no closure, no
    float boxing, no allocation. The packet-engine bench smoke asserts
    this stays at ~0 minor words per frame on the forwarding fast path.

    Install a probe per run ([Simnet.Engine.create ?probe] /
    [Simnet.Runner.run ?probe]); the shared {!disabled} probe is the
    default everywhere and records nothing. A probe is single-domain
    state: create one per replica, merge the registries afterwards. *)

type t = private {
  enabled : bool;
  recorder : Recorder.t;
  metrics : Metrics.t;
}

val disabled : t
(** The shared no-op probe: [enabled = false], zero-capacity recorder.
    Safe to share across domains (never written). *)

val create : ?capacity:int -> unit -> t
(** An enabled probe with a flight recorder retaining the last
    [capacity] events (default [65536]; [0] makes the probe a pure
    event counter + metrics registry). *)

val enabled : t -> bool
val recorder : t -> Recorder.t
val metrics : t -> Metrics.t

(** {1 Emitters (no-ops on a disabled probe)} *)

val enqueue : t -> t:float -> q:float -> bits:float -> flow:int -> seq:int -> unit
val dequeue : t -> t:float -> q:float -> sojourn:float -> flow:int -> seq:int -> unit
val drop : t -> t:float -> q:float -> bits:float -> flow:int -> seq:int -> unit

val bcn : t -> t:float -> fb:float -> q:float -> flow:int -> seq:int -> unit
(** Records [Bcn_negative] when [fb < 0.], [Bcn_positive] otherwise. *)

val pause : t -> t:float -> on:bool -> q:float -> cpid:int -> seq:int -> unit
val rate_update : t -> t:float -> rate:float -> fb:float -> id:int -> cpid:int -> unit
val ode_step : t -> t:float -> h:float -> unit
val ode_reject : t -> t:float -> h:float -> unit

(** Fault-injection emitters (see {!Event} for field semantics; [cls] is
    the injector's frame-class code: 0 = BCN+, 1 = BCN−, 2 = PAUSE). *)

val fault_drop : t -> t:float -> fb:float -> cls:int -> seq:int -> unit
val fault_delay : t -> t:float -> delay:float -> cls:int -> seq:int -> unit
val fault_capacity :
  t -> t:float -> capacity:float -> old_capacity:float -> cpid:int -> unit
val fault_blackout : t -> t:float -> on:bool -> cpid:int -> unit

(** {1 Adapters} *)

val ode_monitor : t -> Numerics.Ode.monitor option
(** [Some] monitor recording [Ode_step]/[Ode_reject] events when the
    probe is enabled, [None] otherwise — pass straight to the
    [?monitor] argument of the solvers. *)

val flush_event_counters : t -> unit
(** Copy the recorder's exact per-kind totals into the metrics registry
    as counters named [events.<kind>] (plus [events.total] and
    [events.overwritten]). Call once at the end of a run, before
    snapshotting or merging. No-op on a disabled probe. *)
