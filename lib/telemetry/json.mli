(** Minimal JSON emission helpers shared by every writer in the repo
    (benchmarks, metric snapshots, trace exporters). The repo carries no
    JSON dependency, so the fragments are hand-rolled here — one place
    for escaping and float formatting instead of a copy per writer. *)

val escape : string -> string
(** Escape a string for inclusion between double quotes. *)

val str : string -> string
(** [str s] is [s] escaped and wrapped in double quotes. *)

val float : float -> string
(** Compact [%.6g] rendering; NaN becomes [null] (JSON has no NaN). *)

val float_full : float -> string
(** Round-trip [%.17g] rendering for values that must survive a
    parse-back bit-for-bit (trace timestamps); NaN becomes [null]. *)

val int : int -> string

val bool : bool -> string
(** [true] / [false] literals. *)

val obj : (string * string) list -> string
(** [obj fields] renders [{"k": v, ...}] — values are already rendered
    fragments, keys are escaped here. *)

val arr : string list -> string
(** [arr items] renders [[v, ...]] — items are already rendered
    fragments. *)
