(** Structured trace events.

    Every event is one fixed-width record: a kind tag, the simulated
    time, two float payloads and two int payloads. The flight recorder
    stores these fields column-wise in unboxed arrays; this module gives
    the fields their meaning and the JSONL wire form.

    Field semantics per kind:

    {v
    kind          t              a                b                i       j
    Enqueue       arrival time   queue bits after frame bits       flow    seq
    Dequeue       service done   queue bits       sojourn seconds  flow    seq
    Drop          arrival time   queue bits       frame bits       flow    seq
    Bcn_positive  sample time    fb (sigma > 0)   queue bits       flow    ctl seq
    Bcn_negative  sample time    fb (sigma < 0)   queue bits       flow    ctl seq
    Pause_on      emit time      queue bits       0                cpid    ctl seq
    Pause_off     emit time      queue bits       0                cpid    ctl seq
    Rate_update   feedback time  new rate bit/s   fb               source  cpid
    Ode_step      step end time  step size h      0                0       0
    Ode_reject    step start     rejected h       0                0       0
    v} *)

type kind =
  | Enqueue
  | Dequeue
  | Drop
  | Bcn_positive
  | Bcn_negative
  | Pause_on
  | Pause_off
  | Rate_update
  | Ode_step
  | Ode_reject

val n_kinds : int

val to_code : kind -> int
(** Dense codes in [0, n_kinds); stable across releases (appended-only)
    because trace files persist them. *)

val of_code : int -> kind
(** Raises [Invalid_argument] outside [0, n_kinds). *)

val name : kind -> string
(** Short snake_case name used in JSONL lines and summaries. *)

val of_name : string -> kind option

type t = { kind : kind; t : float; a : float; b : float; i : int; j : int }

val to_line : t -> string
(** One JSONL line (no trailing newline):
    [{"ev": "...", "t": ..., "a": ..., "b": ..., "i": ..., "j": ...}].
    Floats render with [%.17g] so {!of_line} is an exact inverse. *)

val of_line : string -> t option
(** Parse a line produced by {!to_line}; [None] on anything else. *)
