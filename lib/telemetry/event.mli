(** Structured trace events.

    Every event is one fixed-width record: a kind tag, the simulated
    time, two float payloads and two int payloads. The flight recorder
    stores these fields column-wise in unboxed arrays; this module gives
    the fields their meaning and the JSONL wire form.

    Field semantics per kind:

    {v
    kind          t              a                b                i       j
    Enqueue       arrival time   queue bits after frame bits       flow    seq
    Dequeue       service done   queue bits       sojourn seconds  flow    seq
    Drop          arrival time   queue bits       frame bits       flow    seq
    Bcn_positive  sample time    fb (sigma > 0)   queue bits       flow    ctl seq
    Bcn_negative  sample time    fb (sigma < 0)   queue bits       flow    ctl seq
    Pause_on      emit time      queue bits       0                cpid    ctl seq
    Pause_off     emit time      queue bits       0                cpid    ctl seq
    Rate_update   feedback time  new rate bit/s   fb               source  cpid
    Ode_step      step end time  step size h      0                0       0
    Ode_reject    step start     rejected h       0                0       0
    Fault_drop    emit time      fb (0 for PAUSE) 0                class   seq
    Fault_delay   emit time      added delay s    0                class   seq
    Fault_capacity flap time     new capacity     old capacity     cpid    0
    Fault_blackout toggle time   1 = on, 0 = off  0                cpid    0
    Lease_claimed wall clock     range lo point   range hi point   range   worker
    Lease_stolen  wall clock     range lo point   range hi point   range   worker
    Lease_expired wall clock     stale beat age s 0                range   worker
    v}

    [class] in the fault events is the {!Faultnet.Plan.frame_class} code
    of the control frame the injector acted on (0 = positive BCN,
    1 = negative BCN, 2 = PAUSE).

    The lease events come from the distributed sweep fabric, not the
    simulator: [t] is wall-clock Unix time (a fabric run spans
    processes, so there is no shared simulated clock), [range] the
    lease's range id within the sweep manifest and [worker] a stable
    hash of the worker id string. [Lease_stolen] is always preceded by
    the [Lease_expired] record of the lease it replaced. *)

type kind =
  | Enqueue
  | Dequeue
  | Drop
  | Bcn_positive
  | Bcn_negative
  | Pause_on
  | Pause_off
  | Rate_update
  | Ode_step
  | Ode_reject
  | Fault_drop  (** injector dropped a control frame *)
  | Fault_delay  (** injector added delay to a control frame *)
  | Fault_capacity  (** injector retargeted a switch egress capacity *)
  | Fault_blackout  (** congestion-point blackout toggled *)
  | Lease_claimed  (** fabric worker claimed a free work lease *)
  | Lease_stolen  (** fabric worker took over an expired lease *)
  | Lease_expired  (** fabric worker observed a lease past its TTL *)

val n_kinds : int

val to_code : kind -> int
(** Dense codes in [0, n_kinds); stable across releases (appended-only)
    because trace files persist them. *)

val of_code : int -> kind
(** Raises [Invalid_argument] outside [0, n_kinds). *)

val name : kind -> string
(** Short snake_case name used in JSONL lines and summaries. *)

val of_name : string -> kind option

type t = { kind : kind; t : float; a : float; b : float; i : int; j : int }

val to_line : t -> string
(** One JSONL line (no trailing newline):
    [{"ev": "...", "t": ..., "a": ..., "b": ..., "i": ..., "j": ...}].
    Floats render with [%.17g] so {!of_line} is an exact inverse. *)

val of_line : string -> t option
(** Parse a line produced by {!to_line}; [None] on anything else. *)
