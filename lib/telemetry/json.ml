let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let float f = if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let float_full f =
  if Float.is_nan f then "null" else Printf.sprintf "%.17g" f

let int = string_of_int
let bool b = if b then "true" else "false"

let obj fields =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (str k);
      Buffer.add_string b ": ";
      Buffer.add_string b v)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let arr items =
  let b = Buffer.create 64 in
  Buffer.add_char b '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b v)
    items;
  Buffer.add_char b ']';
  Buffer.contents b
