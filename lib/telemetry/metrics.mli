(** Metrics registry: named counters, gauges and histograms with
    deterministic snapshot and merge.

    A registry is cheap mutable state owned by one run (one domain);
    cross-run aggregation goes through {!merge_into}, which callers
    invoke in input order so a parallel sweep merges to the same bytes
    as a sequential one (counters and gauges are sums, histograms
    bin-wise sums via [Numerics.Histogram.merge] — all order-insensitive
    up to float summation order, which the in-order merge fixes).

    Registries contain no closures, so a registry crosses domains and
    [Marshal] safely. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val set_counter : t -> string -> int -> unit
val counter_value : t -> string -> int
(** 0 when the counter does not exist. *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit
val add_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float
(** NaN when the gauge does not exist. *)

(** {1 Histograms} *)

val histogram : t -> string -> lo:float -> hi:float -> bins:int -> Numerics.Histogram.t
(** Find-or-create. Raises [Invalid_argument] when the name exists with
    a different geometry. *)

val add_histogram : t -> string -> Numerics.Histogram.t -> unit
(** Merge a snapshot of [h] into the named histogram (registering a
    copy when absent — later mutation of [h] does not leak in). Raises
    [Invalid_argument] on geometry mismatch with an existing entry. *)

(** {1 Aggregation and export} *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]: counters and gauges add, histograms merge
    bin-wise. Raises [Invalid_argument] when a shared histogram name has
    mismatched geometry. *)

val names : t -> string list
(** All metric names, sorted, deduplicated across the three families. *)

val to_json_string : t -> string
(** Deterministic snapshot: families sorted by name, floats in [%.17g].
    Two registries built by the same in-order merges render to the same
    bytes. *)

val write_json : t -> out_channel -> unit
val write_csv : t -> out_channel -> unit
(** [family,name,value] rows; histograms flatten to
    [count]/[mean]/[p50]/[p99]/[underflow]/[overflow] rows. *)
