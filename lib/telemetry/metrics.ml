open Numerics

(* Single-field mutable cells rather than refs in the table so updates
   are in-place stores; the registry itself is off every fast path, so
   plain Hashtbls are fine. *)
type counter = { mutable c : int }
type gauge = { mutable g : float }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 8;
  }

let counter_cell m name =
  match Hashtbl.find_opt m.counters name with
  | Some c -> c
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace m.counters name c;
      c

let incr m name =
  let c = counter_cell m name in
  c.c <- c.c + 1

let add m name n =
  let c = counter_cell m name in
  c.c <- c.c + n

let set_counter m name n = (counter_cell m name).c <- n

let counter_value m name =
  match Hashtbl.find_opt m.counters name with Some c -> c.c | None -> 0

let gauge_cell m name =
  match Hashtbl.find_opt m.gauges name with
  | Some g -> g
  | None ->
      let g = { g = 0. } in
      Hashtbl.replace m.gauges name g;
      g

let set_gauge m name v = (gauge_cell m name).g <- v

let add_gauge m name v =
  let g = gauge_cell m name in
  g.g <- g.g +. v

let gauge_value m name =
  match Hashtbl.find_opt m.gauges name with Some g -> g.g | None -> nan

let same_geometry a b =
  Histogram.bin_count a = Histogram.bin_count b
  && Histogram.bin_edges a 0 = Histogram.bin_edges b 0
  && Histogram.bin_edges a (Histogram.bin_count a - 1)
     = Histogram.bin_edges b (Histogram.bin_count b - 1)

let histogram m name ~lo ~hi ~bins =
  match Hashtbl.find_opt m.hists name with
  | Some h ->
      let probe = Histogram.create ~lo ~hi ~bins in
      if not (same_geometry h probe) then
        invalid_arg
          (Printf.sprintf "Telemetry.Metrics.histogram: %s geometry mismatch"
             name);
      h
  | None ->
      let h = Histogram.create ~lo ~hi ~bins in
      Hashtbl.replace m.hists name h;
      h

let add_histogram m name h =
  match Hashtbl.find_opt m.hists name with
  | Some existing ->
      let merged = Histogram.merge existing h in
      Hashtbl.replace m.hists name merged
  | None -> Hashtbl.replace m.hists name (Histogram.copy h)

let merge_into ~into src =
  Hashtbl.iter (fun name c -> add into name c.c) src.counters;
  Hashtbl.iter (fun name g -> add_gauge into name g.g) src.gauges;
  Hashtbl.iter (fun name h -> add_histogram into name h) src.hists

let sorted_keys tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let names m =
  List.sort_uniq compare
    (sorted_keys m.counters @ sorted_keys m.gauges @ sorted_keys m.hists)

let hist_json h =
  let bins =
    String.concat ", "
      (List.init (Histogram.bin_count h) (fun i ->
           Json.float_full (Histogram.bin_mass h i)))
  in
  let lo, _ = Histogram.bin_edges h 0 in
  let _, hi = Histogram.bin_edges h (Histogram.bin_count h - 1) in
  Json.obj
    [
      ("lo", Json.float_full lo);
      ("hi", Json.float_full hi);
      ("underflow", Json.float_full (Histogram.underflow h));
      ("overflow", Json.float_full (Histogram.overflow h));
      ("bins", "[" ^ bins ^ "]");
    ]

let to_json_string m =
  let b = Buffer.create 512 in
  let family name keys render =
    Buffer.add_string b (Printf.sprintf "  %s: {" (Json.str name));
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b
          (Printf.sprintf "\n    %s: %s" (Json.str k) (render k)))
      keys;
    if keys <> [] then Buffer.add_string b "\n  ";
    Buffer.add_string b "}"
  in
  Buffer.add_string b "{\n";
  family "counters" (sorted_keys m.counters) (fun k ->
      Json.int (counter_value m k));
  Buffer.add_string b ",\n";
  family "gauges" (sorted_keys m.gauges) (fun k ->
      Json.float_full (gauge_value m k));
  Buffer.add_string b ",\n";
  family "histograms" (sorted_keys m.hists) (fun k ->
      hist_json (Hashtbl.find m.hists k));
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write_json m oc = output_string oc (to_json_string m)

let write_csv m oc =
  output_string oc "family,name,value\n";
  List.iter
    (fun k -> Printf.fprintf oc "counter,%s,%d\n" k (counter_value m k))
    (sorted_keys m.counters);
  List.iter
    (fun k -> Printf.fprintf oc "gauge,%s,%.17g\n" k (gauge_value m k))
    (sorted_keys m.gauges);
  List.iter
    (fun k ->
      let h = Hashtbl.find m.hists k in
      let stat name v = Printf.fprintf oc "histogram,%s.%s,%.17g\n" k name v in
      stat "count" (Histogram.count h);
      stat "mean" (Histogram.mean h);
      (if Histogram.count h > 0. then begin
         stat "p50" (Histogram.quantile h 0.5);
         stat "p99" (Histogram.quantile h 0.99)
       end);
      stat "underflow" (Histogram.underflow h);
      stat "overflow" (Histogram.overflow h))
    (sorted_keys m.hists)
