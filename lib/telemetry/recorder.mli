(** Flight recorder: a fixed-capacity ring buffer of structured events.

    Events are stored column-wise (kind codes, times and payloads each
    in their own flat array), so recording one event is a handful of
    in-place stores — no allocation, whatever the rate. When the ring is
    full the oldest event is overwritten: the recorder always retains
    the {e last} [capacity] events, which is what a post-mortem dump
    after an overflow or a failed assertion needs.

    Per-kind totals are tracked separately from the ring and never
    wrap, so event counting stays exact even after overwrites — a
    [capacity = 0] recorder is a pure event counter. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 0]. *)

val capacity : t -> int

val record :
  t -> kind:Event.kind -> t:float -> a:float -> b:float -> i:int -> j:int ->
  unit
(** Append one event (overwriting the oldest when full). Performs no
    allocation. *)

val length : t -> int
(** Events currently retained ([<= capacity]). *)

val total : t -> int
(** Events ever recorded (monotone; never reset by overwrites). *)

val overwritten : t -> int
(** [total - length]: events lost to ring wrap-around. *)

val count : t -> Event.kind -> int
(** Exact per-kind total over the whole run (not just the retained
    window). *)

val nth : t -> int -> Event.t
(** [nth r i] is the [i]-th retained event, oldest first. Raises
    [Invalid_argument] out of range. Allocates the returned record. *)

val iter : t -> (Event.t -> unit) -> unit
(** Oldest to newest over the retained window. *)

val clear : t -> unit
(** Forget retained events and reset all counters. *)

val write_jsonl : t -> out_channel -> unit
(** One {!Event.to_line} per retained event, oldest first. *)
