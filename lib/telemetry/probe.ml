type t = { enabled : bool; recorder : Recorder.t; metrics : Metrics.t }

let disabled =
  { enabled = false; recorder = Recorder.create ~capacity:0; metrics = Metrics.create () }

let create ?(capacity = 65536) () =
  { enabled = true; recorder = Recorder.create ~capacity; metrics = Metrics.create () }

let enabled p = p.enabled
let recorder p = p.recorder
let metrics p = p.metrics

(* Each emitter is an [@inline] wrapper that tests [enabled] before
   touching any argument, so on the disabled probe the floats the caller
   passes never box (the wrapper inlines into the call site; the branch
   is all that remains). *)

let[@inline] enqueue p ~t ~q ~bits ~flow ~seq =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Enqueue ~t ~a:q ~b:bits ~i:flow
      ~j:seq

let[@inline] dequeue p ~t ~q ~sojourn ~flow ~seq =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Dequeue ~t ~a:q ~b:sojourn ~i:flow
      ~j:seq

let[@inline] drop p ~t ~q ~bits ~flow ~seq =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Drop ~t ~a:q ~b:bits ~i:flow ~j:seq

let[@inline] bcn p ~t ~fb ~q ~flow ~seq =
  if p.enabled then
    Recorder.record p.recorder
      ~kind:(if fb < 0. then Event.Bcn_negative else Event.Bcn_positive)
      ~t ~a:fb ~b:q ~i:flow ~j:seq

let[@inline] pause p ~t ~on ~q ~cpid ~seq =
  if p.enabled then
    Recorder.record p.recorder
      ~kind:(if on then Event.Pause_on else Event.Pause_off)
      ~t ~a:q ~b:0. ~i:cpid ~j:seq

let[@inline] rate_update p ~t ~rate ~fb ~id ~cpid =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Rate_update ~t ~a:rate ~b:fb ~i:id
      ~j:cpid

let[@inline] ode_step p ~t ~h =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Ode_step ~t ~a:h ~b:0. ~i:0 ~j:0

let[@inline] ode_reject p ~t ~h =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Ode_reject ~t ~a:h ~b:0. ~i:0 ~j:0

let[@inline] fault_drop p ~t ~fb ~cls ~seq =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Fault_drop ~t ~a:fb ~b:0. ~i:cls
      ~j:seq

let[@inline] fault_delay p ~t ~delay ~cls ~seq =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Fault_delay ~t ~a:delay ~b:0.
      ~i:cls ~j:seq

let[@inline] fault_capacity p ~t ~capacity ~old_capacity ~cpid =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Fault_capacity ~t ~a:capacity
      ~b:old_capacity ~i:cpid ~j:0

let[@inline] fault_blackout p ~t ~on ~cpid =
  if p.enabled then
    Recorder.record p.recorder ~kind:Event.Fault_blackout ~t
      ~a:(if on then 1. else 0.)
      ~b:0. ~i:cpid ~j:0

let ode_monitor p =
  if not p.enabled then None
  else
    Some
      {
        Numerics.Ode.on_step = (fun t h -> ode_step p ~t ~h);
        on_reject = (fun t h -> ode_reject p ~t ~h);
      }

let all_kinds =
  List.init Event.n_kinds Event.of_code

let flush_event_counters p =
  if p.enabled then begin
    List.iter
      (fun kind ->
        Metrics.set_counter p.metrics
          ("events." ^ Event.name kind)
          (Recorder.count p.recorder kind))
      all_kinds;
    Metrics.set_counter p.metrics "events.total" (Recorder.total p.recorder);
    Metrics.set_counter p.metrics "events.overwritten"
      (Recorder.overwritten p.recorder)
  end
