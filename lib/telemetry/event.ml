type kind =
  | Enqueue
  | Dequeue
  | Drop
  | Bcn_positive
  | Bcn_negative
  | Pause_on
  | Pause_off
  | Rate_update
  | Ode_step
  | Ode_reject
  | Fault_drop
  | Fault_delay
  | Fault_capacity
  | Fault_blackout
  | Lease_claimed
  | Lease_stolen
  | Lease_expired

let n_kinds = 17

let to_code = function
  | Enqueue -> 0
  | Dequeue -> 1
  | Drop -> 2
  | Bcn_positive -> 3
  | Bcn_negative -> 4
  | Pause_on -> 5
  | Pause_off -> 6
  | Rate_update -> 7
  | Ode_step -> 8
  | Ode_reject -> 9
  | Fault_drop -> 10
  | Fault_delay -> 11
  | Fault_capacity -> 12
  | Fault_blackout -> 13
  | Lease_claimed -> 14
  | Lease_stolen -> 15
  | Lease_expired -> 16

let of_code = function
  | 0 -> Enqueue
  | 1 -> Dequeue
  | 2 -> Drop
  | 3 -> Bcn_positive
  | 4 -> Bcn_negative
  | 5 -> Pause_on
  | 6 -> Pause_off
  | 7 -> Rate_update
  | 8 -> Ode_step
  | 9 -> Ode_reject
  | 10 -> Fault_drop
  | 11 -> Fault_delay
  | 12 -> Fault_capacity
  | 13 -> Fault_blackout
  | 14 -> Lease_claimed
  | 15 -> Lease_stolen
  | 16 -> Lease_expired
  | c -> invalid_arg (Printf.sprintf "Telemetry.Event.of_code: %d" c)

let name = function
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Drop -> "drop"
  | Bcn_positive -> "bcn_positive"
  | Bcn_negative -> "bcn_negative"
  | Pause_on -> "pause_on"
  | Pause_off -> "pause_off"
  | Rate_update -> "rate_update"
  | Ode_step -> "ode_step"
  | Ode_reject -> "ode_reject"
  | Fault_drop -> "fault_drop"
  | Fault_delay -> "fault_delay"
  | Fault_capacity -> "fault_capacity"
  | Fault_blackout -> "fault_blackout"
  | Lease_claimed -> "lease_claimed"
  | Lease_stolen -> "lease_stolen"
  | Lease_expired -> "lease_expired"

let of_name = function
  | "enqueue" -> Some Enqueue
  | "dequeue" -> Some Dequeue
  | "drop" -> Some Drop
  | "bcn_positive" -> Some Bcn_positive
  | "bcn_negative" -> Some Bcn_negative
  | "pause_on" -> Some Pause_on
  | "pause_off" -> Some Pause_off
  | "rate_update" -> Some Rate_update
  | "ode_step" -> Some Ode_step
  | "ode_reject" -> Some Ode_reject
  | "fault_drop" -> Some Fault_drop
  | "fault_delay" -> Some Fault_delay
  | "fault_capacity" -> Some Fault_capacity
  | "fault_blackout" -> Some Fault_blackout
  | "lease_claimed" -> Some Lease_claimed
  | "lease_stolen" -> Some Lease_stolen
  | "lease_expired" -> Some Lease_expired
  | _ -> None

type t = { kind : kind; t : float; a : float; b : float; i : int; j : int }

let to_line ev =
  Printf.sprintf "{\"ev\": \"%s\", \"t\": %s, \"a\": %s, \"b\": %s, \"i\": %d, \"j\": %d}"
    (name ev.kind) (Json.float_full ev.t) (Json.float_full ev.a)
    (Json.float_full ev.b) ev.i ev.j

(* The parser accepts exactly the shape [to_line] emits (fixed key order,
   one object per line) — it is a round-trip inverse, not a general JSON
   reader. *)
let of_line line =
  let len = String.length line in
  let field_value key from =
    (* find ["<key>": ] starting at [from]; return (value_start, next) *)
    let pat = "\"" ^ key ^ "\": " in
    let plen = String.length pat in
    let rec find i =
      if i + plen > len then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find from
  in
  let value_end start =
    let rec go i =
      if i >= len then i
      else match line.[i] with ',' | '}' -> i | _ -> go (i + 1)
    in
    go start
  in
  match field_value "ev" 0 with
  | None -> None
  | Some ev_start -> (
      match String.index_from_opt line ev_start '"' with
      | None -> None
      | Some _ when line.[ev_start] <> '"' -> None
      | Some _ -> (
          match String.index_from_opt line (ev_start + 1) '"' with
          | None -> None
          | Some ev_close -> (
              let ev_name =
                String.sub line (ev_start + 1) (ev_close - ev_start - 1)
              in
              match of_name ev_name with
              | None -> None
              | Some kind -> (
                  let float_field key from =
                    match field_value key from with
                    | None -> None
                    | Some s ->
                        let e = value_end s in
                        let raw = String.sub line s (e - s) in
                        if raw = "null" then Some (nan, e)
                        else
                          Option.map
                            (fun v -> (v, e))
                            (float_of_string_opt raw)
                  in
                  let int_field key from =
                    match field_value key from with
                    | None -> None
                    | Some s ->
                        let e = value_end s in
                        Option.map
                          (fun v -> (v, e))
                          (int_of_string_opt (String.sub line s (e - s)))
                  in
                  match float_field "t" ev_close with
                  | None -> None
                  | Some (t, p) -> (
                      match float_field "a" p with
                      | None -> None
                      | Some (a, p) -> (
                          match float_field "b" p with
                          | None -> None
                          | Some (b, p) -> (
                              match int_field "i" p with
                              | None -> None
                              | Some (i, p) -> (
                                  match int_field "j" p with
                                  | None -> None
                                  | Some (j, _) ->
                                      Some { kind; t; a; b; i; j }))))))))
