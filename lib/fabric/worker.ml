(* The fabric worker loop: claim, execute, steal, repeat until the
   whole sweep is done.

   A worker is a plain process (or an in-process call) sharing one
   store with its peers. All coordination is the store directory:
   lease claims are O_EXCL file creations (Store.Lease), results are
   content-addressed entries, completion markers are .done files. A
   worker therefore needs no channel to its peers, may join or leave
   at any time, and [run] returning means the *sweep* is complete —
   not merely this worker's share — because the final pass loops until
   every range carries a done marker, stealing from any peer whose
   heartbeat went stale on the way. *)

module Lease = Store.Lease

type report = {
  worker : string;
  ranges_claimed : int;
  ranges_stolen : int;
  executed : int;
  cached : int;
}

(* Stable across runs and OCaml versions (unlike Hashtbl.hash), so the
   worker column in merged trace files is comparable between runs. *)
let worker_code id =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) id;
  !h

let run ?(jobs = 1) ?(chunk = 16) ?(ttl = 30.) ?(poll = 0.05) ?on_event
    ~worker cache spec =
  if jobs < 1 then invalid_arg "Fabric.Worker.run: jobs < 1";
  let spec = Spec.validate spec in
  let scenarios = Spec.scenarios spec in
  let points = Array.map Store.Key.of_scenario scenarios in
  let manifest = Store.Manifest.create ~points in
  Store.Manifest.save cache manifest;
  let sweep = manifest.Store.Manifest.sweep_key in
  let ranges = Spec.ranges ~total:(Array.length points) ~chunk in
  let wcode = worker_code worker in
  let emit kind ~a ~b ~range =
    match on_event with
    | None -> ()
    | Some f ->
        f
          {
            Telemetry.Event.kind;
            t = Unix.gettimeofday ();
            a;
            b;
            i = range;
            j = wcode;
          }
  in
  let claimed = ref 0
  and stolen = ref 0
  and executed = Atomic.make 0
  and cached = Atomic.make 0 in
  let run_point last_beat (range, lo, hi) i =
    (if Store.Cache.mem cache points.(i) then Atomic.incr cached
     else begin
       ignore (Store.Sweep.memo_run ~cache ~jobs:1 scenarios.(i));
       Atomic.incr executed
     end);
    (* keep the lease warm from whichever domain finishes a point;
       the CAS makes one beat per interval, the rename makes racing
       beats benign *)
    let now = Unix.gettimeofday () in
    let last = Atomic.get last_beat in
    if now -. last > ttl /. 3. && Atomic.compare_and_set last_beat last now
    then Lease.heartbeat cache ~sweep ~range ~worker ~lo ~hi
  in
  let execute_range pool range (lo, hi) =
    let last_beat = Atomic.make (Unix.gettimeofday ()) in
    let idx = Array.init (hi - lo + 1) (fun k -> lo + k) in
    (match pool with
    | Some p ->
        ignore
          (Parallel.Pool.map_array p (run_point last_beat (range, lo, hi)) idx)
    | None -> Array.iter (run_point last_beat (range, lo, hi)) idx);
    (* completion is judged on the object files themselves, never the
       index: only stat-visible results earn the done marker *)
    let complete =
      Array.for_all (fun i -> Store.Cache.mem cache points.(i)) idx
    in
    if complete then Lease.mark_done cache ~sweep ~range ~worker;
    Lease.release cache ~sweep ~range;
    complete
  in
  let all_done () =
    Array.for_all
      (fun range -> Lease.is_done cache ~sweep ~range)
      (Array.init (Array.length ranges) Fun.id)
  in
  let body pool =
    (* reconcile: a done marker must imply all its points are stored.
       If something evicted a point since (fsck on a corrupt entry),
       revoke the marker so the range becomes claimable and heals. *)
    Array.iteri
      (fun range (lo, hi) ->
        if
          Lease.is_done cache ~sweep ~range
          && not
               (Array.for_all
                  (fun i -> Store.Cache.mem cache points.(i))
                  (Array.init (hi - lo + 1) (fun k -> lo + k)))
        then Lease.clear_done cache ~sweep ~range)
      ranges;
    let continue = ref true in
    while !continue do
      let progress = ref false in
      (* claim pass: free slots first come first served *)
      Array.iteri
        (fun range (lo, hi) ->
          if
            (not (Lease.is_done cache ~sweep ~range))
            && Lease.claim cache ~sweep ~range ~lo ~hi ~worker
          then begin
            if Lease.is_done cache ~sweep ~range then
              (* a peer finished it between our check and claim *)
              Lease.release cache ~sweep ~range
            else begin
              emit Telemetry.Event.Lease_claimed ~a:(float_of_int lo)
                ~b:(float_of_int hi) ~range;
              incr claimed;
              ignore (execute_range pool range (lo, hi))
            end;
            progress := true
          end)
        ranges;
      (* steal pass: ranges still leased by peers whose beat went stale *)
      let now = Unix.gettimeofday () in
      Array.iteri
        (fun range (lo, hi) ->
          if not (Lease.is_done cache ~sweep ~range) then
            match Lease.read cache ~sweep ~range with
            | Some info
              when info.Lease.worker <> worker
                   && Lease.expired ~ttl ~now info ->
                emit Telemetry.Event.Lease_expired
                  ~a:(now -. info.Lease.beat) ~b:0. ~range;
                if Lease.steal cache ~sweep ~range ~lo ~hi ~worker ~ttl ~now
                then begin
                  emit Telemetry.Event.Lease_stolen ~a:(float_of_int lo)
                    ~b:(float_of_int hi) ~range;
                  incr stolen;
                  ignore (execute_range pool range (lo, hi));
                  progress := true
                end
            | _ -> ())
        ranges;
      if all_done () then continue := false
      else if not !progress then
        (* nothing claimable: peers hold live leases — wait for their
           done markers or their heartbeats to expire *)
        Unix.sleepf poll
    done
  in
  if Array.length ranges > 0 then
    if jobs = 1 then body None
    else Parallel.Pool.with_pool ~size:jobs (fun p -> body (Some p));
  {
    worker;
    ranges_claimed = !claimed;
    ranges_stolen = !stolen;
    executed = Atomic.get executed;
    cached = Atomic.get cached;
  }

type progress = { total : int; stored : int; ranges : int; done_ranges : int }

let progress ?(chunk = 16) cache spec =
  let spec = Spec.validate spec in
  let m = Spec.manifest spec in
  let total = Array.length m.Store.Manifest.points in
  let stored = Store.Manifest.progress_of_index cache m in
  let n_ranges = Array.length (Spec.ranges ~total ~chunk) in
  {
    total;
    stored;
    ranges = n_ranges;
    done_ranges = Lease.dones cache ~sweep:m.Store.Manifest.sweep_key;
  }
