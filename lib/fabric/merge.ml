(* Stateless merge: the sweep's output is a pure function of the store
   contents in manifest order. No worker hands results to anyone — the
   merge just reads the per-point entries back, so the bytes cannot
   depend on worker count, join/leave order or steal history. Combined
   with [Cache.memo]'s normalization (cold and warm returns are parses
   of the same stored bytes), the merged document is byte-identical to
   the single-process [Store.Sweep.sweep] path rendered through the
   same functions. *)

module J = Telemetry.Json

type row = {
  point : int;
  seed : int;
  model : string;
  utilization : float;
  drops : int;
  messages : int;
  fairness : float option;
}

let mean vs =
  Array.fold_left ( +. ) 0. vs /. float_of_int (Array.length vs)

(* Rows come off the protocol-agnostic stats view: mean utilization and
   summed drops/messages across replicas (a single run is a 1-replica
   mean, bit-identical to the value itself), fairness only when every
   run exposes per-flow final rates. Any model the scenario layer
   learns to compile gets a row with no new arm here. *)
let row_of ~point ~seed (outcome : Store.Sweep.outcome) =
  let stats = Simnet.Scenario.outcome_stats outcome in
  let rates =
    let all = Array.map (fun s -> s.Simnet.Scenario.final_rates) stats in
    if Array.for_all Option.is_some all then Some (Array.map Option.get all)
    else None
  in
  {
    point;
    seed;
    model = Simnet.Scenario.outcome_model outcome;
    utilization =
      mean (Array.map (fun s -> s.Simnet.Scenario.utilization) stats);
    drops = Array.fold_left (fun acc s -> acc + s.Simnet.Scenario.drops) 0 stats;
    messages =
      Array.fold_left (fun acc s -> acc + s.Simnet.Scenario.messages) 0 stats;
    fairness =
      Option.map
        (fun rss -> mean (Array.map Simnet.Runner.fairness rss))
        rates;
  }

let rows spec outcomes =
  let scenarios = Spec.scenarios spec in
  if Array.length outcomes <> Array.length scenarios then
    invalid_arg "Fabric.Merge: outcome count does not match the spec";
  Array.to_list
    (Array.mapi
       (fun i outcome ->
         row_of ~point:i ~seed:scenarios.(i).Simnet.Scenario.seed outcome)
       outcomes)

let header =
  [ "point"; "seed"; "model"; "utilization"; "drops"; "messages"; "fairness" ]

(* %.17g floats: exact round-trips, and no risk that a future
   float-printing shortcut renders two equal values differently *)
let csv_of spec outcomes =
  Report.Csv.to_string ~header
    ~rows:
      (List.map
         (fun r ->
           [
             string_of_int r.point;
             string_of_int r.seed;
             r.model;
             J.float_full r.utilization;
             string_of_int r.drops;
             string_of_int r.messages;
             (match r.fairness with Some f -> J.float_full f | None -> "");
           ])
         (rows spec outcomes))

let json_of spec outcomes =
  J.obj
    [
      ("fabric", J.int 1);
      ("points", J.int (Array.length outcomes));
      ( "rows",
        J.arr
          (List.map
             (fun r ->
               J.obj
                 ([
                    ("point", J.int r.point);
                    ("seed", J.int r.seed);
                    ("model", J.str r.model);
                    ("utilization", J.float_full r.utilization);
                    ("drops", J.int r.drops);
                    ("messages", J.int r.messages);
                  ]
                 @
                 match r.fairness with
                 | Some f -> [ ("fairness", J.float_full f) ]
                 | None -> []))
             (rows spec outcomes)) );
    ]
  ^ "\n"

let outcomes cache spec =
  let keys = Spec.points spec in
  let missing = ref 0 in
  let out =
    Array.map
      (fun key ->
        match
          (Store.Cache.find_value cache key : Store.Sweep.outcome option)
        with
        | Some o -> Some o
        | None ->
            incr missing;
            None)
      keys
  in
  if !missing > 0 then Error !missing
  else Ok (Array.map Option.get out)

let assembled what cache spec =
  match outcomes cache spec with
  | Ok out -> out
  | Error n ->
      failwith
        (Printf.sprintf "%s: %d of %d points missing from the store" what n
           (Spec.size spec))

let csv cache spec = csv_of spec (assembled "Fabric.Merge.csv" cache spec)
let json cache spec = json_of spec (assembled "Fabric.Merge.json" cache spec)
