(** Stateless sweep assembly.

    The merged document is a pure function of the store contents in
    manifest order: no worker hands results to anyone, the merge reads
    the per-point entries back. Bytes therefore cannot depend on
    worker count, join/leave order or steal history — and because
    {!Store.Cache.memo} normalizes returns through the stored bytes,
    rendering a {!Store.Sweep.sweep} result array through {!csv_of}
    equals a fabric run's {!csv} byte for byte. *)

type row = {
  point : int;  (** manifest index *)
  seed : int;  (** scenario seed *)
  model : string;  (** ["bcn"] / ["e2cm"] / ["fera"] / ["multihop"] *)
  utilization : float;  (** replica mean for BCN *)
  drops : int;  (** summed over replicas / both hops *)
  messages : int;  (** BCN notifications / rate msgs / advertisements *)
  fairness : float option;  (** [None] for multihop *)
}

val row_of : point:int -> seed:int -> Store.Sweep.outcome -> row

val rows : Spec.t -> Store.Sweep.outcome array -> row list

val csv_of : Spec.t -> Store.Sweep.outcome array -> string
(** Render an in-memory outcome array (the single-process comparison
    path). Floats in [%.17g]. *)

val json_of : Spec.t -> Store.Sweep.outcome array -> string

val outcomes :
  Store.Cache.t -> Spec.t -> (Store.Sweep.outcome array, int) result
(** Read every point back from the store, in manifest order;
    [Error n] when [n] points are not stored yet. *)

val csv : Store.Cache.t -> Spec.t -> string
(** {!outcomes} rendered as CSV; raises [Failure] when incomplete. *)

val json : Store.Cache.t -> Spec.t -> string
