(** Sweep specifications: the unit of work a fabric run distributes.

    A spec is pure data with a canonical JSON encoding, so any worker
    handed the same spec derives the same scenario array, the same
    point keys, the same {!Store.Manifest} and the same lease range
    table — which is the whole coordination story: workers never talk
    to each other, they only agree on the spec. *)

type t =
  | Explicit of Simnet.Scenario.t array
      (** the scenarios themselves, in sweep order *)
  | Seeds of { base : Simnet.Scenario.t; first_seed : int; count : int }
      (** [base] re-seeded with [first_seed + i] for [i < count] — the
          compact form for replica studies, where shipping 10⁴ nearly
          identical scenario encodings would be silly *)

val validate : t -> t
(** Returns the spec (scenarios validated) or raises
    [Invalid_argument]: non-empty list, [count >= 1]. *)

val scenarios : t -> Simnet.Scenario.t array
(** Expand to the concrete scenario array, in sweep order. *)

val size : t -> int
(** Number of points without expanding. *)

val points : t -> Store.Key.t array
(** The per-point store keys, in sweep order. *)

val manifest : t -> Store.Manifest.t
(** The manifest every worker saves (idempotently) before working; its
    [sweep_key] names the lease directory. *)

val ranges : total:int -> chunk:int -> (int * int) array
(** Contiguous lease ranges [(lo, hi)] (inclusive) covering
    [0 .. total-1] in [chunk]-sized slices; slot [k] is the array
    index. A pure function of its arguments, so all workers agree. *)

(** {1 Canonical encoding} — single-line JSON,
    [{"fabric": 1, "kind": "list" | "seeds", ...}], scenarios in their
    own canonical encoding ({!Simnet.Scenario.encode}). *)

val encode : t -> string
(** Validates first; only valid specs have an encoding. *)

val decode : string -> (t, string) result
val decode_exn : string -> t
val of_json : Simnet.Json_read.t -> (t, string) result

val describe : t -> string
(** One-line human label. *)
