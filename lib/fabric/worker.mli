(** The fabric worker: claim → execute → steal, until the sweep is
    done.

    A worker is any process (or in-process call) sharing the store with
    its peers; all coordination goes through {!Store.Lease} claim files
    and the content-addressed results themselves, so workers may join
    or leave at any moment. [run] returns only when {e the sweep} is
    complete — every range carries a done marker — stealing work from
    any peer whose heartbeat expired along the way. Killing a worker
    mid-range therefore costs at most one TTL of latency plus the
    re-execution of the points its range had not yet stored. *)

type report = {
  worker : string;
  ranges_claimed : int;  (** freshly claimed free ranges *)
  ranges_stolen : int;  (** expired ranges taken over from peers *)
  executed : int;  (** points this worker simulated *)
  cached : int;  (** points already present when this worker got there *)
}

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?ttl:float ->
  ?poll:float ->
  ?on_event:(Telemetry.Event.t -> unit) ->
  worker:string ->
  Store.Cache.t ->
  Spec.t ->
  report
(** Work the spec to completion. [jobs] (default 1) parallelizes the
    points of a claimed range over a {!Parallel.Pool}; [chunk]
    (default 16) is the lease range size and must match across the
    workers of one run (they derive the slot table from it); [ttl]
    (default 30 s) is the heartbeat time-to-live — a lease whose beat
    is older is stealable; [poll] (default 0.05 s) is the idle sleep
    while waiting on peers. [on_event] receives
    [Lease_claimed]/[Lease_stolen]/[Lease_expired] telemetry records
    (wall-clock [t]). [worker] must be unique among live workers
    (e.g. [host.pid]) — two live workers sharing an id would treat
    each other's leases as their own. *)

type progress = {
  total : int;  (** manifest points *)
  stored : int;  (** points present per the index (advisory) *)
  ranges : int;  (** lease slots at this [chunk] *)
  done_ranges : int;  (** slots carrying a done marker *)
}

val progress : ?chunk:int -> Store.Cache.t -> Spec.t -> progress
(** Observer's view of a fabric run, index-backed (no per-point stat);
    [chunk] must match the workers' for [ranges] to line up. *)
