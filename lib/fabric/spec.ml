module Scenario = Simnet.Scenario
module J = Telemetry.Json

type t =
  | Explicit of Scenario.t array
  | Seeds of { base : Scenario.t; first_seed : int; count : int }

let validate = function
  | Explicit scenarios ->
      if Array.length scenarios = 0 then
        invalid_arg "Fabric.Spec: empty scenario list";
      Explicit (Array.map Scenario.validate scenarios)
  | Seeds { base; first_seed; count } ->
      if count < 1 then invalid_arg "Fabric.Spec: seed count must be >= 1";
      Seeds { base = Scenario.validate base; first_seed; count }

let scenarios = function
  | Explicit scenarios -> Array.copy scenarios
  | Seeds { base; first_seed; count } ->
      Array.init count (fun i -> Scenario.with_seed base (first_seed + i))

let size = function
  | Explicit scenarios -> Array.length scenarios
  | Seeds { count; _ } -> count

let points spec = Array.map Store.Key.of_scenario (scenarios spec)
let manifest spec = Store.Manifest.create ~points:(points spec)

(* Lease ranges: contiguous [chunk]-sized slices of the manifest.
   Purely a function of (total, chunk), so every worker — whatever its
   own chunk default — derives the same slot table when launched with
   the same spec and chunk. *)
let ranges ~total ~chunk =
  if chunk < 1 then invalid_arg "Fabric.Spec.ranges: chunk must be >= 1";
  if total < 0 then invalid_arg "Fabric.Spec.ranges: negative total";
  let n = (total + chunk - 1) / chunk in
  Array.init n (fun k ->
      let lo = k * chunk in
      (lo, min (total - 1) (lo + chunk - 1)))

(* ---------- canonical encoding ---------- *)

let encode spec =
  match validate spec with
  | Explicit scenarios ->
      J.obj
        [
          ("fabric", J.int 1);
          ("kind", J.str "list");
          ( "scenarios",
            J.arr (Array.to_list (Array.map Scenario.encode scenarios)) );
        ]
  | Seeds { base; first_seed; count } ->
      J.obj
        [
          ("fabric", J.int 1);
          ("kind", J.str "seeds");
          ("base", Scenario.encode base);
          ("first_seed", J.int first_seed);
          ("count", J.int count);
        ]

let of_json j =
  let open Simnet.Json_read in
  match
    let what = "fabric spec" in
    let o = as_obj what j in
    (match get_int what o "fabric" with
    | 1 -> ()
    | v -> bad "%s.fabric: unsupported version %d" what v);
    match get_str what o "kind" with
    | "list" -> (
        check_known what [ "fabric"; "kind"; "scenarios" ] o;
        match field o "scenarios" with
        | Some (Jarr items) ->
            let scenarios =
              List.map
                (fun item ->
                  match Scenario.of_json item with
                  | Ok s -> s
                  | Error msg -> bad "%s.scenarios: %s" what msg)
                items
            in
            if scenarios = [] then bad "%s.scenarios: empty" what;
            Explicit (Array.of_list scenarios)
        | Some _ -> bad "%s.scenarios: expected an array" what
        | None -> bad "%s.scenarios: missing" what)
    | "seeds" -> (
        check_known what [ "fabric"; "kind"; "base"; "first_seed"; "count" ] o;
        match field o "base" with
        | None -> bad "%s.base: missing" what
        | Some b -> (
            match Scenario.of_json b with
            | Error msg -> bad "%s.base: %s" what msg
            | Ok base ->
                let count = get_int what o "count" in
                if count < 1 then bad "%s.count: must be >= 1" what;
                Seeds
                  { base; first_seed = get_int what o "first_seed"; count }))
    | other -> bad "%s.kind: unknown kind %S" what other
  with
  | spec -> Ok spec
  | exception Bad msg -> Error msg

let decode s =
  let open Simnet.Json_read in
  match parse s with
  | j -> of_json j
  | exception Bad msg -> Error msg

let decode_exn s =
  match decode s with Ok spec -> spec | Error msg -> invalid_arg msg

let describe = function
  | Explicit scenarios ->
      Printf.sprintf "%d scenarios (%s, ...)" (Array.length scenarios)
        (Scenario.describe scenarios.(0))
  | Seeds { base; first_seed; count } ->
      Printf.sprintf "%s, seeds %d..%d" (Scenario.describe base) first_seed
        (first_seed + count - 1)
