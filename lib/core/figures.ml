open Numerics

(* ------------------------------------------------------------------ *)
(* Output helpers                                                      *)
(* ------------------------------------------------------------------ *)

let ensure_dir dir =
  let rec mk d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  mk dir

let csv_path out name =
  match out with
  | None -> None
  | Some dir ->
      ensure_dir dir;
      Some (Filename.concat dir name)

let write_traj_csv out name (points : (float * Vec2.t) array) =
  match csv_path out name with
  | None -> ()
  | Some path ->
      let ts = Array.map fst points in
      let xs = Array.map (fun (_, p) -> p.Vec2.x) points in
      let ys = Array.map (fun (_, p) -> p.Vec2.y) points in
      Report.Csv.write_columns ~path ~header:[ "t"; "x"; "y" ]
        ~cols:[ ts; xs; ys ]

let phase_curves curves = Report.Ascii_plot.render ~width:68 ~height:22 curves

let buf_add = Buffer.add_string

(* ------------------------------------------------------------------ *)
(* Shared parameter sets                                               *)
(* ------------------------------------------------------------------ *)

let default = Fluid.Params.default

(* Node regimes need a steep switching line; reached here by raising the
   weight w (k = w/(pm·C) grows with w). See EXPERIMENTS.md. *)
let case2_params = Fluid.Params.with_sampling ~w:8000. default

let case3_params =
  Fluid.Params.with_gains ~gd:1. (Fluid.Params.with_sampling ~w:3000. default)

let case4_params = Fluid.Params.with_sampling ~w:30000. default

let big_buffer p = Fluid.Params.with_buffer p (2. *. Fluid.Criterion.required_buffer p)

(* ------------------------------------------------------------------ *)
(* Fig. 3 — taxonomy                                                   *)
(* ------------------------------------------------------------------ *)

let genuine_limit_cycle_system () =
  (* Variable-structure system with an unstable focus in the increase
     region and a BCN-style nonlinear damping in the decrease region:
     amplitude-independent growth vs amplitude-strengthening contraction
     intersect in an isolated, orbitally stable limit cycle. *)
  let k = 0.1 in
  let cap = 10. in
  let b = 2. in
  let n1 = 25. and m1 = 4. in
  let sigma (p : Vec2.t) = -.(p.Vec2.x +. (k *. p.Vec2.y)) in
  (* [rhs]/[batch] mirror the closures below expression-for-expression
     (same ops, same order), so the fast paths stay bit-identical to
     closure evaluation. *)
  let rhs (y : float array) (dst : float array) =
    let lin = y.(0) +. (k *. y.(1)) in
    dst.(0) <- y.(1);
    dst.(1) <-
      (if -.lin >= 0. then (-.n1 *. y.(0)) +. (m1 *. y.(1))
       else -.b *. (y.(1) +. cap) *. lin)
  in
  let batch (bt : Ode.Batch.t) xs ys dxs dys =
    let nn = bt.Ode.Batch.n in
    let sg = bt.Ode.Batch.sg and sa = bt.Ode.Batch.sa and sb = bt.Ode.Batch.sb in
    for i = 0 to nn - 1 do
      let xv = Array.unsafe_get xs i and yv = Array.unsafe_get ys i in
      let lin = xv +. (k *. yv) in
      Array.unsafe_set sg i (-.lin);
      Array.unsafe_set sa i ((-.n1 *. xv) +. (m1 *. yv));
      Array.unsafe_set sb i (-.b *. (yv +. cap) *. lin)
    done;
    Array.blit ys 0 dxs 0 nn;
    Ode.Batch.select bt ~mask:sg ~pos:sa ~neg:sb ~dst:dys
  in
  let sys =
    Phaseplane.System.Switched_fast
      {
        sigma;
        pos =
          (fun p -> Vec2.make p.Vec2.y ((-.n1 *. p.Vec2.x) +. (m1 *. p.Vec2.y)));
        neg =
          (fun p ->
            Vec2.make p.Vec2.y
              (-.b
               *. (p.Vec2.y +. cap)
               *. (p.Vec2.x +. (k *. p.Vec2.y))));
        rhs;
        batch;
      }
  in
  (sys, 2.0)

let fig3_taxonomy ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "Fig. 3 -- taxonomy of phase trajectories (one concrete system per \
     class)\n\n";
  let rows = ref [] in
  let add label verdict = rows := [ label; verdict ] :: !rows in
  (* l1: diverging spiral (unstable focus) *)
  let j_unstable_focus = Mat2.make 0. 1. (-25.) 2. in
  add "(1) diverging spiral"
    (Phaseplane.Singular.eigen_summary j_unstable_focus);
  (* l2: diverging node *)
  let j_unstable_node = Mat2.make 0. 1. (-25.) 11. in
  add "(2) diverging node" (Phaseplane.Singular.eigen_summary j_unstable_node);
  (* l3: overflow — the draft parameters with the BDP buffer *)
  let v3 = Fluid.Stability.analyze default in
  add "(3) buffer overflow (BDP buffer)"
    (Printf.sprintf "max q = %s > B = %s -> drops"
       (Report.Table.si (v3.Fluid.Stability.numeric_max +. default.Fluid.Params.q0))
       (Report.Table.si default.Fluid.Params.buffer));
  (* l4: underflow. From the canonical start (-q0, 0) the Theorem-1 proof
     guarantees min1 x > -q0 (checked by the property tests), so the
     paper's curve (4) needs a different launch: a queue far above the
     reference whose correction transient swings below empty. Shown in
     generic units (q0 = 2.5, focus with beta ~ 4.9) from (2.4, -25). *)
  let generic_focus = Phaseplane.System.linear (Mat2.make 0. 1. (-25.) (-2.)) in
  let tr4 =
    Phaseplane.Trajectory.integrate ~t_max:5. generic_focus (Vec2.make 2.4 (-25.))
  in
  add "(4) queue underflow (start far above q0)"
    (Printf.sprintf
       "min x = %.2f < -q0 = -2.5 -> empty queue (note: impossible from \
        (-q0,0): the proof gives min1 > -q0)"
       (Phaseplane.Trajectory.x_min tr4));
  (* l5+l7: limit cycle in a variable-structure system *)
  let lc_sys, s0 = genuine_limit_cycle_system () in
  let sec =
    Phaseplane.Poincare.line_section ~dir:Ode.Up ~normal:(Vec2.make 1. 0.1) ()
  in
  let lc = Phaseplane.Limit_cycle.detect ~max_iters:400 lc_sys sec ~s0 in
  add "(5)+(7) limit cycle"
    (match lc with
    | Phaseplane.Limit_cycle.Cycle { s_star; period; multiplier; _ } ->
        Printf.sprintf "cycle at s* = %.4f, period %.4f%s" s_star period
          (match multiplier with
          | Some m -> Printf.sprintf ", multiplier %.3f" m
          | None -> "")
    | Phaseplane.Limit_cycle.Converges_to_origin -> "no cycle (converges)"
    | Phaseplane.Limit_cycle.Diverges -> "diverges"
    | Phaseplane.Limit_cycle.Contracting _ -> "contracting"
    | Phaseplane.Limit_cycle.Expanding _ -> "expanding"
    | Phaseplane.Limit_cycle.Inconclusive m -> "inconclusive: " ^ m);
  (* l6/l8/l9: strongly stable — Theorem-1-sized buffer *)
  let p6 = big_buffer default in
  let v6 = Fluid.Stability.analyze p6 in
  add "(6)(8)(9) strongly stable (B = 2x required)"
    (Printf.sprintf "max q = %s < B = %s; strongly stable = %b"
       (Report.Table.si (v6.Fluid.Stability.numeric_max +. p6.Fluid.Params.q0))
       (Report.Table.si p6.Fluid.Params.buffer)
       v6.Fluid.Stability.strongly_stable);
  buf_add buf
    (Report.Table.render ~headers:[ "trajectory class"; "library verdict" ]
       ~rows:(List.rev !rows));
  (* sample the strongly stable trajectory for the phase sketch *)
  let sys = Fluid.Model.normalized_system p6 in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:0.004 sys (Fluid.Model.start_point p6)
  in
  write_traj_csv out "fig3_stable_trajectory.csv" (Phaseplane.Trajectory.points tr);
  let pts =
    Array.to_list (Phaseplane.Trajectory.points tr)
    |> List.map (fun (_, p) -> (p.Vec2.x /. 1e6, p.Vec2.y /. 1e9))
  in
  buf_add buf "\nPhase sketch of the strongly stable trajectory (class 6):\n";
  buf_add buf
    (phase_curves
       [ Report.Ascii_plot.curve "x (Mbit) vs y (Gbit/s)" pts ]);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fig. 4 — spiral                                                     *)
(* ------------------------------------------------------------------ *)

let fig4_spiral ?out () =
  let buf = Buffer.create 4096 in
  let p = default in
  let c = Fluid.Spiral.of_region p Fluid.Linearized.Increase in
  buf_add buf
    (Printf.sprintf
       "Fig. 4 -- logarithmic-spiral trajectories (m^2 - 4n < 0)\n\
        increase-region linearization of the draft parameters: alpha = %g, \
        beta = %g\n\n"
       c.Fluid.Spiral.alpha c.Fluid.Spiral.beta);
  let q0 = p.Fluid.Params.q0 in
  let inits = [ (-.q0, 5e8); (0.6 *. q0, -4e8) ] in
  let period = Fluid.Spiral.period c in
  let rows = ref [] in
  let curves =
    List.mapi
      (fun i (x0, y0) ->
        let n_pts = 600 in
        let pts =
          List.init n_pts (fun j ->
              let t = 1.5 *. period *. float_of_int j /. float_of_int (n_pts - 1) in
              let x, y = Fluid.Spiral.solution c ~x0 ~y0 t in
              (t, x, y))
        in
        (match csv_path out (Printf.sprintf "fig4_spiral_%d.csv" (i + 1)) with
        | Some path ->
            Report.Csv.write_floats ~path ~header:[ "t"; "x"; "y" ]
              (List.map (fun (t, x, y) -> [ t; x; y ]) pts)
        | None -> ());
        (* closed-form extremum vs the sampled extremum *)
        let analytic = Fluid.Spiral.extremum c ~x0 ~y0 in
        let paper = Fluid.Spiral.extremum_paper c ~x0 ~y0 in
        let sampled =
          List.fold_left
            (fun acc (_, x, _) ->
              if y0 >= 0. then Float.max acc x else Float.min acc x)
            (if y0 >= 0. then neg_infinity else infinity)
            pts
        in
        rows :=
          [
            Printf.sprintf "(%s, %s)" (Report.Table.si x0) (Report.Table.si y0);
            (if y0 >= 0. then "max_s" else "min_s");
            Report.Table.si analytic;
            Report.Table.si paper;
            Report.Table.si sampled;
          ]
          :: !rows;
        Report.Ascii_plot.curve
          (Printf.sprintf "from (%s, %s)" (Report.Table.si x0)
             (Report.Table.si y0))
          (List.map (fun (_, x, y) -> (x /. 1e6, y /. 1e9)) pts))
      inits
  in
  buf_add buf
    (Report.Table.render
       ~headers:
         [ "initial point"; "extremum"; "closed form"; "paper (19)/(20)"; "sampled" ]
       ~rows:(List.rev !rows));
  buf_add buf "\nPhase plane (x in Mbit, y in Gbit/s):\n";
  buf_add buf (phase_curves curves);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Fig. 5 — node                                                       *)
(* ------------------------------------------------------------------ *)

let fig5_node ?out () =
  let buf = Buffer.create 4096 in
  let p = case4_params in
  let c = Fluid.Node.of_region p Fluid.Linearized.Decrease in
  buf_add buf
    (Printf.sprintf
       "Fig. 5 -- node trajectories (m^2 - 4n > 0)\n\
        decrease-region linearization at w = %g: l1 = %g, l2 = %g\n\n"
       p.Fluid.Params.w (Fluid.Node.fast_slope c) (Fluid.Node.slow_slope c));
  let q0 = p.Fluid.Params.q0 in
  let inits =
    [ (-.q0, 4e8); (-0.5 *. q0, -3e8); (0.8 *. q0, 2e8); (0.4 *. q0, -4e8) ]
  in
  let horizon = 4. /. Float.abs (Fluid.Node.slow_slope c) in
  let rows = ref [] in
  let curves =
    List.mapi
      (fun i (x0, y0) ->
        let n_pts = 500 in
        let pts =
          List.init n_pts (fun j ->
              let t = horizon *. float_of_int j /. float_of_int (n_pts - 1) in
              let x, y = Fluid.Node.solution c ~x0 ~y0 t in
              (t, x, y))
        in
        (match csv_path out (Printf.sprintf "fig5_node_%d.csv" (i + 1)) with
        | Some path ->
            Report.Csv.write_floats ~path ~header:[ "t"; "x"; "y" ]
              (List.map (fun (t, x, y) -> [ t; x; y ]) pts)
        | None -> ());
        let analytic = Fluid.Node.extremum c ~x0 ~y0 in
        let paper = Fluid.Node.extremum_paper c ~x0 ~y0 in
        let sampled =
          List.fold_left
            (fun acc (_, x, _) ->
              if y0 >= 0. then Float.max acc x else Float.min acc x)
            (if y0 >= 0. then neg_infinity else infinity)
            pts
        in
        rows :=
          [
            Printf.sprintf "(%s, %s)" (Report.Table.si x0) (Report.Table.si y0);
            (match analytic with
            | Some v -> Report.Table.si v
            | None -> "monotone (none)");
            Report.Table.si paper;
            Report.Table.si sampled;
          ]
          :: !rows;
        Report.Ascii_plot.curve
          (Printf.sprintf "from (%s, %s)" (Report.Table.si x0)
             (Report.Table.si y0))
          (List.map (fun (_, x, y) -> (x /. 1e6, y /. 1e9)) pts))
      inits
  in
  buf_add buf
    (Report.Table.render
       ~headers:[ "initial point"; "extremum mump (exact)"; "paper (28)"; "sampled" ]
       ~rows:(List.rev !rows));
  buf_add buf "\nPhase plane (x in Mbit, y in Gbit/s); eigenlines y = l1 x, y = l2 x:\n";
  let eig_line slope =
    List.init 40 (fun i ->
        let x = (-.q0 +. (2. *. q0 *. float_of_int i /. 39.)) /. 1e6 in
        (x, slope *. x *. 1e6 /. 1e9))
  in
  let curves =
    curves
    @ [
        Report.Ascii_plot.curve ~glyph:'1' "y = l1 x"
          (eig_line (Fluid.Node.fast_slope c));
        Report.Ascii_plot.curve ~glyph:'2' "y = l2 x"
          (eig_line (Fluid.Node.slow_slope c));
      ]
  in
  buf_add buf (phase_curves curves);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Case figures 6 / 8 / 9 / 10 share a renderer                        *)
(* ------------------------------------------------------------------ *)

let render_case_figure ?out ~id ~title p =
  let buf = Buffer.create 8192 in
  let v = Fluid.Stability.analyze p in
  buf_add buf
    (Printf.sprintf "%s\nparameters: w = %g, Gd = %g -> %s\n\n" title
       p.Fluid.Params.w p.Fluid.Params.gd
       (Fluid.Cases.describe (Fluid.Cases.classify p)));
  (* nonlinear trajectory *)
  let horizon = 12. *. Float.max
      (2. *. Float.pi /. sqrt (Fluid.Linearized.stiffness p Fluid.Linearized.Increase))
      (2. *. Float.pi /. sqrt (Fluid.Linearized.stiffness p Fluid.Linearized.Decrease))
  in
  let sys = Fluid.Model.normalized_system p in
  let tr = Phaseplane.Trajectory.integrate ~t_max:horizon sys (Fluid.Model.start_point p) in
  write_traj_csv out (id ^ "_nonlinear.csv") (Phaseplane.Trajectory.points tr);
  (* piecewise-linear (the paper's analysis object) *)
  let segs = Fluid.Flowmap.trace p (Fluid.Model.start_point p) in
  let lin_pts = Fluid.Flowmap.sample p segs ~dt:(horizon /. 2000.) in
  (match csv_path out (id ^ "_linearized.csv") with
  | Some path ->
      Report.Csv.write_floats ~path ~header:[ "t"; "x"; "y" ]
        (List.map (fun (t, (pt : Vec2.t)) -> [ t; pt.Vec2.x; pt.Vec2.y ]) lin_pts)
  | None -> ());
  let fmt_opt = function Some x -> Report.Table.si x | None -> "none" in
  buf_add buf
    (Report.Table.render
       ~headers:[ "quantity"; "linearized (closed form)"; "nonlinear (numeric)"; "Theorem-1 bound" ]
       ~rows:
         [
           [
             "first overshoot max1 x";
             fmt_opt v.Fluid.Stability.analytic_max;
             Report.Table.si v.Fluid.Stability.numeric_max;
             Report.Table.si (Fluid.Criterion.overshoot_bound p);
           ];
           [
             "first undershoot min1 x";
             fmt_opt v.Fluid.Stability.analytic_min;
             Report.Table.si v.Fluid.Stability.numeric_min;
             Report.Table.si (-.p.Fluid.Params.q0);
           ];
           [
             "strongly stable";
             (match v.Fluid.Stability.analytic_strongly_stable with
             | Some b -> string_of_bool b
             | None -> "n/a");
             string_of_bool v.Fluid.Stability.strongly_stable;
             string_of_bool (Fluid.Criterion.satisfied p);
           ];
         ]);
  (* phase plane *)
  let pts_nl =
    Array.to_list (Phaseplane.Trajectory.points tr)
    |> List.map (fun (_, pt) -> (pt.Vec2.x /. 1e6, pt.Vec2.y /. 1e9))
  in
  let pts_lin =
    List.map (fun (_, (pt : Vec2.t)) -> (pt.Vec2.x /. 1e6, pt.Vec2.y /. 1e9)) lin_pts
  in
  let k = Fluid.Params.k p in
  (* parameterize the switching line by y: with k = w/(pm·C) tiny, the
     line x = −k·y is nearly vertical in (x, y) and would blow up the
     plot range if parameterized by x *)
  let y_lo, y_hi =
    List.fold_left
      (fun (lo, hi) (_, y) -> (Float.min lo (y *. 1e9), Float.max hi (y *. 1e9)))
      (infinity, neg_infinity) pts_nl
  in
  let switch_line =
    List.init 40 (fun i ->
        let y = y_lo +. ((y_hi -. y_lo) *. float_of_int i /. 39.) in
        (-.k *. y /. 1e6, y /. 1e9))
  in
  buf_add buf "\n(a) phase plane (x in Mbit, y in Gbit/s):\n";
  buf_add buf
    (phase_curves
       [
         Report.Ascii_plot.curve ~glyph:'*' "nonlinear" pts_nl;
         Report.Ascii_plot.curve ~glyph:'o' "linearized" pts_lin;
         Report.Ascii_plot.curve ~glyph:'.' "switching line x + ky = 0" switch_line;
       ]);
  (* time series *)
  let xs = Phaseplane.Trajectory.x_series tr in
  let ys = Phaseplane.Trajectory.y_series tr in
  buf_add buf "\n(b) x(t) = q - q0 (Mbit):\n";
  buf_add buf
    (Report.Ascii_plot.render ~width:68 ~height:12
       [ Report.Ascii_plot.of_series "x(t)" (Series.map (fun v -> v /. 1e6) xs) ]);
  buf_add buf "\n(c) y(t) = N r - C (Gbit/s):\n";
  buf_add buf
    (Report.Ascii_plot.render ~width:68 ~height:12
       [ Report.Ascii_plot.of_series "y(t)" (Series.map (fun v -> v /. 1e9) ys) ]);
  Buffer.contents buf

let fig6_case1 ?out () =
  render_case_figure ?out ~id:"fig6"
    ~title:"Fig. 6 -- Case 1 trajectory and dynamics (draft parameters)"
    (big_buffer default)

let fig8_case2 ?out () =
  render_case_figure ?out ~id:"fig8"
    ~title:"Fig. 8 -- Case 2: node in I-region, spiral in D-region"
    (big_buffer case2_params)

let fig9_case3 ?out () =
  render_case_figure ?out ~id:"fig9"
    ~title:"Fig. 9 -- Case 3: spiral in I-region, node in D-region (no overshoot)"
    (big_buffer case3_params)

let fig10_case4 ?out () =
  render_case_figure ?out ~id:"fig10"
    ~title:"Fig. 10 -- Case 4: node in both regions (monotone approach)"
    (big_buffer case4_params)

(* ------------------------------------------------------------------ *)
(* Fig. 7 — limit cycle                                                *)
(* ------------------------------------------------------------------ *)

let fig7_limit_cycle ?out () =
  let buf = Buffer.create 8192 in
  buf_add buf "Fig. 7 -- limit-cycle motion\n\n";
  (* (a) quasi-periodic amplitude sequence of BCN at draft parameters *)
  let p = big_buffer default in
  let sys = Fluid.Model.normalized_system p in
  let sec = Analysis.switching_section p in
  let horizon = 0.05 in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:0.005 sys (Fluid.Model.start_point p)
  in
  (match tr.Phaseplane.Trajectory.switch_crossings with
  | [] -> buf_add buf "(a) no switching crossing found\n"
  | { Phaseplane.Trajectory.cp; _ } :: _ ->
      let s0 = sec.Phaseplane.Poincare.coord_of cp in
      let hist =
        Phaseplane.Limit_cycle.amplitude_history ~t_max:horizon sys sec ~n:40 ~s0
      in
      let ratios =
        match hist with
        | [] | [ _ ] -> []
        | first :: _ ->
            List.filteri (fun i _ -> i > 0) hist
            |> List.map2
                 (fun a b -> b /. a)
                 (List.filteri (fun i _ -> i < List.length hist - 1) hist)
            |> fun l ->
            ignore first;
            l
      in
      let mean_ratio =
        if ratios = [] then nan
        else List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios)
      in
      buf_add buf
        (Printf.sprintf
           "(a) BCN (draft parameters): return-map amplitudes are \
            quasi-constant\n    mean contraction per return = %.6f (1.0 = \
            perfect cycle)\n"
           mean_ratio);
      (match csv_path out "fig7_bcn_amplitudes.csv" with
      | Some path ->
          Report.Csv.write_floats ~path ~header:[ "k"; "amplitude" ]
            (List.mapi (fun i s -> [ float_of_int i; s ]) hist)
      | None -> ());
      let amp_series =
        Series.make
          (Array.of_list (List.mapi (fun i _ -> float_of_int i) hist))
          (Array.of_list hist)
      in
      buf_add buf "    amplitude vs return index:\n";
      buf_add buf
        (Report.Ascii_plot.render ~width:60 ~height:10
           [ Report.Ascii_plot.of_series "s_k" amp_series ]));
  (* (b) a genuine limit cycle in a variable-structure system *)
  let lc_sys, s0 = genuine_limit_cycle_system () in
  let lc_sec =
    Phaseplane.Poincare.line_section ~dir:Ode.Up ~normal:(Vec2.make 1. 0.1) ()
  in
  (match Phaseplane.Limit_cycle.detect ~max_iters:400 lc_sys lc_sec ~s0 with
  | Phaseplane.Limit_cycle.Cycle { s_star; period; multiplier; stable } ->
      buf_add buf
        (Printf.sprintf
           "\n(b) genuine limit cycle (unstable focus in I-region): s* = %.4f, \
            period = %.4f, multiplier = %s, orbitally stable = %s\n"
           s_star period
           (match multiplier with Some m -> Printf.sprintf "%.4f" m | None -> "?")
           (match stable with Some b -> string_of_bool b | None -> "?"));
      (* sample the closed orbit *)
      let start = lc_sec.Phaseplane.Poincare.point_of s_star in
      let orbit =
        Phaseplane.Trajectory.integrate ~t_max:(1.05 *. period) lc_sys start
      in
      write_traj_csv out "fig7_cycle_orbit.csv" (Phaseplane.Trajectory.points orbit);
      let pts =
        Array.to_list (Phaseplane.Trajectory.points orbit)
        |> List.map (fun (_, pt) -> (pt.Vec2.x, pt.Vec2.y))
      in
      buf_add buf "    the closed orbit:\n";
      buf_add buf (phase_curves [ Report.Ascii_plot.curve "limit cycle" pts ])
  | v ->
      buf_add buf
        (Printf.sprintf "\n(b) limit-cycle detection returned: %s\n"
           (match v with
           | Phaseplane.Limit_cycle.Converges_to_origin -> "converges"
           | Phaseplane.Limit_cycle.Diverges -> "diverges"
           | Phaseplane.Limit_cycle.Contracting { ratio; _ } ->
               Printf.sprintf "contracting (%.4f)" ratio
           | Phaseplane.Limit_cycle.Expanding { ratio; _ } ->
               Printf.sprintf "expanding (%.4f)" ratio
           | Phaseplane.Limit_cycle.Inconclusive m -> m
           | Phaseplane.Limit_cycle.Cycle _ -> assert false)));
  (* (c) sustained oscillation of the literal packet-level BCN *)
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:0.02 p) with
      Simnet.Runner.mode = Simnet.Source.Literal;
      initial_rate = 0.5 *. Fluid.Params.equilibrium_rate p;
    }
  in
  let r = Simnet.Runner.run cfg in
  let tail = Series.tail_from r.Simnet.Runner.queue 0.01 in
  (match csv_path out "fig7_packet_queue.csv" with
  | Some path -> Report.Csv.write_series ~path ~name:"queue_bits" r.Simnet.Runner.queue
  | None -> ());
  buf_add buf
    (Printf.sprintf
       "\n(c) literal per-message BCN (packet level): queue oscillates \
        without settling\n    tail mean = %s bit, tail std = %s bit (q0 = %s \
        bit)\n    queue sparkline: %s\n"
       (Report.Table.si (Stats.mean tail.Series.vs))
       (Report.Table.si (Stats.stddev tail.Series.vs))
       (Report.Table.si p.Fluid.Params.q0)
       (Report.Ascii_plot.sparkline r.Simnet.Runner.queue));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* T1 — Theorem-1 worked example + sweeps                              *)
(* ------------------------------------------------------------------ *)

let t1_criterion ?out () =
  let buf = Buffer.create 4096 in
  let p = default in
  buf_add buf "Theorem 1 -- worked example and parameter sweeps\n\n";
  let req = Fluid.Criterion.required_buffer p in
  buf_add buf
    (Printf.sprintf
       "draft example (N=50, C=10G, q0=2.5M, Gi=4, Gd=1/128, Ru=8M):\n\
       \  required buffer = %s bit   (paper: 13.75 Mbit)\n\
       \  BDP (0.5 ms)    = %s bit   (paper: 5 Mbit)\n\
       \  ratio           = %.2fx    (paper: ~2.75x)\n\
       \  warm-up T0      = %g s\n\n"
       (Report.Table.si req)
       (Report.Table.si (Fluid.Params.bdp_buffer p ~rtt:5e-4))
       (Fluid.Criterion.vs_bdp p ~rtt:5e-4)
       (Fluid.Model.warmup_duration p));
  let sweep label values param_of =
    let rows =
      List.map
        (fun v ->
          let pv = param_of v in
          let vv = Fluid.Stability.analyze pv in
          [
            Printf.sprintf "%g" v;
            Report.Table.si (Fluid.Criterion.required_buffer pv);
            Report.Table.si (Fluid.Criterion.overshoot_bound pv);
            Report.Table.si (vv.Fluid.Stability.numeric_max +. pv.Fluid.Params.q0);
            Printf.sprintf "%g" (Fluid.Criterion.startup_time pv);
          ])
        values
    in
    buf_add buf (Printf.sprintf "sweep over %s:\n" label);
    buf_add buf
      (Report.Table.render
         ~headers:[ label; "required B"; "bound on max x"; "measured max q"; "T0 (s)" ]
         ~rows);
    buf_add buf "\n";
    rows
  in
  let gi_rows = sweep "Gi" [ 0.5; 1.; 2.; 4.; 8. ] (fun gi -> Fluid.Params.with_gains ~gi p) in
  let gd_rows =
    sweep "Gd" [ 1. /. 512.; 1. /. 256.; 1. /. 128.; 1. /. 64.; 1. /. 32. ]
      (fun gd -> Fluid.Params.with_gains ~gd p)
  in
  let q0_rows =
    sweep "q0 (bit)" [ 0.5e6; 1e6; 2.5e6; 5e6 ]
      (fun q0 -> Fluid.Params.with_q0 (Fluid.Params.with_buffer p 40e6) q0)
  in
  let n_rows =
    sweep "N" [ 10.; 25.; 50.; 100.; 200. ]
      (fun n -> Fluid.Params.with_flows p (int_of_float n))
  in
  ignore (gi_rows, gd_rows, q0_rows, n_rows);
  (match csv_path out "t1_sweeps.csv" with
  | Some path ->
      let all_rows =
        List.concat
          [
            List.map (fun r -> "Gi" :: r) gi_rows;
            List.map (fun r -> "Gd" :: r) gd_rows;
            List.map (fun r -> "q0" :: r) q0_rows;
            List.map (fun r -> "N" :: r) n_rows;
          ]
      in
      Report.Csv.write ~path
        ~header:[ "sweep"; "value"; "required_B"; "bound_max_x"; "measured_max_q"; "T0" ]
        ~rows:all_rows
  | None -> ());
  buf_add buf
    (Printf.sprintf
       "parameter engineering at B = %s bit (draft BDP buffer):\n\
       \  largest stable Gi  = %.4g\n\
       \  smallest stable Gd = %.6g (= 1/%.0f)\n\
       \  largest stable q0  = %s bit\n\
       \  largest stable N   = %d flows\n"
       (Report.Table.si p.Fluid.Params.buffer)
       (Fluid.Criterion.gi_max p) (Fluid.Criterion.gd_min p)
       (1. /. Fluid.Criterion.gd_min p)
       (Report.Table.si (Fluid.Criterion.q0_max p))
       (Fluid.Criterion.n_flows_max p));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* V1 — fluid vs packet                                                *)
(* ------------------------------------------------------------------ *)

let v1_fluid_vs_packet ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf "V1 -- fluid-model validation against the packet simulator\n\n";
  let p = Compare.validation_params in
  let r = Compare.fluid_vs_packet p in
  (match csv_path out "v1_queues.csv" with
  | Some path ->
      let qs = Series.resample r.Compare.packet_queue 1000 in
      let qf = Array.map (fun t -> Series.at r.Compare.fluid_queue t) qs.Series.ts in
      Report.Csv.write_columns ~path ~header:[ "t"; "q_packet"; "q_fluid" ]
        ~cols:[ qs.Series.ts; qs.Series.vs; qf ]
  | None -> ());
  buf_add buf
    (Report.Table.render
       ~headers:[ "metric"; "value" ]
       ~rows:
         [
           [ "queue RMSE (bit)"; Report.Table.si r.Compare.rmse ];
           [ "queue RMSE / q0"; Printf.sprintf "%.3f" r.Compare.rmse_rel_q0 ];
           [ "correlation"; Printf.sprintf "%.3f" r.Compare.corr ];
           [ "packet tail mean (bit)"; Report.Table.si r.Compare.packet_mean_tail ];
           [ "fluid tail mean (bit)"; Report.Table.si r.Compare.fluid_mean_tail ];
           [ "packet drops"; string_of_int r.Compare.packet_drops ];
           [ "utilization"; Printf.sprintf "%.3f" r.Compare.utilization ];
         ]);
  buf_add buf "\nqueue traces (bit):\n";
  buf_add buf
    (Report.Ascii_plot.render ~width:68 ~height:14
       [
         Report.Ascii_plot.of_series ~glyph:'p' "packet"
           (Series.resample r.Compare.packet_queue 300);
         Report.Ascii_plot.of_series ~glyph:'f' "fluid"
           (Series.resample r.Compare.fluid_queue 300);
       ]);
  (* sampling ablation: deterministic vs Bernoulli vs timer *)
  buf_add buf "\nsampling ablation (same parameters):\n";
  let run_with label sampling =
    let cfg =
      {
        (Simnet.Runner.default_config ~t_end:0.3 ~sample_dt:3e-4 p) with
        Simnet.Runner.broadcast_feedback = true;
        sampling;
        initial_rate = p.Fluid.Params.mu;
        enable_pause = false;
      }
    in
    let res = Simnet.Runner.run cfg in
    let tail = Series.tail_from res.Simnet.Runner.queue 0.15 in
    [
      label;
      Report.Table.si (Stats.mean tail.Series.vs);
      Report.Table.si (Stats.stddev tail.Series.vs);
      Printf.sprintf "%.3f" res.Simnet.Runner.utilization;
      string_of_int res.Simnet.Runner.drops;
    ]
  in
  let rows =
    [
      run_with "deterministic 1/pm" Simnet.Switch.Deterministic;
      run_with "Bernoulli(pm)"
        (Simnet.Switch.Bernoulli (Random.State.make [| 42 |]));
      run_with "timer (eqn 5)"
        (Simnet.Switch.Timer (Simnet.Switch.fluid_sampling_period p));
    ]
  in
  buf_add buf
    (Report.Table.render
       ~headers:[ "sampling"; "tail mean q"; "tail std q"; "utilization"; "drops" ]
       ~rows);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* V2 — linear verdict vs strong stability                             *)
(* ------------------------------------------------------------------ *)

let v2_linear_vs_strong ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "V2 -- linear-theory verdict (ref. [4]) vs Theorem 1 vs measured strong \
     stability\n\n";
  let rows = Compare.linear_vs_strong Compare.default_sweep in
  let table_rows =
    List.map
      (fun (row : Compare.linear_vs_strong_row) ->
        [
          row.Compare.label;
          (if row.Compare.linear_stable then "stable" else "unstable");
          (if row.Compare.theorem1 then "yes" else "no");
          (if row.Compare.numeric_strongly_stable then "yes" else "NO (violates)");
          Report.Table.si row.Compare.numeric_max_q;
          Report.Table.si row.Compare.params.Fluid.Params.buffer;
        ])
      rows
  in
  (match csv_path out "v2_verdicts.csv" with
  | Some path ->
      Report.Csv.write ~path
        ~header:[ "config"; "linear"; "theorem1"; "strong"; "max_q"; "B" ]
        ~rows:table_rows
  | None -> ());
  buf_add buf
    (Report.Table.render
       ~headers:
         [ "configuration"; "linear theory"; "Theorem 1"; "strongly stable"; "max q"; "B" ]
       ~rows:table_rows);
  buf_add buf
    "\nEvery configuration is \"stable\" to linear theory (Proposition 1); \
     only the phase-plane criterion separates the overflowing ones.\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A1 — transient ablation over the sampling parameters w and pm       *)
(* ------------------------------------------------------------------ *)

let a1_transient_sampling ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "A1 -- transient performance vs the sampling parameters (paper Remarks: \
     w and pm do not move the Theorem-1 bound; they only shape the \
     transient)\n\n";
  let p = big_buffer default in
  let render_sweep label param_of values =
    let rows =
      Fluid.Transient.sweep param_of values
      |> List.map (fun (v, m) ->
             [
               Printf.sprintf "%g" v;
               Report.Table.si m.Fluid.Transient.overshoot;
               Report.Table.si m.Fluid.Transient.undershoot;
               string_of_int m.Fluid.Transient.oscillations;
               (match m.Fluid.Transient.settling_time with
               | Some t -> Printf.sprintf "%.4g s" t
               | None -> "none");
               (match m.Fluid.Transient.decay_per_cycle with
               | Some d -> Printf.sprintf "%.5f" d
               | None -> "n/a");
               Report.Table.si (Fluid.Criterion.required_buffer (param_of v));
             ])
    in
    buf_add buf (Printf.sprintf "sweep over %s:\n" label);
    buf_add buf
      (Report.Table.render
         ~headers:
           [
             label; "overshoot"; "undershoot"; "oscillations"; "settling";
             "decay/cycle"; "Theorem-1 B";
           ]
         ~rows);
    buf_add buf "\n";
    rows
  in
  let w_rows =
    render_sweep "w" (fun w -> Fluid.Params.with_sampling ~w p)
      [ 0.5; 1.; 2.; 8.; 32. ]
  in
  let pm_rows =
    render_sweep "pm" (fun pm -> Fluid.Params.with_sampling ~pm p)
      [ 0.002; 0.005; 0.01; 0.05; 0.2 ]
  in
  (match csv_path out "a1_transient.csv" with
  | Some path ->
      Report.Csv.write ~path
        ~header:
          [
            "sweep"; "value"; "overshoot"; "undershoot"; "oscillations";
            "settling"; "decay"; "required_B";
          ]
        ~rows:
          (List.map (fun r -> "w" :: r) w_rows
          @ List.map (fun r -> "pm" :: r) pm_rows)
  | None -> ());
  buf_add buf
    "The Theorem-1 buffer column is constant within each sweep, while the \
     transient metrics move - the Remarks' claim, measured.\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A2 — feedback-delay margin                                          *)
(* ------------------------------------------------------------------ *)

let a2_delay_margin ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "A2 -- feedback delay erodes the stability margin (the paper assumes \
     negligible propagation delay; this bounds where that holds)\n\n";
  let p = big_buffer default in
  let taus = [ 0.; 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4 ] in
  let rows =
    List.map
      (fun tau ->
        let r = Fluid.Delayed.simulate ~tau p in
        let max_abs_x =
          Stats.max (Array.map Float.abs r.Fluid.Delayed.x.Series.vs)
        in
        [
          Printf.sprintf "%g" tau;
          (match r.Fluid.Delayed.growth_per_cycle with
          | Some g -> Printf.sprintf "%.4f" g
          | None -> "n/a");
          Report.Table.si max_abs_x;
          (if Fluid.Delayed.is_stable ~tau p then "yes" else "NO");
        ])
      taus
  in
  buf_add buf
    (Report.Table.render
       ~headers:[ "delay tau (s)"; "growth/cycle"; "max |x|"; "contracting" ]
       ~rows);
  (match csv_path out "a2_delay.csv" with
  | Some path ->
      Report.Csv.write ~path
        ~header:[ "tau"; "growth"; "max_abs_x"; "stable" ]
        ~rows
  | None -> ());
  (match Fluid.Delayed.critical_delay p with
  | Some tau ->
      buf_add buf
        (Printf.sprintf
           "\ncritical delay at the draft gains: %.3g s (our simulator's \
            control delay of 1e-6 s sits below it)\n"
           tau)
  | None -> buf_add buf "\nstable for all probed delays\n");
  (* gentler gains widen the margin *)
  let gentle = Fluid.Params.with_gains ~gi:0.5 (big_buffer default) in
  (match Fluid.Delayed.critical_delay gentle with
  | Some tau ->
      buf_add buf (Printf.sprintf "with Gi = 0.5 the margin grows to %.3g s\n" tau)
  | None -> buf_add buf "with Gi = 0.5 the loop is stable for a full period\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A3 — solver ablation on the switched system                         *)
(* ------------------------------------------------------------------ *)

let a3_solver_ablation ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "A3 -- integrating the switched system: event-localized adaptive vs \
     fixed-step methods (reference: the semi-analytic flow map on the \
     piecewise-linear system)\n\n";
  let p = default in
  let sys = Fluid.Linearized.system p in
  let exact =
    match Fluid.Flowmap.first_overshoot p with Some v -> v | None -> nan
  in
  (* Cost is reported as the number of right-hand-side evaluations — a
     deterministic work measure, unlike wall time, so the rendered text
     is reproducible run-to-run (and byte-identical under the parallel
     figure driver); wall-time comparisons live in bench/. *)
  let counted sys n =
    match sys with
    | Phaseplane.System.Smooth f | Phaseplane.System.Smooth_fast { f; _ } ->
        Phaseplane.System.Smooth
          (fun pt ->
            incr n;
            f pt)
    | Phaseplane.System.Switched { sigma; pos; neg }
    | Phaseplane.System.Switched_fast { sigma; pos; neg; _ } ->
        (* plain [Switched] on purpose: the fast in-place RHS would
           bypass the counting closures, and the whole point here is a
           deterministic evaluation count *)
        Phaseplane.System.Switched
          {
            sigma;
            pos =
              (fun pt ->
                incr n;
                pos pt);
            neg =
              (fun pt ->
                incr n;
                neg pt);
          }
  in
  let measure label solver =
    let nevals = ref 0 in
    let tr =
      Phaseplane.Trajectory.integrate ~solver ~t_max:0.002 (counted sys nevals)
        (Fluid.Model.start_point p)
    in
    let got = Phaseplane.Trajectory.x_max tr in
    [
      label;
      Report.Table.si got;
      Printf.sprintf "%.2e" (Float.abs (got -. exact) /. exact);
      string_of_int tr.Phaseplane.Trajectory.sol.Ode.n_steps;
      string_of_int !nevals;
    ]
  in
  let rows =
    [
      measure "adaptive DoPri5 (events)" (Phaseplane.Trajectory.Adaptive (1e-9, 1e-12));
      measure "RK4 h=1e-6" (Phaseplane.Trajectory.Fixed (Ode.Rk4, 1e-6));
      measure "RK4 h=1e-5" (Phaseplane.Trajectory.Fixed (Ode.Rk4, 1e-5));
      measure "Heun h=1e-6" (Phaseplane.Trajectory.Fixed (Ode.Heun, 1e-6));
      measure "Euler h=1e-6" (Phaseplane.Trajectory.Fixed (Ode.Euler, 1e-6));
      measure "Euler h=2e-5" (Phaseplane.Trajectory.Fixed (Ode.Euler, 2e-5));
    ]
  in
  buf_add buf
    (Report.Table.render
       ~headers:[ "integrator"; "max x"; "rel. error"; "steps"; "rhs evals" ]
       ~rows);
  buf_add buf
    (Printf.sprintf "\nreference max1 x (closed-form flow map) = %s\n"
       (Report.Table.si exact));
  (match csv_path out "a3_solvers.csv" with
  | Some path ->
      Report.Csv.write ~path
        ~header:[ "integrator"; "max_x"; "rel_error"; "steps"; "rhs_evals" ]
        ~rows
  | None -> ());
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* P1 — control-paradigm comparison: BCN vs QCN vs FERA                *)
(* ------------------------------------------------------------------ *)

let p1_paradigms ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "P1 -- the 802.1Qau proposal families side by side (paper SII.A): BCN \
     feedback AIMD, QCN negative-only quantized feedback, FERA explicit \
     rates; same bottleneck, 20 ms, start at 30% fair share\n\n";
  let p = Fluid.Params.with_buffer default 15e6 in
  let t_end = 0.02 in
  let start = 0.3 *. Fluid.Params.equilibrium_rate p in
  let tail_stats q =
    let tail = Series.tail_from q (t_end /. 2.) in
    (Stats.mean tail.Series.vs, Stats.stddev tail.Series.vs)
  in
  let bcn =
    Simnet.Runner.run
      {
        (Simnet.Runner.default_config ~t_end p) with
        Simnet.Runner.mode = Simnet.Source.Literal;
        initial_rate = start;
        enable_pause = false;
      }
  in
  let qcn =
    Simnet.Qcn.run
      { (Simnet.Qcn.default_config ~t_end p) with Simnet.Qcn.initial_rate = start }
  in
  let fera =
    Simnet.Fera.run
      { (Simnet.Fera.default_config ~t_end p) with Simnet.Fera.initial_rate = start }
  in
  let e2cm =
    Simnet.E2cm.run
      { (Simnet.E2cm.default_config ~t_end p) with Simnet.E2cm.initial_rate = start }
  in
  let row label drops util (mean, std) fairness_v extra =
    [
      label;
      string_of_int drops;
      Printf.sprintf "%.3f" util;
      Report.Table.si mean;
      Report.Table.si std;
      Printf.sprintf "%.3f" fairness_v;
      extra;
    ]
  in
  let rows =
    [
      row "BCN (literal AIMD)" bcn.Simnet.Runner.drops
        bcn.Simnet.Runner.utilization
        (tail_stats bcn.Simnet.Runner.queue)
        (Simnet.Runner.fairness bcn.Simnet.Runner.final_rates)
        (Printf.sprintf "%d BCN msgs"
           (bcn.Simnet.Runner.bcn_positive + bcn.Simnet.Runner.bcn_negative));
      row "QCN (quantized, negative-only)" qcn.Simnet.Qcn.drops
        qcn.Simnet.Qcn.utilization
        (tail_stats qcn.Simnet.Qcn.queue)
        (Simnet.Runner.fairness qcn.Simnet.Qcn.final_rates)
        (Printf.sprintf "%d CN msgs" qcn.Simnet.Qcn.cn_messages);
      row "E2CM (BCN + fair-share cap)" e2cm.Simnet.E2cm.drops
        e2cm.Simnet.E2cm.utilization
        (tail_stats e2cm.Simnet.E2cm.queue)
        (Simnet.Runner.fairness e2cm.Simnet.E2cm.final_rates)
        (Printf.sprintf "%d msgs" e2cm.Simnet.E2cm.messages);
      row "FERA (explicit rate)" fera.Simnet.Fera.drops
        fera.Simnet.Fera.utilization
        (tail_stats fera.Simnet.Fera.queue)
        (Simnet.Runner.fairness fera.Simnet.Fera.final_rates)
        (match fera.Simnet.Fera.convergence_time with
        | Some t -> Printf.sprintf "converged %.2g s" t
        | None -> "no convergence");
    ]
  in
  buf_add buf
    (Report.Table.render
       ~headers:
         [
           "paradigm"; "drops"; "util"; "queue tail mean"; "queue tail std";
           "fairness"; "notes";
         ]
       ~rows);
  (match csv_path out "p1_paradigms.csv" with
  | Some path ->
      Report.Csv.write ~path
        ~header:
          [ "paradigm"; "drops"; "util"; "tail_mean"; "tail_std"; "fairness"; "notes" ]
        ~rows
  | None -> ());
  buf_add buf "\nqueue traces (sparklines):\n";
  buf_add buf
    (Printf.sprintf "  BCN : %s\n  QCN : %s\n  E2CM: %s\n  FERA: %s\n"
       (Report.Ascii_plot.sparkline bcn.Simnet.Runner.queue)
       (Report.Ascii_plot.sparkline qcn.Simnet.Qcn.queue)
       (Report.Ascii_plot.sparkline e2cm.Simnet.E2cm.queue)
       (Report.Ascii_plot.sparkline fera.Simnet.Fera.queue));
  buf_add buf
    "\nThe cold start separates the paradigms: BCN's positive feedback pulls \
     the rates up within milliseconds (at the cost of AIMD oscillation and \
     per-sample unfairness); QCN, having dropped positive messages, leaves \
     recovery to its ~150 kB byte-counter cycles, which barely fire in 20 ms; \
     FERA's explicit rates converge in two measurement intervals but require \
     per-flow state in the switch.\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* W1 — BCN under uncontrolled cross traffic                           *)
(* ------------------------------------------------------------------ *)

let w1_cross_traffic ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "W1 -- BCN robustness to uncontrolled cross traffic: 25 controlled \
     flows share the bottleneck with background load that ignores BCN \
     (Poisson, bursty on/off, periodic incast)\n\n";
  let p =
    Fluid.Params.make ~n_flows:25 ~capacity:10e9 ~q0:2.5e6 ~buffer:15e6 ~gi:4.
      ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  let t_end = 0.02 in
  let run_with label mk_workloads =
    let e = Simnet.Engine.create () in
    let delivered = ref 0. in
    let sources = Array.make p.Fluid.Params.n_flows None in
    let sw_cfg =
      { (Simnet.Switch.default_config p ~cpid:1) with Simnet.Switch.enable_pause = false }
    in
    let sw =
      Simnet.Switch.create sw_cfg ~control_out:(fun e pkt ->
          Simnet.Engine.schedule e ~delay:1e-6 (fun e ->
              match pkt.Simnet.Packet.kind with
              | Simnet.Packet.Bcn { flow; fb; cpid } ->
                  if flow < Array.length sources then (
                    match sources.(flow) with
                    | Some src ->
                        Simnet.Source.handle_bcn src ~now:(Simnet.Engine.now e)
                          ~fb ~cpid
                    | None -> ())
              | Simnet.Packet.Pause _ | Simnet.Packet.Data _ -> ()))
    in
    Simnet.Switch.set_forward sw (fun _e pkt ->
        delivered := !delivered +. float_of_int pkt.Simnet.Packet.bits);
    for i = 0 to p.Fluid.Params.n_flows - 1 do
      let src =
        Simnet.Source.create ~id:i
          ~initial_rate:(0.5 *. Fluid.Params.equilibrium_rate p)
          ~mode:Simnet.Source.Literal ~max_rate:p.Fluid.Params.capacity
          ~gi:p.Fluid.Params.gi ~gd:p.Fluid.Params.gd ~ru:p.Fluid.Params.ru
          ~send:(fun e pkt -> Simnet.Switch.receive sw e pkt)
          ()
      in
      sources.(i) <- Some src;
      Simnet.Source.start src e
    done;
    let workloads = mk_workloads () in
    List.iter
      (fun w ->
        Simnet.Workload.start w e ~sink:(fun e pkt ->
            Simnet.Switch.receive sw e pkt))
      workloads;
    (* queue sampling *)
    let qmax = ref 0. and qsum = ref 0. and qn = ref 0 in
    let rec sampler e =
      let q = Simnet.Switch.queue_bits sw in
      qmax := Float.max !qmax q;
      qsum := !qsum +. q;
      incr qn;
      if Simnet.Engine.now e +. 1e-5 <= t_end then
        Simnet.Engine.schedule e ~delay:1e-5 sampler
    in
    Simnet.Engine.schedule e ~delay:0. sampler;
    Simnet.Engine.run ~until:t_end e;
    let cross = List.fold_left (fun acc w -> acc +. Simnet.Workload.bits_sent w) 0. workloads in
    let offered =
      List.fold_left (fun acc w -> acc +. Simnet.Workload.mean_offered_rate w) 0. workloads
    in
    [
      label;
      Report.Table.si offered;
      string_of_int (Simnet.Fifo.drops (Simnet.Switch.fifo sw));
      Report.Table.si !qmax;
      Report.Table.si (!qsum /. float_of_int (Stdlib.max 1 !qn));
      Printf.sprintf "%.3f" (!delivered /. (p.Fluid.Params.capacity *. t_end));
      Report.Table.si (cross /. t_end);
    ]
  in
  let flow_base = 100 in
  let rows =
    [
      run_with "no cross traffic" (fun () -> []);
      run_with "Poisson 2G" (fun () ->
          [ Simnet.Workload.poisson ~id:flow_base ~mean_rate:2e9 ~seed:7 ]);
      run_with "on/off 4G peak (50% duty)" (fun () ->
          [
            Simnet.Workload.on_off ~id:flow_base ~peak_rate:4e9 ~mean_on:1e-3
              ~mean_off:1e-3 ~seed:11;
          ]);
      run_with "incast 8x50 frames / 2 ms" (fun () ->
          [
            Simnet.Workload.incast
              ~ids:(List.init 8 (fun i -> flow_base + i))
              ~burst_frames:50 ~period:2e-3 ~jitter:1e-5 ~seed:13 ();
          ]);
    ]
  in
  buf_add buf
    (Report.Table.render
       ~headers:
         [
           "background"; "offered bg"; "drops"; "max q"; "mean q"; "util";
           "bg delivered rate";
         ]
       ~rows);
  (match csv_path out "w1_cross_traffic.csv" with
  | Some path ->
      Report.Csv.write ~path
        ~header:
          [ "background"; "offered"; "drops"; "max_q"; "mean_q"; "util"; "bg_rate" ]
        ~rows
  | None -> ());
  buf_add buf
    "\nThe controlled flows absorb what the background leaves: BCN throttles \
     them when bursts arrive, so the queue peaks stay bounded by the \
     Theorem-1 buffer.\n";
  Buffer.contents buf


(* ------------------------------------------------------------------ *)
(* P2 — the Chiu–Jain fairness argument behind BCN's AIMD              *)
(* ------------------------------------------------------------------ *)

let p2_aimd_fairness ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "P2 -- why BCN uses AIMD (paper SII.B cites Chiu-Jain): two \
     synchronized flows from an unfair start (9 : 1)\n\n";
  let capacity = 10e9 in
  let start = { Fluid.Aimd_fairness.r1 = 9e9; r2 = 1e9 } in
  let run policy label =
    let pts = Fluid.Aimd_fairness.iterate policy ~capacity ~n:2500 start in
    let final = List.nth pts (List.length pts - 1) in
    let converged =
      Fluid.Aimd_fairness.converges_to_fairness ~n:5000 policy ~capacity start
    in
    ( [
        label;
        Printf.sprintf "%.4f" (Fluid.Aimd_fairness.fairness_index final);
        Printf.sprintf "%.3f" (Fluid.Aimd_fairness.efficiency ~capacity final);
        (if converged then "yes" else "NO");
      ],
      pts )
  in
  let aimd_row, aimd_pts =
    run (Fluid.Aimd_fairness.Aimd { increase = 1e8; decrease = 0.2 })
      "AIMD (Chiu-Jain)"
  in
  let aiad_row, aiad_pts =
    run (Fluid.Aimd_fairness.Aiad { increase = 1e8; decrease = 2e9 })
      "AIAD (strawman)"
  in
  let bcn_row, _ =
    run (Fluid.Aimd_fairness.of_params default) "BCN gains (eqn 2, averaged)"
  in
  buf_add buf
    (Report.Table.render
       ~headers:[ "policy"; "final fairness"; "final efficiency"; "converges" ]
       ~rows:[ aimd_row; aiad_row; bcn_row ]);
  (match csv_path out "p2_fairness.csv" with
  | Some path ->
      Report.Csv.write_floats ~path ~header:[ "k"; "aimd_r1"; "aimd_r2"; "aiad_r1"; "aiad_r2" ]
        (List.mapi
           (fun i (a, b) ->
             [
               float_of_int i;
               a.Fluid.Aimd_fairness.r1;
               a.Fluid.Aimd_fairness.r2;
               b.Fluid.Aimd_fairness.r1;
               b.Fluid.Aimd_fairness.r2;
             ])
           (List.combine aimd_pts aiad_pts))
  | None -> ());
  buf_add buf "\n(r1, r2) trajectories (Gbit/s); the diagonal is the fairness line:\n";
  buf_add buf
    (phase_curves
       [
         Report.Ascii_plot.curve ~glyph:'a' "AIMD"
           (List.map
              (fun (pt : Fluid.Aimd_fairness.point) ->
                (pt.Fluid.Aimd_fairness.r1 /. 1e9, pt.Fluid.Aimd_fairness.r2 /. 1e9))
              aimd_pts);
         Report.Ascii_plot.curve ~glyph:'d' "AIAD"
           (List.map
              (fun (pt : Fluid.Aimd_fairness.point) ->
                (pt.Fluid.Aimd_fairness.r1 /. 1e9, pt.Fluid.Aimd_fairness.r2 /. 1e9))
              aiad_pts);
         Report.Ascii_plot.curve ~glyph:'.' "fairness line"
           (List.init 30 (fun i -> (float_of_int i /. 4., float_of_int i /. 4.)));
       ]);
  buf_add buf
    "\nMultiplicative decrease pulls the operating point onto the fairness \
     line; additive decrease only slides along its unfair diagonal - the \
     paper's ref. [11] argument, executed.\n";
  Buffer.contents buf


(* ------------------------------------------------------------------ *)
(* B1 — the strong-stability basin                                     *)
(* ------------------------------------------------------------------ *)

let b1_safe_region ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "B1 -- the strong-stability basin: from which initial states (q, r) \
     does Definition 1 hold? (recovery after routing changes / PAUSE \
     episodes starts from arbitrary states, not only the canonical \
     warm-up point)\n\n";
  let p = default in
  let ra = Fluid.Safe_region.raster ~nq:24 ~nr:20 p in
  buf_add buf (Printf.sprintf "BDP buffer (B = %s):\n" (Report.Table.si p.Fluid.Params.buffer));
  buf_add buf (Fluid.Safe_region.render ra);
  (match csv_path out "b1_basin_bdp.csv" with
  | Some path -> Fluid.Safe_region.to_csv ~path ra
  | None -> ());
  let p2 = Fluid.Params.with_buffer p (1.1 *. Fluid.Criterion.required_buffer p) in
  let ra2 = Fluid.Safe_region.raster ~nq:24 ~nr:20 p2 in
  buf_add buf
    (Printf.sprintf "\nTheorem-1 buffer (B = %s):\n" (Report.Table.si p2.Fluid.Params.buffer));
  buf_add buf (Fluid.Safe_region.render ra2);
  (match csv_path out "b1_basin_theorem1.csv" with
  | Some path -> Fluid.Safe_region.to_csv ~path ra2
  | None -> ());
  buf_add buf
    (Printf.sprintf
       "\nsafe fraction: %.2f (BDP) vs %.2f (Theorem-1 buffer). The unsafe \
        band under BDP sizing is exactly the low-queue region every \
        warm-up passes through.\n"
       ra.Fluid.Safe_region.safe_fraction ra2.Fluid.Safe_region.safe_fraction);
  Buffer.contents buf


(* ------------------------------------------------------------------ *)
(* M1 — two congestion points in series                                *)
(* ------------------------------------------------------------------ *)

let m1_multihop ?out () =
  let buf = Buffer.create 4096 in
  buf_add buf
    "M1 -- two congestion points in series (beyond the paper's single \
     bottleneck): 10 long flows cross both CPs, 10 short flows only the \
     tighter one (C_B = C/2)\n\n";
  let p = Fluid.Params.with_sampling ~pm:0.05 (Fluid.Params.with_buffer default 15e6) in
  let base = Simnet.Multihop.default_config ~t_end:0.03 p in
  let row label (r : Simnet.Multihop.result) =
    [
      label;
      Printf.sprintf "%.3f" r.Simnet.Multihop.beatdown;
      Report.Table.si (Stats.mean r.Simnet.Multihop.long_rates);
      Report.Table.si (Stats.mean r.Simnet.Multihop.short_rates);
      Printf.sprintf "%.3f" r.Simnet.Multihop.utilization_b;
      string_of_int (r.Simnet.Multihop.drops_a + r.Simnet.Multihop.drops_b);
      Report.Table.si (Stats.max r.Simnet.Multihop.queue_b.Series.vs);
    ]
  in
  let strict = Simnet.Multihop.run base in
  let relaxed =
    Simnet.Multihop.run { base with Simnet.Multihop.strict_tagging = false }
  in
  let rows =
    [
      row "strict CPID/RRT (draft rule)" strict;
      row "positive feedback to untagged" relaxed;
    ]
  in
  buf_add buf
    (Report.Table.render
       ~headers:
         [
           "association rule"; "long/short goodput"; "long mean"; "short mean";
           "util B"; "drops"; "max q_B";
         ]
       ~rows);
  (match csv_path out "m1_multihop.csv" with
  | Some path ->
      Report.Csv.write ~path
        ~header:[ "rule"; "beatdown"; "long"; "short"; "utilB"; "drops"; "maxqB" ]
        ~rows
  | None -> ());
  buf_add buf
    "\nWithout the draft's CPID/RRT association the uncongested first hop \
     keeps re-accelerating the long flows against the second hop's \
     throttling and the goodput ratio inverts wildly; with it, long and \
     short flows share the tight hop to within tens of percent.\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let generators :
    (string * (?out:string -> unit -> string)) list =
  [
    ("fig3_taxonomy", fig3_taxonomy);
    ("fig4_spiral", fig4_spiral);
    ("fig5_node", fig5_node);
    ("fig6_case1", fig6_case1);
    ("fig7_limit_cycle", fig7_limit_cycle);
    ("fig8_case2", fig8_case2);
    ("fig9_case3", fig9_case3);
    ("fig10_case4", fig10_case4);
    ("t1_criterion", t1_criterion);
    ("v1_fluid_vs_packet", v1_fluid_vs_packet);
    ("v2_linear_vs_strong", v2_linear_vs_strong);
    ("a1_transient_sampling", a1_transient_sampling);
    ("a2_delay_margin", a2_delay_margin);
    ("a3_solver_ablation", a3_solver_ablation);
    ("p1_paradigms", p1_paradigms);
    ("p2_aimd_fairness", p2_aimd_fairness);
    ("w1_cross_traffic", w1_cross_traffic);
    ("b1_safe_region", b1_safe_region);
    ("m1_multihop", m1_multihop);
  ]

let all ?jobs ?out () =
  (* Each generator is independent and deterministic (per-experiment RNG
     state, no shared mutable data), so they fan out across the pool;
     results are reassembled in the fixed order above, making the output
     byte-identical to a serial run for any [jobs]. When [out] is given,
     each generator writes distinct CSV files ([ensure_dir] tolerates the
     concurrent-mkdir race). *)
  Parallel.Pool.with_pool ?size:jobs (fun pool ->
      Parallel.Pool.map pool (fun (id, gen) -> (id, gen ?out ())) generators)
