(** Regeneration of every figure of the paper plus the two validation
    experiments (see DESIGN.md §4 for the experiment index).

    Each generator returns the printable reproduction (tables and ASCII
    plots) and, when [out] is given, writes the underlying data series as
    CSV files into that directory. The parameter sets used by Figs. 8–10
    differ from the draft-recommended ones because the node regimes
    require a switching line steeper than [w = 2] provides at 10 Gbit/s —
    each figure's header states the set it uses. *)

val fig3_taxonomy : ?out:string -> unit -> string
(** Fig. 3 — the phase-trajectory taxonomy ①–⑨: one concrete system per
    qualitative class (diverging focus/node, overflow, underflow, limit
    cycle, strongly stable spiral/node), each classified by the library's
    own machinery. *)

val fig4_spiral : ?out:string -> unit -> string
(** Fig. 4 — logarithmic-spiral trajectories of an underdamped subsystem
    from two initial points, with the closed-form extrema (19)/(20)
    checked against numerically observed extrema. *)

val fig5_node : ?out:string -> unit -> string
(** Fig. 5 — node trajectories, eigenline asymptotes, extremum (28). *)

val fig6_case1 : ?out:string -> unit -> string
(** Fig. 6 — Case-1 switched trajectory from [(−q0, 0)]: phase portrait,
    x(t), y(t); analytic vs numeric first overshoot/undershoot. *)

val fig7_limit_cycle : ?out:string -> unit -> string
(** Fig. 7 — limit-cycle motion: (a) quasi-periodic amplitude sequence of
    the BCN return map at the draft parameters; (b) a genuine limit cycle
    in a variable-structure system with an unstable focus inside the
    increase region (detected by the Poincaré machinery, closed orbit
    sampled); (c) the sustained queue oscillation of the literal
    packet-level BCN. *)

val fig8_case2 : ?out:string -> unit -> string
(** Fig. 8 — Case 2 (node increase / spiral decrease). *)

val fig9_case3 : ?out:string -> unit -> string
(** Fig. 9 — Case 3 (spiral increase / node decrease): no overshoot. *)

val fig10_case4 : ?out:string -> unit -> string
(** Fig. 10 — Case 4 (node/node): monotone approach. *)

val t1_criterion : ?out:string -> unit -> string
(** Theorem-1 worked example and parameter sweeps (the "table" of the
    Remarks): required buffer vs BDP, and scaling with Gi, Gd, q0, N. *)

val v1_fluid_vs_packet : ?out:string -> unit -> string
(** Experiment V1 — fluid-model validation against the packet simulator,
    including the deterministic-vs-Bernoulli sampling ablation. *)

val v2_linear_vs_strong : ?out:string -> unit -> string
(** Experiment V2 — the ref-[4] linear verdict vs Theorem 1 vs measured
    strong stability across the buffer/gain sweep. *)

val a1_transient_sampling : ?out:string -> unit -> string
(** Ablation A1 — transient metrics (overshoot, oscillation count,
    settling, per-cycle decay) across the sampling parameters [w] and
    [pm], against the constant Theorem-1 bound (the paper's Remarks). *)

val a2_delay_margin : ?out:string -> unit -> string
(** Ablation A2 — the delayed-feedback fluid model: oscillation growth vs
    feedback delay, and the critical delay at the draft gains (the
    paper's negligible-delay assumption, bounded). *)

val a3_solver_ablation : ?out:string -> unit -> string
(** Ablation A3 — event-localized adaptive integration vs fixed-step
    methods on the switched system, with the closed-form flow map as
    ground truth. *)

val p1_paradigms : ?out:string -> unit -> string
(** P1 — BCN vs QCN vs FERA on the same bottleneck (the four 802.1Qau
    proposal families of paper SII.A, minus E2CM's combination). *)

val p2_aimd_fairness : ?out:string -> unit -> string
(** P2 — the Chiu–Jain argument behind BCN's choice of AIMD (paper §II.B,
    ref. [11]): AIMD converges to the fairness line from a 9:1 start,
    additive decrease does not; also with BCN's own averaged gains. *)

val w1_cross_traffic : ?out:string -> unit -> string
(** W1 — BCN's queue control under uncontrolled Poisson/on-off/incast
    background traffic. *)

val m1_multihop : ?out:string -> unit -> string
(** M1 — two congestion points in series: the multi-bottleneck goodput
    ratio with and without the draft's CPID/RRT association rule. *)

val b1_safe_region : ?out:string -> unit -> string
(** B1 — raster of the strong-stability basin over initial [(q, r)]
    states, BDP buffer vs Theorem-1 buffer. *)

val all : ?jobs:int -> ?out:string -> unit -> (string * string) list
(** Every generator above as [(experiment id, rendered text)], computed
    across a domain pool of [jobs] lanes (default: [DCECC_JOBS] or
    [Domain.recommended_domain_count ()]; see {!Parallel.Pool}). The
    result list is in the fixed experiment order and byte-identical for
    every [jobs] value; [jobs:1] runs fully sequentially. *)

(** {1 Parameter sets used by the figures (exposed for tests)} *)

val case2_params : Fluid.Params.t
val case3_params : Fluid.Params.t
val case4_params : Fluid.Params.t

val genuine_limit_cycle_system : unit -> Phaseplane.System.t * float
(** The variable-structure system of {!fig7_limit_cycle}(b) and a seed
    section coordinate whose return-map iteration settles on the cycle. *)
