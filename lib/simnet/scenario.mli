(** First-class simulation scenarios with a canonical, versioned
    encoding.

    A {!t} is a {e pure description} of one packet-level experiment:
    which model runs (BCN dumbbell, E2CM, FERA, two-hop multihop, RCP),
    with which {!Fluid.Params.t}, over which horizon, under which cross
    traffic and fault plan, and with which seed/replica structure. It
    subsumes the per-model config records ([Runner.config],
    [E2cm.config], ...) that previously had to be assembled by hand at
    every call site — those remain the execution-layer types; {!compile}
    packages a scenario into a first-class {!runnable} so callers can
    execute any model, wire fault hooks, and consume the {!outcome}
    without a per-model match.

    Because a scenario is pure data, it has a {b canonical encoding}
    ({!encode}): a single-line JSON document with a leading version
    field, a fixed field order, every defaultable field written
    explicitly, and all floats rendered with [%.17g] (round-trip exact).
    Two scenarios are equal iff their encodings are byte-equal, so the
    SHA-256 of the encoding is a sound content-address for cached
    results — that is exactly what [Store.Key.of_scenario] hashes.
    {!decode} accepts any field order and elides defaulted fields, and
    [decode (encode s) = Ok s] for every valid scenario. *)

(** Congestion-point sampling, as pure data. [Bernoulli] carries no RNG
    state — the run derives it from the scenario [seed] (replica [i]
    uses [seed + i]), matching [Runner.with_seed]. *)
type sampling = Deterministic | Bernoulli | Timer of float

(** BCN dumbbell knobs, mirroring the corresponding [Runner.config]
    fields. *)
type bcn_knobs = {
  mode : Source.update_mode;
  sampling : sampling;
  positive_to_untagged : bool;
  broadcast_feedback : bool;
  enable_bcn : bool;
  enable_pause : bool;
  pause_resume : float;
}

type model =
  | Bcn of bcn_knobs
  | E2cm of { interval : float }
  | Fera of { interval : float; target_util : float }
  | Multihop of {
      c_a : float;
      c_b : float;
      n_long : int;
      n_short : int;
      strict_tagging : bool;
    }
  | Rcp of {
      alpha : float;  (** rate-mismatch gain *)
      beta : float;  (** queue-drain gain; [0] = the ablation *)
      interval : float;  (** control interval, seconds *)
      variant : Fluid.Rcp.variant;
    }  (** explicit-rate feedback ({!Rcp}, {!Fluid.Rcp}) *)

(** Uncontrolled cross traffic injected at the congestion point
    (BCN scenarios only). Flow ids are assigned deterministically from
    [params.n_flows] upward, in list order. *)
type workload =
  | Cbr of { rate : float }
  | Poisson of { mean_rate : float; seed : int }
  | On_off of {
      peak_rate : float;
      mean_on : float;
      mean_off : float;
      seed : int;
    }
  | Incast of {
      senders : int;
      burst_frames : int;
      period : float;
      jitter : float;
      seed : int;
    }

type t = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float option;  (** [None] = the model's default *)
  control_delay : float;
  model : model;
  workload : workload list;
  fault : Fault_plan.t option;
  seed : int;  (** base seed for Bernoulli sampling; replica i uses seed+i *)
  replicas : int;  (** >= 1; > 1 requires [Bernoulli] sampling *)
}

val version : int
(** Newest encoding version this codec reads (currently 2). A document
    carries the {e smallest} version able to express its content in the
    leading ["v"] field: pre-RCP scenarios still encode — byte for byte
    — as the v1 documents they always were (existing content addresses
    survive), and only [Rcp] scenarios emit v2. {!decode} accepts
    versions 1..{!version} and rejects a ["v"] that disagrees with the
    content, keeping canonical bytes 1:1 with scenarios. *)

(** {1 Constructors} — defaults match the corresponding
    [default_config]. *)

val bcn :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?mode:Source.update_mode ->
  ?sampling:sampling ->
  ?positive_to_untagged:bool ->
  ?broadcast_feedback:bool ->
  ?enable_bcn:bool ->
  ?enable_pause:bool ->
  ?pause_resume:float ->
  Fluid.Params.t ->
  t

val e2cm :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?interval:float ->
  Fluid.Params.t ->
  t

val fera :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?interval:float ->
  ?target_util:float ->
  Fluid.Params.t ->
  t

val multihop :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?c_a:float ->
  ?c_b:float ->
  ?n_long:int ->
  ?n_short:int ->
  ?strict_tagging:bool ->
  Fluid.Params.t ->
  t

val rcp :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?alpha:float ->
  ?beta:float ->
  ?interval:float ->
  ?variant:Fluid.Rcp.variant ->
  Fluid.Params.t ->
  t
(** Defaults: the stock RCP gains ({!Fluid.Rcp.default_alpha} /
    {!Fluid.Rcp.default_beta}), [interval = ]{!Fluid.Rcp.default_tau},
    [By_capacity]. *)

val with_fault : t -> Fault_plan.t -> t
(** [Fault_plan.is_none] plans normalise to no fault, so attaching an
    empty plan does not perturb the key. *)

val with_workload : t -> workload list -> t
val with_seed : t -> int -> t
val with_replicas : t -> int -> t

val validate : t -> t
(** Returns the scenario unchanged or raises [Invalid_argument]:
    positive horizon/sampling period, [replicas >= 1] (and Bernoulli
    sampling when > 1), workloads/replicas restricted to the BCN model,
    positive workload rates, valid fault plan ({!Fault_plan.validate}).
    Fault support follows what a model physically exposes: BCN takes
    any plan; RCP takes loss/delay/capacity (no blackout — there is no
    congestion point to black out); E2CM/FERA take channel faults only
    (loss/delay); multihop takes none. *)

val equal : t -> t -> bool
val describe : t -> string
(** One-line human label, e.g. ["bcn n=50 C=10e9 t_end=0.02 x4"]. *)

(** {1 Canonical encoding} *)

val encode : t -> string
(** Canonical single-line JSON (no trailing newline). Canonical means:
    fixed field order, every field present (no elision), floats in
    [%.17g]. [encode] validates first, so only valid scenarios have an
    encoding. *)

val encode_params : Fluid.Params.t -> string
(** The canonical params sub-object alone — the stable key material for
    caches of fluid-layer (non-simulation) derivations. *)

val decode : string -> (t, string) result
(** Parse an encoding: any field order, defaultable fields may be
    elided, unknown fields are an error. The result is validated.
    [decode (encode s) = Ok s]. *)

val of_json : Json_read.t -> (t, string) result
(** {!decode} from an already-parsed {!Json_read.t} — for protocols
    that embed a scenario object inside a larger request document. *)

val decode_exn : string -> t
(** Raises [Invalid_argument] where {!decode} returns [Error]. *)

(** {1 Compilation}

    {!compile} is the single dispatch from scenario to execution: it
    validates, builds the per-model configs (workloads already wired for
    BCN), and packages the model's [run_many] together with a fault-hook
    wiring function and a result packer. Callers that used to match on
    {!model} and call [to_*_config] by hand now write one
    model-independent loop:

    {[
      match Scenario.compile s with
      | Scenario.Runnable c ->
          let cfgs =
            match c.wire with
            | None -> c.configs
            | Some wire -> Array.map (fun cfg -> wire cfg hooks) c.configs
          in
          c.pack (c.run_many ~jobs cfgs)
    ]}

    Note the existential: all uses of the compiled record must live
    inside the [match] arm. *)

type hooks = {
  channel : Runner.control_channel option;
      (** interposed on the model's feedback path ([None] = leave the
          config's own channel in place) *)
  setup : (Engine.t -> Switch.t -> unit) option;
      (** runs {e before} the config's existing [on_setup] — fault
          installation precedes workload start. Ignored by models
          without a switch (E2CM/FERA — {!validate} restricts their
          fault plans to channel faults — and multihop). *)
}
(** What a fault injector (or any instrument) needs to attach to a
    run. *)

(** The model-tagged results of executing a compiled scenario. *)
type outcome =
  | Bcn_results of Runner.result array  (** one per replica *)
  | E2cm_result of E2cm.result
  | Fera_result of Fera.result
  | Multihop_result of Multihop.result
  | Rcp_result of Rcp.result

type ('c, 'r) compiled = {
  configs : 'c array;
      (** ready to run: one per replica (BCN), else length 1 *)
  run_many : ?jobs:int -> 'c array -> 'r array;
  wire : ('c -> hooks -> 'c) option;
      (** attach hooks to one config; [None] = the model takes no hooks
          (multihop) *)
  pack : 'r array -> outcome;
      (** raises [Invalid_argument] if the array length does not match
          [configs] (1 for single-run models) *)
}

type runnable = Runnable : ('c, 'r) compiled -> runnable

val compile : t -> runnable
(** Validates (so invalid scenarios fail here, not mid-run), then
    dispatches on {!model}. *)

(** {2 Protocol-agnostic outcome view} *)

(** The stats every model can report, letting downstream consumers
    (rendering, merging, margin evaluation) handle all protocols —
    including ones added later — with zero per-protocol code.
    [messages] counts the model's feedback events (BCN frames, E2CM
    messages, FERA advertisements, RCP rate feedbacks); [final_rates]
    is [None] when per-flow rates are not meaningful (multihop). *)
type run_stats = {
  queue : Numerics.Series.t;
  utilization : float;
  drops : int;
  messages : int;
  final_rates : float array option;
}

val outcome_stats : outcome -> run_stats array
(** One entry per replica for [Bcn_results], length 1 otherwise.
    Multihop reports its bottleneck (hop B) queue/utilization and the
    drop total across both hops. *)

val outcome_model : outcome -> string
(** ["bcn"] / ["e2cm"] / ["fera"] / ["multihop"] / ["rcp"] — matches
    {!describe}'s leading token. *)

(** {2 Per-model configs (execution layer)}

    These build the raw config records. They do {e not} wire the fault
    plan (an injector is executable state owned by one run —
    [Faultnet.Exec] does that through {!compile}) nor, except through
    {!compile}, the workloads. *)

val to_runner_config : t -> Runner.config
(** BCN scenarios only; raises [Invalid_argument] otherwise. Bernoulli
    sampling is seeded from [seed].
    @deprecated Use {!compile}; this remains for probe-level access to
    the raw BCN config. *)

val runner_configs : t -> Runner.config array
(** One config per replica ([Runner.with_seed] at [seed + i]). Length
    [replicas]. Unlike {!compile}'s [configs], workloads are not
    wired. *)

val to_e2cm_config : t -> E2cm.config
(** @deprecated Use {!compile}. *)

val to_fera_config : t -> Fera.config
(** @deprecated Use {!compile}. *)

val to_multihop_config : t -> Multihop.config
(** @deprecated Use {!compile}. *)

val of_runner_config : ?seed:int -> ?replicas:int -> Runner.config -> t
(** Lift an execution config back to a scenario. Raises
    [Invalid_argument] when the config is not pure data: an attached
    [control_channel]/[on_setup] hook, or live [Switch.Bernoulli] RNG
    state (use [?seed] with a [Deterministic]/[Timer] config and
    {!with_replicas} instead). *)

val start_workloads : t -> Engine.t -> Switch.t -> unit
(** Instantiate the scenario's cross-traffic generators (flow ids
    [params.n_flows], [n_flows + 1], ... in list order) and start them
    against the switch — call from [Runner.config.on_setup]. *)
