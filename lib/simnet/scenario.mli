(** First-class simulation scenarios with a canonical, versioned
    encoding.

    A {!t} is a {e pure description} of one packet-level experiment:
    which model runs (BCN dumbbell, E2CM, FERA, two-hop multihop), with
    which {!Fluid.Params.t}, over which horizon, under which cross
    traffic and fault plan, and with which seed/replica structure. It
    subsumes the per-model config records ([Runner.config],
    [E2cm.config], ...) that previously had to be assembled by hand at
    every call site — those remain the execution-layer types; a scenario
    compiles down to them via {!to_runner_config} and friends.

    Because a scenario is pure data, it has a {b canonical encoding}
    ({!encode}): a single-line JSON document with a leading version
    field, a fixed field order, every defaultable field written
    explicitly, and all floats rendered with [%.17g] (round-trip exact).
    Two scenarios are equal iff their encodings are byte-equal, so the
    SHA-256 of the encoding is a sound content-address for cached
    results — that is exactly what [Store.Key.of_scenario] hashes.
    {!decode} accepts any field order and elides defaulted fields, and
    [decode (encode s) = Ok s] for every valid scenario. *)

(** Congestion-point sampling, as pure data. [Bernoulli] carries no RNG
    state — the run derives it from the scenario [seed] (replica [i]
    uses [seed + i]), matching [Runner.with_seed]. *)
type sampling = Deterministic | Bernoulli | Timer of float

(** BCN dumbbell knobs, mirroring the corresponding [Runner.config]
    fields. *)
type bcn_knobs = {
  mode : Source.update_mode;
  sampling : sampling;
  positive_to_untagged : bool;
  broadcast_feedback : bool;
  enable_bcn : bool;
  enable_pause : bool;
  pause_resume : float;
}

type model =
  | Bcn of bcn_knobs
  | E2cm of { interval : float }
  | Fera of { interval : float; target_util : float }
  | Multihop of {
      c_a : float;
      c_b : float;
      n_long : int;
      n_short : int;
      strict_tagging : bool;
    }

(** Uncontrolled cross traffic injected at the congestion point
    (BCN scenarios only). Flow ids are assigned deterministically from
    [params.n_flows] upward, in list order. *)
type workload =
  | Cbr of { rate : float }
  | Poisson of { mean_rate : float; seed : int }
  | On_off of {
      peak_rate : float;
      mean_on : float;
      mean_off : float;
      seed : int;
    }
  | Incast of {
      senders : int;
      burst_frames : int;
      period : float;
      jitter : float;
      seed : int;
    }

type t = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float option;  (** [None] = the model's default *)
  control_delay : float;
  model : model;
  workload : workload list;
  fault : Fault_plan.t option;
  seed : int;  (** base seed for Bernoulli sampling; replica i uses seed+i *)
  replicas : int;  (** >= 1; > 1 requires [Bernoulli] sampling *)
}

val version : int
(** Encoding version written as the leading ["v"] field (currently 1).
    Bump whenever the canonical encoding changes meaning. *)

(** {1 Constructors} — defaults match the corresponding
    [default_config]. *)

val bcn :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?mode:Source.update_mode ->
  ?sampling:sampling ->
  ?positive_to_untagged:bool ->
  ?broadcast_feedback:bool ->
  ?enable_bcn:bool ->
  ?enable_pause:bool ->
  ?pause_resume:float ->
  Fluid.Params.t ->
  t

val e2cm :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?interval:float ->
  Fluid.Params.t ->
  t

val fera :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?interval:float ->
  ?target_util:float ->
  Fluid.Params.t ->
  t

val multihop :
  ?t_end:float ->
  ?sample_dt:float ->
  ?initial_rate:float ->
  ?control_delay:float ->
  ?c_a:float ->
  ?c_b:float ->
  ?n_long:int ->
  ?n_short:int ->
  ?strict_tagging:bool ->
  Fluid.Params.t ->
  t

val with_fault : t -> Fault_plan.t -> t
(** [Fault_plan.is_none] plans normalise to no fault, so attaching an
    empty plan does not perturb the key. *)

val with_workload : t -> workload list -> t
val with_seed : t -> int -> t
val with_replicas : t -> int -> t

val validate : t -> t
(** Returns the scenario unchanged or raises [Invalid_argument]:
    positive horizon/sampling period, [replicas >= 1] (and Bernoulli
    sampling when > 1), fault/workload/replicas restricted to the BCN
    model, positive workload rates, valid fault plan
    ({!Fault_plan.validate}). *)

val equal : t -> t -> bool
val describe : t -> string
(** One-line human label, e.g. ["bcn n=50 C=10e9 t_end=0.02 x4"]. *)

(** {1 Canonical encoding} *)

val encode : t -> string
(** Canonical single-line JSON (no trailing newline). Canonical means:
    fixed field order, every field present (no elision), floats in
    [%.17g]. [encode] validates first, so only valid scenarios have an
    encoding. *)

val encode_params : Fluid.Params.t -> string
(** The canonical params sub-object alone — the stable key material for
    caches of fluid-layer (non-simulation) derivations. *)

val decode : string -> (t, string) result
(** Parse an encoding: any field order, defaultable fields may be
    elided, unknown fields are an error. The result is validated.
    [decode (encode s) = Ok s]. *)

val of_json : Json_read.t -> (t, string) result
(** {!decode} from an already-parsed {!Json_read.t} — for protocols
    that embed a scenario object inside a larger request document. *)

val decode_exn : string -> t
(** Raises [Invalid_argument] where {!decode} returns [Error]. *)

(** {1 Compilation to execution-layer configs}

    These build the per-model config records. They do {e not} wire the
    fault plan (an injector is executable state owned by one run —
    [Faultnet.Injector] / [Store.Sweep] do that) nor the workloads (use
    {!start_workloads} from an [on_setup] hook). *)

val to_runner_config : t -> Runner.config
(** BCN scenarios only; raises [Invalid_argument] otherwise. Bernoulli
    sampling is seeded from [seed]. *)

val runner_configs : t -> Runner.config array
(** One config per replica ([Runner.with_seed] at [seed + i]). Length
    [replicas]. *)

val to_e2cm_config : t -> E2cm.config
val to_fera_config : t -> Fera.config
val to_multihop_config : t -> Multihop.config

val of_runner_config : ?seed:int -> ?replicas:int -> Runner.config -> t
(** Lift an execution config back to a scenario. Raises
    [Invalid_argument] when the config is not pure data: an attached
    [control_channel]/[on_setup] hook, or live [Switch.Bernoulli] RNG
    state (use [?seed] with a [Deterministic]/[Timer] config and
    {!with_replicas} instead). *)

val start_workloads : t -> Engine.t -> Switch.t -> unit
(** Instantiate the scenario's cross-traffic generators (flow ids
    [params.n_flows], [n_flows + 1], ... in list order) and start them
    against the switch — call from [Runner.config.on_setup]. *)
