(** Frames exchanged in the simulated DCE network.

    Mirrors the BCN message format of paper Fig. 2 at the level of detail
    the control loop needs: a data frame may carry a rate-regulator tag
    (RRT) holding the congestion point id (CPID) it is associated with;
    a BCN frame carries the feedback value [fb = sigma] and the CPID;
    PAUSE frames implement IEEE 802.3x on/off flow control.

    Frame fields are mutable so a {!Pool} can recycle frames on the
    steady-state forwarding path without allocating; code that does not
    pool simply uses the [make_*] constructors and never mutates. *)

type kind =
  | Data of {
      mutable flow : int;  (** source id *)
      mutable rrt : int option;  (** CPID carried in the rate regulator tag *)
    }
  | Bcn of {
      mutable flow : int;  (** destination source id (DA of Fig. 2) *)
      mutable fb : float;  (** the feedback field: sigma at the sampling instant *)
      mutable cpid : int;  (** congestion point id (switch interface) *)
    }
  | Pause of { mutable on : bool }  (** 802.3x PAUSE (on) / un-PAUSE (off) *)

type stamp = { mutable born : float }
(** Creation time, kept in an all-float record so pooled frames can be
    re-stamped without boxing. *)

type t = { kind : kind; bits : int; stamp : stamp; mutable seq : int }

val data_frame_bits : int
(** 1500-byte Ethernet frame = 12000 bits. *)

val control_frame_bits : int
(** 64-byte minimum frame = 512 bits (BCN and PAUSE frames). *)

val make_data : seq:int -> now:float -> flow:int -> rrt:int option -> t
val make_bcn : seq:int -> now:float -> flow:int -> fb:float -> cpid:int -> t
val make_pause : seq:int -> now:float -> on:bool -> t

val born : t -> float
(** Creation timestamp of the frame (simulated seconds). *)

val is_data : t -> bool
val flow_of : t -> int option
(** The flow a data or BCN frame concerns; [None] for PAUSE. *)

val pp : Format.formatter -> t -> unit

val sentinel : unit -> t
(** A fresh placeholder frame for pre-filling packet slots (pools, ring
    buffers). Never enters the data path. *)

(** Free-list frame pool.

    [alloc_*] pops a dead frame of the matching shape off the free list
    and rewrites its fields (falling back to a fresh allocation when the
    list is empty); [release] pushes a frame that has left the network
    back. In steady state the alloc/release cycle touches the heap not
    at all, which is what makes the engine's forwarding fast path
    allocation-free.

    Ownership discipline: a frame must be released exactly once, by
    whoever consumed it (the sink for data frames, the control
    dispatcher for BCN/PAUSE). Releasing twice aliases one frame into
    two logical packets; forgetting to release is safe — the frame is
    simply garbage-collected and the pool refills itself. *)
module Pool : sig
  type packet = t
  type t

  val create : unit -> t
  val alloc_data : t -> seq:int -> now:float -> flow:int -> rrt:int option -> packet
  val alloc_bcn : t -> seq:int -> now:float -> flow:int -> fb:float -> cpid:int -> packet
  val alloc_pause : t -> seq:int -> now:float -> on:bool -> packet
  val release : t -> packet -> unit

  val live : t -> int
  (** Frames currently checked out (allocated minus released). *)

  val created : t -> int
  (** Fresh heap allocations that missed the free list. *)

  val pooled : t -> int
  (** Dead frames currently waiting on the free lists. *)
end
