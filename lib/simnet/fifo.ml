(* Growable ring buffer instead of a Stdlib.Queue: enqueue/dequeue on
   the forwarding fast path must not allocate, and Queue.push conses a
   cell per element. Bit counters live in an all-float record (flat
   representation) so the per-frame accounting writes floats in place
   instead of boxing. Vacated ring slots are cleared to a sentinel so a
   drained queue pins no dead frames. *)

type acc = {
  mutable occupancy : float;
  mutable dropped : float;
  mutable in_bits : float;
  mutable out_bits : float;
}

type t = {
  capacity : float;
  mutable ring : Packet.t array;
  mutable head : int;  (* index of the oldest frame *)
  mutable count : int;
  filler : Packet.t;
  acc : acc;
  mutable drops : int;
}

let create ~capacity_bits =
  if capacity_bits <= 0. then invalid_arg "Fifo.create: capacity <= 0";
  {
    capacity = capacity_bits;
    ring = [||];
    head = 0;
    count = 0;
    filler = Packet.sentinel ();
    acc = { occupancy = 0.; dropped = 0.; in_bits = 0.; out_bits = 0. };
    drops = 0;
  }

let grow q =
  let cap = Array.length q.ring in
  if q.count >= cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let nring = Array.make ncap q.filler in
    for i = 0 to q.count - 1 do
      nring.(i) <- q.ring.((q.head + i) mod cap)
    done;
    q.ring <- nring;
    q.head <- 0
  end

let enqueue q (p : Packet.t) =
  let bits = float_of_int p.Packet.bits in
  if q.acc.occupancy +. bits > q.capacity then begin
    q.drops <- q.drops + 1;
    q.acc.dropped <- q.acc.dropped +. bits;
    false
  end
  else begin
    grow q;
    let cap = Array.length q.ring in
    let i = q.head + q.count in
    let i = if i >= cap then i - cap else i in
    q.ring.(i) <- p;
    q.count <- q.count + 1;
    q.acc.occupancy <- q.acc.occupancy +. bits;
    q.acc.in_bits <- q.acc.in_bits +. bits;
    true
  end

let pop q =
  if q.count = 0 then invalid_arg "Fifo.pop: empty queue";
  let p = q.ring.(q.head) in
  q.ring.(q.head) <- q.filler;
  let h = q.head + 1 in
  q.head <- (if h >= Array.length q.ring then 0 else h);
  q.count <- q.count - 1;
  let bits = float_of_int p.Packet.bits in
  q.acc.occupancy <- q.acc.occupancy -. bits;
  q.acc.out_bits <- q.acc.out_bits +. bits;
  p

let dequeue q = if q.count = 0 then None else Some (pop q)

let[@inline] occupancy_bits q = q.acc.occupancy
let[@inline] length q = q.count
let[@inline] is_empty q = q.count = 0
let capacity_bits q = q.capacity
let drops q = q.drops
let dropped_bits q = q.acc.dropped
let enqueued_bits q = q.acc.in_bits
let dequeued_bits q = q.acc.out_bits
