(** Single-bottleneck (dumbbell) BCN simulation — paper Fig. 1 made
    executable: N homogeneous sources with reaction points, one core
    switch with the congestion point, a sink.

    This is the packet-level ground truth against which the fluid model
    is validated (experiment V1 of DESIGN.md). *)

type control_channel =
  Engine.t ->
  Packet.t ->
  deliver:(Engine.t -> Packet.t -> unit) ->
  drop:(Engine.t -> Packet.t -> unit) ->
  unit
(** A fault channel interposed between the switch's control-frame output
    and delivery. Called synchronously at emission time with the frame
    and two continuations: [deliver] sends the frame down the normal
    delivery leg (propagation delay, then dispatch — call it at most
    once, now or from a scheduled event), [drop] disposes of the frame
    without delivering (recycling it into the run's packet pool).
    Exactly one of the two must eventually be called per frame, or the
    frame leaks from the pool's accounting. *)

type config = {
  params : Fluid.Params.t;
  t_end : float;  (** simulated seconds *)
  sample_dt : float;  (** trace sampling period *)
  initial_rate : float;  (** per-source starting rate, bit/s *)
  control_delay : float;  (** BCN/PAUSE propagation delay, seconds *)
  sampling : Switch.sampling;
  mode : Source.update_mode;  (** reaction-point update semantics *)
  positive_to_untagged : bool;
  broadcast_feedback : bool;
      (** deliver every BCN message to all sources — the fluid model's
          homogeneity assumption made literal; default off *)
  enable_bcn : bool;
  enable_pause : bool;
  pause_resume : float;  (** PAUSE(off) hysteresis, fraction of qsc *)
  control_channel : control_channel option;
      (** when set, every BCN/PAUSE frame passes through this channel
          before delivery (fault injection). [None] (the default) keeps
          the unperturbed direct path — byte-identical behaviour and
          allocation to a pre-faultnet runner. *)
  on_setup : (Engine.t -> Switch.t -> unit) option;
      (** called once, after the switch exists and before any event
          runs — the hook [Faultnet.Injector.install] uses to arm
          capacity flaps and blackouts. *)
  stop_on_verdict : bool;
      (** stop the run at the first trace sample that observes a FIFO
          drop: once the buffer has overflowed, the overflow verdict —
          the question Definition-1 region scans ask of a run — cannot
          change, so the remaining horizon is skipped. The trace,
          counters and [drops > 0] verdict match the same prefix of a
          full-horizon run; [utilization] is normalized by the elapsed
          (not configured) time. Default off: a full-horizon run is
          byte-identical to one without this field. *)
}

val default_config : ?t_end:float -> ?sample_dt:float -> Fluid.Params.t -> config
(** Defaults: [t_end = 20 ms], [sample_dt = 10 us], initial rate
    [max mu (2%% of the fair share)], [control_delay = 1 us],
    deterministic sampling, [mode = Zoh_fluid], fluid-faithful positive
    feedback, BCN and PAUSE enabled, [pause_resume = 0.9], no fault
    channel, no setup hook. *)

type result = {
  queue : Numerics.Series.t;  (** switch queue occupancy, bits *)
  agg_rate : Numerics.Series.t;  (** sum of source rates, bit/s *)
  flow_rates : Numerics.Series.t array;  (** per-flow rate traces *)
  latency : Numerics.Histogram.t;
      (** per-frame sojourn time through the switch, seconds *)
  queue_histogram : Numerics.Histogram.t;
      (** time-weighted queue-occupancy distribution, bits *)
  drops : int;
  dropped_bits : float;
  delivered_bits : float;
  utilization : float;  (** delivered / (C·t_end) *)
  bcn_positive : int;
  bcn_negative : int;
  pause_on_events : int;
  sampled_frames : int;
  events_processed : int;
  final_rates : float array;
}

val run : ?probe:Telemetry.Probe.t -> config -> result
(** One simulation. Internally every frame is drawn from a private
    {!Packet.Pool}, so the steady-state forwarding path allocates
    nothing per data frame.

    [probe] (default {!Telemetry.Probe.disabled}) is installed on the
    engine: switches, sources and the runner itself emit flight-recorder
    events and metrics through it. With the default disabled probe the
    emitters compile to untaken branches and the run is bit-identical
    (including allocation behaviour) to an uninstrumented one. When the
    probe is enabled, the runner flushes per-kind event counters and
    [runner.*] counters/gauges/histograms into the probe's registry
    before returning. *)

val with_seed : config -> int -> config
(** Switch the config to [Bernoulli] frame sampling driven by a fresh
    RNG state derived deterministically from [seed]. Two configs built
    from the same seed produce identical runs. *)

val run_many : ?jobs:int -> config array -> result array
(** Run every config, fanning out over a [Parallel.Pool] of [jobs]
    lanes (default: [Parallel.Pool.default_size ()], i.e. [DCECC_JOBS]
    or the machine's domain count). Results are returned in input order
    and are byte-identical for any [jobs] value — each run owns its
    engine, packet pool and RNG state, and the pool's combinators are
    deterministic. [jobs = 1] runs sequentially in the caller.
    Raises [Invalid_argument] when [jobs < 1]. *)

val replicate : ?jobs:int -> seeds:int array -> config -> result array
(** [replicate ~seeds cfg] = [run_many (Array.map (with_seed cfg) seeds)]:
    independent Monte-Carlo replicas of one scenario under Bernoulli
    sampling, one per seed, in seed order. *)

val replicate_instrumented :
  ?jobs:int -> seeds:int array -> config -> result array * Telemetry.Metrics.t
(** Like {!replicate}, but each replica runs under its own counting
    probe (a zero-capacity flight recorder: exact per-kind event counts
    and [runner.*] metrics, no event ring). The per-replica registries
    are merged in seed order after the fan-out completes, so the
    returned registry — and its {!Telemetry.Metrics.to_json_string}
    snapshot — is byte-identical for any [jobs] value. *)

val fairness : float array -> float
(** Jain's fairness index of a rate allocation:
    [(sum r)² / (n · sum r²)]; 1.0 = perfectly fair.
    Raises [Invalid_argument] on an empty array. *)
