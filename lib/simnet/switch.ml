type sampling =
  | Deterministic
  | Bernoulli of Random.State.t
  | Timer of float

type config = {
  cpid : int;
  capacity : float;
  buffer_bits : float;
  q0 : float;
  qsc : float;
  pause_resume : float;
  w : float;
  pm : float;
  sampling : sampling;
  positive_to_untagged : bool;
  enable_bcn : bool;
  enable_pause : bool;
  pool : Packet.Pool.t option;
}

let default_config (p : Fluid.Params.t) ~cpid =
  {
    cpid;
    capacity = p.Fluid.Params.capacity;
    buffer_bits = p.Fluid.Params.buffer;
    q0 = p.Fluid.Params.q0;
    qsc = p.Fluid.Params.qsc;
    pause_resume = 0.9;
    w = p.Fluid.Params.w;
    pm = p.Fluid.Params.pm;
    sampling = Deterministic;
    positive_to_untagged = true;
    enable_bcn = true;
    enable_pause = true;
    pool = None;
  }

type stats = {
  mutable forwarded : int;
  mutable sampled : int;
  mutable bcn_positive : int;
  mutable bcn_negative : int;
  mutable pause_on : int;
  mutable pause_off : int;
}

(* [q_at_last_sample] and the live egress [capacity] live in an
   all-float cell so per-sample and per-service stores do not box.
   [capacity] starts at [cfg.capacity] and is only ever rewritten by
   {!set_capacity} (fault-injected link flaps). *)
type fstate = { mutable q_at_last_sample : float; mutable capacity : float }

type t = {
  cfg : config;
  queue : Fifo.t;
  control_out : Engine.t -> Packet.t -> unit;
  mutable forward : (Engine.t -> Packet.t -> unit) option;
  mutable busy : bool;
  (* BCN congestion point live-enabled flag: [cfg.enable_bcn] at create,
     toggled by fault-injected blackouts *)
  mutable bcn_active : bool;
  (* precomputed [pause_resume * qsc] so check_pause stays two compares *)
  resume_level : float;
  mutable egress_paused : bool;
  mutable upstream_paused : bool;
  mutable arrivals_since_sample : int;
  sample_every : int;
  fs : fstate;
  mutable last_flow : int;
  mutable last_rrt : int option;
  mutable timer_armed : bool;
  mutable ctl_seq : int;
  (* frame currently in service plus the preallocated service-completion
     callback: one closure per switch, not one per forwarded frame *)
  mutable in_service : Packet.t;
  mutable complete : Engine.t -> unit;
  st : stats;
}

let[@inline] queue_bits sw = Fifo.occupancy_bits sw.queue
let fifo sw = sw.queue
let stats sw = sw.st
let config sw = sw.cfg
let upstream_paused sw = sw.upstream_paused
let capacity sw = sw.fs.capacity
let bcn_enabled sw = sw.bcn_active

let next_ctl_seq sw =
  let s = sw.ctl_seq in
  sw.ctl_seq <- s + 1;
  s

let send_pause sw e on =
  let seq = next_ctl_seq sw in
  let now = Engine.now e in
  let pkt =
    match sw.cfg.pool with
    | Some pool -> Packet.Pool.alloc_pause pool ~seq ~now ~on
    | None -> Packet.make_pause ~seq ~now ~on
  in
  if on then sw.st.pause_on <- sw.st.pause_on + 1
  else sw.st.pause_off <- sw.st.pause_off + 1;
  sw.upstream_paused <- on;
  Telemetry.Probe.pause (Engine.probe e) ~t:now ~on ~q:(queue_bits sw)
    ~cpid:sw.cfg.cpid ~seq;
  sw.control_out e pkt

let check_pause sw e =
  if sw.cfg.enable_pause then begin
    let q = queue_bits sw in
    if (not sw.upstream_paused) && q > sw.cfg.qsc then send_pause sw e true
    else if sw.upstream_paused && q < sw.resume_level then
      send_pause sw e false
  end

let rec serve sw e =
  if (not sw.busy) && (not sw.egress_paused) && not (Fifo.is_empty sw.queue)
  then begin
    let pkt = Fifo.pop sw.queue in
    sw.busy <- true;
    sw.in_service <- pkt;
    let tx = float_of_int pkt.Packet.bits /. sw.fs.capacity in
    Engine.schedule e ~delay:tx sw.complete
  end

and complete_service sw e =
  let pkt = sw.in_service in
  sw.busy <- false;
  sw.st.forwarded <- sw.st.forwarded + 1;
  (* read the frame's fields before [forward]: the downstream sink may
     recycle the frame into the pool. Matching the kind inline (rather
     than Packet.flow_of) keeps this allocation-free: flow_of builds an
     option per call, which the bench smoke flags at 2 words/frame. *)
  Telemetry.Probe.dequeue (Engine.probe e) ~t:(Engine.now e)
    ~q:(queue_bits sw)
    ~sojourn:(Engine.now e -. Packet.born pkt)
    ~flow:
      (match pkt.Packet.kind with
      | Packet.Data { flow; _ } | Packet.Bcn { flow; _ } -> flow
      | Packet.Pause _ -> -1)
    ~seq:pkt.Packet.seq;
  (match sw.forward with
  | Some f -> f e pkt
  | None -> failwith "Switch: forward not set");
  check_pause sw e;
  serve sw e

let create (cfg : config) ~control_out =
  if cfg.capacity <= 0. then invalid_arg "Switch.create: capacity <= 0";
  if cfg.pm <= 0. || cfg.pm > 1. then invalid_arg "Switch.create: pm not in (0,1]";
  if cfg.pause_resume <= 0. || cfg.pause_resume > 1. then
    invalid_arg "Switch.create: pause_resume not in (0,1]";
  let sw =
    {
      cfg;
      queue = Fifo.create ~capacity_bits:cfg.buffer_bits;
      control_out;
      forward = None;
      busy = false;
      bcn_active = cfg.enable_bcn;
      resume_level = cfg.pause_resume *. cfg.qsc;
      egress_paused = false;
      upstream_paused = false;
      arrivals_since_sample = 0;
      sample_every = Stdlib.max 1 (int_of_float (Float.round (1. /. cfg.pm)));
      fs = { q_at_last_sample = 0.; capacity = cfg.capacity };
      last_flow = 0;
      last_rrt = None;
      timer_armed = false;
      ctl_seq = 0;
      in_service = Packet.sentinel ();
      complete = (fun _ -> ());
      st =
        {
          forwarded = 0;
          sampled = 0;
          bcn_positive = 0;
          bcn_negative = 0;
          pause_on = 0;
          pause_off = 0;
        };
    }
  in
  (* the completion callback closes over [sw], so it can only be built
     once the record exists *)
  sw.complete <- (fun e -> complete_service sw e);
  sw

let set_forward sw f = sw.forward <- Some f

let set_egress_paused sw e on =
  sw.egress_paused <- on;
  if not on then serve sw e

let set_capacity sw c =
  if c <= 0. || not (Float.is_finite c) then
    invalid_arg "Switch.set_capacity: capacity must be positive and finite";
  sw.fs.capacity <- c

(* a switch created with BCN disabled stays disabled: blackouts only
   interrupt a congestion point that exists *)
let set_bcn_enabled sw on = sw.bcn_active <- sw.cfg.enable_bcn && on

let reset_congestion_point sw =
  sw.fs.q_at_last_sample <- queue_bits sw;
  sw.arrivals_since_sample <- 0

let should_sample sw =
  match sw.cfg.sampling with
  | Deterministic ->
      sw.arrivals_since_sample <- sw.arrivals_since_sample + 1;
      if sw.arrivals_since_sample >= sw.sample_every then begin
        sw.arrivals_since_sample <- 0;
        true
      end
      else false
  | Bernoulli rng -> Random.State.float rng 1. < sw.cfg.pm
  | Timer _ -> false

let emit_bcn sw e ~flow ~fb =
  let seq = next_ctl_seq sw in
  let now = Engine.now e in
  let pkt =
    match sw.cfg.pool with
    | Some pool ->
        Packet.Pool.alloc_bcn pool ~seq ~now ~flow ~fb ~cpid:sw.cfg.cpid
    | None -> Packet.make_bcn ~seq ~now ~flow ~fb ~cpid:sw.cfg.cpid
  in
  sw.control_out e pkt

let sample sw e ~flow ~rrt =
  sw.st.sampled <- sw.st.sampled + 1;
  let q = queue_bits sw in
  let dq = q -. sw.fs.q_at_last_sample in
  sw.fs.q_at_last_sample <- q;
  let sigma = (sw.cfg.q0 -. q) -. (sw.cfg.w *. dq) in
  if sigma < 0. then begin
    sw.st.bcn_negative <- sw.st.bcn_negative + 1;
    Telemetry.Probe.bcn (Engine.probe e) ~t:(Engine.now e) ~fb:sigma ~q ~flow
      ~seq:sw.ctl_seq;
    emit_bcn sw e ~flow ~fb:sigma
  end
  else if sigma > 0. && q < sw.cfg.q0 then begin
    let tagged_here = match rrt with Some c -> c = sw.cfg.cpid | None -> false in
    if tagged_here || sw.cfg.positive_to_untagged then begin
      sw.st.bcn_positive <- sw.st.bcn_positive + 1;
      Telemetry.Probe.bcn (Engine.probe e) ~t:(Engine.now e) ~fb:sigma ~q ~flow
        ~seq:sw.ctl_seq;
      emit_bcn sw e ~flow ~fb:sigma
    end
  end

let start sw e =
  match sw.cfg.sampling with
  | Deterministic | Bernoulli _ -> ()
  | Timer period ->
      if period <= 0. then invalid_arg "Switch.start: timer period <= 0";
      if not sw.timer_armed then begin
        sw.timer_armed <- true;
        let rec tick e =
          if sw.bcn_active then
            sample sw e ~flow:sw.last_flow ~rrt:sw.last_rrt;
          Engine.schedule e ~delay:period tick
        in
        Engine.schedule e ~delay:period tick
      end

let fluid_sampling_period (p : Fluid.Params.t) =
  float_of_int Packet.data_frame_bits
  /. (p.Fluid.Params.pm *. p.Fluid.Params.capacity)

let receive sw e pkt =
  (match pkt.Packet.kind with
  | Packet.Bcn _ | Packet.Pause _ ->
      invalid_arg "Switch.receive: control frames do not enter the data path"
  | Packet.Data { flow; rrt } ->
      sw.last_flow <- flow;
      sw.last_rrt <- rrt);
  let accepted = Fifo.enqueue sw.queue pkt in
  (if accepted then begin
     Telemetry.Probe.enqueue (Engine.probe e) ~t:(Engine.now e)
       ~q:(queue_bits sw)
       ~bits:(float_of_int pkt.Packet.bits)
       ~flow:sw.last_flow ~seq:pkt.Packet.seq;
     if sw.bcn_active && should_sample sw then
       match pkt.Packet.kind with
       | Packet.Data { flow; rrt } -> sample sw e ~flow ~rrt
       | Packet.Bcn _ | Packet.Pause _ -> ()
   end
   else begin
     (* tail drop: record before recycling — release rewrites the frame *)
     Telemetry.Probe.drop (Engine.probe e) ~t:(Engine.now e)
       ~q:(queue_bits sw)
       ~bits:(float_of_int pkt.Packet.bits)
       ~flow:sw.last_flow ~seq:pkt.Packet.seq;
     match sw.cfg.pool with
     | Some pool -> Packet.Pool.release pool pkt
     | None -> ()
   end);
  check_pause sw e;
  serve sw e
