(** The one shared shape of a packet-level simulation model.

    Every model in this library ([Runner], [E2cm], [Fera], [Multihop])
    is a pure function from an immutable [config] to a [result]; the
    deterministic parallel fan-out over a [Parallel.Pool] is identical
    for all of them and used to be copy-pasted per module. {!Make}
    generates it once from the {!MODEL} signature; the model modules
    re-export the generated [run_many] under their historical names, so
    existing callers keep compiling. *)

(** What a model must provide: a display [name] (used in error
    messages, e.g. ["E2cm.run_many: jobs < 1"]) and a [run] whose
    invocations are independent — each owns its engine, pools and RNG
    state, so runs may execute on any domain in any order. *)
module type MODEL = sig
  type config
  type result

  val name : string
  val run : config -> result
end

(** The generated fan-out API. *)
module type FANOUT = sig
  type config
  type result

  val run_many : ?jobs:int -> config array -> result array
  (** Run every config, fanning out over a [Parallel.Pool] of [jobs]
      lanes (default {!Parallel.Pool.default_size}). Results are
      returned in input order and are byte-identical for any [jobs]
      value. [jobs = 1] runs sequentially in the caller. Raises
      [Invalid_argument] when [jobs < 1]. *)
end

module Make (M : MODEL) :
  FANOUT with type config = M.config and type result = M.result
