open Numerics

type config = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  alpha : float;
  beta : float;
  interval : float;
  variant : Fluid.Rcp.variant;
  control_channel : Runner.control_channel option;
  on_setup : (Engine.t -> Switch.t -> unit) option;
}

let default_config ?(t_end = 0.02) ?(sample_dt = 1e-5) (p : Fluid.Params.t) =
  {
    params = p;
    t_end;
    sample_dt;
    initial_rate = 0.3 *. Fluid.Params.equilibrium_rate p;
    control_delay = 1e-6;
    alpha = Fluid.Rcp.default_alpha;
    beta = Fluid.Rcp.default_beta;
    interval = Fluid.Rcp.default_tau;
    variant = Fluid.Rcp.By_capacity;
    control_channel = None;
    on_setup = None;
  }

type result = {
  queue : Series.t;
  agg_rate : Series.t;
  advertised : Series.t;
  drops : int;
  delivered_bits : float;
  utilization : float;
  feedbacks : int;
  final_rates : float array;
  events_processed : int;
}

let run cfg =
  if cfg.t_end <= 0. then invalid_arg "Rcp.run: t_end <= 0";
  let p = cfg.params in
  let n = p.Fluid.Params.n_flows in
  let c = p.Fluid.Params.capacity in
  let e = Engine.create () in
  let pool = Packet.Pool.create () in
  let sw =
    Switch.create
      {
        (Switch.default_config p ~cpid:1) with
        Switch.enable_bcn = false;
        enable_pause = false;
        pool = Some pool;
      }
      ~control_out:(fun _e _pkt -> ())
  in
  let delivered = ref 0. in
  Switch.set_forward sw (fun _e pkt ->
      delivered := !delivered +. float_of_int pkt.Packet.bits;
      Packet.Pool.release pool pkt);
  (match cfg.on_setup with Some f -> f e sw | None -> ());
  let rates = Array.make n cfg.initial_rate in
  let advertised = ref cfg.initial_rate in
  let arrived_bits = ref 0. in
  let feedbacks = ref 0 in
  let seq = ref 0 in
  (* a rate frame is consumed (and recycled) wherever it terminates:
     at the source on delivery, or by the fault channel's drop path *)
  let deliver_fb _e (pkt : Packet.t) =
    (match pkt.Packet.kind with
    | Packet.Bcn { flow; fb; _ } -> rates.(flow) <- fb
    | Packet.Data _ | Packet.Pause _ -> ());
    Packet.Pool.release pool pkt
  in
  let drop_fb _e pkt = Packet.Pool.release pool pkt in
  let rec control_cycle e =
    (* the router knows its own (live) capacity; a flap therefore feeds
       straight into the advertised-rate law, as in the fluid model *)
    let live_c = Switch.capacity sw in
    let y = !arrived_bits /. cfg.interval in
    arrived_bits := 0.;
    let q = Switch.queue_bits sw in
    let corr =
      (cfg.alpha *. (live_c -. y)) -. (cfg.beta *. q /. cfg.interval)
    in
    let r = !advertised in
    let r' =
      match cfg.variant with
      | Fluid.Rcp.By_capacity -> r *. (1. +. (corr /. live_c))
      | Fluid.Rcp.By_load -> r +. (corr /. float_of_int n)
    in
    advertised := Float.max 1e3 (Float.min r' c);
    for i = 0 to n - 1 do
      let pkt =
        Packet.Pool.alloc_bcn pool ~seq:!seq ~now:(Engine.now e) ~flow:i
          ~fb:!advertised ~cpid:1
      in
      incr seq;
      incr feedbacks;
      match cfg.control_channel with
      | None ->
          Engine.schedule e ~delay:cfg.control_delay (fun e ->
              deliver_fb e pkt)
      | Some chan ->
          chan e pkt
            ~deliver:(fun e pkt ->
              Engine.schedule e ~delay:cfg.control_delay (fun e ->
                  deliver_fb e pkt))
            ~drop:drop_fb
    done;
    Engine.schedule e ~delay:cfg.interval control_cycle
  in
  Engine.schedule e ~delay:cfg.interval control_cycle;
  let frame = float_of_int Packet.data_frame_bits in
  let rec pace i e =
    if Engine.now e <= cfg.t_end then begin
      let pkt =
        Packet.Pool.alloc_data pool ~seq:!seq ~now:(Engine.now e) ~flow:i
          ~rrt:None
      in
      incr seq;
      (* y is measured at the ingress, drops included — the input
         traffic rate of the RCP law, not the accepted rate *)
      arrived_bits := !arrived_bits +. float_of_int pkt.Packet.bits;
      Switch.receive sw e pkt;
      Engine.schedule e ~delay:(frame /. rates.(i)) (pace i)
    end
  in
  for i = 0 to n - 1 do
    let jitter = frame /. rates.(i) *. (float_of_int (i mod 97) /. 97.) in
    Engine.schedule e ~delay:jitter (pace i)
  done;
  let n_samples = int_of_float (Float.ceil (cfg.t_end /. cfg.sample_dt)) + 1 in
  let ts = Array.make n_samples 0. in
  let qs = Array.make n_samples 0. in
  let ags = Array.make n_samples 0. in
  let avs = Array.make n_samples 0. in
  let idx = ref 0 in
  let rec sampler e =
    if !idx < n_samples then begin
      ts.(!idx) <- Engine.now e;
      qs.(!idx) <- Switch.queue_bits sw;
      ags.(!idx) <- Array.fold_left ( +. ) 0. rates;
      avs.(!idx) <- !advertised;
      incr idx
    end;
    if Engine.now e +. cfg.sample_dt <= cfg.t_end then
      Engine.schedule e ~delay:cfg.sample_dt sampler
  in
  Engine.schedule e ~delay:0. sampler;
  Engine.run ~until:cfg.t_end e;
  let m = !idx in
  let cut a = Array.sub a 0 m in
  {
    queue = Series.make (cut ts) (cut qs);
    agg_rate = Series.make (cut ts) (cut ags);
    advertised = Series.make (cut ts) (cut avs);
    drops = Fifo.drops (Switch.fifo sw);
    delivered_bits = !delivered;
    utilization = !delivered /. (c *. cfg.t_end);
    feedbacks = !feedbacks;
    final_rates = Array.copy rates;
    events_processed = Engine.events_processed e;
  }

module Fanout = Model.Make (struct
  type nonrec config = config
  type nonrec result = result

  let name = "Rcp"
  let run = run
end)

let run_many = Fanout.run_many
