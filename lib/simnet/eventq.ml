(* Structure-of-arrays 4-ary min-heap.

   The hot path of the discrete-event engine pushes and pops one entry
   per simulated event, so the queue must not allocate per operation.
   Instead of an array of boxed { key; seq; value } records (the seed
   implementation, preserved as {!Eventq_boxed}), the heap is three
   parallel arrays:

     keys : float array   -- flat/unboxed: sift comparisons never chase
                             a pointer and never box a float
     seqs : int array     -- FIFO tie-break counters
     vals : 'a array      -- payloads

   Layout and algorithm choices, all for the per-event constant:

   - 4-ary rather than binary: half the depth for the ~10-100 pending
     events a packet simulation carries, and the four children of a node
     sit in adjacent slots of a flat float array (one cache line), so
     the extra comparisons per level are nearly free.
   - hole sifting rather than swapping: an insertion walks a hole
     through the heap and writes the pending entry once at the end,
     instead of rewriting three arrays at every level.
   - [Array.unsafe_*] in the sift loops: every index is derived from
     [len], which the bounds discipline below keeps inside capacity.
   - the pending key crosses into the sift helper through the flat
     [pend] scratch record, never as a function argument: under the
     Closure middle-end a float argument to a non-inlined call is boxed,
     which would put an allocation back on every push.

   [push] therefore allocates nothing (array growth is amortized and
   disappears after warm-up), and [pop_min]/[min_key] are the
   allocation-free counterparts of [pop]/[peek] for callers that cannot
   afford the [Some (key, value)] boxing; the option-returning API is
   kept as a thin wrapper on top.

   The payload array is never created from a float value: empty slots
   hold an immediate dummy ([Obj.magic 0]), so the array is never given
   the flat float-array representation and the polymorphic reads/writes
   below stay tag-checked and safe even for [float Eventq.t]. Freed
   slots are overwritten with the dummy as soon as an entry is popped so
   the queue does not pin dead payloads (callback closures, packets)
   live until the slot happens to be reused. *)

type pend = { mutable pkey : float }

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable len : int;
  mutable next_seq : int;
  pend : pend;
}

let no_value : unit -> 'a = fun () -> Obj.magic 0

let create () =
  {
    keys = [||];
    seqs = [||];
    vals = [||];
    len = 0;
    next_seq = 0;
    pend = { pkey = 0. };
  }

let size q = q.len
let is_empty q = q.len = 0

let ensure_capacity q =
  let cap = Array.length q.keys in
  if q.len >= cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let ks = Array.make ncap 0. in
    let ss = Array.make ncap 0 in
    let vs = Array.make ncap (no_value ()) in
    Array.blit q.keys 0 ks 0 q.len;
    Array.blit q.seqs 0 ss 0 q.len;
    Array.blit q.vals 0 vs 0 q.len;
    q.keys <- ks;
    q.seqs <- ss;
    q.vals <- vs
  end

(* Walk a hole from leaf slot [i] towards the root until the pending
   entry (key in [q.pend], seq/value as arguments — ints and pointers
   cross calls for free) is in heap order, then write it once. *)
let sift_up_hole q i seq v =
  let keys = q.keys and seqs = q.seqs and vals = q.vals in
  let key = q.pend.pkey in
  let i = ref i in
  let moving = ref true in
  while !moving do
    if !i = 0 then moving := false
    else begin
      let p = (!i - 1) lsr 2 in
      let kp = Array.unsafe_get keys p in
      if key < kp || (key = kp && seq < Array.unsafe_get seqs p) then begin
        Array.unsafe_set keys !i kp;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
        Array.unsafe_set vals !i (Array.unsafe_get vals p);
        i := p
      end
      else moving := false
    end
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v

let[@inline] push q key value =
  if key <> key then invalid_arg "Eventq.push: NaN key";
  ensure_capacity q;
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let i = q.len in
  q.len <- i + 1;
  q.pend.pkey <- key;
  sift_up_hole q i seq value

let[@inline] min_key q =
  if q.len = 0 then invalid_arg "Eventq.min_key: empty queue";
  q.keys.(0)

(* [q.len] has already been decremented; re-insert the old tail entry
   (now at slot [q.len]) walking a hole down from the root, and clear
   the vacated tail slot. *)
let sift_down_from_root q =
  let keys = q.keys and seqs = q.seqs and vals = q.vals in
  let n = q.len in
  let key = Array.unsafe_get keys n in
  let seq = Array.unsafe_get seqs n in
  let v = Array.unsafe_get vals n in
  Array.unsafe_set vals n (no_value ());
  let i = ref 0 in
  let moving = ref true in
  while !moving do
    let base = (!i lsl 2) + 1 in
    if base + 3 < n then begin
      (* Interior node: all four children exist. Straight-line
         tournament — the four keys sit in at most two cache lines and
         stay in registers; ties fall through to a seq comparison only
         on exact key equality. No tuples: Closure would box them. *)
      let k0 = Array.unsafe_get keys base in
      let k1 = Array.unsafe_get keys (base + 1) in
      let k2 = Array.unsafe_get keys (base + 2) in
      let k3 = Array.unsafe_get keys (base + 3) in
      let c01 =
        if
          k1 < k0
          || k1 = k0
             && Array.unsafe_get seqs (base + 1) < Array.unsafe_get seqs base
        then base + 1
        else base
      in
      let c23 =
        if
          k3 < k2
          || k3 = k2
             && Array.unsafe_get seqs (base + 3)
                < Array.unsafe_get seqs (base + 2)
        then base + 3
        else base + 2
      in
      let k01 = Array.unsafe_get keys c01 in
      let k23 = Array.unsafe_get keys c23 in
      let c =
        if
          k23 < k01
          || k23 = k01 && Array.unsafe_get seqs c23 < Array.unsafe_get seqs c01
        then c23
        else c01
      in
      let kc = Array.unsafe_get keys c in
      if kc < key || (kc = key && Array.unsafe_get seqs c < seq) then begin
        Array.unsafe_set keys !i kc;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
        Array.unsafe_set vals !i (Array.unsafe_get vals c);
        i := c
      end
      else moving := false
    end
    else if base >= n then moving := false
    else begin
      (* Bottom fringe: one to three children. *)
      let stop = n - 1 in
      let c = ref base in
      for j = base + 1 to stop do
        let kj = Array.unsafe_get keys j in
        let kc = Array.unsafe_get keys !c in
        if
          kj < kc
          || (kj = kc && Array.unsafe_get seqs j < Array.unsafe_get seqs !c)
        then c := j
      done;
      let c = !c in
      let kc = Array.unsafe_get keys c in
      if kc < key || (kc = key && Array.unsafe_get seqs c < seq) then begin
        Array.unsafe_set keys !i kc;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
        Array.unsafe_set vals !i (Array.unsafe_get vals c);
        i := c
      end
      else moving := false
    end
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v

let[@inline] pop_min q =
  if q.len = 0 then invalid_arg "Eventq.pop_min: empty queue";
  let v = q.vals.(0) in
  let last = q.len - 1 in
  q.len <- last;
  if last = 0 then q.vals.(0) <- no_value () else sift_down_from_root q;
  v

let pop q =
  if q.len = 0 then None
  else
    let k = q.keys.(0) in
    Some (k, pop_min q)

let peek q = if q.len = 0 then None else Some (q.keys.(0), q.vals.(0))

let clear q =
  for i = 0 to q.len - 1 do
    q.vals.(i) <- no_value ()
  done;
  q.len <- 0

let drain q =
  let rec go acc =
    match pop q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []
