(* The seed implementation of the event queue: a binary min-heap over
   boxed { key; seq; value } records, one allocated per push. Kept (a)
   as the oracle for the Eventq property tests — same observable
   semantics, independently implemented — and (b) as the benchmark
   baseline the structure-of-arrays queue is measured against.

   The one change from the seed is the space-leak fix: pop clears the
   vacated slot instead of leaving the popped entry (and the moved-from
   tail entry) reachable from the heap array until overwritten. *)

type 'a entry = { key : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let no_entry : unit -> 'a entry = fun () -> Obj.magic 0

let create () = { heap = [||]; len = 0; next_seq = 0 }

let before a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  if q.len >= cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let h = Array.make ncap (no_entry ()) in
    Array.blit q.heap 0 h 0 q.len;
    q.heap <- h
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.len && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let push q key value =
  if Float.is_nan key then invalid_arg "Eventq_boxed.push: NaN key";
  let entry = { key; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q;
  q.heap.(q.len) <- entry;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      sift_down q 0
    end;
    q.heap.(q.len) <- no_entry ();
    Some (top.key, top.value)
  end

let peek q = if q.len = 0 then None else Some (q.heap.(0).key, q.heap.(0).value)

let size q = q.len
let is_empty q = q.len = 0

let clear q =
  for i = 0 to q.len - 1 do
    q.heap.(i) <- no_entry ()
  done;
  q.len <- 0

let drain q =
  let rec go acc = match pop q with None -> List.rev acc | Some e -> go (e :: acc) in
  go []
