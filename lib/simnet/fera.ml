open Numerics

type config = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  interval : float;
  target_util : float;
  control_channel : Runner.control_channel option;
}

let default_config ?(t_end = 0.02) ?(sample_dt = 1e-5) (p : Fluid.Params.t) =
  {
    params = p;
    t_end;
    sample_dt;
    initial_rate = 0.3 *. Fluid.Params.equilibrium_rate p;
    control_delay = 1e-6;
    interval =
      100. *. float_of_int Packet.data_frame_bits /. p.Fluid.Params.capacity;
    target_util = 0.95;
    control_channel = None;
  }

type result = {
  queue : Series.t;
  agg_rate : Series.t;
  drops : int;
  delivered_bits : float;
  utilization : float;
  advertisements : int;
  final_rates : float array;
  convergence_time : float option;
}

let run cfg =
  if cfg.t_end <= 0. then invalid_arg "Fera.run: t_end <= 0";
  if cfg.interval <= 0. then invalid_arg "Fera.run: interval <= 0";
  let p = cfg.params in
  let n = p.Fluid.Params.n_flows in
  let c = p.Fluid.Params.capacity in
  let fair = Fluid.Params.equilibrium_rate p in
  let e = Engine.create () in
  let fifo = Fifo.create ~capacity_bits:p.Fluid.Params.buffer in
  let busy = ref false in
  let delivered = ref 0. in
  let advertisements = ref 0 in
  let rates = Array.make n cfg.initial_rate in
  (* per-interval measurement state *)
  let flow_bits = Array.make n 0. in
  let rec serve e =
    if not !busy then
      match Fifo.dequeue fifo with
      | None -> ()
      | Some pkt ->
          busy := true;
          Engine.schedule e
            ~delay:(float_of_int pkt.Packet.bits /. c)
            (fun e ->
              busy := false;
              delivered := !delivered +. float_of_int pkt.Packet.bits;
              serve e)
  in
  let receive e (pkt : Packet.t) =
    (match pkt.Packet.kind with
    | Packet.Data { flow; _ } ->
        if Fifo.enqueue fifo pkt then
          flow_bits.(flow) <- flow_bits.(flow) +. float_of_int pkt.Packet.bits
    | Packet.Bcn _ | Packet.Pause _ -> ());
    serve e
  in
  (* An advertisement reaches its source directly (historical path) or,
     when a fault channel is interposed, as a synthesized BCN frame
     carrying [fb = er] — so loss/delay plans act on ERICA feedback the
     same way they act on BCN feedback. [None] and a pass-through
     channel are event-for-event identical. *)
  let fb_seq = ref 0 in
  let feedback e i er =
    match cfg.control_channel with
    | None ->
        Engine.schedule e ~delay:cfg.control_delay (fun _e -> rates.(i) <- er)
    | Some chan ->
        let pkt =
          Packet.make_bcn ~seq:!fb_seq ~now:(Engine.now e) ~flow:i ~fb:er
            ~cpid:1
        in
        incr fb_seq;
        chan e pkt
          ~deliver:(fun e _pkt ->
            Engine.schedule e ~delay:cfg.control_delay (fun _e ->
                rates.(i) <- er))
          ~drop:(fun _e _pkt -> ())
  in
  (* the ERICA measurement/advertisement cycle *)
  let rec advertise e =
    let measured = Array.fold_left ( +. ) 0. flow_bits /. cfg.interval in
    let active =
      Array.fold_left (fun acc b -> if b > 0. then acc + 1 else acc) 0 flow_bits
    in
    if active > 0 then begin
      let u = cfg.target_util *. c in
      let z = Float.max 1e-9 (measured /. u) in
      let fair_share = u /. float_of_int active in
      Array.iteri
        (fun i bits ->
          if bits > 0. then begin
            let flow_rate = bits /. cfg.interval in
            let er = Float.max fair_share (flow_rate /. z) in
            let er = Float.min er c in
            incr advertisements;
            feedback e i er
          end)
        flow_bits
    end;
    Array.fill flow_bits 0 n 0.;
    Engine.schedule e ~delay:cfg.interval advertise
  in
  Engine.schedule e ~delay:cfg.interval advertise;
  (* paced sources reading their advertised rate *)
  let frame = float_of_int Packet.data_frame_bits in
  let seq = ref 0 in
  let rec pace i e =
    if Engine.now e <= cfg.t_end then begin
      let pkt =
        Packet.make_data ~seq:!seq ~now:(Engine.now e) ~flow:i ~rrt:None
      in
      incr seq;
      receive e pkt;
      Engine.schedule e ~delay:(frame /. rates.(i)) (pace i)
    end
  in
  for i = 0 to n - 1 do
    let jitter = frame /. rates.(i) *. (float_of_int (i mod 97) /. 97.) in
    Engine.schedule e ~delay:jitter (pace i)
  done;
  (* tracing + convergence detection *)
  let n_samples = int_of_float (Float.ceil (cfg.t_end /. cfg.sample_dt)) + 1 in
  let ts = Array.make n_samples 0. in
  let qs = Array.make n_samples 0. in
  let ags = Array.make n_samples 0. in
  let idx = ref 0 in
  let convergence = ref None in
  let rec sampler e =
    if !idx < n_samples then begin
      ts.(!idx) <- Engine.now e;
      qs.(!idx) <- Fifo.occupancy_bits fifo;
      ags.(!idx) <- Array.fold_left ( +. ) 0. rates;
      (if !convergence = None then
         let all_fair =
           Array.for_all
             (fun r -> Float.abs (r -. (cfg.target_util *. fair)) < 0.1 *. fair)
             rates
         in
         if all_fair then convergence := Some (Engine.now e));
      incr idx
    end;
    if Engine.now e +. cfg.sample_dt <= cfg.t_end then
      Engine.schedule e ~delay:cfg.sample_dt sampler
  in
  Engine.schedule e ~delay:0. sampler;
  Engine.run ~until:cfg.t_end e;
  let m = !idx in
  let cut a = Array.sub a 0 m in
  {
    queue = Series.make (cut ts) (cut qs);
    agg_rate = Series.make (cut ts) (cut ags);
    drops = Fifo.drops fifo;
    delivered_bits = !delivered;
    utilization = !delivered /. (c *. cfg.t_end);
    advertisements = !advertisements;
    final_rates = Array.copy rates;
    convergence_time = !convergence;
  }

(* The deterministic fan-out is generated once by the shared MODEL
   functor; [run_many] stays as the historical alias. *)
module Fanout = Model.Make (struct
  type nonrec config = config
  type nonrec result = result

  let name = "Fera"
  let run = run
end)

let run_many = Fanout.run_many
