type kind =
  | Data of { mutable flow : int; mutable rrt : int option }
  | Bcn of { mutable flow : int; mutable fb : float; mutable cpid : int }
  | Pause of { mutable on : bool }

(* [born] sits in a single-field all-float record so a pooled frame can
   be re-stamped without allocating a float box (a mutable float field
   directly in the mixed [t] record would box on every store). *)
type stamp = { mutable born : float }

type t = { kind : kind; bits : int; stamp : stamp; mutable seq : int }

let data_frame_bits = 12000
let control_frame_bits = 512

let make_data ~seq ~now ~flow ~rrt =
  { kind = Data { flow; rrt }; bits = data_frame_bits; stamp = { born = now }; seq }

let make_bcn ~seq ~now ~flow ~fb ~cpid =
  {
    kind = Bcn { flow; fb; cpid };
    bits = control_frame_bits;
    stamp = { born = now };
    seq;
  }

let make_pause ~seq ~now ~on =
  { kind = Pause { on }; bits = control_frame_bits; stamp = { born = now }; seq }

let[@inline] born p = p.stamp.born

let is_data p = match p.kind with Data _ -> true | Bcn _ | Pause _ -> false

let flow_of p =
  match p.kind with
  | Data { flow; _ } | Bcn { flow; _ } -> Some flow
  | Pause _ -> None

let pp ppf p =
  match p.kind with
  | Data { flow; rrt } ->
      Format.fprintf ppf "DATA[flow=%d%s seq=%d]" flow
        (match rrt with Some c -> Printf.sprintf " rrt=%d" c | None -> "")
        p.seq
  | Bcn { flow; fb; cpid } ->
      Format.fprintf ppf "BCN[flow=%d fb=%g cpid=%d]" flow fb cpid
  | Pause { on } -> Format.fprintf ppf "PAUSE[%s]" (if on then "on" else "off")

(* A placeholder frame used by pools and ring buffers to fill slots that
   hold no live packet; it never enters the data path. *)
let sentinel () = make_pause ~seq:(-1) ~now:0. ~on:false

module Pool = struct
  type packet = t

  (* One free-list stack per frame shape: a recycled frame keeps its
     [kind] block forever and only its fields are rewritten, so a Data
     frame can only be reborn as a Data frame. Stacks are plain arrays
     grown by doubling — releasing never allocates once warm. *)
  type stack = { mutable arr : packet array; mutable n : int }

  type nonrec t = {
    data : stack;
    bcn : stack;
    pause : stack;
    filler : packet;
    mutable live : int;
    mutable created : int;
  }

  let create () =
    {
      data = { arr = [||]; n = 0 };
      bcn = { arr = [||]; n = 0 };
      pause = { arr = [||]; n = 0 };
      filler = sentinel ();
      live = 0;
      created = 0;
    }

  let push pool (s : stack) pkt =
    let cap = Array.length s.arr in
    if s.n >= cap then begin
      let narr = Array.make (Stdlib.max 16 (2 * cap)) pool.filler in
      Array.blit s.arr 0 narr 0 s.n;
      s.arr <- narr
    end;
    s.arr.(s.n) <- pkt;
    s.n <- s.n + 1

  let take pool (s : stack) =
    s.n <- s.n - 1;
    let pkt = s.arr.(s.n) in
    s.arr.(s.n) <- pool.filler;
    pkt

  (* [@inline] keeps the [now] float unboxed at the call site on the
     pool-hit path (a non-inlined float argument would box). *)
  let[@inline] alloc_data p ~seq ~now ~flow ~rrt =
    p.live <- p.live + 1;
    if p.data.n = 0 then begin
      p.created <- p.created + 1;
      make_data ~seq ~now ~flow ~rrt
    end
    else begin
      let pkt = take p p.data in
      (match pkt.kind with
      | Data d ->
          d.flow <- flow;
          d.rrt <- rrt
      | Bcn _ | Pause _ -> assert false);
      pkt.seq <- seq;
      pkt.stamp.born <- now;
      pkt
    end

  let[@inline] alloc_bcn p ~seq ~now ~flow ~fb ~cpid =
    p.live <- p.live + 1;
    if p.bcn.n = 0 then begin
      p.created <- p.created + 1;
      make_bcn ~seq ~now ~flow ~fb ~cpid
    end
    else begin
      let pkt = take p p.bcn in
      (match pkt.kind with
      | Bcn b ->
          b.flow <- flow;
          b.fb <- fb;
          b.cpid <- cpid
      | Data _ | Pause _ -> assert false);
      pkt.seq <- seq;
      pkt.stamp.born <- now;
      pkt
    end

  let[@inline] alloc_pause p ~seq ~now ~on =
    p.live <- p.live + 1;
    if p.pause.n = 0 then begin
      p.created <- p.created + 1;
      make_pause ~seq ~now ~on
    end
    else begin
      let pkt = take p p.pause in
      (match pkt.kind with
      | Pause q -> q.on <- on
      | Data _ | Bcn _ -> assert false);
      pkt.seq <- seq;
      pkt.stamp.born <- now;
      pkt
    end

  let release p pkt =
    p.live <- p.live - 1;
    match pkt.kind with
    | Data _ -> push p p.data pkt
    | Bcn _ -> push p p.bcn pkt
    | Pause _ -> push p p.pause pkt

  let live p = p.live
  let created p = p.created
  let pooled p = p.data.n + p.bcn.n + p.pause.n
end
