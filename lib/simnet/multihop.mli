(** Two congestion points in series — the multi-bottleneck case the
    paper's single-bottleneck model (§III.B) abstracts away.

    {v
      long flows  ── SW_A (C_A, CPID 1) ── SW_B (C_B, CPID 2) ── sink
      short flows ───────────────────────┘
    v}

    Both switches run BCN congestion points. Long flows are sampled (and
    throttled) at {e both} points, short flows only at SW_B. With plain
    per-sample AIMD this produces the classic multi-bottleneck
    {e beat-down}: long flows receive proportionally more negative
    feedback and settle below their max-min fair share of the second
    bottleneck. The run measures that ratio. *)

type config = {
  params : Fluid.Params.t;  (** gains and thresholds (per switch) *)
  c_a : float;  (** capacity of the first hop *)
  c_b : float;  (** capacity of the second (tighter) hop *)
  n_long : int;
  n_short : int;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  strict_tagging : bool;
      (** the draft's CPID/RRT rule: positive feedback only from the
          congestion point a flow is associated with. Disabling it lets an
          uncongested upstream CP re-accelerate flows the downstream
          bottleneck is throttling (a ~30x rate inversion in this
          scenario) — the mechanism's raison d'etre. *)
}

val default_config :
  ?t_end:float -> ?n_long:int -> ?n_short:int -> Fluid.Params.t -> config
(** Defaults: [c_a = C], [c_b = C/2], 10 long + 10 short flows,
    [t_end = 20 ms], unregulated start at 2x the SW_B fair share,
    [strict_tagging = true]. *)

type result = {
  queue_a : Numerics.Series.t;
  queue_b : Numerics.Series.t;
  drops_a : int;
  drops_b : int;
  utilization_b : float;
  long_rates : float array;  (** per-long-flow goodput over the run, bit/s *)
  short_rates : float array;
  beatdown : float;
      (** mean long goodput / mean short goodput; 1.0 = no beat-down *)
  bcn_messages : int;
}

val run : config -> result

val run_many : ?jobs:int -> config array -> result array
(** Run every config over a [Parallel.Pool] of [jobs] lanes (default
    {!Parallel.Pool.default_size}). Results are in input order and
    byte-identical for any [jobs] value — each run owns its engine and
    state. [jobs = 1] runs sequentially in the caller. Raises
    [Invalid_argument] when [jobs < 1]. *)
