(** Calendar-queue priority queue (Brown 1988).

    The classic alternative design point to {!Eventq}'s 4-ary heap:
    time is cut into buckets of fixed width that wrap around like the
    days of a year, giving O(1)-amortized push and pop when the bucket
    count tracks the population. The constant pays for bucket scans and
    cursor repositioning, so which structure wins depends on the
    pending-event population — bench/main.ml races the two at several
    queue sizes and the engine keeps the winner.

    Drop-in API and semantics match {!Eventq}: FIFO tie-breaking for
    equal keys via a global insertion counter (buckets are unsorted but
    every scan picks the unique (key, seq) minimum, so results never
    depend on intra-bucket order), structure-of-arrays bucket storage
    with unboxed float keys, and immediate payload clearing on pop. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> 'a -> unit
(** [push q t v] inserts [v] with key [t]. Raises [Invalid_argument] on a
    NaN key. Allocation-free except for amortized bucket growth and
    calendar resizes. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest entry. *)

val pop_min : 'a t -> 'a
(** Remove and return the payload of the earliest entry without boxing
    the result; read the key first with {!min_key} if it is needed.
    Raises [Invalid_argument] on an empty queue. *)

val min_key : 'a t -> float
(** Key of the earliest entry. Raises [Invalid_argument] on an empty
    queue. *)

val peek : 'a t -> (float * 'a) option

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Discard all entries, releasing every payload reference. *)

val drain : 'a t -> (float * 'a) list
(** Pop everything, in order. *)
