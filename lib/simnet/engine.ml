(* The clock lives in a single-field all-float record: all-float records
   are stored flat, so advancing the clock once per event writes the
   float in place instead of allocating a fresh box (which a mutable
   float field in this mixed record would do). *)
type clock = { mutable t : float }

type t = {
  clock : clock;
  queue : (t -> unit) Eventq.t;
  mutable stopped : bool;
  mutable processed : int;
  mutable probe : Telemetry.Probe.t;
}

let create ?(probe = Telemetry.Probe.disabled) () =
  {
    clock = { t = 0. };
    queue = Eventq.create ();
    stopped = false;
    processed = 0;
    probe;
  }

let[@inline] now e = e.clock.t
let[@inline] probe e = e.probe
let set_probe e p = e.probe <- p

let[@inline] schedule_at e ~time f =
  if time < e.clock.t then invalid_arg "Engine.schedule_at: time in the past";
  Eventq.push e.queue time f

let[@inline] schedule e ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  Eventq.push e.queue (e.clock.t +. delay) f

let stop e = e.stopped <- true

(* The loop reads the key and pops the payload through the unboxed
   Eventq fast path: no option, tuple or float box per event. *)
let run ?until e =
  e.stopped <- false;
  let horizon = match until with Some t -> t | None -> infinity in
  let q = e.queue in
  let running = ref true in
  while !running do
    if e.stopped || Eventq.is_empty q then running := false
    else begin
      let t = Eventq.min_key q in
      if t > horizon then running := false
      else begin
        let f = Eventq.pop_min q in
        e.clock.t <- t;
        e.processed <- e.processed + 1;
        f e
      end
    end
  done;
  match until with
  | Some t when not e.stopped -> if e.clock.t < t then e.clock.t <- t
  | Some _ | None -> ()

let events_processed e = e.processed
let pending e = Eventq.size e.queue
