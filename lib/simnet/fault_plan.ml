type frame_class = Bcn_positive | Bcn_negative | Pause

let code = function Bcn_positive -> 0 | Bcn_negative -> 1 | Pause -> 2
let class_name = function
  | Bcn_positive -> "bcn+"
  | Bcn_negative -> "bcn-"
  | Pause -> "pause"

type loss =
  | Bernoulli of float
  | Burst of { p_enter : float; p_exit : float; p_drop : float }

type delay = { fixed : float; jitter : float; reorder : bool }

type capacity_fault =
  | Flap_schedule of (float * float) list
  | Flap_markov of { mean_up : float; mean_down : float; factor : float }

type blackout = { start : float; duration : float; reset : bool }

type t = {
  seed : int;
  bcn_pos_loss : loss option;
  bcn_neg_loss : loss option;
  pause_loss : loss option;
  delay : delay option;
  capacity : capacity_fault option;
  blackout : blackout option;
}

let none =
  {
    seed = 0;
    bcn_pos_loss = None;
    bcn_neg_loss = None;
    pause_loss = None;
    delay = None;
    capacity = None;
    blackout = None;
  }

let is_none p =
  p.bcn_pos_loss = None && p.bcn_neg_loss = None && p.pause_loss = None
  && p.delay = None && p.capacity = None && p.blackout = None

let with_seed p seed = { p with seed }

let with_bcn_loss ?pos ?neg p =
  {
    p with
    bcn_pos_loss = (match pos with Some _ -> pos | None -> p.bcn_pos_loss);
    bcn_neg_loss = (match neg with Some _ -> neg | None -> p.bcn_neg_loss);
  }

let with_pause_loss p l = { p with pause_loss = Some l }

let with_delay ?(reorder = false) ?(jitter = 0.) p ~fixed =
  { p with delay = Some { fixed; jitter; reorder } }

let with_capacity p c = { p with capacity = Some c }

let with_blackout ?(reset = false) p ~start ~duration =
  { p with blackout = Some { start; duration; reset } }

let loss_of_severity s = Bernoulli (Float.max 0. (Float.min 1. s))

let square_flaps ~period ~duty ~depth ~t_end =
  if period <= 0. || duty <= 0. || duty > 1. then
    invalid_arg "Plan.square_flaps: period must be > 0 and duty in (0, 1]";
  let factor = Float.max 0.05 (1. -. depth) in
  let steps = ref [] in
  let k = ref 1 in
  while float_of_int !k *. period < t_end do
    let t0 = float_of_int !k *. period in
    steps := (t0 +. (duty *. period), 1.) :: (t0, factor) :: !steps;
    incr k
  done;
  Flap_schedule (List.rev !steps)

let check_prob what x =
  if not (Float.is_finite x) || x < 0. || x > 1. then
    invalid_arg (Printf.sprintf "Faultnet.Plan: %s = %g not in [0, 1]" what x)

let check_loss what = function
  | Bernoulli p -> check_prob (what ^ " Bernoulli p") p
  | Burst { p_enter; p_exit; p_drop } ->
      check_prob (what ^ " burst p_enter") p_enter;
      check_prob (what ^ " burst p_exit") p_exit;
      check_prob (what ^ " burst p_drop") p_drop

let validate p =
  Option.iter (check_loss "bcn+ loss") p.bcn_pos_loss;
  Option.iter (check_loss "bcn- loss") p.bcn_neg_loss;
  Option.iter (check_loss "pause loss") p.pause_loss;
  Option.iter
    (fun { fixed; jitter; _ } ->
      if not (Float.is_finite fixed) || fixed < 0. then
        invalid_arg "Faultnet.Plan: delay.fixed must be finite and >= 0";
      if not (Float.is_finite jitter) || jitter < 0. then
        invalid_arg "Faultnet.Plan: delay.jitter must be finite and >= 0")
    p.delay;
  Option.iter
    (function
      | Flap_schedule steps ->
          let last = ref neg_infinity in
          List.iter
            (fun (time, factor) ->
              if not (Float.is_finite time) || time < 0. then
                invalid_arg "Faultnet.Plan: flap times must be finite and >= 0";
              if time < !last then
                invalid_arg "Faultnet.Plan: flap schedule must be nondecreasing";
              last := time;
              if not (Float.is_finite factor) || factor <= 0. || factor > 1.
              then
                invalid_arg
                  (Printf.sprintf
                     "Faultnet.Plan: flap factor %g not in (0, 1]" factor))
            steps
      | Flap_markov { mean_up; mean_down; factor } ->
          if
            (not (Float.is_finite mean_up))
            || mean_up <= 0.
            || (not (Float.is_finite mean_down))
            || mean_down <= 0.
          then
            invalid_arg "Faultnet.Plan: Markov holding times must be positive";
          if not (Float.is_finite factor) || factor <= 0. || factor > 1. then
            invalid_arg
              (Printf.sprintf "Faultnet.Plan: flap factor %g not in (0, 1]"
                 factor))
    p.capacity;
  Option.iter
    (fun { start; duration; _ } ->
      if not (Float.is_finite start) || start < 0. then
        invalid_arg "Faultnet.Plan: blackout.start must be finite and >= 0";
      if not (Float.is_finite duration) || duration < 0. then
        invalid_arg "Faultnet.Plan: blackout.duration must be finite and >= 0")
    p.blackout;
  p

let describe_loss = function
  | Bernoulli p -> Printf.sprintf "bernoulli(%g)" p
  | Burst { p_enter; p_exit; p_drop } ->
      Printf.sprintf "burst(%g,%g,%g)" p_enter p_exit p_drop

let describe p =
  if is_none p then "none"
  else begin
    let b = Buffer.create 96 in
    Buffer.add_string b (Printf.sprintf "seed=%d" p.seed);
    let add fmt = Printf.ksprintf (fun s -> Buffer.add_char b ' '; Buffer.add_string b s) fmt in
    Option.iter (fun l -> add "bcn+loss=%s" (describe_loss l)) p.bcn_pos_loss;
    Option.iter (fun l -> add "bcn-loss=%s" (describe_loss l)) p.bcn_neg_loss;
    Option.iter (fun l -> add "pauseloss=%s" (describe_loss l)) p.pause_loss;
    Option.iter
      (fun { fixed; jitter; reorder } ->
        add "delay=%g+%gj%s" fixed jitter (if reorder then "!" else ""))
      p.delay;
    Option.iter
      (function
        | Flap_schedule steps -> add "flaps=schedule(%d)" (List.length steps)
        | Flap_markov { mean_up; mean_down; factor } ->
            add "flaps=markov(%g,%g,x%g)" mean_up mean_down factor)
      p.capacity;
    Option.iter
      (fun { start; duration; reset } ->
        add "blackout=%g+%g%s" start duration (if reset then "r" else ""))
      p.blackout;
    Buffer.contents b
  end
