module type MODEL = sig
  type config
  type result

  val name : string
  val run : config -> result
end

module type FANOUT = sig
  type config
  type result

  val run_many : ?jobs:int -> config array -> result array
end

module Make (M : MODEL) :
  FANOUT with type config = M.config and type result = M.result = struct
  type config = M.config
  type result = M.result

  (* Each run builds its own engine/pool/RNG state and shares nothing
     with its siblings, and [Parallel.Pool.map_array] is
     order-preserving, so the fan-out returns byte-identical results for
     any pool size. *)
  let run_many ?jobs cfgs =
    if Array.length cfgs = 0 then [||]
    else begin
      let size =
        match jobs with Some j -> j | None -> Parallel.Pool.default_size ()
      in
      if size < 1 then invalid_arg (M.name ^ ".run_many: jobs < 1");
      if size = 1 || Array.length cfgs = 1 then Array.map M.run cfgs
      else
        Parallel.Pool.with_pool ~size (fun pool ->
            Parallel.Pool.map_array pool M.run cfgs)
    end
end
