(** Core switch with a BCN congestion point (paper §II.B, Fig. 1).

    Forwarding: bit-counted FIFO buffer drained at the egress capacity
    (store-and-forward, one packet in service at a time).

    Congestion point: arriving data frames are sampled — deterministically
    every [round(1/pm)]-th frame, or per-frame Bernoulli([pm]) for the
    sampling ablation. At a sampling instant the switch computes

    {v sigma = (q0 − q) − w·(q − q_prev_sample) v}

    and sends a BCN frame to the sampled frame's source: a negative BCN
    whenever [sigma < 0]; a positive BCN when [sigma > 0], [q < q0] and
    the frame's rate-regulator tag matches this switch's CPID (or
    unconditionally, in the fluid-faithful [positive_to_untagged] mode).

    Severe congestion: when the queue exceeds [qsc] the switch emits an
    802.3x PAUSE(on) to its upstream; a PAUSE(off) follows once the queue
    drains below the resume threshold. The egress itself can be paused by
    a downstream switch ({!set_egress_paused}), which is how congestion
    rolls back hop by hop in the PAUSE-only baseline. *)

type sampling =
  | Deterministic  (** every [round(1/pm)]-th arriving data frame *)
  | Bernoulli of Random.State.t  (** per-frame with probability [pm] *)
  | Timer of float
      (** sample the queue every fixed period, independent of arrivals —
          the literal reading of the fluid model's constant sampling
          interval [dt = 1/(pm·C)] (paper eqn (5)); feedback is addressed
          to the most recently arrived flow, so this mode is meant for
          broadcast-feedback validation runs. Requires {!start}. *)

type config = {
  cpid : int;  (** congestion point id carried in BCN frames *)
  capacity : float;  (** egress rate, bit/s *)
  buffer_bits : float;
  q0 : float;
  qsc : float;  (** PAUSE threshold; resume at [pause_resume·qsc] *)
  pause_resume : float;
      (** PAUSE(off) fires once the queue drains below
          [pause_resume·qsc]; must be in (0, 1]. The 802.1Qbb-style
          hysteresis default is 0.9. *)
  w : float;
  pm : float;
  sampling : sampling;
  positive_to_untagged : bool;
      (** send positive BCN to sources that are not yet tagged (matches
          the fluid model's always-on increase law) *)
  enable_bcn : bool;
  enable_pause : bool;
  pool : Packet.Pool.t option;
      (** when set, BCN/PAUSE frames are drawn from this pool and
          tail-dropped data frames are recycled into it; must be the
          same pool the sources allocate data frames from *)
}

val default_config : Fluid.Params.t -> cpid:int -> config
(** Deterministic sampling, [positive_to_untagged = true], BCN and PAUSE
    enabled, [pause_resume = 0.9], no pool, thresholds taken from the
    fluid parameters. *)

type stats = {
  mutable forwarded : int;
  mutable sampled : int;
  mutable bcn_positive : int;
  mutable bcn_negative : int;
  mutable pause_on : int;
  mutable pause_off : int;
}

type t

val create : config -> control_out:(Engine.t -> Packet.t -> unit) -> t
(** [control_out] receives the BCN and PAUSE frames the switch generates
    (the runner routes them to sources / the upstream hop, adding any
    propagation delay). *)

val start : t -> Engine.t -> unit
(** Arm the sampling timer (no-op unless the config uses {!Timer}). *)

val fluid_sampling_period : Fluid.Params.t -> float
(** [dt = data_frame_bits / (pm·C)] — the average sampling interval the
    fluid model assumes (eqn (5) with packet granularity). *)

val set_forward : t -> (Engine.t -> Packet.t -> unit) -> unit
(** Where served data frames go (next hop or sink). Must be set before
    the first arrival. *)

val receive : t -> Engine.t -> Packet.t -> unit
(** Data-frame arrival. BCN/PAUSE frames must not be sent here. *)

val set_egress_paused : t -> Engine.t -> bool -> unit
(** Downstream 802.3x control of this switch's egress. *)

val queue_bits : t -> float
val fifo : t -> Fifo.t
val stats : t -> stats
val config : t -> config

val upstream_paused : t -> bool
(** Whether this switch currently holds its upstream in PAUSE. *)

(** {1 Fault-injection hooks}

    Used by [Faultnet.Injector] to perturb a running switch; harmless to
    call directly. None of these allocate. *)

val set_capacity : t -> float -> unit
(** Retarget the egress drain rate mid-run (link capacity flap). Takes
    effect from the next service start; the frame currently in service
    finishes at the rate it started with. Raises [Invalid_argument]
    unless the new capacity is positive and finite. *)

val capacity : t -> float
(** The live egress rate ([cfg.capacity] until a flap rewrites it). *)

val set_bcn_enabled : t -> bool -> unit
(** Toggle the congestion point (blackout). While off, arriving frames
    are neither counted towards the sampling interval nor sampled, and
    a timer-driven point stops emitting. A switch configured with
    [enable_bcn = false] stays off regardless. *)

val bcn_enabled : t -> bool

val reset_congestion_point : t -> unit
(** Forget sampler state (as a rebooted congestion point would): the
    [q − q_prev_sample] term restarts from the current occupancy and the
    deterministic sampling countdown restarts. *)
