open Numerics

type config = {
  params : Fluid.Params.t;
  c_a : float;
  c_b : float;
  n_long : int;
  n_short : int;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  strict_tagging : bool;
}

let default_config ?(t_end = 0.02) ?(n_long = 10) ?(n_short = 10)
    (p : Fluid.Params.t) =
  let c_b = p.Fluid.Params.capacity /. 2. in
  {
    params = p;
    c_a = p.Fluid.Params.capacity;
    c_b;
    n_long;
    n_short;
    t_end;
    sample_dt = 1e-5;
    (* unregulated sources blast above their fair share until the first
       negative BCN tags them (the draft's cold-start behaviour); with the
       strict RRT rule a below-fair start would never be tagged at all *)
    initial_rate = 2. *. c_b /. float_of_int (n_long + n_short);
    control_delay = 1e-6;
    strict_tagging = true;
  }

type result = {
  queue_a : Series.t;
  queue_b : Series.t;
  drops_a : int;
  drops_b : int;
  utilization_b : float;
  long_rates : float array;
  short_rates : float array;
  beatdown : float;
  bcn_messages : int;
}

let run cfg =
  if cfg.n_long < 1 || cfg.n_short < 0 then
    invalid_arg "Multihop.run: need n_long >= 1, n_short >= 0";
  if cfg.c_b > cfg.c_a then
    invalid_arg "Multihop.run: the second hop must be the tighter one";
  let p = cfg.params in
  let n = cfg.n_long + cfg.n_short in
  let e = Engine.create () in
  let delivered = ref 0. in
  let per_flow_delivered = Array.make n 0. in
  let messages = ref 0 in
  let sources = Array.make n None in
  let dispatch e (pkt : Packet.t) =
    match pkt.Packet.kind with
    | Packet.Bcn { flow; fb; cpid } ->
        incr messages;
        (match sources.(flow) with
        | Some src -> Source.handle_bcn src ~now:(Engine.now e) ~fb ~cpid
        | None -> ())
    | Packet.Pause _ | Packet.Data _ -> ()
  in
  (* strict CPID/RRT association (the draft's rule): positive feedback is
     only sent to flows tagged with THIS congestion point. Without it an
     uncongested upstream CP keeps re-accelerating flows that the
     downstream bottleneck is trying to throttle — the multihop test
     demonstrates a 30x rate inversion if this flag is relaxed. *)
  let mk_switch ~cpid ~capacity =
    Switch.create
      {
        (Switch.default_config p ~cpid) with
        Switch.capacity;
        positive_to_untagged = not cfg.strict_tagging;
        enable_pause = false;
      }
      ~control_out:(fun e pkt ->
        Engine.schedule e ~delay:cfg.control_delay (fun e -> dispatch e pkt))
  in
  let sw_a = mk_switch ~cpid:1 ~capacity:cfg.c_a in
  let sw_b = mk_switch ~cpid:2 ~capacity:cfg.c_b in
  Switch.set_forward sw_a (fun e pkt -> Switch.receive sw_b e pkt);
  Switch.set_forward sw_b (fun _e pkt ->
      delivered := !delivered +. float_of_int pkt.Packet.bits;
      match pkt.Packet.kind with
      | Packet.Data { flow; _ } when flow < n ->
          per_flow_delivered.(flow) <-
            per_flow_delivered.(flow) +. float_of_int pkt.Packet.bits
      | Packet.Data _ | Packet.Bcn _ | Packet.Pause _ -> ());
  for i = 0 to n - 1 do
    let is_long = i < cfg.n_long in
    let entry = if is_long then sw_a else sw_b in
    let src =
      Source.create ~id:i ~initial_rate:cfg.initial_rate
        ~min_rate:(0.001 *. cfg.c_b) ~max_rate:cfg.c_a
        ~mode:Source.Literal ~gi:p.Fluid.Params.gi ~gd:p.Fluid.Params.gd
        ~ru:p.Fluid.Params.ru
        ~send:(fun e pkt -> Switch.receive entry e pkt)
        ()
    in
    sources.(i) <- Some src;
    Source.start src e
  done;
  (* tracing *)
  let n_samples = int_of_float (Float.ceil (cfg.t_end /. cfg.sample_dt)) + 1 in
  let ts = Array.make n_samples 0. in
  let qa = Array.make n_samples 0. in
  let qb = Array.make n_samples 0. in
  let idx = ref 0 in
  let rec sampler e =
    if !idx < n_samples then begin
      ts.(!idx) <- Engine.now e;
      qa.(!idx) <- Switch.queue_bits sw_a;
      qb.(!idx) <- Switch.queue_bits sw_b;
      incr idx
    end;
    if Engine.now e +. cfg.sample_dt <= cfg.t_end then
      Engine.schedule e ~delay:cfg.sample_dt sampler
  in
  Engine.schedule e ~delay:0. sampler;
  Engine.run ~until:cfg.t_end e;
  let m = !idx in
  let cut a = Array.sub a 0 m in
  (* goodput over the run, per flow — time-integrated, unlike the
     bang-bang instantaneous rates of literal AIMD *)
  let goodput i = per_flow_delivered.(i) /. cfg.t_end in
  let long_rates = Array.init cfg.n_long goodput in
  let short_rates = Array.init cfg.n_short (fun j -> goodput (cfg.n_long + j)) in
  let mean a = if Array.length a = 0 then 0. else Stats.mean a in
  let beatdown =
    let ms = mean short_rates in
    if ms = 0. then 1. else mean long_rates /. ms
  in
  {
    queue_a = Series.make (cut ts) (cut qa);
    queue_b = Series.make (cut ts) (cut qb);
    drops_a = Fifo.drops (Switch.fifo sw_a);
    drops_b = Fifo.drops (Switch.fifo sw_b);
    utilization_b = !delivered /. (cfg.c_b *. cfg.t_end);
    long_rates;
    short_rates;
    beatdown;
    bcn_messages = !messages;
  }

(* The deterministic fan-out is generated once by the shared MODEL
   functor; [run_many] stays as the historical alias. *)
module Fanout = Model.Make (struct
  type nonrec config = config
  type nonrec result = result

  let name = "Multihop"
  let run = run
end)

let run_many = Fanout.run_many
