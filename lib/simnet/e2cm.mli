(** E2CM — Extended Ethernet Congestion Management (paper §II.A, ref. [9]):
    the IBM Zurich proposal that "combined some ideas of BCN and FERA".

    Modelled here as BCN's sampled sigma feedback {e plus} a per-interval
    fair-share estimate carried in the same message: the reaction point
    runs BCN's AIMD but the advertised fair rate caps the additive
    increase and floors nothing — taming BCN's per-sample unfairness
    while keeping its fast positive recovery and requiring only
    interval-aggregate (not per-flow-exact) switch state. *)

type config = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  interval : float;  (** fair-share measurement window *)
  control_channel : Runner.control_channel option;
      (** interposed on the feedback path; each sigma message is
          synthesized as a BCN frame carrying [fb = sigma] so
          loss/delay fault plans act on it. [None] (the default) is
          event-for-event identical to a pass-through channel. *)
}

val default_config : ?t_end:float -> ?sample_dt:float -> Fluid.Params.t -> config

type result = {
  queue : Numerics.Series.t;
  agg_rate : Numerics.Series.t;
  drops : int;
  delivered_bits : float;
  utilization : float;
  messages : int;
  final_rates : float array;
}

val run : config -> result

val run_many : ?jobs:int -> config array -> result array
(** Run every config over a [Parallel.Pool] of [jobs] lanes (default
    {!Parallel.Pool.default_size}). Results are in input order and
    byte-identical for any [jobs] value — each run owns its engine and
    state. [jobs = 1] runs sequentially in the caller. Raises
    [Invalid_argument] when [jobs < 1]. *)
