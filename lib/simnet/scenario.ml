type sampling = Deterministic | Bernoulli | Timer of float

type bcn_knobs = {
  mode : Source.update_mode;
  sampling : sampling;
  positive_to_untagged : bool;
  broadcast_feedback : bool;
  enable_bcn : bool;
  enable_pause : bool;
  pause_resume : float;
}

type model =
  | Bcn of bcn_knobs
  | E2cm of { interval : float }
  | Fera of { interval : float; target_util : float }
  | Multihop of {
      c_a : float;
      c_b : float;
      n_long : int;
      n_short : int;
      strict_tagging : bool;
    }
  | Rcp of {
      alpha : float;
      beta : float;
      interval : float;
      variant : Fluid.Rcp.variant;
    }

type workload =
  | Cbr of { rate : float }
  | Poisson of { mean_rate : float; seed : int }
  | On_off of {
      peak_rate : float;
      mean_on : float;
      mean_off : float;
      seed : int;
    }
  | Incast of {
      senders : int;
      burst_frames : int;
      period : float;
      jitter : float;
      seed : int;
    }

type t = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float option;
  control_delay : float;
  model : model;
  workload : workload list;
  fault : Fault_plan.t option;
  seed : int;
  replicas : int;
}

let version = 2

(* Canonical documents carry the smallest version able to express their
   content: pre-RCP scenarios keep emitting (and re-encoding) their v1
   bytes unchanged — content addresses in existing stores survive the
   codec extension — and only the [Rcp] arm needs v2. *)
let doc_version s = match s.model with Rcp _ -> 2 | _ -> 1

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let default_knobs =
  {
    mode = Source.Zoh_fluid;
    sampling = Deterministic;
    positive_to_untagged = true;
    broadcast_feedback = false;
    enable_bcn = true;
    enable_pause = true;
    pause_resume = 0.9;
  }

let bcn ?(t_end = 0.02) ?(sample_dt = 1e-5) ?initial_rate
    ?(control_delay = 1e-6) ?(mode = default_knobs.mode)
    ?(sampling = default_knobs.sampling)
    ?(positive_to_untagged = default_knobs.positive_to_untagged)
    ?(broadcast_feedback = default_knobs.broadcast_feedback)
    ?(enable_bcn = default_knobs.enable_bcn)
    ?(enable_pause = default_knobs.enable_pause)
    ?(pause_resume = default_knobs.pause_resume) params =
  {
    params;
    t_end;
    sample_dt;
    initial_rate;
    control_delay;
    model =
      Bcn
        {
          mode;
          sampling;
          positive_to_untagged;
          broadcast_feedback;
          enable_bcn;
          enable_pause;
          pause_resume;
        };
    workload = [];
    fault = None;
    seed = 0;
    replicas = 1;
  }

let e2cm ?(t_end = 0.02) ?(sample_dt = 1e-5) ?initial_rate
    ?(control_delay = 1e-6) ?interval (params : Fluid.Params.t) =
  let interval =
    match interval with
    | Some i -> i
    | None -> (E2cm.default_config params).E2cm.interval
  in
  {
    params;
    t_end;
    sample_dt;
    initial_rate;
    control_delay;
    model = E2cm { interval };
    workload = [];
    fault = None;
    seed = 0;
    replicas = 1;
  }

let fera ?(t_end = 0.02) ?(sample_dt = 1e-5) ?initial_rate
    ?(control_delay = 1e-6) ?interval ?target_util (params : Fluid.Params.t) =
  let d = Fera.default_config params in
  let interval = Option.value interval ~default:d.Fera.interval in
  let target_util = Option.value target_util ~default:d.Fera.target_util in
  {
    params;
    t_end;
    sample_dt;
    initial_rate;
    control_delay;
    model = Fera { interval; target_util };
    workload = [];
    fault = None;
    seed = 0;
    replicas = 1;
  }

let multihop ?(t_end = 0.02) ?(sample_dt = 1e-5) ?initial_rate
    ?(control_delay = 1e-6) ?c_a ?c_b ?(n_long = 10) ?(n_short = 10)
    ?(strict_tagging = true) (params : Fluid.Params.t) =
  let c = params.Fluid.Params.capacity in
  let c_a = Option.value c_a ~default:c in
  let c_b = Option.value c_b ~default:(c /. 2.) in
  {
    params;
    t_end;
    sample_dt;
    initial_rate;
    control_delay;
    model = Multihop { c_a; c_b; n_long; n_short; strict_tagging };
    workload = [];
    fault = None;
    seed = 0;
    replicas = 1;
  }

let rcp ?(t_end = 0.02) ?(sample_dt = 1e-5) ?initial_rate
    ?(control_delay = 1e-6) ?(alpha = Fluid.Rcp.default_alpha)
    ?(beta = Fluid.Rcp.default_beta) ?(interval = Fluid.Rcp.default_tau)
    ?(variant = Fluid.Rcp.By_capacity) (params : Fluid.Params.t) =
  {
    params;
    t_end;
    sample_dt;
    initial_rate;
    control_delay;
    model = Rcp { alpha; beta; interval; variant };
    workload = [];
    fault = None;
    seed = 0;
    replicas = 1;
  }

let with_fault s plan =
  { s with fault = (if Fault_plan.is_none plan then None else Some plan) }

let with_workload s workload = { s with workload }
let with_seed s seed = { s with seed }
let with_replicas s replicas = { s with replicas }

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_pos what x =
  if not (Float.is_finite x) || x <= 0. then
    fail "Scenario: %s = %g must be finite and > 0" what x

let check_nonneg what x =
  if not (Float.is_finite x) || x < 0. then
    fail "Scenario: %s = %g must be finite and >= 0" what x

let validate_workload = function
  | Cbr { rate } -> check_pos "cbr rate" rate
  | Poisson { mean_rate; _ } -> check_pos "poisson mean_rate" mean_rate
  | On_off { peak_rate; mean_on; mean_off; _ } ->
      check_pos "on_off peak_rate" peak_rate;
      check_pos "on_off mean_on" mean_on;
      check_nonneg "on_off mean_off" mean_off
  | Incast { senders; burst_frames; period; jitter; _ } ->
      if senders < 1 then fail "Scenario: incast senders = %d < 1" senders;
      if burst_frames < 1 then
        fail "Scenario: incast burst_frames = %d < 1" burst_frames;
      check_pos "incast period" period;
      check_nonneg "incast jitter" jitter

let validate s =
  check_pos "t_end" s.t_end;
  check_pos "sample_dt" s.sample_dt;
  check_nonneg "control_delay" s.control_delay;
  Option.iter (check_pos "initial_rate") s.initial_rate;
  if s.replicas < 1 then fail "Scenario: replicas = %d < 1" s.replicas;
  (match s.model with
  | Bcn k -> (
      if k.pause_resume <= 0. || k.pause_resume > 1. then
        fail "Scenario: pause_resume = %g not in (0, 1]" k.pause_resume;
      match k.sampling with
      | Timer p -> check_pos "timer sampling period" p
      | Bernoulli -> ()
      | Deterministic ->
          if s.replicas > 1 then
            fail
              "Scenario: replicas = %d needs Bernoulli sampling \
               (deterministic replicas would be identical)"
              s.replicas)
  | E2cm { interval } -> check_pos "e2cm interval" interval
  | Fera { interval; target_util } ->
      check_pos "fera interval" interval;
      if target_util <= 0. || target_util > 1. then
        fail "Scenario: fera target_util = %g not in (0, 1]" target_util
  | Multihop { c_a; c_b; n_long; n_short; _ } ->
      check_pos "multihop c_a" c_a;
      check_pos "multihop c_b" c_b;
      if n_long < 1 || n_short < 0 then
        fail "Scenario: multihop needs n_long >= 1 and n_short >= 0"
  | Rcp { alpha; beta; interval; _ } ->
      check_pos "rcp alpha" alpha;
      check_nonneg "rcp beta" beta;
      check_pos "rcp interval" interval);
  (* Fault support follows what a model physically exposes: loss/delay
     need only a control channel; capacity flaps need a live switch;
     blackouts toggle a BCN congestion point. *)
  (match (s.model, s.fault) with
  | _, None | Bcn _, Some _ -> ()
  | Rcp _, Some p ->
      if p.Fault_plan.blackout <> None then
        fail "Scenario: blackout faults need a BCN congestion point"
  | (E2cm _ | Fera _), Some p ->
      if p.Fault_plan.capacity <> None then
        fail "Scenario: capacity-flap faults need a switch-based model";
      if p.Fault_plan.blackout <> None then
        fail "Scenario: blackout faults need a BCN congestion point"
  | Multihop _, Some _ ->
      fail "Scenario: fault plans do not apply to the multihop model");
  (match s.model with
  | Bcn _ -> ()
  | _ ->
      if s.workload <> [] then
        fail "Scenario: cross-traffic workloads only apply to the BCN model";
      if s.replicas > 1 then
        fail "Scenario: replicas only apply to the BCN model");
  List.iter validate_workload s.workload;
  (match s.fault with
  | Some p -> ignore (Fault_plan.validate p : Fault_plan.t)
  | None -> ());
  s

let equal (a : t) (b : t) = a = b

let describe s =
  let p = s.params in
  let model =
    match s.model with
    | Bcn _ -> "bcn"
    | E2cm _ -> "e2cm"
    | Fera _ -> "fera"
    | Multihop _ -> "multihop"
    | Rcp _ -> "rcp"
  in
  Printf.sprintf "%s n=%d C=%g t_end=%g%s%s%s" model p.Fluid.Params.n_flows
    p.Fluid.Params.capacity s.t_end
    (if s.replicas > 1 then Printf.sprintf " x%d@seed=%d" s.replicas s.seed
     else "")
    (if s.workload <> [] then
       Printf.sprintf " +%d workloads" (List.length s.workload)
     else "")
    (match s.fault with
    | Some f -> " fault{" ^ Fault_plan.describe f ^ "}"
    | None -> "")

(* ------------------------------------------------------------------ *)
(* Canonical encoding                                                  *)
(* ------------------------------------------------------------------ *)

module J = Telemetry.Json

let enc_float f = J.float_full f
let enc_int = J.int
let enc_bool = J.bool

let encode_params (p : Fluid.Params.t) =
  J.obj
    [
      ("n_flows", enc_int p.Fluid.Params.n_flows);
      ("capacity", enc_float p.Fluid.Params.capacity);
      ("w", enc_float p.Fluid.Params.w);
      ("pm", enc_float p.Fluid.Params.pm);
      ("q0", enc_float p.Fluid.Params.q0);
      ("buffer", enc_float p.Fluid.Params.buffer);
      ("qsc", enc_float p.Fluid.Params.qsc);
      ("gi", enc_float p.Fluid.Params.gi);
      ("gd", enc_float p.Fluid.Params.gd);
      ("ru", enc_float p.Fluid.Params.ru);
      ("mu", enc_float p.Fluid.Params.mu);
    ]

let enc_sampling = function
  | Deterministic -> J.obj [ ("kind", J.str "deterministic") ]
  | Bernoulli -> J.obj [ ("kind", J.str "bernoulli") ]
  | Timer p -> J.obj [ ("kind", J.str "timer"); ("period", enc_float p) ]

let enc_model = function
  | Bcn k ->
      J.obj
        [
          ("kind", J.str "bcn");
          ( "mode",
            J.str (match k.mode with Source.Literal -> "literal" | Source.Zoh_fluid -> "zoh") );
          ("sampling", enc_sampling k.sampling);
          ("positive_to_untagged", enc_bool k.positive_to_untagged);
          ("broadcast_feedback", enc_bool k.broadcast_feedback);
          ("enable_bcn", enc_bool k.enable_bcn);
          ("enable_pause", enc_bool k.enable_pause);
          ("pause_resume", enc_float k.pause_resume);
        ]
  | E2cm { interval } ->
      J.obj [ ("kind", J.str "e2cm"); ("interval", enc_float interval) ]
  | Fera { interval; target_util } ->
      J.obj
        [
          ("kind", J.str "fera");
          ("interval", enc_float interval);
          ("target_util", enc_float target_util);
        ]
  | Multihop { c_a; c_b; n_long; n_short; strict_tagging } ->
      J.obj
        [
          ("kind", J.str "multihop");
          ("c_a", enc_float c_a);
          ("c_b", enc_float c_b);
          ("n_long", enc_int n_long);
          ("n_short", enc_int n_short);
          ("strict_tagging", enc_bool strict_tagging);
        ]
  | Rcp { alpha; beta; interval; variant } ->
      J.obj
        [
          ("kind", J.str "rcp");
          ("alpha", enc_float alpha);
          ("beta", enc_float beta);
          ("interval", enc_float interval);
          ( "variant",
            J.str
              (match variant with
              | Fluid.Rcp.By_capacity -> "by_capacity"
              | Fluid.Rcp.By_load -> "by_load") );
        ]

let enc_workload = function
  | Cbr { rate } -> J.obj [ ("kind", J.str "cbr"); ("rate", enc_float rate) ]
  | Poisson { mean_rate; seed } ->
      J.obj
        [
          ("kind", J.str "poisson");
          ("mean_rate", enc_float mean_rate);
          ("seed", enc_int seed);
        ]
  | On_off { peak_rate; mean_on; mean_off; seed } ->
      J.obj
        [
          ("kind", J.str "on_off");
          ("peak_rate", enc_float peak_rate);
          ("mean_on", enc_float mean_on);
          ("mean_off", enc_float mean_off);
          ("seed", enc_int seed);
        ]
  | Incast { senders; burst_frames; period; jitter; seed } ->
      J.obj
        [
          ("kind", J.str "incast");
          ("senders", enc_int senders);
          ("burst_frames", enc_int burst_frames);
          ("period", enc_float period);
          ("jitter", enc_float jitter);
          ("seed", enc_int seed);
        ]

let enc_loss = function
  | Fault_plan.Bernoulli p ->
      J.obj [ ("kind", J.str "bernoulli"); ("p", enc_float p) ]
  | Fault_plan.Burst { p_enter; p_exit; p_drop } ->
      J.obj
        [
          ("kind", J.str "burst");
          ("p_enter", enc_float p_enter);
          ("p_exit", enc_float p_exit);
          ("p_drop", enc_float p_drop);
        ]

let enc_opt enc = function None -> "null" | Some v -> enc v

let enc_capacity = function
  | Fault_plan.Flap_schedule steps ->
      J.obj
        [
          ("kind", J.str "schedule");
          ( "steps",
            J.arr
              (List.map
                 (fun (t, f) -> J.arr [ enc_float t; enc_float f ])
                 steps) );
        ]
  | Fault_plan.Flap_markov { mean_up; mean_down; factor } ->
      J.obj
        [
          ("kind", J.str "markov");
          ("mean_up", enc_float mean_up);
          ("mean_down", enc_float mean_down);
          ("factor", enc_float factor);
        ]

let enc_fault (p : Fault_plan.t) =
  J.obj
    [
      ("seed", enc_int p.Fault_plan.seed);
      ("bcn_pos_loss", enc_opt enc_loss p.Fault_plan.bcn_pos_loss);
      ("bcn_neg_loss", enc_opt enc_loss p.Fault_plan.bcn_neg_loss);
      ("pause_loss", enc_opt enc_loss p.Fault_plan.pause_loss);
      ( "delay",
        enc_opt
          (fun (d : Fault_plan.delay) ->
            J.obj
              [
                ("fixed", enc_float d.Fault_plan.fixed);
                ("jitter", enc_float d.Fault_plan.jitter);
                ("reorder", enc_bool d.Fault_plan.reorder);
              ])
          p.Fault_plan.delay );
      ("capacity", enc_opt enc_capacity p.Fault_plan.capacity);
      ( "blackout",
        enc_opt
          (fun (b : Fault_plan.blackout) ->
            J.obj
              [
                ("start", enc_float b.Fault_plan.start);
                ("duration", enc_float b.Fault_plan.duration);
                ("reset", enc_bool b.Fault_plan.reset);
              ])
          p.Fault_plan.blackout );
    ]

let encode s =
  let s = validate s in
  J.obj
    [
      ("v", enc_int (doc_version s));
      ("model", enc_model s.model);
      ("params", encode_params s.params);
      ("t_end", enc_float s.t_end);
      ("sample_dt", enc_float s.sample_dt);
      ("initial_rate", enc_opt enc_float s.initial_rate);
      ("control_delay", enc_float s.control_delay);
      ("seed", enc_int s.seed);
      ("replicas", enc_int s.replicas);
      ("workload", J.arr (List.map enc_workload s.workload));
      ("fault", enc_opt enc_fault s.fault);
    ]

(* ------------------------------------------------------------------ *)
(* Decoding: over the shared minimal JSON reader                       *)
(* ------------------------------------------------------------------ *)

(* [Json_read.t] shadows the scenario [t] from here down; everything
   below builds scenario values via record literals, so nothing needs
   the name. *)
open Json_read


(* -- component decoders ----------------------------------------------- *)

let dec_params j =
  let what = "params" in
  let fields = as_obj what j in
  check_known what
    [ "n_flows"; "capacity"; "w"; "pm"; "q0"; "buffer"; "qsc"; "gi"; "gd";
      "ru"; "mu" ]
    fields;
  let opt k = match field fields k with Some (Num f) -> Some f | Some _ -> bad "params.%s: expected a number" k | None -> None in
  Fluid.Params.make ?w:(opt "w") ?pm:(opt "pm") ?qsc:(opt "qsc")
    ?mu:(opt "mu") ~n_flows:(get_int what fields "n_flows")
    ~capacity:(get_float what fields "capacity")
    ~q0:(get_float what fields "q0")
    ~buffer:(get_float what fields "buffer")
    ~gi:(get_float what fields "gi") ~gd:(get_float what fields "gd")
    ~ru:(get_float what fields "ru") ()

let dec_sampling j =
  let what = "sampling" in
  let fields = as_obj what j in
  check_known what [ "kind"; "period" ] fields;
  match get_str what fields "kind" with
  | "deterministic" -> Deterministic
  | "bernoulli" -> Bernoulli
  | "timer" -> Timer (get_float what fields "period")
  | other -> bad "sampling: unknown kind %S" other

let dec_model params j =
  let what = "model" in
  let fields = as_obj what j in
  match get_str what fields "kind" with
  | "bcn" ->
      check_known what
        [ "kind"; "mode"; "sampling"; "positive_to_untagged";
          "broadcast_feedback"; "enable_bcn"; "enable_pause"; "pause_resume" ]
        fields;
      let mode =
        match field fields "mode" with
        | None -> default_knobs.mode
        | Some (Jstr "literal") -> Source.Literal
        | Some (Jstr "zoh") -> Source.Zoh_fluid
        | Some (Jstr other) -> bad "model.mode: unknown mode %S" other
        | Some _ -> bad "model.mode: expected a string"
      in
      let sampling =
        match field fields "sampling" with
        | None -> default_knobs.sampling
        | Some j -> dec_sampling j
      in
      Bcn
        {
          mode;
          sampling;
          positive_to_untagged =
            get_bool_opt what fields "positive_to_untagged"
              ~default:default_knobs.positive_to_untagged;
          broadcast_feedback =
            get_bool_opt what fields "broadcast_feedback"
              ~default:default_knobs.broadcast_feedback;
          enable_bcn =
            get_bool_opt what fields "enable_bcn"
              ~default:default_knobs.enable_bcn;
          enable_pause =
            get_bool_opt what fields "enable_pause"
              ~default:default_knobs.enable_pause;
          pause_resume =
            get_float_opt what fields "pause_resume"
              ~default:default_knobs.pause_resume;
        }
  | "e2cm" ->
      check_known what [ "kind"; "interval" ] fields;
      E2cm { interval = get_float what fields "interval" }
  | "fera" ->
      check_known what [ "kind"; "interval"; "target_util" ] fields;
      Fera
        {
          interval = get_float what fields "interval";
          target_util = get_float_opt what fields "target_util" ~default:0.95;
        }
  | "multihop" ->
      check_known what
        [ "kind"; "c_a"; "c_b"; "n_long"; "n_short"; "strict_tagging" ]
        fields;
      let c = params.Fluid.Params.capacity in
      Multihop
        {
          c_a = get_float_opt what fields "c_a" ~default:c;
          c_b = get_float_opt what fields "c_b" ~default:(c /. 2.);
          n_long = get_int_opt what fields "n_long" ~default:10;
          n_short = get_int_opt what fields "n_short" ~default:10;
          strict_tagging =
            get_bool_opt what fields "strict_tagging" ~default:true;
        }
  | "rcp" ->
      check_known what [ "kind"; "alpha"; "beta"; "interval"; "variant" ]
        fields;
      Rcp
        {
          alpha =
            get_float_opt what fields "alpha"
              ~default:Fluid.Rcp.default_alpha;
          beta =
            get_float_opt what fields "beta" ~default:Fluid.Rcp.default_beta;
          interval =
            get_float_opt what fields "interval"
              ~default:Fluid.Rcp.default_tau;
          variant =
            (match field fields "variant" with
            | None | Some (Jstr "by_capacity") -> Fluid.Rcp.By_capacity
            | Some (Jstr "by_load") -> Fluid.Rcp.By_load
            | Some (Jstr other) -> bad "model.variant: unknown variant %S" other
            | Some _ -> bad "model.variant: expected a string");
        }
  | other -> bad "model: unknown kind %S" other

let dec_workload j =
  let what = "workload" in
  let fields = as_obj what j in
  match get_str what fields "kind" with
  | "cbr" ->
      check_known what [ "kind"; "rate" ] fields;
      Cbr { rate = get_float what fields "rate" }
  | "poisson" ->
      check_known what [ "kind"; "mean_rate"; "seed" ] fields;
      Poisson
        {
          mean_rate = get_float what fields "mean_rate";
          seed = get_int_opt what fields "seed" ~default:0;
        }
  | "on_off" ->
      check_known what [ "kind"; "peak_rate"; "mean_on"; "mean_off"; "seed" ]
        fields;
      On_off
        {
          peak_rate = get_float what fields "peak_rate";
          mean_on = get_float what fields "mean_on";
          mean_off = get_float what fields "mean_off";
          seed = get_int_opt what fields "seed" ~default:0;
        }
  | "incast" ->
      check_known what
        [ "kind"; "senders"; "burst_frames"; "period"; "jitter"; "seed" ]
        fields;
      Incast
        {
          senders = get_int what fields "senders";
          burst_frames = get_int what fields "burst_frames";
          period = get_float what fields "period";
          jitter = get_float_opt what fields "jitter" ~default:0.;
          seed = get_int_opt what fields "seed" ~default:0;
        }
  | other -> bad "workload: unknown kind %S" other

let dec_loss j =
  let what = "loss" in
  let fields = as_obj what j in
  match get_str what fields "kind" with
  | "bernoulli" ->
      check_known what [ "kind"; "p" ] fields;
      Fault_plan.Bernoulli (get_float what fields "p")
  | "burst" ->
      check_known what [ "kind"; "p_enter"; "p_exit"; "p_drop" ] fields;
      Fault_plan.Burst
        {
          p_enter = get_float what fields "p_enter";
          p_exit = get_float what fields "p_exit";
          p_drop = get_float what fields "p_drop";
        }
  | other -> bad "loss: unknown kind %S" other

let dec_capacity j =
  let what = "capacity" in
  let fields = as_obj what j in
  match get_str what fields "kind" with
  | "schedule" ->
      check_known what [ "kind"; "steps" ] fields;
      let steps =
        match field fields "steps" with
        | Some (Jarr items) ->
            List.map
              (function
                | Jarr [ Num t; Num f ] -> (t, f)
                | _ -> bad "capacity.steps: expected [time, factor] pairs")
              items
        | _ -> bad "capacity.steps: expected an array"
      in
      Fault_plan.Flap_schedule steps
  | "markov" ->
      check_known what [ "kind"; "mean_up"; "mean_down"; "factor" ] fields;
      Fault_plan.Flap_markov
        {
          mean_up = get_float what fields "mean_up";
          mean_down = get_float what fields "mean_down";
          factor = get_float what fields "factor";
        }
  | other -> bad "capacity: unknown kind %S" other

let dec_opt dec = function Null -> None | j -> Some (dec j)

let dec_fault j =
  let what = "fault" in
  let fields = as_obj what j in
  check_known what
    [ "seed"; "bcn_pos_loss"; "bcn_neg_loss"; "pause_loss"; "delay";
      "capacity"; "blackout" ]
    fields;
  let opt k dec = Option.bind (field fields k) (dec_opt dec) in
  {
    Fault_plan.seed = get_int_opt what fields "seed" ~default:0;
    bcn_pos_loss = opt "bcn_pos_loss" dec_loss;
    bcn_neg_loss = opt "bcn_neg_loss" dec_loss;
    pause_loss = opt "pause_loss" dec_loss;
    delay =
      opt "delay" (fun j ->
          let f = as_obj "delay" j in
          check_known "delay" [ "fixed"; "jitter"; "reorder" ] f;
          {
            Fault_plan.fixed = get_float "delay" f "fixed";
            jitter = get_float_opt "delay" f "jitter" ~default:0.;
            reorder = get_bool_opt "delay" f "reorder" ~default:false;
          });
    capacity = opt "capacity" dec_capacity;
    blackout =
      opt "blackout" (fun j ->
          let f = as_obj "blackout" j in
          check_known "blackout" [ "start"; "duration"; "reset" ] f;
          {
            Fault_plan.start = get_float "blackout" f "start";
            duration = get_float "blackout" f "duration";
            reset = get_bool_opt "blackout" f "reset" ~default:false;
          });
  }

let dec_scenario j =
  let what = "scenario" in
  let fields = as_obj what j in
  check_known what
    [ "v"; "model"; "params"; "t_end"; "sample_dt"; "initial_rate";
      "control_delay"; "seed"; "replicas"; "workload"; "fault" ]
    fields;
  let v = get_int what fields "v" in
  if v < 1 || v > version then
    bad "scenario: unsupported encoding version %d" v;
  let params =
    match field fields "params" with
    | Some j -> dec_params j
    | None -> bad "scenario: missing field \"params\""
  in
  let model =
    match field fields "model" with
    | Some j -> dec_model params j
    | None -> bad "scenario: missing field \"model\""
  in
  (* The version is a pure function of the content ([doc_version]), so
     canonical bytes stay 1:1 with scenarios: a v1 document can never
     smuggle in an RCP arm, and an inflated-version copy of a v1
     document is rejected rather than silently re-keyed. *)
  let required = match model with Rcp _ -> 2 | _ -> 1 in
  if v <> required then
    bad "scenario: version %d does not match the model (canonical is %d)" v
      required;
  {
    params;
    model;
    t_end = get_float_opt what fields "t_end" ~default:0.02;
    sample_dt = get_float_opt what fields "sample_dt" ~default:1e-5;
    initial_rate =
      (match field fields "initial_rate" with
      | None | Some Null -> None
      | Some (Num f) -> Some f
      | Some _ -> bad "scenario.initial_rate: expected a number or null");
    control_delay = get_float_opt what fields "control_delay" ~default:1e-6;
    seed = get_int_opt what fields "seed" ~default:0;
    replicas = get_int_opt what fields "replicas" ~default:1;
    workload =
      (match field fields "workload" with
      | None | Some Null -> []
      | Some (Jarr items) -> List.map dec_workload items
      | Some _ -> bad "scenario.workload: expected an array");
    fault =
      (match field fields "fault" with
      | None | Some Null -> None
      | Some j ->
          let p = dec_fault j in
          if Fault_plan.is_none p then None else Some p);
  }

let of_json j =
  match validate (dec_scenario j) with
  | s -> Ok s
  | exception Bad msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let decode src =
  match parse src with
  | j -> of_json j
  | exception Bad msg -> Error msg

let decode_exn src =
  match decode src with Ok s -> s | Error msg -> invalid_arg ("Scenario.decode: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Compilation to execution-layer configs                              *)
(* ------------------------------------------------------------------ *)

let runner_sampling s = function
  | Deterministic -> Switch.Deterministic
  | Bernoulli -> Switch.Bernoulli (Random.State.make [| s.seed |])
  | Timer p -> Switch.Timer p

let to_runner_config s =
  let s = validate s in
  match s.model with
  | Bcn k ->
      let base =
        Runner.default_config ~t_end:s.t_end ~sample_dt:s.sample_dt s.params
      in
      {
        base with
        Runner.initial_rate =
          Option.value s.initial_rate ~default:base.Runner.initial_rate;
        control_delay = s.control_delay;
        mode = k.mode;
        sampling = runner_sampling s k.sampling;
        positive_to_untagged = k.positive_to_untagged;
        broadcast_feedback = k.broadcast_feedback;
        enable_bcn = k.enable_bcn;
        enable_pause = k.enable_pause;
        pause_resume = k.pause_resume;
      }
  | _ -> invalid_arg "Scenario.to_runner_config: not a BCN scenario"

let runner_configs s =
  let base = to_runner_config s in
  match s.model with
  | Bcn { sampling = Bernoulli; _ } ->
      Array.init s.replicas (fun i -> Runner.with_seed base (s.seed + i))
  | _ -> [| base |]

let to_e2cm_config s =
  let s = validate s in
  match s.model with
  | E2cm { interval } ->
      let base =
        E2cm.default_config ~t_end:s.t_end ~sample_dt:s.sample_dt s.params
      in
      {
        base with
        E2cm.initial_rate =
          Option.value s.initial_rate ~default:base.E2cm.initial_rate;
        control_delay = s.control_delay;
        interval;
      }
  | _ -> invalid_arg "Scenario.to_e2cm_config: not an E2CM scenario"

let to_fera_config s =
  let s = validate s in
  match s.model with
  | Fera { interval; target_util } ->
      let base =
        Fera.default_config ~t_end:s.t_end ~sample_dt:s.sample_dt s.params
      in
      {
        base with
        Fera.initial_rate =
          Option.value s.initial_rate ~default:base.Fera.initial_rate;
        control_delay = s.control_delay;
        interval;
        target_util;
      }
  | _ -> invalid_arg "Scenario.to_fera_config: not a FERA scenario"

let to_multihop_config s =
  let s = validate s in
  match s.model with
  | Multihop { c_a; c_b; n_long; n_short; strict_tagging } ->
      let base =
        Multihop.default_config ~t_end:s.t_end ~n_long ~n_short s.params
      in
      {
        base with
        Multihop.c_a;
        c_b;
        sample_dt = s.sample_dt;
        initial_rate =
          Option.value s.initial_rate ~default:base.Multihop.initial_rate;
        control_delay = s.control_delay;
        strict_tagging;
      }
  | _ -> invalid_arg "Scenario.to_multihop_config: not a multihop scenario"

let of_runner_config ?(seed = 0) ?(replicas = 1) (cfg : Runner.config) =
  if cfg.Runner.control_channel <> None || cfg.Runner.on_setup <> None then
    invalid_arg
      "Scenario.of_runner_config: config carries executable hooks \
       (control_channel/on_setup); describe the fault as a Fault_plan \
       instead";
  let sampling =
    match cfg.Runner.sampling with
    | Switch.Deterministic -> Deterministic
    | Switch.Timer p -> Timer p
    | Switch.Bernoulli _ ->
        invalid_arg
          "Scenario.of_runner_config: live Bernoulli RNG state is not \
           encodable; use ?seed with Deterministic/Timer sampling"
  in
  validate
    {
      params = cfg.Runner.params;
      t_end = cfg.Runner.t_end;
      sample_dt = cfg.Runner.sample_dt;
      initial_rate = Some cfg.Runner.initial_rate;
      control_delay = cfg.Runner.control_delay;
      model =
        Bcn
          {
            mode = cfg.Runner.mode;
            sampling;
            positive_to_untagged = cfg.Runner.positive_to_untagged;
            broadcast_feedback = cfg.Runner.broadcast_feedback;
            enable_bcn = cfg.Runner.enable_bcn;
            enable_pause = cfg.Runner.enable_pause;
            pause_resume = cfg.Runner.pause_resume;
          };
      workload = [];
      fault = None;
      seed;
      replicas;
    }

let start_workloads s e sw =
  let next = ref s.params.Fluid.Params.n_flows in
  let sink e pkt = Switch.receive sw e pkt in
  List.iter
    (fun spec ->
      let w =
        match spec with
        | Cbr { rate } ->
            let id = !next in
            incr next;
            Workload.cbr ~id ~rate
        | Poisson { mean_rate; seed } ->
            let id = !next in
            incr next;
            Workload.poisson ~id ~mean_rate ~seed
        | On_off { peak_rate; mean_on; mean_off; seed } ->
            let id = !next in
            incr next;
            Workload.on_off ~id ~peak_rate ~mean_on ~mean_off ~seed
        | Incast { senders; burst_frames; period; jitter; seed } ->
            let ids = List.init senders (fun i -> !next + i) in
            next := !next + senders;
            Workload.incast ~ids ~burst_frames ~period ~jitter ~seed ()
      in
      Workload.start w e ~sink)
    s.workload

(* ------------------------------------------------------------------ *)
(* The single compile dispatch                                         *)
(* ------------------------------------------------------------------ *)

let to_rcp_config s =
  match s.model with
  | Rcp { alpha; beta; interval; variant } ->
      let base =
        Rcp.default_config ~t_end:s.t_end ~sample_dt:s.sample_dt s.params
      in
      {
        base with
        Rcp.initial_rate =
          Option.value s.initial_rate ~default:base.Rcp.initial_rate;
        control_delay = s.control_delay;
        alpha;
        beta;
        interval;
        variant;
      }
  | _ -> invalid_arg "Scenario.to_rcp_config: not an RCP scenario"

type hooks = {
  channel : Runner.control_channel option;
  setup : (Engine.t -> Switch.t -> unit) option;
}

type outcome =
  | Bcn_results of Runner.result array
  | E2cm_result of E2cm.result
  | Fera_result of Fera.result
  | Multihop_result of Multihop.result
  | Rcp_result of Rcp.result

type ('c, 'r) compiled = {
  configs : 'c array;
  run_many : ?jobs:int -> 'c array -> 'r array;
  wire : ('c -> hooks -> 'c) option;
  pack : 'r array -> outcome;
}

type runnable = Runnable : ('c, 'r) compiled -> runnable

(* Prepend [setup] before whatever the config already runs at setup
   time: fault installation must precede workload start (the order
   [Store.Sweep] always used), and both must see the live switch. *)
let compose_setup extra prev =
  match (extra, prev) with
  | None, p -> p
  | Some _, None -> extra
  | Some f, Some p ->
      Some
        (fun e sw ->
          f e sw;
          p e sw)

let single pack = function
  | [| r |] -> pack r
  | rs ->
      invalid_arg
        (Printf.sprintf "Scenario.compile: expected 1 result, got %d"
           (Array.length rs))

let compile s =
  let s = validate s in
  match s.model with
  | Bcn _ ->
      let cfgs = runner_configs s in
      let cfgs =
        if s.workload = [] then cfgs
        else
          Array.map
            (fun cfg ->
              {
                cfg with
                Runner.on_setup =
                  compose_setup cfg.Runner.on_setup
                    (Some (fun e sw -> start_workloads s e sw));
              })
            cfgs
      in
      Runnable
        {
          configs = cfgs;
          run_many = Runner.run_many;
          wire =
            Some
              (fun cfg h ->
                {
                  cfg with
                  Runner.control_channel =
                    (match h.channel with
                    | None -> cfg.Runner.control_channel
                    | some -> some);
                  on_setup = compose_setup h.setup cfg.Runner.on_setup;
                });
          pack = (fun rs -> Bcn_results rs);
        }
  | E2cm _ ->
      Runnable
        {
          configs = [| to_e2cm_config s |];
          run_many = E2cm.run_many;
          wire =
            (* no switch: only channel faults exist for this model
               (validate enforces it), so [setup] has nothing to arm *)
            Some
              (fun cfg h ->
                {
                  cfg with
                  E2cm.control_channel =
                    (match h.channel with
                    | None -> cfg.E2cm.control_channel
                    | some -> some);
                });
          pack = single (fun r -> E2cm_result r);
        }
  | Fera _ ->
      Runnable
        {
          configs = [| to_fera_config s |];
          run_many = Fera.run_many;
          wire =
            Some
              (fun cfg h ->
                {
                  cfg with
                  Fera.control_channel =
                    (match h.channel with
                    | None -> cfg.Fera.control_channel
                    | some -> some);
                });
          pack = single (fun r -> Fera_result r);
        }
  | Multihop _ ->
      Runnable
        {
          configs = [| to_multihop_config s |];
          run_many = Multihop.run_many;
          wire = None;
          pack = single (fun r -> Multihop_result r);
        }
  | Rcp _ ->
      Runnable
        {
          configs = [| to_rcp_config s |];
          run_many = Rcp.run_many;
          wire =
            Some
              (fun cfg h ->
                {
                  cfg with
                  Rcp.control_channel =
                    (match h.channel with
                    | None -> cfg.Rcp.control_channel
                    | some -> some);
                  on_setup = compose_setup h.setup cfg.Rcp.on_setup;
                });
          pack = single (fun r -> Rcp_result r);
        }

(* ------------------------------------------------------------------ *)
(* The protocol-agnostic view of an outcome                            *)
(* ------------------------------------------------------------------ *)

type run_stats = {
  queue : Numerics.Series.t;
  utilization : float;
  drops : int;
  messages : int;
  final_rates : float array option;
}

let outcome_model = function
  | Bcn_results _ -> "bcn"
  | E2cm_result _ -> "e2cm"
  | Fera_result _ -> "fera"
  | Multihop_result _ -> "multihop"
  | Rcp_result _ -> "rcp"

let outcome_stats = function
  | Bcn_results rs ->
      Array.map
        (fun (r : Runner.result) ->
          {
            queue = r.Runner.queue;
            utilization = r.Runner.utilization;
            drops = r.Runner.drops;
            messages = r.Runner.bcn_positive + r.Runner.bcn_negative;
            final_rates = Some r.Runner.final_rates;
          })
        rs
  | E2cm_result r ->
      [|
        {
          queue = r.E2cm.queue;
          utilization = r.E2cm.utilization;
          drops = r.E2cm.drops;
          messages = r.E2cm.messages;
          final_rates = Some r.E2cm.final_rates;
        };
      |]
  | Fera_result r ->
      [|
        {
          queue = r.Fera.queue;
          utilization = r.Fera.utilization;
          drops = r.Fera.drops;
          messages = r.Fera.advertisements;
          final_rates = Some r.Fera.final_rates;
        };
      |]
  | Multihop_result r ->
      [|
        {
          queue = r.Multihop.queue_b;
          utilization = r.Multihop.utilization_b;
          drops = r.Multihop.drops_a + r.Multihop.drops_b;
          messages = r.Multihop.bcn_messages;
          final_rates = None;
        };
      |]
  | Rcp_result r ->
      [|
        {
          queue = r.Rcp.queue;
          utilization = r.Rcp.utilization;
          drops = r.Rcp.drops;
          messages = r.Rcp.feedbacks;
          final_rates = Some r.Rcp.final_rates;
        };
      |]
