(** Binary min-heap priority queue keyed by time.

    The discrete-event engine's core data structure. Entries with equal
    timestamps pop in insertion order (FIFO tie-breaking), which keeps
    packet orderings deterministic.

    The heap is stored structure-of-arrays (an unboxed [float array] of
    keys plus parallel sequence/payload arrays), so neither {!push} nor
    {!pop_min} allocates on the minor heap once the queue has reached
    its working capacity. The option-returning {!pop}/{!peek} remain as
    thin wrappers for callers that prefer the boxed API; the engine's
    hot loop uses {!min_key}/{!pop_min}. Popped and cleared slots are
    overwritten immediately so the queue never pins dead payloads
    (e.g. callback closures) until a slot happens to be reused.

    {!Eventq_boxed} preserves the original record-per-entry
    implementation as a property-test oracle and benchmark baseline. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> 'a -> unit
(** [push q t v] inserts [v] with key [t]. Raises [Invalid_argument] on a
    NaN key. Allocation-free except for amortized capacity growth. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest entry. *)

val pop_min : 'a t -> 'a
(** Remove and return the payload of the earliest entry without boxing
    the result; read the key first with {!min_key} if it is needed.
    Raises [Invalid_argument] on an empty queue. *)

val min_key : 'a t -> float
(** Key of the earliest entry. Raises [Invalid_argument] on an empty
    queue. *)

val peek : 'a t -> (float * 'a) option

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Discard all entries, releasing every payload reference. *)

val drain : 'a t -> (float * 'a) list
(** Pop everything, in order. *)
