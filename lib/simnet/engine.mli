(** Discrete-event simulation engine.

    A single-threaded event loop over a time-ordered queue of callbacks.
    Callbacks receive the engine so they can read the clock and schedule
    further events; simulated time only advances between events. *)

type t

val create : ?probe:Telemetry.Probe.t -> unit -> t
(** [probe] is the telemetry probe components attached to this engine
    emit through (default {!Telemetry.Probe.disabled}, which records
    nothing at ~zero cost). The engine carries the probe so that
    switches and sources don't each need it threaded through their
    configs. *)

val now : t -> float
(** Current simulated time (seconds); 0 at creation. *)

val probe : t -> Telemetry.Probe.t
val set_probe : t -> Telemetry.Probe.t -> unit

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule e ~delay f] runs [f] at [now e +. delay].
    Raises [Invalid_argument] on negative [delay]. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past. *)

val run : ?until:float -> t -> unit
(** Process events in time order until the queue is empty or the clock
    would pass [until] (events after [until] remain queued; the clock is
    left at [until]). *)

val stop : t -> unit
(** Makes {!run} return after the current callback. *)

val events_processed : t -> int
val pending : t -> int
