(** Bit-counted FIFO packet queue with a hard capacity — the core-switch
    buffer whose occupancy [q t] is the controlled variable of the whole
    system. Tail-drop on overflow, with drop accounting.

    Implemented as a growable ring buffer with flat float accounting so
    that steady-state enqueue/dequeue allocates nothing; {!pop} is the
    allocation-free variant of {!dequeue} for the forwarding fast
    path. *)

type t

val create : capacity_bits:float -> t
(** Raises [Invalid_argument] when the capacity is not positive. *)

val enqueue : t -> Packet.t -> bool
(** [false] when the frame did not fit and was dropped (tail drop). *)

val dequeue : t -> Packet.t option

val pop : t -> Packet.t
(** Like {!dequeue} but without the option box; raises
    [Invalid_argument] on an empty queue — check {!is_empty} first. *)

val occupancy_bits : t -> float
(** Current queue length in bits — the [q t] of the model. *)

val length : t -> int
(** Queued frames. *)

val is_empty : t -> bool

val capacity_bits : t -> float
val drops : t -> int
val dropped_bits : t -> float

val enqueued_bits : t -> float
(** Cumulative bits accepted (the arrival counter of the congestion
    point). *)

val dequeued_bits : t -> float
(** Cumulative bits served (the departure counter). *)
