(** Traffic source with its congestion reaction point (paper §II.B).

    The source paces data frames at its current rate [r]; the reaction
    point adjusts [r] on BCN feedback. Two update semantics are provided:

    - {!Literal} — the draft's eqn (2), applied once per BCN message:
      positive [fb]: [r ← r + Gi·Ru·fb]; negative [fb]:
      [r ← r·(1 + Gd·fb)].
    - {!Zoh_fluid} — zero-order hold of the feedback: the latest [fb]
      value is retained and the {e fluid} laws (paper eqn (7))
      [dr/dt = Gi·Ru·fb] / [dr/dt = Gd·fb·r] are integrated exactly
      between pacing events. This makes the packet system converge to the
      fluid model as the sampling rate grows, which is what the
      fluid-vs-packet validation (experiment V1) needs.

    On a negative BCN the source associates itself with the congestion
    point: subsequent frames carry the CPID in their rate-regulator tag.
    The rate is clamped to [[min_rate, max_rate]]. An 802.3x PAUSE stops
    the pacing loop until the matching un-PAUSE. *)

type update_mode = Literal | Zoh_fluid

type t

val create :
  id:int ->
  initial_rate:float ->
  ?min_rate:float ->
  ?max_rate:float ->
  ?mode:update_mode ->
  ?hold_timeout:float ->
  ?pool:Packet.Pool.t ->
  gi:float ->
  gd:float ->
  ru:float ->
  send:(Engine.t -> Packet.t -> unit) ->
  unit ->
  t
(** Defaults: [min_rate] = 1 kbit/s, [max_rate] = +inf,
    [mode = Zoh_fluid], [hold_timeout] = +inf. In [Zoh_fluid] mode a held
    feedback value is integrated only for [hold_timeout] seconds after
    the BCN that delivered it — beyond that the reaction point coasts
    (the fluid model's sigma is assumed fresh every sampling interval).
    When [pool] is given, data frames are drawn from it instead of being
    freshly allocated; whoever consumes them must release them back.
    Raises [Invalid_argument] on a non-positive initial rate. *)

val start : t -> Engine.t -> unit
(** Begin the pacing loop (idempotent). *)

val handle_bcn : t -> now:float -> fb:float -> cpid:int -> unit
val set_paused : t -> Engine.t -> bool -> unit

val rate : t -> float
val id : t -> int
val tagged : t -> bool
val is_paused : t -> bool
val frames_sent : t -> int
val bits_sent : t -> float
