(** A minimal JSON reader for the canonical wire subset.

    This is the parsing half of the repo's hand-rolled JSON story: the
    {!Telemetry.Json} fragment emitters write, this module reads. It
    covers exactly the subset those emitters produce — objects, arrays,
    strings with latin-1 [\u] escapes, doubles, booleans, null — and is
    strict where the canonical codecs need it to be: duplicate object
    fields and trailing bytes are errors.

    Grown out of the private reader inside [Scenario]; factored out so
    the serve-protocol codec ({!Serve.Protocol}) and the scenario codec
    parse requests with the same machinery and the same error style. *)

type t =
  | Null
  | Jbool of bool
  | Num of float
  | Jstr of string
  | Jarr of t list
  | Jobj of (string * t) list

exception Bad of string
(** Every parse or shape error raises [Bad msg]. The typed accessors
    below raise it too, so one [try ... with Bad msg] wraps a whole
    decoder. *)

val bad : ('a, unit, string, 'b) format4 -> 'a
(** [bad fmt ...] raises {!Bad} with a formatted message — for decoders
    layered on top of this reader. *)

val parse : string -> t
(** Parse one complete JSON value; raises {!Bad} on syntax errors,
    duplicate fields, or trailing bytes. *)

(** {1 Typed field access}

    All take a [what] context string used in error messages
    (e.g. ["params"] producing ["params.gi: expected a number"]). *)

val as_obj : string -> t -> (string * t) list
val check_known : string -> string list -> (string * t) list -> unit
(** Reject fields outside the allowed set — canonical codecs treat
    unknown fields as errors rather than silently ignoring them. *)

val field : (string * t) list -> string -> t option
val get_float : string -> (string * t) list -> string -> float
val get_float_opt :
  string -> (string * t) list -> string -> default:float -> float

val get_int : string -> (string * t) list -> string -> int
(** A [Num] that is integral and within [1e15] in magnitude. *)

val get_int_opt : string -> (string * t) list -> string -> default:int -> int
val get_bool_opt :
  string -> (string * t) list -> string -> default:bool -> bool

val get_str : string -> (string * t) list -> string -> string
val get_str_opt :
  string -> (string * t) list -> string -> default:string -> string
