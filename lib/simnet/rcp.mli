(** Packet-level RCP — explicit rate feedback from the congestion
    point, the discrete counterpart of {!Fluid.Rcp}.

    Unlike the BCN loop there is no per-sample AIMD at the sources: the
    switch measures, once per control interval [T], the aggregate
    arrival rate [y] at its ingress and the standing queue [q], updates
    one advertised fair rate

    - [By_capacity]: [R <- R·(1 + (alpha·(C − y) − beta·q/T)/C)]
    - [By_load]:     [R <- R + (alpha·(C − y) − beta·q/T)/N]

    (the forward-Euler image of the fluid laws with step [T], using the
    {e live} egress capacity so capacity flaps feed straight into the
    control law), clamps it to [[1 kbit/s, C]], and sends every source
    one rate frame carrying the new [R] in the BCN feedback field.
    Sources obey the advertised rate verbatim — their pacing rate {e is}
    the last [R] received.

    The switch is the pooled {!Switch} with its congestion point off
    ([enable_bcn = false]): forwarding, tail drop, live-capacity flaps
    and queue accounting are shared with the BCN runner, and rate
    frames traverse the same optional {!Runner.control_channel}, so
    fault plans (feedback loss, delay, capacity flaps) apply to RCP
    unchanged. *)

type config = {
  params : Fluid.Params.t;
      (** link and population; the BCN gain/sampling fields are unused *)
  t_end : float;
  sample_dt : float;
  initial_rate : float;  (** per-source pacing rate at t = 0, bit/s *)
  control_delay : float;  (** switch-to-source propagation of rate frames *)
  alpha : float;
  beta : float;  (** [0] = the queue-term ablation *)
  interval : float;  (** control interval [T], seconds *)
  variant : Fluid.Rcp.variant;
  control_channel : Runner.control_channel option;
      (** interpose on rate frames (fault injection); [None] is
          byte-identical to a lossless channel *)
  on_setup : (Engine.t -> Switch.t -> unit) option;
      (** runs once before the first event (fault-plan installation) *)
}

val default_config : ?t_end:float -> ?sample_dt:float -> Fluid.Params.t -> config
(** Stock RCP gains ({!Fluid.Rcp.default_alpha} /
    {!Fluid.Rcp.default_beta}), [interval = ]{!Fluid.Rcp.default_tau},
    [By_capacity], start at 30%% of the fair share, [t_end = 20 ms],
    [control_delay = 1 µs], no channel, no setup hook. *)

type result = {
  queue : Numerics.Series.t;  (** queue occupancy, bits *)
  agg_rate : Numerics.Series.t;  (** sum of live source rates, bit/s *)
  advertised : Numerics.Series.t;
      (** the fair rate the switch is currently advertising, bit/s *)
  drops : int;  (** tail-dropped data frames *)
  delivered_bits : float;
  utilization : float;  (** delivered / (C·t_end) *)
  feedbacks : int;  (** rate frames emitted (pre-loss) *)
  final_rates : float array;  (** per-source pacing rate at t_end *)
  events_processed : int;
      (** engine events consumed — the bench suite's throughput
          denominator *)
}

val run : config -> result
(** Deterministic: no RNG anywhere in the loop, so equal configs give
    equal results. Raises [Invalid_argument] when [t_end <= 0]. *)

val run_many : ?jobs:int -> config array -> result array
(** Run every config over a [Parallel.Pool] of [jobs] lanes (default
    {!Parallel.Pool.default_size}). Results are in input order and
    byte-identical for any [jobs] value — each run owns its engine,
    pool and switch. [jobs = 1] runs sequentially in the caller.
    Raises [Invalid_argument] when [jobs < 1]. *)
