type update_mode = Literal | Zoh_fluid

(* All per-frame mutable float state is grouped into an all-float record
   (flat representation): rate/bits updates on the pacing fast path then
   write floats in place instead of allocating a box per store, which is
   what keeps steady-state sending allocation-free. *)
type fstate = {
  mutable rate : float;
  mutable fb_hold : float;  (* latest feedback (Zoh_fluid mode) *)
  mutable hold_until : float;
  mutable last_integration : float;
  mutable bits : float;
}

type t = {
  id : int;
  fs : fstate;
  min_rate : float;
  max_rate : float;
  mode : update_mode;
  gi : float;
  gd : float;
  ru : float;
  send : Engine.t -> Packet.t -> unit;
  pool : Packet.Pool.t option;
  hold_timeout : float;  (* Zoh_fluid: how long a held feedback stays valid *)
  mutable rrt : int option;  (* CPID of the associated congestion point *)
  mutable paused : bool;
  mutable running : bool;
  mutable epoch : int;  (* invalidates stale pacing events after a pause *)
  mutable seq : int;
  mutable frames : int;
  (* preallocated pacing callback for the current epoch: one closure per
     (re)start, not one per frame *)
  mutable tick : Engine.t -> unit;
  (* captured from the engine in [start]: [handle_bcn] has no engine
     argument, so the probe must already be at hand there *)
  mutable probe : Telemetry.Probe.t;
}

let create ~id ~initial_rate ?(min_rate = 1e3) ?(max_rate = infinity)
    ?(mode = Zoh_fluid) ?(hold_timeout = infinity) ?pool ~gi ~gd ~ru ~send ()
    =
  if initial_rate <= 0. then invalid_arg "Source.create: initial_rate <= 0";
  if min_rate <= 0. then invalid_arg "Source.create: min_rate <= 0";
  {
    id;
    fs =
      {
        rate = Float.min (Float.max initial_rate min_rate) max_rate;
        fb_hold = 0.;
        hold_until = infinity;
        last_integration = 0.;
        bits = 0.;
      };
    min_rate;
    max_rate;
    mode;
    gi;
    gd;
    ru;
    send;
    pool;
    hold_timeout;
    rrt = None;
    paused = false;
    running = false;
    epoch = 0;
    seq = 0;
    frames = 0;
    tick = (fun _ -> ());
    probe = Telemetry.Probe.disabled;
  }

let[@inline] clamp src v = Float.min src.max_rate (Float.max src.min_rate v)

(* Zoh_fluid: integrate the fluid rate law with the held feedback from
   [last_integration] to [now]. The decrease law dr/dt = Gd·fb·r has the
   exact solution r·exp(Gd·fb·dt). *)
let[@inline] integrate_held src now =
  (* the held feedback is only trusted up to [hold_until]: the fluid model
     assumes a fresh sigma every sampling interval, so integrating a stale
     value indefinitely would let one congestion episode starve the source
     forever *)
  let upto = Float.min now src.fs.hold_until in
  let dt = upto -. src.fs.last_integration in
  if dt > 0. then begin
    let fb = src.fs.fb_hold in
    if fb > 0. then
      src.fs.rate <- clamp src (src.fs.rate +. (src.gi *. src.ru *. fb *. dt))
    else if fb < 0. then
      src.fs.rate <- clamp src (src.fs.rate *. exp (src.gd *. fb *. dt))
  end;
  src.fs.last_integration <- now

let pacing_tick src epoch e =
  if src.epoch = epoch && not src.paused then begin
    let now = Engine.now e in
    (match src.mode with
    | Zoh_fluid -> integrate_held src now
    | Literal -> ());
    let pkt =
      match src.pool with
      | Some pool ->
          Packet.Pool.alloc_data pool ~seq:src.seq ~now ~flow:src.id
            ~rrt:src.rrt
      | None -> Packet.make_data ~seq:src.seq ~now ~flow:src.id ~rrt:src.rrt
    in
    src.seq <- src.seq + 1;
    src.frames <- src.frames + 1;
    src.fs.bits <- src.fs.bits +. float_of_int Packet.data_frame_bits;
    src.send e pkt;
    (* the frame may already have been consumed and recycled by the time
       send returns, so the gap uses the constant frame size, not pkt *)
    let gap = float_of_int Packet.data_frame_bits /. src.fs.rate in
    Engine.schedule e ~delay:gap src.tick
  end

(* Bump the epoch (orphaning any still-scheduled tick) and build the one
   closure all pacing events of the new epoch share. *)
let rearm src =
  src.epoch <- src.epoch + 1;
  let epoch = src.epoch in
  src.tick <- (fun e -> pacing_tick src epoch e)

let start src e =
  if not src.running then begin
    src.running <- true;
    src.probe <- Engine.probe e;
    rearm src;
    src.fs.last_integration <- Engine.now e;
    (* stagger by id so N sources do not fire in lockstep at t = 0 *)
    let jitter =
      float_of_int Packet.data_frame_bits /. src.fs.rate
      *. (float_of_int (src.id mod 97) /. 97.)
    in
    Engine.schedule e ~delay:jitter src.tick
  end

let handle_bcn src ~now ~fb ~cpid =
  (match src.mode with
  | Literal ->
      if fb > 0. then
        src.fs.rate <- clamp src (src.fs.rate +. (src.gi *. src.ru *. fb))
      else if fb < 0. then
        src.fs.rate <- clamp src (src.fs.rate *. (1. +. (src.gd *. fb)))
  | Zoh_fluid ->
      (* finish the previous hold interval, then switch to the new value *)
      integrate_held src now;
      src.fs.fb_hold <- fb;
      src.fs.hold_until <- now +. src.hold_timeout);
  Telemetry.Probe.rate_update src.probe ~t:now ~rate:src.fs.rate ~fb ~id:src.id
    ~cpid;
  if fb < 0. then src.rrt <- Some cpid

let set_paused src e on =
  if on <> src.paused then begin
    src.paused <- on;
    rearm src;
    (* a paused source neither sends nor ramps: restart the hold clock *)
    src.fs.last_integration <- Engine.now e;
    if (not on) && src.running then Engine.schedule e ~delay:0. src.tick
  end

let rate src = src.fs.rate
let id src = src.id
let tagged src = src.rrt <> None
let is_paused src = src.paused
let frames_sent src = src.frames
let bits_sent src = src.fs.bits
