open Numerics

type control_channel =
  Engine.t ->
  Packet.t ->
  deliver:(Engine.t -> Packet.t -> unit) ->
  drop:(Engine.t -> Packet.t -> unit) ->
  unit

type config = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  sampling : Switch.sampling;
  mode : Source.update_mode;
  positive_to_untagged : bool;
  broadcast_feedback : bool;
  enable_bcn : bool;
  enable_pause : bool;
  pause_resume : float;
  control_channel : control_channel option;
  on_setup : (Engine.t -> Switch.t -> unit) option;
  stop_on_verdict : bool;
}

let default_config ?(t_end = 0.02) ?(sample_dt = 1e-5) (p : Fluid.Params.t) =
  let fair = Fluid.Params.equilibrium_rate p in
  {
    params = p;
    t_end;
    sample_dt;
    initial_rate = Float.max p.Fluid.Params.mu (0.02 *. fair);
    control_delay = 1e-6;
    sampling = Switch.Deterministic;
    mode = Source.Zoh_fluid;
    positive_to_untagged = true;
    broadcast_feedback = false;
    enable_bcn = true;
    enable_pause = true;
    pause_resume = 0.9;
    control_channel = None;
    on_setup = None;
    stop_on_verdict = false;
  }

let with_seed cfg seed =
  { cfg with sampling = Switch.Bernoulli (Random.State.make [| seed |]) }

type result = {
  queue : Series.t;
  agg_rate : Series.t;
  flow_rates : Series.t array;
  latency : Histogram.t;
  queue_histogram : Histogram.t;
  drops : int;
  dropped_bits : float;
  delivered_bits : float;
  utilization : float;
  bcn_positive : int;
  bcn_negative : int;
  pause_on_events : int;
  sampled_frames : int;
  events_processed : int;
  final_rates : float array;
}

let run ?(probe = Telemetry.Probe.disabled) cfg =
  if cfg.t_end <= 0. then invalid_arg "Runner.run: t_end <= 0";
  if cfg.sample_dt <= 0. then invalid_arg "Runner.run: sample_dt <= 0";
  let p = cfg.params in
  let n = p.Fluid.Params.n_flows in
  let e = Engine.create ~probe () in
  (* every frame in this run cycles through one pool: sources draw data
     frames, the switch draws control frames, and whoever consumes a
     frame (sink, control dispatcher, tail drop) releases it *)
  let pool = Packet.Pool.create () in
  (* flat float accumulator: a [ref float] would box on every store *)
  let delivered = [| 0. |] in
  (* frame sojourn time through the switch; worst case ~ B/C plus service *)
  let latency =
    Histogram.create ~lo:0.
      ~hi:(2.2 *. p.Fluid.Params.buffer /. p.Fluid.Params.capacity)
      ~bins:120
  in
  let queue_histogram =
    Histogram.create ~lo:0. ~hi:p.Fluid.Params.buffer ~bins:100
  in
  (* the switch is created before the sources so control frames can be
     routed; sources are filled in just below *)
  let sources = Array.make n None in
  let dispatch_control e (pkt : Packet.t) =
    (match pkt.Packet.kind with
    | Packet.Bcn { flow; fb; cpid } ->
        if cfg.broadcast_feedback then
          Array.iter
            (function
              | Some src -> Source.handle_bcn src ~now:(Engine.now e) ~fb ~cpid
              | None -> ())
            sources
        else if flow >= 0 && flow < n then (
          (* flows >= n are uncontrolled cross traffic (Scenario
             workloads): they have no reaction point, so feedback
             addressed to them is consumed here *)
          match sources.(flow) with
          | Some src -> Source.handle_bcn src ~now:(Engine.now e) ~fb ~cpid
          | None -> ())
    | Packet.Pause { on } ->
        Array.iter
          (function Some src -> Source.set_paused src e on | None -> ())
          sources
    | Packet.Data _ -> ());
    Packet.Pool.release pool pkt
  in
  let sw_cfg =
    {
      (Switch.default_config p ~cpid:1) with
      Switch.sampling = cfg.sampling;
      positive_to_untagged = cfg.positive_to_untagged;
      enable_bcn = cfg.enable_bcn;
      enable_pause = cfg.enable_pause;
      pause_resume = cfg.pause_resume;
      pool = Some pool;
    }
  in
  (* the delivery leg every control frame takes once past the (optional)
     fault channel: the configured propagation delay, then dispatch *)
  let deliver e pkt =
    Engine.schedule e ~delay:cfg.control_delay (fun e ->
        dispatch_control e pkt)
  in
  let control_out =
    match cfg.control_channel with
    | None -> deliver
    | Some chan ->
        let drop _e pkt = Packet.Pool.release pool pkt in
        fun e pkt -> chan e pkt ~deliver ~drop
  in
  let sw = Switch.create sw_cfg ~control_out in
  (match cfg.on_setup with Some f -> f e sw | None -> ());
  Switch.set_forward sw (fun e pkt ->
      delivered.(0) <- delivered.(0) +. float_of_int pkt.Packet.bits;
      Histogram.add latency (Engine.now e -. Packet.born pkt);
      Packet.Pool.release pool pkt);
  Switch.start sw e;
  for i = 0 to n - 1 do
    let src =
      Source.create ~id:i ~initial_rate:cfg.initial_rate
        ~min_rate:(0.01 *. Fluid.Params.equilibrium_rate p)
        ~max_rate:p.Fluid.Params.capacity ~mode:cfg.mode
        ~hold_timeout:(50. *. Switch.fluid_sampling_period p)
        ~pool ~gi:p.Fluid.Params.gi ~gd:p.Fluid.Params.gd
        ~ru:p.Fluid.Params.ru
        ~send:(fun e pkt -> Switch.receive sw e pkt)
        ()
    in
    sources.(i) <- Some src;
    Source.start src e
  done;
  (* periodic trace sampler *)
  let n_samples = int_of_float (Float.ceil (cfg.t_end /. cfg.sample_dt)) + 1 in
  let ts = Array.make n_samples 0. in
  let qs = Array.make n_samples 0. in
  let aggs = Array.make n_samples 0. in
  let per_flow = Array.make_matrix n n_samples 0. in
  let idx = ref 0 in
  let record e =
    if !idx < n_samples then begin
      ts.(!idx) <- Engine.now e;
      qs.(!idx) <- Switch.queue_bits sw;
      Histogram.add_weighted queue_histogram (Switch.queue_bits sw) cfg.sample_dt;
      let agg = [| 0. |] in
      Array.iteri
        (fun i s ->
          match s with
          | Some src ->
              let r = Source.rate src in
              per_flow.(i).(!idx) <- r;
              agg.(0) <- agg.(0) +. r
          | None -> ())
        sources;
      aggs.(!idx) <- agg.(0);
      incr idx
    end
  in
  let rec sampler e =
    record e;
    (* overflow verdict: once the FIFO has dropped, the run's answer to
       "does this operating point overflow the buffer?" is decided —
       with [stop_on_verdict] the remaining horizon is skipped. The
       check rides the sampler, so the verdict resolution is one
       [sample_dt], and the trace up to the stop is byte-identical to
       the same prefix of a full-horizon run. *)
    if cfg.stop_on_verdict && Fifo.drops (Switch.fifo sw) > 0 then
      Engine.stop e
    else if Engine.now e +. cfg.sample_dt <= cfg.t_end then
      Engine.schedule e ~delay:cfg.sample_dt sampler
  in
  Engine.schedule e ~delay:0. sampler;
  Engine.run ~until:cfg.t_end e;
  (* elapsed simulated time: equals [t_end] unless the verdict stop cut
     the run short (the engine clock then rests at the stop event) *)
  let t_run = if cfg.stop_on_verdict then Engine.now e else cfg.t_end in
  let m = !idx in
  let cut a = Array.sub a 0 m in
  let st = Switch.stats sw in
  let q = Switch.fifo sw in
  if Telemetry.Probe.enabled probe then begin
    let mx = Telemetry.Probe.metrics probe in
    Telemetry.Probe.flush_event_counters probe;
    Telemetry.Metrics.add mx "runner.events_processed"
      (Engine.events_processed e);
    Telemetry.Metrics.add mx "runner.frames_sampled" st.Switch.sampled;
    Telemetry.Metrics.add mx "runner.drops" (Fifo.drops q);
    Telemetry.Metrics.set_gauge mx "runner.delivered_bits" delivered.(0);
    Telemetry.Metrics.set_gauge mx "runner.dropped_bits" (Fifo.dropped_bits q);
    Telemetry.Metrics.set_gauge mx "runner.utilization"
      (delivered.(0) /. (p.Fluid.Params.capacity *. t_run));
    Telemetry.Metrics.add_histogram mx "runner.latency_s" latency;
    Telemetry.Metrics.add_histogram mx "runner.queue_bits" queue_histogram
  end;
  {
    queue = Series.make (cut ts) (cut qs);
    agg_rate = Series.make (cut ts) (cut aggs);
    flow_rates =
      Array.init n (fun i -> Series.make (cut ts) (cut per_flow.(i)));
    latency;
    queue_histogram;
    drops = Fifo.drops q;
    dropped_bits = Fifo.dropped_bits q;
    delivered_bits = delivered.(0);
    utilization = delivered.(0) /. (p.Fluid.Params.capacity *. t_run);
    bcn_positive = st.Switch.bcn_positive;
    bcn_negative = st.Switch.bcn_negative;
    pause_on_events = st.Switch.pause_on;
    sampled_frames = st.Switch.sampled;
    events_processed = Engine.events_processed e;
    final_rates =
      Array.map
        (function Some src -> Source.rate src | None -> 0.)
        sources;
  }

(* Each run builds its own engine, pool and RNG state and shares
   nothing with its siblings, so the deterministic fan-out is the one
   the shared MODEL functor generates; [run_many] stays as the
   historical alias. *)
module Fanout = Model.Make (struct
  type nonrec config = config
  type nonrec result = result

  let name = "Runner"
  let run c = run c
end)

let run_many = Fanout.run_many

let replicate ?jobs ~seeds cfg =
  run_many ?jobs (Array.map (with_seed cfg) seeds)

(* Instrumented fan-out: each replica gets its own counting probe
   (capacity 0: per-kind event counters + metrics, no ring), created
   inside the task so no probe state crosses domains. map_array returns
   in input order, so folding the registries left-to-right merges them
   in seed order — the combined snapshot is byte-identical for any
   [jobs] value. *)
let replicate_instrumented ?jobs ~seeds cfg =
  let cfgs = Array.map (with_seed cfg) seeds in
  let task c =
    let probe = Telemetry.Probe.create ~capacity:0 () in
    let r = run ~probe c in
    (r, Telemetry.Probe.metrics probe)
  in
  let pairs =
    let size =
      match jobs with Some j -> j | None -> Parallel.Pool.default_size ()
    in
    if size < 1 then invalid_arg "Runner.replicate_instrumented: jobs < 1";
    if size = 1 || Array.length cfgs <= 1 then Array.map task cfgs
    else
      Parallel.Pool.with_pool ~size (fun pool ->
          Parallel.Pool.map_array pool task cfgs)
  in
  let merged = Telemetry.Metrics.create () in
  Array.iter (fun (_, m) -> Telemetry.Metrics.merge_into ~into:merged m) pairs;
  (Array.map fst pairs, merged)

let fairness rates =
  let n = Array.length rates in
  if n = 0 then invalid_arg "Runner.fairness: empty";
  let s = Array.fold_left ( +. ) 0. rates in
  let s2 = Array.fold_left (fun acc r -> acc +. (r *. r)) 0. rates in
  if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)
