(* Calendar-queue priority queue (Brown 1988), structure-of-arrays.

   The alternative O(1)-amortized design point to {!Eventq}'s 4-ary
   heap: time is cut into [nb] buckets of [width] seconds that wrap
   around like the days of a year. A push appends to its key's bucket
   (O(1)); a pop scans the current bucket for entries inside the
   current year and advances bucket-by-bucket otherwise. With the
   bucket count tracking the population and the width tracking the
   mean event spacing, both operations touch O(1) entries on average —
   but the constant pays for bucket scans and reposition logic, so
   whether it beats the heap depends on the pending-set size (the
   engine's is small, tens of events). bench/main.ml races the two at
   several queue sizes; the engine keeps whichever wins.

   Layout mirrors {!Eventq}: per-bucket parallel arrays (unboxed float
   keys / int seqs / payload pointers), FIFO tie-breaking via a global
   insertion counter, and dead slots overwritten immediately so the
   queue never pins popped payloads. Buckets are unsorted: the pop-side
   scan picks the (key, seq)-minimum, which is unique, so iteration
   order inside a bucket never affects results. *)

type 'a t = {
  mutable nb : int;  (* bucket count, power of two *)
  mutable width : float;  (* seconds per bucket *)
  mutable bkeys : float array array;
  mutable bseqs : int array array;
  mutable bvals : 'a array array;
  mutable blen : int array;
  mutable size : int;
  mutable next_seq : int;
  mutable cur : int;  (* bucket the next pop starts scanning *)
  mutable bucket_top : float;  (* end of [cur]'s current-year window *)
  slot : int array;  (* scratch: slot index returned by [find_min] *)
}

let no_value : unit -> 'a = fun () -> Obj.magic 0
let initial_nb = 16

let make_buckets nb =
  ( Array.init nb (fun _ -> [||]),
    Array.init nb (fun _ -> [||]),
    Array.init nb (fun _ -> [||]),
    Array.make nb 0 )

let create () =
  let bkeys, bseqs, bvals, blen = make_buckets initial_nb in
  {
    nb = initial_nb;
    width = 1.;
    bkeys;
    bseqs;
    bvals;
    blen;
    size = 0;
    next_seq = 0;
    cur = 0;
    bucket_top = 1.;
    slot = [| 0 |];
  }

let size q = q.size
let is_empty q = q.size = 0

(* Bucket of a key: floor(key / width) mod nb. [Float.rem] is exact, so
   reducing mod nb before flooring survives virtual bucket numbers far
   beyond [max_int]. *)
let bucket_of q key =
  let r = Float.rem (key /. q.width) (Float.of_int q.nb) in
  let i = int_of_float r in
  (* int_of_float truncates toward zero; adjust to floor for r < 0 *)
  let i = if r < 0. && Float.of_int i <> r then i - 1 else i in
  if i < 0 then i + q.nb else i

(* Reposition the pop cursor so the scan starts at [key]'s bucket with
   the year window that contains [key]. *)
let reposition q key =
  q.cur <- bucket_of q key;
  q.bucket_top <- (Float.floor (key /. q.width) +. 1.) *. q.width

let bucket_push q i key seq v =
  let len = q.blen.(i) in
  let ks = q.bkeys.(i) in
  let cap = Array.length ks in
  if len >= cap then begin
    let ncap = Stdlib.max 4 (2 * cap) in
    let ks' = Array.make ncap 0. in
    let ss' = Array.make ncap 0 in
    let vs' = Array.make ncap (no_value ()) in
    Array.blit ks 0 ks' 0 len;
    Array.blit q.bseqs.(i) 0 ss' 0 len;
    Array.blit q.bvals.(i) 0 vs' 0 len;
    q.bkeys.(i) <- ks';
    q.bseqs.(i) <- ss';
    q.bvals.(i) <- vs'
  end;
  Array.unsafe_set q.bkeys.(i) len key;
  Array.unsafe_set q.bseqs.(i) len seq;
  Array.unsafe_set q.bvals.(i) len v;
  q.blen.(i) <- len + 1

(* Rebuild with a new bucket count, re-estimating the width from the
   key span of the live population (Brown's sampled-gap estimate,
   simplified: mean spacing across the whole queue). O(n), amortized
   against the pushes/pops that moved [size] across the threshold. *)
let resize q nb' =
  let old_keys = q.bkeys and old_seqs = q.bseqs and old_vals = q.bvals in
  let old_len = q.blen and old_nb = q.nb in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 0 to old_nb - 1 do
    for j = 0 to old_len.(i) - 1 do
      let k = old_keys.(i).(j) in
      if k < !lo then lo := k;
      if k > !hi then hi := k
    done
  done;
  let width =
    if q.size < 2 || !hi <= !lo then 1.
    else
      let w = (!hi -. !lo) /. Float.of_int q.size in
      if Float.is_finite w && w > 0. then w else 1.
  in
  let bkeys, bseqs, bvals, blen = make_buckets nb' in
  q.nb <- nb';
  q.width <- width;
  q.bkeys <- bkeys;
  q.bseqs <- bseqs;
  q.bvals <- bvals;
  q.blen <- blen;
  for i = 0 to old_nb - 1 do
    for j = 0 to old_len.(i) - 1 do
      bucket_push q
        (bucket_of q old_keys.(i).(j))
        old_keys.(i).(j) old_seqs.(i).(j) old_vals.(i).(j)
    done
  done;
  if q.size > 0 then reposition q !lo

let push q key v =
  if key <> key then invalid_arg "Eventq_calendar.push: NaN key";
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  bucket_push q (bucket_of q key) key seq v;
  q.size <- q.size + 1;
  (* an event earlier than the scan cursor's window must pull the
     cursor back, or pops would miss it until next year's wrap *)
  if q.size = 1 || key < q.bucket_top -. q.width then reposition q key;
  if q.size > 2 * q.nb then resize q (2 * q.nb)

(* Index of the (key, seq)-minimal entry of bucket [i] whose key is
   below [limit]; -1 if none. *)
let scan_bucket q i limit =
  let len = Array.unsafe_get q.blen i in
  let ks = Array.unsafe_get q.bkeys i in
  let ss = Array.unsafe_get q.bseqs i in
  let best = ref (-1) in
  for j = 0 to len - 1 do
    let k = Array.unsafe_get ks j in
    if k < limit then
      if !best < 0 then best := j
      else begin
        let kb = Array.unsafe_get ks !best in
        if
          k < kb
          || (k = kb && Array.unsafe_get ss j < Array.unsafe_get ss !best)
        then best := j
      end
  done;
  !best

(* Locate the next entry to pop: scan at most one full year of buckets
   from the cursor; if the year is empty (population far in the
   future), fall back to a direct whole-queue minimum search and
   reposition there. Returns the bucket index, leaves the slot index in
   [slot]. Caller guarantees the queue is non-empty. *)
let find_min q (slot : int array) =
  let found = ref (-1) in
  let steps = ref 0 in
  while !found < 0 && !steps < q.nb do
    let j = scan_bucket q q.cur q.bucket_top in
    if j >= 0 then begin
      slot.(0) <- j;
      found := q.cur
    end
    else begin
      incr steps;
      q.cur <- (q.cur + 1) land (q.nb - 1);
      q.bucket_top <- q.bucket_top +. q.width
    end
  done;
  if !found >= 0 then !found
  else begin
    (* direct search: global (key, seq) minimum *)
    let bi = ref (-1) and bj = ref (-1) in
    for i = 0 to q.nb - 1 do
      for j = 0 to q.blen.(i) - 1 do
        if !bi < 0 then begin
          bi := i;
          bj := j
        end
        else begin
          let k = q.bkeys.(i).(j) and kb = q.bkeys.(!bi).(!bj) in
          if k < kb || (k = kb && q.bseqs.(i).(j) < q.bseqs.(!bi).(!bj)) then begin
            bi := i;
            bj := j
          end
        end
      done
    done;
    reposition q q.bkeys.(!bi).(!bj);
    slot.(0) <- !bj;
    q.cur <- !bi;
    !bi
  end

let min_key q =
  if q.size = 0 then invalid_arg "Eventq_calendar.min_key: empty queue";
  let i = find_min q q.slot in
  q.bkeys.(i).(q.slot.(0))

(* Remove bucket slot [j] by moving the bucket's tail entry into it —
   order inside a bucket is irrelevant, the scans are order-blind. *)
let remove q i j =
  let len = q.blen.(i) - 1 in
  let ks = q.bkeys.(i) and ss = q.bseqs.(i) and vs = q.bvals.(i) in
  if j < len then begin
    ks.(j) <- ks.(len);
    ss.(j) <- ss.(len);
    vs.(j) <- vs.(len)
  end;
  vs.(len) <- no_value ();
  q.blen.(i) <- len;
  q.size <- q.size - 1

let pop_min q =
  if q.size = 0 then invalid_arg "Eventq_calendar.pop_min: empty queue";
  let i = find_min q q.slot in
  let j = q.slot.(0) in
  let v = q.bvals.(i).(j) in
  remove q i j;
  if q.nb > initial_nb && q.size < q.nb / 2 then resize q (q.nb / 2);
  v

let pop q =
  if q.size = 0 then None
  else begin
    let i = find_min q q.slot in
    let j = q.slot.(0) in
    let k = q.bkeys.(i).(j) in
    let v = q.bvals.(i).(j) in
    remove q i j;
    if q.nb > initial_nb && q.size < q.nb / 2 then resize q (q.nb / 2);
    Some (k, v)
  end

let peek q =
  if q.size = 0 then None
  else begin
    let i = find_min q q.slot in
    Some (q.bkeys.(i).(q.slot.(0)), q.bvals.(i).(q.slot.(0)))
  end

let clear q =
  for i = 0 to q.nb - 1 do
    let vs = q.bvals.(i) in
    for j = 0 to q.blen.(i) - 1 do
      vs.(j) <- no_value ()
    done;
    q.blen.(i) <- 0
  done;
  q.size <- 0;
  q.cur <- 0;
  q.bucket_top <- q.width

let drain q =
  let rec go acc =
    match pop q with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []
