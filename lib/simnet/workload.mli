(** Traffic generators for workloads beyond the rate-controlled sources:
    uncontrolled cross traffic (CBR, Poisson, exponential on/off) and the
    synchronized burst pattern of cluster-file-system incast.

    Generators inject data frames directly into a switch and do not react
    to BCN feedback — they model the background traffic a congestion
    point must cope with. All randomness is seeded and reproducible. *)

type t

val cbr : id:int -> rate:float -> t
(** Constant bit rate: evenly paced frames. *)

val poisson : id:int -> mean_rate:float -> seed:int -> t
(** Exponential inter-frame gaps with the given mean rate. *)

val on_off :
  id:int -> peak_rate:float -> mean_on:float -> mean_off:float -> seed:int -> t
(** Exponential on/off (Markov-modulated): bursts at [peak_rate] for
    exponentially distributed on-periods, silent for off-periods.
    [mean_off = 0.] degenerates to an always-on source (CBR at
    [peak_rate], no RNG draws); negative [mean_off] is invalid. *)

val incast :
  ids:int list -> burst_frames:int -> period:float -> ?jitter:float ->
  ?seed:int -> unit -> t
(** Synchronized periodic bursts: every [period] seconds each id emits
    [burst_frames] back-to-back frames (within [jitter] seconds of the
    epoch, default 0) — the parallel-read pattern of Lustre/Panasas-style
    storage (paper §III.A). *)

val start : t -> Engine.t -> sink:(Engine.t -> Packet.t -> unit) -> unit
(** Begin injecting at the current simulation time. *)

val stop : t -> unit
(** Cease injection (pending frames already scheduled still fire). *)

val frames_sent : t -> int
val bits_sent : t -> float

val mean_offered_rate : t -> float
(** The configured long-run offered load in bit/s (for capacity
    budgeting): the rate for {!cbr}/{!poisson}, the duty-cycle-scaled
    peak for {!on_off}, burst volume over period for {!incast}. *)
