(** The seed (record-per-entry) event queue, kept as a reference.

    Same observable semantics as {!Eventq} — time-ordered pops with FIFO
    tie-breaking — but each push allocates a boxed entry record. It
    serves as the independently-implemented oracle for the Eventq
    property tests and as the baseline of the [simnet] throughput
    benchmarks; the engine itself uses the structure-of-arrays
    {!Eventq}. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> float -> 'a -> unit
(** Raises [Invalid_argument] on a NaN key. *)

val pop : 'a t -> (float * 'a) option
val peek : 'a t -> (float * 'a) option

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Discard all entries, releasing every payload reference. *)

val drain : 'a t -> (float * 'a) list
(** Pop everything, in order. *)
