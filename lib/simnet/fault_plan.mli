(** Composable, seeded fault plans — pure data, no executable state.

    This module lives in [simnet] (rather than [faultnet], which holds
    the executable {i injector} for these plans) so that a first-class
    {!Scenario.t} can embed a fault plan in its canonical encoding
    without a dependency cycle. [Faultnet.Plan] re-exports it under the
    historical name; both paths denote the same types.

    A plan is a pure description of how a run's control plane and links
    are to be degraded: which control-frame classes lose frames (and
    how), what extra delay control frames see, how the bottleneck
    capacity flaps, and whether the congestion point blacks out. The
    plan carries its own [seed]; everything stochastic in the resulting
    {!Injector} is derived from that seed through split RNG states, so a
    plan determines a run's perturbation byte-for-byte — independent of
    host, of [--jobs] fan-out, and of any other run in flight. *)

(** Control-frame class the switch emits. Codes (see {!code}) match the
    [i] payload of the telemetry fault events. *)
type frame_class = Bcn_positive | Bcn_negative | Pause

val code : frame_class -> int
(** [Bcn_positive] = 0, [Bcn_negative] = 1, [Pause] = 2. *)

val class_name : frame_class -> string
(** ["bcn+"], ["bcn-"], ["pause"]. *)

(** Loss process applied per frame of one class. *)
type loss =
  | Bernoulli of float  (** iid drop probability in [0, 1] *)
  | Burst of { p_enter : float; p_exit : float; p_drop : float }
      (** Gilbert–Elliott: a good/bad two-state chain advanced once per
          frame of the class ([p_enter]: good→bad, [p_exit]: bad→good);
          frames seen in the bad state drop with probability [p_drop].
          The chain starts good. *)

(** Extra delay added to every surviving control frame, on top of the
    runner's propagation delay. *)
type delay = {
  fixed : float;  (** deterministic component, seconds, >= 0 *)
  jitter : float;  (** uniform [0, jitter) random component, >= 0 *)
  reorder : bool;
      (** [false] (default): delivery times are monotonised so jitter
          never reorders control frames relative to emission order;
          [true]: frames race. *)
}

(** Bottleneck egress-capacity fault. Factors are multiples of the
    switch's configured capacity. *)
type capacity_fault =
  | Flap_schedule of (float * float) list
      (** [(time, factor)] steps, applied in list order; times must be
          nonnegative and nondecreasing, factors in (0, 1]. *)
  | Flap_markov of { mean_up : float; mean_down : float; factor : float }
      (** Two-state Markov (exponential holding times): full capacity
          for ~[mean_up] seconds, then [factor]·capacity for
          ~[mean_down] seconds, repeating. Starts up. *)

(** Congestion-point blackout: BCN generation is switched off during
    [[start, start + duration)]. With [reset], the sampler state is
    forgotten at recovery, as a rebooted congestion point would. *)
type blackout = { start : float; duration : float; reset : bool }

type t = {
  seed : int;
  bcn_pos_loss : loss option;
  bcn_neg_loss : loss option;
  pause_loss : loss option;
  delay : delay option;
  capacity : capacity_fault option;
  blackout : blackout option;
}

val none : t
(** The empty plan ([seed = 0], every fault [None]). An injector built
    from it passes every frame through untouched. *)

val is_none : t -> bool
(** True when every fault component is [None] (seed ignored). *)

(** {1 Builders} — each returns an updated copy; chain freely. *)

val with_seed : t -> int -> t
val with_bcn_loss : ?pos:loss -> ?neg:loss -> t -> t
(** Omitted sides keep their current spec. *)

val with_pause_loss : t -> loss -> t
val with_delay : ?reorder:bool -> ?jitter:float -> t -> fixed:float -> t
(** Defaults: [jitter = 0.], [reorder = false]. *)

val with_capacity : t -> capacity_fault -> t
val with_blackout : ?reset:bool -> t -> start:float -> duration:float -> t
(** Default [reset = false]. *)

val loss_of_severity : float -> loss
(** [Bernoulli] clamped into [0, 1] — the loss axis the resilience
    bisection sweeps. *)

val square_flaps :
  period:float -> duty:float -> depth:float -> t_end:float -> capacity_fault
(** Periodic square-wave flaps as a {!Flap_schedule}: starting at
    [t = period] and repeating every [period] seconds until [t_end], the
    capacity dips to [(1 − depth)] of nominal for [duty·period] seconds.
    [depth] is clamped so the dipped capacity stays ≥ 5%% of nominal.
    Raises [Invalid_argument] unless [period > 0] and [duty ∈ (0, 1]]. *)

val validate : t -> t
(** Returns the plan unchanged, or raises [Invalid_argument] naming the
    offending component: probabilities outside [0, 1], negative delays,
    non-positive Markov holding times, flap factors outside (0, 1],
    unordered flap schedules, negative blackout windows. *)

val describe : t -> string
(** One-line human summary, e.g.
    ["seed=7 bcn+loss=bernoulli(0.2) delay=2e-06+1e-06j flaps=markov(...)"].
    ["none"] for the empty plan. *)
