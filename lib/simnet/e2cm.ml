open Numerics

type config = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  interval : float;
  control_channel : Runner.control_channel option;
}

let default_config ?(t_end = 0.02) ?(sample_dt = 1e-5) (p : Fluid.Params.t) =
  {
    params = p;
    t_end;
    sample_dt;
    initial_rate = 0.3 *. Fluid.Params.equilibrium_rate p;
    control_delay = 1e-6;
    interval =
      200. *. float_of_int Packet.data_frame_bits /. p.Fluid.Params.capacity;
    control_channel = None;
  }

type result = {
  queue : Series.t;
  agg_rate : Series.t;
  drops : int;
  delivered_bits : float;
  utilization : float;
  messages : int;
  final_rates : float array;
}

let run cfg =
  if cfg.t_end <= 0. then invalid_arg "E2cm.run: t_end <= 0";
  let p = cfg.params in
  let n = p.Fluid.Params.n_flows in
  let c = p.Fluid.Params.capacity in
  let e = Engine.create () in
  let fifo = Fifo.create ~capacity_bits:p.Fluid.Params.buffer in
  let busy = ref false in
  let delivered = ref 0. in
  let messages = ref 0 in
  let rates = Array.make n cfg.initial_rate in
  (* congestion-point state: BCN sampling + an interval fair-share
     estimate from the active-flow count *)
  let arrivals = ref 0 in
  let sample_every =
    Stdlib.max 1 (int_of_float (Float.round (1. /. p.Fluid.Params.pm)))
  in
  let q_old = ref 0. in
  let active = Array.make n false in
  let fair_share = ref (c /. float_of_int n) in
  let rec fair_cycle e =
    let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 active in
    if count > 0 then fair_share := 0.95 *. c /. float_of_int count;
    Array.fill active 0 n false;
    Engine.schedule e ~delay:cfg.interval fair_cycle
  in
  Engine.schedule e ~delay:cfg.interval fair_cycle;
  let rec serve e =
    if not !busy then
      match Fifo.dequeue fifo with
      | None -> ()
      | Some pkt ->
          busy := true;
          Engine.schedule e
            ~delay:(float_of_int pkt.Packet.bits /. c)
            (fun e ->
              busy := false;
              delivered := !delivered +. float_of_int pkt.Packet.bits;
              serve e)
  in
  (* the hybrid reaction law: BCN AIMD with the advertised fair share
     capping the additive increase *)
  let react flow sigma er =
    if sigma > 0. then
      rates.(flow) <-
        Float.min
          (Float.max er rates.(flow))
          (rates.(flow) +. (p.Fluid.Params.gi *. p.Fluid.Params.ru *. sigma))
    else if sigma < 0. then
      rates.(flow) <-
        Float.max 1e3
          (Float.min
             (rates.(flow) *. (1. +. (p.Fluid.Params.gd *. sigma)))
             er)
  in
  (* Feedback leaves the switch either as a direct scheduled reaction
     (the historical, allocation-free path) or — when a fault channel is
     interposed — as a synthesized BCN frame carrying [fb = sigma], so
     loss/delay plans classify and perturb E2CM feedback exactly like
     BCN feedback. [None] and a pass-through channel are event-for-event
     identical. *)
  let fb_seq = ref 0 in
  let feedback e flow sigma er =
    match cfg.control_channel with
    | None ->
        Engine.schedule e ~delay:cfg.control_delay (fun _e ->
            react flow sigma er)
    | Some chan ->
        let pkt =
          Packet.make_bcn ~seq:!fb_seq ~now:(Engine.now e) ~flow ~fb:sigma
            ~cpid:1
        in
        incr fb_seq;
        chan e pkt
          ~deliver:(fun e _pkt ->
            Engine.schedule e ~delay:cfg.control_delay (fun _e ->
                react flow sigma er))
          ~drop:(fun _e _pkt -> ())
  in
  let receive e (pkt : Packet.t) =
    (match pkt.Packet.kind with
    | Packet.Data { flow; _ } ->
        active.(flow) <- true;
        if Fifo.enqueue fifo pkt then begin
          incr arrivals;
          if !arrivals mod sample_every = 0 then begin
            let q = Fifo.occupancy_bits fifo in
            let dq = q -. !q_old in
            q_old := q;
            let sigma =
              (p.Fluid.Params.q0 -. q) -. (p.Fluid.Params.w *. dq)
            in
            if sigma <> 0. then begin
              incr messages;
              feedback e flow sigma !fair_share
            end
          end
        end
    | Packet.Bcn _ | Packet.Pause _ -> ());
    serve e
  in
  let frame = float_of_int Packet.data_frame_bits in
  let seq = ref 0 in
  let rec pace i e =
    if Engine.now e <= cfg.t_end then begin
      let pkt =
        Packet.make_data ~seq:!seq ~now:(Engine.now e) ~flow:i ~rrt:None
      in
      incr seq;
      receive e pkt;
      Engine.schedule e ~delay:(frame /. rates.(i)) (pace i)
    end
  in
  for i = 0 to n - 1 do
    let jitter = frame /. rates.(i) *. (float_of_int (i mod 97) /. 97.) in
    Engine.schedule e ~delay:jitter (pace i)
  done;
  let n_samples = int_of_float (Float.ceil (cfg.t_end /. cfg.sample_dt)) + 1 in
  let ts = Array.make n_samples 0. in
  let qs = Array.make n_samples 0. in
  let ags = Array.make n_samples 0. in
  let idx = ref 0 in
  let rec sampler e =
    if !idx < n_samples then begin
      ts.(!idx) <- Engine.now e;
      qs.(!idx) <- Fifo.occupancy_bits fifo;
      ags.(!idx) <- Array.fold_left ( +. ) 0. rates;
      incr idx
    end;
    if Engine.now e +. cfg.sample_dt <= cfg.t_end then
      Engine.schedule e ~delay:cfg.sample_dt sampler
  in
  Engine.schedule e ~delay:0. sampler;
  Engine.run ~until:cfg.t_end e;
  let m = !idx in
  let cut a = Array.sub a 0 m in
  {
    queue = Series.make (cut ts) (cut qs);
    agg_rate = Series.make (cut ts) (cut ags);
    drops = Fifo.drops fifo;
    delivered_bits = !delivered;
    utilization = !delivered /. (c *. cfg.t_end);
    messages = !messages;
    final_rates = Array.copy rates;
  }

(* The deterministic fan-out is generated once by the shared MODEL
   functor; [run_many] stays as the historical alias. *)
module Fanout = Model.Make (struct
  type nonrec config = config
  type nonrec result = result

  let name = "E2cm"
  let run = run
end)

let run_many = Fanout.run_many
