(** FERA — Forward Explicit Rate Advertising (paper §II.A, ref. [7]), the
    ERICA-descended alternative to the BCN paradigm: instead of feeding
    queue dynamics back for AIMD at the edge, the switch {e measures} the
    per-interval load, computes an explicit fair rate, and advertises it;
    sources jump straight to the advertised rate.

    The ERICA core implemented per measurement interval [T]:
    - measured input rate [R], active-flow set and per-flow rates;
    - overload factor [z = R / (u·C)] with target utilization [u];
    - advertised rate per flow: [max (u·C / n_active) (r_flow / z)].

    Explicit rate control converges in a couple of intervals without the
    oscillation of AIMD, at the cost of per-flow measurement state in the
    switch — the trade-off §II.A describes. *)

type config = {
  params : Fluid.Params.t;
  t_end : float;
  sample_dt : float;
  initial_rate : float;
  control_delay : float;
  interval : float;  (** measurement/advertisement interval, seconds *)
  target_util : float;  (** ERICA's target utilization, e.g. 0.95 *)
  control_channel : Runner.control_channel option;
      (** interposed on the advertisement path; each advertisement is
          synthesized as a BCN frame carrying [fb = er] so loss/delay
          fault plans act on it. [None] (the default) is event-for-event
          identical to a pass-through channel. *)
}

val default_config : ?t_end:float -> ?sample_dt:float -> Fluid.Params.t -> config
(** [interval] defaults to 100 frame times, [target_util] to 0.95. *)

type result = {
  queue : Numerics.Series.t;
  agg_rate : Numerics.Series.t;
  drops : int;
  delivered_bits : float;
  utilization : float;
  advertisements : int;
  final_rates : float array;
  convergence_time : float option;
      (** first time every source is within 10%% of the fair share *)
}

val run : config -> result

val run_many : ?jobs:int -> config array -> result array
(** Run every config over a [Parallel.Pool] of [jobs] lanes (default
    {!Parallel.Pool.default_size}). Results are in input order and
    byte-identical for any [jobs] value — each run owns its engine and
    state. [jobs = 1] runs sequentially in the caller. Raises
    [Invalid_argument] when [jobs < 1]. *)
