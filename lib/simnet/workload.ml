let frame_bits = float_of_int Packet.data_frame_bits

type shape =
  | Cbr of { rate : float }
  | Poisson of { mean_rate : float; rng : Random.State.t }
  | On_off of {
      peak_rate : float;
      mean_on : float;
      mean_off : float;
      rng : Random.State.t;
      mutable on : bool;
      mutable phase_ends : float;
    }
  | Incast of {
      ids : int list;
      burst_frames : int;
      period : float;
      jitter : float;
      rng : Random.State.t;
    }

type t = {
  id : int;
  shape : shape;
  mutable running : bool;
  mutable frames : int;
  mutable bits : float;
  mutable seq : int;
}

let make id shape = { id; shape; running = false; frames = 0; bits = 0.; seq = 0 }

let cbr ~id ~rate =
  if rate <= 0. then invalid_arg "Workload.cbr: rate <= 0";
  make id (Cbr { rate })

let poisson ~id ~mean_rate ~seed =
  if mean_rate <= 0. then invalid_arg "Workload.poisson: rate <= 0";
  make id (Poisson { mean_rate; rng = Random.State.make [| seed |] })

let on_off ~id ~peak_rate ~mean_on ~mean_off ~seed =
  if peak_rate <= 0. || mean_on <= 0. || mean_off < 0. then
    invalid_arg "Workload.on_off: nonpositive parameter";
  make id
    (On_off
       {
         peak_rate;
         mean_on;
         mean_off;
         rng = Random.State.make [| seed |];
         on = false;
         phase_ends = 0.;
       })

let incast ~ids ~burst_frames ~period ?(jitter = 0.) ?(seed = 1) () =
  if ids = [] then invalid_arg "Workload.incast: no ids";
  if burst_frames < 1 then invalid_arg "Workload.incast: burst_frames < 1";
  if period <= 0. then invalid_arg "Workload.incast: period <= 0";
  make (List.hd ids)
    (Incast
       { ids; burst_frames; period; jitter; rng = Random.State.make [| seed |] })

let exponential rng mean = -.mean *. log (1. -. Random.State.float rng 1.)

let emit w e sink ~flow =
  let pkt =
    Packet.make_data ~seq:w.seq ~now:(Engine.now e) ~flow ~rrt:None
  in
  w.seq <- w.seq + 1;
  w.frames <- w.frames + 1;
  w.bits <- w.bits +. frame_bits;
  sink e pkt

let start w e ~sink =
  if w.running then ()
  else begin
    w.running <- true;
    match w.shape with
    | Cbr { rate } ->
        let gap = frame_bits /. rate in
        let rec loop e =
          if w.running then begin
            emit w e sink ~flow:w.id;
            Engine.schedule e ~delay:gap loop
          end
        in
        Engine.schedule e ~delay:gap loop
    | Poisson { mean_rate; rng } ->
        let mean_gap = frame_bits /. mean_rate in
        let rec loop e =
          if w.running then begin
            emit w e sink ~flow:w.id;
            Engine.schedule e ~delay:(exponential rng mean_gap) loop
          end
        in
        Engine.schedule e ~delay:(exponential rng mean_gap) loop
    | On_off ({ peak_rate; mean_on; mean_off; rng; _ } as st) ->
        let gap = frame_bits /. peak_rate in
        if mean_off = 0. then begin
          (* Degenerate always-on source: CBR at the peak rate. The
             phase clock never fires and the RNG is never drawn. *)
          st.on <- true;
          st.phase_ends <- infinity
        end
        else begin
          st.on <- false;
          st.phase_ends <- Engine.now e +. exponential rng mean_off
        end;
        let rec loop e =
          if w.running then begin
            let now = Engine.now e in
            if now >= st.phase_ends then begin
              st.on <- not st.on;
              st.phase_ends <-
                now +. exponential rng (if st.on then mean_on else mean_off)
            end;
            if st.on then emit w e sink ~flow:w.id;
            Engine.schedule e ~delay:gap loop
          end
        in
        Engine.schedule e ~delay:gap loop
    | Incast { ids; burst_frames; period; jitter; rng } ->
        let rec epoch e =
          if w.running then begin
            List.iter
              (fun flow ->
                let delay =
                  if jitter > 0. then Random.State.float rng jitter else 0.
                in
                Engine.schedule e ~delay (fun e ->
                    for _ = 1 to burst_frames do
                      emit w e sink ~flow
                    done))
              ids;
            Engine.schedule e ~delay:period epoch
          end
        in
        Engine.schedule e ~delay:0. epoch
  end

let stop w = w.running <- false
let frames_sent w = w.frames
let bits_sent w = w.bits

let mean_offered_rate w =
  match w.shape with
  | Cbr { rate } -> rate
  | Poisson { mean_rate; _ } -> mean_rate
  | On_off { peak_rate; mean_on; mean_off; _ } ->
      peak_rate *. mean_on /. (mean_on +. mean_off)
  | Incast { ids; burst_frames; period; _ } ->
      float_of_int (List.length ids * burst_frames) *. frame_bits /. period
