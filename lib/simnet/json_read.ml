type t =
  | Null
  | Jbool of bool
  | Num of float
  | Jstr of string
  | Jarr of t list
  | Jobj of (string * t) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let parse (src : string) : t =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> bad "expected %c at byte %d, found %c" c !pos c'
    | None -> bad "expected %c at byte %d, found end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then begin
      pos := !pos + l;
      value
    end
    else bad "bad literal at byte %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char b '/'; loop ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; loop ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; loop ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; loop ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then bad "truncated \\u escape";
              let hex = String.sub src !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> bad "bad \\u escape %s" hex
              in
              if code > 0xff then bad "\\u escape beyond latin-1 unsupported";
              Buffer.add_char b (Char.chr code);
              loop ()
          | _ -> bad "bad escape at byte %d" !pos)
      | Some c ->
          advance ();
          Buffer.add_char b c;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    let lexeme = String.sub src start (!pos - start) in
    match float_of_string_opt lexeme with
    | Some f -> Num f
    | None -> bad "bad number %S at byte %d" lexeme start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            if List.mem_assoc k !fields then bad "duplicate field %S" k;
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> bad "expected , or } at byte %d" !pos
          in
          members ();
          Jobj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> bad "expected , or ] at byte %d" !pos
          in
          elements ();
          Jarr (List.rev !items)
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> bad "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing bytes after JSON value at byte %d" !pos;
  v

(* -- typed field access ------------------------------------------------ *)

let as_obj what = function
  | Jobj fields -> fields
  | _ -> bad "%s: expected an object" what

let check_known what allowed fields =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then bad "%s: unknown field %S" what k)
    fields

let field fields k = List.assoc_opt k fields

let get_float what fields k =
  match field fields k with
  | Some (Num f) -> f
  | Some _ -> bad "%s.%s: expected a number" what k
  | None -> bad "%s: missing field %S" what k

let get_float_opt what fields k ~default =
  match field fields k with
  | Some (Num f) -> f
  | Some _ -> bad "%s.%s: expected a number" what k
  | None -> default

let get_int what fields k =
  let f = get_float what fields k in
  if Float.is_integer f && Float.abs f <= 1e15 then int_of_float f
  else bad "%s.%s: expected an integer" what k

let get_int_opt what fields k ~default =
  match field fields k with Some _ -> get_int what fields k | None -> default

let get_bool_opt what fields k ~default =
  match field fields k with
  | Some (Jbool b) -> b
  | Some _ -> bad "%s.%s: expected a boolean" what k
  | None -> default

let get_str what fields k =
  match field fields k with
  | Some (Jstr s) -> s
  | Some _ -> bad "%s.%s: expected a string" what k
  | None -> bad "%s: missing field %S" what k

let get_str_opt what fields k ~default =
  match field fields k with
  | Some (Jstr s) -> s
  | Some _ -> bad "%s.%s: expected a string" what k
  | None -> default
