(** Adaptive boundary refinement over a binary verdict function.

    The paper's headline artifacts — the strong-stability safe region,
    the parameter-plane stability maps, the fault-severity margins —
    are all two-colorings of a rectangle whose entire information
    content is the {e boundary} between the colors, yet the dense
    rasters spend almost every verdict evaluation deep inside one of
    the uniform regions. This engine evaluates corners of a quadtree
    instead: seed a coarse lattice, subdivide only the cells whose
    corner verdicts disagree, and at the finest level trace the
    boundary through each mixed cell with a marching-squares case
    table, placing the crossing point on each crossing edge by bracket
    bisection (the same primitive {!Faultnet.Resilience.bisect} applies
    along a severity axis, here applied along a lattice edge). Verdict
    cost thus scales with the boundary length, not the raster area,
    while the emitted polyline is {e sub-cell} accurate.

    Everything is deterministic: waves of unevaluated points are
    assembled in sorted lattice order before each bulk call, so the
    backend sees the same point sequence whatever parallelism it uses
    internally, and a memo changes which points are recomputed but
    never which are {e requested} ([evaluations] counts logical
    lookups, mirroring [Resilience.bisect.evaluations]).

    Caveat (inherent to corner sampling): a boundary feature living
    strictly inside one coarse cell with all four corners agreeing is
    invisible at the seeding level and stays unrefined. Choose the
    coarse grid no coarser than the narrowest feature of interest —
    the safe-region and stability boundaries here are graphs of
    monotone-ish curves, for which corner disagreement is exact. *)

type domain = { x0 : float; x1 : float; y0 : float; y1 : float }

type memo = {
  key : x:float -> y:float -> string;
      (** stable key material for a point (embed the verdict backend's
          own identity — parameters, horizon, code version) *)
  lookup : string -> bool option;
  save : string -> bool -> unit;
}
(** Persistence hooks for individual verdicts; adapt the
    content-addressed store with [Store.Sweep.verdict_memo]. *)

type leaf = {
  li : int;  (** lower-left corner, fine-lattice column index *)
  lj : int;  (** lower-left corner, fine-lattice row index *)
  lstride : int;  (** side length in fine cells (a power of two) *)
  lverdict : bool;
}
(** A quadtree cell whose four corners agreed — not subdivided
    further, carries one verdict for its whole [lstride]² block. *)

type segment = { ax : float; ay : float; bx : float; by : float }
(** One traced boundary segment, in domain coordinates. *)

type t = {
  dom : domain;
  coarse_x : int;
  coarse_y : int;
  levels : int;
  nx : int;  (** fine lattice cells along x = [coarse_x * 2^levels] *)
  ny : int;  (** fine lattice cells along y *)
  corners : (int * int * bool) array;
      (** every evaluated lattice corner [(i, j, verdict)], sorted by
          [(i, j)] *)
  leaves : leaf array;  (** coarse-to-fine discovery order *)
  boundary_cells : (int * int) array;
      (** finest-level cells with disagreeing corners, sorted *)
  segments : segment array;
      (** marching-squares polyline, in [boundary_cells] order (one
          segment per cell, two for the diagonal cases 5/10, whose
          topology — connected band vs separated lobes — is
          disambiguated by probing the cell center with one extra
          verdict wave) *)
  evaluations : int;
      (** logical verdict evaluations (memo hits included), so warm
          and cold refinements report identical counts *)
}

val point : t -> int -> int -> float * float
(** Domain coordinates of fine-lattice corner [(i, j)]; endpoints are
    exact ([point t nx _ = x1] bit for bit). *)

val refine :
  ?memo:memo ->
  ?coarse:int * int ->
  ?levels:int ->
  ?edge_iters:int ->
  domain ->
  ((float * float) array -> bool array) ->
  t
(** [refine dom f] with [f] a bulk verdict backend: [f pts] returns
    one verdict per point, in order ([f] may fan the wave out over a
    pool — waves are assembled deterministically before the call).
    [f] is never called on an empty wave, so a fully-warm memoized
    refinement performs {e zero} backend calls. Defaults:
    [coarse = (8, 8)], [levels = 3], [edge_iters = 4] (each iteration
    halves the crossing bracket below the fine cell size). *)

val dense_mixed_cells :
  domain -> nx:int -> ny:int -> ((float * float) array -> bool array) ->
  (int * int) array * int
(** The dense oracle: evaluate the full [(nx+1) × (ny+1)] corner
    lattice (one wave, same corner coordinates as {!refine} at
    matching resolution) and return the sorted mixed cells plus the
    evaluation count. The reference the adaptive path is benchmarked
    and property-tested against. *)

val render : t -> string
(** ASCII map at fine-cell resolution: ['.'] inside (true), ['#']
    outside, ['x'] boundary cell. *)

val segments_csv : t -> string
(** [ax,ay,bx,by] per traced segment, floats as [%.17g]. *)
