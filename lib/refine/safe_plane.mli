(** Adaptive tracing of the strong-stability safe region in the
    [(q, r)] initial-state plane — {!Fluid.Safe_region.classify} as the
    verdict (safe / not safe), the batched SoA front as the backend, so
    one refinement wave is one lock-step front integration. *)

type store = (string -> bool option) * (string -> bool -> unit)
(** [(lookup, save)] verdict persistence hooks —
    [Store.Sweep.verdict_memo] adapts the content-addressed store to
    this shape. *)

val domain : ?r_max:float -> Fluid.Params.t -> Engine.domain
(** [q in [0, B]] × [r in [0, r_max]] (default [r_max = 2·C/N]) — the
    same plane {!Fluid.Safe_region.raster} rasterizes. *)

val verdicts :
  ?t_max:float ->
  ?jobs:int ->
  Fluid.Params.t ->
  (float * float) array ->
  bool array
(** Bulk verdict backend: [true] = [Safe]. One batched
    {!Fluid.Safe_region.classify_front} call (chunked over a pool when
    [jobs > 1]; byte-identical for any [jobs]). *)

val material : ?t_max:float -> Fluid.Params.t -> x:float -> y:float -> string
(** Store key material for one verdict: versioned tag + canonical
    parameter encoding + horizon + full-precision coordinates. *)

val trace :
  ?t_max:float ->
  ?jobs:int ->
  ?store:store ->
  ?coarse:int * int ->
  ?levels:int ->
  ?edge_iters:int ->
  ?r_max:float ->
  Fluid.Params.t ->
  Engine.t
(** Adaptively refine the safe-region boundary. With [?store] every
    cell verdict lands in the content-addressed store, so a warm
    re-trace runs zero front integrations while reporting the same
    logical [evaluations]. Defaults: [coarse = (8, 8)], [levels = 3],
    [edge_iters = 4]. *)
