(** Adaptive tracing of the fault-tolerance region in a 2-D severity
    plane: two {!Faultnet.Resilience.axis} severities composed onto one
    fault plan ([Resilience.plan_add]), each probed cell a full packet
    run checked against operational Definition 1. Where
    [Resilience.bisect] finds the margin along one axis, this traces
    the whole survive/violate frontier between two.

    Memoization happens one level down, at the probe-summary layer
    ([Resilience.run_summary ?memo]): with a store-backed memo a warm
    re-trace executes zero packet simulations, and the probe cache is
    shared with the 1-D margin sweeps. *)

val verdicts :
  ?memo:Faultnet.Resilience.memo ->
  ?jobs:int ->
  seed:int ->
  baseline_utilization:float ->
  Faultnet.Resilience.scenario ->
  Faultnet.Resilience.axis ->
  Faultnet.Resilience.axis ->
  (float * float) array ->
  bool array
(** [true] = the run at severities [(x, y)] keeps strong stability.
    One pool task per point; byte-identical for any [jobs]. *)

val trace :
  ?memo:Faultnet.Resilience.memo ->
  ?jobs:int ->
  ?coarse:int * int ->
  ?levels:int ->
  ?edge_iters:int ->
  seed:int ->
  Faultnet.Resilience.scenario ->
  Faultnet.Resilience.axis ->
  Faultnet.Resilience.axis ->
  Engine.t
(** Refine over [[0, max_severity ax_x] × [0, max_severity ax_y]].
    The fault-free baseline runs once (memoized like every probe).
    Defaults: [coarse = (4, 4)], [levels = 3], [edge_iters = 3]. *)
