module R = Faultnet.Resilience

let verdicts ?memo ?(jobs = 1) ~seed ~baseline_utilization sc ax_x ax_y pts =
  let t_end = sc.R.scen.Simnet.Scenario.t_end in
  let task (sx, sy) =
    let plan = Faultnet.Plan.with_seed Faultnet.Plan.none seed in
    let plan = R.plan_add plan ax_x ~severity:sx ~t_end in
    let plan = R.plan_add plan ax_y ~severity:sy ~t_end in
    match
      R.check_summary sc ~baseline_utilization
        (R.run_summary ?memo sc (Some plan))
    with
    | None -> true
    | Some _ -> false
  in
  if jobs <= 1 || Array.length pts <= 1 then Array.map task pts
  else
    Parallel.Pool.with_pool ~size:jobs (fun pool ->
        Parallel.Pool.map_array pool task pts)

let trace ?memo ?jobs ?(coarse = (4, 4)) ?(levels = 3) ?(edge_iters = 3) ~seed
    sc ax_x ax_y =
  let dom =
    {
      Engine.x0 = 0.;
      x1 = R.max_severity ax_x;
      y0 = 0.;
      y1 = R.max_severity ax_y;
    }
  in
  let s0 = R.run_summary ?memo sc None in
  Engine.refine ~coarse ~levels ~edge_iters dom
    (verdicts ?memo ?jobs ~seed ~baseline_utilization:s0.R.utilization sc ax_x
       ax_y)
