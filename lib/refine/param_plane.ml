type store = (string -> bool option) * (string -> bool -> unit)

let gains p ~x ~y =
  let ru = p.Fluid.Params.ru in
  let n = float_of_int p.Fluid.Params.n_flows in
  Fluid.Params.with_gains ~gi:(x /. (ru *. n)) ~gd:y p

let verdicts ?t_max ?(jobs = 1) apply pts =
  let task (x, y) =
    (Fluid.Stability.analyze ?t_max (apply ~x ~y)).Fluid.Stability
      .strongly_stable
  in
  if jobs <= 1 || Array.length pts <= 1 then Array.map task pts
  else
    Parallel.Pool.with_pool ~size:jobs (fun pool ->
        Parallel.Pool.map_array pool task pts)

let material ?t_max apply ~x ~y =
  Printf.sprintf "refine-param@v1\n%s\nt_max=%s"
    (Simnet.Scenario.encode_params (apply ~x ~y))
    (match t_max with
    | None -> "default"
    | Some t -> Printf.sprintf "%.17g" t)

let trace ?t_max ?jobs ?store ?coarse ?levels ?edge_iters apply dom =
  let memo =
    Option.map
      (fun (lookup, save) ->
        { Engine.key = (fun ~x ~y -> material ?t_max apply ~x ~y); lookup; save })
      store
  in
  Engine.refine ?memo ?coarse ?levels ?edge_iters dom
    (verdicts ?t_max ?jobs apply)
