type store = (string -> bool option) * (string -> bool -> unit)

let domain ?r_max p =
  let r_max =
    match r_max with
    | Some v -> v
    | None -> 2. *. Fluid.Params.equilibrium_rate p
  in
  { Engine.x0 = 0.; x1 = p.Fluid.Params.buffer; y0 = 0.; y1 = r_max }

let verdicts ?t_max ?(jobs = 1) p pts =
  Array.map
    (fun v -> v = Fluid.Safe_region.Safe)
    (Fluid.Safe_region.classify_front ?t_max ~jobs p pts)

let material ?t_max p ~x ~y =
  Printf.sprintf "refine-safe@v1\n%s\nt_max=%s\nq=%.17g\nr=%.17g"
    (Simnet.Scenario.encode_params p)
    (match t_max with
    | None -> "default"
    | Some t -> Printf.sprintf "%.17g" t)
    x y

let trace ?t_max ?jobs ?store ?coarse ?levels ?edge_iters ?r_max p =
  let memo =
    Option.map
      (fun (lookup, save) ->
        { Engine.key = (fun ~x ~y -> material ?t_max p ~x ~y); lookup; save })
      store
  in
  Engine.refine ?memo ?coarse ?levels ?edge_iters (domain ?r_max p)
    (verdicts ?t_max ?jobs p)
