type domain = { x0 : float; x1 : float; y0 : float; y1 : float }

type memo = {
  key : x:float -> y:float -> string;
  lookup : string -> bool option;
  save : string -> bool -> unit;
}

type leaf = { li : int; lj : int; lstride : int; lverdict : bool }
type segment = { ax : float; ay : float; bx : float; by : float }

type t = {
  dom : domain;
  coarse_x : int;
  coarse_y : int;
  levels : int;
  nx : int;
  ny : int;
  corners : (int * int * bool) array;
  leaves : leaf array;
  boundary_cells : (int * int) array;
  segments : segment array;
  evaluations : int;
}

let lattice_point dom ~n ~i lo hi =
  if i = 0 then lo
  else if i = n then hi
  else lo +. ((hi -. lo) *. float_of_int i /. float_of_int n)

let point t i j =
  ( lattice_point t.dom ~n:t.nx ~i t.dom.x0 t.dom.x1,
    lattice_point t.dom ~n:t.ny ~i:j t.dom.y0 t.dom.y1 )

(* Evaluate a wave of points: count every request as a logical
   evaluation, answer what the memo already knows, and hand the misses
   to the backend as one bulk call in wave order. The backend is never
   called on an empty wave. *)
let eval_wave ~memo ~evaluations f (pts : (float * float) array) =
  let m = Array.length pts in
  evaluations := !evaluations + m;
  if m = 0 then [||]
  else
    match memo with
    | None -> f pts
    | Some memo ->
        let keys = Array.map (fun (x, y) -> memo.key ~x ~y) pts in
        let cached = Array.map memo.lookup keys in
        let n_miss =
          Array.fold_left
            (fun acc c -> match c with None -> acc + 1 | Some _ -> acc)
            0 cached
        in
        let out = Array.make m false in
        if n_miss = 0 then begin
          Array.iteri
            (fun k c ->
              match c with Some v -> out.(k) <- v | None -> assert false)
            cached;
          out
        end
        else begin
          let miss = Array.make n_miss (0., 0.) in
          let mi = ref 0 in
          Array.iteri
            (fun k c ->
              match c with
              | None ->
                  miss.(!mi) <- pts.(k);
                  incr mi
              | Some _ -> ())
            cached;
          let vs = f miss in
          let mi = ref 0 in
          Array.iteri
            (fun k c ->
              match c with
              | Some v -> out.(k) <- v
              | None ->
                  out.(k) <- vs.(!mi);
                  incr mi;
                  memo.save keys.(k) out.(k))
            cached;
          out
        end

let refine ?memo ?(coarse = (8, 8)) ?(levels = 3) ?(edge_iters = 4) dom f =
  let cx, cy = coarse in
  if cx < 1 || cy < 1 then invalid_arg "Refine.Engine.refine: coarse < 1";
  if levels < 0 then invalid_arg "Refine.Engine.refine: levels < 0";
  if edge_iters < 0 then invalid_arg "Refine.Engine.refine: edge_iters < 0";
  if not (dom.x1 > dom.x0 && dom.y1 > dom.y0) then
    invalid_arg "Refine.Engine.refine: empty domain";
  let nx = cx lsl levels and ny = cy lsl levels in
  let px i = lattice_point dom ~n:nx ~i dom.x0 dom.x1 in
  let py j = lattice_point dom ~n:ny ~i:j dom.y0 dom.y1 in
  let evaluations = ref 0 in
  let known : (int, bool) Hashtbl.t = Hashtbl.create 1024 in
  let known_ids = ref [] in
  let corner_id i j = (i * (ny + 1)) + j in
  let eval_corners (ids : int array) =
    (* ids sorted, deduped, none evaluated yet *)
    let pts =
      Array.map (fun id -> (px (id / (ny + 1)), py (id mod (ny + 1)))) ids
    in
    let vs = eval_wave ~memo ~evaluations f pts in
    Array.iteri
      (fun k id ->
        Hashtbl.replace known id vs.(k);
        known_ids := id :: !known_ids)
      ids
  in
  let sort_dedupe ids =
    let ids = List.sort_uniq compare ids in
    Array.of_list ids
  in
  (* seed: the coarse corner lattice *)
  let stride0 = 1 lsl levels in
  let seed =
    List.concat_map
      (fun i ->
        List.init (cy + 1) (fun j -> corner_id (i * stride0) (j * stride0)))
      (List.init (cx + 1) Fun.id)
  in
  eval_corners (sort_dedupe seed);
  let cells =
    ref
      (List.concat_map
         (fun i -> List.init cy (fun j -> (i * stride0, j * stride0)))
         (List.init cx Fun.id))
  in
  let leaves_acc = ref [] in
  let boundary_acc = ref [] in
  let stride = ref stride0 in
  while !stride >= 1 do
    let s = !stride in
    let next = ref [] in
    let wave = ref [] in
    List.iter
      (fun (i0, j0) ->
        let v00 = Hashtbl.find known (corner_id i0 j0) in
        let v10 = Hashtbl.find known (corner_id (i0 + s) j0) in
        let v11 = Hashtbl.find known (corner_id (i0 + s) (j0 + s)) in
        let v01 = Hashtbl.find known (corner_id i0 (j0 + s)) in
        if v00 = v10 && v00 = v11 && v00 = v01 then
          leaves_acc :=
            { li = i0; lj = j0; lstride = s; lverdict = v00 } :: !leaves_acc
        else if s = 1 then boundary_acc := (i0, j0) :: !boundary_acc
        else begin
          let h = s / 2 in
          List.iter
            (fun (i, j) ->
              let id = corner_id i j in
              if not (Hashtbl.mem known id) then wave := id :: !wave)
            [
              (i0 + h, j0);
              (i0, j0 + h);
              (i0 + h, j0 + h);
              (i0 + s, j0 + h);
              (i0 + h, j0 + s);
            ];
          next :=
            (i0 + h, j0 + h) :: (i0 + h, j0) :: (i0, j0 + h) :: (i0, j0)
            :: !next
        end)
      !cells;
    (* one bulk call per level: corner waves stay deterministic (sorted
       lattice order) however the backend parallelizes internally *)
    let wave = sort_dedupe !wave in
    (* neighbors can nominate the same midpoint twice before it lands
       in [known]; the sort_uniq above already collapsed those *)
    eval_corners wave;
    cells := List.sort compare !next;
    stride := s / 2
  done;
  let boundary_cells = Array.of_list (List.rev !boundary_acc) in
  (* crossing edges of the boundary cells, deduped (neighbors share
     edges). Edge id = orient * |corners| + lower-left corner id;
     orient 0 = horizontal (to (i+1, j)), 1 = vertical (to (i, j+1)). *)
  let npts = (nx + 1) * (ny + 1) in
  let verdict i j = Hashtbl.find known (corner_id i j) in
  let edge_id orient i j = (orient * npts) + corner_id i j in
  let crossing = ref [] in
  Array.iter
    (fun (i, j) ->
      let v00 = verdict i j in
      let v10 = verdict (i + 1) j in
      let v11 = verdict (i + 1) (j + 1) in
      let v01 = verdict i (j + 1) in
      if v00 <> v10 then crossing := edge_id 0 i j :: !crossing;
      if v01 <> v11 then crossing := edge_id 0 i (j + 1) :: !crossing;
      if v00 <> v01 then crossing := edge_id 1 i j :: !crossing;
      if v10 <> v11 then crossing := edge_id 1 (i + 1) j :: !crossing)
    boundary_cells;
  let edges = sort_dedupe !crossing in
  let n_edges = Array.length edges in
  (* sub-cell crossing point on every crossing edge, located by
     bracketed bisection run in lock-step: each round evaluates the
     midpoints of all open brackets as one wave *)
  let eax = Array.make n_edges 0. in
  let eay = Array.make n_edges 0. in
  let ebx = Array.make n_edges 0. in
  let eby = Array.make n_edges 0. in
  let eva = Array.make n_edges false in
  let lo = Array.make n_edges 0. in
  let hi = Array.make n_edges 1. in
  Array.iteri
    (fun k id ->
      let orient = id / npts in
      let cid = id mod npts in
      let i = cid / (ny + 1) and j = cid mod (ny + 1) in
      eax.(k) <- px i;
      eay.(k) <- py j;
      if orient = 0 then begin
        ebx.(k) <- px (i + 1);
        eby.(k) <- py j
      end
      else begin
        ebx.(k) <- px i;
        eby.(k) <- py (j + 1)
      end;
      eva.(k) <- Hashtbl.find known cid)
    edges;
  for _ = 1 to if n_edges = 0 then 0 else edge_iters do
    let pts =
      Array.init n_edges (fun k ->
          let tm = 0.5 *. (lo.(k) +. hi.(k)) in
          ( eax.(k) +. (tm *. (ebx.(k) -. eax.(k))),
            eay.(k) +. (tm *. (eby.(k) -. eay.(k))) ))
    in
    let vs = eval_wave ~memo ~evaluations f pts in
    for k = 0 to n_edges - 1 do
      let tm = 0.5 *. (lo.(k) +. hi.(k)) in
      if vs.(k) = eva.(k) then lo.(k) <- tm else hi.(k) <- tm
    done
  done;
  let edge_cross = Hashtbl.create (max 16 n_edges) in
  Array.iteri
    (fun k id ->
      let tc = 0.5 *. (lo.(k) +. hi.(k)) in
      Hashtbl.replace edge_cross id
        ( eax.(k) +. (tc *. (ebx.(k) -. eax.(k))),
          eay.(k) +. (tc *. (eby.(k) -. eay.(k))) ))
    edges;
  (* the two diagonal codes (5 and 10) are topologically ambiguous:
     the same corner pattern fits both a connected diagonal band and
     two separated lobes. Probe each ambiguous cell's center as one
     extra wave (an asymptotic decider over the verdict itself) and
     pair the crossings to match — a fixed diagonal choice traces the
     wrong topology on whichever shape it didn't pick. *)
  let ambiguous =
    Array.of_list
      (List.filter
         (fun (i, j) ->
           let v00 = verdict i j and v10 = verdict (i + 1) j in
           v00 = verdict (i + 1) (j + 1)
           && v10 = verdict i (j + 1)
           && v00 <> v10)
         (Array.to_list boundary_cells))
  in
  let center_verdict = Hashtbl.create (max 16 (Array.length ambiguous)) in
  let center_pts =
    Array.map
      (fun (i, j) ->
        (0.5 *. (px i +. px (i + 1)), 0.5 *. (py j +. py (j + 1))))
      ambiguous
  in
  let center_vs = eval_wave ~memo ~evaluations f center_pts in
  Array.iteri
    (fun k cell -> Hashtbl.replace center_verdict cell center_vs.(k))
    ambiguous;
  (* marching squares: one segment per mixed cell connecting its
     crossing points (two for the ambiguous diagonal codes 5 and 10) *)
  let segments_acc = ref [] in
  Array.iter
    (fun (i, j) ->
      let b00 = verdict i j and b10 = verdict (i + 1) j in
      let b11 = verdict (i + 1) (j + 1) and b01 = verdict i (j + 1) in
      let code =
        (if b00 then 1 else 0)
        lor (if b10 then 2 else 0)
        lor (if b11 then 4 else 0)
        lor if b01 then 8 else 0
      in
      let w () = Hashtbl.find edge_cross (edge_id 1 i j) in
      let e () = Hashtbl.find edge_cross (edge_id 1 (i + 1) j) in
      let s () = Hashtbl.find edge_cross (edge_id 0 i j) in
      let n () = Hashtbl.find edge_cross (edge_id 0 i (j + 1)) in
      let seg (ax, ay) (bx, by) =
        segments_acc := { ax; ay; bx; by } :: !segments_acc
      in
      match code with
      | 1 | 14 -> seg (w ()) (s ())
      | 2 | 13 -> seg (s ()) (e ())
      | 4 | 11 -> seg (e ()) (n ())
      | 8 | 7 -> seg (n ()) (w ())
      | 3 | 12 -> seg (w ()) (e ())
      | 6 | 9 -> seg (s ()) (n ())
      | 5 ->
          if Hashtbl.find center_verdict (i, j) then begin
            (* center true: b00 and b11 form one connected band; cut
               off the two false corners instead *)
            seg (s ()) (e ());
            seg (w ()) (n ())
          end
          else begin
            seg (w ()) (s ());
            seg (e ()) (n ())
          end
      | 10 ->
          if Hashtbl.find center_verdict (i, j) then begin
            seg (w ()) (s ());
            seg (e ()) (n ())
          end
          else begin
            seg (s ()) (e ());
            seg (n ()) (w ())
          end
      | 0 | 15 -> assert false
      | _ -> assert false)
    boundary_cells;
  let corner_list =
    List.map
      (fun id -> (id / (ny + 1), id mod (ny + 1), Hashtbl.find known id))
      (List.sort_uniq compare !known_ids)
  in
  {
    dom;
    coarse_x = cx;
    coarse_y = cy;
    levels;
    nx;
    ny;
    corners = Array.of_list corner_list;
    leaves = Array.of_list (List.rev !leaves_acc);
    boundary_cells;
    segments = Array.of_list (List.rev !segments_acc);
    evaluations = !evaluations;
  }

let dense_mixed_cells dom ~nx ~ny f =
  if nx < 1 || ny < 1 then
    invalid_arg "Refine.Engine.dense_mixed_cells: grid too small";
  if not (dom.x1 > dom.x0 && dom.y1 > dom.y0) then
    invalid_arg "Refine.Engine.dense_mixed_cells: empty domain";
  let px i = lattice_point dom ~n:nx ~i dom.x0 dom.x1 in
  let py j = lattice_point dom ~n:ny ~i:j dom.y0 dom.y1 in
  let pts =
    Array.init
      ((nx + 1) * (ny + 1))
      (fun id -> (px (id / (ny + 1)), py (id mod (ny + 1))))
  in
  let vs = f pts in
  let v i j = vs.((i * (ny + 1)) + j) in
  let mixed = ref [] in
  for i = nx - 1 downto 0 do
    for j = ny - 1 downto 0 do
      let v00 = v i j in
      if not (v00 = v (i + 1) j && v00 = v (i + 1) (j + 1) && v00 = v i (j + 1))
      then mixed := (i, j) :: !mixed
    done
  done;
  (Array.of_list !mixed, Array.length pts)

let render t =
  let g = Bytes.make (t.nx * t.ny) '?' in
  Array.iter
    (fun l ->
      let c = if l.lverdict then '.' else '#' in
      for i = l.li to l.li + l.lstride - 1 do
        for j = l.lj to l.lj + l.lstride - 1 do
          Bytes.set g ((i * t.ny) + j) c
        done
      done)
    t.leaves;
  Array.iter
    (fun (i, j) -> Bytes.set g ((i * t.ny) + j) 'x')
    t.boundary_cells;
  let buf = Buffer.create ((t.nx + 2) * (t.ny + 1)) in
  Buffer.add_string buf
    (Printf.sprintf
       "adaptive refinement %dx%d ('.' inside, '#' outside, 'x' boundary); \
        %d evaluations\n"
       t.nx t.ny t.evaluations);
  for j = t.ny - 1 downto 0 do
    for i = 0 to t.nx - 1 do
      Buffer.add_char buf (Bytes.get g ((i * t.ny) + j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let segments_csv t =
  let buf = Buffer.create (64 * (1 + Array.length t.segments)) in
  Buffer.add_string buf "ax,ay,bx,by\n";
  Array.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%.17g,%.17g,%.17g,%.17g\n" s.ax s.ay s.bx s.by))
    t.segments;
  Buffer.contents buf
