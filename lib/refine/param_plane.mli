(** Adaptive tracing of stability regions in parameter space — the
    phase-plane basin figures' [(a, b)] normalized-gain plane, or any
    other two-parameter slice, with the nonlinear strong-stability
    verdict ({!Fluid.Stability.analyze}) at each probed point. *)

type store = (string -> bool option) * (string -> bool -> unit)

val gains : Fluid.Params.t -> x:float -> y:float -> Fluid.Params.t
(** Interpret [(x, y)] as the paper's normalized gains [(a, b)]:
    [a = N·Gi·Ru] (so [Gi = a / (Ru·N)]) and [b = Gd], applied over the
    base parameter point. *)

val verdicts :
  ?t_max:float ->
  ?jobs:int ->
  (x:float -> y:float -> Fluid.Params.t) ->
  (float * float) array ->
  bool array
(** [true] = strongly stable (numeric verdict) at [apply ~x ~y]. Each
    wave fans out over an order-preserving pool — byte-identical for
    any [jobs]. *)

val material :
  ?t_max:float ->
  (x:float -> y:float -> Fluid.Params.t) ->
  x:float ->
  y:float ->
  string
(** Key material: versioned tag + horizon + canonical encoding of the
    {e applied} parameter point (the parameters fully determine the
    verdict, so two planes sharing a point share its cache entry). *)

val trace :
  ?t_max:float ->
  ?jobs:int ->
  ?store:store ->
  ?coarse:int * int ->
  ?levels:int ->
  ?edge_iters:int ->
  (x:float -> y:float -> Fluid.Params.t) ->
  Engine.domain ->
  Engine.t
(** Adaptively refine the stable/unstable boundary of the plane
    [apply] parameterizes over [domain]. Defaults as
    {!Safe_plane.trace}. *)
