open Numerics

type metrics = {
  overshoot : float;
  undershoot : float;
  oscillations : int;
  settling_time : float option;
  decay_per_cycle : float option;
}

let slower_period p =
  Float.max
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Increase))
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Decrease))

(* Per-cycle decay from the chronological |x| magnitudes at axis
   crossings (zeros excluded): drop the first magnitude (start-up
   transient), then exp(mean log-ratio) over the rest. The sum runs
   newest pair to oldest — the accumulation order of the list-based
   fold this replaces — so results stay bit-identical. *)
let decay_of_mags mags n =
  if n < 3 then None
  else begin
    let s = ref 0. in
    for i = n - 1 downto 2 do
      s := !s +. log (mags.(i) /. mags.(i - 1))
    done;
    Some (exp (!s /. float_of_int (n - 2)))
  end

let measure ?horizon ?(band = 0.05) p =
  let horizon =
    match horizon with Some v -> v | None -> 20. *. slower_period p
  in
  let sys = Model.normalized_system p in
  let threshold = band *. p.Params.q0 in
  (* Streaming fold over the trajectory: the scan solver hands every
     sample the recording integrator would have stored (bit for bit)
     through one reused buffer, so nothing is retained per step. The
     guard set replicates [Trajectory.events_for] for the normalized
     system — [switch] is sigma = -(x + k·y), [axis] is y — evaluated
     straight off the packed buffer so no [Vec2] is built per step. *)
  let k = Params.k p in
  let guards =
    {
      Ode.gs_names = [| "switch"; "axis" |];
      gs_dirs = [| Ode.Both; Ode.Both |];
      gs_terminal = [| false; false |];
      gs_eval =
        (fun pt dst ->
          dst.(0) <- -.(pt.(1) +. (k *. pt.(2)));
          dst.(1) <- pt.(2));
    }
  in
  (* fold state: 0 = x_max, 1 = x_min, 2 = min x over the tail from the
     first switch, 3 = first switch time (nan = none yet), 4 = last
     time |x| > threshold (nan = never), 5 = last sample time,
     6 = tail-nonempty flag *)
  let acc = [| neg_infinity; infinity; infinity; nan; nan; nan; 0. |] in
  let on_point pt =
    let t = pt.(0) in
    let x = pt.(1) in
    if x > acc.(0) then acc.(0) <- x;
    if x < acc.(1) then acc.(1) <- x;
    if (not (Float.is_nan acc.(3))) && t >= acc.(3) then begin
      acc.(6) <- 1.;
      if x < acc.(2) then acc.(2) <- x
    end;
    if Float.abs x > threshold then acc.(4) <- t;
    acc.(5) <- t
  in
  (* axis-crossing magnitudes fold into a growable scratch array (the
     run's only data-dependent allocation); guard 0 is "switch",
     guard 1 is "axis", matching [gs_names] above *)
  let n_axis = ref 0 in
  let mags = ref (Array.make 32 0.) in
  let n_mags = ref 0 in
  let on_event_raw e pt =
    if e = 0 then begin
      if Float.is_nan acc.(3) then acc.(3) <- pt.(0)
    end
    else begin
      incr n_axis;
      let m = Float.abs pt.(1) in
      if m > 0. then begin
        if !n_mags = Array.length !mags then begin
          let bigger = Array.make (2 * !n_mags) 0. in
          Array.blit !mags 0 bigger 0 !n_mags;
          mags := bigger
        end;
        !mags.(!n_mags) <- m;
        incr n_mags
      end
    end
  in
  (* drive the scan solver directly ([Trajectory.scan] would rebuild
     its crossing lists from the occurrence records we are here to
     avoid); same tolerances, so the samples are bit-identical *)
  let (_ : Ode.scan_result) =
    Ode.solve_adaptive_auto_scan ~rtol:1e-9 ~atol:1e-12 ~guards
      ~record_occs:false ~on_event_raw ~on_point ~t_end:horizon
      (Phaseplane.System.to_auto sys) ~t0:0.
      ~y0:(Vec2.to_array (Model.start_point p))
  in
  let overshoot = acc.(0) in
  let undershoot =
    (* x_min after the first switching — [Series.tail_from] keeps
       samples with [t >= ct], which is exactly the tail fold above *)
    if Float.is_nan acc.(3) || acc.(6) = 0. then acc.(1) else acc.(2)
  in
  let settling_time =
    if Float.is_nan acc.(4) then Some 0.
    else if acc.(4) < acc.(5) -. (0.01 *. horizon) then Some acc.(4)
    else None
  in
  {
    overshoot;
    undershoot;
    oscillations = !n_axis;
    settling_time;
    decay_per_cycle = decay_of_mags !mags !n_mags;
  }

let sweep ?horizon ?band ?(jobs = 1) param_of values =
  let run v = (v, measure ?horizon ?band (param_of v)) in
  if jobs <= 1 then List.map run values
  else
    Parallel.Pool.with_pool ~size:jobs (fun pool ->
        Parallel.Pool.map pool run values)

let pp_metrics ppf m =
  Format.fprintf ppf
    "overshoot %g, undershoot %g, %d oscillations, settling %s, decay %s"
    m.overshoot m.undershoot m.oscillations
    (match m.settling_time with
    | Some t -> Printf.sprintf "%g s" t
    | None -> "none within horizon")
    (match m.decay_per_cycle with
    | Some d -> Printf.sprintf "%.5f/cycle" d
    | None -> "n/a")
