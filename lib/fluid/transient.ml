open Numerics

type metrics = {
  overshoot : float;
  undershoot : float;
  oscillations : int;
  settling_time : float option;
  decay_per_cycle : float option;
}

let slower_period p =
  Float.max
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Increase))
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Decrease))

let decay_of_extrema extrema =
  let mags =
    List.filter_map
      (fun { Phaseplane.Trajectory.cp; _ } ->
        let m = Float.abs cp.Vec2.x in
        if m > 0. then Some m else None)
      extrema
  in
  match mags with
  | _ :: (_ :: _ :: _ as tail) ->
      let rec ratios acc = function
        | a :: (b :: _ as rest) -> ratios (log (b /. a) :: acc) rest
        | [ _ ] | [] -> acc
      in
      let rs = ratios [] tail in
      if rs = [] then None
      else
        Some (exp (List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)))
  | _ -> None

let measure ?horizon ?(band = 0.05) p =
  let horizon =
    match horizon with Some v -> v | None -> 20. *. slower_period p
  in
  let sys = Model.normalized_system p in
  let tr = Phaseplane.Trajectory.integrate ~t_max:horizon sys (Model.start_point p) in
  let xs = Phaseplane.Trajectory.x_series tr in
  let overshoot = Phaseplane.Trajectory.x_max tr in
  let undershoot =
    match tr.Phaseplane.Trajectory.switch_crossings with
    | { Phaseplane.Trajectory.ct; _ } :: _ ->
        let tail = Series.tail_from xs ct in
        if Series.is_empty tail then Phaseplane.Trajectory.x_min tr
        else snd (Series.argmin tail)
    | [] -> Phaseplane.Trajectory.x_min tr
  in
  let threshold = band *. p.Params.q0 in
  (* settling: the last time |x| exceeds the band *)
  let settling_time =
    let last = ref None in
    Array.iteri
      (fun i v -> if Float.abs v > threshold then last := Some xs.Series.ts.(i))
      xs.Series.vs;
    match !last with
    | None -> Some 0.
    | Some t when t < xs.Series.ts.(Series.length xs - 1) -. (0.01 *. horizon)
      ->
        Some t
    | Some _ -> None
  in
  {
    overshoot;
    undershoot;
    oscillations = List.length tr.Phaseplane.Trajectory.axis_crossings;
    settling_time;
    decay_per_cycle = decay_of_extrema tr.Phaseplane.Trajectory.axis_crossings;
  }

let sweep ?horizon ?band ?(jobs = 1) param_of values =
  let run v = (v, measure ?horizon ?band (param_of v)) in
  if jobs <= 1 then List.map run values
  else
    Parallel.Pool.with_pool ~size:jobs (fun pool ->
        Parallel.Pool.map pool run values)

let pp_metrics ppf m =
  Format.fprintf ppf
    "overshoot %g, undershoot %g, %d oscillations, settling %s, decay %s"
    m.overshoot m.undershoot m.oscillations
    (match m.settling_time with
    | Some t -> Printf.sprintf "%g s" t
    | None -> "none within horizon")
    (match m.decay_per_cycle with
    | Some d -> Printf.sprintf "%.5f/cycle" d
    | None -> "n/a")
