open Numerics

type metrics = {
  overshoot : float;
  undershoot : float;
  oscillations : int;
  settling_time : float option;
  decay_per_cycle : float option;
}

let slower_period p =
  Float.max
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Increase))
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Decrease))

let decay_of_extrema extrema =
  let mags =
    List.filter_map
      (fun { Phaseplane.Trajectory.cp; _ } ->
        let m = Float.abs cp.Vec2.x in
        if m > 0. then Some m else None)
      extrema
  in
  match mags with
  | _ :: (_ :: _ :: _ as tail) ->
      let rec ratios acc = function
        | a :: (b :: _ as rest) -> ratios (log (b /. a) :: acc) rest
        | [ _ ] | [] -> acc
      in
      let rs = ratios [] tail in
      if rs = [] then None
      else
        Some (exp (List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)))
  | _ -> None

let measure ?horizon ?(band = 0.05) p =
  let horizon =
    match horizon with Some v -> v | None -> 20. *. slower_period p
  in
  let sys = Model.normalized_system p in
  let threshold = band *. p.Params.q0 in
  (* Streaming fold over the trajectory: the scan solver hands every
     sample the recording integrator would have stored (bit for bit)
     through one reused buffer, so nothing is retained per step. The
     guard set replicates [Trajectory.events_for] for the normalized
     system — [switch] is sigma = -(x + k·y), [axis] is y — evaluated
     straight off the packed buffer so no [Vec2] is built per step. *)
  let k = Params.k p in
  let guards =
    {
      Ode.gs_names = [| "switch"; "axis" |];
      gs_dirs = [| Ode.Both; Ode.Both |];
      gs_terminal = [| false; false |];
      gs_eval =
        (fun pt dst ->
          dst.(0) <- -.(pt.(1) +. (k *. pt.(2)));
          dst.(1) <- pt.(2));
    }
  in
  (* fold state: 0 = x_max, 1 = x_min, 2 = min x over the tail from the
     first switch, 3 = first switch time (nan = none yet), 4 = last
     time |x| > threshold (nan = never), 5 = last sample time,
     6 = tail-nonempty flag *)
  let acc = [| neg_infinity; infinity; infinity; nan; nan; nan; 0. |] in
  let on_point pt =
    let t = pt.(0) in
    let x = pt.(1) in
    if x > acc.(0) then acc.(0) <- x;
    if x < acc.(1) then acc.(1) <- x;
    if (not (Float.is_nan acc.(3))) && t >= acc.(3) then begin
      acc.(6) <- 1.;
      if x < acc.(2) then acc.(2) <- x
    end;
    if Float.abs x > threshold then acc.(4) <- t;
    acc.(5) <- t
  in
  let on_event (oc : Ode.occurrence) =
    if String.equal oc.Ode.oc_name "switch" && Float.is_nan acc.(3) then
      acc.(3) <- oc.Ode.oc_t
  in
  let sc =
    Phaseplane.Trajectory.scan ~t_max:horizon ~guards ~on_event ~on_point sys
      (Model.start_point p)
  in
  let overshoot = acc.(0) in
  let undershoot =
    (* x_min after the first switching — [Series.tail_from] keeps
       samples with [t >= ct], which is exactly the tail fold above *)
    if Float.is_nan acc.(3) || acc.(6) = 0. then acc.(1) else acc.(2)
  in
  let settling_time =
    if Float.is_nan acc.(4) then Some 0.
    else if acc.(4) < acc.(5) -. (0.01 *. horizon) then Some acc.(4)
    else None
  in
  {
    overshoot;
    undershoot;
    oscillations = List.length sc.Phaseplane.Trajectory.scan_axis;
    settling_time;
    decay_per_cycle = decay_of_extrema sc.Phaseplane.Trajectory.scan_axis;
  }

let sweep ?horizon ?band ?(jobs = 1) param_of values =
  let run v = (v, measure ?horizon ?band (param_of v)) in
  if jobs <= 1 then List.map run values
  else
    Parallel.Pool.with_pool ~size:jobs (fun pool ->
        Parallel.Pool.map pool run values)

let pp_metrics ppf m =
  Format.fprintf ppf
    "overshoot %g, undershoot %g, %d oscillations, settling %s, decay %s"
    m.overshoot m.undershoot m.oscillations
    (match m.settling_time with
    | Some t -> Printf.sprintf "%g s" t
    | None -> "none within horizon")
    (match m.decay_per_cycle with
    | Some d -> Printf.sprintf "%.5f/cycle" d
    | None -> "n/a")
