open Numerics

type result = {
  x : Series.t;
  y : Series.t;
  growth_per_cycle : float option;
}

let decrease_period p =
  2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Decrease)

(* Geometric-mean ratio of successive |x| extrema magnitudes (skipping the
   first, which is the launch transient). *)
let growth_of_extrema extrema =
  let mags =
    List.filter_map
      (fun (_, v, _) ->
        let m = Float.abs v in
        if m > 0. then Some m else None)
      extrema
  in
  match mags with
  | _ :: (_ :: _ :: _ as tail) ->
      let rec ratios acc = function
        | a :: (b :: _ as rest) -> ratios (log (b /. a) :: acc) rest
        | [ _ ] | [] -> acc
      in
      let rs = ratios [] tail in
      if rs = [] then None
      else
        Some (exp (List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)))
  | _ -> None

let simulate ?h ?t_end ?x0 ?y0 ~tau p =
  if tau < 0. then invalid_arg "Delayed.simulate: negative tau";
  let period = decrease_period p in
  let h = match h with Some v -> v | None -> period /. 400. in
  let t_end = match t_end with Some v -> v | None -> 20. *. period in
  let x0 = match x0 with Some v -> v | None -> -.p.Params.q0 in
  let y0 = match y0 with Some v -> v | None -> 0. in
  let a = Params.a p and b = Params.b p and k = Params.k p in
  let c = p.Params.capacity in
  let steps = int_of_float (Float.ceil (t_end /. h)) in
  let xs = Array.make (steps + 1) x0 in
  let ys = Array.make (steps + 1) y0 in
  (* linear interpolation into the recorded history, folded directly into
     the switching function g = x(t-tau) + k*y(t-tau); before t = 0 the
     system sat at the initial state. Returns a bare float so the inner
     loop stays allocation-free. *)
  let delayed_g filled t =
    let td = t -. tau in
    if td <= 0. then x0 +. (k *. y0)
    else begin
      let fi = td /. h in
      let i0 = Stdlib.min filled (int_of_float (Float.floor fi)) in
      let i1 = Stdlib.min filled (i0 + 1) in
      let frac = fi -. float_of_int i0 in
      xs.(i0)
      +. (frac *. (xs.(i1) -. xs.(i0)))
      +. (k *. (ys.(i0) +. (frac *. (ys.(i1) -. ys.(i0)))))
    end
  in
  (* RK4 via the in-place stepper (zero allocation per step); the delayed
     terms are frozen over the step at their midpoint value, which is
     second-order accurate and keeps the stage structure simple
     (h << tau regime). [g_cur] carries the frozen value into the field. *)
  let g_cur = ref 0. in
  let field (s : float array) (dst : float array) =
    let g = !g_cur in
    dst.(0) <- s.(1);
    dst.(1) <- (if -.g >= 0. then -.a *. g else -.b *. (s.(1) +. c) *. g)
  in
  let ws = Ode.workspace 2 in
  let state = [| x0; y0 |] in
  for i = 0 to steps - 1 do
    let t = float_of_int i *. h in
    g_cur := delayed_g i (t +. (h /. 2.));
    Ode.step_auto_into ws Ode.Rk4 field state h state;
    xs.(i + 1) <- state.(0);
    ys.(i + 1) <- state.(1)
  done;
  let ts = Array.init (steps + 1) (fun i -> float_of_int i *. h) in
  let x_series = Series.make ts xs in
  let y_series = Series.make ts ys in
  {
    x = x_series;
    y = y_series;
    growth_per_cycle = growth_of_extrema (Series.local_extrema x_series);
  }

let is_stable ?h ?t_end ~tau p =
  let r = simulate ?h ?t_end ~tau p in
  match r.growth_per_cycle with
  | Some g -> g < 1.
  | None ->
      (* no sustained oscillation: check the trajectory stayed bounded *)
      Float.abs (Stats.max r.x.Series.vs) < 100. *. p.Params.q0

let critical_delay ?tau_max ?(tol = 0.02) p =
  let tau_max =
    match tau_max with Some v -> v | None -> decrease_period p
  in
  if is_stable ~tau:tau_max p then None
  else begin
    let lo = ref 0. and hi = ref tau_max in
    while !hi -. !lo > tol *. tau_max do
      let mid = 0.5 *. (!lo +. !hi) in
      if is_stable ~tau:mid p then lo := mid else hi := mid
    done;
    Some (0.5 *. (!lo +. !hi))
  end
