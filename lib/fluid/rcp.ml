open Numerics

type variant = By_capacity | By_load

type params = {
  base : Params.t;
  alpha : float;
  beta : float;
  tau : float;
  variant : variant;
}

let default_alpha = 0.4
let default_beta = 0.226
let default_tau = 1.2e-4

let make ?(alpha = default_alpha) ?(beta = default_beta) ?(tau = default_tau)
    ?(variant = By_capacity) base =
  if not (alpha > 0.) then invalid_arg "Rcp.make: alpha must be > 0";
  if not (beta >= 0.) then invalid_arg "Rcp.make: beta must be >= 0";
  if not (tau > 0.) then invalid_arg "Rcp.make: tau must be > 0";
  { base; alpha; beta; tau; variant }

let equilibrium p =
  (0., p.base.Params.capacity /. float_of_int p.base.Params.n_flows)

let char_poly p = (p.alpha /. p.tau, p.beta /. (p.tau *. p.tau))

let lti p =
  if p.beta = 0. then None
  else
    let m, n = char_poly p in
    Some (Control.Lti2.make ~m ~n)

let stable p =
  let m, n = char_poly p in
  Control.Routh.second_order n m

let damping_ratio p =
  if p.beta = 0. then infinity else p.alpha /. (2. *. sqrt p.beta)

let settling_time p = Option.map Control.Lti2.settling_time_2pct (lti p)

let eigenvalues p =
  match lti p with
  | Some l -> Control.Lti2.eigenvalues l
  | None -> Mat2.Real_pair (-.p.alpha /. p.tau, 0.)

let to_xy p ~q ~r =
  Vec2.make q
    ((float_of_int p.base.Params.n_flows *. r) -. p.base.Params.capacity)

let of_xy p (v : Vec2.t) =
  ( v.Vec2.x,
    (v.Vec2.y +. p.base.Params.capacity)
    /. float_of_int p.base.Params.n_flows )

(* Both variants share the correction term [alpha·y + beta·x/tau] (the
   normalized image of [alpha·(C − load) − beta·q/tau], sign flipped);
   the in-place and batched right-hand sides repeat the closure
   expressions verbatim so the fast solver paths are bit-identical to
   the closure dispatch — same contract as [Model.normalized_system]. *)
let system p =
  let alpha = p.alpha and beta = p.beta and tau = p.tau in
  let c = p.base.Params.capacity in
  match p.variant with
  | By_load ->
      let f (v : Vec2.t) =
        Vec2.make v.Vec2.y
          (-.((alpha *. v.Vec2.y) +. (beta *. v.Vec2.x /. tau)) /. tau)
      in
      let rhs (y : float array) (dst : float array) =
        dst.(0) <- y.(1);
        dst.(1) <- -.((alpha *. y.(1)) +. (beta *. y.(0) /. tau)) /. tau
      in
      let batch (bt : Ode.Batch.t) xs ys dxs dys =
        let n = bt.Ode.Batch.n in
        for i = 0 to n - 1 do
          let yv = Array.unsafe_get ys i in
          Array.unsafe_set dys i
            (-.((alpha *. yv) +. (beta *. Array.unsafe_get xs i /. tau))
            /. tau)
        done;
        Array.blit ys 0 dxs 0 n
      in
      Phaseplane.System.Smooth_fast { f; rhs; batch }
  | By_capacity ->
      let f (v : Vec2.t) =
        Vec2.make v.Vec2.y
          (-.((v.Vec2.y +. c)
             *. ((alpha *. v.Vec2.y) +. (beta *. v.Vec2.x /. tau)))
          /. (c *. tau))
      in
      let rhs (y : float array) (dst : float array) =
        dst.(0) <- y.(1);
        dst.(1) <-
          -.((y.(1) +. c) *. ((alpha *. y.(1)) +. (beta *. y.(0) /. tau)))
          /. (c *. tau)
      in
      let batch (bt : Ode.Batch.t) xs ys dxs dys =
        let n = bt.Ode.Batch.n in
        for i = 0 to n - 1 do
          let yv = Array.unsafe_get ys i in
          Array.unsafe_set dys i
            (-.((yv +. c)
               *. ((alpha *. yv) +. (beta *. Array.unsafe_get xs i /. tau)))
            /. (c *. tau))
        done;
        Array.blit ys 0 dxs 0 n
      in
      Phaseplane.System.Smooth_fast { f; rhs; batch }

let start_point p =
  let _, rstar = equilibrium p in
  to_xy p ~q:0. ~r:(0.3 *. rstar)

type phys = { q : Series.t; r : Series.t; dropped_bits : float }

let simulate ?(h = 1e-6) ?q_init ?r_init ~t_end p =
  if h <= 0. then invalid_arg "Rcp.simulate: h <= 0";
  if t_end <= 0. then invalid_arg "Rcp.simulate: t_end <= 0";
  let n = float_of_int p.base.Params.n_flows in
  let c = p.base.Params.capacity and bsize = p.base.Params.buffer in
  let alpha = p.alpha and beta = p.beta and tau = p.tau in
  let q_init = match q_init with Some v -> v | None -> 0. in
  let r_init =
    match r_init with Some v -> v | None -> 0.3 *. (c /. n)
  in
  let wall_eps = 1e-9 *. bsize in
  (* Clamped physical model: queue variation is zero at the buffer
     walls (the router's counters cannot see bits that were never
     enqueued), but the control law still reads the raw arrival rate. *)
  let field _t (y : float array) =
    let q = y.(0) and r = y.(1) in
    let inflow = (n *. r) -. c in
    let dq =
      if q <= wall_eps && inflow < 0. then 0.
      else if q >= bsize -. wall_eps && inflow > 0. then 0.
      else inflow
    in
    let corr = (alpha *. (c -. (n *. r))) -. (beta *. q /. tau) in
    let dr =
      match p.variant with
      | By_capacity -> r *. corr /. (c *. tau)
      | By_load -> corr /. (n *. tau)
    in
    [| dq; dr |]
  in
  let steps = int_of_float (Float.ceil (t_end /. h)) in
  let ts = Array.make (steps + 1) 0. in
  let qs = Array.make (steps + 1) q_init in
  let rs = Array.make (steps + 1) r_init in
  let state = ref [| q_init; r_init |] in
  let dropped = ref 0. in
  for i = 1 to steps do
    let t = float_of_int (i - 1) *. h in
    let y = Ode.step Ode.Rk4 field t !state h in
    if y.(0) > bsize then begin
      dropped := !dropped +. (y.(0) -. bsize);
      y.(0) <- bsize
    end;
    if y.(0) < 0. then y.(0) <- 0.;
    if y.(1) < 0. then y.(1) <- 0.;
    state := y;
    ts.(i) <- float_of_int i *. h;
    qs.(i) <- y.(0);
    rs.(i) <- y.(1)
  done;
  { q = Series.make ts qs; r = Series.make ts rs; dropped_bits = !dropped }
