(** RCP (Rate Control Protocol) fluid model — the rate-based
    counterpart of the BCN loop, after Valluri's phase-plane treatment.

    The router advertises one fair rate [R] to every flow and updates it
    once per control interval [tau] from two measurements: the aggregate
    arrival rate [y = N·R] and the standing queue [q]. Valluri analyzes
    two proposed update laws; both share the proportional-plus-queue
    correction term

    {v alpha·(C − y) − beta·q/tau v}

    and differ only in how it is applied:

    - {!By_capacity} (the RCP-AC form, Dukkipati's RCP): the correction
      is applied {e multiplicatively}, scaled by the advertised rate
      over capacity — [dR/dt = R·(alpha·(C−y) − beta·q/tau)/(C·tau)].
    - {!By_load}: the correction is shared {e additively} among the [N]
      flows — [dR/dt = (alpha·(C−y) − beta·q/tau)/(N·tau)].

    Both laws have the unique equilibrium [(q, R) = (0, C/N)] and the
    {e same} linearization there: in normalized coordinates
    [x = q − q*], [y = N·R − C],

    {v x'' + (alpha/tau)·x' + (beta/tau²)·x = 0 v}

    i.e. a second-order loop with damping ratio [alpha/(2·sqrt beta)],
    stable for every [alpha, beta > 0] — no case split, unlike BCN's
    Theorem 1. Abuthahir, Raina & Voice's ablation asks what the queue
    term buys: with [beta = 0] the poles degenerate to [{0, −alpha/tau}]
    — the rate mismatch still dies out, but the queue becomes a pure
    integrator of the transient and settles at an arbitrary offset
    instead of draining (only marginal stability). {!simulate}
    reproduces that numerically; {!lti} returns [None] in that regime
    because the loop is no longer second-order stable. *)

type variant =
  | By_capacity  (** multiplicative update, scaled by [R/C] (RCP-AC) *)
  | By_load  (** additive update, shared over the [N] flows *)

type params = private {
  base : Params.t;  (** link and population: [n_flows], [capacity], [buffer] *)
  alpha : float;  (** rate-mismatch gain, dimensionless *)
  beta : float;  (** queue-drain gain, dimensionless; [0] = ablation *)
  tau : float;  (** control interval / RTT proxy, seconds *)
  variant : variant;
}

val default_alpha : float
(** [0.4] — the stock RCP gain (Dukkipati & McKeown). *)

val default_beta : float
(** [0.226] — the stock RCP queue gain. *)

val default_tau : float
(** [120 µs] — 100 frame times at 10 Gbit/s; matches the packet
    model's default control interval so fluid and packet runs describe
    the same loop. *)

val make :
  ?alpha:float ->
  ?beta:float ->
  ?tau:float ->
  ?variant:variant ->
  Params.t ->
  params
(** Raises [Invalid_argument] unless [alpha > 0], [beta >= 0] and
    [tau > 0]. Defaults: the stock gains above and [By_capacity]. *)

val equilibrium : params -> float * float
(** [(0, C/N)] — empty queue, the fair share, for both variants and
    any positive gains. *)

val char_poly : params -> float * float
(** [(m, n)] of the shared linearization [x'' + m·x' + n·x = 0]:
    [m = alpha/tau], [n = beta/tau²]. *)

val lti : params -> Control.Lti2.t option
(** The linearized loop as a standard second-order system — [None] when
    [beta = 0] (the ablated loop has a pole at the origin and is not
    representable as a damped oscillator). *)

val stable : params -> bool
(** Routh test on {!char_poly}: true iff [beta > 0] (given the
    constructor's [alpha > 0]). Valluri's headline result — RCP has no
    unstable gain region, only the [beta = 0] marginal boundary. *)

val damping_ratio : params -> float
(** [alpha / (2·sqrt beta)]; [infinity] when [beta = 0]. Note it is
    independent of [tau] — the interval sets the time scale, not the
    shape, of the transient. *)

val settling_time : params -> float option
(** 2%% settling-time estimate of the linearized loop, when [beta > 0]. *)

val eigenvalues : params -> Numerics.Mat2.eigenvalues
(** Poles of the linearization; [Real_pair (−alpha/tau, 0.)] ordered as
    [(l1, l2)] with [l1 <= l2] in the [beta = 0] ablation. *)

val to_xy : params -> q:float -> r:float -> Numerics.Vec2.t
(** Physical [(q, R)] to normalized [(x, y) = (q − q*, N·R − C)]. *)

val of_xy : params -> Numerics.Vec2.t -> float * float
(** Inverse of {!to_xy}. *)

val system : params -> Phaseplane.System.t
(** The normalized dynamics as a phase-plane system. RCP is smooth —
    there is no switching line — so this is a
    {!Phaseplane.System.Smooth_fast} carrying allocation-free
    right-hand sides that mirror the closure bit for bit; portraits,
    safe regions and refine traces work on it unchanged. *)

val start_point : params -> Numerics.Vec2.t
(** Normalized image of the cold start [(q, R) = (0, 0.3·C/N)] — the
    same 30%%-of-fair-share start the packet model uses. *)

(** {1 Clamped physical simulation} *)

type phys = {
  q : Numerics.Series.t;  (** queue, bits *)
  r : Numerics.Series.t;  (** advertised rate, bit/s *)
  dropped_bits : float;  (** overflow clipped at the buffer wall *)
}

val simulate :
  ?h:float -> ?q_init:float -> ?r_init:float -> t_end:float -> params -> phys
(** Integrate the physical model with the queue clamped to
    [[0, buffer]] and the rate to [>= 0] (RK4, step [h], default
    [1 µs]). Defaults: [q_init = 0], [r_init = 0.3·C/N]. This is the
    reference trace for the packet-vs-fluid agreement test and the
    queue-term ablation experiment. Raises [Invalid_argument] on
    non-positive [h] or [t_end]. *)
