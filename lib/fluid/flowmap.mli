(** Piecewise closed-form flow of the linearized switched BCN system.

    The paper's Case-1/Case-2 proofs chain the per-region closed forms
    across switching-line crossings: integrate the current region's exact
    solution until it hits [x + k·y = 0], switch regions, repeat. This
    module implements that chain for any region shape (spiral, node,
    critical), giving semi-analytic trajectories whose only numeric step
    is scalar root finding on a closed-form function — no ODE solver.

    Used to evaluate the paper's [max¹x]/[min¹x] (eqns (36)/(37)) and
    [max²x] (eqn (38)) without transcribing the error-prone chained
    formulas, and to cross-validate the numerical integrator. *)

type segment = {
  region : Linearized.region;
  t_start : float;  (** absolute time at segment entry *)
  p_start : Numerics.Vec2.t;
  duration : float option;
      (** time to the next switching-line crossing; [None] when the
          segment approaches the equilibrium without another crossing *)
  p_end : Numerics.Vec2.t option;  (** crossing point, when it exists *)
  extremum : (float * float) option;
      (** [(absolute time, x value)] of the [y = 0] crossing inside the
          segment — the local extremum of [x] *)
}

val solution :
  Params.t -> Linearized.region -> x0:float -> y0:float -> float ->
  float * float
(** Exact linearized solution of the given region from [(x0, y0)],
    dispatched on the region's shape. *)

val trace :
  ?max_segments:int -> Params.t -> Numerics.Vec2.t -> segment list
(** Chain segments from the initial point (default [max_segments = 8]).
    The initial region is decided by the sign of [sigma]; on the line,
    the increase region is entered (matching {!Phaseplane.System.eval}). *)

val sample :
  Params.t ->
  segment list ->
  dt:float ->
  (float * Numerics.Vec2.t) list
(** Sample the chained closed-form trajectory every [dt] (absolute time),
    for plotting; segments without a crossing are sampled for five time
    constants of their slowest mode. *)

val first_overshoot : Params.t -> float option
(** [max¹x]: the first local maximum of [x] after the trajectory from
    [(−q0, 0)] enters the decrease region — the semi-analytic evaluation
    of eqn (36) (Case 1) / eqn (38) (Case 2). [None] when the trajectory
    never produces one (Cases 3–5: no overshoot of the reference). *)

val first_undershoot : Params.t -> float option
(** [min¹x]: the first local minimum after the trajectory re-enters the
    increase region — eqn (37). *)

val excursions : Params.t -> float option * float option
(** [(first_overshoot p, first_undershoot p)] computed from a single
    segment trace instead of two. *)
