(** BCN system parameters and the derived fluid-model coefficients.

    Units are SI throughout: bits, seconds, bit/s. The paper's worked
    example (Theorem 1, Remarks) uses N = 50 flows, C = 10 Gbit/s,
    q0 = 2.5 Mbit, Gi = 4, Gd = 1/128, Ru = 8 Mbit/s and the draft-standard
    sampling parameters w = 2, pm = 0.01; {!default} is exactly that
    configuration with the bandwidth-delay-product buffer B = 5 Mbit. *)

type t = private {
  n_flows : int;  (** N — number of homogeneous sources *)
  capacity : float;  (** C — bottleneck capacity, bit/s *)
  w : float;  (** weight of the queue-variation term in sigma *)
  pm : float;  (** sampling probability (deterministic 1/pm sampling) *)
  q0 : float;  (** reference queue length, bits *)
  buffer : float;  (** B — buffer size, bits *)
  qsc : float;  (** severe-congestion (PAUSE) threshold, bits *)
  gi : float;  (** Gi — additive-increase gain *)
  gd : float;  (** Gd — multiplicative-decrease gain *)
  ru : float;  (** Ru — rate increase unit, bit/s *)
  mu : float;  (** initial per-source rate, bit/s *)
}

val make :
  ?w:float ->
  ?pm:float ->
  ?qsc:float ->
  ?mu:float ->
  n_flows:int ->
  capacity:float ->
  q0:float ->
  buffer:float ->
  gi:float ->
  gd:float ->
  ru:float ->
  unit ->
  t
(** Defaults: [w = 2], [pm = 0.01], [qsc = 0.9·buffer], [mu = 0].
    Raises [Invalid_argument] when any constraint fails:
    positive N, C, q0, B, Gi, Gd, Ru, w, pm; [pm <= 1]; [q0 < B];
    [q0 <= qsc <= B]; [0 <= mu]. *)

val default : t
(** The paper's Theorem-1 example with the BDP buffer (5 Mbit). *)

val with_buffer : t -> float -> t
(** Functional update of [buffer] (and [qsc], kept at the same fraction). *)

val with_gains : ?gi:float -> ?gd:float -> ?ru:float -> t -> t
val with_q0 : t -> float -> t
val with_flows : t -> int -> t

val with_capacity : t -> float -> t
(** Functional update of [capacity]. The derived coefficients [k],
    {!a_threshold}, {!b_threshold} and {!equilibrium_rate} follow
    automatically (they are computed, not stored) — this is the
    capacity axis of the [(N, C)] stability plane. *)

val with_sampling : ?w:float -> ?pm:float -> t -> t

(** {1 Derived fluid-model coefficients (paper §IV.A)} *)

val a : t -> float
(** [a = Ru·Gi·N]. *)

val b : t -> float
(** [b = Gd]. *)

val k : t -> float
(** [k = w / (pm·C)] — slope parameter of the switching line [x + k·y = 0]. *)

val equilibrium_rate : t -> float
(** [C/N] — per-source rate at the equilibrium. *)

val a_threshold : t -> float
(** [4·pm²·C²/w² = 4/k²] — the Case boundary for the increase subsystem. *)

val b_threshold : t -> float
(** [4·pm²·C/w² = 4/(k²·C)] — the Case boundary for the decrease
    subsystem. *)

val loop_params : t -> Control.Linear_baseline.loop_params
(** Projection for the linear-analysis baseline. *)

val bdp_buffer : t -> rtt:float -> float
(** Bandwidth-delay-product rule of thumb: [C·rtt]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
