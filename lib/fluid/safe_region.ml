open Numerics

type verdict = Safe | Overflow | Underflow

type raster = {
  q_grid : float array;
  r_grid : float array;
  q_max : float;
  r_max : float;
  cells : verdict array array;
  safe_fraction : float;
}

let slower_period p =
  Float.max
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Increase))
    (2. *. Float.pi /. sqrt (Linearized.stiffness p Linearized.Decrease))

(* Batched verdict kernel. The physical model is stepped exactly as
   [Model.simulate_physical] steps it — RK4 on the clamped right-hand
   side with the same wall/idle accounting expressions (the batched RK4
   mirrors [Ode.step] bit for bit) — but over a whole front of initial
   states at once, in preallocated SoA lanes, recording only the three
   verdict bits per lane instead of full time series. Two consequences:

   - zero minor-heap allocation per step (no series, no stage arrays,
     no [Vec2]s), which is where the b1 bench row's minor words go;
   - a lane whose verdict is decided is frozen immediately: [Overflow]
     has priority over [Underflow] in the verdict order below, so the
     first dropped bit decides a lane no matter what follows — idle
     signals decide nothing until the horizon, so only drops freeze.

   The verdicts are bit-identical to the [simulate_physical]-based
   classification (the test suite compares them cell by cell). *)
let classify_batch ~t_end ~h p (pts : (float * float) array) =
  let m = Array.length pts in
  let nf = float_of_int p.Params.n_flows in
  let c = p.Params.capacity and bsize = p.Params.buffer in
  let gd = p.Params.gd in
  let giru = p.Params.gi *. p.Params.ru in
  let q0 = p.Params.q0 in
  let wc = p.Params.w /. (p.Params.pm *. p.Params.capacity) in
  let wall_eps = 1e-9 *. bsize in
  let bt = Ode.Batch.create m in
  let xs = bt.Ode.Batch.xs and ys = bt.Ode.Batch.ys in
  Array.iteri
    (fun i (q, r) ->
      xs.(i) <- q;
      ys.(i) <- r)
    pts;
  (* [Model.simulate_physical]'s [deriv], one sweep per RK stage:
     [s = (q0 -. q) -. ((w /. (pm *. c)) *. dq)] and
     [gi *. ru *. s = (gi *. ru) *. s] hoist to [wc]/[giru] without
     changing a bit (same operations, same order). *)
  let deriv _bt (qs : float array) (rs : float array) (dqs : float array)
      (drs : float array) =
    for i = 0 to m - 1 do
      let q = Array.unsafe_get qs i and r = Array.unsafe_get rs i in
      let inflow = (nf *. r) -. c in
      let dq =
        if q <= wall_eps && inflow < 0. then 0.
        else if q >= bsize -. wall_eps && inflow > 0. then 0.
        else inflow
      in
      let s = (q0 -. q) -. (wc *. dq) in
      let dr = if s >= 0. then giru *. s else gd *. s *. Float.max r 0. in
      Array.unsafe_set dqs i dq;
      Array.unsafe_set drs i dr
    done
  in
  Ode.Batch.set_h bt h;
  let overflow = Bytes.make m '\000' in
  let idle = Bytes.make m '\000' in
  let warmed = Bytes.make m '\000' in
  let steps = int_of_float (Float.ceil (t_end /. h)) in
  let n_active = ref m in
  let i = ref 1 in
  while !i <= steps && !n_active > 0 do
    Ode.Batch.step_rk4 bt deriv;
    for j = 0 to m - 1 do
      if Ode.Batch.is_active bt j then
        (* wall clamps and accounting, in [simulate_physical]'s order *)
        if xs.(j) > bsize then begin
          Bytes.unsafe_set overflow j '\001';
          Ode.Batch.set_active bt j false;
          decr n_active
        end
        else begin
          if xs.(j) < 0. then xs.(j) <- 0.;
          if ys.(j) < 0. then ys.(j) <- 0.;
          if Bytes.unsafe_get warmed j = '\000' && xs.(j) > wall_eps then
            Bytes.unsafe_set warmed j '\001';
          if
            Bytes.unsafe_get warmed j = '\001'
            && xs.(j) <= wall_eps
            && nf *. ys.(j) < c
          then Bytes.unsafe_set idle j '\001'
        end
    done;
    incr i
  done;
  Array.init m (fun j ->
      if Bytes.get overflow j = '\001' then Overflow
      else if Bytes.get idle j = '\001' then Underflow
      else Safe)

let classify_front ?t_max ?(jobs = 1) p pts =
  Array.iter
    (fun (q, r) ->
      if q < 0. || q > p.Params.buffer then
        invalid_arg "Safe_region.classify: q outside [0, B]";
      if r < 0. then invalid_arg "Safe_region.classify: r < 0")
    pts;
  let t_end = match t_max with Some t -> t | None -> 12. *. slower_period p in
  if t_end <= 0. then invalid_arg "Safe_region.classify: t_max <= 0";
  let h = Float.min 1e-6 (slower_period p /. 500.) in
  let m = Array.length pts in
  if jobs <= 1 || m <= 1 then classify_batch ~t_end ~h p pts
  else
    let jobs = Stdlib.min jobs m in
    let bounds =
      List.init jobs (fun k -> (k * m / jobs, ((k + 1) * m / jobs) - 1))
    in
    let chunks =
      Parallel.Pool.with_pool ~size:jobs (fun pool ->
          Parallel.Pool.map pool
            (fun (lo, hi) ->
              classify_batch ~t_end ~h p (Array.sub pts lo (hi - lo + 1)))
            bounds)
    in
    Array.concat chunks

let classify ?t_max p ~q ~r =
  (classify_front ?t_max p [| (q, r) |]).(0)

let raster ?t_max ?(nq = 24) ?(nr = 24) ?r_max ?jobs p =
  if nq < 2 || nr < 2 then invalid_arg "Safe_region.raster: grid too small";
  let r_max =
    match r_max with Some v -> v | None -> 2. *. Params.equilibrium_rate p
  in
  (* keep cell centers strictly inside the walls *)
  let q_grid =
    Array.init nq (fun i ->
        p.Params.buffer *. (float_of_int i +. 0.5) /. float_of_int nq)
  in
  let r_grid =
    Array.init nr (fun j ->
        r_max *. (float_of_int j +. 0.5) /. float_of_int nr)
  in
  (* row-major front: lane i*nr + j is cell (i, j) *)
  let pts =
    Array.init (nq * nr) (fun idx ->
        (q_grid.(idx / nr), r_grid.(idx mod nr)))
  in
  let verdicts = classify_front ?t_max ?jobs p pts in
  let cells =
    Array.init nq (fun i -> Array.init nr (fun j -> verdicts.((i * nr) + j)))
  in
  let safe = ref 0 in
  Array.iter
    (Array.iter (fun v -> if v = Safe then incr safe))
    cells;
  {
    q_grid;
    r_grid;
    q_max = p.Params.buffer;
    r_max;
    cells;
    safe_fraction = float_of_int !safe /. float_of_int (nq * nr);
  }

let glyph = function Safe -> '.' | Overflow -> '#' | Underflow -> 'o'

let render ra =
  let nq = Array.length ra.q_grid and nr = Array.length ra.r_grid in
  let buf = Buffer.create ((nq + 16) * (nr + 4)) in
  Buffer.add_string buf
    (Printf.sprintf
       "strong-stability basin ('.' safe, '#' overflow, 'o' underflow); \
        safe fraction = %.2f\n"
       ra.safe_fraction);
  Buffer.add_string buf "r (bit/s)\n";
  for j = nr - 1 downto 0 do
    let label =
      if j = nr - 1 || j = 0 then
        Printf.sprintf "%8s |" (Report.Table.si ra.r_grid.(j))
      else Printf.sprintf "%8s |" ""
    in
    Buffer.add_string buf label;
    for i = 0 to nq - 1 do
      Buffer.add_char buf (glyph ra.cells.(i).(j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make nq '-'));
  Buffer.add_string buf
    (Printf.sprintf "%8s  q: 0 .. %s (buffer)\n" "" (Report.Table.si ra.q_max));
  Buffer.contents buf

and to_csv ~path ra =
  let rows = ref [] in
  Array.iteri
    (fun i q ->
      Array.iteri
        (fun j r ->
          let v =
            match ra.cells.(i).(j) with
            | Safe -> 0.
            | Overflow -> 1.
            | Underflow -> -1.
          in
          rows := [ q; r; v ] :: !rows)
        ra.r_grid;
      ignore q)
    ra.q_grid;
  Report.Csv.write_floats ~path ~header:[ "q"; "r"; "verdict" ]
    (List.rev !rows)
