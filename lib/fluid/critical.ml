type coeffs = { l : float }

let coeffs ~m ~n =
  if m <= 0. || n <= 0. then invalid_arg "Critical.coeffs: need m > 0, n > 0";
  let disc = (m *. m) -. (4. *. n) in
  if Float.abs disc > 1e-9 *. Float.max 1. (4. *. n) then
    invalid_arg "Critical.coeffs: not critically damped (m^2 <> 4n)";
  { l = -.m /. 2. }

let of_eigen l =
  if l >= 0. then invalid_arg "Critical.of_eigen: need l < 0";
  { l }

let constants c ~x0 ~y0 = (x0, y0 -. (c.l *. x0))

let solution c ~x0 ~y0 t =
  let a3, a4 = constants c ~x0 ~y0 in
  let e = exp (c.l *. t) in
  let x = (a3 +. (a4 *. t)) *. e in
  let y = ((a3 *. c.l) +. a4 +. (a4 *. c.l *. t)) *. e in
  (x, y)

let on_eigenline c ~x0 ~y0 =
  let scale = 1. +. Float.abs x0 +. Float.abs y0 in
  Float.abs (y0 -. (c.l *. x0)) <= 1e-12 *. scale

let extremum_time c ~x0 ~y0 =
  let a3, a4 = constants c ~x0 ~y0 in
  if a4 = 0. then None
  else begin
    let t = -.((a3 *. c.l) +. a4) /. (a4 *. c.l) in
    if t > 1e-15 then Some t else None
  end

let extremum c ~x0 ~y0 =
  Option.map (fun t -> fst (solution c ~x0 ~y0 t)) (extremum_time c ~x0 ~y0)

let extremum_paper c ~x0 ~y0 =
  let a3, a4 = constants c ~x0 ~y0 in
  if a4 = 0. then None
  else
    Some (-.a4 /. c.l *. exp (-.((c.l *. a3) +. a4) /. (c.l *. a4)))

let crossing_time c ~k ~dir ?(t_min = 0.) ?t_max ~x0 ~y0 () =
  let horizon = 50. /. Float.abs c.l in
  let t_max = match t_max with Some t -> t | None -> horizon in
  let l = c.l in
  let a3, a4 = constants c ~x0 ~y0 in
  (* g(t) = x(t) + k·y(t), [solution] inlined with the constants hoisted
     out of the scan — same expressions, same bits, zero allocation per
     grid point. *)
  let g_into (tin : float array) (gout : float array) =
    let t = tin.(0) in
    let e = exp (l *. t) in
    let x = (a3 +. (a4 *. t)) *. e in
    let y = ((a3 *. l) +. a4 +. (a4 *. l *. t)) *. e in
    gout.(0) <- x +. (k *. y)
  in
  let dt = Float.min (0.01 /. Float.abs c.l) ((t_max -. t_min) /. 400.) in
  Crossing.first_crossing_g ~g_into ~dir ~t_min ~t_max ~dt
