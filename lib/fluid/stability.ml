open Numerics

type verdict = {
  case : Cases.case;
  analytic_max : float option;
  analytic_min : float option;
  numeric_max : float;
  numeric_min : float;
  overflow_margin : float;
  underflow_margin : float;
  strongly_stable : bool;
  analytic_strongly_stable : bool option;
}

(* A characteristic time scale per region: the rotation period for spiral
   regions, a few slow time constants for node regions. *)
let region_time_scale p region =
  match Cases.shape_of p region with
  | Cases.Spiral_shape ->
      let c = Spiral.of_region p region in
      Spiral.period c
  | Cases.Node_shape ->
      let c = Node.of_region p region in
      4. /. Float.abs (Node.slow_slope c)
  | Cases.Critical_shape -> (
      match Linearized.eigenvalues p region with
      | Mat2.Real_pair (l1, _) -> 4. /. Float.abs l1
      | Mat2.Complex_pair { re; _ } -> 4. /. Float.abs re)

let default_horizon p =
  12.
  *. Float.max
       (region_time_scale p Linearized.Increase)
       (region_time_scale p Linearized.Decrease)

let first_excursion ?t_max ?solver p =
  let t_max = match t_max with Some t -> t | None -> default_horizon p in
  let sys = Model.normalized_system p in
  let tr =
    Phaseplane.Trajectory.integrate ?solver ~t_max sys (Model.start_point p)
  in
  let xs = Phaseplane.Trajectory.x_series tr in
  let crossings = tr.Phaseplane.Trajectory.switch_crossings in
  let max_x = Phaseplane.Trajectory.x_max tr in
  let min_x =
    match crossings with
    | _ :: { Phaseplane.Trajectory.ct = t2; _ } :: _ ->
        let tail = Series.tail_from xs t2 in
        if Series.is_empty tail then Phaseplane.Trajectory.x_min tr
        else snd (Series.argmin tail)
    | [ { Phaseplane.Trajectory.ct = t1; _ } ] ->
        let tail = Series.tail_from xs t1 in
        if Series.is_empty tail then Phaseplane.Trajectory.x_min tr
        else snd (Series.argmin tail)
    | [] -> Phaseplane.Trajectory.x_min tr
  in
  (max_x, min_x)

let proposition2 p =
  match Cases.classify p with
  | Cases.Case1 -> (
      match Flowmap.excursions p with
      | Some mx, Some mn ->
          Some (mx < p.Params.buffer -. p.Params.q0 && mn > -.p.Params.q0)
      | Some mx, None -> Some (mx < p.Params.buffer -. p.Params.q0)
      | None, _ -> Some true)
  | Cases.Case2 | Cases.Case3 | Cases.Case4 | Cases.Case5 -> None

let proposition3 p =
  match Cases.classify p with
  | Cases.Case2 -> (
      match Flowmap.first_overshoot p with
      | Some mx -> Some (mx < p.Params.buffer -. p.Params.q0)
      | None -> Some true)
  | Cases.Case1 | Cases.Case3 | Cases.Case4 | Cases.Case5 -> None

let proposition4 p =
  match Cases.classify p with
  | Cases.Case3 | Cases.Case4 | Cases.Case5 -> Some true
  | Cases.Case1 | Cases.Case2 -> None

let analyze ?t_max ?solver p =
  let case = Cases.classify p in
  let analytic_max, analytic_min = Flowmap.excursions p in
  let numeric_max, numeric_min = first_excursion ?t_max ?solver p in
  let overflow_margin = p.Params.buffer -. p.Params.q0 -. numeric_max in
  let underflow_margin = numeric_min +. p.Params.q0 in
  let analytic_strongly_stable =
    match case with
    | Cases.Case1 -> proposition2 p
    | Cases.Case2 -> proposition3 p
    | Cases.Case3 | Cases.Case4 | Cases.Case5 -> proposition4 p
  in
  {
    case;
    analytic_max;
    analytic_min;
    numeric_max;
    numeric_min;
    overflow_margin;
    underflow_margin;
    strongly_stable = overflow_margin > 0. && underflow_margin > 0.;
    analytic_strongly_stable;
  }

let pp_verdict ppf v =
  let pp_opt ppf = function
    | Some x -> Format.fprintf ppf "%g" x
    | None -> Format.pp_print_string ppf "n/a"
  in
  Format.fprintf ppf
    "@[<v>%a@,\
     analytic first overshoot max1(x) = %a, undershoot min1(x) = %a@,\
     numeric  first excursion  max(x) = %g, min(x) = %g@,\
     overflow margin = %g bit, underflow margin = %g bit@,\
     strongly stable (numeric): %b; (Propositions 2-4): %a@]"
    Cases.pp_case v.case pp_opt v.analytic_max pp_opt v.analytic_min
    v.numeric_max v.numeric_min v.overflow_margin v.underflow_margin
    v.strongly_stable
    (fun ppf -> function
      | Some b -> Format.fprintf ppf "%b" b
      | None -> Format.pp_print_string ppf "n/a")
    v.analytic_strongly_stable
