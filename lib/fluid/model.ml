open Numerics

let sigma p ~x ~y = -.(x +. (Params.k p *. y))

let sigma_physical p ~q ~dq =
  (p.Params.q0 -. q) -. (p.Params.w /. (p.Params.pm *. p.Params.capacity) *. dq)

let to_xy p ~q ~r =
  Vec2.make (q -. p.Params.q0)
    ((float_of_int p.Params.n_flows *. r) -. p.Params.capacity)

let of_xy p (v : Vec2.t) =
  ( v.Vec2.x +. p.Params.q0,
    (v.Vec2.y +. p.Params.capacity) /. float_of_int p.Params.n_flows )

let normalized_system p =
  let a = Params.a p and b = Params.b p and k = Params.k p in
  let c = p.Params.capacity in
  let sw (v : Vec2.t) = -.(v.Vec2.x +. (k *. v.Vec2.y)) in
  (* The in-place and batched right-hand sides mirror the closures
     expression for expression ([lin] is the shared subexpression
     [x +. (k *. y)]; negation and reuse of an identical subexpression
     are bit-exact), so the fast solver paths produce the same bits as
     the closure dispatch [if sigma >= 0 then pos else neg]. *)
  let rhs (y : float array) (dst : float array) =
    let lin = y.(0) +. (k *. y.(1)) in
    dst.(0) <- y.(1);
    dst.(1) <-
      (if -.lin >= 0. then -.a *. lin else -.b *. (y.(1) +. c) *. lin)
  in
  let batch (bt : Ode.Batch.t) xs ys dxs dys =
    let n = bt.Ode.Batch.n in
    let sg = bt.Ode.Batch.sg
    and sa = bt.Ode.Batch.sa
    and sb = bt.Ode.Batch.sb in
    for i = 0 to n - 1 do
      let yv = Array.unsafe_get ys i in
      let lin = Array.unsafe_get xs i +. (k *. yv) in
      Array.unsafe_set sg i (-.lin);
      Array.unsafe_set sa i (-.a *. lin);
      Array.unsafe_set sb i (-.b *. (yv +. c) *. lin)
    done;
    Array.blit ys 0 dxs 0 n;
    Ode.Batch.select bt ~mask:sg ~pos:sa ~neg:sb ~dst:dys
  in
  Phaseplane.System.Switched_fast
    {
      sigma = sw;
      pos =
        (fun v ->
          Vec2.make v.Vec2.y (-.a *. (v.Vec2.x +. (k *. v.Vec2.y))));
      neg =
        (fun v ->
          Vec2.make v.Vec2.y
            (-.b *. (v.Vec2.y +. c) *. (v.Vec2.x +. (k *. v.Vec2.y))));
      rhs;
      batch;
    }

let start_point p = Vec2.make (-.p.Params.q0) 0.

let cold_start_point p =
  Vec2.make (-.p.Params.q0)
    ((float_of_int p.Params.n_flows *. p.Params.mu) -. p.Params.capacity)

type phys = {
  q : Series.t;
  r : Series.t;
  sigma_t : Series.t;
  dropped_bits : float;
  idle_time : float;
  warmup_end : float;
}

let simulate_physical ?(h = 1e-6) ?q_init ?r_init ~t_end p =
  if h <= 0. then invalid_arg "Model.simulate_physical: h <= 0";
  if t_end <= 0. then invalid_arg "Model.simulate_physical: t_end <= 0";
  let n = float_of_int p.Params.n_flows in
  let c = p.Params.capacity and bsize = p.Params.buffer in
  let gi = p.Params.gi and gd = p.Params.gd and ru = p.Params.ru in
  let q_init = match q_init with Some v -> v | None -> 0. in
  let r_init = match r_init with Some v -> v | None -> p.Params.mu in
  let wall_eps = 1e-9 *. bsize in
  (* Right-hand side of the clamped physical model. At the buffer walls the
     measured queue variation is zero (nothing can be enqueued beyond B,
     nothing dequeued below 0), which is what the switch's counters see. *)
  let deriv y =
    let q = y.(0) and r = y.(1) in
    let inflow = (n *. r) -. c in
    let dq =
      if q <= wall_eps && inflow < 0. then 0.
      else if q >= bsize -. wall_eps && inflow > 0. then 0.
      else inflow
    in
    let s = sigma_physical p ~q ~dq in
    let dr = if s >= 0. then gi *. ru *. s else gd *. s *. Float.max r 0. in
    [| dq; dr |]
  in
  let field _t y = deriv y in
  let steps = int_of_float (Float.ceil (t_end /. h)) in
  let ts = Array.make (steps + 1) 0. in
  let qs = Array.make (steps + 1) q_init in
  let rs = Array.make (steps + 1) r_init in
  let sg = Array.make (steps + 1) 0. in
  let state = ref [| q_init; r_init |] in
  let dropped = ref 0. in
  let idle = ref 0. in
  let warmup_end = ref nan in
  let record i t =
    ts.(i) <- t;
    qs.(i) <- !state.(0);
    rs.(i) <- !state.(1);
    let d = deriv !state in
    sg.(i) <- sigma_physical p ~q:!state.(0) ~dq:d.(0)
  in
  record 0 0.;
  for i = 1 to steps do
    let t = float_of_int (i - 1) *. h in
    let y = Ode.step Ode.Rk4 field t !state h in
    (* wall clamps and accounting *)
    if y.(0) > bsize then begin
      dropped := !dropped +. (y.(0) -. bsize);
      y.(0) <- bsize
    end;
    if y.(0) < 0. then y.(0) <- 0.;
    if y.(1) < 0. then y.(1) <- 0.;
    if Float.is_nan !warmup_end && y.(0) > wall_eps then
      warmup_end := float_of_int i *. h;
    if
      (not (Float.is_nan !warmup_end))
      && y.(0) <= wall_eps
      && (n *. y.(1)) < c
    then idle := !idle +. h;
    state := y;
    record i (float_of_int i *. h)
  done;
  {
    q = Series.make ts qs;
    r = Series.make ts rs;
    sigma_t = Series.make ts sg;
    dropped_bits = !dropped;
    idle_time = !idle;
    warmup_end = (if Float.is_nan !warmup_end then t_end else !warmup_end);
  }

let warmup_duration p =
  let n_mu = float_of_int p.Params.n_flows *. p.Params.mu in
  if n_mu >= p.Params.capacity then
    invalid_arg "Model.warmup_duration: sources already saturate the link";
  (p.Params.capacity -. n_mu) /. (Params.a p *. p.Params.q0)
