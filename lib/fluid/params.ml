type t = {
  n_flows : int;
  capacity : float;
  w : float;
  pm : float;
  q0 : float;
  buffer : float;
  qsc : float;
  gi : float;
  gd : float;
  ru : float;
  mu : float;
}

let validate p =
  let req cond msg = if not cond then invalid_arg ("Params: " ^ msg) in
  req (p.n_flows > 0) "n_flows must be positive";
  req (p.capacity > 0.) "capacity must be positive";
  req (p.w > 0.) "w must be positive";
  req (p.pm > 0. && p.pm <= 1.) "pm must be in (0, 1]";
  req (p.q0 > 0.) "q0 must be positive";
  req (p.buffer > 0.) "buffer must be positive";
  req (p.q0 < p.buffer) "q0 must be below the buffer size";
  req (p.qsc >= p.q0 && p.qsc <= p.buffer) "qsc must be in [q0, buffer]";
  req (p.gi > 0.) "gi must be positive";
  req (p.gd > 0.) "gd must be positive";
  req (p.ru > 0.) "ru must be positive";
  req (p.mu >= 0.) "mu must be nonnegative";
  p

let make ?(w = 2.) ?(pm = 0.01) ?qsc ?(mu = 0.) ~n_flows ~capacity ~q0 ~buffer
    ~gi ~gd ~ru () =
  let qsc = match qsc with Some v -> v | None -> 0.9 *. buffer in
  validate { n_flows; capacity; w; pm; q0; buffer; qsc; gi; gd; ru; mu }

let mega = 1e6

let default =
  make ~n_flows:50 ~capacity:10e9 ~q0:(2.5 *. mega) ~buffer:(5. *. mega)
    ~gi:4. ~gd:(1. /. 128.) ~ru:(8. *. mega) ()

let with_buffer p buffer =
  let frac = p.qsc /. p.buffer in
  validate { p with buffer; qsc = frac *. buffer }

let with_gains ?gi ?gd ?ru p =
  let pick o v = match o with Some x -> x | None -> v in
  validate { p with gi = pick gi p.gi; gd = pick gd p.gd; ru = pick ru p.ru }

let with_q0 p q0 = validate { p with q0 }
let with_flows p n_flows = validate { p with n_flows }
let with_capacity p capacity = validate { p with capacity }

let with_sampling ?w ?pm p =
  let pick o v = match o with Some x -> x | None -> v in
  validate { p with w = pick w p.w; pm = pick pm p.pm }

let a p = p.ru *. p.gi *. float_of_int p.n_flows
let b p = p.gd
let k p = p.w /. (p.pm *. p.capacity)
let equilibrium_rate p = p.capacity /. float_of_int p.n_flows

let a_threshold p =
  let kp = k p in
  4. /. (kp *. kp)

let b_threshold p =
  let kp = k p in
  4. /. (kp *. kp *. p.capacity)

let loop_params p =
  { Control.Linear_baseline.a = a p; b = b p; k = k p; c = p.capacity }

let bdp_buffer p ~rtt = p.capacity *. rtt

let pp ppf p =
  Format.fprintf ppf
    "@[<v>N = %d flows, C = %g bit/s@,\
     q0 = %g bit, B = %g bit, qsc = %g bit@,\
     Gi = %g, Gd = %g, Ru = %g bit/s@,\
     w = %g, pm = %g, mu = %g bit/s@,\
     derived: a = %g, b = %g, k = %g@]"
    p.n_flows p.capacity p.q0 p.buffer p.qsc p.gi p.gd p.ru p.w p.pm p.mu
    (a p) (b p) (k p)

let to_string p = Format.asprintf "%a" pp p
