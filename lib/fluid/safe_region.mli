(** The strong-stability basin: from which initial states [(q, r)] does
    the BCN system satisfy Definition 1?

    The paper analyzes the canonical start [(q, r) = (0, mu)] (empty
    queue, warm-up). Operationally one also cares about recovery from
    {e any} state — after a routing change, a flow join, or a PAUSE
    episode the system restarts from an arbitrary queue/rate point. This
    module rasterizes the plane: each cell is integrated forward and
    classified by whether the trajectory stays inside the buffer walls.

    Classification of a cell (normalized coordinates, launch at the cell
    center):
    - [Safe] — the trajectory remains in [(-q0, B - q0)] for the whole
      horizon after its first switching-line crossing;
    - [Overflow] — [x] reaches [B - q0] (packets would drop);
    - [Underflow] — [x] returns to [-q0] after having left it (link
      idles). *)

type verdict = Safe | Overflow | Underflow

type raster = {
  q_grid : float array;  (** queue-axis cell centers, bits *)
  r_grid : float array;  (** per-source-rate cell centers, bit/s *)
  q_max : float;  (** queue-axis extent (the buffer size), bits *)
  r_max : float;  (** rate-axis extent, bit/s *)
  cells : verdict array array;  (** [cells.(i).(j)] at [(q i, r j)] *)
  safe_fraction : float;
}

val classify :
  ?t_max:float -> Params.t -> q:float -> r:float -> verdict
(** Classify a single initial state ([0 <= q <= B] required). Default
    horizon: 12 periods of the slower subsystem. *)

val classify_front :
  ?t_max:float ->
  ?jobs:int ->
  Params.t ->
  (float * float) array ->
  verdict array
(** Classify a whole front of [(q, r)] initial states in one batched
    integration ({!Numerics.Ode.Batch}): one SoA sweep per RK stage over
    all lanes, zero minor-heap allocation per step, and a lane is frozen
    the moment its verdict is decided (the first dropped bit decides
    [Overflow], which has priority over [Underflow], so idle signals
    never freeze early). Verdicts are bit-identical to per-point
    {!classify}, for any front and any [jobs] (chunk boundaries depend
    only on the input length). *)

val raster :
  ?t_max:float ->
  ?nq:int ->
  ?nr:int ->
  ?r_max:float ->
  ?jobs:int ->
  Params.t ->
  raster
(** Raster over [q in [0, B]] x [r in [0, r_max]] (default
    [r_max = 2·C/N], grid 24 x 24). *)

val render : raster -> string
(** ASCII heat map: ['.'] safe, ['#'] overflow, ['o'] underflow; the
    queue axis is horizontal. *)

val to_csv : path:string -> raster -> unit
