(** Transient-performance metrics of the BCN loop — the quantities the
    paper's Remarks say the sampling parameters [w] and [pm] influence
    (while leaving the Theorem-1 stability bound untouched), and which
    its Conclusion defers to future work.

    All metrics are measured on the nonlinear normalized system (8)
    launched from [(−q0, 0)]. *)

type metrics = {
  overshoot : float;  (** max of [x] (bits above the reference) *)
  undershoot : float;  (** min of [x] after the first switching *)
  oscillations : int;  (** number of [y = 0] crossings within the horizon *)
  settling_time : float option;
      (** first time after which |x| stays within the band for the rest
          of the horizon; [None] when the trajectory never settles *)
  decay_per_cycle : float option;
      (** geometric-mean contraction of successive |x| extrema; < 1 is
          contracting, [None] with fewer than three extrema *)
}

val measure :
  ?horizon:float -> ?band:float -> Params.t -> metrics
(** [band] is the settling band as a fraction of [q0] (default 0.05);
    [horizon] defaults to 20 periods of the slower subsystem. *)

val sweep :
  ?horizon:float ->
  ?band:float ->
  ?jobs:int ->
  (float -> Params.t) ->
  float list ->
  (float * metrics) list
(** Measure over a parameterized family, e.g.
    [sweep (fun w -> Params.with_sampling ~w p) [1.; 2.; 4.]].
    [jobs > 1] fans the family out over a domain pool; the output list
    is in input order and byte-identical for any [jobs]. *)

val pp_metrics : Format.formatter -> metrics -> unit
