type coeffs = { l1 : float; l2 : float }

let coeffs ~m ~n =
  if m <= 0. || n <= 0. then invalid_arg "Node.coeffs: need m > 0, n > 0";
  let disc = (m *. m) -. (4. *. n) in
  if disc <= 0. then invalid_arg "Node.coeffs: not overdamped (m^2 <= 4n)";
  let s = sqrt disc in
  { l1 = (-.m -. s) /. 2.; l2 = (-.m +. s) /. 2. }

let of_region p region =
  coeffs ~m:(Linearized.damping p region) ~n:(Linearized.stiffness p region)

let amplitudes c ~x0 ~y0 =
  let { l1; l2 } = c in
  let a1 = ((l2 *. x0) -. y0) /. (l2 -. l1) in
  let a2 = ((l1 *. x0) -. y0) /. (l1 -. l2) in
  (a1, a2)

let solution c ~x0 ~y0 t =
  let { l1; l2 } = c in
  let a1, a2 = amplitudes c ~x0 ~y0 in
  let e1 = exp (l1 *. t) and e2 = exp (l2 *. t) in
  ((a1 *. e1) +. (a2 *. e2), (a1 *. l1 *. e1) +. (a2 *. l2 *. e2))

let on_eigenline c ~x0 ~y0 =
  let scale = 1. +. Float.abs x0 +. Float.abs y0 in
  Float.abs (y0 -. (c.l1 *. x0)) <= 1e-12 *. scale
  || Float.abs (y0 -. (c.l2 *. x0)) <= 1e-12 *. scale

let invariant c ~x ~y =
  (* u = y − l1·x evolves as exp(l2·t) (eqn (22)) and v = y − l2·x as
     exp(l1·t) (eqn (23)), so l1·ln|u| − l2·ln|v| has zero time
     derivative: l1·l2 − l2·l1 *)
  let u = y -. (c.l1 *. x) and v = y -. (c.l2 *. x) in
  (c.l1 *. log (Float.abs u)) -. (c.l2 *. log (Float.abs v))

let extremum_time c ~x0 ~y0 =
  let { l1; l2 } = c in
  let a1, a2 = amplitudes c ~x0 ~y0 in
  if a1 = 0. || a2 = 0. then None
  else begin
    (* y = 0: A1·l1·e^{l1 t} = −A2·l2·e^{l2 t} *)
    let ratio = -.(a2 *. l2) /. (a1 *. l1) in
    if ratio <= 0. then None
    else begin
      let t = log ratio /. (l1 -. l2) in
      if t > 1e-15 then Some t else None
    end
  end

let extremum c ~x0 ~y0 =
  Option.map (fun t -> fst (solution c ~x0 ~y0 t)) (extremum_time c ~x0 ~y0)

let extremum_paper c ~x0 ~y0 =
  let { l1; l2 } = c in
  (* eqn (28), evaluated in log space (the literal fractional powers
     overflow for the eigenvalue magnitudes of a 10 Gbit/s link), with
     absolute values inside the powers as the expression implicitly
     requires *)
  let u = Float.abs (y0 -. (l1 *. x0)) and v = Float.abs (y0 -. (l2 *. x0)) in
  if u = 0. || v = 0. then 0.
  else begin
    let log_num = (l1 *. log (-.l1)) +. (l2 *. log v) in
    let log_den = (l2 *. log (-.l2)) +. (l1 *. log u) in
    let magnitude = exp ((log_num -. log_den) /. (l2 -. l1)) in
    if y0 >= 0. then magnitude else -.magnitude
  end

let slow_slope c = c.l2
let fast_slope c = c.l1

let crossing_time c ~k ~dir ?(t_min = 0.) ?t_max ~x0 ~y0 () =
  let horizon = 50. /. Float.abs c.l2 in
  let t_max = match t_max with Some t -> t | None -> horizon in
  let { l1; l2 } = c in
  let a1, a2 = amplitudes c ~x0 ~y0 in
  (* g(t) = x(t) + k·y(t), [solution] inlined with the amplitudes hoisted
     out of the scan — same expressions, same bits, zero allocation per
     grid point. *)
  let g_into (tin : float array) (gout : float array) =
    let t = tin.(0) in
    let e1 = exp (l1 *. t) and e2 = exp (l2 *. t) in
    let x = (a1 *. e1) +. (a2 *. e2) in
    let y = (a1 *. l1 *. e1) +. (a2 *. l2 *. e2) in
    gout.(0) <- x +. (k *. y)
  in
  let dt = Float.min (0.01 /. Float.abs c.l2) ((t_max -. t_min) /. 400.) in
  Crossing.first_crossing_g ~g_into ~dir ~t_min ~t_max ~dt
