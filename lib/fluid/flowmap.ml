open Numerics

type segment = {
  region : Linearized.region;
  t_start : float;
  p_start : Vec2.t;
  duration : float option;
  p_end : Vec2.t option;
  extremum : (float * float) option;
}

(* First-class per-region closed-form flow. *)
type flow = {
  fsol : x0:float -> y0:float -> float -> float * float;
  fcross :
    dir:Crossing.direction -> x0:float -> y0:float -> unit -> float option;
  fextr : x0:float -> y0:float -> (float * float) option;
  slowest : float;  (** slowest time constant, for sampling horizons *)
}

let flow_of p region =
  let k = Params.k p in
  match Cases.shape_of p region with
  | Cases.Spiral_shape ->
      let c = Spiral.of_region p region in
      {
        fsol = (fun ~x0 ~y0 t -> Spiral.solution c ~x0 ~y0 t);
        fcross =
          (fun ~dir ~x0 ~y0 () -> Spiral.crossing_time c ~k ~dir ~x0 ~y0 ());
        fextr =
          (fun ~x0 ~y0 ->
            let t = Spiral.t_star c ~x0 ~y0 in
            Some (t, fst (Spiral.solution c ~x0 ~y0 t)));
        slowest = 1. /. Float.abs (Spiral.of_region p region).Spiral.alpha;
      }
  | Cases.Node_shape ->
      let c = Node.of_region p region in
      {
        fsol = (fun ~x0 ~y0 t -> Node.solution c ~x0 ~y0 t);
        fcross =
          (fun ~dir ~x0 ~y0 () -> Node.crossing_time c ~k ~dir ~x0 ~y0 ());
        fextr =
          (fun ~x0 ~y0 ->
            match Node.extremum_time c ~x0 ~y0 with
            | Some t -> Some (t, fst (Node.solution c ~x0 ~y0 t))
            | None -> None);
        slowest = 1. /. Float.abs (Node.slow_slope c);
      }
  | Cases.Critical_shape ->
      let l =
        match Linearized.eigenvalues p region with
        | Mat2.Real_pair (l1, _) -> l1
        | Mat2.Complex_pair { re; _ } -> re
      in
      let c = Critical.of_eigen l in
      {
        fsol = (fun ~x0 ~y0 t -> Critical.solution c ~x0 ~y0 t);
        fcross =
          (fun ~dir ~x0 ~y0 () -> Critical.crossing_time c ~k ~dir ~x0 ~y0 ());
        fextr =
          (fun ~x0 ~y0 ->
            match Critical.extremum_time c ~x0 ~y0 with
            | Some t -> Some (t, fst (Critical.solution c ~x0 ~y0 t))
            | None -> None);
        slowest = 1. /. Float.abs l;
      }

let solution p region ~x0 ~y0 t = (flow_of p region).fsol ~x0 ~y0 t

let region_of_point p (v : Vec2.t) =
  let s = Model.sigma p ~x:v.Vec2.x ~y:v.Vec2.y in
  if s >= 0. then Linearized.Increase else Linearized.Decrease

let exit_direction = function
  (* leaving the increase region means g = x + k·y goes negative→positive *)
  | Linearized.Increase -> Crossing.Into_pos
  | Linearized.Decrease -> Crossing.Into_neg

let other = function
  | Linearized.Increase -> Linearized.Decrease
  | Linearized.Decrease -> Linearized.Increase

(* Both regions' flows are needed along any multi-segment trace; computing
   them once here (instead of once per segment) keeps the eigenstructure
   work out of the segment loop. *)
let cached_flows p =
  let inc = lazy (flow_of p Linearized.Increase) in
  let dec = lazy (flow_of p Linearized.Decrease) in
  function
  | Linearized.Increase -> Lazy.force inc
  | Linearized.Decrease -> Lazy.force dec

let trace ?(max_segments = 8) p p0 =
  let flow_for = cached_flows p in
  let rec go acc region t_abs (pt : Vec2.t) n =
    if n >= max_segments then List.rev acc
    else begin
      let fl = flow_for region in
      let x0 = pt.Vec2.x and y0 = pt.Vec2.y in
      let tc = fl.fcross ~dir:(exit_direction region) ~x0 ~y0 () in
      let extremum =
        match fl.fextr ~x0 ~y0 with
        | Some (te, xe) -> (
            match tc with
            | Some t when te > t -> None
            | Some _ | None -> Some (t_abs +. te, xe))
        | None -> None
      in
      match tc with
      | None ->
          List.rev
            ({
               region;
               t_start = t_abs;
               p_start = pt;
               duration = None;
               p_end = None;
               extremum;
             }
            :: acc)
      | Some dt ->
          let xe, ye = fl.fsol ~x0 ~y0 dt in
          let p_end = Vec2.make xe ye in
          let seg =
            {
              region;
              t_start = t_abs;
              p_start = pt;
              duration = Some dt;
              p_end = Some p_end;
              extremum;
            }
          in
          go (seg :: acc) (other region) (t_abs +. dt) p_end (n + 1)
    end
  in
  go [] (region_of_point p p0) 0. p0 0

let sample p segments ~dt =
  if dt <= 0. then invalid_arg "Flowmap.sample: dt <= 0";
  let flow_for = cached_flows p in
  List.concat_map
    (fun seg ->
      let fl = flow_for seg.region in
      let horizon =
        match seg.duration with Some d -> d | None -> 5. *. fl.slowest
      in
      let n = Stdlib.max 2 (int_of_float (Float.ceil (horizon /. dt))) in
      List.init n (fun i ->
          let trel = horizon *. float_of_int i /. float_of_int (n - 1) in
          let x, y =
            fl.fsol ~x0:seg.p_start.Vec2.x ~y0:seg.p_start.Vec2.y trel
          in
          (seg.t_start +. trel, Vec2.make x y)))
    segments

let segments_from_start p = trace ~max_segments:6 p (Model.start_point p)

let overshoot_of_segments segs =
  (* the first extremum inside a decrease-region segment *)
  List.find_map
    (fun seg ->
      match (seg.region, seg.extremum) with
      | Linearized.Decrease, Some (_, x) -> Some x
      | _, _ -> None)
    segs

let undershoot_of_segments segs =
  (* the first extremum inside an increase-region segment entered *after*
     a decrease segment (the initial segment from (−q0,0) starts in the
     increase region and its extremum is the starting point itself) *)
  let rec scan seen_decrease = function
    | [] -> None
    | seg :: rest -> (
        match seg.region with
        | Linearized.Decrease -> scan true rest
        | Linearized.Increase ->
            if seen_decrease then
              match seg.extremum with
              | Some (_, x) -> Some x
              | None -> scan seen_decrease rest
            else scan seen_decrease rest)
  in
  scan false segs

let first_overshoot p = overshoot_of_segments (segments_from_start p)
let first_undershoot p = undershoot_of_segments (segments_from_start p)

let excursions p =
  (* overshoot and undershoot from a single trace (callers that need both
     would otherwise pay for the segment chase twice) *)
  let segs = segments_from_start p in
  (overshoot_of_segments segs, undershoot_of_segments segs)
