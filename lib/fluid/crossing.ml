(* Shared helper: first time a closed-form planar solution crosses the
   switching line x + k·y = 0, found by scanning for a sign change of
   g(t) = x(t) + k·y(t) and refining with Brent.

   Used by the piecewise closed-form flow map (Spiral / Node / Critical):
   each region's trajectory is known exactly, so locating the region exit
   reduces to scalar root finding on g. *)

type direction = Into_pos | Into_neg | Any
(* Into_pos: g goes from < 0 to > 0 (entering the region where
   x + k·y > 0, i.e. sigma < 0: the rate-DECREASE region).
   Into_neg: the opposite crossing. *)

let matches dir g_prev g_next =
  match dir with
  | Into_pos -> g_prev < 0. && g_next >= 0.
  | Into_neg -> g_prev > 0. && g_next <= 0.
  | Any -> g_prev *. g_next <= 0. && g_prev <> g_next

(* [first_crossing ~sol ~k ~dir ~t_min ~t_max ~dt] scans [t_min, t_max]
   with step [dt]. [sol t] must return (x t, y t). *)
(* [first_crossing_g] is the mailbox form of the scan: [g_into tin gout]
   reads t from [tin.(0)] and writes g(t) into [gout.(0)]. Float-array
   slots stay unboxed, so the scan allocates nothing per evaluation; only
   Brent refinement (a handful of calls per crossing) pays the boxed
   closure-call cost. The scan logic — grid, sign test, refinement — is
   the same as [first_crossing], so results are bit-identical when
   [g_into] mirrors the g built from [sol]. *)
let first_crossing_g ~g_into ~dir ~t_min ~t_max ~dt =
  if dt <= 0. then invalid_arg "Crossing.first_crossing: dt <= 0";
  let tin = [| 0. |] and gout = [| 0. |] in
  (* st.(0) = current t, st.(1) = g(t) *)
  let st = [| t_min; 0. |] in
  tin.(0) <- t_min;
  g_into tin gout;
  st.(1) <- gout.(0);
  let result = ref None in
  let continue_ = ref true in
  while !continue_ do
    let t = st.(0) in
    if t >= t_max then continue_ := false
    else begin
      let t' = Float.min (t +. dt) t_max in
      tin.(0) <- t';
      g_into tin gout;
      let g_next = gout.(0) in
      let g_prev = st.(1) in
      let fired =
        (* [matches dir], textually inlined: a direct call would box the
           two float arguments per grid point *)
        match dir with
        | Into_pos -> g_prev < 0. && g_next >= 0.
        | Into_neg -> g_prev > 0. && g_next <= 0.
        | Any -> g_prev *. g_next <= 0. && g_prev <> g_next
      in
      if fired then begin
        let root =
          if g_prev = 0. then t
          else begin
            let g x =
              tin.(0) <- x;
              g_into tin gout;
              gout.(0)
            in
            try Numerics.Roots.brent ~tol:1e-14 g t t'
            with Numerics.Roots.No_bracket _ -> t'
          end
        in
        result := Some root;
        continue_ := false
      end
      else begin
        st.(0) <- t';
        st.(1) <- g_next
      end
    end
  done;
  !result

let first_crossing ~sol ~k ~dir ~t_min ~t_max ~dt =
  if dt <= 0. then invalid_arg "Crossing.first_crossing: dt <= 0";
  let g t =
    let x, y = sol t in
    x +. (k *. y)
  in
  let rec scan t g_prev =
    if t >= t_max then None
    else begin
      let t' = Float.min (t +. dt) t_max in
      let g_next = g t' in
      if matches dir g_prev g_next then begin
        let root =
          if g_prev = 0. then t
          else
            try Numerics.Roots.brent ~tol:1e-14 g t t'
            with Numerics.Roots.No_bracket _ -> t'
        in
        Some root
      end
      else scan t' g_next
    end
  in
  scan t_min (g t_min)
