type coeffs = { alpha : float; beta : float }

let coeffs ~m ~n =
  if m <= 0. || n <= 0. then invalid_arg "Spiral.coeffs: need m > 0, n > 0";
  let disc = (m *. m) -. (4. *. n) in
  if disc >= 0. then invalid_arg "Spiral.coeffs: not underdamped (m^2 >= 4n)";
  { alpha = -.m /. 2.; beta = sqrt (-.disc) /. 2. }

let of_region p region =
  coeffs ~m:(Linearized.damping p region) ~n:(Linearized.stiffness p region)

let amplitude_phase c ~x0 ~y0 =
  let { alpha; beta } = c in
  let a =
    sqrt ((beta *. beta *. x0 *. x0) +. (((alpha *. x0) -. y0) ** 2.)) /. beta
  in
  (* cos phi = x0/A, sin phi = (alpha·x0 − y0)/(A·beta) *)
  let phi = atan2 (((alpha *. x0) -. y0) /. beta) x0 in
  (a, phi)

let solution c ~x0 ~y0 t =
  let { alpha; beta } = c in
  let a, phi = amplitude_phase c ~x0 ~y0 in
  let e = exp (alpha *. t) in
  let cb = cos ((beta *. t) +. phi) and sb = sin ((beta *. t) +. phi) in
  let x = a *. e *. cb in
  let y = a *. e *. ((alpha *. cb) -. (beta *. sb)) in
  (x, y)

let polar c ~x0 ~y0 t =
  let { alpha; beta } = c in
  let a, phi = amplitude_phase c ~x0 ~y0 in
  let theta = (beta *. t) +. phi in
  (* r² = (beta·x)² + (alpha·x − y)² = (A·beta)²·exp(2·alpha·t) *)
  let r = a *. beta *. exp (alpha *. t) in
  (r, theta)

let t_star c ~x0 ~y0 =
  let { alpha; beta } = c in
  let _, phi = amplitude_phase c ~x0 ~y0 in
  (* y = 0 at beta·t + phi = atan(alpha/beta) + j·pi *)
  let base = atan (alpha /. beta) in
  let eps = 1e-12 *. (1. +. Float.abs phi) /. beta in
  let t_of j = ((base +. (Float.pi *. float_of_int j)) -. phi) /. beta in
  let j0 =
    int_of_float (Float.ceil ((phi -. base) /. Float.pi *. (1. -. 1e-15)))
  in
  let rec find j =
    let t = t_of j in
    if t > eps then t else find (j + 1)
  in
  find (j0 - 2)

let extremum c ~x0 ~y0 =
  let t = t_star c ~x0 ~y0 in
  fst (solution c ~x0 ~y0 t)

let extremum_paper c ~x0 ~y0 =
  let { alpha; beta } = c in
  let a, _ = amplitude_phase c ~x0 ~y0 in
  let t = t_star c ~x0 ~y0 in
  let magnitude =
    a *. beta /. sqrt ((alpha *. alpha) +. (beta *. beta)) *. exp (alpha *. t)
  in
  if y0 >= 0. then magnitude else -.magnitude

let period c = 2. *. Float.pi /. c.beta

let contraction_per_turn c = exp (2. *. Float.pi *. c.alpha /. c.beta)

let crossing_time c ~k ~dir ?(t_min = 0.) ?t_max ~x0 ~y0 () =
  let t_max = match t_max with Some t -> t | None -> 2. *. period c in
  let { alpha; beta } = c in
  let a, phi = amplitude_phase c ~x0 ~y0 in
  (* g(t) = x(t) + k·y(t) with [solution] inlined expression-for-expression
     (same ops, same bits) and (A, phi) hoisted out of the scan; the
     mailbox form keeps every grid evaluation allocation-free. *)
  let g_into (tin : float array) (gout : float array) =
    let t = tin.(0) in
    let e = exp (alpha *. t) in
    let cb = cos ((beta *. t) +. phi) and sb = sin ((beta *. t) +. phi) in
    let x = a *. e *. cb in
    let y = a *. e *. ((alpha *. cb) -. (beta *. sb)) in
    gout.(0) <- x +. (k *. y)
  in
  let dt = period c /. 400. in
  Crossing.first_crossing_g ~g_into ~dir ~t_min ~t_max ~dt
