(** Computable serve requests: what the daemon runs, keyed and executed.

    A {!request} is pure data describing one deliverable payload — a
    scenario run report, a 1-D sweep CSV, a resilience-margin CSV, or a
    traced region-boundary CSV. {!material} gives each request a
    canonical key-material string (equal material ⇔ equal request), and
    {!execute} computes the payload {e bytes} the matching CLI tool
    would print or write — the CLIs call the same functions, so the
    byte-identity between daemon responses and CLI output is by
    construction, not by convention.

    [execute] runs sequentially ([jobs = 1] everywhere inside): requests
    are the daemon's unit of parallelism, one pool lane per request, so
    nesting pools inside would oversubscribe without changing any bytes
    (every code path here is jobs-independent by the repo's determinism
    convention). *)

type request =
  | Run of Simnet.Scenario.t
      (** [bcn_sim]: the scenario's report text ({!Render.outcome}). *)
  | Sweep of {
      param : string;
      lo : float;
      hi : float;
      steps : int;
      log_scale : bool;
      buffer : float;
    }  (** [bcn_sweep --csv]: the stability/transient table as CSV. *)
  | Margin of {
      axes : string list;
      flap_period : float;
      flap_duty : float;
      t_end : float;
      transient : float option;
      iters : int option;
      seed : int;
    }  (** [bcn_faults sweep --csv]: the margin table as CSV. *)
  | Region of {
      param : string;
      lo : float;
      hi : float;
      param2 : string;
      lo2 : float;
      hi2 : float;
      buffer : float;
      coarse : int;
      levels : int;
    }  (** [bcn_sweep --param2 --csv]: the boundary polyline as CSV. *)
  | Batch of { spec : Fabric.Spec.t; chunk : int; as_json : bool }
      (** [bcn_fabric merge]: a distributed sweep's merged table. With
          a store the daemon works it as one more fabric worker —
          external [bcn_fabric work] processes on the same store share
          the leases mid-flight; [chunk] shapes those leases but never
          the merged bytes (it stays out of {!material}). *)

val describe : request -> string
(** Short human label ("run", "sweep gi", ...) for logs and progress. *)

val material : request -> string
(** Canonical, versioned key material for the {e payload} entry. Hash
    with [Store.Key.of_material] to address the rendered bytes; inner
    computation steps (scenario points, sweep rows, resilience probes)
    keep their own finer-grained entries underneath. *)

val execute : ?cache:Store.Cache.t -> request -> string
(** Compute the payload bytes. With [?cache], inner steps memoize
    through it exactly as the CLIs do with [--store] (same key
    materials), so a payload interrupted mid-computation resumes from
    its completed points. Raises [Invalid_argument] on malformed
    requests (unknown parameter or axis names, bad ranges). *)

(** {1 Shared CLI vocabulary: the axis registries}

    The pieces [bcn_sweep] / [bcn_faults] and this module must agree on
    — one data-driven table each for sweepable parameters and fault
    axes. Name resolution, CLI doc strings and the application
    functions all read the same rows, so the daemon cannot drift from
    the tools, and a new parameter (e.g. the RCP gains) becomes
    sweepable everywhere by adding one row here. *)

(** Where a parameter axis applies. *)
type param_target =
  | Fluid_param of (Fluid.Params.t -> float -> Fluid.Params.t)
      (** rewrites the fluid parameter point (shared by every model) *)
  | Model_param of (Simnet.Scenario.t -> float -> Simnet.Scenario.t)
      (** rewrites a model-arm knob inside a scenario (e.g.
          [rcp-alpha]) *)

type param_axis = {
  axis_name : string;  (** canonical spelling *)
  aliases : string list;
  axis_doc : string;
  target : param_target;
}

val param_axes : param_axis list
(** The registry: gi, gd, ru, q0, buffer, n (flows), w, pm, capacity
    (c), rcp-alpha, rcp-beta, rcp-interval. *)

val param_names : string
(** The canonical names, ["|"]-separated — for CLI doc strings. *)

val find_param : string -> param_axis
(** Resolve a name or alias. Raises [Invalid_argument] listing the
    vocabulary on unknown names. *)

val apply_param : Fluid.Params.t -> string -> float -> Fluid.Params.t
(** Apply one named {!Fluid_param} axis. Raises [Invalid_argument] on
    unknown names and on {!Model_param} axes (they need a scenario —
    use {!apply_scenario_param}). *)

val apply_scenario_param :
  Simnet.Scenario.t -> string -> float -> Simnet.Scenario.t
(** Apply any axis at the scenario level: fluid axes rewrite
    [scenario.params], model axes rewrite their model arm (raising
    [Invalid_argument] when the scenario runs a different model). *)

(** One row per fault-severity axis the margin machinery can bisect. *)
type fault_axis = {
  fault_name : string;
  fault_aliases : string list;
  fault_doc : string;
  fault_make : flap_period:float -> flap_duty:float -> Faultnet.Resilience.axis;
}

val fault_axes : fault_axis list
(** bcn-loss, pause-loss, flap-depth. *)

val axis_names : string
(** The canonical fault-axis names, ["|"]-separated — for CLI docs. *)

val axis_of_name :
  flap_period:float -> flap_duty:float -> string -> Faultnet.Resilience.axis
(** Resolve a fault-axis name or alias ([_]-spellings accepted) through
    {!fault_axes}. Raises [Invalid_argument] listing the vocabulary. *)

val sweep_header : string -> string list
(** The 1-D sweep table header for a given parameter name. *)

val sweep_value :
  lo:float -> hi:float -> steps:int -> log_scale:bool -> int -> float
(** Grid point [i] of the sweep (linear or geometric spacing). *)

val sweep_row : float -> Fluid.Params.t -> string list
(** One computed table row: stability verdict, criterion, numeric
    extrema, transient metrics. *)

val sweep_row_material : param:string -> Fluid.Params.t -> float -> string
(** Per-row store key material (identical to [bcn_sweep]'s, so CLI and
    daemon share warm rows). *)
