(** The simulation-as-a-service daemon.

    One process listens on a Unix-domain socket and answers
    {!Protocol} requests. The event loop runs in the calling domain
    and owns every socket; computations run on [jobs] worker lanes of
    a {!Parallel.Pool} via fire-and-forget submission, reporting back
    through a completion queue and a self-pipe, so all reads, writes
    and scheduling decisions are single-threaded — no response ever
    interleaves.

    Scheduling contract:
    - {e warm answers}: a request whose payload key is already stored
      is answered inline from the store — zero simulations, one
      [store.hits] tick, no worker involved.
    - {e in-flight dedup}: concurrent identical requests (same key)
      share one computation; every waiter gets the same payload, later
      joiners flagged [dedup]. The computation itself memoizes through
      the store, so N concurrent identical cold requests cost exactly
      one execution and one [store.misses]/[store.puts] tick on the
      payload key.
    - {e bounded admission}: at most [max_inflight] distinct keys may
      be queued or running; beyond that, cold requests are refused
      with a [busy] error (warm answers and joins are always
      admitted).
    - {e cancellation}: a waiter can abandon its request; a job whose
      waiters all cancelled before a worker picked it up is skipped.
    - {e graceful shutdown}: a [shutdown] request stops admission,
      drains in-flight work (every completed point is already
      persisted the moment it finishes), answers remaining waiters,
      then replies [bye] and exits. A killed daemon therefore resumes
      warm from its store on restart.

    Determinism: payloads come from {!Tasks.execute}, which is
    sequential and jobs-independent, and the store normalizes cold and
    warm values — so for a fixed request set the response bytes are
    identical regardless of arrival order, connection count or [jobs]. *)

type config = {
  socket_path : string;  (** created on start, unlinked on exit *)
  store_dir : string option;
      (** payload + inner-step persistence; [None] = compute-only *)
  jobs : int;  (** worker lanes (>= 1); the event loop is not one *)
  max_inflight : int;  (** distinct cold keys admitted at once *)
  log : bool;  (** print one lifecycle line per event to stdout *)
}

val default_config : socket_path:string -> config
(** [jobs = Parallel.Pool.default_size () - 1] (at least 1),
    [max_inflight = 64], [log = false], no store. *)

val run : config -> unit
(** Serve until a [shutdown] request completes. Raises [Unix_error]
    if the socket cannot be bound (e.g. a live daemon already owns
    it); a stale socket file left by a killed daemon is unlinked. *)
