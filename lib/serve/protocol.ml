open Simnet.Json_read
module J = Telemetry.Json

type command =
  | Compute of Tasks.request
  | Stats
  | Subscribe
  | Cancel of int
  | Shutdown

type request = { id : int; command : command }

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let get_float_field what o name =
  match field o name with
  | Some _ -> Some (get_float what o name)
  | None -> None

let get_int_field what o name =
  match field o name with
  | Some _ -> Some (get_int what o name)
  | None -> None

let parse_command o =
  let what = "request" in
  let kind = get_str what o "kind" in
  match kind with
  | "run" -> (
      match field o "scenario" with
      | None -> bad "request.scenario: missing"
      | Some j -> (
          check_known what [ "id"; "kind"; "scenario" ] o;
          match Simnet.Scenario.of_json j with
          | Ok s -> Compute (Tasks.Run s)
          | Error msg -> bad "request.scenario: %s" msg))
  | "sweep" ->
      check_known what
        [ "id"; "kind"; "param"; "from"; "to"; "steps"; "log"; "buffer" ]
        o;
      Compute
        (Tasks.Sweep
           {
             param = get_str what o "param";
             lo = get_float what o "from";
             hi = get_float what o "to";
             steps = get_int what o "steps";
             log_scale = get_bool_opt what o "log" ~default:false;
             buffer = get_float_opt what o "buffer" ~default:15e6;
           })
  | "margin" ->
      check_known what
        [
          "id"; "kind"; "axes"; "flap_period"; "flap_duty"; "t_end";
          "transient"; "iters"; "seed";
        ]
        o;
      Compute
        (Tasks.Margin
           {
             axes = split_commas (get_str what o "axes");
             flap_period = get_float_opt what o "flap_period" ~default:2e-3;
             flap_duty = get_float_opt what o "flap_duty" ~default:0.5;
             t_end = get_float_opt what o "t_end" ~default:0.02;
             transient = get_float_field what o "transient";
             iters = get_int_field what o "iters";
             seed = get_int_opt what o "seed" ~default:0;
           })
  | "region" ->
      check_known what
        [
          "id"; "kind"; "param"; "from"; "to"; "param2"; "from2"; "to2";
          "buffer"; "coarse"; "levels";
        ]
        o;
      Compute
        (Tasks.Region
           {
             param = get_str what o "param";
             lo = get_float what o "from";
             hi = get_float what o "to";
             param2 = get_str what o "param2";
             lo2 = get_float what o "from2";
             hi2 = get_float what o "to2";
             buffer = get_float_opt what o "buffer" ~default:15e6;
             coarse = get_int_opt what o "coarse" ~default:8;
             levels = get_int_opt what o "levels" ~default:3;
           })
  | "batch" -> (
      match field o "spec" with
      | None -> bad "request.spec: missing"
      | Some j -> (
          check_known what [ "id"; "kind"; "spec"; "chunk"; "json" ] o;
          match Fabric.Spec.of_json j with
          | Ok spec ->
              Compute
                (Tasks.Batch
                   {
                     spec;
                     chunk = get_int_opt what o "chunk" ~default:16;
                     as_json = get_bool_opt what o "json" ~default:false;
                   })
          | Error msg -> bad "request.spec: %s" msg))
  | "stats" ->
      check_known what [ "id"; "kind" ] o;
      Stats
  | "subscribe" ->
      check_known what [ "id"; "kind" ] o;
      Subscribe
  | "cancel" ->
      check_known what [ "id"; "kind"; "target" ] o;
      Cancel (get_int what o "target")
  | "shutdown" ->
      check_known what [ "id"; "kind" ] o;
      Shutdown
  | other -> bad "request.kind: unknown kind %S" other

let parse_request line =
  match parse line with
  | j ->
      let o = as_obj "request" j in
      let id = get_int "request" o "id" in
      (match parse_command o with
      | command -> Ok { id; command }
      | exception Bad msg -> Error msg)
  | exception Bad msg -> Error msg

(* ---------- request encoding ---------- *)

let encode_request ~id command =
  let base = [ ("id", J.int id) ] in
  let fields =
    match command with
    | Compute (Tasks.Run s) ->
        base
        @ [ ("kind", J.str "run"); ("scenario", Simnet.Scenario.encode s) ]
    | Compute (Tasks.Sweep { param; lo; hi; steps; log_scale; buffer }) ->
        base
        @ [
            ("kind", J.str "sweep");
            ("param", J.str param);
            ("from", J.float_full lo);
            ("to", J.float_full hi);
            ("steps", J.int steps);
            ("log", J.bool log_scale);
            ("buffer", J.float_full buffer);
          ]
    | Compute
        (Tasks.Margin
           { axes; flap_period; flap_duty; t_end; transient; iters; seed }) ->
        base
        @ [
            ("kind", J.str "margin");
            ("axes", J.str (String.concat "," axes));
            ("flap_period", J.float_full flap_period);
            ("flap_duty", J.float_full flap_duty);
            ("t_end", J.float_full t_end);
          ]
        @ (match transient with
          | Some t -> [ ("transient", J.float_full t) ]
          | None -> [])
        @ (match iters with Some i -> [ ("iters", J.int i) ] | None -> [])
        @ [ ("seed", J.int seed) ]
    | Compute
        (Tasks.Region
           { param; lo; hi; param2; lo2; hi2; buffer; coarse; levels }) ->
        base
        @ [
            ("kind", J.str "region");
            ("param", J.str param);
            ("from", J.float_full lo);
            ("to", J.float_full hi);
            ("param2", J.str param2);
            ("from2", J.float_full lo2);
            ("to2", J.float_full hi2);
            ("buffer", J.float_full buffer);
            ("coarse", J.int coarse);
            ("levels", J.int levels);
          ]
    | Compute (Tasks.Batch { spec; chunk; as_json }) ->
        base
        @ [
            ("kind", J.str "batch");
            ("spec", Fabric.Spec.encode spec);
            ("chunk", J.int chunk);
            ("json", J.bool as_json);
          ]
    | Stats -> base @ [ ("kind", J.str "stats") ]
    | Subscribe -> base @ [ ("kind", J.str "subscribe") ]
    | Cancel target ->
        base @ [ ("kind", J.str "cancel"); ("target", J.int target) ]
    | Shutdown -> base @ [ ("kind", J.str "shutdown") ]
  in
  J.obj fields ^ "\n"

(* ---------- responses ---------- *)

type response =
  | Queued of { id : int; key : string }
  | Result of { id : int; warm : bool; dedup : bool; payload : string }
  | Error of { id : int; message : string }
  | Cancelled of { id : int }
  | Stats_reply of { id : int; metrics : (string * float) list }
  | Subscribed of { id : int }
  | Bye of { id : int }
  | Progress of { key : string; state : string; queue_depth : int }
  | Telemetry of { metrics : (string * float) list }

let metrics_obj metrics =
  J.obj (List.map (fun (k, v) -> (k, J.float_full v)) metrics)

let encode_response r =
  (J.obj
     (match r with
     | Queued { id; key } ->
         [ ("id", J.int id); ("event", J.str "queued"); ("key", J.str key) ]
     | Result { id; warm; dedup; payload } ->
         [
           ("id", J.int id);
           ("event", J.str "result");
           ("warm", J.bool warm);
           ("dedup", J.bool dedup);
           ("payload", J.str payload);
         ]
     | Error { id; message } ->
         [
           ("id", J.int id);
           ("event", J.str "error");
           ("message", J.str message);
         ]
     | Cancelled { id } -> [ ("id", J.int id); ("event", J.str "cancelled") ]
     | Stats_reply { id; metrics } ->
         [
           ("id", J.int id);
           ("event", J.str "stats");
           ("metrics", metrics_obj metrics);
         ]
     | Subscribed { id } -> [ ("id", J.int id); ("event", J.str "subscribed") ]
     | Bye { id } -> [ ("id", J.int id); ("event", J.str "bye") ]
     | Progress { key; state; queue_depth } ->
         [
           ("event", J.str "progress");
           ("key", J.str key);
           ("state", J.str state);
           ("queue_depth", J.int queue_depth);
         ]
     | Telemetry { metrics } ->
         [ ("event", J.str "telemetry"); ("metrics", metrics_obj metrics) ]))
  ^ "\n"

let parse_metrics what o name =
  match field o name with
  | None -> bad "%s.%s: missing" what name
  | Some j ->
      List.map
        (fun (k, v) ->
          match v with
          | Num f -> (k, f)
          | _ -> bad "%s.%s.%s: expected a number" what name k)
        (as_obj (what ^ "." ^ name) j)

let parse_response line =
  match parse line with
  | j -> (
      let what = "response" in
      let o = as_obj what j in
      match
        match get_str what o "event" with
        | "queued" ->
            Queued { id = get_int what o "id"; key = get_str what o "key" }
        | "result" ->
            Result
              {
                id = get_int what o "id";
                warm = get_bool_opt what o "warm" ~default:false;
                dedup = get_bool_opt what o "dedup" ~default:false;
                payload = get_str what o "payload";
              }
        | "error" ->
            Error
              { id = get_int what o "id"; message = get_str what o "message" }
        | "cancelled" -> Cancelled { id = get_int what o "id" }
        | "stats" ->
            Stats_reply
              {
                id = get_int what o "id";
                metrics = parse_metrics what o "metrics";
              }
        | "subscribed" -> Subscribed { id = get_int what o "id" }
        | "bye" -> Bye { id = get_int what o "id" }
        | "progress" ->
            Progress
              {
                key = get_str what o "key";
                state = get_str what o "state";
                queue_depth = get_int what o "queue_depth";
              }
        | "telemetry" -> Telemetry { metrics = parse_metrics what o "metrics" }
        | other -> bad "response.event: unknown event %S" other
      with
      | r -> Ok r
      | exception Bad msg -> Error msg)
  | exception Bad msg -> Error msg
