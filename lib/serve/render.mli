(** Textual reports for finished scenario runs.

    These are the exact renderings the CLI tools print — [bcn_sim]'s
    single-run report and its replica table are calls into this module —
    factored out so the serve daemon can return byte-identical payloads
    for the same scenario without going through a pipe. Everything here
    is a pure function of the result values, so a warm store answer
    renders exactly like the cold run it memoized. *)

val single : Simnet.Runner.result -> string
(** The [bcn_sim] single-run report (events, delivered bits,
    utilization, drops, BCN/PAUSE counts, Jain fairness). *)

val replicas : seeds:int array -> Simnet.Runner.result array -> string
(** The [bcn_sim --replicas] report: per-replica table plus
    mean +/- stddev aggregates. [seeds.(i)] labels row [i]. *)

val e2cm : Simnet.E2cm.result -> string
val fera : Simnet.Fera.result -> string
val multihop : Simnet.Multihop.result -> string

val outcome : seeds:int array -> Store.Sweep.outcome -> string
(** Dispatch on the outcome's model: BCN results render via {!single}
    (one replica) or {!replicas}, the other models via their own
    summaries. *)
