type t = { fd : Unix.file_descr; mutable pending : string }

let connect ?(retries = 50) ~path () =
  let rec go n =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX path) with
    | () -> { fd; pending = "" }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0 ->
        Unix.close fd;
        Unix.sleepf 0.1;
        go (n - 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  go retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd line =
  let b = Bytes.unsafe_of_string line in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let send t ~id command = write_all t.fd (Protocol.encode_request ~id command)

let send_raw t bytes = write_all t.fd bytes

let next t =
  let scratch = Bytes.create 65536 in
  let rec read_line () =
    match String.index_opt t.pending '\n' with
    | Some nl ->
        let line = String.sub t.pending 0 nl in
        t.pending <-
          String.sub t.pending (nl + 1) (String.length t.pending - nl - 1);
        line
    | None -> (
        match Unix.read t.fd scratch 0 (Bytes.length scratch) with
        | 0 -> failwith "Serve.Client: connection closed by daemon"
        | n ->
            t.pending <- t.pending ^ Bytes.sub_string scratch 0 n;
            read_line ()
        | exception Unix.Unix_error (EINTR, _, _) -> read_line ())
  in
  let line = read_line () in
  match Protocol.parse_response line with
  | Ok r -> r
  | Error msg -> failwith ("Serve.Client: bad response line: " ^ msg)

let rec await t ~id =
  match next t with
  | Protocol.Queued _ | Protocol.Progress _ | Protocol.Telemetry _ ->
      await t ~id
  | ( Protocol.Result { id = rid; _ }
    | Protocol.Error { id = rid; _ }
    | Protocol.Cancelled { id = rid }
    | Protocol.Stats_reply { id = rid; _ }
    | Protocol.Subscribed { id = rid }
    | Protocol.Bye { id = rid } ) as r ->
      if rid = id then r else await t ~id

let rpc t ~id command =
  send t ~id command;
  await t ~id

let request t ~id req = rpc t ~id (Protocol.Compute req)

let stats t ~id =
  match rpc t ~id Protocol.Stats with
  | Protocol.Stats_reply { metrics; _ } -> metrics
  | Protocol.Error { message; _ } -> failwith ("stats: " ^ message)
  | _ -> failwith "stats: unexpected response"

let shutdown t ~id =
  match rpc t ~id Protocol.Shutdown with
  | Protocol.Bye _ -> ()
  | Protocol.Error { message; _ } -> failwith ("shutdown: " ^ message)
  | _ -> failwith "shutdown: unexpected response"
