(** Blocking client for the serve daemon.

    Thin by design: {!send} and {!next} expose the raw NDJSON exchange
    (what the concurrency tests need to interleave requests across
    connections), {!rpc} and the helpers wrap the common
    send-and-await-final-answer shape. One [t] per connection; not
    thread-safe — share nothing, open one per domain. *)

type t

val connect : ?retries:int -> path:string -> unit -> t
(** Connect to the daemon's socket, retrying [retries] times (default
    50) at 100 ms intervals while the socket is absent or refusing —
    covers the start-up race after forking a daemon. Raises
    [Unix.Unix_error] once the retries are exhausted. *)

val close : t -> unit

val send : t -> id:int -> Protocol.command -> unit
(** Write one request line. *)

val send_raw : t -> string -> unit
(** Write pre-encoded bytes as-is — e.g. two request lines in one
    [write], which guarantees the daemon admits them back-to-back
    (the in-flight dedup tests depend on that atomicity). *)

val next : t -> Protocol.response
(** Read the next response line (blocking). Raises [Failure] on a
    closed connection or an unparseable line. *)

val rpc : t -> id:int -> Protocol.command -> Protocol.response
(** [send] then read until the {e final} response for [id]: skips the
    [Queued] acknowledgement and any broadcast [Progress]/[Telemetry]
    lines, returns on [Result]/[Error]/[Cancelled]/[Stats_reply]/
    [Subscribed]/[Bye]. *)

val request : t -> id:int -> Tasks.request -> Protocol.response
(** [rpc] on [Compute]: [Result] or [Error]. *)

val stats : t -> id:int -> (string * float) list
(** The daemon's metrics snapshot ([store.*], [serve.*], [conn.*] for
    this connection). Raises [Failure] on an error reply. *)

val shutdown : t -> id:int -> unit
(** Request graceful shutdown and wait for [bye] (sent only after all
    in-flight work has drained). *)
