type config = {
  socket_path : string;
  store_dir : string option;
  jobs : int;
  max_inflight : int;
  log : bool;
}

let default_config ~socket_path =
  {
    socket_path;
    store_dir = None;
    jobs = max 1 (Parallel.Pool.default_size () - 1);
    max_inflight = 64;
    log = false;
  }

type conn = {
  fd : Unix.file_descr;
  pending : Buffer.t;  (* bytes of an incomplete trailing line *)
  mutable subscribed : bool;
  mutable warm : int;
  mutable cold : int;
  mutable joined : int;
  mutable alive : bool;
}

(* One admitted cold key. [waiters] is in arrival order (the head is
   the request that created the job); both flags cross the event-loop /
   worker boundary, everything else is event-loop-private. *)
type job = {
  req : Tasks.request;
  mutable waiters : (conn * int) list;
  cancelled : bool Atomic.t;
  started : bool Atomic.t;
}

(* A daemon that died without cleanup leaves its socket file behind;
   distinguish that from a live daemon by probing with a connect. *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect probe (ADDR_UNIX path) with
    | () ->
        Unix.close probe;
        failwith (Printf.sprintf "a daemon is already serving %s" path)
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
        Unix.close probe;
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | exception e ->
        Unix.close probe;
        raise e
  end

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Serve.Daemon.run: jobs must be >= 1";
  if cfg.max_inflight < 1 then
    invalid_arg "Serve.Daemon.run: max_inflight must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  claim_socket_path cfg.socket_path;
  let srv = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind srv (ADDR_UNIX cfg.socket_path);
  Unix.listen srv 64;
  let pipe_r, pipe_w = Unix.pipe () in
  let cache = Option.map (fun dir -> Store.Cache.open_ ~dir) cfg.store_dir in
  let inflight : (string, job) Hashtbl.t = Hashtbl.create 32 in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  let completions : (string * (string, string) result) Queue.t =
    Queue.create ()
  in
  let cmx = Mutex.create () in
  let executed = Atomic.make 0 in
  let draining = ref false in
  let byes : (conn * int) list ref = ref [] in
  let logf fmt =
    (if cfg.log then Printf.printf else Printf.ifprintf stdout)
      (fmt ^^ "\n%!")
  in
  let scratch = Bytes.create 65536 in
  let send c (resp : Protocol.response) =
    if c.alive then begin
      let line = Protocol.encode_response resp in
      let b = Bytes.unsafe_of_string line in
      let n = Bytes.length b in
      let rec go off =
        if off < n then
          match Unix.write c.fd b off (n - off) with
          | w -> go (off + w)
          | exception Unix.Unix_error (EINTR, _, _) -> go off
          | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
              c.alive <- false
      in
      go 0
    end
  in
  let broadcast resp =
    Hashtbl.iter (fun _ c -> if c.subscribed then send c resp) conns
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.close srv;
      Unix.close pipe_r;
      Unix.close pipe_w;
      Hashtbl.iter
        (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
        conns;
      try Unix.unlink cfg.socket_path
      with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Parallel.Pool.with_pool ~size:(cfg.jobs + 1) (fun pool ->
          let snapshot ?conn () =
            let mx = Telemetry.Metrics.create () in
            (match cache with
            | Some c ->
                Store.Cache.publish_metrics c mx;
                (* same metric name as ever, but index-backed now: a
                   stats request must not walk a million-object tree *)
                Telemetry.Metrics.add mx "store.entries"
                  (Store.Cache.objects c)
            | None -> ());
            Telemetry.Metrics.add mx "serve.queue_depth"
              (Parallel.Pool.pending pool);
            Telemetry.Metrics.add mx "serve.inflight"
              (Hashtbl.length inflight);
            Telemetry.Metrics.add mx "serve.executed" (Atomic.get executed);
            (match conn with
            | Some c ->
                Telemetry.Metrics.add mx "conn.warm" c.warm;
                Telemetry.Metrics.add mx "conn.cold" c.cold;
                Telemetry.Metrics.add mx "conn.joined" c.joined
            | None -> ());
            List.map
              (fun name ->
                (name, float_of_int (Telemetry.Metrics.counter_value mx name)))
              (Telemetry.Metrics.names mx)
          in
          let finish_job hex res =
            match Hashtbl.find_opt inflight hex with
            | None -> ()
            | Some job ->
                Hashtbl.remove inflight hex;
                (match res with
                | Ok payload ->
                    List.iteri
                      (fun i (c, id) ->
                        send c
                          (Protocol.Result
                             { id; warm = false; dedup = i > 0; payload }))
                      job.waiters
                | Error message ->
                    List.iter
                      (fun (c, id) -> send c (Protocol.Error { id; message }))
                      job.waiters);
                broadcast
                  (Protocol.Progress
                     {
                       key = hex;
                       state = "done";
                       queue_depth = Parallel.Pool.pending pool;
                     });
                broadcast (Protocol.Telemetry { metrics = snapshot () });
                logf "done %s -> %d waiter(s)" (Tasks.describe job.req)
                  (List.length job.waiters)
          in
          let submit_cold conn id req key hex =
            let job =
              {
                req;
                waiters = [ (conn, id) ];
                cancelled = Atomic.make false;
                started = Atomic.make false;
              }
            in
            Hashtbl.add inflight hex job;
            conn.cold <- conn.cold + 1;
            send conn (Protocol.Queued { id; key = hex });
            broadcast
              (Protocol.Progress
                 {
                   key = hex;
                   state = "start";
                   queue_depth = Parallel.Pool.pending pool;
                 });
            logf "cold %s" (Tasks.describe req);
            Parallel.Pool.submit pool (fun () ->
                Atomic.set job.started true;
                let res =
                  if Atomic.get job.cancelled then Error "cancelled"
                  else
                    match
                      match cache with
                      | Some c ->
                          Store.Cache.memo c key (fun () ->
                              Atomic.incr executed;
                              Tasks.execute ~cache:c job.req)
                      | None ->
                          Atomic.incr executed;
                          Tasks.execute job.req
                    with
                    | payload -> Ok payload
                    | exception e -> Error (Printexc.to_string e)
                in
                Mutex.lock cmx;
                Queue.push (hex, res) completions;
                Mutex.unlock cmx;
                let b = Bytes.make 1 'c' in
                let rec poke () =
                  match Unix.write pipe_w b 0 1 with
                  | _ -> ()
                  | exception Unix.Unix_error (EINTR, _, _) -> poke ()
                in
                poke ())
          in
          let handle_compute conn id req =
            let key = Store.Key.of_material (Tasks.material req) in
            let hex = Store.Key.to_hex key in
            match Hashtbl.find_opt inflight hex with
            | Some job ->
                (* in-flight dedup: share the running computation *)
                job.waiters <- job.waiters @ [ (conn, id) ];
                conn.joined <- conn.joined + 1;
                send conn (Protocol.Queued { id; key = hex });
                logf "join %s" (Tasks.describe req)
            | None -> (
                let warm =
                  match cache with
                  | Some c when Store.Cache.mem c key ->
                      (Store.Cache.find_value c key : string option)
                  | _ -> None
                in
                match warm with
                | Some payload ->
                    conn.warm <- conn.warm + 1;
                    send conn
                      (Protocol.Result
                         { id; warm = true; dedup = false; payload });
                    logf "warm %s" (Tasks.describe req)
                | None ->
                    if !draining then
                      send conn
                        (Protocol.Error
                           { id; message = "draining: daemon is shutting down" })
                    else if Hashtbl.length inflight >= cfg.max_inflight then
                      send conn
                        (Protocol.Error
                           { id; message = "busy: in-flight limit reached" })
                    else submit_cold conn id req key hex)
          in
          let handle_request conn { Protocol.id; command } =
            match command with
            | Protocol.Compute req -> handle_compute conn id req
            | Protocol.Stats ->
                send conn
                  (Protocol.Stats_reply
                     { id; metrics = snapshot ~conn () })
            | Protocol.Subscribe ->
                conn.subscribed <- true;
                send conn (Protocol.Subscribed { id })
            | Protocol.Cancel target ->
                let found = ref false in
                Hashtbl.iter
                  (fun _ job ->
                    if
                      (not !found)
                      && List.exists
                           (fun (c, i) -> c == conn && i = target)
                           job.waiters
                    then begin
                      found := true;
                      job.waiters <-
                        List.filter
                          (fun (c, i) -> not (c == conn && i = target))
                          job.waiters;
                      if job.waiters = [] && not (Atomic.get job.started) then
                        Atomic.set job.cancelled true
                    end)
                  inflight;
                if !found then send conn (Protocol.Cancelled { id = target })
                else
                  send conn
                    (Protocol.Error
                       {
                         id;
                         message =
                           Printf.sprintf
                             "cancel: no in-flight request %d on this \
                              connection"
                             target;
                       })
            | Protocol.Shutdown ->
                draining := true;
                byes := (conn, id) :: !byes;
                logf "shutdown requested (%d in flight)"
                  (Hashtbl.length inflight)
          in
          let handle_line conn line =
            match Protocol.parse_request line with
            | Ok r -> handle_request conn r
            | Error msg ->
                send conn
                  (Protocol.Error { id = 0; message = "parse error: " ^ msg })
          in
          let drop_conn conn =
            conn.alive <- false;
            Hashtbl.remove conns conn.fd;
            (try Unix.close conn.fd with Unix.Unix_error _ -> ());
            (* a vanished client abandons its waits; a job left with no
               waiters is skipped unless a worker already started it *)
            Hashtbl.iter
              (fun _ job ->
                job.waiters <- List.filter (fun (c, _) -> c != conn) job.waiters;
                if job.waiters = [] && not (Atomic.get job.started) then
                  Atomic.set job.cancelled true)
              inflight
          in
          let handle_readable conn =
            match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
            | 0 -> drop_conn conn
            | n ->
                Buffer.add_subbytes conn.pending scratch 0 n;
                let s = Buffer.contents conn.pending in
                let rec go start =
                  match String.index_from_opt s start '\n' with
                  | Some nl ->
                      let line = String.sub s start (nl - start) in
                      if conn.alive then handle_line conn line;
                      go (nl + 1)
                  | None ->
                      Buffer.clear conn.pending;
                      Buffer.add_substring conn.pending s start
                        (String.length s - start)
                in
                go 0
            | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
                drop_conn conn
            | exception Unix.Unix_error (EINTR, _, _) -> ()
          in
          logf "serving on %s (%d worker lane(s), store %s)" cfg.socket_path
            cfg.jobs
            (match cfg.store_dir with Some d -> d | None -> "none");
          let rec loop () =
            (* completions first: the pipe may have been poked while we
               were handling sockets *)
            let finished = ref [] in
            Mutex.lock cmx;
            while not (Queue.is_empty completions) do
              finished := Queue.pop completions :: !finished
            done;
            Mutex.unlock cmx;
            List.iter
              (fun (hex, res) -> finish_job hex res)
              (List.rev !finished);
            if !draining && Hashtbl.length inflight = 0 then
              (* drained: answer the shutdown requester(s) and exit *)
              List.iter
                (fun (c, id) -> send c (Protocol.Bye { id }))
                (List.rev !byes)
            else begin
              let fds =
                srv :: pipe_r
                :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
              in
              (match Unix.select fds [] [] (-1.) with
              | exception Unix.Unix_error (EINTR, _, _) -> ()
              | readable, _, _ ->
                  List.iter
                    (fun fd ->
                      if fd = srv then begin
                        let cfd, _ = Unix.accept srv in
                        Hashtbl.replace conns cfd
                          {
                            fd = cfd;
                            pending = Buffer.create 256;
                            subscribed = false;
                            warm = 0;
                            cold = 0;
                            joined = 0;
                            alive = true;
                          }
                      end
                      else if fd = pipe_r then
                        ignore (Unix.read pipe_r scratch 0 256)
                      else
                        match Hashtbl.find_opt conns fd with
                        | Some conn -> handle_readable conn
                        | None -> ())
                    readable);
              loop ()
            end
          in
          loop ();
          logf "drained; exiting"))
