(* The format strings below are the canonical report shapes; bcn_sim
   prints these strings verbatim, so the daemon's payloads and the CLI's
   stdout agree byte for byte by construction. *)

let mean_std vs =
  let n = float_of_int (Array.length vs) in
  let mean = Array.fold_left ( +. ) 0. vs /. n in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. vs /. n
  in
  (mean, sqrt var)

let single (r : Simnet.Runner.result) =
  let open Simnet.Runner in
  Format.asprintf
    "@[<v>events processed: %d@,\
     delivered: %s bit (utilization %.3f)@,\
     drops: %d (%s bit)@,\
     BCN messages: %d positive, %d negative (%d frames sampled)@,\
     PAUSE events: %d@,\
     Jain fairness of final rates: %.4f@]@."
    r.events_processed
    (Report.Table.si r.delivered_bits)
    r.utilization r.drops
    (Report.Table.si r.dropped_bits)
    r.bcn_positive r.bcn_negative r.sampled_frames r.pause_on_events
    (fairness r.final_rates)

let replicas ~seeds results =
  let open Simnet.Runner in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (r : result) ->
           [
             string_of_int seeds.(i);
             string_of_int r.events_processed;
             Printf.sprintf "%.3f" r.utilization;
             string_of_int r.drops;
             string_of_int r.pause_on_events;
             Printf.sprintf "%.3f" (fairness r.final_rates);
           ])
         results)
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Report.Table.render
       ~headers:[ "seed"; "events"; "util"; "drops"; "PAUSEs"; "fairness" ]
       ~rows);
  Buffer.add_string b
    (Format.asprintf "@.across %d replicas:@." (Array.length results));
  let agg label f =
    let mean, std = mean_std (Array.map f results) in
    Buffer.add_string b
      (Format.asprintf "%-10s %.4f +/- %.4f@." label mean std)
  in
  agg "util" (fun r -> r.utilization);
  agg "fairness" (fun r -> fairness r.final_rates);
  agg "drops" (fun r -> float_of_int r.drops);
  Buffer.contents b

let e2cm (r : Simnet.E2cm.result) =
  Format.asprintf
    "@[<v>E2CM run@,\
     delivered: %s bit (utilization %.3f)@,\
     drops: %d@,\
     rate messages: %d@,\
     Jain fairness of final rates: %.4f@]@."
    (Report.Table.si r.Simnet.E2cm.delivered_bits)
    r.Simnet.E2cm.utilization r.Simnet.E2cm.drops r.Simnet.E2cm.messages
    (Simnet.Runner.fairness r.Simnet.E2cm.final_rates)

let fera (r : Simnet.Fera.result) =
  Format.asprintf
    "@[<v>FERA run@,\
     delivered: %s bit (utilization %.3f)@,\
     drops: %d@,\
     advertisements: %d@,\
     Jain fairness of final rates: %.4f@,\
     convergence: %s@]@."
    (Report.Table.si r.Simnet.Fera.delivered_bits)
    r.Simnet.Fera.utilization r.Simnet.Fera.drops
    r.Simnet.Fera.advertisements
    (Simnet.Runner.fairness r.Simnet.Fera.final_rates)
    (match r.Simnet.Fera.convergence_time with
    | Some t -> Printf.sprintf "%g s" t
    | None -> "none within horizon")

let multihop (r : Simnet.Multihop.result) =
  Format.asprintf
    "@[<v>multihop run@,\
     drops: %d at A, %d at B (utilization of B %.3f)@,\
     beat-down ratio: %.4f@,\
     BCN messages: %d@]@."
    r.Simnet.Multihop.drops_a r.Simnet.Multihop.drops_b
    r.Simnet.Multihop.utilization_b r.Simnet.Multihop.beatdown
    r.Simnet.Multihop.bcn_messages

(* Models without a bespoke report above (RCP today, anything compiled
   later) render through the protocol-agnostic stats view — new
   protocols light up here with zero per-protocol code. *)
let generic o =
  let s = (Simnet.Scenario.outcome_stats o).(0) in
  Format.asprintf
    "@[<v>%s run@,\
     utilization %.3f@,\
     drops: %d@,\
     feedback messages: %d@,\
     Jain fairness of final rates: %s@]@."
    (Simnet.Scenario.outcome_model o)
    s.Simnet.Scenario.utilization s.Simnet.Scenario.drops
    s.Simnet.Scenario.messages
    (match s.Simnet.Scenario.final_rates with
    | Some rates -> Printf.sprintf "%.4f" (Simnet.Runner.fairness rates)
    | None -> "n/a")

let outcome ~seeds = function
  | Store.Sweep.Bcn_results rs ->
      if Array.length rs > 1 then replicas ~seeds rs else single rs.(0)
  | Store.Sweep.E2cm_result r -> e2cm r
  | Store.Sweep.Fera_result r -> fera r
  | Store.Sweep.Multihop_result r -> multihop r
  | o -> generic o
