(** The serve wire protocol: newline-delimited JSON, one value per line.

    Requests are single-line JSON objects with an integer [id] (echoed
    on every reply so one connection can interleave requests) and a
    [kind] selecting the command; computable kinds carry the same
    vocabulary as the matching CLI flags. Responses are single-line
    objects dispatched on [event]:

    {v
    request:  {"id": 1, "kind": "run", "scenario": {...canonical...}}
              {"id": 2, "kind": "sweep", "param": "gi", "from": 0.5,
               "to": 8, "steps": 12, "log": false, "buffer": 15e6}
              {"id": 3, "kind": "margin", "axes": "bcn-loss",
               "t_end": 0.02, "iters": 8, "seed": 0}
              {"id": 4, "kind": "region", "param": "gi", "from": ...,
               "to": ..., "param2": "gd", "from2": ..., "to2": ...}
              {"id": 7, "kind": "batch", "spec": {"fabric": 1, ...},
               "chunk": 16, "json": false}
              {"id": 5, "kind": "stats" | "subscribe" | "shutdown"}
              {"id": 6, "kind": "cancel", "target": 3}
    response: {"id": N, "event": "queued", "key": "<64 hex>"}
              {"id": N, "event": "result", "warm": b, "dedup": b,
               "payload": "..."}
              {"id": N, "event": "error", "message": "..."}
              {"id": N, "event": "cancelled"}
              {"id": N, "event": "stats", "metrics": {"store.hits": h, ...}}
              {"id": N, "event": "subscribed"}   {"id": N, "event": "bye"}
    broadcast (subscribers only):
              {"event": "progress", "key": "...", "state": "start|done",
               "queue_depth": d}
              {"event": "telemetry", "metrics": {...}}
    v}

    Both sides parse with {!Simnet.Json_read} and emit with
    {!Telemetry.Json} — the same machinery as the canonical scenario
    codec, same strictness (unknown fields are errors). *)

type command =
  | Compute of Tasks.request
  | Stats
  | Subscribe
  | Cancel of int  (** target request id on the same connection *)
  | Shutdown

type request = { id : int; command : command }

val parse_request : string -> (request, string) result
(** One request line (without the newline). A [run] request's
    [scenario] field is decoded by {!Simnet.Scenario.of_json} — the
    canonical codec, same error messages. *)

(** {1 Request encoding (client side)} *)

val encode_request : id:int -> command -> string
(** The request line, newline-terminated. *)

(** {1 Responses} *)

type response =
  | Queued of { id : int; key : string }
  | Result of { id : int; warm : bool; dedup : bool; payload : string }
  | Error of { id : int; message : string }
  | Cancelled of { id : int }
  | Stats_reply of { id : int; metrics : (string * float) list }
  | Subscribed of { id : int }
  | Bye of { id : int }
  | Progress of { key : string; state : string; queue_depth : int }
  | Telemetry of { metrics : (string * float) list }

val encode_response : response -> string
(** The response line, newline-terminated. [Stats_reply]/[Telemetry]
    metrics render as a JSON object in insertion order. *)

val parse_response : string -> (response, string) result
