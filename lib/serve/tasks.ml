type request =
  | Run of Simnet.Scenario.t
  | Sweep of {
      param : string;
      lo : float;
      hi : float;
      steps : int;
      log_scale : bool;
      buffer : float;
    }
  | Margin of {
      axes : string list;
      flap_period : float;
      flap_duty : float;
      t_end : float;
      transient : float option;
      iters : int option;
      seed : int;
    }
  | Region of {
      param : string;
      lo : float;
      hi : float;
      param2 : string;
      lo2 : float;
      hi2 : float;
      buffer : float;
      coarse : int;
      levels : int;
    }
  | Batch of { spec : Fabric.Spec.t; chunk : int; as_json : bool }

let describe = function
  | Run s -> "run " ^ Simnet.Scenario.describe s
  | Sweep { param; _ } -> "sweep " ^ param
  | Margin { axes; _ } -> "margin " ^ String.concat "," axes
  | Region { param; param2; _ } -> Printf.sprintf "region %s x %s" param param2
  | Batch { spec; _ } -> "batch " ^ Fabric.Spec.describe spec

(* ---------- shared CLI vocabulary: the parameter-axis registry ---------- *)

(* One row per sweepable parameter, one list for every consumer
   (bcn_sweep grids, region planes, serve requests, tests): name
   resolution, CLI docs and the application function all read the same
   data, so the tools cannot drift from the daemon. *)

type param_target =
  | Fluid_param of (Fluid.Params.t -> float -> Fluid.Params.t)
      (** rewrites the fluid parameter point (every model shares it) *)
  | Model_param of (Simnet.Scenario.t -> float -> Simnet.Scenario.t)
      (** rewrites a model-arm knob inside a scenario *)

type param_axis = {
  axis_name : string;
  aliases : string list;
  axis_doc : string;
  target : param_target;
}

let fluid_axis ?(aliases = []) axis_name axis_doc f =
  { axis_name; aliases; axis_doc; target = Fluid_param f }

(* [set] rebuilds the whole model arm: inline-record fields cannot
   leave their constructor *)
let rcp_axis ?(aliases = []) axis_name axis_doc set =
  let apply s v =
    match s.Simnet.Scenario.model with
    | Simnet.Scenario.Rcp { alpha; beta; interval; variant } ->
        {
          s with
          Simnet.Scenario.model = set ~alpha ~beta ~interval ~variant v;
        }
    | _ -> invalid_arg (axis_name ^ " applies to RCP scenarios only")
  in
  { axis_name; aliases; axis_doc; target = Model_param apply }

let param_axes =
  [
    fluid_axis "gi" "BCN additive-increase gain" (fun p v ->
        Fluid.Params.with_gains ~gi:v p);
    fluid_axis "gd" "BCN multiplicative-decrease gain" (fun p v ->
        Fluid.Params.with_gains ~gd:v p);
    fluid_axis "ru" "BCN rate unit" (fun p v ->
        Fluid.Params.with_gains ~ru:v p);
    fluid_axis "q0" "queue setpoint, bits" Fluid.Params.with_q0;
    fluid_axis "buffer" "buffer size, bits" Fluid.Params.with_buffer;
    fluid_axis ~aliases:[ "flows" ] "n" "number of flows" (fun p v ->
        Fluid.Params.with_flows p (int_of_float v));
    fluid_axis "w" "sigma derivative weight" (fun p v ->
        Fluid.Params.with_sampling ~w:v p);
    fluid_axis "pm" "sampling probability" (fun p v ->
        Fluid.Params.with_sampling ~pm:v p);
    fluid_axis ~aliases:[ "c" ] "capacity" "link capacity, bit/s"
      Fluid.Params.with_capacity;
    rcp_axis ~aliases:[ "rcp_alpha" ] "rcp-alpha" "RCP rate-mismatch gain"
      (fun ~alpha:_ ~beta ~interval ~variant v ->
        Simnet.Scenario.Rcp { alpha = v; beta; interval; variant });
    rcp_axis ~aliases:[ "rcp_beta" ] "rcp-beta"
      "RCP queue-drain gain (0 = no-queue-term ablation)"
      (fun ~alpha ~beta:_ ~interval ~variant v ->
        Simnet.Scenario.Rcp { alpha; beta = v; interval; variant });
    rcp_axis ~aliases:[ "rcp_interval" ] "rcp-interval"
      "RCP control interval, seconds"
      (fun ~alpha ~beta ~interval:_ ~variant v ->
        Simnet.Scenario.Rcp { alpha; beta; interval = v; variant });
  ]

let find_axis kind axes name names =
  match
    List.find_opt (fun a -> a.axis_name = name || List.mem name a.aliases) axes
  with
  | Some a -> a
  | None ->
      invalid_arg (Printf.sprintf "unknown %s %S (expected %s)" kind name names)

let param_names = String.concat " | " (List.map (fun a -> a.axis_name) param_axes)
let find_param name = find_axis "parameter" param_axes name param_names

let apply_param base param v =
  match (find_param param).target with
  | Fluid_param f -> f base v
  | Model_param _ ->
      invalid_arg
        (param ^ " is a model parameter: it applies to scenarios, not fluid \
                  parameter points")

let apply_scenario_param s param v =
  match (find_param param).target with
  | Fluid_param f ->
      { s with Simnet.Scenario.params = f s.Simnet.Scenario.params v }
  | Model_param f -> f s v

(* ---------- the fault-axis registry ---------- *)

type fault_axis = {
  fault_name : string;
  fault_aliases : string list;
  fault_doc : string;
  fault_make : flap_period:float -> flap_duty:float -> Faultnet.Resilience.axis;
}

let fault_axes =
  [
    {
      fault_name = "bcn-loss";
      fault_aliases = [ "bcn_loss" ];
      fault_doc = "drop feedback frames (both signs) with probability = severity";
      fault_make =
        (fun ~flap_period:_ ~flap_duty:_ -> Faultnet.Resilience.Bcn_loss);
    };
    {
      fault_name = "pause-loss";
      fault_aliases = [ "pause_loss" ];
      fault_doc = "drop PAUSE frames with probability = severity";
      fault_make =
        (fun ~flap_period:_ ~flap_duty:_ -> Faultnet.Resilience.Pause_loss);
    };
    {
      fault_name = "flap-depth";
      fault_aliases = [ "flap_depth" ];
      fault_doc = "square capacity flaps dipping to (1 - severity) * C";
      fault_make =
        (fun ~flap_period ~flap_duty ->
          Faultnet.Resilience.Flap_depth
            { period = flap_period; duty = flap_duty });
    };
  ]

let axis_names =
  String.concat " | " (List.map (fun a -> a.fault_name) fault_axes)

let axis_of_name ~flap_period ~flap_duty name =
  let a =
    match
      List.find_opt
        (fun a -> a.fault_name = name || List.mem name a.fault_aliases)
        fault_axes
    with
    | Some a -> a
    | None ->
        invalid_arg
          (Printf.sprintf "unknown axis %S (expected %s)" name axis_names)
  in
  a.fault_make ~flap_period ~flap_duty

let sweep_header param =
  [
    param; "case"; "required_B"; "criterion_ok"; "numeric_max_q";
    "numeric_min_q"; "strongly_stable"; "oscillations"; "decay_per_cycle";
  ]

let sweep_value ~lo ~hi ~steps ~log_scale i =
  let f = float_of_int i /. float_of_int (steps - 1) in
  if log_scale then lo *. ((hi /. lo) ** f) else lo +. ((hi -. lo) *. f)

let sweep_row v p =
  let verdict = Fluid.Stability.analyze p in
  let t = Fluid.Transient.measure p in
  [
    Printf.sprintf "%g" v;
    Format.asprintf "%a" Fluid.Cases.pp_case verdict.Fluid.Stability.case;
    Printf.sprintf "%g" (Fluid.Criterion.required_buffer p);
    string_of_bool (Fluid.Criterion.satisfied p);
    Printf.sprintf "%g"
      (verdict.Fluid.Stability.numeric_max +. p.Fluid.Params.q0);
    Printf.sprintf "%g"
      (verdict.Fluid.Stability.numeric_min +. p.Fluid.Params.q0);
    string_of_bool verdict.Fluid.Stability.strongly_stable;
    string_of_int t.Fluid.Transient.oscillations;
    (match t.Fluid.Transient.decay_per_cycle with
    | Some d -> Printf.sprintf "%.6f" d
    | None -> "");
  ]

(* one cache entry per grid point, keyed by the full resolved parameter
   set plus the raw sweep coordinate — the exact material bcn_sweep has
   always used, so CLI-warmed rows answer daemon sweeps and back *)
let sweep_row_material ~param p v =
  "bcn_sweep.row@v1\nparam=" ^ param ^ "\n"
  ^ Simnet.Scenario.encode_params p
  ^ "\n"
  ^ Telemetry.Json.float_full v

(* ---------- canonical request material ---------- *)

let ff = Telemetry.Json.float_full

let material = function
  | Run s -> "serve.run@v1\n" ^ Simnet.Scenario.encode s
  | Sweep { param; lo; hi; steps; log_scale; buffer } ->
      Printf.sprintf "serve.sweep@v1\nparam=%s\nlo=%s\nhi=%s\nsteps=%d\nlog=%b\nbuffer=%s"
        param (ff lo) (ff hi) steps log_scale (ff buffer)
  | Margin { axes; flap_period; flap_duty; t_end; transient; iters; seed } ->
      Printf.sprintf
        "serve.margin@v1\naxes=%s\nflap=%s:%s\nt_end=%s\ntransient=%s\niters=%s\nseed=%d"
        (String.concat "," axes)
        (ff flap_period) (ff flap_duty) (ff t_end)
        (match transient with Some t -> ff t | None -> "default")
        (match iters with Some i -> string_of_int i | None -> "default")
        seed
  | Region { param; lo; hi; param2; lo2; hi2; buffer; coarse; levels } ->
      Printf.sprintf
        "serve.region@v1\nparam=%s\nlo=%s\nhi=%s\nparam2=%s\nlo2=%s\nhi2=%s\nbuffer=%s\ncoarse=%d\nlevels=%d"
        param (ff lo) (ff hi) param2 (ff lo2) (ff hi2) (ff buffer) coarse
        levels
  | Batch { spec; chunk = _; as_json } ->
      (* chunk stays out of the material: it shapes the leases, never
         the merged bytes, so any chunking answers any other *)
      Printf.sprintf "serve.batch@v1\nformat=%s\n%s"
        (if as_json then "json" else "csv")
        (Fabric.Spec.encode spec)

(* ---------- execution ---------- *)

(* distinct fabric worker ids for concurrent Batch lanes in one daemon
   process: ids must be unique among live workers *)
let batch_seq = Atomic.make 0

let execute ?cache req =
  match req with
  | Run s ->
      let outcome = Store.Sweep.memo_run ?cache ~jobs:1 s in
      let seeds =
        Array.init s.Simnet.Scenario.replicas (fun i ->
            s.Simnet.Scenario.seed + i)
      in
      Render.outcome ~seeds outcome
  | Sweep { param; lo; hi; steps; log_scale; buffer } ->
      if steps < 2 then invalid_arg "sweep needs at least 2 steps";
      let base = Fluid.Params.with_buffer Fluid.Params.default buffer in
      let rows =
        List.init steps (fun i ->
            let v = sweep_value ~lo ~hi ~steps ~log_scale i in
            let p = apply_param base param v in
            match cache with
            | None -> sweep_row v p
            | Some c ->
                Store.Cache.memo c
                  (Store.Key.of_material (sweep_row_material ~param p v))
                  (fun () -> sweep_row v p))
      in
      Report.Csv.to_string ~header:(sweep_header param) ~rows
  | Margin { axes; flap_period; flap_duty; t_end; transient; iters; seed } ->
      let axes = List.map (axis_of_name ~flap_period ~flap_duty) axes in
      if axes = [] then invalid_arg "margin needs at least one axis";
      let memo = Option.map Store.Sweep.resilience_memo cache in
      let scenarios = Faultnet.Resilience.paper_cases ~t_end ?transient () in
      Faultnet.Resilience.to_csv
        (Faultnet.Resilience.sweep ~jobs:1 ?iters ?memo ~seed scenarios axes)
  | Region { param; lo; hi; param2; lo2; hi2; buffer; coarse; levels } ->
      let base = Fluid.Params.with_buffer Fluid.Params.default buffer in
      let apply2 ~x ~y = apply_param (apply_param base param x) param2 y in
      let store = Option.map Store.Sweep.verdict_memo cache in
      let dom = { Refine.Engine.x0 = lo; x1 = hi; y0 = lo2; y1 = hi2 } in
      let t =
        Refine.Param_plane.trace ~jobs:1 ?store ~coarse:(coarse, coarse)
          ~levels apply2 dom
      in
      Refine.Engine.segments_csv t
  | Batch { spec; chunk; as_json } -> (
      let render spec outcomes =
        if as_json then Fabric.Merge.json_of spec outcomes
        else Fabric.Merge.csv_of spec outcomes
      in
      match cache with
      | None ->
          (* no store: nothing to lease over — plain in-memory sweep,
             same renderer, so the bytes still match a fabric run *)
          render spec (Store.Sweep.sweep ~jobs:1 (Fabric.Spec.scenarios spec))
      | Some c ->
          (* the daemon is one more fabric worker: it claims leases like
             any external process, so bcn_fabric workers launched
             against the same store share the request mid-flight *)
          ignore
            (Fabric.Worker.run ~jobs:1 ~chunk
               ~worker:
                 (Printf.sprintf "serve.%d.%d" (Unix.getpid ())
                    (Atomic.fetch_and_add batch_seq 1))
               c spec);
          if as_json then Fabric.Merge.json c spec else Fabric.Merge.csv c spec
      )
