(** Trajectory integration with phase-plane bookkeeping.

    Integrates a {!System.t} from an initial point, localizing the events
    the paper's analysis cares about:
    - crossings of the switching line (region changes),
    - crossings of the horizontal axis [y = 0], where [x(t)] attains its
      local extrema (since [dx/dt = y]; see paper Figs. 4–6),
    and stopping on convergence to the equilibrium, on leaving a bounding
    box, or at the time horizon. *)

type solver =
  | Fixed of Numerics.Ode.method_ * float  (** method and step size *)
  | Adaptive of float * float  (** rtol, atol *)

type stop_reason =
  | Time_limit
  | Converged  (** entered the [converge_radius] ball around the origin *)
  | Left_box  (** exited the bounding box *)

type crossing = {
  ct : float;  (** time of crossing *)
  cp : Numerics.Vec2.t;  (** crossing point *)
}

type t = {
  sol : Numerics.Ode.solution;  (** raw solver output *)
  switch_crossings : crossing list;  (** switching-line crossings *)
  axis_crossings : crossing list;  (** [y = 0] crossings = extrema of [x] *)
  stop : stop_reason;
}

val integrate :
  ?solver:solver ->
  ?t_max:float ->
  ?converge_radius:float ->
  ?box:Numerics.Vec2.t * Numerics.Vec2.t ->
  System.t ->
  Numerics.Vec2.t ->
  t
(** Defaults: adaptive solver ([rtol=1e-9], [atol=1e-12]), [t_max=100.],
    no convergence ball, no box. [box] is given as [(lo, hi)] corners. *)

val events_for :
  ?converge_radius:float ->
  ?box:Numerics.Vec2.t * Numerics.Vec2.t ->
  System.t ->
  Numerics.Ode.event list
(** The exact event list {!integrate} hands the solver, in the same
    order. Exposed so the batched driver ({!Front}) reproduces the event
    semantics of per-point integration bit for bit. *)

type scan = {
  scan_switch : crossing list;
  scan_axis : crossing list;
  scan_stop : stop_reason;
  scan_steps : int;
  scan_rejected : int;
}
(** {!t} without the stored trajectory — what a streaming integration
    leaves behind. *)

val scan :
  ?rtol:float ->
  ?atol:float ->
  ?t_max:float ->
  ?converge_radius:float ->
  ?box:Numerics.Vec2.t * Numerics.Vec2.t ->
  ?guards:Numerics.Ode.guard_spec ->
  ?on_event:(Numerics.Ode.occurrence -> unit) ->
  on_point:(float array -> unit) ->
  System.t ->
  Numerics.Vec2.t ->
  scan
(** Streaming {!integrate} (adaptive solver only, same [rtol=1e-9],
    [atol=1e-12] defaults): every sample the recording integrator would
    have stored is handed to [on_point] as the packed reused buffer
    [[|t; x; y|]], bit-for-bit identical, and then dropped. [guards]
    overrides the {!events_for} event set with a closure-free
    {!Numerics.Ode.guard_spec} evaluating the same guard values —
    callers hand-specialize it to make the scan allocation-free (the
    generic adapter boxes a time per step). *)

val of_solution : Numerics.Ode.solution -> t
(** Wrap a raw solver solution with the phase-plane bookkeeping
    ({!integrate}'s post-processing: crossing extraction and stop
    classification). *)

val points : t -> (float * Numerics.Vec2.t) array
(** Accepted integration points as [(t, p)]. *)

val final : t -> float * Numerics.Vec2.t
(** Last accepted point. *)

val x_series : t -> Numerics.Series.t
(** [x(t)] along the trajectory. *)

val y_series : t -> Numerics.Series.t
(** [y(t)] along the trajectory. *)

val x_max : t -> float
(** Greatest [x] over the trajectory (the queue overshoot, in normalized
    coordinates, when the trajectory starts at [(-q0, 0)]). *)

val x_min : t -> float
(** Least [x] over the trajectory (the undershoot). *)
