(** Planar autonomous dynamical systems, smooth or switched.

    The BCN fluid model is a {e variable-structure} system: the plane is
    split by a switching line [sigma(p) = 0] into two half-planes, each
    governed by its own smooth field (paper eqn (8)). This module gives
    that structure a first-class representation so the trajectory,
    Poincaré-map and portrait machinery can stay generic. *)

type field = Numerics.Vec2.t -> Numerics.Vec2.t
(** Autonomous planar vector field. *)

type t =
  | Smooth of field
  | Switched of {
      sigma : Numerics.Vec2.t -> float;  (** switching function *)
      pos : field;  (** dynamics where [sigma > 0] *)
      neg : field;  (** dynamics where [sigma < 0] *)
    }
  | Switched_fast of {
      sigma : Numerics.Vec2.t -> float;
      pos : field;
      neg : field;
      rhs : Numerics.Ode.field_auto;
          (** allocation-free form: [rhs y dst] with [y = [|x; y|]].
              MUST be bit-for-bit identical to the closure dispatch
              [if sigma p >= 0. then pos p else neg p] — mirror the
              closure expressions exactly (the test suite locks this
              for the systems built by [Fluid.Model]). *)
      batch : Numerics.Ode.Batch.rhs;
          (** SoA sweep over a whole front; per lane it must write the
              same bits as [rhs]. *)
    }
      (** A switched system that additionally carries hand-specialized
          allocation-free right-hand sides. The closure fields keep the
          portrait/Poincaré machinery generic; the [rhs]/[batch] fields
          are what the in-place and batched solvers use, so hot loops
          over such a system allocate nothing per evaluation. *)
  | Smooth_fast of {
      f : field;
      rhs : Numerics.Ode.field_auto;
          (** allocation-free form; must mirror [f] bit for bit (same
              contract as the [Switched_fast] fields). *)
      batch : Numerics.Ode.Batch.rhs;
          (** SoA sweep; per lane it must write the same bits as
              [rhs]. *)
    }
      (** A smooth system (no switching line) with hand-specialized
          allocation-free right-hand sides — the rate-based fluid
          models ({!Fluid.Rcp}) have a single governing field, so the
          switched representation would be wrong and the plain [Smooth]
          fallback would allocate two [Vec2] per evaluation. *)

val eval : t -> Numerics.Vec2.t -> Numerics.Vec2.t
(** Field value at a point; on the switching line ([sigma = 0]) the
    [pos] branch is used (the paper's rate-increase law, consistent with
    BCN sending a positive message when [sigma >= 0] and [q < q0]). *)

val region : t -> Numerics.Vec2.t -> [ `Pos | `Neg | `Boundary ]
(** Which branch governs the point ([`Boundary] within [1e-12]·scale). *)

val to_ode : t -> Numerics.Ode.field
(** Adapter to the array-based ODE solvers; state is [[|x; y|]]. *)

val to_ode_into : t -> Numerics.Ode.field_into
(** In-place adapter for the allocation-free solvers ({!Numerics.Ode}
    [solve_fixed_into] / [solve_adaptive_into]); writes the field value
    into the destination array instead of allocating it. For
    [Switched_fast] and [Smooth_fast] this is the carried [rhs] (zero
    allocation per evaluation); otherwise it funnels through the
    closures (two [Vec2] per evaluation) with identical results. *)

val to_auto : t -> Numerics.Ode.field_auto
(** Autonomous in-place form (the systems here are all autonomous);
    same dispatch as {!to_ode_into}. *)

val batch_rhs : t -> Numerics.Ode.Batch.rhs
(** SoA sweep for batched front integration. [Switched_fast] and
    [Smooth_fast] systems use their dedicated sweep; any other system
    falls back to a lane-by-lane closure evaluation with bit-identical
    results. *)

val sigma_opt : t -> (Numerics.Vec2.t -> float) option
(** The switching function, when the system has one. *)

val linear : Numerics.Mat2.t -> t
(** The LTI system [dp/dt = A·p]. *)

val switched_linear :
  sigma:(Numerics.Vec2.t -> float) ->
  pos:Numerics.Mat2.t ->
  neg:Numerics.Mat2.t ->
  t
(** Piecewise-linear system with matrices per half-plane. *)
