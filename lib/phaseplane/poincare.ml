open Numerics

type section = {
  point_of : float -> Vec2.t;
  coord_of : Vec2.t -> float;
  guard : Vec2.t -> float;
  sec_dir : Ode.direction;
}

let line_section ?(dir = Ode.Both) ~normal () =
  let n = Vec2.norm normal in
  if n = 0. then invalid_arg "Poincare.line_section: zero normal";
  let nu = Vec2.scale (1. /. n) normal in
  let tangent = Vec2.make (-.nu.Vec2.y) nu.Vec2.x in
  {
    point_of = (fun s -> Vec2.scale s tangent);
    coord_of = (fun p -> Vec2.dot p tangent);
    guard = (fun p -> Vec2.dot p nu);
    sec_dir = dir;
  }

type return_ = { s_next : float; time : float; point : Vec2.t }

(* In-place solvers on both arms — bit-identical to the allocating ones,
   without the per-step stage-array churn; the adaptive arm additionally
   exploits that every {!System.t} is autonomous. *)
let solve_with_event solver event ~t_max sys ~y0 =
  match solver with
  | Trajectory.Fixed (m, h) ->
      Ode.solve_fixed_into ~method_:m ~events:[ event ] ~h ~t_end:t_max
        (System.to_ode_into sys) ~t0:0. ~y0
  | Trajectory.Adaptive (rtol, atol) ->
      Ode.solve_adaptive_auto_into ~rtol ~atol ~events:[ event ] ~t_end:t_max
        (System.to_auto sys) ~t0:0. ~y0

let return_map ?(solver = Trajectory.Adaptive (1e-10, 1e-13)) ?(t_max = 1000.)
    sys sec s =
  let p0 = sec.point_of s in
  (* Launching exactly on the section leaves the initial guard at a
     roundoff-sized value of arbitrary sign, which can fire the section
     event spuriously at t ~ 0. Integrate a departure phase first, until
     the guard has visibly left the section, then arm the real event. *)
  let delta = 1e-9 *. (1. +. Float.abs s) in
  let depart =
    {
      Ode.ev_name = "departed";
      guard =
        (fun _t y -> Float.abs (sec.guard (Vec2.make y.(0) y.(1))) -. delta);
      dir = Ode.Up;
      terminal = true;
    }
  in
  let sol0 = solve_with_event solver depart ~t_max sys ~y0:(Vec2.to_array p0) in
  match sol0.Ode.terminated with
  | None -> None
  | Some dep ->
      let event =
        {
          Ode.ev_name = "section";
          guard = (fun _t y -> sec.guard (Vec2.make y.(0) y.(1)));
          dir = sec.sec_dir;
          terminal = true;
        }
      in
      let sol =
        solve_with_event solver event ~t_max:(t_max -. dep.Ode.oc_t) sys
          ~y0:dep.Ode.oc_y
      in
      (match sol.Ode.terminated with
      | Some oc ->
          let p = Vec2.of_array oc.Ode.oc_y in
          Some
            {
              s_next = sec.coord_of p;
              time = dep.Ode.oc_t +. oc.Ode.oc_t;
              point = p;
            }
      | None -> None)

let iterate ?solver ?t_max sys sec ~n s0 =
  let rec go acc s i =
    if i >= n then List.rev acc
    else
      match return_map ?solver ?t_max sys sec s with
      | Some r -> go (r.s_next :: acc) r.s_next (i + 1)
      | None -> List.rev acc
  in
  go [] s0 0

let fixed_points ?solver ?t_max ?(exclude_origin = 1e-9) sys sec ~s_min ~s_max
    ~n =
  if n < 1 then invalid_arg "Poincare.fixed_points: n < 1";
  let displacement s =
    match return_map ?solver ?t_max sys sec s with
    | Some r -> Some (r.s_next -. s)
    | None -> None
  in
  let h = (s_max -. s_min) /. float_of_int n in
  let acc = ref [] in
  let prev = ref None in
  for i = 0 to n do
    let s = s_min +. (h *. float_of_int i) in
    if Float.abs s >= exclude_origin then begin
      let d = displacement s in
      (match (!prev, d) with
      | Some (s0, d0), Some d1 when d0 *. d1 < 0. ->
          (* refine with Brent on the displacement *)
          let g x =
            match displacement x with
            | Some v -> v
            | None -> nan
          in
          (try
             let root = Roots.brent ~tol:1e-10 g s0 s in
             if Float.abs root >= exclude_origin then acc := root :: !acc
           with Roots.No_bracket _ | Failure _ -> ())
      | _ -> ());
      match d with Some d1 -> prev := Some (s, d1) | None -> prev := None
    end
    else prev := None
  done;
  List.rev !acc

let derivative ?solver ?t_max ?(ds = 1e-6) sys sec s =
  let at x =
    Option.map (fun r -> r.s_next) (return_map ?solver ?t_max sys sec x)
  in
  let step = ds *. (1. +. Float.abs s) in
  match (at (s +. step), at (s -. step)) with
  | Some a, Some b -> Some ((a -. b) /. (2. *. step))
  | _ -> None
