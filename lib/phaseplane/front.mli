(** Batched fixed-step integration of a {e front} of initial points.

    A phase portrait integrates many independent trajectories of the same
    system. Per-point integration pays the closure dispatch and event
    bookkeeping per point per step; this driver instead advances all
    points in lock-step with {!Numerics.Ode.Batch} — one
    structure-of-arrays RHS sweep per RK stage over contiguous unboxed
    lanes — while reproducing the per-point driver's event semantics
    (guard sampling, bisection localization, terminal freezing) exactly.

    Guarantee: lane [i] of the result is bit-for-bit equal to
    [Trajectory.integrate ~solver:(Fixed (method_, h)) ~t_max
    ?converge_radius ?box sys pts.(i)], for any front size, any mix of
    terminating and running lanes, and any [jobs] — the test suite
    asserts this. *)

val integrate :
  ?method_:Numerics.Ode.method_ ->
  h:float ->
  ?t_max:float ->
  ?converge_radius:float ->
  ?box:Numerics.Vec2.t * Numerics.Vec2.t ->
  ?jobs:int ->
  System.t ->
  Numerics.Vec2.t array ->
  Trajectory.t array
(** [integrate ~h sys pts] — one trajectory per initial point. Defaults
    mirror {!Trajectory.integrate}: [method_ = Rk4], [t_max = 100.], no
    convergence ball, no box. [jobs > 1] splits the front into [jobs]
    contiguous chunks on a {!Parallel.Pool} — chunk boundaries depend
    only on the input length, and lanes are mutually independent, so the
    output is byte-identical for every [jobs]. Lanes whose terminal
    event (convergence / box exit) fires are frozen immediately and stop
    costing RHS work while the rest of the front keeps going. *)
