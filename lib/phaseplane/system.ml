open Numerics

type field = Vec2.t -> Vec2.t

type t =
  | Smooth of field
  | Switched of {
      sigma : Vec2.t -> float;
      pos : field;
      neg : field;
    }

let eval sys p =
  match sys with
  | Smooth f -> f p
  | Switched { sigma; pos; neg } -> if sigma p >= 0. then pos p else neg p

let region sys p =
  match sys with
  | Smooth _ -> `Pos
  | Switched { sigma; _ } ->
      let s = sigma p in
      let scale = 1. +. Vec2.norm p in
      if Float.abs s <= 1e-12 *. scale then `Boundary
      else if s > 0. then `Pos
      else `Neg

let to_ode sys : Ode.field =
 fun _t y ->
  let v = eval sys (Vec2.make y.(0) y.(1)) in
  [| v.Vec2.x; v.Vec2.y |]

let to_ode_into sys : Ode.field_into =
 fun _t y dst ->
  let v = eval sys (Vec2.make y.(0) y.(1)) in
  dst.(0) <- v.Vec2.x;
  dst.(1) <- v.Vec2.y

let linear m = Smooth (fun p -> Mat2.apply m p)

let switched_linear ~sigma ~pos ~neg =
  Switched
    { sigma; pos = (fun p -> Mat2.apply pos p); neg = (fun p -> Mat2.apply neg p) }
