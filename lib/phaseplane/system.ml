open Numerics

type field = Vec2.t -> Vec2.t

type t =
  | Smooth of field
  | Switched of {
      sigma : Vec2.t -> float;
      pos : field;
      neg : field;
    }
  | Switched_fast of {
      sigma : Vec2.t -> float;
      pos : field;
      neg : field;
      rhs : Ode.field_auto;
      batch : Ode.Batch.rhs;
    }
  | Smooth_fast of {
      f : field;
      rhs : Ode.field_auto;
      batch : Ode.Batch.rhs;
    }

let eval sys p =
  match sys with
  | Smooth f | Smooth_fast { f; _ } -> f p
  | Switched { sigma; pos; neg } | Switched_fast { sigma; pos; neg; _ } ->
      if sigma p >= 0. then pos p else neg p

let sigma_opt = function
  | Smooth _ | Smooth_fast _ -> None
  | Switched { sigma; _ } | Switched_fast { sigma; _ } -> Some sigma

let region sys p =
  match sys with
  | Smooth _ | Smooth_fast _ -> `Pos
  | Switched { sigma; _ } | Switched_fast { sigma; _ } ->
      let s = sigma p in
      let scale = 1. +. Vec2.norm p in
      if Float.abs s <= 1e-12 *. scale then `Boundary
      else if s > 0. then `Pos
      else `Neg

let to_ode sys : Ode.field =
 fun _t y ->
  let v = eval sys (Vec2.make y.(0) y.(1)) in
  [| v.Vec2.x; v.Vec2.y |]

(* The generic adapter funnels through the closure fields (allocating
   two Vec2 per evaluation); a [Switched_fast] system instead carries a
   hand-written [rhs] whose expressions mirror its closures bit for bit,
   so the in-place solvers evaluate it with zero allocation. *)
let to_ode_into sys : Ode.field_into =
  match sys with
  | Switched_fast { rhs; _ } | Smooth_fast { rhs; _ } ->
      fun _t y dst -> rhs y dst
  | Smooth _ | Switched _ ->
      fun _t y dst ->
        let v = eval sys (Vec2.make y.(0) y.(1)) in
        dst.(0) <- v.Vec2.x;
        dst.(1) <- v.Vec2.y

let to_auto sys : Ode.field_auto =
  match sys with
  | Switched_fast { rhs; _ } | Smooth_fast { rhs; _ } -> rhs
  | Smooth _ | Switched _ ->
      fun y dst ->
        let v = eval sys (Vec2.make y.(0) y.(1)) in
        dst.(0) <- v.Vec2.x;
        dst.(1) <- v.Vec2.y

(* Batched sweep for any system: the fallback evaluates the closures
   lane by lane (same expressions as [to_ode_into], so batching stays
   bit-identical to per-point stepping even for closure-based systems);
   [Switched_fast] carries a dedicated SoA sweep. *)
let batch_rhs sys : Ode.Batch.rhs =
  match sys with
  | Switched_fast { batch; _ } | Smooth_fast { batch; _ } -> batch
  | Smooth _ | Switched _ ->
      fun b xs ys dxs dys ->
        for i = 0 to b.Ode.Batch.n - 1 do
          let v = eval sys (Vec2.make xs.(i) ys.(i)) in
          dxs.(i) <- v.Vec2.x;
          dys.(i) <- v.Vec2.y
        done

let linear m = Smooth (fun p -> Mat2.apply m p)

let switched_linear ~sigma ~pos ~neg =
  Switched
    { sigma; pos = (fun p -> Mat2.apply pos p); neg = (fun p -> Mat2.apply neg p) }
