open Numerics

(* Batched fixed-step front integration.

   Advances every initial point in lock-step on the shared time grid of
   the fixed-step driver (all lanes see the same (t, h) sequence, since
   the grid depends only on t0/t_end/h), with the per-lane event
   bookkeeping of [Ode.run_driver] reproduced exactly:

   - guards are sampled at step boundaries and fed to [Ode.fires];
   - a firing guard is localized by [Ode.localize_into] from the lane's
     pre-step state with a scalar [step_into] — the batched stepper
     mirrors the scalar one expression for expression, so the base
     state the bisection starts from is bit-identical;
   - a terminal event freezes the lane (clears its [active] flag); the
     remaining lanes keep marching until the horizon or until the whole
     front is frozen.

   The result of each lane is therefore bit-for-bit the result of
   [Trajectory.integrate ~solver:(Fixed (method_, h))] on that lane's
   initial point — the test suite asserts this for arbitrary fronts —
   while the inner loop does one RHS sweep per RK stage over contiguous
   unboxed lanes instead of n closure dispatches per stage. *)

let integrate_batch ~method_ ~h ~t_max ?converge_radius ?box sys
    (pts : Vec2.t array) : Trajectory.t array =
  let n = Array.length pts in
  if h <= 0. then invalid_arg "Front.integrate: h <= 0";
  if n = 0 then [||]
  else begin
    let events =
      Array.of_list (Trajectory.events_for ?converge_radius ?box sys)
    in
    let n_ev = Array.length events in
    let b = Ode.Batch.create n in
    for i = 0 to n - 1 do
      b.Ode.Batch.xs.(i) <- pts.(i).Vec2.x;
      b.Ode.Batch.ys.(i) <- pts.(i).Vec2.y
    done;
    let rhs = System.batch_rhs sys in
    (* scalar stepper for event localization: same workspace stepper the
       per-point driver localizes with, hence the same bits *)
    let ws = Ode.workspace 2 in
    let f_into = System.to_ode_into sys in
    let single_into t y hh dst = Ode.step_into ws method_ f_into t y hh dst in
    (* pre-step states, for localization bases *)
    let px = Array.make n 0. and py = Array.make n 0. in
    let y2 = [| 0.; 0. |] in
    let gy = [| 0.; 0. |] in
    let loc_scratch = [| 0.; 0. |] in
    (* per-lane accumulators, mirroring the driver's *)
    let ts = Array.init n (fun _ -> [ 0. ]) in
    let yss =
      Array.init n (fun i -> [ [| pts.(i).Vec2.x; pts.(i).Vec2.y |] ])
    in
    let occs = Array.make n ([] : Ode.occurrence list) in
    let terminated = Array.make n (None : Ode.occurrence option) in
    let n_steps = Array.make n 0 in
    let g_prev = Array.make_matrix n_ev n 0. in
    for e = 0 to n_ev - 1 do
      let ev = events.(e) in
      for i = 0 to n - 1 do
        gy.(0) <- b.Ode.Batch.xs.(i);
        gy.(1) <- b.Ode.Batch.ys.(i);
        g_prev.(e).(i) <- ev.Ode.guard 0. gy
      done
    done;
    let t = ref 0. in
    (* the driver seeds its step suggestion with (t_end - t0) and lets
       the fixed-step controller clamp it to h *)
    let h_cur = ref t_max in
    let n_active = ref n in
    let continue_ = ref (t_max > 0.) in
    while !continue_ && !n_active > 0 do
      let remaining = t_max -. !t in
      if remaining <= 1e-15 *. (1. +. Float.abs t_max) then continue_ := false
      else begin
        let h_try = Float.min !h_cur remaining in
        let h_acc = Float.min h_try h in
        Array.blit b.Ode.Batch.xs 0 px 0 n;
        Array.blit b.Ode.Batch.ys 0 py 0 n;
        Ode.Batch.set_h b h_acc;
        Ode.Batch.step b method_ rhs;
        let t_next = !t +. h_acc in
        for i = 0 to n - 1 do
          if Ode.Batch.is_active b i then begin
            n_steps.(i) <- n_steps.(i) + 1;
            gy.(0) <- b.Ode.Batch.xs.(i);
            gy.(1) <- b.Ode.Batch.ys.(i);
            let stop_here = ref None in
            for e = 0 to n_ev - 1 do
              let ev = events.(e) in
              let g_next = ev.Ode.guard t_next gy in
              if Ode.fires ev.Ode.dir g_prev.(e).(i) g_next then begin
                y2.(0) <- px.(i);
                y2.(1) <- py.(i);
                let t_ev, y_ev =
                  Ode.localize_into single_into ev !t y2 h_acc loc_scratch
                in
                let oc =
                  { Ode.oc_name = ev.Ode.ev_name; oc_t = t_ev; oc_y = y_ev }
                in
                occs.(i) <- oc :: occs.(i);
                if ev.Ode.terminal then
                  match !stop_here with
                  | Some (prev_oc : Ode.occurrence)
                    when prev_oc.Ode.oc_t <= t_ev ->
                      ()
                  | Some _ | None -> stop_here := Some oc
              end;
              g_prev.(e).(i) <- g_next
            done;
            match !stop_here with
            | Some oc ->
                terminated.(i) <- Some oc;
                ts.(i) <- oc.Ode.oc_t :: ts.(i);
                yss.(i) <- Array.copy oc.Ode.oc_y :: yss.(i);
                Ode.Batch.set_active b i false;
                decr n_active
            | None ->
                ts.(i) <- t_next :: ts.(i);
                yss.(i) <- [| b.Ode.Batch.xs.(i); b.Ode.Batch.ys.(i) |] :: yss.(i)
          end
        done;
        t := t_next;
        h_cur := h
      end
    done;
    Array.init n (fun i ->
        Trajectory.of_solution
          {
            Ode.ts = Array.of_list (List.rev ts.(i));
            ys = Array.of_list (List.rev yss.(i));
            occs = List.rev occs.(i);
            terminated = terminated.(i);
            n_steps = n_steps.(i);
            n_rejected = 0;
          })
  end

(* Contiguous near-equal chunk bounds: chunk k covers
   [k*n/jobs, (k+1)*n/jobs). Depends only on (n, jobs) — and since the
   lanes are mutually independent bit-wise, the per-lane results do not
   depend on how the front is split, so any [jobs] gives byte-identical
   output (asserted by the test suite and `bench --compare`). *)
let chunk_bounds n jobs =
  let jobs = Stdlib.min jobs n in
  List.init jobs (fun k -> (k * n / jobs, ((k + 1) * n / jobs) - 1))

let integrate ?(method_ = Ode.Rk4) ~h ?(t_max = 100.) ?converge_radius ?box
    ?(jobs = 1) sys pts =
  let n = Array.length pts in
  if jobs <= 1 || n <= 1 then
    integrate_batch ~method_ ~h ~t_max ?converge_radius ?box sys pts
  else
    let chunks =
      Parallel.Pool.with_pool ~size:jobs (fun pool ->
          Parallel.Pool.map pool
            (fun (lo, hi) ->
              integrate_batch ~method_ ~h ~t_max ?converge_radius ?box sys
                (Array.sub pts lo (hi - lo + 1)))
            (chunk_bounds n jobs))
    in
    Array.concat chunks
