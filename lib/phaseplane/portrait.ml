open Numerics

type t = {
  trajectories : Trajectory.t list;
  initial_points : Vec2.t list;
}

let compute ?solver ?t_max ?converge_radius ?box ?(jobs = 1) sys inits =
  let trajectories =
    match solver with
    | Some (Trajectory.Fixed (m, h)) ->
        (* fixed-step portraits ride the batched front: one SoA sweep
           per RK stage over the whole family instead of per-point
           closure dispatch — bit-identical per lane *)
        Array.to_list
          (Front.integrate ~method_:m ~h ?t_max ?converge_radius ?box ~jobs
             sys (Array.of_list inits))
    | Some (Trajectory.Adaptive _) | None ->
        let run p0 =
          Trajectory.integrate ?solver ?t_max ?converge_radius ?box sys p0
        in
        if jobs <= 1 then List.map run inits
        else
          Parallel.Pool.with_pool ~size:jobs (fun pool ->
              Parallel.Pool.map pool run inits)
  in
  { trajectories; initial_points = inits }

let grid ~lo ~hi ~nx ~ny =
  if nx < 1 || ny < 1 then invalid_arg "Portrait.grid: need nx, ny >= 1";
  let pt i j =
    let fx = if nx = 1 then 0.5 else float_of_int i /. float_of_int (nx - 1) in
    let fy = if ny = 1 then 0.5 else float_of_int j /. float_of_int (ny - 1) in
    Vec2.make
      (lo.Vec2.x +. (fx *. (hi.Vec2.x -. lo.Vec2.x)))
      (lo.Vec2.y +. (fy *. (hi.Vec2.y -. lo.Vec2.y)))
  in
  List.concat_map
    (fun i -> List.init ny (fun j -> pt i j))
    (List.init nx (fun i -> i))

let ring ~center ~radius ~n =
  if n < 1 then invalid_arg "Portrait.ring: n < 1";
  List.init n (fun i ->
      let th = 2. *. Float.pi *. float_of_int i /. float_of_int n in
      Vec2.add center (Vec2.make (radius *. cos th) (radius *. sin th)))

let field_arrows sys ~lo ~hi ~nx ~ny =
  grid ~lo ~hi ~nx ~ny
  |> List.map (fun p ->
         let v = System.eval sys p in
         let n = Vec2.norm v in
         let dir = if n = 0. then Vec2.zero else Vec2.scale (1. /. n) v in
         (p, dir))

let switching_line_points ~sigma ~lo ~hi ~n =
  if n < 2 then invalid_arg "Portrait.switching_line_points: n < 2";
  let xs =
    Array.init n (fun i ->
        lo.Vec2.x
        +. ((hi.Vec2.x -. lo.Vec2.x) *. float_of_int i /. float_of_int (n - 1)))
  in
  Array.to_list xs
  |> List.filter_map (fun x ->
         let g y = sigma (Vec2.make x y) in
         let glo = g lo.Vec2.y and ghi = g hi.Vec2.y in
         if glo = 0. then Some (Vec2.make x lo.Vec2.y)
         else if ghi = 0. then Some (Vec2.make x hi.Vec2.y)
         else if glo *. ghi < 0. then
           let y = Roots.brent ~tol:1e-12 g lo.Vec2.y hi.Vec2.y in
           Some (Vec2.make x y)
         else None)
