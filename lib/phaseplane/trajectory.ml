open Numerics

type solver =
  | Fixed of Ode.method_ * float
  | Adaptive of float * float

type stop_reason = Time_limit | Converged | Left_box

type crossing = { ct : float; cp : Vec2.t }

type t = {
  sol : Ode.solution;
  switch_crossings : crossing list;
  axis_crossings : crossing list;
  stop : stop_reason;
}

let switch_event sigma =
  {
    Ode.ev_name = "switch";
    guard = (fun _t y -> sigma (Vec2.make y.(0) y.(1)));
    dir = Ode.Both;
    terminal = false;
  }

let axis_event =
  {
    Ode.ev_name = "axis";
    guard = (fun _t y -> y.(1));
    dir = Ode.Both;
    terminal = false;
  }

let converge_event r =
  {
    Ode.ev_name = "converged";
    guard = (fun _t y -> sqrt ((y.(0) *. y.(0)) +. (y.(1) *. y.(1))) -. r);
    dir = Ode.Down;
    terminal = true;
  }

let box_event (lo, hi) =
  {
    Ode.ev_name = "left_box";
    guard =
      (fun _t y ->
        (* positive inside the box, negative outside: min distance to walls *)
        let dx = Float.min (y.(0) -. lo.Vec2.x) (hi.Vec2.x -. y.(0)) in
        let dy = Float.min (y.(1) -. lo.Vec2.y) (hi.Vec2.y -. y.(1)) in
        Float.min dx dy);
    dir = Ode.Down;
    terminal = true;
  }

(* The event list in integration order; shared with the batched front
   driver (Front) so both build byte-identical event sets. *)
let events_for ?converge_radius ?box sys =
  let events = [ axis_event ] in
  let events =
    match System.sigma_opt sys with
    | None -> events
    | Some sigma -> switch_event sigma :: events
  in
  let events =
    match converge_radius with
    | Some r -> converge_event r :: events
    | None -> events
  in
  match box with Some b -> box_event b :: events | None -> events

let of_solution (sol : Ode.solution) =
  let pick name =
    List.filter_map
      (fun (oc : Ode.occurrence) ->
        if String.equal oc.oc_name name then
          Some { ct = oc.oc_t; cp = Vec2.of_array oc.oc_y }
        else None)
      sol.Ode.occs
  in
  let stop =
    match sol.Ode.terminated with
    | Some oc when String.equal oc.Ode.oc_name "converged" -> Converged
    | Some oc when String.equal oc.Ode.oc_name "left_box" -> Left_box
    | Some _ | None -> Time_limit
  in
  {
    sol;
    switch_crossings = pick "switch";
    axis_crossings = pick "axis";
    stop;
  }

let integrate ?(solver = Adaptive (1e-9, 1e-12)) ?(t_max = 100.)
    ?converge_radius ?box sys p0 =
  let events = events_for ?converge_radius ?box sys in
  let y0 = Vec2.to_array p0 in
  let sol =
    (* in-place steppers on both paths: same results bit-for-bit, no
       stage-array churn in the inner loops (and zero allocation per
       field evaluation for [Switched_fast] systems) *)
    match solver with
    | Fixed (m, h) ->
        Ode.solve_fixed_into ~method_:m ~events ~h ~t_end:t_max
          (System.to_ode_into sys) ~t0:0. ~y0
    | Adaptive (rtol, atol) ->
        Ode.solve_adaptive_auto_into ~rtol ~atol ~events ~t_end:t_max
          (System.to_auto sys) ~t0:0. ~y0
  in
  of_solution sol

type scan = {
  scan_switch : crossing list;
  scan_axis : crossing list;
  scan_stop : stop_reason;
  scan_steps : int;
  scan_rejected : int;
}

let scan ?(rtol = 1e-9) ?(atol = 1e-12) ?(t_max = 100.) ?converge_radius ?box
    ?guards ?on_event ~on_point sys p0 =
  let gs =
    match guards with
    | Some g -> g
    | None -> Ode.guards_of_events ~dim:2 (events_for ?converge_radius ?box sys)
  in
  let y0 = Vec2.to_array p0 in
  let res =
    Ode.solve_adaptive_auto_scan ~rtol ~atol ~guards:gs ?on_event ~on_point
      ~t_end:t_max (System.to_auto sys) ~t0:0. ~y0
  in
  let pick name =
    List.filter_map
      (fun (oc : Ode.occurrence) ->
        if String.equal oc.Ode.oc_name name then
          Some { ct = oc.Ode.oc_t; cp = Vec2.of_array oc.Ode.oc_y }
        else None)
      res.Ode.sc_occs
  in
  let stop =
    match res.Ode.sc_terminated with
    | Some oc when String.equal oc.Ode.oc_name "converged" -> Converged
    | Some oc when String.equal oc.Ode.oc_name "left_box" -> Left_box
    | Some _ | None -> Time_limit
  in
  {
    scan_switch = pick "switch";
    scan_axis = pick "axis";
    scan_stop = stop;
    scan_steps = res.Ode.sc_steps;
    scan_rejected = res.Ode.sc_rejected;
  }

let points tr =
  Array.init (Array.length tr.sol.Ode.ts) (fun i ->
      (tr.sol.Ode.ts.(i), Vec2.of_array tr.sol.Ode.ys.(i)))

let final tr =
  let n = Array.length tr.sol.Ode.ts in
  (tr.sol.Ode.ts.(n - 1), Vec2.of_array tr.sol.Ode.ys.(n - 1))

let x_series tr =
  Series.make tr.sol.Ode.ts (Array.map (fun y -> y.(0)) tr.sol.Ode.ys)

let y_series tr =
  Series.make tr.sol.Ode.ts (Array.map (fun y -> y.(1)) tr.sol.Ode.ys)

let x_max tr =
  Array.fold_left (fun acc y -> Float.max acc y.(0)) neg_infinity tr.sol.Ode.ys

let x_min tr =
  Array.fold_left (fun acc y -> Float.min acc y.(0)) infinity tr.sol.Ode.ys
