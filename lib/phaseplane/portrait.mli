(** Phase-portrait data: families of trajectories and nullclines.

    Produces the raw material for Figs. 3–10 of the paper: many
    trajectories from a set of initial conditions plus the geometry of the
    switching line, packaged as plain series ready for CSV/ASCII output. *)

type t = {
  trajectories : Trajectory.t list;
  initial_points : Numerics.Vec2.t list;
}

val compute :
  ?solver:Trajectory.solver ->
  ?t_max:float ->
  ?converge_radius:float ->
  ?box:Numerics.Vec2.t * Numerics.Vec2.t ->
  ?jobs:int ->
  System.t ->
  Numerics.Vec2.t list ->
  t
(** One trajectory per initial point; see {!Trajectory.integrate} for the
    option semantics. Fixed-step portraits are computed by the batched
    {!Front} driver (bit-identical per point); [jobs > 1] additionally
    splits the work across a domain pool with byte-identical output for
    any value. *)

val grid :
  lo:Numerics.Vec2.t -> hi:Numerics.Vec2.t -> nx:int -> ny:int ->
  Numerics.Vec2.t list
(** [nx × ny] lattice of initial conditions over the box. *)

val ring :
  center:Numerics.Vec2.t -> radius:float -> n:int -> Numerics.Vec2.t list
(** [n] points on a circle — useful around a focus. *)

val field_arrows :
  System.t ->
  lo:Numerics.Vec2.t ->
  hi:Numerics.Vec2.t ->
  nx:int ->
  ny:int ->
  (Numerics.Vec2.t * Numerics.Vec2.t) list
(** Direction field sampled on a lattice: [(point, unit direction)] pairs.
    Zero-field points get a zero direction. *)

val switching_line_points :
  sigma:(Numerics.Vec2.t -> float) ->
  lo:Numerics.Vec2.t ->
  hi:Numerics.Vec2.t ->
  n:int ->
  Numerics.Vec2.t list
(** Points of the switching line [sigma = 0] inside the box, found by
    scanning vertical grid lines for sign changes of [sigma]. *)
