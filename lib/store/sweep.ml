module Scenario = Simnet.Scenario

type outcome = Simnet.Scenario.outcome =
  | Bcn_results of Simnet.Runner.result array
  | E2cm_result of Simnet.E2cm.result
  | Fera_result of Simnet.Fera.result
  | Multihop_result of Simnet.Multihop.result
  | Rcp_result of Simnet.Rcp.result

(* Scenario -> hooks -> results is entirely [Faultnet.Exec]'s job now
   (compile + per-replica salted injectors); the store layer only owns
   memoization. The Marshal layout of the first four constructors is
   unchanged, so pre-RCP cache entries stay readable. *)
let exec ?jobs s = Faultnet.Exec.run ?jobs s

let memo_run ?cache ?(refresh = false) ?jobs s =
  match cache with
  | None -> exec ?jobs s
  | Some c when refresh ->
      (* --no-cache semantics: do not read, do recompute, refresh the
         stored entry so later warm runs see current bits *)
      let v = exec ?jobs s in
      Cache.store_value c (Key.of_scenario s) v;
      v
  | Some c -> Cache.memo c (Key.of_scenario s) (fun () -> exec ?jobs s)

let sweep ?cache ?refresh ?jobs ?on_progress scenarios =
  let total = Array.length scenarios in
  if total = 0 then [||]
  else begin
    (match cache with
    | Some c ->
        let points = Array.map Key.of_scenario scenarios in
        Manifest.save c (Manifest.create ~points)
    | None -> ());
    let done_count = Atomic.make 0 in
    let task s =
      (* points are parallelized across the pool; each point runs its
         replicas sequentially so one sweep never oversubscribes *)
      let r = memo_run ?cache ?refresh ~jobs:1 s in
      (match on_progress with
      | Some f ->
          let d = Atomic.fetch_and_add done_count 1 + 1 in
          let cached =
            match cache with Some c -> (Cache.stats c).Cache.hits | None -> 0
          in
          f ~done_:d ~total ~cached
      | None -> ());
      r
    in
    let size =
      match jobs with Some j -> j | None -> Parallel.Pool.default_size ()
    in
    if size < 1 then invalid_arg "Store.Sweep.sweep: jobs < 1";
    if size = 1 || total = 1 then Array.map task scenarios
    else
      Parallel.Pool.with_pool ~size (fun pool ->
          Parallel.Pool.map_array pool task scenarios)
  end

let resilience_memo cache =
  {
    Faultnet.Resilience.lookup =
      (fun material -> Cache.find_value cache (Key.of_material material));
    save =
      (fun material summary ->
        Cache.store_value cache (Key.of_material material) summary);
  }

let verdict_memo cache =
  ( (fun material -> Cache.find_value cache (Key.of_material material)),
    fun material (verdict : bool) ->
      Cache.store_value cache (Key.of_material material) verdict )
