(** On-disk object index: O(1) key membership, object counts and byte
    totals for a store with millions of entries.

    The index is an append-only journal ([<root>/index.jnl]: one
    [+ <hex> <size>] or [- <hex>] line per mutation) replayed into an
    in-memory hash table. It is {e advisory}: reads that matter for
    correctness ({!Cache.find}, the fabric's range-completion checks)
    go to the object files themselves; the index only serves progress
    reporting, size accounting, GC candidate enumeration and fsck
    cross-checks, so it may run a {!refresh} behind writers in other
    processes without harm.

    Crash tolerance without locks: records are single short
    [O_APPEND] writes (whole lines never interleave), a torn trailing
    line is left unconsumed for the next {!refresh}, and a missing,
    truncated or malformed journal is rebuilt from the object tree —
    the one source of truth. *)

type t

val open_ : root:string -> t
(** Load the journal under the store root, rebuilding it from the
    object tree when absent or unreadable. *)

val refresh : t -> unit
(** Replay records appended (by this or any other process) since the
    last load. O(new records); a compacted-or-shrunk journal triggers a
    full replay, a malformed one a rebuild. *)

val rebuild : t -> unit
(** Discard the journal and re-derive it from a walk of the object
    tree (tmp+rename atomic). The recovery path, also used by fsck
    [--rebuild-index]. *)

val compact : t -> unit
(** Rewrite the journal as one sorted [+] record per live object,
    dropping the add/remove churn. Atomic; concurrent appenders keep
    appending to the new image afterwards. *)

(** {1 Queries} — all O(1) against the in-memory table; call
    {!refresh} first when cross-process freshness matters. *)

val mem : t -> string -> bool
(** Membership by key hex. *)

val size_of : t -> string -> int option
(** On-disk entry size in bytes (header + payload). *)

val objects : t -> int
val bytes : t -> int

val keys : t -> string list
(** Snapshot of all indexed key hexes, unordered. O(objects) — for
    fsck's stale-record diff, not for hot paths. *)

(** {1 Updates} — called by {!Cache.put} / eviction; journal and table
    stay in lockstep. Thread-safe across pool domains. *)

val record_add : t -> string -> int -> unit
val record_remove : t -> string -> unit

val close : t -> unit
(** Release the append descriptor (queries remain usable). *)
