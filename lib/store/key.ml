(* SHA-256 (FIPS 180-4) over strings. All arithmetic is untagged native
   [int] masked to 32 bits — on 64-bit OCaml that is mod-2^32 with no
   boxing, several times faster than the obvious Int32 version.
   Throughput matters: besides hashing a few hundred bytes of canonical
   JSON per key, [Cache.find] re-hashes every payload it reads (hundreds
   of kilobytes per stored result) to verify integrity, so this routine
   sits on the warm path of every cache hit.

   The compression function below deviates from the textbook loop in two
   ways, both throughput-motivated (the digest is bit-identical; the
   FIPS vectors in test_store pin it, and [sha256_reference] keeps the
   straightforward loop for differential testing):

   - rotations use a "doubled word": for x < 2^32, [x lor (x lsl 32)]
     stacks a second copy of x above the first (minus x's top bit, which
     overflows the 63-bit native int — harmless, since every bit the
     rotation needs from the high copy sits below position 31 after the
     final mask), so rotr n is a single right shift of the doubled word
     and the three rotations of each Σ/σ share one trailing mask;
   - the message schedule and the 64 working rounds are unrolled 8 at a
     time; the rounds use let-bound variable rotation — round r's state
     is (a_r, a_{r-1}, a_{r-2}, a_{r-3}, e_r, e_{r-1}, e_{r-2}, e_{r-3})
     — so the 8 shuffle stores per round of the ref-based loop collapse
     into 8 register renames per round and 8 real stores per 8 rounds. *)

let k_const =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
    0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
    0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
    0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
    0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
    0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
    0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
    0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
    0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
    0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
    0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let mask = 0xffffffff

(* ------------------------------------------------------------------ *)
(* Streaming context                                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  st : int array;  (* 8 chaining words, each kept < 2^32 *)
  w : int array;  (* 64-word message-schedule scratch *)
  buf : Bytes.t;  (* pending partial block *)
  mutable buf_len : int;
  mutable total : int;  (* bytes absorbed so far *)
}

let init () =
  {
    st =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
        0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    w = Array.make 64 0;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
  }

(* Expand w.(0..15) to w.(16..63). One iteration handles 8 words: the
   recurrence's shortest dependence distance is 2 (w.(t-2)), so the
   bodies are independent enough to pipeline, and the loop overhead
   amortizes over 8 words instead of 1. *)
let expand (w : int array) =
  for i = 0 to 5 do
    let t = 16 + (i * 8) in
    let x = Array.unsafe_get w (t - 15) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w (t - 2) in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w (t - 7)
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask);
    let x = Array.unsafe_get w (t - 14) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w (t - 1) in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w (t + 1)
      ((Array.unsafe_get w (t - 15)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w (t - 6)
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask);
    let x = Array.unsafe_get w (t - 13) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w t in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w (t + 2)
      ((Array.unsafe_get w (t - 14)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w (t - 5)
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask);
    let x = Array.unsafe_get w (t - 12) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w (t + 1) in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w (t + 3)
      ((Array.unsafe_get w (t - 13)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w (t - 4)
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask);
    let x = Array.unsafe_get w (t - 11) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w (t + 2) in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w (t + 4)
      ((Array.unsafe_get w (t - 12)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w (t - 3)
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask);
    let x = Array.unsafe_get w (t - 10) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w (t + 3) in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w (t + 5)
      ((Array.unsafe_get w (t - 11)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w (t - 2)
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask);
    let x = Array.unsafe_get w (t - 9) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w (t + 4) in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w (t + 6)
      ((Array.unsafe_get w (t - 10)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w (t - 1)
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask);
    let x = Array.unsafe_get w (t - 8) in
    let xd = x lor (x lsl 32) in
    let y = Array.unsafe_get w (t + 5) in
    let yd = y lor (y lsl 32) in
    Array.unsafe_set w (t + 7)
      ((Array.unsafe_get w (t - 9)
       + ((xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3))
       + Array.unsafe_get w t
       + ((yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10)))
      land mask)
  done

let compress (st : int array) (w : int array) =
  expand w;
  let ra = ref (Array.unsafe_get st 0) and rb = ref (Array.unsafe_get st 1) in
  let rc = ref (Array.unsafe_get st 2) and rd = ref (Array.unsafe_get st 3) in
  let re = ref (Array.unsafe_get st 4) and rf = ref (Array.unsafe_get st 5) in
  let rg = ref (Array.unsafe_get st 6) and rh = ref (Array.unsafe_get st 7) in
  for g = 0 to 7 do
    let base = g * 8 in
    let a0 = !ra and b0 = !rb and c0 = !rc and d0 = !rd in
    let e0 = !re and f0 = !rf and g0 = !rg and h0 = !rh in
    (* round base+0: h = h0, d = d0 *)
    let ed = e0 lor (e0 lsl 32) in
    let t1 =
      h0
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e0 land f0) lxor (lnot e0 land g0))
      + Array.unsafe_get k_const base
      + Array.unsafe_get w base
    in
    let ad = a0 lor (a0 lsl 32) in
    let e1 = (d0 + t1) land mask in
    let a1 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a0 land b0) lxor (a0 land c0) lxor (b0 land c0)))
      land mask
    in
    (* round base+1: h = g0, d = c0 *)
    let ed = e1 lor (e1 lsl 32) in
    let t1 =
      g0
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e1 land e0) lxor (lnot e1 land f0))
      + Array.unsafe_get k_const (base + 1)
      + Array.unsafe_get w (base + 1)
    in
    let ad = a1 lor (a1 lsl 32) in
    let e2 = (c0 + t1) land mask in
    let a2 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a1 land a0) lxor (a1 land b0) lxor (a0 land b0)))
      land mask
    in
    (* round base+2: h = f0, d = b0 *)
    let ed = e2 lor (e2 lsl 32) in
    let t1 =
      f0
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e2 land e1) lxor (lnot e2 land e0))
      + Array.unsafe_get k_const (base + 2)
      + Array.unsafe_get w (base + 2)
    in
    let ad = a2 lor (a2 lsl 32) in
    let e3 = (b0 + t1) land mask in
    let a3 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a2 land a1) lxor (a2 land a0) lxor (a1 land a0)))
      land mask
    in
    (* round base+3: h = e0, d = a0 *)
    let ed = e3 lor (e3 lsl 32) in
    let t1 =
      e0
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e3 land e2) lxor (lnot e3 land e1))
      + Array.unsafe_get k_const (base + 3)
      + Array.unsafe_get w (base + 3)
    in
    let ad = a3 lor (a3 lsl 32) in
    let e4 = (a0 + t1) land mask in
    let a4 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a3 land a2) lxor (a3 land a1) lxor (a2 land a1)))
      land mask
    in
    (* round base+4: h = e1, d = a1 *)
    let ed = e4 lor (e4 lsl 32) in
    let t1 =
      e1
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e4 land e3) lxor (lnot e4 land e2))
      + Array.unsafe_get k_const (base + 4)
      + Array.unsafe_get w (base + 4)
    in
    let ad = a4 lor (a4 lsl 32) in
    let e5 = (a1 + t1) land mask in
    let a5 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a4 land a3) lxor (a4 land a2) lxor (a3 land a2)))
      land mask
    in
    (* round base+5: h = e2, d = a2 *)
    let ed = e5 lor (e5 lsl 32) in
    let t1 =
      e2
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e5 land e4) lxor (lnot e5 land e3))
      + Array.unsafe_get k_const (base + 5)
      + Array.unsafe_get w (base + 5)
    in
    let ad = a5 lor (a5 lsl 32) in
    let e6 = (a2 + t1) land mask in
    let a6 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a5 land a4) lxor (a5 land a3) lxor (a4 land a3)))
      land mask
    in
    (* round base+6: h = e3, d = a3 *)
    let ed = e6 lor (e6 lsl 32) in
    let t1 =
      e3
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e6 land e5) lxor (lnot e6 land e4))
      + Array.unsafe_get k_const (base + 6)
      + Array.unsafe_get w (base + 6)
    in
    let ad = a6 lor (a6 lsl 32) in
    let e7 = (a3 + t1) land mask in
    let a7 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a6 land a5) lxor (a6 land a4) lxor (a5 land a4)))
      land mask
    in
    (* round base+7: h = e4, d = a4 *)
    let ed = e7 lor (e7 lsl 32) in
    let t1 =
      e4
      + ((ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25))
      + ((e7 land e6) lxor (lnot e7 land e5))
      + Array.unsafe_get k_const (base + 7)
      + Array.unsafe_get w (base + 7)
    in
    let ad = a7 lor (a7 lsl 32) in
    let e8 = (a4 + t1) land mask in
    let a8 =
      (t1
      + ((ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22))
      + ((a7 land a6) lxor (a7 land a5) lxor (a6 land a5)))
      land mask
    in
    ra := a8;
    rb := a7;
    rc := a6;
    rd := a5;
    re := e8;
    rf := e7;
    rg := e6;
    rh := e5
  done;
  Array.unsafe_set st 0 ((Array.unsafe_get st 0 + !ra) land mask);
  Array.unsafe_set st 1 ((Array.unsafe_get st 1 + !rb) land mask);
  Array.unsafe_set st 2 ((Array.unsafe_get st 2 + !rc) land mask);
  Array.unsafe_set st 3 ((Array.unsafe_get st 3 + !rd) land mask);
  Array.unsafe_set st 4 ((Array.unsafe_get st 4 + !re) land mask);
  Array.unsafe_set st 5 ((Array.unsafe_get st 5 + !rf) land mask);
  Array.unsafe_set st 6 ((Array.unsafe_get st 6 + !rg) land mask);
  Array.unsafe_set st 7 ((Array.unsafe_get st 7 + !rh) land mask)

(* Big-endian block loads, 8 bytes per read. The boxed [int64]s are
   let-bound and consumed immediately by shift/to_int, which the native
   backend unboxes locally — no allocation per word. *)
let load_string (w : int array) (s : string) base =
  for t = 0 to 7 do
    let v = String.get_int64_be s (base + (8 * t)) in
    Array.unsafe_set w (2 * t) (Int64.to_int (Int64.shift_right_logical v 32));
    Array.unsafe_set w ((2 * t) + 1) (Int64.to_int v land mask)
  done

let load_bytes (w : int array) (b : Bytes.t) base =
  for t = 0 to 7 do
    let v = Bytes.get_int64_be b (base + (8 * t)) in
    Array.unsafe_set w (2 * t) (Int64.to_int (Int64.shift_right_logical v 32));
    Array.unsafe_set w ((2 * t) + 1) (Int64.to_int v land mask)
  done

let feed ctx (s : string) =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let p = ref 0 and n = ref len in
  (* top up a pending partial block first *)
  if ctx.buf_len > 0 then begin
    let take = Stdlib.min (64 - ctx.buf_len) !n in
    Bytes.blit_string s !p ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    p := !p + take;
    n := !n - take;
    if ctx.buf_len = 64 then begin
      load_bytes ctx.w ctx.buf 0;
      compress ctx.st ctx.w;
      ctx.buf_len <- 0
    end
  end;
  (* whole blocks stream straight from [s] *)
  while !n >= 64 do
    load_string ctx.w s !p;
    compress ctx.st ctx.w;
    p := !p + 64;
    n := !n - 64
  done;
  if !n > 0 then begin
    Bytes.blit_string s !p ctx.buf 0 !n;
    ctx.buf_len <- !n
  end

let final ctx =
  (* the remainder, the 0x80 terminator and the 64-bit big-endian bit
     length go into a one- or two-block tail buffer *)
  let rem = ctx.buf_len in
  let tail_len = if rem + 1 + 8 <= 64 then 64 else 128 in
  let tail = Bytes.make tail_len '\000' in
  Bytes.blit ctx.buf 0 tail 0 rem;
  Bytes.set tail rem '\x80';
  let bitlen = ctx.total * 8 in
  for i = 0 to 7 do
    Bytes.set tail (tail_len - 1 - i)
      (Char.unsafe_chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  load_bytes ctx.w tail 0;
  compress ctx.st ctx.w;
  if tail_len = 128 then begin
    load_bytes ctx.w tail 64;
    compress ctx.st ctx.w
  end;
  ctx.buf_len <- 0;
  let st = ctx.st in
  Printf.sprintf "%08x%08x%08x%08x%08x%08x%08x%08x" st.(0) st.(1) st.(2)
    st.(3) st.(4) st.(5) st.(6) st.(7)

let sha256 (msg : string) : string =
  let ctx = init () in
  feed ctx msg;
  final ctx

(* The straightforward textbook loop, kept as the differential-testing
   oracle for the unrolled compression function above. *)
let sha256_reference (msg : string) : string =
  let len = String.length msg in
  let full = len / 64 in
  let rem = len - (full * 64) in
  let tail_len = if rem + 1 + 8 <= 64 then 64 else 128 in
  let tail = Bytes.make tail_len '\000' in
  Bytes.blit_string msg (full * 64) tail 0 rem;
  Bytes.set tail rem '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set tail (tail_len - 1 - i)
      (Char.unsafe_chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let h0 = ref 0x6a09e667 and h1 = ref 0xbb67ae85 in
  let h2 = ref 0x3c6ef372 and h3 = ref 0xa54ff53a in
  let h4 = ref 0x510e527f and h5 = ref 0x9b05688c in
  let h6 = ref 0x1f83d9ab and h7 = ref 0x5be0cd19 in
  let w = Array.make 64 0 in
  let compress () =
    for t = 16 to 63 do
      let x = Array.unsafe_get w (t - 15) in
      let s0 =
        ((x lsr 7) lor (x lsl 25)) lxor ((x lsr 18) lor (x lsl 14)) lxor (x lsr 3)
      in
      let y = Array.unsafe_get w (t - 2) in
      let s1 =
        ((y lsr 17) lor (y lsl 15)) lxor ((y lsr 19) lor (y lsl 13)) lxor (y lsr 10)
      in
      Array.unsafe_set w t
        ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
         land mask)
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 in
    let e = ref !h4 and f = ref !h5 and g = ref !h6 and hh = ref !h7 in
    for t = 0 to 63 do
      let ev = !e land mask in
      let sigma1 =
        ((ev lsr 6) lor (ev lsl 26)) land mask
        lxor (((ev lsr 11) lor (ev lsl 21)) land mask)
        lxor (((ev lsr 25) lor (ev lsl 7)) land mask)
      in
      let ch = (ev land !f) lxor (lnot ev land !g) in
      let t1 =
        (!hh + sigma1 + ch + Array.unsafe_get k_const t + Array.unsafe_get w t)
        land mask
      in
      let av = !a land mask in
      let sigma0 =
        ((av lsr 2) lor (av lsl 30)) land mask
        lxor (((av lsr 13) lor (av lsl 19)) land mask)
        lxor (((av lsr 22) lor (av lsl 10)) land mask)
      in
      let maj = (av land !b) lxor (av land !c) lxor (!b land !c) in
      let t2 = (sigma0 + maj) land mask in
      hh := !g;
      g := !f;
      f := ev;
      e := (!d + t1) land mask;
      d := !c;
      c := !b;
      b := av;
      a := (t1 + t2) land mask
    done;
    h0 := (!h0 + !a) land mask;
    h1 := (!h1 + !b) land mask;
    h2 := (!h2 + !c) land mask;
    h3 := (!h3 + !d) land mask;
    h4 := (!h4 + !e) land mask;
    h5 := (!h5 + !f) land mask;
    h6 := (!h6 + !g) land mask;
    h7 := (!h7 + !hh) land mask
  in
  for block = 0 to full - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let i = base + (4 * t) in
      Array.unsafe_set w t
        ((Char.code (String.unsafe_get msg i) lsl 24)
        lor (Char.code (String.unsafe_get msg (i + 1)) lsl 16)
        lor (Char.code (String.unsafe_get msg (i + 2)) lsl 8)
        lor Char.code (String.unsafe_get msg (i + 3)))
    done;
    compress ()
  done;
  for block = 0 to (tail_len / 64) - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let i = base + (4 * t) in
      Array.unsafe_set w t
        ((Char.code (Bytes.unsafe_get tail i) lsl 24)
        lor (Char.code (Bytes.unsafe_get tail (i + 1)) lsl 16)
        lor (Char.code (Bytes.unsafe_get tail (i + 2)) lsl 8)
        lor Char.code (Bytes.unsafe_get tail (i + 3)))
    done;
    compress ()
  done;
  Printf.sprintf "%08x%08x%08x%08x%08x%08x%08x%08x" !h0 !h1 !h2 !h3 !h4 !h5
    !h6 !h7

let sha256_hex = sha256

type t = string

let code_version = "dcecc-store/1"
let of_material m = sha256 (code_version ^ "\n" ^ m)
let of_scenario s = of_material ("scenario@v1\n" ^ Simnet.Scenario.encode s)
let to_hex k = k

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let of_hex s =
  if String.length s = 64 && String.for_all is_hex s then Some s else None
