(* SHA-256 (FIPS 180-4) over strings. All arithmetic is untagged native
   [int] masked to 32 bits — on 64-bit OCaml that is mod-2^32 with no
   boxing, several times faster than the obvious Int32 version.
   Throughput matters: besides hashing a few hundred bytes of canonical
   JSON per key, [Cache.find] re-hashes every payload it reads (hundreds
   of kilobytes per stored result) to verify integrity, so this routine
   sits on the warm path of every cache hit. *)

let k_const =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
    0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
    0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
    0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
    0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
    0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
    0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
    0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
    0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
    0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
    0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let mask = 0xffffffff

let sha256 (msg : string) : string =
  let len = String.length msg in
  (* whole 64-byte blocks stream straight from [msg]; the remainder,
     the 0x80 terminator and the 64-bit big-endian bit length go into a
     one- or two-block tail buffer *)
  let full = len / 64 in
  let rem = len - (full * 64) in
  let tail_len = if rem + 1 + 8 <= 64 then 64 else 128 in
  let tail = Bytes.make tail_len '\000' in
  Bytes.blit_string msg (full * 64) tail 0 rem;
  Bytes.set tail rem '\x80';
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set tail (tail_len - 1 - i)
      (Char.unsafe_chr ((bitlen lsr (8 * i)) land 0xff))
  done;
  let h0 = ref 0x6a09e667 and h1 = ref 0xbb67ae85 in
  let h2 = ref 0x3c6ef372 and h3 = ref 0xa54ff53a in
  let h4 = ref 0x510e527f and h5 = ref 0x9b05688c in
  let h6 = ref 0x1f83d9ab and h7 = ref 0x5be0cd19 in
  let w = Array.make 64 0 in
  let compress () =
    for t = 16 to 63 do
      let x = Array.unsafe_get w (t - 15) in
      let s0 =
        ((x lsr 7) lor (x lsl 25)) lxor ((x lsr 18) lor (x lsl 14)) lxor (x lsr 3)
      in
      let y = Array.unsafe_get w (t - 2) in
      let s1 =
        ((y lsr 17) lor (y lsl 15)) lxor ((y lsr 19) lor (y lsl 13)) lxor (y lsr 10)
      in
      Array.unsafe_set w t
        ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
         land mask)
    done;
    let a = ref !h0 and b = ref !h1 and c = ref !h2 and d = ref !h3 in
    let e = ref !h4 and f = ref !h5 and g = ref !h6 and hh = ref !h7 in
    for t = 0 to 63 do
      let ev = !e land mask in
      let sigma1 =
        ((ev lsr 6) lor (ev lsl 26)) land mask
        lxor (((ev lsr 11) lor (ev lsl 21)) land mask)
        lxor (((ev lsr 25) lor (ev lsl 7)) land mask)
      in
      let ch = (ev land !f) lxor (lnot ev land !g) in
      let t1 =
        (!hh + sigma1 + ch + Array.unsafe_get k_const t + Array.unsafe_get w t)
        land mask
      in
      let av = !a land mask in
      let sigma0 =
        ((av lsr 2) lor (av lsl 30)) land mask
        lxor (((av lsr 13) lor (av lsl 19)) land mask)
        lxor (((av lsr 22) lor (av lsl 10)) land mask)
      in
      let maj = (av land !b) lxor (av land !c) lxor (!b land !c) in
      let t2 = (sigma0 + maj) land mask in
      hh := !g;
      g := !f;
      f := ev;
      e := (!d + t1) land mask;
      d := !c;
      c := !b;
      b := av;
      a := (t1 + t2) land mask
    done;
    h0 := (!h0 + !a) land mask;
    h1 := (!h1 + !b) land mask;
    h2 := (!h2 + !c) land mask;
    h3 := (!h3 + !d) land mask;
    h4 := (!h4 + !e) land mask;
    h5 := (!h5 + !f) land mask;
    h6 := (!h6 + !g) land mask;
    h7 := (!h7 + !hh) land mask
  in
  for block = 0 to full - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let i = base + (4 * t) in
      Array.unsafe_set w t
        ((Char.code (String.unsafe_get msg i) lsl 24)
        lor (Char.code (String.unsafe_get msg (i + 1)) lsl 16)
        lor (Char.code (String.unsafe_get msg (i + 2)) lsl 8)
        lor Char.code (String.unsafe_get msg (i + 3)))
    done;
    compress ()
  done;
  for block = 0 to (tail_len / 64) - 1 do
    let base = block * 64 in
    for t = 0 to 15 do
      let i = base + (4 * t) in
      Array.unsafe_set w t
        ((Char.code (Bytes.unsafe_get tail i) lsl 24)
        lor (Char.code (Bytes.unsafe_get tail (i + 1)) lsl 16)
        lor (Char.code (Bytes.unsafe_get tail (i + 2)) lsl 8)
        lor Char.code (Bytes.unsafe_get tail (i + 3)))
    done;
    compress ()
  done;
  Printf.sprintf "%08x%08x%08x%08x%08x%08x%08x%08x" !h0 !h1 !h2 !h3 !h4 !h5
    !h6 !h7

let sha256_hex = sha256

type t = string

let code_version = "dcecc-store/1"
let of_material m = sha256 (code_version ^ "\n" ^ m)
let of_scenario s = of_material ("scenario@v1\n" ^ Simnet.Scenario.encode s)
let to_hex k = k

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let of_hex s =
  if String.length s = 64 && String.for_all is_hex s then Some s else None
