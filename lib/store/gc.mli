(** Generation-based garbage collection over the object tree.

    Roots are the manifests: every point key of every well-formed
    manifest is live, and manifests themselves are never collected.
    Lease ranges are index intervals {e into} manifests, so the GC
    liveness invariant — never collect an object referenced by a live
    manifest or lease — reduces to the manifest root set alone.

    Concurrent writers are protected by a {e generation guard}: any
    object whose mtime is at or after the GC's start (widened by
    [min_age]) is treated as live even when unrooted, covering the
    window where a worker has stored points for a manifest the GC has
    not seen. An object is collected only when unrooted {e and} older
    than this generation. *)

type report = {
  scanned : int;  (** objects examined *)
  live : int;  (** rooted, age-guarded, or unremovable *)
  collected : int;  (** objects deleted (or would-be, under dry-run) *)
  collected_bytes : int;  (** their on-disk size *)
  tmp_removed : int;  (** stale in-flight temp files cleaned up *)
}

val run : ?dry_run:bool -> ?min_age:float -> Cache.t -> report
(** Sweep unrooted objects. [dry_run] (default [false]) reports what
    would be collected without deleting anything (and skips the tmp
    sweep and index compaction). [min_age] (default [0.], seconds)
    widens the generation guard — use a few seconds when other hosts
    share the store over a network filesystem with clock skew. A real
    run updates the index per deletion, adds to
    {!Cache.gc_collected}, and finishes with an {!Index.compact}. *)
