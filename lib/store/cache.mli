(** Content-addressed on-disk result cache.

    Layout under the store root:
    {v
    <root>/format              "dcecc-store v1\n" — refuses foreign dirs
    <root>/objects/ab/<key>    entry: header line + payload bytes
    <root>/manifests/<key>     sweep manifests (see {!Manifest})
    <root>/tmp/                in-flight writes, renamed into place
    v}

    Every entry embeds the SHA-256 of its payload in the header;
    {!find} re-hashes on read, and a mismatch (truncated write, bit
    rot, manual tampering) {e evicts} the entry and reports a miss, so
    corruption degrades to recomputation, never to wrong results.

    Writes are atomic (unique temp file + [rename] on the same
    filesystem), so concurrent writers — pool domains or separate
    processes sharing one store — race benignly: last rename wins and
    both contents are identical by construction (same key ⇒ same
    material ⇒ same result bytes for a deterministic computation).

    Counters are [Atomic] and therefore meaningful when a sweep fans
    out over {!Parallel.Pool} domains. *)

type t

val open_ : dir:string -> t
(** Create or reopen a store rooted at [dir] (created, including
    parents, if absent). Raises [Failure] when [dir] exists but carries
    a different format stamp — refusing to scribble over a directory
    that is not a store. *)

val root : t -> string

(** {1 Raw byte entries} *)

val find : t -> Key.t -> string option
(** Payload bytes, or [None] on miss {e or} on integrity failure (the
    corrupt entry is evicted first). Counts a hit or a miss. *)

val put : t -> Key.t -> string -> unit
(** Store payload bytes under the key, atomically. *)

val mem : t -> Key.t -> bool
(** Entry file exists (no integrity check, no counter update). *)

(** {1 Typed entries (Marshal)} *)

val find_value : t -> Key.t -> 'a option
(** [Marshal] decode of {!find}. The caller owes the type annotation;
    keys must therefore encode everything that determines the payload
    type — which scenario keys do. An undecodable payload evicts like
    corruption. *)

val store_value : t -> Key.t -> 'a -> unit

val memo : t -> Key.t -> (unit -> 'a) -> 'a
(** [memo c k f] returns the cached value for [k], or runs [f], stores
    the result, and returns it. On the store path the returned value is
    the {e parse of the stored bytes}, not [f ()]'s raw return: fresh
    values can physically share blocks with data outside themselves
    (statically allocated float constants, common sub-structures),
    which [Marshal] encodes and a warm read would not reproduce.
    Normalizing makes cold and warm calls structurally identical, so
    downstream serialization is byte-identical either way. *)

(** {1 Statistics} *)

type stats = { hits : int; misses : int; puts : int; evictions : int }

val stats : t -> stats
val reset_stats : t -> unit

val publish_metrics : t -> Telemetry.Metrics.t -> unit
(** Export the counters as [store.hits] / [store.misses] /
    [store.puts] / [store.evictions]. *)

val entries : t -> int
(** Number of object entries on disk (directory walk). *)
