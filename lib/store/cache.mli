(** Content-addressed on-disk result cache.

    Layout under the store root:
    {v
    <root>/format              "dcecc-store v1\n" — refuses foreign dirs
    <root>/objects/ab/<key>    entry: header line + payload bytes
    <root>/manifests/<key>     sweep manifests (see {!Manifest})
    <root>/leases/<key>/       fabric work leases (see {!Lease})
    <root>/index.jnl           append-only object index (see {!Index})
    <root>/tmp/                in-flight writes, renamed into place
    v}

    Every entry embeds the SHA-256 of its payload in the header;
    {!find} re-hashes on read, and a mismatch (truncated write, bit
    rot, manual tampering) {e evicts} the entry and reports a miss, so
    corruption degrades to recomputation, never to wrong results.

    Writes are atomic (unique temp file + [rename] on the same
    filesystem), so concurrent writers — pool domains or separate
    processes sharing one store — race benignly: last rename wins and
    both contents are identical by construction (same key ⇒ same
    material ⇒ same result bytes for a deterministic computation).

    Counters are [Atomic] and therefore meaningful when a sweep fans
    out over {!Parallel.Pool} domains. *)

type t

val open_ : dir:string -> t
(** Create or reopen a store rooted at [dir] (created, including
    parents, if absent). Raises [Failure] when [dir] exists but carries
    a different format stamp — refusing to scribble over a directory
    that is not a store. *)

val root : t -> string

(** {1 Raw byte entries} *)

val find : t -> Key.t -> string option
(** Payload bytes, or [None] on miss {e or} on integrity failure (the
    corrupt entry is evicted first). Counts a hit or a miss. *)

val put : t -> Key.t -> string -> unit
(** Store payload bytes under the key, atomically. *)

val mem : t -> Key.t -> bool
(** Entry file exists (no integrity check, no counter update). *)

val evict : t -> Key.t -> unit
(** Remove an entry (idempotent), keeping the index and the eviction
    counter in lockstep. {!find} calls this on integrity failure; fsck
    calls it on entries whose payload hash no longer matches. *)

(** {1 Typed entries (Marshal)} *)

val find_value : t -> Key.t -> 'a option
(** [Marshal] decode of {!find}. The caller owes the type annotation;
    keys must therefore encode everything that determines the payload
    type — which scenario keys do. An undecodable payload evicts like
    corruption. *)

val store_value : t -> Key.t -> 'a -> unit

val memo : t -> Key.t -> (unit -> 'a) -> 'a
(** [memo c k f] returns the cached value for [k], or runs [f], stores
    the result, and returns it. On the store path the returned value is
    the {e parse of the stored bytes}, not [f ()]'s raw return: fresh
    values can physically share blocks with data outside themselves
    (statically allocated float constants, common sub-structures),
    which [Marshal] encodes and a warm read would not reproduce.
    Normalizing makes cold and warm calls structurally identical, so
    downstream serialization is byte-identical either way. *)

(** {1 Statistics} *)

type stats = { hits : int; misses : int; puts : int; evictions : int }

val stats : t -> stats
val reset_stats : t -> unit

val publish_metrics : t -> Telemetry.Metrics.t -> unit
(** Export the counters as [store.hits] / [store.misses] /
    [store.puts] / [store.evictions] / [store.gc_collected], plus the
    index-backed size accounting [store.objects] / [store.bytes]. *)

val entries : t -> int
(** Number of object entries on disk — a directory walk, O(objects).
    Kept as the slow oracle the index is benchmarked and fsck'd
    against; use {!objects} on hot paths. *)

(** {1 The object index} *)

val index : t -> Index.t
(** The store's on-disk index (opened with the cache; kept in lockstep
    by [put] and evictions). Advisory — see {!Index}. *)

val objects : t -> int
(** Object count through the index: one {!Index.refresh} plus an O(1)
    read, instead of {!entries}' directory walk. *)

val bytes : t -> int
(** Total on-disk entry bytes (headers + payloads) through the index. *)

val gc_collected : t -> int
(** Objects collected by {!Gc.run} through this handle. *)

val add_gc_collected : t -> int -> unit
(** Used by {!Gc.run} to account its sweep. *)
