let magic = "dcecc-manifest v1"

type t = { sweep_key : Key.t; points : Key.t array }

let create ~points =
  let material =
    String.concat "\n"
      ("sweep@v1" :: Array.to_list (Array.map Key.to_hex points))
  in
  { sweep_key = Key.of_material material; points }

let path cache key =
  Filename.concat (Filename.concat (Cache.root cache) "manifests")
    (Key.to_hex key)

let save cache m =
  let body =
    String.concat "\n"
      (magic :: Array.to_list (Array.map Key.to_hex m.points))
    ^ "\n"
  in
  let target = path cache m.sweep_key in
  let tmp =
    Printf.sprintf "%s.%d.%d" target (Unix.getpid ()) (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc body);
  Sys.rename tmp target

let load cache key =
  let file = path cache key in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    let body =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match String.split_on_char '\n' body with
    | m :: rest when m = magic ->
        let hexes = List.filter (fun l -> l <> "") rest in
        let keys = List.filter_map Key.of_hex hexes in
        if List.length keys <> List.length hexes then None
        else
          let m = { sweep_key = key; points = Array.of_list keys } in
          (* a manifest is content-addressed too: its name must match
             its points, else it was tampered with or misfiled *)
          if Key.to_hex (create ~points:m.points).sweep_key = Key.to_hex key
          then Some m
          else None
    | _ -> None

let list cache =
  let dir = Filename.concat (Cache.root cache) "manifests" in
  if not (Sys.file_exists dir) then []
  else
    Array.to_list (Sys.readdir dir)
    |> List.filter_map (fun name ->
           match Key.of_hex name with
           | Some key -> load cache key
           | None -> None)

let progress cache m =
  Array.fold_left
    (fun acc k -> if Cache.mem cache k then acc + 1 else acc)
    0 m.points

let progress_of_index cache m =
  let ix = Cache.index cache in
  Index.refresh ix;
  Array.fold_left
    (fun acc k -> if Index.mem ix (Key.to_hex k) then acc + 1 else acc)
    0 m.points
