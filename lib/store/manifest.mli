(** Sweep manifests: the ordered point-key list of one sweep.

    A manifest is what makes a killed sweep {e resumable with
    reporting}: correctness needs only the per-point cache entries
    (recomputation is keyed point by point), but the manifest records
    how many points the sweep had in total, so a restarted run can say
    "resuming 37/120" before any simulation starts, and [--store-stats]
    can enumerate partially-complete sweeps.

    Stored as plain text under [<root>/manifests/<sweep-key>]: one
    header line [dcecc-manifest v1], then one point-key hex per line in
    sweep order. The sweep key is content-derived
    ({!Key.of_material} over the joined point keys), so re-running the
    same sweep finds its own manifest by construction. *)

type t = private { sweep_key : Key.t; points : Key.t array }

val create : points:Key.t array -> t

val save : Cache.t -> t -> unit
(** Atomic, idempotent (same points ⇒ same key ⇒ same bytes). *)

val load : Cache.t -> Key.t -> t option
(** [None] if absent or malformed. *)

val list : Cache.t -> t list
(** All well-formed manifests in the store, in unspecified order. *)

val progress : Cache.t -> t -> int
(** Number of points whose cache entry is present ({!Cache.mem} — no
    integrity pass, so a corrupt entry may count until read). One stat
    per point; the slow oracle for {!progress_of_index}. *)

val progress_of_index : Cache.t -> t -> int
(** Same count through the {!Index}: one {!Index.refresh} then O(1)
    membership per point, no filesystem traffic per key. Advisory like
    the index itself — status displays and daemon stats use this;
    completion decisions stat the files. *)
