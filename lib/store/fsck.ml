(* Parallel store verification: re-read every object, re-hash its
   payload against the header, evict what fails, and cross-check the
   index against what the walk actually found.

   Hashing dominates the cost and objects are independent, so
   verification shards across a [Parallel.Pool]. The walk is the source
   of truth (the index is advisory); the index phase repairs both
   divergence modes — entries the index missed ([missing_index],
   recorded in) and records for vanished objects ([stale_index],
   dropped) — then compacts the journal. *)

type report = {
  checked : int;
  ok : int;
  corrupt : int;
  evicted : int;
  missing_index : int;
  stale_index : int;
}

let hex_ok h =
  String.length h = 64
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       h

let object_path cache hex =
  Filename.concat
    (Filename.concat
       (Filename.concat (Cache.root cache) "objects")
       (String.sub hex 0 2))
    hex

let collect_objects cache =
  let objects = Filename.concat (Cache.root cache) "objects" in
  if not (Sys.file_exists objects) then [||]
  else begin
    let acc = ref [] in
    Array.iter
      (fun sub ->
        let d = Filename.concat objects sub in
        if Sys.is_directory d then
          Array.iter
            (fun name -> if hex_ok name then acc := name :: !acc)
            (Sys.readdir d))
      (Sys.readdir objects);
    (* deterministic verification order regardless of readdir order *)
    let arr = Array.of_list !acc in
    Array.sort compare arr;
    arr
  end

type verdict = Sound of int | Corrupt | Vanished

(* Mirrors the integrity check of [Cache.find], minus counters and
   eviction — fsck decides centrally what to do with failures. *)
let verify cache hex =
  match open_in_bin (object_path cache hex) with
  | exception Sys_error _ -> Vanished
  | ic ->
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let header_len = 72 in
      let magic = "dcecc1 " in
      if
        String.length raw >= header_len
        && String.sub raw 0 (String.length magic) = magic
        && raw.[header_len - 1] = '\n'
        && Key.sha256_hex
             (String.sub raw header_len (String.length raw - header_len))
           = String.sub raw (String.length magic) 64
      then Sound (String.length raw)
      else Corrupt

let run ?jobs ?(evict = true) cache =
  let hexes = collect_objects cache in
  let verdicts =
    Parallel.Pool.with_pool ?size:jobs (fun pool ->
        Parallel.Pool.parmap_array pool (fun hex -> verify cache hex) hexes)
  in
  let ix = Cache.index cache in
  Index.refresh ix;
  let ok = ref 0
  and corrupt = ref 0
  and evicted = ref 0
  and missing_index = ref 0 in
  let live = Hashtbl.create (max 16 (Array.length hexes)) in
  Array.iteri
    (fun i verdict ->
      let hex = hexes.(i) in
      match verdict with
      | Sound size ->
          incr ok;
          Hashtbl.replace live hex ();
          if not (Index.mem ix hex) then begin
            incr missing_index;
            Index.record_add ix hex size
          end
      | Corrupt ->
          incr corrupt;
          if evict then begin
            (match Key.of_hex hex with
            | Some key -> Cache.evict cache key
            | None ->
                (try Sys.remove (object_path cache hex) with Sys_error _ -> ());
                Index.record_remove ix hex);
            incr evicted
          end
          else Hashtbl.replace live hex ()
      | Vanished -> ())
    verdicts;
  (* stale records: indexed keys with no surviving object file *)
  let stale = ref 0 in
  List.iter
    (fun hex ->
      if not (Hashtbl.mem live hex) then begin
        incr stale;
        Index.record_remove ix hex
      end)
    (Index.keys ix);
  Index.compact ix;
  {
    checked = Array.length hexes;
    ok = !ok;
    corrupt = !corrupt;
    evicted = !evicted;
    missing_index = !missing_index;
    stale_index = !stale;
  }
