(* Generation-based garbage collection.

   Liveness is defined by the manifests: every point key of every
   well-formed manifest is a root, and manifests themselves are never
   collected. Lease ranges are index intervals into manifests, so lease
   liveness is subsumed by manifest liveness — a leased point is a
   manifest point.

   The crash-safety hazard is the race with concurrent workers: a
   worker may [put] an object for a manifest it has not saved yet (the
   sweep layer saves the manifest before the points, but foreign
   writers need not). The generation guard closes it: any object whose
   mtime is at or after the GC's start time is treated as live
   regardless of the root set, and [min_age] widens the guard to cover
   clock skew between hosts sharing the store. An object can therefore
   only be collected when it is both unrooted and demonstrably older
   than this GC generation. *)

type report = {
  scanned : int;
  live : int;
  collected : int;
  collected_bytes : int;
  tmp_removed : int;
}

let hex_ok h =
  String.length h = 64
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       h

let roots cache =
  let set = Hashtbl.create 4096 in
  List.iter
    (fun (m : Manifest.t) ->
      Array.iter
        (fun k -> Hashtbl.replace set (Key.to_hex k) ())
        m.Manifest.points)
    (Manifest.list cache);
  set

(* stale tmp files: in-flight writes whose writer died before rename.
   Same age guard — a live writer's tmp file is younger than it. *)
let sweep_tmp cache ~cutoff =
  let dir = Filename.concat (Cache.root cache) "tmp" in
  if not (Sys.file_exists dir) then 0
  else
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        match Unix.stat path with
        | { Unix.st_mtime; _ } when st_mtime < cutoff -> (
            match Sys.remove path with
            | () -> acc + 1
            | exception Sys_error _ -> acc)
        | _ | (exception Unix.Unix_error _) -> acc)
      0 (Sys.readdir dir)

let run ?(dry_run = false) ?(min_age = 0.) cache =
  let start = Unix.gettimeofday () in
  let cutoff = start -. min_age in
  let live_set = roots cache in
  let scanned = ref 0
  and live = ref 0
  and collected = ref 0
  and collected_bytes = ref 0 in
  let objects = Filename.concat (Cache.root cache) "objects" in
  if Sys.file_exists objects then
    Array.iter
      (fun sub ->
        let d = Filename.concat objects sub in
        if Sys.is_directory d then
          Array.iter
            (fun name ->
              if hex_ok name then begin
                incr scanned;
                if Hashtbl.mem live_set name then incr live
                else
                  let path = Filename.concat d name in
                  match Unix.stat path with
                  | exception Unix.Unix_error _ -> incr live
                  | { Unix.st_mtime; st_size; _ } ->
                      if st_mtime >= cutoff then
                        (* generation guard: written during or near this
                           GC — a concurrent writer's object whose
                           manifest we may not have seen *)
                        incr live
                      else if dry_run then begin
                        incr collected;
                        collected_bytes := !collected_bytes + st_size
                      end
                      else begin
                        (match Sys.remove path with
                        | () ->
                            incr collected;
                            collected_bytes := !collected_bytes + st_size;
                            Index.record_remove (Cache.index cache) name
                        | exception Sys_error _ -> incr live)
                      end
              end)
            (Sys.readdir d))
      (Sys.readdir objects);
  let tmp_removed = if dry_run then 0 else sweep_tmp cache ~cutoff in
  if not dry_run then begin
    Cache.add_gc_collected cache !collected;
    (* fold the removal churn out of the journal *)
    Index.compact (Cache.index cache)
  end;
  {
    scanned = !scanned;
    live = !live;
    collected = !collected;
    collected_bytes = !collected_bytes;
    tmp_removed;
  }
