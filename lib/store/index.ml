(* On-disk object index: an append-only journal of add/remove records
   mirrored into an in-memory hash table, so key membership, object
   counts and byte totals are O(1) instead of a stat per key or a
   directory walk per query.

   The journal is *advisory*: nothing correctness-critical trusts it.
   [Cache.find] still reads and verifies the entry file itself, and the
   fabric's range-completion checks stat the object files directly. The
   index only has to be cheap, mostly-fresh and rebuildable — which is
   what lets it stay crash-tolerant with no locking:

   - records are single short lines written with one O_APPEND write, so
     concurrent writers (pool domains, separate worker processes on a
     shared store) interleave whole lines;
   - a torn trailing line (a writer died mid-write, or we raced a
     writer) is simply not consumed yet — [refresh] re-reads from the
     last consumed byte offset and only advances past complete lines;
   - a journal that shrank (another process ran [compact]) or fails to
     parse is discarded and replayed from byte 0;
   - a missing or stale journal is rebuilt from the object tree, the
     one source of truth. *)

let journal_magic = "dcecc-index v1\n"

type t = {
  root : string;
  tbl : (string, int) Hashtbl.t;  (* key hex -> bytes on disk *)
  mutable total : int;  (* sum of table sizes, kept in lockstep *)
  mutable consumed : int;  (* journal bytes replayed so far *)
  mutable append_fd : Unix.file_descr option;
  mx : Mutex.t;
}

let journal_path root = Filename.concat root "index.jnl"

let hex_ok h =
  String.length h = 64
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       h

(* Replay journal lines from [buf]; returns bytes consumed (complete
   lines only). A malformed complete line aborts the replay by raising
   — the caller falls back to a rebuild. *)
exception Malformed

let set_entry t hex size =
  (match Hashtbl.find_opt t.tbl hex with
  | Some old -> t.total <- t.total - old
  | None -> ());
  Hashtbl.replace t.tbl hex size;
  t.total <- t.total + size

let drop_entry t hex =
  match Hashtbl.find_opt t.tbl hex with
  | Some old ->
      t.total <- t.total - old;
      Hashtbl.remove t.tbl hex;
      true
  | None -> false

let apply_line t line =
  let fail () = raise Malformed in
  match String.split_on_char ' ' line with
  | [ "+"; hex; size ] -> (
      if not (hex_ok hex) then fail ();
      match int_of_string_opt size with
      | Some s when s >= 0 -> set_entry t hex s
      | Some _ | None -> fail ())
  | [ "-"; hex ] ->
      if not (hex_ok hex) then fail ();
      ignore (drop_entry t hex)
  | _ -> fail ()

let replay t buf start =
  let rec go pos =
    match String.index_from_opt buf pos '\n' with
    | None -> pos
    | Some nl ->
        apply_line t (String.sub buf pos (nl - pos));
        go (nl + 1)
  in
  go start

let read_from path off =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len < off then None
          else begin
            seek_in ic off;
            Some (really_input_string ic (len - off))
          end)

(* ---------- rebuild from the object tree ---------- *)

let scan_objects root f =
  let objects = Filename.concat root "objects" in
  if Sys.file_exists objects then
    Array.iter
      (fun sub ->
        let d = Filename.concat objects sub in
        if Sys.is_directory d then
          Array.iter
            (fun name ->
              if hex_ok name then
                let path = Filename.concat d name in
                match Unix.stat path with
                | { Unix.st_size; _ } -> f name st_size
                | exception Unix.Unix_error _ -> ())
            (Sys.readdir d))
      (Sys.readdir objects)

(* Writing the journal image is tmp+rename atomic; [consumed] is set to
   the byte length of what we wrote so a subsequent [refresh] picks up
   only records appended after the rewrite. *)
let write_image t =
  let buf = Buffer.create (64 + (Hashtbl.length t.tbl * 80)) in
  Buffer.add_string buf journal_magic;
  let entries =
    Hashtbl.fold (fun hex size acc -> (hex, size) :: acc) t.tbl []
  in
  List.iter
    (fun (hex, size) -> Buffer.add_string buf (Printf.sprintf "+ %s %d\n" hex size))
    (List.sort compare entries);
  let image = Buffer.contents buf in
  let target = journal_path t.root in
  let tmp =
    Printf.sprintf "%s.%d.%d" target (Unix.getpid ()) (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc image);
  Sys.rename tmp target;
  (* the append fd (if any) now points at the replaced inode; drop it *)
  (match t.append_fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.append_fd <- None
  | None -> ());
  t.consumed <- String.length image

let rebuild_locked t =
  Hashtbl.reset t.tbl;
  t.total <- 0;
  scan_objects t.root (fun hex size -> set_entry t hex size);
  write_image t

(* ---------- load / refresh ---------- *)

let load_locked t =
  Hashtbl.reset t.tbl;
  t.total <- 0;
  t.consumed <- 0;
  match read_from (journal_path t.root) 0 with
  | None -> rebuild_locked t
  | Some buf -> (
      let m = String.length journal_magic in
      if String.length buf < m || String.sub buf 0 m <> journal_magic then
        rebuild_locked t
      else
        match replay t buf m with
        | consumed -> t.consumed <- consumed
        | exception Malformed -> rebuild_locked t)

let refresh_locked t =
  let path = journal_path t.root in
  match (Unix.stat path).Unix.st_size with
  | exception Unix.Unix_error _ -> load_locked t
  | size ->
      if size < t.consumed then load_locked t (* compacted underneath us *)
      else if size > t.consumed then (
        match read_from path t.consumed with
        | None -> load_locked t
        | Some buf -> (
            match replay t buf 0 with
            | n -> t.consumed <- t.consumed + n
            | exception Malformed -> load_locked t))

let locked t f =
  Mutex.lock t.mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mx) (fun () -> f ())

let open_ ~root =
  let t =
    {
      root;
      tbl = Hashtbl.create 1024;
      total = 0;
      consumed = 0;
      append_fd = None;
      mx = Mutex.create ();
    }
  in
  locked t (fun () -> load_locked t);
  t

let refresh t = locked t (fun () -> refresh_locked t)
let rebuild t = locked t (fun () -> rebuild_locked t)
let compact t = locked t (fun () -> refresh_locked t; write_image t)

(* ---------- queries ---------- *)

let mem t hex = locked t (fun () -> Hashtbl.mem t.tbl hex)

let keys t =
  locked t (fun () -> Hashtbl.fold (fun hex _ acc -> hex :: acc) t.tbl [])
let size_of t hex = locked t (fun () -> Hashtbl.find_opt t.tbl hex)
let objects t = locked t (fun () -> Hashtbl.length t.tbl)
let bytes t = locked t (fun () -> t.total)

(* ---------- updates ---------- *)

(* One write(2) per record: with O_APPEND the kernel serializes
   concurrent appenders, so lines never interleave mid-record. If the
   journal vanished (foreign cleanup), the open recreates it headerless;
   [load] treats a header mismatch as cause for rebuild, which heals. *)
let append_locked t line =
  let fd =
    match t.append_fd with
    | Some fd -> fd
    | None ->
        let path = journal_path t.root in
        let fresh = not (Sys.file_exists path) in
        let fd =
          Unix.openfile path [ O_WRONLY; O_APPEND; O_CREAT ] 0o644
        in
        if fresh then
          ignore (Unix.write_substring fd journal_magic 0 (String.length journal_magic));
        t.append_fd <- Some fd;
        fd
  in
  ignore (Unix.write_substring fd line 0 (String.length line))

let record_add t hex size =
  locked t (fun () ->
      set_entry t hex size;
      append_locked t (Printf.sprintf "+ %s %d\n" hex size))

let record_remove t hex =
  locked t (fun () ->
      if drop_entry t hex then append_locked t (Printf.sprintf "- %s\n" hex))

let close t =
  locked t (fun () ->
      match t.append_fd with
      | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.append_fd <- None
      | None -> ())
