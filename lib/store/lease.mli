(** Work leases: filesystem-native coordination for distributed sweeps.

    A sweep (identified by its manifest {!Key.t}) owns
    [<root>/leases/<sweep-hex>/]; each contiguous point range of the
    manifest is one slot [rNNNNNN.lease] plus a completion marker
    [rNNNNNN.done]. The only synchronization primitive is
    [O_CREAT|O_EXCL] — atomic across processes — so exactly one worker
    wins a free slot, and exactly one stealer wins a vacated one.

    The protocol is {e mostly} exclusive by design: a worker that
    stalls past the TTL can lose its lease while still executing, so
    two workers may compute the same points concurrently. That is safe
    — points are content-addressed, both workers store byte-identical
    entries, and {!Fabric.Merge} reads the store in manifest order —
    so execution is at-least-once while results stay exactly-once,
    with no locks, no server, and no fencing tokens. *)

type info = {
  worker : string;  (** claimant's id, caller-chosen *)
  lo : int;  (** first manifest point index of the range, inclusive *)
  hi : int;  (** last manifest point index, inclusive *)
  beat : float;  (** wall-clock time of the last heartbeat *)
}

val claim :
  Cache.t ->
  sweep:Key.t ->
  range:int ->
  lo:int ->
  hi:int ->
  worker:string ->
  bool
(** Try to claim range slot [range] of [sweep] for [worker] covering
    manifest points [lo..hi]. Returns [false] when another worker holds
    the slot. Raises [Invalid_argument] on an empty or
    newline-containing worker id. *)

val read : Cache.t -> sweep:Key.t -> range:int -> info option
(** Current holder of a slot, or [None] when unclaimed (or the file is
    torn/foreign — callers treat that as claimable). *)

val heartbeat :
  Cache.t -> sweep:Key.t -> range:int -> worker:string -> lo:int -> hi:int -> unit
(** Refresh the beat timestamp (tmp+rename, never torn). Called
    periodically by the holder while executing the range. *)

val release : Cache.t -> sweep:Key.t -> range:int -> unit
(** Remove the lease file (idempotent). *)

val expired : ttl:float -> now:float -> info -> bool
(** [now -. beat > ttl]. *)

val steal :
  Cache.t ->
  sweep:Key.t ->
  range:int ->
  lo:int ->
  hi:int ->
  worker:string ->
  ttl:float ->
  now:float ->
  bool
(** Take over an expired lease: re-read the slot, and if the holder's
    beat is older than [ttl], unlink and re-claim. The re-claim's
    [O_EXCL] elects exactly one winner among concurrent stealers.
    Returns [false] when the lease is live or another stealer won. *)

val mark_done : Cache.t -> sweep:Key.t -> range:int -> worker:string -> unit
(** Drop the completion marker for a range (idempotent — duplicate
    completions from duplicated work collapse onto one marker). *)

val is_done : Cache.t -> sweep:Key.t -> range:int -> bool

val clear_done : Cache.t -> sweep:Key.t -> range:int -> unit
(** Revoke a completion marker (idempotent). Workers do this when a
    done range's results went missing — fsck evicted a corrupt point,
    or gc of a deleted-then-restored manifest — so the range becomes
    claimable and heals. *)

val dones : Cache.t -> sweep:Key.t -> int
(** Number of completed ranges — drives status displays. *)

val list : Cache.t -> sweep:Key.t -> (int * info) list
(** Live leases of a sweep, sorted by range slot. *)
