(** Parallel store verification.

    Re-reads every object in the tree, re-hashes its payload against
    the embedded SHA-256 header (the same check {!Cache.find} performs
    on each read, done here for the whole store at once over a
    {!Parallel.Pool}), evicts what fails, and reconciles the {!Index}
    with what the walk found. *)

type report = {
  checked : int;  (** objects examined *)
  ok : int;  (** passed the payload-hash check *)
  corrupt : int;  (** header/hash mismatch *)
  evicted : int;  (** corrupt entries removed (0 when [evict:false]) *)
  missing_index : int;  (** sound objects the index did not list — added *)
  stale_index : int;  (** index records with no object file — dropped *)
}

val run : ?jobs:int -> ?evict:bool -> Cache.t -> report
(** Verify the whole store. [jobs] sizes the pool (default
    {!Parallel.Pool.default_size}, i.e. [DCECC_JOBS] or the domain
    count). [evict] (default [true]) removes corrupt entries; with
    [evict:false] the report only counts them. Always repairs the
    index and compacts its journal. A clean store reports
    [corrupt = 0] and [stale_index = 0]. *)
