(** Content-addressed cache keys.

    A key is the SHA-256 (lowercase hex) of a {e key material} string:
    the store's code-version stamp concatenated with a caller-supplied
    canonical description of the computation. Equal material ⇒ equal
    key; the SHA-256 collision resistance makes the converse safe to
    assume, so keys can name files directly.

    SHA-256 is implemented here (FIPS 180-4) because the toolchain
    ships no SHA digest — [Digest] is MD5, which is both truncatable
    and collision-broken, unacceptable for a content address. *)

type t = private string
(** 64 lowercase hex characters. *)

val code_version : string
(** Stamp mixed into every key, e.g. ["dcecc-store/1"]. Bump the
    trailing integer whenever simulation semantics change in a way
    that must invalidate previously stored results. *)

val of_material : string -> t
(** [of_material m] hashes [code_version ^ "\n" ^ m]. *)

val of_scenario : Simnet.Scenario.t -> t
(** Key for a full scenario run:
    [of_material ("scenario@v1\n" ^ Scenario.encode s)]. Raises
    [Invalid_argument] on invalid scenarios (encode validates). *)

val to_hex : t -> string
val of_hex : string -> t option
(** Accepts exactly 64 lowercase hex characters. *)

val sha256_hex : string -> string
(** The raw digest primitive, exposed for tests against the FIPS
    vectors and for the cache's body-integrity check. *)

val sha256_reference : string -> string
(** The straightforward FIPS 180-4 loop, kept as a differential-testing
    oracle for the unrolled production compression function behind
    [sha256_hex]. Same digests, lower throughput. *)

type ctx
(** Streaming digest state: absorb input incrementally with {!feed},
    close with {!final}. [sha256_hex s] = [init] + one [feed] + [final]. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb the whole string. Chunk boundaries do not affect the digest:
    feeding a string in any split yields the digest of the
    concatenation. *)

val final : ctx -> string
(** Close the stream and return the digest (64 lowercase hex chars).
    The context must not be fed again afterwards. *)
