(* Work leases: the fabric's coordination primitive, built on nothing
   but the store directory and POSIX file semantics.

   One sweep (identified by its manifest key) owns a directory
   [<root>/leases/<sweep-hex>/]; each contiguous point range of the
   manifest is one lease slot [rNNNNNN.lease] plus a completion marker
   [rNNNNNN.done]. Claims go through [O_CREAT|O_EXCL] — the one
   filesystem operation that is atomic across processes and (over NFS3+)
   across hosts sharing the directory — so exactly one worker wins a
   free slot. Heartbeats rewrite the lease file (tmp+rename) with a
   fresh wall-clock stamp; a lease whose stamp is older than the TTL is
   presumed dead and may be stolen: unlink + re-claim, where the
   re-claim's O_EXCL again elects exactly one winner among racing
   stealers.

   The protocol is deliberately only *mostly* exclusive: a worker that
   stalls (not dies) past the TTL can lose its lease yet keep
   executing, so two workers may run the same points concurrently.
   That is safe by construction — points are content-addressed, both
   workers write byte-identical entries, and the merge step reads the
   store in manifest order — so the fabric trades a little duplicated
   work for a protocol with no locks, no server and no fencing.
   Execution is at-least-once; results are exactly-once. *)

type info = { worker : string; lo : int; hi : int; beat : float }

let magic = "dcecc-lease v1"

let sweep_dir cache sweep =
  Filename.concat
    (Filename.concat (Cache.root cache) "leases")
    (Key.to_hex sweep)

let lease_path cache sweep range =
  Filename.concat (sweep_dir cache sweep) (Printf.sprintf "r%06d.lease" range)

let done_path cache sweep range =
  Filename.concat (sweep_dir cache sweep) (Printf.sprintf "r%06d.done" range)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let body ~worker ~lo ~hi ~beat =
  Printf.sprintf "%s\nworker %s\nrange %d %d\nbeat %.6f\n" magic worker lo hi
    beat

(* The worker id is caller-chosen; forbid the separators the file
   format and the done markers rely on. *)
let check_worker worker =
  if
    worker = ""
    || String.exists (function '\n' | '\r' -> true | _ -> false) worker
  then invalid_arg "Store.Lease: worker id must be non-empty, newline-free"

let claim cache ~sweep ~range ~lo ~hi ~worker =
  check_worker worker;
  mkdir_p (sweep_dir cache sweep);
  let path = lease_path cache sweep range in
  match Unix.openfile path [ O_WRONLY; O_CREAT; O_EXCL ] 0o644 with
  | fd ->
      let s = body ~worker ~lo ~hi ~beat:(Unix.gettimeofday ()) in
      let rec w off =
        if off < String.length s then
          w (off + Unix.write_substring fd s off (String.length s - off))
      in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> w 0);
      true
  | exception Unix.Unix_error (EEXIST, _, _) -> false

let read cache ~sweep ~range =
  let path = lease_path cache sweep range in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match String.split_on_char '\n' contents with
      | m :: worker_l :: range_l :: beat_l :: _ when m = magic -> (
          let strip prefix l =
            let p = prefix ^ " " in
            if
              String.length l > String.length p
              && String.sub l 0 (String.length p) = p
            then
              Some (String.sub l (String.length p) (String.length l - String.length p))
            else if String.length l >= String.length p && prefix = "worker"
            then
              (* an empty worker id never passes [claim]; be strict *)
              None
            else None
          in
          match
            ( strip "worker" worker_l,
              strip "range" range_l,
              strip "beat" beat_l )
          with
          | Some worker, Some range_s, Some beat_s -> (
              match
                ( String.split_on_char ' ' range_s,
                  float_of_string_opt beat_s )
              with
              | [ lo_s; hi_s ], Some beat -> (
                  match (int_of_string_opt lo_s, int_of_string_opt hi_s) with
                  | Some lo, Some hi -> Some { worker; lo; hi; beat }
                  | _ -> None)
              | _ -> None)
          | _ -> None)
      | _ -> None)

(* tmp+rename so a reader never sees a torn lease; unique tmp name per
   process/domain like every other store write *)
let heartbeat cache ~sweep ~range ~worker ~lo ~hi =
  check_worker worker;
  let target = lease_path cache sweep range in
  let tmp =
    Printf.sprintf "%s.%d.%d" target (Unix.getpid ()) (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (body ~worker ~lo ~hi ~beat:(Unix.gettimeofday ())));
  Sys.rename tmp target

let release cache ~sweep ~range =
  try Sys.remove (lease_path cache sweep range) with Sys_error _ -> ()

let expired ~ttl ~now info = now -. info.beat > ttl

let steal cache ~sweep ~range ~lo ~hi ~worker ~ttl ~now =
  match read cache ~sweep ~range with
  | None ->
      (* holder vanished between our claim failure and now *)
      claim cache ~sweep ~range ~lo ~hi ~worker
  | Some info ->
      if not (expired ~ttl ~now info) then false
      else begin
        (* unlink the corpse, then race for the empty slot; O_EXCL
           elects one winner among concurrent stealers *)
        release cache ~sweep ~range;
        claim cache ~sweep ~range ~lo ~hi ~worker
      end

let mark_done cache ~sweep ~range ~worker =
  check_worker worker;
  mkdir_p (sweep_dir cache sweep);
  let path = done_path cache sweep range in
  match Unix.openfile path [ O_WRONLY; O_CREAT; O_EXCL ] 0o644 with
  | fd ->
      let s = worker ^ "\n" in
      let rec w off =
        if off < String.length s then
          w (off + Unix.write_substring fd s off (String.length s - off))
      in
      Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> w 0)
  | exception Unix.Unix_error (EEXIST, _, _) -> ()

let is_done cache ~sweep ~range = Sys.file_exists (done_path cache sweep range)

let clear_done cache ~sweep ~range =
  try Sys.remove (done_path cache sweep range) with Sys_error _ -> ()

let dones cache ~sweep =
  let dir = sweep_dir cache sweep in
  if not (Sys.file_exists dir) then 0
  else
    Array.fold_left
      (fun acc name ->
        if Filename.check_suffix name ".done" then acc + 1 else acc)
      0 (Sys.readdir dir)

let list cache ~sweep =
  let dir = sweep_dir cache sweep in
  if not (Sys.file_exists dir) then []
  else
    Array.to_list (Sys.readdir dir)
    |> List.filter_map (fun name ->
           if
             String.length name = 13
             && name.[0] = 'r'
             && Filename.check_suffix name ".lease"
           then
             match int_of_string_opt (String.sub name 1 6) with
             | Some range -> (
                 match read cache ~sweep ~range with
                 | Some info -> Some (range, info)
                 | None -> None)
             | None -> None
           else None)
    |> List.sort compare
