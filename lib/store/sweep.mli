(** Scenario execution through the store: memoized single runs and
    resumable fan-out sweeps.

    [exec] is {!Faultnet.Exec.run}: [Scenario.compile] plus a fresh
    {!Faultnet.Injector} per replica (salted by replica index, exactly
    as the fault CLIs do), for every protocol the scenario layer
    compiles. Because scenarios are pure data with a canonical
    encoding, the outcome of [exec] is a deterministic function of the
    scenario — which is what makes {!memo_run} sound: identical
    scenarios under an identical {!Key.code_version} return the stored
    outcome without simulating.

    {!sweep} fans scenarios over {!Parallel.Pool} with {e per-point}
    persistence: each point is stored the moment it finishes, so a
    killed sweep resumes from the completed points, and a warm rerun
    executes zero simulations. Results are in input order and
    byte-identical for any [jobs] value (pool order preservation +
    per-scenario determinism). *)

(** One scenario's results, tagged by model — re-exported from
    {!Simnet.Scenario.outcome} so store users and compile users share
    one type. *)
type outcome = Simnet.Scenario.outcome =
  | Bcn_results of Simnet.Runner.result array
      (** one per replica, in replica order *)
  | E2cm_result of Simnet.E2cm.result
  | Fera_result of Simnet.Fera.result
  | Multihop_result of Simnet.Multihop.result
  | Rcp_result of Simnet.Rcp.result

val exec : ?jobs:int -> Simnet.Scenario.t -> outcome
(** Run the scenario, uncached ({!Faultnet.Exec.run}). [jobs]
    parallelizes BCN replicas; single-run scenarios ignore it. *)

val memo_run :
  ?cache:Cache.t -> ?refresh:bool -> ?jobs:int -> Simnet.Scenario.t -> outcome
(** [exec] through the cache under {!Key.of_scenario}. Without
    [?cache] this is [exec]. [~refresh:true] (the CLIs' [--no-cache])
    skips the read, recomputes, and overwrites the stored entry. *)

val sweep :
  ?cache:Cache.t ->
  ?refresh:bool ->
  ?jobs:int ->
  ?on_progress:(done_:int -> total:int -> cached:int -> unit) ->
  Simnet.Scenario.t array ->
  outcome array
(** Memoized fan-out over a pool of [jobs] lanes (default
    {!Parallel.Pool.default_size}). With a cache, a {!Manifest} for the
    point-key list is saved before execution starts, and each finished
    point persists immediately. [on_progress] fires once per point
    (from worker domains — keep it cheap and thread-safe; [cached] is
    a snapshot of cache hits so far). *)

val resilience_memo : Cache.t -> Faultnet.Resilience.memo
(** Adapter making {!Faultnet.Resilience.bisect}/[sweep] persist their
    probe summaries here: key material strings hash through
    {!Key.of_material}, summaries marshal like any other entry. *)

val verdict_memo :
  Cache.t -> (string -> bool option) * (string -> bool -> unit)
(** [(lookup, save)] hooks persisting boolean verdicts keyed by
    material strings — the shape [Refine.Engine.memo] wants (that
    record lives above this library in the dependency order, so the
    adapter hands back the bare pair). *)
