let format_stamp = "dcecc-store v1\n"
let entry_magic = "dcecc1 "

type stats = { hits : int; misses : int; puts : int; evictions : int }

type t = {
  root : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  put_count : int Atomic.t;
  evictions : int Atomic.t;
  gc_collected : int Atomic.t;  (* objects collected by Gc.run via this handle *)
  index : Index.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let open_ ~dir =
  mkdir_p dir;
  let format_path = Filename.concat dir "format" in
  if Sys.file_exists format_path then begin
    let stamp = read_file format_path in
    if stamp <> format_stamp then
      failwith
        (Printf.sprintf
           "Store.Cache.open_: %s is not a dcecc store (format stamp %S)" dir
           stamp)
  end
  else begin
    (* an existing non-empty directory without a stamp is someone
       else's data — refuse rather than mix object files into it *)
    if Sys.readdir dir <> [||] then
      failwith
        (Printf.sprintf
           "Store.Cache.open_: %s exists, is not empty and has no store \
            format stamp"
           dir);
    write_file format_path format_stamp
  end;
  mkdir_p (Filename.concat dir "objects");
  mkdir_p (Filename.concat dir "manifests");
  mkdir_p (Filename.concat dir "tmp");
  {
    root = dir;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    put_count = Atomic.make 0;
    evictions = Atomic.make 0;
    gc_collected = Atomic.make 0;
    index = Index.open_ ~root:dir;
  }

let root c = c.root

let entry_path c key =
  let hex = Key.to_hex key in
  Filename.concat
    (Filename.concat (Filename.concat c.root "objects") (String.sub hex 0 2))
    hex

let mem c key = Sys.file_exists (entry_path c key)

(* unique within the store: pid for cross-process, domain id for pool
   workers sharing the process *)
let tmp_path c key =
  Filename.concat
    (Filename.concat c.root "tmp")
    (Printf.sprintf "%s.%d.%d" (Key.to_hex key) (Unix.getpid ())
       (Domain.self () :> int))

let put c key payload =
  let header = entry_magic ^ Key.sha256_hex payload ^ "\n" in
  let path = entry_path c key in
  mkdir_p (Filename.dirname path);
  let tmp = tmp_path c key in
  write_file tmp (header ^ payload);
  Sys.rename tmp path;
  Index.record_add c.index (Key.to_hex key)
    (String.length header + String.length payload);
  Atomic.incr c.put_count

let evict c key =
  (try Sys.remove (entry_path c key) with Sys_error _ -> ());
  Index.record_remove c.index (Key.to_hex key);
  Atomic.incr c.evictions

(* header is "dcecc1 " (7) + 64 hex + "\n" = 72 bytes *)
let header_len = 72

let find c key =
  let path = entry_path c key in
  if not (Sys.file_exists path) then begin
    Atomic.incr c.misses;
    None
  end
  else
    let raw = read_file path in
    let ok =
      String.length raw >= header_len
      && String.sub raw 0 (String.length entry_magic) = entry_magic
      && raw.[header_len - 1] = '\n'
    in
    if not ok then begin
      evict c key;
      Atomic.incr c.misses;
      None
    end
    else begin
      let recorded = String.sub raw (String.length entry_magic) 64 in
      let payload = String.sub raw header_len (String.length raw - header_len) in
      if Key.sha256_hex payload = recorded then begin
        Atomic.incr c.hits;
        Some payload
      end
      else begin
        evict c key;
        Atomic.incr c.misses;
        None
      end
    end

let find_value (type a) c key : a option =
  match find c key with
  | None -> None
  | Some payload -> (
      match (Marshal.from_string payload 0 : a) with
      | v -> Some v
      | exception _ ->
          (* hash-valid but undecodable: written by an incompatible
             runtime; treat as corruption *)
          evict c key;
          (* the find above counted a hit for bytes we cannot use *)
          Atomic.decr c.hits;
          Atomic.incr c.misses;
          None)

let store_value c key v = put c key (Marshal.to_string v [])

let memo (type a) c key (f : unit -> a) : a =
  match find_value c key with
  | Some v -> v
  | None ->
      let v = f () in
      let payload = Marshal.to_string v [] in
      put c key payload;
      (* return the parse of the stored bytes, not [v] itself: [v] may
         carry physical sharing with values outside itself (statically
         allocated float constants, shared sub-structures), which
         Marshal encodes and a later warm read would not reproduce.
         Normalizing through the stored representation makes cold and
         warm returns structurally identical, so anything downstream —
         including a whole-results-array Marshal — is byte-identical
         whether the cache was hot or cold. *)
      (Marshal.from_string payload 0 : a)

let stats c =
  {
    hits = Atomic.get c.hits;
    misses = Atomic.get c.misses;
    puts = Atomic.get c.put_count;
    evictions = Atomic.get c.evictions;
  }

let reset_stats c =
  Atomic.set c.hits 0;
  Atomic.set c.misses 0;
  Atomic.set c.put_count 0;
  Atomic.set c.evictions 0

let index c = c.index
let gc_collected c = Atomic.get c.gc_collected
let add_gc_collected c n = ignore (Atomic.fetch_and_add c.gc_collected n)

let objects c =
  Index.refresh c.index;
  Index.objects c.index

let bytes c =
  Index.refresh c.index;
  Index.bytes c.index

let publish_metrics c mx =
  let s = stats c in
  Telemetry.Metrics.add mx "store.hits" s.hits;
  Telemetry.Metrics.add mx "store.misses" s.misses;
  Telemetry.Metrics.add mx "store.puts" s.puts;
  Telemetry.Metrics.add mx "store.evictions" s.evictions;
  Telemetry.Metrics.add mx "store.gc_collected" (gc_collected c);
  (* size accounting through the index: O(records appended since the
     last refresh), not a directory walk *)
  Index.refresh c.index;
  Telemetry.Metrics.add mx "store.objects" (Index.objects c.index);
  Telemetry.Metrics.add mx "store.bytes" (Index.bytes c.index)

let entries c =
  let objects = Filename.concat c.root "objects" in
  if not (Sys.file_exists objects) then 0
  else
    Array.fold_left
      (fun acc sub ->
        let d = Filename.concat objects sub in
        if Sys.is_directory d then acc + Array.length (Sys.readdir d) else acc)
      0 (Sys.readdir objects)
