(** Fixed-size domain pool for deterministic data parallelism.

    The pool owns [size - 1] worker domains plus the calling domain, which
    participates in draining the task queue (so a pool of size [n] really
    applies [n]-way parallelism and [map] never deadlocks even if every
    worker is busy).

    Determinism guarantee: all combinators return results in the order of
    their input regardless of the pool size or scheduling, so any code
    whose tasks are themselves deterministic produces byte-identical
    output under [size = 1] and [size = n]. Tasks must not assume they
    run on any particular domain and must not share unsynchronized
    mutable state with each other.

    Sizing: [create ()] uses the [DCECC_JOBS] environment variable when
    set (clamped to at least 1), otherwise
    [Domain.recommended_domain_count ()]. A pool of size 1 spawns no
    domains at all and runs every combinator sequentially in the caller
    — the graceful fallback path, also forced by [DCECC_JOBS=1]. *)

type t

val default_size : unit -> int
(** [DCECC_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?size:int -> unit -> t
(** Spawn a pool of [size] (default {!default_size}) total lanes,
    i.e. [size - 1] worker domains. Raises [Invalid_argument] if
    [size < 1]. *)

val size : t -> int
(** Total parallelism of the pool (workers + caller). *)

type lane_stats = { lane : int; busy_s : float; tasks_run : int }
(** Wall-clock utilization of one lane. Lane 0 is the calling domain,
    lanes [1..size-1] the workers. *)

val lane_stats : t -> lane_stats array
(** Per-lane busy time and task counts, indexed by lane. Wall-clock
    measurements: they vary run to run and across [jobs] values, so they
    are operational telemetry for utilization reporting — keep them out
    of registries whose snapshots must be deterministic. Safe to call at
    any time (each lane writes only its own slot); a mid-flight read is
    a consistent per-lane snapshot. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent. The pool must not be used
    afterwards. *)

val with_pool : ?size:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val submit : t -> (unit -> unit) -> unit
(** Asynchronous fire-and-forget submission for long-lived pools: push
    one task and return immediately; a worker domain picks it up. The
    task must not raise (wrap it) and must arrange its own completion
    signalling. Raises [Invalid_argument] on a pool of size 1 (no worker
    domains — nothing would ever run the task) or after {!shutdown}.
    Tasks still queued at {!shutdown} are drained by the exiting
    workers before they join. *)

val pending : t -> int
(** Number of submitted-but-not-yet-started tasks in the queue — the
    scheduler's queue-depth gauge. A mid-flight snapshot: by the time
    the caller reads it a worker may already have popped a task. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], order-preserving. If one or more applications
    raise, the exception of the earliest input (by position) is re-raised
    in the caller with its backtrace, after all tasks have finished. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with one task per element; order-preserving,
    same exception policy as {!map}. *)

val parmap_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Like {!map_array} but shards the input into contiguous chunks
    (default: enough chunks for ~4 tasks per lane) so per-element
    scheduling overhead is amortized — the right shape for dense
    parameter-grid sweeps. Chunk boundaries depend only on the input
    length and [chunk], never on scheduling, so the result is
    deterministic and equal to [Array.map f arr]. *)

val map_reduce :
  t -> map:('a -> 'b) -> combine:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce pool ~map ~combine ~init xs] applies [map] in parallel
    and folds the results left-to-right in input order — deterministic
    even for non-commutative [combine]. *)
