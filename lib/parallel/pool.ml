type task = unit -> unit

type t = {
  size : int;
  mutable workers : unit Domain.t list;
  queue : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  (* per-lane wall-clock accounting: lane 0 is the caller, lanes
     1..size-1 the workers. Each lane only ever writes its own slot
     (word-sized stores, no tearing), so no lock is needed; readers get
     a racy-but-consistent-per-slot snapshot. *)
  lane_busy : float array;
  lane_tasks : int array;
}

type lane_stats = { lane : int; busy_s : float; tasks_run : int }

let default_size () =
  match Sys.getenv_opt "DCECC_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let try_pop pool =
  Mutex.lock pool.lock;
  let job =
    if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue)
  in
  Mutex.unlock pool.lock;
  job

let run_on_lane pool lane job =
  let t0 = Unix.gettimeofday () in
  (* tasks are wrapped and never raise; be defensive anyway *)
  (try job () with _ -> ());
  pool.lane_busy.(lane) <- pool.lane_busy.(lane) +. (Unix.gettimeofday () -. t0);
  pool.lane_tasks.(lane) <- pool.lane_tasks.(lane) + 1

(* Workers block on [nonempty]; the caller never blocks here — it drains
   with [try_pop] and then waits on its batch's completion latch. *)
let worker_loop pool lane () =
  let rec next () =
    Mutex.lock pool.lock;
    let rec await () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else begin
        Condition.wait pool.nonempty pool.lock;
        await ()
      end
    in
    let job = await () in
    Mutex.unlock pool.lock;
    match job with
    | Some job ->
        run_on_lane pool lane job;
        next ()
    | None -> ()
  in
  next ()

let create ?size () =
  let size = match size with Some s -> s | None -> default_size () in
  if size < 1 then invalid_arg "Parallel.Pool.create: size < 1";
  let pool =
    {
      size;
      workers = [];
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      lane_busy = Array.make size 0.;
      lane_tasks = Array.make size 0;
    }
  in
  pool.workers <-
    List.init (size - 1) (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let size pool = pool.size

let lane_stats pool =
  Array.init pool.size (fun i ->
      { lane = i; busy_s = pool.lane_busy.(i); tasks_run = pool.lane_tasks.(i) })

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?size f =
  let pool = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Fire-and-forget submission for long-lived pools (the serve daemon's
   scheduler). The caller does not help drain here — completion is the
   task's own business (it signals through whatever channel it was built
   with) — so the pool needs at least one worker domain to make
   progress. *)
let submit pool job =
  if pool.size < 2 then
    invalid_arg "Parallel.Pool.submit: pool has no worker domains";
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Parallel.Pool.submit: pool is shut down"
  end;
  Queue.push job pool.queue;
  Condition.signal pool.nonempty;
  Mutex.unlock pool.lock

let pending pool =
  Mutex.lock pool.lock;
  let n = Queue.length pool.queue in
  Mutex.unlock pool.lock;
  n

(* Run every task to completion. The caller submits, then helps drain the
   queue, then waits on a completion latch for tasks still in flight on
   worker domains. Tasks must not raise (callers wrap them). *)
let run_tasks pool (tasks : task array) =
  let n = Array.length tasks in
  if pool.size = 1 || n <= 1 then
    Array.iter (fun job -> run_on_lane pool 0 job) tasks
  else begin
    let remaining = Atomic.make n in
    let latch = Mutex.create () in
    let all_done = Condition.create () in
    let wrap job () =
      Fun.protect
        ~finally:(fun () ->
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock latch;
            Condition.broadcast all_done;
            Mutex.unlock latch
          end)
        job
    in
    Mutex.lock pool.lock;
    Array.iter (fun job -> Queue.push (wrap job) pool.queue) tasks;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    let rec help () =
      match try_pop pool with
      | Some job ->
          run_on_lane pool 0 job;
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock latch;
    while Atomic.get remaining > 0 do
      Condition.wait all_done latch
    done;
    Mutex.unlock latch
  end

(* Apply [f] to [n] inputs, storing per-slot results; re-raise the
   earliest failure (by input position) with its backtrace. *)
let run_indexed pool n (f : int -> 'b) : 'b array =
  let results :
      ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  let tasks =
    Array.init n (fun i () ->
        results.(i) <-
          Some
            (try Ok (f i)
             with e -> Error (e, Printexc.get_raw_backtrace ())))
  in
  run_tasks pool tasks;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    results

let map_array pool f arr =
  run_indexed pool (Array.length arr) (fun i -> f arr.(i))

let map pool f xs = Array.to_list (map_array pool f (Array.of_list xs))

let parmap_array ?chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Parallel.Pool.parmap_array: chunk < 1"
      | None -> Stdlib.max 1 (n / (pool.size * 4))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let pieces =
      run_indexed pool nchunks (fun c ->
          let lo = c * chunk in
          let hi = Stdlib.min n (lo + chunk) in
          Array.init (hi - lo) (fun j -> f arr.(lo + j)))
    in
    Array.concat (Array.to_list pieces)
  end

let map_reduce pool ~map:f ~combine ~init xs =
  List.fold_left combine init (map pool f xs)
