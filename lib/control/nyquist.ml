open Numerics

type curve = { ws : float array; res : float array; ims : float array }

(* A fill loop, not [Array.init]: without flambda the init closure
   returns each grid point boxed (two minor words per point — the bulk
   of the old locus' allocation), while a [float array] store from a
   local is unboxed. Same per-element expression, same bits. *)
let log_grid w_min w_max n =
  let l0 = log w_min and l1 = log w_max in
  let ws = Array.make n 0. in
  for i = 0 to n - 1 do
    ws.(i) <- exp (l0 +. ((l1 -. l0) *. float_of_int i /. float_of_int (n - 1)))
  done;
  ws

let locus ?(w_min = 1e-4) ?(w_max = 1e6) ?(n = 4000) h =
  if w_min <= 0. || w_max <= w_min then invalid_arg "Nyquist.locus: bad range";
  let ws = log_grid w_min w_max n in
  let res = Array.make n 0. and ims = Array.make n 0. in
  let num = Tf.num h and den = Tf.den h in
  let num_top = Array.length num - 1 and den_top = Array.length den - 1 in
  (* [Tf.response]'s complex Horner, textually inlined at [s = (0., w)]
     — including the [*. 0.] terms, so the curve is bit-identical. The
     accumulators live in a 2-slot float array: float-array stores stay
     unboxed, while the original [ref float]s box on every store (two
     boxes per coefficient per point), which is where the old locus'
     minor words went. *)
  let acc = [| 0.; 0. |] in
  for i = 0 to n - 1 do
    let w = ws.(i) in
    acc.(0) <- 0.;
    acc.(1) <- 0.;
    for j = num_top downto 0 do
      let ar = acc.(0) and ai = acc.(1) in
      acc.(0) <- (ar *. 0.) -. (ai *. w) +. num.(j);
      acc.(1) <- (ar *. w) +. (ai *. 0.)
    done;
    let nr = acc.(0) and ni = acc.(1) in
    acc.(0) <- 0.;
    acc.(1) <- 0.;
    for j = den_top downto 0 do
      let ar = acc.(0) and ai = acc.(1) in
      acc.(0) <- (ar *. 0.) -. (ai *. w) +. den.(j);
      acc.(1) <- (ar *. w) +. (ai *. 0.)
    done;
    let dr = acc.(0) and di = acc.(1) in
    let d2 = (dr *. dr) +. (di *. di) in
    res.(i) <- ((nr *. dr) +. (ni *. di)) /. d2;
    ims.(i) <- ((ni *. dr) -. (nr *. di)) /. d2
  done;
  { ws; res; ims }

(* Multiplicity of the pole at the origin = index of the lowest-order
   non-zero denominator coefficient. *)
let origin_pole_multiplicity h =
  let den = Tf.den h in
  let rec go i =
    if i >= Array.length den then 0 else if den.(i) <> 0. then i else go (i + 1)
  in
  go 0

let rhp_pole_count h =
  Tf.poles h
  |> List.filter (function
       | Poly.Real r -> r > 1e-9
       | Poly.Complex { re; _ } -> re > 1e-9)
  |> List.length

(* Unwrapped winding angle of L(j·w) + 1 along the full Nyquist contour:
   w from −w_max to −w_min (conjugate symmetry), a clockwise arc of m·π for
   the indentation around an origin pole of multiplicity m, then w from
   w_min to w_max. The closure at infinity contributes nothing for (strictly)
   proper L. *)
let winding ?(w_min = 1e-4) ?(w_max = 1e6) ?(n = 4000) h =
  let c = locus ~w_min ~w_max ~n h in
  let len = Array.length c.ws in
  let two_pi = 2. *. Float.pi in
  (* The unwrapped angle lives in a 1-slot float array rather than a
     [ref float] (which would box per store), and the angle/unwrap
     helpers are inlined into the sweeps (a closure call boxes its float
     arguments) — same expressions, same bits, zero allocation per
     point. [angle re im = atan2 im (re +. 1.)]. *)
  let th = [| 0. |] in
  (* negative frequencies: w from −w_max up to −w_min, i.e. traverse the
     conjugate locus from index n−1 down to 0 *)
  th.(0) <- atan2 (-.c.ims.(len - 1)) (c.res.(len - 1) +. 1.);
  let start = th.(0) in
  for i = len - 2 downto 0 do
    let a = atan2 (-.c.ims.(i)) (c.res.(i) +. 1.) in
    let prev = th.(0) in
    let d = Float.rem (a -. Float.rem prev two_pi) two_pi in
    let d =
      if d > Float.pi then d -. two_pi
      else if d < -.Float.pi then d +. two_pi
      else d
    in
    th.(0) <- prev +. d
  done;
  (* indentation around the origin poles: clockwise sweep of m·π *)
  let m = origin_pole_multiplicity h in
  th.(0) <- th.(0) -. (float_of_int m *. Float.pi);
  (* re-anchor the next segment's first point to the current unwrapped
     value: w from w_min to w_max *)
  for i = 0 to len - 1 do
    let a = atan2 c.ims.(i) (c.res.(i) +. 1.) in
    let prev = th.(0) in
    let d = Float.rem (a -. Float.rem prev two_pi) two_pi in
    let d =
      if d > Float.pi then d -. two_pi
      else if d < -.Float.pi then d +. two_pi
      else d
    in
    th.(0) <- prev +. d
  done;
  (th.(0) -. start) /. (2. *. Float.pi)

let encirclements ?w_min ?w_max ?n h =
  let w = winding ?w_min ?w_max ?n h in
  (* clockwise encirclements = −(counter-clockwise winding number) *)
  -.w |> Float.round |> int_of_float

let closed_loop_stable ?w_min ?w_max ?n h =
  encirclements ?w_min ?w_max ?n h + rhp_pole_count h = 0

let gain_margin h =
  let c = locus h in
  let n = Array.length c.ws in
  let found = ref None in
  (* phase-crossover: Im crosses 0 with Re < −eps (ignore near the origin
     of the L-plane) *)
  for i = 0 to n - 2 do
    if !found = None then begin
      let im0 = c.ims.(i) and im1 = c.ims.(i + 1) in
      if im0 *. im1 <= 0. && im0 <> im1 && c.res.(i) < -1e-9 then begin
        let s = im0 /. (im0 -. im1) in
        let re = c.res.(i) +. (s *. (c.res.(i + 1) -. c.res.(i))) in
        if re < 0. then found := Some (1. /. Float.abs re)
      end
    end
  done;
  !found

let phase_margin h =
  let c = locus h in
  let n = Array.length c.ws in
  let mag i = sqrt ((c.res.(i) *. c.res.(i)) +. (c.ims.(i) *. c.ims.(i))) in
  let found = ref None in
  for i = 0 to n - 2 do
    if !found = None then begin
      let m0 = mag i -. 1. and m1 = mag (i + 1) -. 1. in
      if m0 *. m1 <= 0. && m0 <> m1 then begin
        let s = m0 /. (m0 -. m1) in
        let re = c.res.(i) +. (s *. (c.res.(i + 1) -. c.res.(i))) in
        let im = c.ims.(i) +. (s *. (c.ims.(i + 1) -. c.ims.(i))) in
        let phase_deg = atan2 im re *. 180. /. Float.pi in
        found := Some (180. +. phase_deg)
      end
    end
  done;
  !found
