(** Initial-value-problem solvers for systems of ordinary differential
    equations, with event (zero-crossing) detection.

    The BCN fluid model (paper eqns (4)/(7), normalized form (8)) is a
    *switched* ODE: the right-hand side changes across the switching line
    [sigma = 0]. Integrating it accurately requires localizing the crossing
    inside a step, which the [events] machinery below provides: an event is
    a scalar guard function whose sign change is bisected to a time
    tolerance, the state at the crossing is recorded, and integration can
    optionally terminate there.

    State vectors are [float array]s of arbitrary dimension. Fields must
    not retain or mutate the array they are given. *)

type field = float -> float array -> float array
(** [f t y] returns [dy/dt]; must allocate (or at least not alias) its
    result. *)

(** Fixed-step explicit methods. *)
type method_ =
  | Euler  (** order 1 *)
  | Heun  (** order 2 *)
  | Rk4  (** classic order 4 *)

(** Direction of the guard's sign change that fires an event. *)
type direction = Up | Down | Both

type event = {
  ev_name : string;
  guard : float -> float array -> float;
  dir : direction;
  terminal : bool;  (** stop integration at the event *)
}

type occurrence = { oc_name : string; oc_t : float; oc_y : float array }

type monitor = {
  on_step : float -> float -> unit;
      (** [on_step t h] after each accepted step ending at time [t] with
          step size [h]. *)
  on_reject : float -> float -> unit;
      (** [on_reject t h] after each rejected trial step of size [h]
          attempted from time [t] (adaptive methods only). *)
}
(** Telemetry hook for the solvers. Numerics sits below [lib/telemetry]
    in the dependency stack, so the hook is a plain callback record;
    [Telemetry.Probe.ode_monitor] adapts a probe into one. Passing no
    monitor costs one pattern match per step and allocates nothing. *)

type solution = {
  ts : float array;  (** accepted step times, [ts.(0) = t0] *)
  ys : float array array;  (** [ys.(i)] is the state at [ts.(i)] *)
  occs : occurrence list;  (** events fired, in chronological order *)
  terminated : occurrence option;
      (** the terminal event that stopped integration, if any *)
  n_steps : int;  (** accepted steps *)
  n_rejected : int;  (** rejected steps (adaptive methods only) *)
}

val state_at : solution -> float -> float array
(** [state_at sol t] linearly interpolates the stored trajectory at time
    [t]. Clamps outside the stored range. *)

val step : method_ -> field -> float -> float array -> float -> float array
(** [step m f t y h] advances one step of size [h]. *)

(** {1 Allocation-free stepping}

    The [step] above allocates the stage arrays [k1..k4] and the result
    on every call, which dominates the cost of long fixed-step
    integrations. The in-place API below reuses a preallocated
    {!workspace} instead; [step_into] is bit-for-bit equivalent to
    [step] (same expressions, same evaluation order — the test suite
    asserts exact equality). *)

type field_into = float -> float array -> float array -> unit
(** [f t y dst] writes [dy/dt] into [dst] instead of allocating. [dst]
    never aliases [y]. *)

type field_auto = float array -> float array -> unit
(** Autonomous right-hand side: [f y dst] writes [dy/dt] into [dst].
    Because no [float] crosses the closure boundary (OCaml boxes float
    arguments of indirect calls), stepping an autonomous field performs
    {e zero} minor-heap allocation per step — the BCN systems are all
    autonomous, so this is the hot-loop form. *)

type workspace
(** Preallocated stage buffers ([k1..k4] and a stage-state scratch) for
    one in-place integration; create once, reuse across steps. A
    workspace is not safe to share between domains — create one per
    domain. *)

val workspace : int -> workspace
(** [workspace dim] allocates buffers for states of dimension [dim] (or
    smaller). *)

val workspace_dim : workspace -> int

val step_into :
  workspace -> method_ -> field_into -> float -> float array -> float ->
  float array -> unit
(** [step_into ws m f t y h dst] advances one step of size [h], writing
    the new state into [dst]. [dst == y] is allowed (true in-place
    update). Bit-for-bit equal to [step m _ t y h] for the equivalent
    field. Raises [Invalid_argument] if the state is larger than the
    workspace. Remaining allocation: only the boxing of the stage times
    passed to [f] (at most 4 small boxes per step); use
    {!step_auto_into} for the zero-allocation path. *)

val step_auto_into :
  workspace -> method_ -> field_auto -> float array -> float ->
  float array -> unit
(** [step_auto_into ws m f y h dst] — like {!step_into} for autonomous
    fields, with zero minor-heap allocation per step (asserted by the
    test suite via [Gc.minor_words]). *)

val field_into_of_field : field -> field_into
(** Adapter (copies the allocated derivative into [dst]; for porting,
    not for speed). *)

val field_into_of_auto : field_auto -> field_into

val solve_fixed_into :
  ?method_:method_ ->
  ?events:event list ->
  ?monitor:monitor ->
  h:float ->
  t_end:float ->
  field_into ->
  t0:float ->
  y0:float array ->
  solution
(** {!solve_fixed} over an in-place field: identical results (bit for
    bit) but the inner loop allocates only the recorded trajectory
    point per accepted step, not the RK stages. *)

val solve_fixed :
  ?method_:method_ ->
  ?events:event list ->
  ?monitor:monitor ->
  h:float ->
  t_end:float ->
  field ->
  t0:float ->
  y0:float array ->
  solution
(** Fixed-step integration from [t0] to [t_end] with step [h] (the last
    step is shortened to land exactly on [t_end]). Guards are evaluated at
    step boundaries; a sign change is refined by bisection on the step
    fraction to a relative time tolerance of 1e-12. *)

val solve_adaptive :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?h_min:float ->
  ?h_max:float ->
  ?max_steps:int ->
  ?events:event list ->
  ?monitor:monitor ->
  t_end:float ->
  field ->
  t0:float ->
  y0:float array ->
  solution
(** Adaptive Dormand–Prince 5(4) integration with PI-style step control.
    Defaults: [rtol=1e-8], [atol=1e-10], [max_steps=2_000_000].
    Raises [Failure] if the step size underflows [h_min] or the step budget
    is exhausted before [t_end]. *)

val solve_adaptive_into :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?h_min:float ->
  ?h_max:float ->
  ?max_steps:int ->
  ?events:event list ->
  ?monitor:monitor ->
  t_end:float ->
  field_into ->
  t0:float ->
  y0:float array ->
  solution
(** {!solve_adaptive} over an in-place field: bit-for-bit identical
    results (same step-control decisions, same field-evaluation sequence
    — the trial step for the error estimate and the accepted step are
    both evaluated, exactly as in {!solve_adaptive}), but the RK stages
    live in a reused workspace and event localization reuses one
    scratch state. Per accepted step only the recorded trajectory point
    is allocated. *)

val solve_adaptive_auto_into :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?h_min:float ->
  ?h_max:float ->
  ?max_steps:int ->
  ?events:event list ->
  ?monitor:monitor ->
  t_end:float ->
  field_auto ->
  t0:float ->
  y0:float array ->
  solution
(** {!solve_adaptive_into} for autonomous fields — the hot-loop form for
    the (autonomous) BCN systems. Bit-for-bit identical solutions, but
    no float crosses a call boundary on the per-step path: the stepper
    reads its step size from a workspace mailbox and the field takes no
    time argument, so per accepted step only the recorded trajectory
    point is allocated (plus a handful of words for guard evaluations
    when events are armed). *)

(** {1 Streaming adaptive scan}

    The recording driver above allocates one trajectory point per
    accepted step. When the consumer only folds over the samples
    (transient metrics, verdict classification), even that is waste:
    {!solve_adaptive_auto_scan} runs the identical controller and event
    machinery but hands each accepted sample to a callback through one
    reused buffer and then forgets it. *)

type guard_spec = {
  gs_names : string array;
  gs_dirs : direction array;
  gs_terminal : bool array;
  gs_eval : float array -> float array -> unit;
      (** [gs_eval pt dst] evaluates every guard at the packed sample
          [pt = [|t; y_0; ...; y_{dim-1}|]], writing guard [e]'s value
          to [dst.(e)]. Packing keeps floats out of call boundaries so
          hand-written guard sets stay allocation-free. *)
}
(** A closure-free rendering of an {!event} list: parallel arrays of
    names/directions/terminal flags plus one bulk guard evaluator. *)

type scan_result = {
  sc_occs : occurrence list;
      (** in chronological order; empty under [record_occs:false] *)
  sc_terminated : occurrence option;
  sc_steps : int;
  sc_rejected : int;
}

val guards_of_events : dim:int -> event list -> guard_spec
(** Generic adapter from an {!event} list (guards evaluate exactly as
    the recording driver would). Costs a boxed time and a state blit
    per bulk evaluation — hand-build a {!guard_spec} for zero-allocation
    scans. *)

val solve_adaptive_auto_scan :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?h_min:float ->
  ?h_max:float ->
  ?max_steps:int ->
  ?guards:guard_spec ->
  ?monitor:monitor ->
  ?record_occs:bool ->
  ?on_event:(occurrence -> unit) ->
  ?on_event_raw:(int -> float array -> unit) ->
  on_point:(float array -> unit) ->
  t_end:float ->
  field_auto ->
  t0:float ->
  y0:float array ->
  scan_result
(** Streaming {!solve_adaptive_auto_into}: same controller expressions,
    same step sequence, same event localization, so the samples handed
    to [on_point] are bit-for-bit the points the recording driver would
    have stored (initial state, each accepted step, and on termination
    the event state last). [on_point] receives the one reused packed
    buffer [[|t; y...|]] — copy it to keep it. [on_event] fires as each
    occurrence is recorded, in the same order as {!solution}[.occs].
    Steady-state allocation is zero for a closure-free [guards]: the
    only per-run allocations are the occurrence records themselves —
    and those too can be switched off. [record_occs:false] leaves
    [sc_occs] empty; [on_event_raw] is the matching allocation-free
    event stream: it receives the guard's {e index} into
    [gs_names]/[gs_dirs] and the event state through the same borrowed
    packed buffer as [on_point] (copy to keep), firing just before
    [on_event] for each occurrence. With [record_occs:false], no
    [on_event], and no terminal guard fired, a scan allocates no
    occurrence records at all. *)

type dopri_workspace
(** Preallocated stage buffers for {!dopri5_into}; create once per
    integration (not domain-safe to share). *)

val dopri_workspace : int -> dopri_workspace
(** [dopri_workspace dim] sizes the buffers for states of dimension
    [dim]. *)

val dopri5_into :
  dopri_workspace ->
  field_into ->
  float ->
  float array ->
  float ->
  float array ->
  float array ->
  unit
(** [dopri5_into ws f t y h dst err] — one Dormand–Prince 5(4) step
    written into [dst], with the embedded error estimate written into
    [err.(0)] (a 1-element accumulator; a [ref float] would box on every
    store). Bit-for-bit equal to the allocating step inside
    {!solve_adaptive}. [dst] must not alias [y]. *)

val dopri5_auto_into :
  dopri_workspace ->
  field_auto ->
  float array ->
  float ->
  float array ->
  float array ->
  unit
(** [dopri5_auto_into ws f y h dst err] — {!dopri5_into} for autonomous
    fields: same stage arithmetic bit for bit, no stage times
    materialized. [dst] must not alias [y]. *)

(** {1 Event machinery for external drivers}

    Exposed so batched front integrators ({!Phaseplane.Front}-style
    lock-step drivers living outside this module) can reproduce the
    driver's event semantics exactly. *)

val fires : direction -> float -> float -> bool
(** [fires dir g_prev g_next] — does a guard moving from [g_prev] to
    [g_next] across one accepted step fire an event of direction [dir]?
    (A guard exactly at [0.] before the step never fires.) *)

val localize_into :
  (float -> float array -> float -> float array -> unit) ->
  event ->
  float ->
  float array ->
  float ->
  float array ->
  float * float array
(** [localize_into single_into ev t y h scratch] bisects the event time
    inside the accepted step [t, t+h] starting from [y], evaluating
    intermediate states with [single_into] into [scratch]
    (allocation-free); returns [(t_event, y_event)] with [y_event]
    freshly allocated. Bit-identical to the driver's internal
    localization when [single_into] writes the bits the driver's step
    function returns. *)

(** {1 Batched structure-of-arrays stepping}

    A front of [n] independent planar (2-D) states advanced in
    lock-step: one contiguous [float array] lane per coordinate for the
    state, the four RK stages and the scratch sweeps, so each stage is
    a single pass over unboxed memory and the right-hand side is one
    sweep over all lanes instead of [n] closure calls. Per-lane
    arithmetic mirrors {!step_into} expression for expression, so
    advancing lane [i] is bit-for-bit identical to advancing
    [[|xs.(i); ys.(i)|]] with the scalar stepper. Used by
    [Phaseplane.Front] and the strong-stability basin raster. *)
module Batch : sig
  type t = {
    n : int;  (** number of lanes *)
    xs : float array;  (** state, first coordinate, one slot per lane *)
    ys : float array;  (** state, second coordinate *)
    k1x : float array;
    k1y : float array;
    k2x : float array;
    k2y : float array;
    k3x : float array;
    k3y : float array;
    k4x : float array;
    k4y : float array;
    tmpx : float array;  (** stage-state scratch *)
    tmpy : float array;
    sg : float array;  (** sweep scratch: switching-function values *)
    sa : float array;  (** sweep scratch: one branch of a switched RHS *)
    sb : float array;  (** sweep scratch: the other branch *)
    active : Bytes.t;
        (** per-lane flag; ['\000'] = frozen. The stepper never writes
            an inactive lane — clear the flag the moment a lane's
            verdict is decided and its state stays at the decision
            point while the rest of the front keeps going. *)
    mutable h : float;  (** step size; set with {!set_h} *)
  }

  type rhs = t -> float array -> float array -> float array -> float array -> unit
  (** [f b srcx srcy dstx dsty] writes the derivative of every lane in
      one sweep. [src] never aliases [dst]; sweeps may compute (ignored)
      garbage for inactive lanes. The scratch lanes [sg]/[sa]/[sb] are
      free for the sweep's own use (switching masks, branch values). *)

  val create : int -> t
  (** [create n] — a front of [n] lanes, all active, [h = 0.]. *)

  val lanes : t -> int

  val set_h : t -> float -> unit
  (** Store the step size. A separate (one-time) store rather than a
      per-call [float] argument: a float crossing a non-inlined call
      boundary is boxed, and hoisting it keeps {!step} allocation-free. *)

  val is_active : t -> int -> bool
  val set_active : t -> int -> bool -> unit
  val active_count : t -> int

  val select :
    t ->
    mask:float array ->
    pos:float array ->
    neg:float array ->
    dst:float array ->
    unit
  (** Per-lane select on [mask.(i) >= 0.] — the σ-switch of the paper's
      variable-structure systems applied as its own sweep after both
      branch sweeps. Kept as a comparison (not an arithmetic blend,
      which would break bit-identity at [-0.0]). *)

  val step_rk4 : t -> rhs -> unit
  (** Advance every active lane one RK4 step of size [h] in place.
      Zero minor-heap allocation. *)

  val step : t -> method_ -> rhs -> unit
  (** Method-dispatching variant of {!step_rk4} (Euler / Heun / RK4). *)
end

val rkf45_step :
  field -> float -> float array -> float -> float array * float
(** One Fehlberg 4(5) step: returns the 5th-order solution and the
    embedded error estimate (max-norm of the 4th/5th order difference).
    Exposed for the solver-ablation benchmark. *)

val convergence_order :
  method_ -> field -> t0:float -> y0:float array -> t_end:float ->
  exact:(float -> float array) -> float
(** Empirical convergence order of a fixed-step method, estimated from the
    error ratio between step sizes [h] and [h/2]. Used by the test suite. *)
