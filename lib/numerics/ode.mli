(** Initial-value-problem solvers for systems of ordinary differential
    equations, with event (zero-crossing) detection.

    The BCN fluid model (paper eqns (4)/(7), normalized form (8)) is a
    *switched* ODE: the right-hand side changes across the switching line
    [sigma = 0]. Integrating it accurately requires localizing the crossing
    inside a step, which the [events] machinery below provides: an event is
    a scalar guard function whose sign change is bisected to a time
    tolerance, the state at the crossing is recorded, and integration can
    optionally terminate there.

    State vectors are [float array]s of arbitrary dimension. Fields must
    not retain or mutate the array they are given. *)

type field = float -> float array -> float array
(** [f t y] returns [dy/dt]; must allocate (or at least not alias) its
    result. *)

(** Fixed-step explicit methods. *)
type method_ =
  | Euler  (** order 1 *)
  | Heun  (** order 2 *)
  | Rk4  (** classic order 4 *)

(** Direction of the guard's sign change that fires an event. *)
type direction = Up | Down | Both

type event = {
  ev_name : string;
  guard : float -> float array -> float;
  dir : direction;
  terminal : bool;  (** stop integration at the event *)
}

type occurrence = { oc_name : string; oc_t : float; oc_y : float array }

type monitor = {
  on_step : float -> float -> unit;
      (** [on_step t h] after each accepted step ending at time [t] with
          step size [h]. *)
  on_reject : float -> float -> unit;
      (** [on_reject t h] after each rejected trial step of size [h]
          attempted from time [t] (adaptive methods only). *)
}
(** Telemetry hook for the solvers. Numerics sits below [lib/telemetry]
    in the dependency stack, so the hook is a plain callback record;
    [Telemetry.Probe.ode_monitor] adapts a probe into one. Passing no
    monitor costs one pattern match per step and allocates nothing. *)

type solution = {
  ts : float array;  (** accepted step times, [ts.(0) = t0] *)
  ys : float array array;  (** [ys.(i)] is the state at [ts.(i)] *)
  occs : occurrence list;  (** events fired, in chronological order *)
  terminated : occurrence option;
      (** the terminal event that stopped integration, if any *)
  n_steps : int;  (** accepted steps *)
  n_rejected : int;  (** rejected steps (adaptive methods only) *)
}

val state_at : solution -> float -> float array
(** [state_at sol t] linearly interpolates the stored trajectory at time
    [t]. Clamps outside the stored range. *)

val step : method_ -> field -> float -> float array -> float -> float array
(** [step m f t y h] advances one step of size [h]. *)

(** {1 Allocation-free stepping}

    The [step] above allocates the stage arrays [k1..k4] and the result
    on every call, which dominates the cost of long fixed-step
    integrations. The in-place API below reuses a preallocated
    {!workspace} instead; [step_into] is bit-for-bit equivalent to
    [step] (same expressions, same evaluation order — the test suite
    asserts exact equality). *)

type field_into = float -> float array -> float array -> unit
(** [f t y dst] writes [dy/dt] into [dst] instead of allocating. [dst]
    never aliases [y]. *)

type field_auto = float array -> float array -> unit
(** Autonomous right-hand side: [f y dst] writes [dy/dt] into [dst].
    Because no [float] crosses the closure boundary (OCaml boxes float
    arguments of indirect calls), stepping an autonomous field performs
    {e zero} minor-heap allocation per step — the BCN systems are all
    autonomous, so this is the hot-loop form. *)

type workspace
(** Preallocated stage buffers ([k1..k4] and a stage-state scratch) for
    one in-place integration; create once, reuse across steps. A
    workspace is not safe to share between domains — create one per
    domain. *)

val workspace : int -> workspace
(** [workspace dim] allocates buffers for states of dimension [dim] (or
    smaller). *)

val workspace_dim : workspace -> int

val step_into :
  workspace -> method_ -> field_into -> float -> float array -> float ->
  float array -> unit
(** [step_into ws m f t y h dst] advances one step of size [h], writing
    the new state into [dst]. [dst == y] is allowed (true in-place
    update). Bit-for-bit equal to [step m _ t y h] for the equivalent
    field. Raises [Invalid_argument] if the state is larger than the
    workspace. Remaining allocation: only the boxing of the stage times
    passed to [f] (at most 4 small boxes per step); use
    {!step_auto_into} for the zero-allocation path. *)

val step_auto_into :
  workspace -> method_ -> field_auto -> float array -> float ->
  float array -> unit
(** [step_auto_into ws m f y h dst] — like {!step_into} for autonomous
    fields, with zero minor-heap allocation per step (asserted by the
    test suite via [Gc.minor_words]). *)

val field_into_of_field : field -> field_into
(** Adapter (copies the allocated derivative into [dst]; for porting,
    not for speed). *)

val field_into_of_auto : field_auto -> field_into

val solve_fixed_into :
  ?method_:method_ ->
  ?events:event list ->
  ?monitor:monitor ->
  h:float ->
  t_end:float ->
  field_into ->
  t0:float ->
  y0:float array ->
  solution
(** {!solve_fixed} over an in-place field: identical results (bit for
    bit) but the inner loop allocates only the recorded trajectory
    point per accepted step, not the RK stages. *)

val solve_fixed :
  ?method_:method_ ->
  ?events:event list ->
  ?monitor:monitor ->
  h:float ->
  t_end:float ->
  field ->
  t0:float ->
  y0:float array ->
  solution
(** Fixed-step integration from [t0] to [t_end] with step [h] (the last
    step is shortened to land exactly on [t_end]). Guards are evaluated at
    step boundaries; a sign change is refined by bisection on the step
    fraction to a relative time tolerance of 1e-12. *)

val solve_adaptive :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?h_min:float ->
  ?h_max:float ->
  ?max_steps:int ->
  ?events:event list ->
  ?monitor:monitor ->
  t_end:float ->
  field ->
  t0:float ->
  y0:float array ->
  solution
(** Adaptive Dormand–Prince 5(4) integration with PI-style step control.
    Defaults: [rtol=1e-8], [atol=1e-10], [max_steps=2_000_000].
    Raises [Failure] if the step size underflows [h_min] or the step budget
    is exhausted before [t_end]. *)

val rkf45_step :
  field -> float -> float array -> float -> float array * float
(** One Fehlberg 4(5) step: returns the 5th-order solution and the
    embedded error estimate (max-norm of the 4th/5th order difference).
    Exposed for the solver-ablation benchmark. *)

val convergence_order :
  method_ -> field -> t0:float -> y0:float array -> t_end:float ->
  exact:(float -> float array) -> float
(** Empirical convergence order of a fixed-step method, estimated from the
    error ratio between step sizes [h] and [h/2]. Used by the test suite. *)
