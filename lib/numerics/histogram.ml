type t = {
  lo : float;
  hi : float;
  bins : float array;
  mutable under : float;
  mutable over : float;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  if bins < 1 then invalid_arg "Histogram.create: bins < 1";
  { lo; hi; bins = Array.make bins 0.; under = 0.; over = 0. }

let[@inline] add_weighted h v w =
  if w < 0. then invalid_arg "Histogram.add_weighted: negative weight";
  if v < h.lo then h.under <- h.under +. w
  else if v >= h.hi then h.over <- h.over +. w
  else begin
    let n = Array.length h.bins in
    let idx =
      int_of_float ((v -. h.lo) /. (h.hi -. h.lo) *. float_of_int n)
    in
    let idx = Stdlib.min (n - 1) (Stdlib.max 0 idx) in
    h.bins.(idx) <- h.bins.(idx) +. w
  end

let[@inline] add h v = add_weighted h v 1.

let count h = Array.fold_left ( +. ) (h.under +. h.over) h.bins
let underflow h = h.under
let overflow h = h.over
let bin_count h = Array.length h.bins

let bin_edges h i =
  let n = Array.length h.bins in
  if i < 0 || i >= n then invalid_arg "Histogram.bin_edges: out of range";
  let w = (h.hi -. h.lo) /. float_of_int n in
  (h.lo +. (float_of_int i *. w), h.lo +. (float_of_int (i + 1) *. w))

let bin_mass h i =
  if i < 0 || i >= Array.length h.bins then
    invalid_arg "Histogram.bin_mass: out of range";
  h.bins.(i)

let mean h =
  let total = Array.fold_left ( +. ) 0. h.bins in
  if total = 0. then nan
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun i m ->
        let a, b = bin_edges h i in
        acc := !acc +. (m *. (a +. b) /. 2.))
      h.bins;
    !acc /. total
  end

let quantile h p =
  if p < 0. || p > 1. then invalid_arg "Histogram.quantile: p out of range";
  let total = count h in
  if total = 0. then invalid_arg "Histogram.quantile: empty histogram";
  let target = p *. total in
  if target <= h.under then h.lo
  else begin
    let acc = ref h.under in
    let result = ref h.hi in
    (try
       Array.iteri
         (fun i m ->
           if !acc +. m >= target then begin
             let a, b = bin_edges h i in
             let frac = if m = 0. then 0. else (target -. !acc) /. m in
             result := a +. (frac *. (b -. a));
             raise Exit
           end
           else acc := !acc +. m)
         h.bins
     with Exit -> ());
    !result
  end

let to_series h =
  let n = Array.length h.bins in
  let ts =
    Array.init n (fun i ->
        let a, b = bin_edges h i in
        (a +. b) /. 2.)
  in
  Series.make ts (Array.copy h.bins)

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || Array.length a.bins <> Array.length b.bins
  then invalid_arg "Histogram.merge: geometry mismatch";
  {
    lo = a.lo;
    hi = a.hi;
    bins = Array.init (Array.length a.bins) (fun i -> a.bins.(i) +. b.bins.(i));
    under = a.under +. b.under;
    over = a.over +. b.over;
  }

let copy h =
  {
    lo = h.lo;
    hi = h.hi;
    bins = Array.copy h.bins;
    under = h.under;
    over = h.over;
  }

let reset h =
  Array.fill h.bins 0 (Array.length h.bins) 0.;
  h.under <- 0.;
  h.over <- 0.
