type field = float -> float array -> float array
type method_ = Euler | Heun | Rk4
type direction = Up | Down | Both

type event = {
  ev_name : string;
  guard : float -> float array -> float;
  dir : direction;
  terminal : bool;
}

type occurrence = { oc_name : string; oc_t : float; oc_y : float array }

(* Step monitor: a telemetry hook invoked on every accepted / rejected
   step. Kept as a plain callback record (rather than depending on
   lib/telemetry, which sits above numerics) so the solvers stay at the
   bottom of the dependency stack; Telemetry.Probe.ode_monitor adapts a
   probe into this shape. The default (no monitor) costs one pattern
   match per step and allocates nothing. *)
type monitor = {
  on_step : float -> float -> unit;  (* t_end_of_step, h_accepted *)
  on_reject : float -> float -> unit;  (* t, h_rejected *)
}

type solution = {
  ts : float array;
  ys : float array array;
  occs : occurrence list;
  terminated : occurrence option;
  n_steps : int;
  n_rejected : int;
}

let axpy out a x y =
  (* out.(i) = y.(i) + a * x.(i) *)
  for i = 0 to Array.length y - 1 do
    out.(i) <- y.(i) +. (a *. x.(i))
  done

(* --- in-place fast path --------------------------------------------------- *)

type field_into = float -> float array -> float array -> unit
type field_auto = float array -> float array -> unit

type workspace = {
  wk1 : float array;
  wk2 : float array;
  wk3 : float array;
  wk4 : float array;
  wtmp : float array;
}

let workspace dim =
  if dim < 1 then invalid_arg "Ode.workspace: dim < 1";
  {
    wk1 = Array.make dim 0.;
    wk2 = Array.make dim 0.;
    wk3 = Array.make dim 0.;
    wk4 = Array.make dim 0.;
    wtmp = Array.make dim 0.;
  }

let workspace_dim ws = Array.length ws.wk1

let field_into_of_field (f : field) : field_into =
 fun t y dst ->
  let v = f t y in
  Array.blit v 0 dst 0 (Array.length dst)

let field_into_of_auto (f : field_auto) : field_into = fun _t y dst -> f y dst

(* The arithmetic below mirrors [step] expression-for-expression so the
   results are bit-for-bit identical (floating point is deterministic);
   the equivalence is locked down by the test suite. The stage loops are
   written out inline (rather than calling [axpy]) because a non-inlined
   call with a float argument boxes it — the only remaining per-step
   allocation on this path is the stage-time boxing at the [field_into]
   closure calls, and [step_auto_into] eliminates even that. *)

let check_ws ws y name =
  if Array.length y > Array.length ws.wk1 then
    invalid_arg (name ^ ": state larger than workspace")

let step_into ws m (f : field_into) t y h dst =
  check_ws ws y "Ode.step_into";
  let n = Array.length y in
  match m with
  | Euler ->
      let k1 = ws.wk1 in
      f t y k1;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h *. k1.(i))
      done
  | Heun ->
      let k1 = ws.wk1 and k2 = ws.wk2 and tmp = ws.wtmp in
      f t y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k1.(i))
      done;
      f (t +. h) tmp k2;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i)))
      done
  | Rk4 ->
      let k1 = ws.wk1 and k2 = ws.wk2 and k3 = ws.wk3 and k4 = ws.wk4 in
      let tmp = ws.wtmp in
      f t y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k1.(i))
      done;
      f (t +. (h /. 2.)) tmp k2;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k2.(i))
      done;
      f (t +. (h /. 2.)) tmp k3;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k3.(i))
      done;
      f (t +. h) tmp k4;
      for i = 0 to n - 1 do
        dst.(i) <-
          y.(i)
          +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
      done

let step_auto_into ws m (f : field_auto) y h dst =
  check_ws ws y "Ode.step_auto_into";
  let n = Array.length y in
  match m with
  | Euler ->
      let k1 = ws.wk1 in
      f y k1;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h *. k1.(i))
      done
  | Heun ->
      let k1 = ws.wk1 and k2 = ws.wk2 and tmp = ws.wtmp in
      f y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k1.(i))
      done;
      f tmp k2;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i)))
      done
  | Rk4 ->
      let k1 = ws.wk1 and k2 = ws.wk2 and k3 = ws.wk3 and k4 = ws.wk4 in
      let tmp = ws.wtmp in
      f y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k1.(i))
      done;
      f tmp k2;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k2.(i))
      done;
      f tmp k3;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k3.(i))
      done;
      f tmp k4;
      for i = 0 to n - 1 do
        dst.(i) <-
          y.(i)
          +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
      done

let step m f t y h =
  let n = Array.length y in
  match m with
  | Euler ->
      let k1 = f t y in
      let out = Array.make n 0. in
      axpy out h k1 y;
      out
  | Heun ->
      let k1 = f t y in
      let tmp = Array.make n 0. in
      axpy tmp h k1 y;
      let k2 = f (t +. h) tmp in
      Array.init n (fun i -> y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i))))
  | Rk4 ->
      let tmp = Array.make n 0. in
      let k1 = f t y in
      axpy tmp (h /. 2.) k1 y;
      let k2 = f (t +. (h /. 2.)) tmp in
      axpy tmp (h /. 2.) k2 y;
      let k3 = f (t +. (h /. 2.)) tmp in
      axpy tmp h k3 y;
      let k4 = f (t +. h) tmp in
      Array.init n (fun i ->
          y.(i) +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

(* --- event helpers ------------------------------------------------------ *)

let fires dir g_prev g_next =
  if g_prev = 0. then false
  else
    match dir with
    | Up -> g_prev < 0. && g_next >= 0.
    | Down -> g_prev > 0. && g_next <= 0.
    | Both -> g_prev *. g_next <= 0. && g_next <> g_prev

(* Localize the event inside the step [t, t+h] starting at state [y], using
   the provided single-step function to evaluate intermediate states.
   Returns (t_event, y_event). *)
let localize step_fn ev t y h =
  let state_at_frac s = step_fn t y (s *. h) in
  let phi s =
    let ys = state_at_frac s in
    ev.guard (t +. (s *. h)) ys
  in
  let s_root =
    try Roots.bisect ~tol:1e-13 ~max_iter:100 phi 1e-15 1.
    with Roots.No_bracket _ -> 1.
  in
  let y_ev = state_at_frac s_root in
  (t +. (s_root *. h), y_ev)

(* --- generic driver ------------------------------------------------------ *)

type driver_step = float -> float array -> float -> float array
(* [driver_step t y h] = state after one step of size h from (t, y).
   Must return a freshly allocated array (never a reused buffer): the
   driver stores the result in the solution without copying. *)

let run_driver ~(single : driver_step) ~(next_h : float -> float array -> float -> float * float * bool)
    ?(events = []) ?monitor ~t_end ~t0 ~y0 () =
  (* [next_h t y h_try] returns (h_accepted, h_next_suggestion, accepted?).
     For fixed-step drivers it always accepts. *)
  let ts = ref [ t0 ] in
  let ys = ref [ Array.copy y0 ] in
  let occs = ref [] in
  let terminated = ref None in
  let n_steps = ref 0 in
  let n_rejected = ref 0 in
  let guards_prev =
    ref (List.map (fun ev -> (ev, ev.guard t0 y0)) events)
  in
  let t = ref t0 and y = ref (Array.copy y0) in
  let h_cur = ref nan in
  (* h_cur is set by the caller through next_h's suggestion channel: we seed
     it with (t_end - t0) and let next_h clamp. *)
  h_cur := t_end -. t0;
  let continue_ = ref (t_end > t0) in
  while !continue_ do
    let remaining = t_end -. !t in
    if remaining <= 1e-15 *. (1. +. Float.abs t_end) then continue_ := false
    else begin
      let h_try = Float.min !h_cur remaining in
      let h_acc, h_next, accepted = next_h !t !y h_try in
      if not accepted then begin
        incr n_rejected;
        (match monitor with
        | Some m -> m.on_reject !t h_try
        | None -> ());
        h_cur := h_next
      end
      else begin
        incr n_steps;
        let y_next = single !t !y h_acc in
        let t_next = !t +. h_acc in
        (match monitor with
        | Some m -> m.on_step t_next h_acc
        | None -> ());
        (* event detection over this accepted step *)
        let fired =
          List.filter_map
            (fun (ev, g_prev) ->
              let g_next = ev.guard t_next y_next in
              if fires ev.dir g_prev g_next then Some ev else None)
            !guards_prev
        in
        let stop_here = ref None in
        List.iter
          (fun ev ->
            let t_ev, y_ev = localize single ev !t !y h_acc in
            let oc = { oc_name = ev.ev_name; oc_t = t_ev; oc_y = y_ev } in
            occs := oc :: !occs;
            if ev.terminal then
              match !stop_here with
              | Some (prev_oc : occurrence) when prev_oc.oc_t <= t_ev -> ()
              | _ -> stop_here := Some oc)
          fired;
        (match !stop_here with
        | Some oc ->
            terminated := Some oc;
            ts := oc.oc_t :: !ts;
            ys := Array.copy oc.oc_y :: !ys;
            continue_ := false
        | None ->
            t := t_next;
            y := y_next;
            ts := t_next :: !ts;
            ys := y_next :: !ys;
            guards_prev :=
              List.map (fun (ev, _) -> (ev, ev.guard t_next y_next)) !guards_prev;
            h_cur := h_next)
      end
    end
  done;
  {
    ts = Array.of_list (List.rev !ts);
    ys = Array.of_list (List.rev !ys);
    occs = List.rev !occs;
    terminated = !terminated;
    n_steps = !n_steps;
    n_rejected = !n_rejected;
  }

let solve_fixed ?(method_ = Rk4) ?(events = []) ?monitor ~h ~t_end f ~t0 ~y0 =
  if h <= 0. then invalid_arg "Ode.solve_fixed: h <= 0";
  let single t y h = step method_ f t y h in
  let next_h _t _y h_try = (Float.min h_try h, h, true) in
  run_driver ~single ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

let solve_fixed_into ?(method_ = Rk4) ?(events = []) ?monitor ~h ~t_end f ~t0
    ~y0 =
  if h <= 0. then invalid_arg "Ode.solve_fixed_into: h <= 0";
  let ws = workspace (Array.length y0) in
  let single t y h =
    let dst = Array.make (Array.length y) 0. in
    step_into ws method_ f t y h dst;
    dst
  in
  let next_h _t _y h_try = (Float.min h_try h, h, true) in
  run_driver ~single ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

(* --- Fehlberg 4(5) ------------------------------------------------------- *)

let rkf45_step f t y h =
  let n = Array.length y in
  let stage coeffs =
    let tmp = Array.copy y in
    List.iter
      (fun (c, (k : float array)) ->
        for i = 0 to n - 1 do
          tmp.(i) <- tmp.(i) +. (h *. c *. k.(i))
        done)
      coeffs;
    tmp
  in
  let k1 = f t y in
  let k2 = f (t +. (h /. 4.)) (stage [ (1. /. 4., k1) ]) in
  let k3 =
    f (t +. (3. *. h /. 8.)) (stage [ (3. /. 32., k1); (9. /. 32., k2) ])
  in
  let k4 =
    f
      (t +. (12. *. h /. 13.))
      (stage
         [ (1932. /. 2197., k1); (-7200. /. 2197., k2); (7296. /. 2197., k3) ])
  in
  let k5 =
    f (t +. h)
      (stage
         [
           (439. /. 216., k1);
           (-8., k2);
           (3680. /. 513., k3);
           (-845. /. 4104., k4);
         ])
  in
  let k6 =
    f
      (t +. (h /. 2.))
      (stage
         [
           (-8. /. 27., k1);
           (2., k2);
           (-3544. /. 2565., k3);
           (1859. /. 4104., k4);
           (-11. /. 40., k5);
         ])
  in
  let y5 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((16. /. 135. *. k1.(i))
                +. (6656. /. 12825. *. k3.(i))
                +. (28561. /. 56430. *. k4.(i))
                +. (-9. /. 50. *. k5.(i))
                +. (2. /. 55. *. k6.(i)))))
  in
  let err = ref 0. in
  for i = 0 to n - 1 do
    let y4i =
      y.(i)
      +. (h
          *. ((25. /. 216. *. k1.(i))
              +. (1408. /. 2565. *. k3.(i))
              +. (2197. /. 4104. *. k4.(i))
              +. (-1. /. 5. *. k5.(i))))
    in
    err := Float.max !err (Float.abs (y5.(i) -. y4i))
  done;
  (y5, !err)

(* --- Dormand–Prince 5(4) ------------------------------------------------- *)

let dopri5_step f t y h =
  let n = Array.length y in
  let stage coeffs =
    let tmp = Array.copy y in
    List.iter
      (fun (c, (k : float array)) ->
        for i = 0 to n - 1 do
          tmp.(i) <- tmp.(i) +. (h *. c *. k.(i))
        done)
      coeffs;
    tmp
  in
  let k1 = f t y in
  let k2 = f (t +. (h /. 5.)) (stage [ (1. /. 5., k1) ]) in
  let k3 =
    f (t +. (3. *. h /. 10.)) (stage [ (3. /. 40., k1); (9. /. 40., k2) ])
  in
  let k4 =
    f
      (t +. (4. *. h /. 5.))
      (stage [ (44. /. 45., k1); (-56. /. 15., k2); (32. /. 9., k3) ])
  in
  let k5 =
    f
      (t +. (8. *. h /. 9.))
      (stage
         [
           (19372. /. 6561., k1);
           (-25360. /. 2187., k2);
           (64448. /. 6561., k3);
           (-212. /. 729., k4);
         ])
  in
  let k6 =
    f (t +. h)
      (stage
         [
           (9017. /. 3168., k1);
           (-355. /. 33., k2);
           (46732. /. 5247., k3);
           (49. /. 176., k4);
           (-5103. /. 18656., k5);
         ])
  in
  let y5 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((35. /. 384. *. k1.(i))
                +. (500. /. 1113. *. k3.(i))
                +. (125. /. 192. *. k4.(i))
                +. (-2187. /. 6784. *. k5.(i))
                +. (11. /. 84. *. k6.(i)))))
  in
  let k7 = f (t +. h) y5 in
  let err = ref 0. in
  for i = 0 to n - 1 do
    let y4i =
      y.(i)
      +. (h
          *. ((5179. /. 57600. *. k1.(i))
              +. (7571. /. 16695. *. k3.(i))
              +. (393. /. 640. *. k4.(i))
              +. (-92097. /. 339200. *. k5.(i))
              +. (187. /. 2100. *. k6.(i))
              +. (1. /. 40. *. k7.(i))))
    in
    err := Float.max !err (Float.abs (y5.(i) -. y4i))
  done;
  (y5, !err)

let solve_adaptive ?(rtol = 1e-8) ?(atol = 1e-10) ?h0 ?(h_min = 1e-14)
    ?h_max ?(max_steps = 2_000_000) ?(events = []) ?monitor ~t_end f ~t0 ~y0 =
  let span = t_end -. t0 in
  if span <= 0. then invalid_arg "Ode.solve_adaptive: t_end <= t0";
  let h_max = match h_max with Some h -> h | None -> span in
  let h_init = match h0 with Some h -> h | None -> span /. 100. in
  let budget = ref max_steps in
  let single t y h =
    let y', _ = dopri5_step f t y h in
    y'
  in
  let h_suggest = ref (Float.min h_init h_max) in
  let next_h t y h_try =
    decr budget;
    if !budget <= 0 then failwith "Ode.solve_adaptive: max_steps exhausted";
    let h_try = Float.min h_try !h_suggest in
    let h_try = Float.max h_try h_min in
    let y', err = dopri5_step f t y h_try in
    let scale = ref atol in
    Array.iteri
      (fun i yi ->
        scale :=
          Float.max !scale (rtol *. Float.max (Float.abs yi) (Float.abs y'.(i))))
      y;
    let ratio = err /. !scale in
    (* a wildly oversized trial step can overflow the stage values and
       produce a NaN error estimate; treat it as an infinitely bad step so
       the controller shrinks instead of propagating the NaN *)
    let ratio = if Float.is_finite ratio then ratio else infinity in
    if ratio <= 1. || h_try <= h_min *. 1.0001 then begin
      let grow =
        if ratio <= 0. then 5. else Float.min 5. (0.9 *. (ratio ** -0.2))
      in
      h_suggest := Float.min h_max (h_try *. Float.max 1. grow);
      (h_try, !h_suggest, true)
    end
    else begin
      let shrink = Float.max 0.1 (0.9 *. (ratio ** -0.25)) in
      let h_new = Float.max h_min (h_try *. shrink) in
      if h_new <= h_min && h_try <= h_min *. 1.0001 then
        failwith "Ode.solve_adaptive: step size underflow";
      h_suggest := h_new;
      (h_try, h_new, false)
    end
  in
  run_driver ~single ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

let state_at sol t =
  let n = Array.length sol.ts in
  assert (n > 0);
  if t <= sol.ts.(0) then Array.copy sol.ys.(0)
  else if t >= sol.ts.(n - 1) then Array.copy sol.ys.(n - 1)
  else begin
    (* binary search for the bracketing segment *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if sol.ts.(mid) <= t then lo := mid else hi := mid
    done;
    let t0 = sol.ts.(!lo) and t1 = sol.ts.(!hi) in
    let s = if t1 = t0 then 0. else (t -. t0) /. (t1 -. t0) in
    let y0 = sol.ys.(!lo) and y1 = sol.ys.(!hi) in
    Array.init (Array.length y0) (fun i -> y0.(i) +. (s *. (y1.(i) -. y0.(i))))
  end

let convergence_order m f ~t0 ~y0 ~t_end ~exact =
  let err h =
    let sol = solve_fixed ~method_:m ~h ~t_end f ~t0 ~y0 in
    let yn = sol.ys.(Array.length sol.ys - 1) in
    let ye = exact t_end in
    let e = ref 0. in
    Array.iteri (fun i v -> e := Float.max !e (Float.abs (v -. ye.(i)))) yn;
    !e
  in
  let h1 = (t_end -. t0) /. 64. in
  let e1 = err h1 and e2 = err (h1 /. 2.) in
  log (e1 /. e2) /. log 2.
