type field = float -> float array -> float array
type method_ = Euler | Heun | Rk4
type direction = Up | Down | Both

type event = {
  ev_name : string;
  guard : float -> float array -> float;
  dir : direction;
  terminal : bool;
}

type occurrence = { oc_name : string; oc_t : float; oc_y : float array }

(* Step monitor: a telemetry hook invoked on every accepted / rejected
   step. Kept as a plain callback record (rather than depending on
   lib/telemetry, which sits above numerics) so the solvers stay at the
   bottom of the dependency stack; Telemetry.Probe.ode_monitor adapts a
   probe into this shape. The default (no monitor) costs one pattern
   match per step and allocates nothing. *)
type monitor = {
  on_step : float -> float -> unit;  (* t_end_of_step, h_accepted *)
  on_reject : float -> float -> unit;  (* t, h_rejected *)
}

type solution = {
  ts : float array;
  ys : float array array;
  occs : occurrence list;
  terminated : occurrence option;
  n_steps : int;
  n_rejected : int;
}

let axpy out a x y =
  (* out.(i) = y.(i) + a * x.(i) *)
  for i = 0 to Array.length y - 1 do
    out.(i) <- y.(i) +. (a *. x.(i))
  done

(* --- in-place fast path --------------------------------------------------- *)

type field_into = float -> float array -> float array -> unit
type field_auto = float array -> float array -> unit

type workspace = {
  wk1 : float array;
  wk2 : float array;
  wk3 : float array;
  wk4 : float array;
  wtmp : float array;
}

let workspace dim =
  if dim < 1 then invalid_arg "Ode.workspace: dim < 1";
  {
    wk1 = Array.make dim 0.;
    wk2 = Array.make dim 0.;
    wk3 = Array.make dim 0.;
    wk4 = Array.make dim 0.;
    wtmp = Array.make dim 0.;
  }

let workspace_dim ws = Array.length ws.wk1

let field_into_of_field (f : field) : field_into =
 fun t y dst ->
  let v = f t y in
  Array.blit v 0 dst 0 (Array.length dst)

let field_into_of_auto (f : field_auto) : field_into = fun _t y dst -> f y dst

(* The arithmetic below mirrors [step] expression-for-expression so the
   results are bit-for-bit identical (floating point is deterministic);
   the equivalence is locked down by the test suite. The stage loops are
   written out inline (rather than calling [axpy]) because a non-inlined
   call with a float argument boxes it — the only remaining per-step
   allocation on this path is the stage-time boxing at the [field_into]
   closure calls, and [step_auto_into] eliminates even that. *)

let check_ws ws y name =
  if Array.length y > Array.length ws.wk1 then
    invalid_arg (name ^ ": state larger than workspace")

let step_into ws m (f : field_into) t y h dst =
  check_ws ws y "Ode.step_into";
  let n = Array.length y in
  match m with
  | Euler ->
      let k1 = ws.wk1 in
      f t y k1;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h *. k1.(i))
      done
  | Heun ->
      let k1 = ws.wk1 and k2 = ws.wk2 and tmp = ws.wtmp in
      f t y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k1.(i))
      done;
      f (t +. h) tmp k2;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i)))
      done
  | Rk4 ->
      let k1 = ws.wk1 and k2 = ws.wk2 and k3 = ws.wk3 and k4 = ws.wk4 in
      let tmp = ws.wtmp in
      f t y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k1.(i))
      done;
      f (t +. (h /. 2.)) tmp k2;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k2.(i))
      done;
      f (t +. (h /. 2.)) tmp k3;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k3.(i))
      done;
      f (t +. h) tmp k4;
      for i = 0 to n - 1 do
        dst.(i) <-
          y.(i)
          +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
      done

let step_auto_into ws m (f : field_auto) y h dst =
  check_ws ws y "Ode.step_auto_into";
  let n = Array.length y in
  match m with
  | Euler ->
      let k1 = ws.wk1 in
      f y k1;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h *. k1.(i))
      done
  | Heun ->
      let k1 = ws.wk1 and k2 = ws.wk2 and tmp = ws.wtmp in
      f y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k1.(i))
      done;
      f tmp k2;
      for i = 0 to n - 1 do
        dst.(i) <- y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i)))
      done
  | Rk4 ->
      let k1 = ws.wk1 and k2 = ws.wk2 and k3 = ws.wk3 and k4 = ws.wk4 in
      let tmp = ws.wtmp in
      f y k1;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k1.(i))
      done;
      f tmp k2;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h /. 2. *. k2.(i))
      done;
      f tmp k3;
      for i = 0 to n - 1 do
        tmp.(i) <- y.(i) +. (h *. k3.(i))
      done;
      f tmp k4;
      for i = 0 to n - 1 do
        dst.(i) <-
          y.(i)
          +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i)))
      done

(* --- batched SoA stepping ------------------------------------------------ *)

(* A front of [n] independent planar states advanced in lock-step.
   Structure-of-arrays layout: one contiguous [float array] per
   coordinate lane (state, the four RK stages, the stage scratch and
   three sweep-scratch lanes), so a whole stage is one pass over
   contiguous unboxed memory and the right-hand side is evaluated as a
   single sweep over all lanes instead of n closure calls.

   The per-lane arithmetic mirrors {!step_into} expression for
   expression, so advancing lane [i] is bit-for-bit identical to
   advancing the state [[|xs.(i); ys.(i)|]] with the scalar stepper —
   batching changes the memory layout, never the results (locked down by
   the test suite).

   [active] is a per-lane byte mask: the moment a caller decides a
   lane's fate (a verdict, a terminal event), it clears the flag and the
   stepper stops writing that lane — its state is frozen at the decision
   point while the rest of the front keeps going. RHS sweeps are allowed
   to compute garbage for inactive lanes (their stage lanes go stale);
   lanes are independent, so the garbage never contaminates an active
   lane.

   The step size lives in the batch ([set_h]) rather than being passed
   per call: a [float] argument to a non-inlined call is boxed by the
   compiler, and hoisting it into the (one-time) field store keeps the
   per-step allocation at exactly zero. *)
module Batch = struct
  type t = {
    n : int;
    xs : float array;
    ys : float array;
    k1x : float array;
    k1y : float array;
    k2x : float array;
    k2y : float array;
    k3x : float array;
    k3y : float array;
    k4x : float array;
    k4y : float array;
    tmpx : float array;
    tmpy : float array;
    sg : float array;
    sa : float array;
    sb : float array;
    active : Bytes.t;
    mutable h : float;
  }

  type rhs = t -> float array -> float array -> float array -> float array -> unit

  let create n =
    if n < 1 then invalid_arg "Ode.Batch.create: n < 1";
    let z () = Array.make n 0. in
    {
      n;
      xs = z ();
      ys = z ();
      k1x = z ();
      k1y = z ();
      k2x = z ();
      k2y = z ();
      k3x = z ();
      k3y = z ();
      k4x = z ();
      k4y = z ();
      tmpx = z ();
      tmpy = z ();
      sg = z ();
      sa = z ();
      sb = z ();
      active = Bytes.make n '\001';
      h = 0.;
    }

  let lanes b = b.n
  let set_h b h = b.h <- h
  let is_active b i = Bytes.unsafe_get b.active i <> '\000'

  let set_active b i v =
    Bytes.unsafe_set b.active i (if v then '\001' else '\000')

  let active_count b =
    let c = ref 0 in
    for i = 0 to b.n - 1 do
      if Bytes.unsafe_get b.active i <> '\000' then incr c
    done;
    !c

  (* Branch-free-style per-lane select on the sign of [mask]: the σ-switch
     of the paper's variable-structure systems, applied as its own sweep
     after both branch sweeps have run. An arithmetic blend
     [m·pos + (1−m)·neg] would NOT be bit-identical to the scalar
     [if sigma >= 0.] dispatch (e.g. [-0.0 +. 0.0] flips the sign bit),
     so the select keeps the comparison and lets the compiler turn it
     into a conditional move. *)
  (* annotations matter: without them the sweep types as ['a array] and
     compiles to generic (boxing, tag-checking) array accesses *)
  let select b ~(mask : float array) ~(pos : float array)
      ~(neg : float array) ~(dst : float array) =
    for i = 0 to b.n - 1 do
      (* the store lives inside each branch: an [if] JOINING two float
         loads boxes the joined value on its way into [unsafe_set]
         (no flambda), costing two minor words per lane *)
      if Array.unsafe_get mask i >= 0. then
        Array.unsafe_set dst i (Array.unsafe_get pos i)
      else Array.unsafe_set dst i (Array.unsafe_get neg i)
    done

  let step_rk4 b (f : rhs) =
    let n = b.n and act = b.active and h = b.h in
    let xs = b.xs and ys = b.ys in
    let tmpx = b.tmpx and tmpy = b.tmpy in
    f b xs ys b.k1x b.k1y;
    for i = 0 to n - 1 do
      if Bytes.unsafe_get act i <> '\000' then begin
        Array.unsafe_set tmpx i
          (Array.unsafe_get xs i +. (h /. 2. *. Array.unsafe_get b.k1x i));
        Array.unsafe_set tmpy i
          (Array.unsafe_get ys i +. (h /. 2. *. Array.unsafe_get b.k1y i))
      end
    done;
    f b tmpx tmpy b.k2x b.k2y;
    for i = 0 to n - 1 do
      if Bytes.unsafe_get act i <> '\000' then begin
        Array.unsafe_set tmpx i
          (Array.unsafe_get xs i +. (h /. 2. *. Array.unsafe_get b.k2x i));
        Array.unsafe_set tmpy i
          (Array.unsafe_get ys i +. (h /. 2. *. Array.unsafe_get b.k2y i))
      end
    done;
    f b tmpx tmpy b.k3x b.k3y;
    for i = 0 to n - 1 do
      if Bytes.unsafe_get act i <> '\000' then begin
        Array.unsafe_set tmpx i
          (Array.unsafe_get xs i +. (h *. Array.unsafe_get b.k3x i));
        Array.unsafe_set tmpy i
          (Array.unsafe_get ys i +. (h *. Array.unsafe_get b.k3y i))
      end
    done;
    f b tmpx tmpy b.k4x b.k4y;
    for i = 0 to n - 1 do
      if Bytes.unsafe_get act i <> '\000' then begin
        let nx =
          Array.unsafe_get xs i
          +. (h /. 6.
              *. (Array.unsafe_get b.k1x i
                  +. (2. *. Array.unsafe_get b.k2x i)
                  +. (2. *. Array.unsafe_get b.k3x i)
                  +. Array.unsafe_get b.k4x i))
        in
        let ny =
          Array.unsafe_get ys i
          +. (h /. 6.
              *. (Array.unsafe_get b.k1y i
                  +. (2. *. Array.unsafe_get b.k2y i)
                  +. (2. *. Array.unsafe_get b.k3y i)
                  +. Array.unsafe_get b.k4y i))
        in
        Array.unsafe_set xs i nx;
        Array.unsafe_set ys i ny
      end
    done

  let step_euler b (f : rhs) =
    let n = b.n and act = b.active and h = b.h in
    f b b.xs b.ys b.k1x b.k1y;
    for i = 0 to n - 1 do
      if Bytes.unsafe_get act i <> '\000' then begin
        Array.unsafe_set b.xs i
          (Array.unsafe_get b.xs i +. (h *. Array.unsafe_get b.k1x i));
        Array.unsafe_set b.ys i
          (Array.unsafe_get b.ys i +. (h *. Array.unsafe_get b.k1y i))
      end
    done

  let step_heun b (f : rhs) =
    let n = b.n and act = b.active and h = b.h in
    f b b.xs b.ys b.k1x b.k1y;
    for i = 0 to n - 1 do
      if Bytes.unsafe_get act i <> '\000' then begin
        Array.unsafe_set b.tmpx i
          (Array.unsafe_get b.xs i +. (h *. Array.unsafe_get b.k1x i));
        Array.unsafe_set b.tmpy i
          (Array.unsafe_get b.ys i +. (h *. Array.unsafe_get b.k1y i))
      end
    done;
    f b b.tmpx b.tmpy b.k2x b.k2y;
    for i = 0 to n - 1 do
      if Bytes.unsafe_get act i <> '\000' then begin
        Array.unsafe_set b.xs i
          (Array.unsafe_get b.xs i
          +. (h /. 2.
              *. (Array.unsafe_get b.k1x i +. Array.unsafe_get b.k2x i)));
        Array.unsafe_set b.ys i
          (Array.unsafe_get b.ys i
          +. (h /. 2.
              *. (Array.unsafe_get b.k1y i +. Array.unsafe_get b.k2y i)))
      end
    done

  let step b m f =
    match m with
    | Euler -> step_euler b f
    | Heun -> step_heun b f
    | Rk4 -> step_rk4 b f
end

let step m f t y h =
  let n = Array.length y in
  match m with
  | Euler ->
      let k1 = f t y in
      let out = Array.make n 0. in
      axpy out h k1 y;
      out
  | Heun ->
      let k1 = f t y in
      let tmp = Array.make n 0. in
      axpy tmp h k1 y;
      let k2 = f (t +. h) tmp in
      Array.init n (fun i -> y.(i) +. (h /. 2. *. (k1.(i) +. k2.(i))))
  | Rk4 ->
      let tmp = Array.make n 0. in
      let k1 = f t y in
      axpy tmp (h /. 2.) k1 y;
      let k2 = f (t +. (h /. 2.)) tmp in
      axpy tmp (h /. 2.) k2 y;
      let k3 = f (t +. (h /. 2.)) tmp in
      axpy tmp h k3 y;
      let k4 = f (t +. h) tmp in
      Array.init n (fun i ->
          y.(i) +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

(* --- event helpers ------------------------------------------------------ *)

let fires dir g_prev g_next =
  if g_prev = 0. then false
  else
    match dir with
    | Up -> g_prev < 0. && g_next >= 0.
    | Down -> g_prev > 0. && g_next <= 0.
    | Both -> g_prev *. g_next <= 0. && g_next <> g_prev

(* Localize the event inside the step [t, t+h] starting at state [y], using
   the provided single-step function to evaluate intermediate states.
   Returns (t_event, y_event). *)
let localize step_fn ev t y h =
  let state_at_frac s = step_fn t y (s *. h) in
  let phi s =
    let ys = state_at_frac s in
    ev.guard (t +. (s *. h)) ys
  in
  let s_root =
    try Roots.bisect ~tol:1e-13 ~max_iter:100 phi 1e-15 1.
    with Roots.No_bracket _ -> 1.
  in
  let y_ev = state_at_frac s_root in
  (t +. (s_root *. h), y_ev)

(* Allocation-free localization: same bisection, but intermediate states
   are written into a caller-provided scratch buffer instead of being
   allocated per evaluation. Bit-identical to [localize] when the
   in-place step function writes the same bits the allocating one
   returns (true for all the steppers in this module). Only the event
   state itself is allocated (the caller keeps it). *)
let localize_into (single_into : float -> float array -> float -> float array -> unit)
    ev t y h scratch =
  let phi s =
    single_into t y (s *. h) scratch;
    ev.guard (t +. (s *. h)) scratch
  in
  let s_root =
    try Roots.bisect ~tol:1e-13 ~max_iter:100 phi 1e-15 1.
    with Roots.No_bracket _ -> 1.
  in
  single_into t y (s_root *. h) scratch;
  (t +. (s_root *. h), Array.copy scratch)

(* --- generic driver ------------------------------------------------------ *)

type driver_step = float -> float array -> float -> float array
(* [driver_step t y h] = state after one step of size h from (t, y).
   Must return a freshly allocated array (never a reused buffer): the
   driver stores the result in the solution without copying. *)

let run_driver ~(single : driver_step) ?single_into
    ~(next_h : float -> float array -> float -> float * float * bool)
    ?(events = []) ?monitor ~t_end ~t0 ~y0 () =
  (* [single_into], when given, is used for event localization: it must
     write into its destination the same bits [single] would return, and
     lets the bisection reuse one scratch buffer instead of allocating a
     state per guard evaluation. *)
  let loc_scratch =
    match single_into with
    | Some _ -> Array.make (Array.length y0) 0.
    | None -> [||]
  in
  (* [next_h t y h_try] returns (h_accepted, h_next_suggestion, accepted?).
     For fixed-step drivers it always accepts. *)
  (* The trajectory accumulates in growable arrays rather than lists:
     the time column stays unboxed (a [float :: _] cons boxes the head)
     and the state column costs one pointer store per step. Guards live
     in parallel arrays, with [g_next] recycled into [g_prev] after an
     accepted step — the original re-evaluated every guard a second
     time for the update; guards are pure, so reusing the first
     evaluation changes nothing. *)
  let cap0 = 64 in
  let ts_buf = ref (Array.make cap0 0.) in
  let ys_buf = ref (Array.make cap0 [||]) in
  let len = ref 0 in
  let push t y =
    if !len = Array.length !ts_buf then begin
      let c = 2 * Array.length !ts_buf in
      let ts' = Array.make c 0. and ys' = Array.make c [||] in
      Array.blit !ts_buf 0 ts' 0 !len;
      Array.blit !ys_buf 0 ys' 0 !len;
      ts_buf := ts';
      ys_buf := ys'
    end;
    !ts_buf.(!len) <- t;
    !ys_buf.(!len) <- y;
    incr len
  in
  push t0 (Array.copy y0);
  let occs = ref [] in
  let terminated = ref None in
  let n_steps = ref 0 in
  let n_rejected = ref 0 in
  let evs = Array.of_list events in
  let n_ev = Array.length evs in
  let g_prev = Array.make n_ev 0. in
  let g_next = Array.make n_ev 0. in
  for e = 0 to n_ev - 1 do
    g_prev.(e) <- evs.(e).guard t0 y0
  done;
  let t = ref t0 and y = ref (Array.copy y0) in
  let h_cur = ref nan in
  (* h_cur is set by the caller through next_h's suggestion channel: we seed
     it with (t_end - t0) and let next_h clamp. *)
  h_cur := t_end -. t0;
  let continue_ = ref (t_end > t0) in
  while !continue_ do
    let remaining = t_end -. !t in
    if remaining <= 1e-15 *. (1. +. Float.abs t_end) then continue_ := false
    else begin
      let h_try = Float.min !h_cur remaining in
      let h_acc, h_next, accepted = next_h !t !y h_try in
      if not accepted then begin
        incr n_rejected;
        (match monitor with
        | Some m -> m.on_reject !t h_try
        | None -> ());
        h_cur := h_next
      end
      else begin
        incr n_steps;
        let y_next = single !t !y h_acc in
        let t_next = !t +. h_acc in
        (match monitor with
        | Some m -> m.on_step t_next h_acc
        | None -> ());
        (* event detection over this accepted step *)
        for e = 0 to n_ev - 1 do
          g_next.(e) <- evs.(e).guard t_next y_next
        done;
        let stop_here = ref None in
        for e = 0 to n_ev - 1 do
          let ev = evs.(e) in
          if fires ev.dir g_prev.(e) g_next.(e) then begin
            let t_ev, y_ev =
              match single_into with
              | Some si -> localize_into si ev !t !y h_acc loc_scratch
              | None -> localize single ev !t !y h_acc
            in
            let oc = { oc_name = ev.ev_name; oc_t = t_ev; oc_y = y_ev } in
            occs := oc :: !occs;
            if ev.terminal then
              match !stop_here with
              | Some (prev_oc : occurrence) when prev_oc.oc_t <= t_ev -> ()
              | Some _ | None -> stop_here := Some oc
          end
        done;
        (match !stop_here with
        | Some oc ->
            terminated := Some oc;
            push oc.oc_t (Array.copy oc.oc_y);
            continue_ := false
        | None ->
            t := t_next;
            y := y_next;
            push t_next y_next;
            Array.blit g_next 0 g_prev 0 n_ev;
            h_cur := h_next)
      end
    end
  done;
  {
    ts = Array.sub !ts_buf 0 !len;
    ys = Array.sub !ys_buf 0 !len;
    occs = List.rev !occs;
    terminated = !terminated;
    n_steps = !n_steps;
    n_rejected = !n_rejected;
  }

let solve_fixed ?(method_ = Rk4) ?(events = []) ?monitor ~h ~t_end f ~t0 ~y0 =
  if h <= 0. then invalid_arg "Ode.solve_fixed: h <= 0";
  let single t y h = step method_ f t y h in
  let next_h _t _y h_try = (Float.min h_try h, h, true) in
  run_driver ~single ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

let solve_fixed_into ?(method_ = Rk4) ?(events = []) ?monitor ~h ~t_end f ~t0
    ~y0 =
  if h <= 0. then invalid_arg "Ode.solve_fixed_into: h <= 0";
  let ws = workspace (Array.length y0) in
  let single t y h =
    let dst = Array.make (Array.length y) 0. in
    step_into ws method_ f t y h dst;
    dst
  in
  let single_into t y h dst = step_into ws method_ f t y h dst in
  let next_h _t _y h_try = (Float.min h_try h, h, true) in
  run_driver ~single ~single_into ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

(* --- Fehlberg 4(5) ------------------------------------------------------- *)

let rkf45_step f t y h =
  let n = Array.length y in
  let stage coeffs =
    let tmp = Array.copy y in
    List.iter
      (fun (c, (k : float array)) ->
        for i = 0 to n - 1 do
          tmp.(i) <- tmp.(i) +. (h *. c *. k.(i))
        done)
      coeffs;
    tmp
  in
  let k1 = f t y in
  let k2 = f (t +. (h /. 4.)) (stage [ (1. /. 4., k1) ]) in
  let k3 =
    f (t +. (3. *. h /. 8.)) (stage [ (3. /. 32., k1); (9. /. 32., k2) ])
  in
  let k4 =
    f
      (t +. (12. *. h /. 13.))
      (stage
         [ (1932. /. 2197., k1); (-7200. /. 2197., k2); (7296. /. 2197., k3) ])
  in
  let k5 =
    f (t +. h)
      (stage
         [
           (439. /. 216., k1);
           (-8., k2);
           (3680. /. 513., k3);
           (-845. /. 4104., k4);
         ])
  in
  let k6 =
    f
      (t +. (h /. 2.))
      (stage
         [
           (-8. /. 27., k1);
           (2., k2);
           (-3544. /. 2565., k3);
           (1859. /. 4104., k4);
           (-11. /. 40., k5);
         ])
  in
  let y5 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((16. /. 135. *. k1.(i))
                +. (6656. /. 12825. *. k3.(i))
                +. (28561. /. 56430. *. k4.(i))
                +. (-9. /. 50. *. k5.(i))
                +. (2. /. 55. *. k6.(i)))))
  in
  let err = ref 0. in
  for i = 0 to n - 1 do
    let y4i =
      y.(i)
      +. (h
          *. ((25. /. 216. *. k1.(i))
              +. (1408. /. 2565. *. k3.(i))
              +. (2197. /. 4104. *. k4.(i))
              +. (-1. /. 5. *. k5.(i))))
    in
    err := Float.max !err (Float.abs (y5.(i) -. y4i))
  done;
  (y5, !err)

(* --- Dormand–Prince 5(4) ------------------------------------------------- *)

let dopri5_step f t y h =
  let n = Array.length y in
  let stage coeffs =
    let tmp = Array.copy y in
    List.iter
      (fun (c, (k : float array)) ->
        for i = 0 to n - 1 do
          tmp.(i) <- tmp.(i) +. (h *. c *. k.(i))
        done)
      coeffs;
    tmp
  in
  let k1 = f t y in
  let k2 = f (t +. (h /. 5.)) (stage [ (1. /. 5., k1) ]) in
  let k3 =
    f (t +. (3. *. h /. 10.)) (stage [ (3. /. 40., k1); (9. /. 40., k2) ])
  in
  let k4 =
    f
      (t +. (4. *. h /. 5.))
      (stage [ (44. /. 45., k1); (-56. /. 15., k2); (32. /. 9., k3) ])
  in
  let k5 =
    f
      (t +. (8. *. h /. 9.))
      (stage
         [
           (19372. /. 6561., k1);
           (-25360. /. 2187., k2);
           (64448. /. 6561., k3);
           (-212. /. 729., k4);
         ])
  in
  let k6 =
    f (t +. h)
      (stage
         [
           (9017. /. 3168., k1);
           (-355. /. 33., k2);
           (46732. /. 5247., k3);
           (49. /. 176., k4);
           (-5103. /. 18656., k5);
         ])
  in
  let y5 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((35. /. 384. *. k1.(i))
                +. (500. /. 1113. *. k3.(i))
                +. (125. /. 192. *. k4.(i))
                +. (-2187. /. 6784. *. k5.(i))
                +. (11. /. 84. *. k6.(i)))))
  in
  let k7 = f (t +. h) y5 in
  let err = ref 0. in
  for i = 0 to n - 1 do
    let y4i =
      y.(i)
      +. (h
          *. ((5179. /. 57600. *. k1.(i))
              +. (7571. /. 16695. *. k3.(i))
              +. (393. /. 640. *. k4.(i))
              +. (-92097. /. 339200. *. k5.(i))
              +. (187. /. 2100. *. k6.(i))
              +. (1. /. 40. *. k7.(i))))
    in
    err := Float.max !err (Float.abs (y5.(i) -. y4i))
  done;
  (y5, !err)

(* In-place Dormand–Prince 5(4): the seven stage derivatives and the
   stage state live in a preallocated workspace, the 5th-order solution
   is written into [dst] and the embedded error estimate into
   [err.(0)] (a 1-element accumulator — a [ref float] would box on
   every store). Every expression mirrors [dopri5_step] exactly, so the
   results are bit-for-bit identical; the only allocation left on the
   path is whatever the field itself performs. [dst] must not alias
   [y] (it is passed back to [f] for the FSAL stage). *)

type dopri_workspace = {
  dk1 : float array;
  dk2 : float array;
  dk3 : float array;
  dk4 : float array;
  dk5 : float array;
  dk6 : float array;
  dk7 : float array;
  dtmp : float array;
  dhp : float array;
      (* 1-slot step-size mailbox for the autonomous stepper: a [float]
         argument crossing a non-inlined call boundary is boxed, a
         float-array store is not *)
}

let dopri_workspace dim =
  if dim < 1 then invalid_arg "Ode.dopri_workspace: dim < 1";
  {
    dk1 = Array.make dim 0.;
    dk2 = Array.make dim 0.;
    dk3 = Array.make dim 0.;
    dk4 = Array.make dim 0.;
    dk5 = Array.make dim 0.;
    dk6 = Array.make dim 0.;
    dk7 = Array.make dim 0.;
    dtmp = Array.make dim 0.;
    dhp = Array.make 1 0.;
  }

let dopri5_into ws (f : field_into) t y h dst err =
  let n = Array.length y in
  let k1 = ws.dk1 and k2 = ws.dk2 and k3 = ws.dk3 and k4 = ws.dk4 in
  let k5 = ws.dk5 and k6 = ws.dk6 and k7 = ws.dk7 and tmp = ws.dtmp in
  f t y k1;
  for i = 0 to n - 1 do
    tmp.(i) <- y.(i) +. (h *. (1. /. 5.) *. k1.(i))
  done;
  f (t +. (h /. 5.)) tmp k2;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i) +. (h *. (3. /. 40.) *. k1.(i)) +. (h *. (9. /. 40.) *. k2.(i))
  done;
  f (t +. (3. *. h /. 10.)) tmp k3;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i)
      +. (h *. (44. /. 45.) *. k1.(i))
      +. (h *. (-56. /. 15.) *. k2.(i))
      +. (h *. (32. /. 9.) *. k3.(i))
  done;
  f (t +. (4. *. h /. 5.)) tmp k4;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i)
      +. (h *. (19372. /. 6561.) *. k1.(i))
      +. (h *. (-25360. /. 2187.) *. k2.(i))
      +. (h *. (64448. /. 6561.) *. k3.(i))
      +. (h *. (-212. /. 729.) *. k4.(i))
  done;
  f (t +. (8. *. h /. 9.)) tmp k5;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i)
      +. (h *. (9017. /. 3168.) *. k1.(i))
      +. (h *. (-355. /. 33.) *. k2.(i))
      +. (h *. (46732. /. 5247.) *. k3.(i))
      +. (h *. (49. /. 176.) *. k4.(i))
      +. (h *. (-5103. /. 18656.) *. k5.(i))
  done;
  f (t +. h) tmp k6;
  for i = 0 to n - 1 do
    dst.(i) <-
      y.(i)
      +. (h
          *. ((35. /. 384. *. k1.(i))
              +. (500. /. 1113. *. k3.(i))
              +. (125. /. 192. *. k4.(i))
              +. (-2187. /. 6784. *. k5.(i))
              +. (11. /. 84. *. k6.(i))))
  done;
  f (t +. h) dst k7;
  err.(0) <- 0.;
  for i = 0 to n - 1 do
    let y4i =
      y.(i)
      +. (h
          *. ((5179. /. 57600. *. k1.(i))
              +. (7571. /. 16695. *. k3.(i))
              +. (393. /. 640. *. k4.(i))
              +. (-92097. /. 339200. *. k5.(i))
              +. (187. /. 2100. *. k6.(i))
              +. (1. /. 40. *. k7.(i))))
    in
    err.(0) <- Float.max err.(0) (Float.abs (dst.(i) -. y4i))
  done

(* Autonomous Dormand–Prince 5(4). The systems this repo integrates are
   all autonomous, and in the [field_into] form every stage call boxes
   its freshly computed stage time (a float crossing a closure boundary
   allocates). Here no float crosses any call boundary: the step size
   arrives through the workspace mailbox [dhp] and the stage times are
   simply never materialized (the field ignores them). Stage arithmetic
   is identical to [dopri5_into] — h only ever enters the state through
   the same [h *. c *. k] products — so the results are bit-for-bit
   equal. *)
let dopri5_auto_core ws (f : field_auto) y dst err =
  let n = Array.length y in
  let h = ws.dhp.(0) in
  let k1 = ws.dk1 and k2 = ws.dk2 and k3 = ws.dk3 and k4 = ws.dk4 in
  let k5 = ws.dk5 and k6 = ws.dk6 and k7 = ws.dk7 and tmp = ws.dtmp in
  f y k1;
  for i = 0 to n - 1 do
    tmp.(i) <- y.(i) +. (h *. (1. /. 5.) *. k1.(i))
  done;
  f tmp k2;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i) +. (h *. (3. /. 40.) *. k1.(i)) +. (h *. (9. /. 40.) *. k2.(i))
  done;
  f tmp k3;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i)
      +. (h *. (44. /. 45.) *. k1.(i))
      +. (h *. (-56. /. 15.) *. k2.(i))
      +. (h *. (32. /. 9.) *. k3.(i))
  done;
  f tmp k4;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i)
      +. (h *. (19372. /. 6561.) *. k1.(i))
      +. (h *. (-25360. /. 2187.) *. k2.(i))
      +. (h *. (64448. /. 6561.) *. k3.(i))
      +. (h *. (-212. /. 729.) *. k4.(i))
  done;
  f tmp k5;
  for i = 0 to n - 1 do
    tmp.(i) <-
      y.(i)
      +. (h *. (9017. /. 3168.) *. k1.(i))
      +. (h *. (-355. /. 33.) *. k2.(i))
      +. (h *. (46732. /. 5247.) *. k3.(i))
      +. (h *. (49. /. 176.) *. k4.(i))
      +. (h *. (-5103. /. 18656.) *. k5.(i))
  done;
  f tmp k6;
  for i = 0 to n - 1 do
    dst.(i) <-
      y.(i)
      +. (h
          *. ((35. /. 384. *. k1.(i))
              +. (500. /. 1113. *. k3.(i))
              +. (125. /. 192. *. k4.(i))
              +. (-2187. /. 6784. *. k5.(i))
              +. (11. /. 84. *. k6.(i))))
  done;
  f dst k7;
  err.(0) <- 0.;
  for i = 0 to n - 1 do
    let y4i =
      y.(i)
      +. (h
          *. ((5179. /. 57600. *. k1.(i))
              +. (7571. /. 16695. *. k3.(i))
              +. (393. /. 640. *. k4.(i))
              +. (-92097. /. 339200. *. k5.(i))
              +. (187. /. 2100. *. k6.(i))
              +. (1. /. 40. *. k7.(i))))
    in
    err.(0) <- Float.max err.(0) (Float.abs (dst.(i) -. y4i))
  done

let dopri5_auto_into ws f y h dst err =
  ws.dhp.(0) <- h;
  dopri5_auto_core ws f y dst err

let solve_adaptive ?(rtol = 1e-8) ?(atol = 1e-10) ?h0 ?(h_min = 1e-14)
    ?h_max ?(max_steps = 2_000_000) ?(events = []) ?monitor ~t_end f ~t0 ~y0 =
  let span = t_end -. t0 in
  if span <= 0. then invalid_arg "Ode.solve_adaptive: t_end <= t0";
  let h_max = match h_max with Some h -> h | None -> span in
  let h_init = match h0 with Some h -> h | None -> span /. 100. in
  let budget = ref max_steps in
  let single t y h =
    let y', _ = dopri5_step f t y h in
    y'
  in
  let h_suggest = ref (Float.min h_init h_max) in
  let next_h t y h_try =
    decr budget;
    if !budget <= 0 then failwith "Ode.solve_adaptive: max_steps exhausted";
    let h_try = Float.min h_try !h_suggest in
    let h_try = Float.max h_try h_min in
    let y', err = dopri5_step f t y h_try in
    let scale = ref atol in
    Array.iteri
      (fun i yi ->
        scale :=
          Float.max !scale (rtol *. Float.max (Float.abs yi) (Float.abs y'.(i))))
      y;
    let ratio = err /. !scale in
    (* a wildly oversized trial step can overflow the stage values and
       produce a NaN error estimate; treat it as an infinitely bad step so
       the controller shrinks instead of propagating the NaN *)
    let ratio = if Float.is_finite ratio then ratio else infinity in
    if ratio <= 1. || h_try <= h_min *. 1.0001 then begin
      let grow =
        if ratio <= 0. then 5. else Float.min 5. (0.9 *. (ratio ** -0.2))
      in
      h_suggest := Float.min h_max (h_try *. Float.max 1. grow);
      (h_try, !h_suggest, true)
    end
    else begin
      let shrink = Float.max 0.1 (0.9 *. (ratio ** -0.25)) in
      let h_new = Float.max h_min (h_try *. shrink) in
      if h_new <= h_min && h_try <= h_min *. 1.0001 then
        failwith "Ode.solve_adaptive: step size underflow";
      h_suggest := h_new;
      (h_try, h_new, false)
    end
  in
  run_driver ~single ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

(* [solve_adaptive] over an in-place field. The step-control logic, the
   trial/accept evaluation sequence and every arithmetic expression
   mirror [solve_adaptive] exactly (including evaluating the stepper
   once for the error estimate and once for the accepted state — the
   field is called the same number of times in the same order, which
   figure code that counts RHS evaluations relies on), so the solution
   is bit-for-bit identical. What changes is allocation: the RK stages
   live in a reused workspace and event localization reuses one scratch
   state, so the only per-step allocations are the recorded trajectory
   point and the accepted-state array the driver stores. *)
let solve_adaptive_into ?(rtol = 1e-8) ?(atol = 1e-10) ?h0 ?(h_min = 1e-14)
    ?h_max ?(max_steps = 2_000_000) ?(events = []) ?monitor ~t_end
    (f : field_into) ~t0 ~y0 =
  let span = t_end -. t0 in
  if span <= 0. then invalid_arg "Ode.solve_adaptive_into: t_end <= t0";
  let h_max = match h_max with Some h -> h | None -> span in
  let h_init = match h0 with Some h -> h | None -> span /. 100. in
  let budget = ref max_steps in
  let dim = Array.length y0 in
  let ws = dopri_workspace dim in
  let err_acc = [| 0. |] in
  let trial = Array.make dim 0. in
  let single t y h =
    let dst = Array.make dim 0. in
    dopri5_into ws f t y h dst err_acc;
    dst
  in
  let single_into t y h dst = dopri5_into ws f t y h dst err_acc in
  let h_suggest = ref (Float.min h_init h_max) in
  let next_h t y h_try =
    decr budget;
    if !budget <= 0 then failwith "Ode.solve_adaptive_into: max_steps exhausted";
    let h_try = Float.min h_try !h_suggest in
    let h_try = Float.max h_try h_min in
    dopri5_into ws f t y h_try trial err_acc;
    let err = err_acc.(0) in
    let scale = ref atol in
    Array.iteri
      (fun i yi ->
        scale :=
          Float.max !scale
            (rtol *. Float.max (Float.abs yi) (Float.abs trial.(i))))
      y;
    let ratio = err /. !scale in
    let ratio = if Float.is_finite ratio then ratio else infinity in
    if ratio <= 1. || h_try <= h_min *. 1.0001 then begin
      let grow =
        if ratio <= 0. then 5. else Float.min 5. (0.9 *. (ratio ** -0.2))
      in
      h_suggest := Float.min h_max (h_try *. Float.max 1. grow);
      (h_try, !h_suggest, true)
    end
    else begin
      let shrink = Float.max 0.1 (0.9 *. (ratio ** -0.25)) in
      let h_new = Float.max h_min (h_try *. shrink) in
      if h_new <= h_min && h_try <= h_min *. 1.0001 then
        failwith "Ode.solve_adaptive_into: step size underflow";
      h_suggest := h_new;
      (h_try, h_new, false)
    end
  in
  run_driver ~single ~single_into ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

(* [solve_adaptive_into] for autonomous fields — the hot-loop form. Same
   bit-for-bit guarantee (the controller expressions and evaluation
   sequence are copied verbatim, with the accumulators moved from [ref]
   cells into 1-slot float arrays, which changes no value), but no float
   crosses a call boundary on the per-step path: the stepper reads h
   from the workspace mailbox, the field takes no time argument, and
   the step-size suggestion lives in a float-array slot instead of a
   boxing [ref]. *)
let solve_adaptive_auto_into ?(rtol = 1e-8) ?(atol = 1e-10) ?h0
    ?(h_min = 1e-14) ?h_max ?(max_steps = 2_000_000) ?(events = []) ?monitor
    ~t_end (f : field_auto) ~t0 ~y0 =
  let span = t_end -. t0 in
  if span <= 0. then invalid_arg "Ode.solve_adaptive_auto_into: t_end <= t0";
  let h_max = match h_max with Some h -> h | None -> span in
  let h_init = match h0 with Some h -> h | None -> span /. 100. in
  let budget = ref max_steps in
  let dim = Array.length y0 in
  let ws = dopri_workspace dim in
  let err_acc = [| 0. |] in
  let trial = Array.make dim 0. in
  let single _t y h =
    let dst = Array.make dim 0. in
    ws.dhp.(0) <- h;
    dopri5_auto_core ws f y dst err_acc;
    dst
  in
  let single_into _t y h dst =
    ws.dhp.(0) <- h;
    dopri5_auto_core ws f y dst err_acc
  in
  let h_suggest = [| Float.min h_init h_max |] in
  let scale_acc = [| 0. |] in
  let next_h _t y h_try =
    decr budget;
    if !budget <= 0 then
      failwith "Ode.solve_adaptive_auto_into: max_steps exhausted";
    let h_try = Float.min h_try h_suggest.(0) in
    let h_try = Float.max h_try h_min in
    ws.dhp.(0) <- h_try;
    dopri5_auto_core ws f y trial err_acc;
    let err = err_acc.(0) in
    scale_acc.(0) <- atol;
    for i = 0 to dim - 1 do
      scale_acc.(0) <-
        Float.max scale_acc.(0)
          (rtol *. Float.max (Float.abs y.(i)) (Float.abs trial.(i)))
    done;
    let ratio = err /. scale_acc.(0) in
    let ratio = if Float.is_finite ratio then ratio else infinity in
    if ratio <= 1. || h_try <= h_min *. 1.0001 then begin
      let grow =
        if ratio <= 0. then 5. else Float.min 5. (0.9 *. (ratio ** -0.2))
      in
      h_suggest.(0) <- Float.min h_max (h_try *. Float.max 1. grow);
      (h_try, h_suggest.(0), true)
    end
    else begin
      let shrink = Float.max 0.1 (0.9 *. (ratio ** -0.25)) in
      let h_new = Float.max h_min (h_try *. shrink) in
      if h_new <= h_min && h_try <= h_min *. 1.0001 then
        failwith "Ode.solve_adaptive_auto_into: step size underflow";
      h_suggest.(0) <- h_new;
      (h_try, h_new, false)
    end
  in
  run_driver ~single ~single_into ~next_h ~events ?monitor ~t_end ~t0 ~y0 ()

(* --- streaming adaptive scan --------------------------------------------- *)

type guard_spec = {
  gs_names : string array;
  gs_dirs : direction array;
  gs_terminal : bool array;
  gs_eval : float array -> float array -> unit;
}

type scan_result = {
  sc_occs : occurrence list;
  sc_terminated : occurrence option;
  sc_steps : int;
  sc_rejected : int;
}

let guards_of_events ~dim events =
  let evs = Array.of_list events in
  let n = Array.length evs in
  let y_view = Array.make dim 0. in
  {
    gs_names = Array.map (fun e -> e.ev_name) evs;
    gs_dirs = Array.map (fun e -> e.dir) evs;
    gs_terminal = Array.map (fun e -> e.terminal) evs;
    gs_eval =
      (fun pt dst ->
        Array.blit pt 1 y_view 0 dim;
        let t = pt.(0) in
        for e = 0 to n - 1 do
          dst.(e) <- evs.(e).guard t y_view
        done);
  }

let no_guards =
  {
    gs_names = [||];
    gs_dirs = [||];
    gs_terminal = [||];
    gs_eval = (fun _ _ -> ());
  }

(* [solve_adaptive_auto_into] without the recorded trajectory: the same
   controller expressions and evaluation sequence (each accepted point
   carries the same bits the recording driver would have stored), but
   every sample is handed to [on_point] through one reused
   [|t; y0; ...; y_{dim-1}|] buffer and then forgotten. No float
   crosses a call boundary on the per-step path — guards read the
   packed buffer, the bisection argument travels through a slot array,
   and the accepted state is blitted from the trial buffer (the core
   stepper is deterministic in (y, h), so skipping the recording
   driver's recomputation changes no bits). *)
let solve_adaptive_auto_scan ?(rtol = 1e-8) ?(atol = 1e-10) ?h0
    ?(h_min = 1e-14) ?h_max ?(max_steps = 2_000_000) ?(guards = no_guards)
    ?monitor ?(record_occs = true) ?on_event ?on_event_raw
    ~(on_point : float array -> unit) ~t_end (f : field_auto) ~t0 ~y0 =
  let span = t_end -. t0 in
  if span <= 0. then invalid_arg "Ode.solve_adaptive_auto_scan: t_end <= t0";
  let h_max = match h_max with Some h -> h | None -> span in
  let h_init = match h0 with Some h -> h | None -> span /. 100. in
  let budget = ref max_steps in
  let dim = Array.length y0 in
  let ws = dopri_workspace dim in
  let err_acc = [| 0. |] in
  let trial = Array.make dim 0. in
  let h_suggest = [| Float.min h_init h_max |] in
  let scale_acc = [| 0. |] in
  let gs = guards in
  let n_ev = Array.length gs.gs_names in
  let g_prev = Array.make (Stdlib.max 1 n_ev) 0. in
  let g_next = Array.make (Stdlib.max 1 n_ev) 0. in
  let g_loc = Array.make (Stdlib.max 1 n_ev) 0. in
  let pt = Array.make (dim + 1) 0. in
  let ya = ref (Array.copy y0) in
  let yb = ref (Array.make dim 0.) in
  let scratch = Array.make dim 0. in
  let tcur = [| t0 |] in
  let hcur = [| t_end -. t0 |] in
  (* bisection mailboxes: 0=lo 1=hi 2=flo 3=s-argument 4=phi-result
     5=h of the step under localization *)
  let bst = Array.make 6 0. in
  let bei = [| 0 |] in
  (* phi(s) of [localize_into]: step to fraction s of the current step,
     then evaluate the firing guard there. Argument and result travel
     through [bst] so no float is boxed per bisection iteration. *)
  let eval_phi () =
    let s = bst.(3) in
    let h = bst.(5) in
    ws.dhp.(0) <- s *. h;
    dopri5_auto_core ws f !ya scratch err_acc;
    pt.(0) <- tcur.(0) +. (s *. h);
    Array.blit scratch 0 pt 1 dim;
    gs.gs_eval pt g_loc;
    bst.(4) <- g_loc.(bei.(0))
  in
  let occs = ref [] in
  let terminated = ref None in
  let n_steps = ref 0 in
  let n_rejected = ref 0 in
  (* [fires] by index: same predicate as the shared [fires], but the
     guard values are read from the arrays here rather than passed as
     float arguments — a non-inlined float-argument call would box
     both floats on every step of every guard *)
  let fires_at e =
    let gp = g_prev.(e) and gn = g_next.(e) in
    if gp = 0. then false
    else
      match gs.gs_dirs.(e) with
      | Up -> gp < 0. && gn >= 0.
      | Down -> gp > 0. && gn <= 0.
      | Both -> gp *. gn <= 0. && gn <> gp
  in
  pt.(0) <- t0;
  Array.blit y0 0 pt 1 dim;
  if n_ev > 0 then gs.gs_eval pt g_prev;
  on_point pt;
  let continue_ = ref (t_end > t0) in
  while !continue_ do
    let remaining = t_end -. tcur.(0) in
    if remaining <= 1e-15 *. (1. +. Float.abs t_end) then continue_ := false
    else begin
      let h_try0 = Float.min hcur.(0) remaining in
      decr budget;
      if !budget <= 0 then
        failwith "Ode.solve_adaptive_auto_scan: max_steps exhausted";
      let h_try = Float.min h_try0 h_suggest.(0) in
      let h_try = Float.max h_try h_min in
      ws.dhp.(0) <- h_try;
      dopri5_auto_core ws f !ya trial err_acc;
      let err = err_acc.(0) in
      scale_acc.(0) <- atol;
      for i = 0 to dim - 1 do
        scale_acc.(0) <-
          Float.max scale_acc.(0)
            (rtol *. Float.max (Float.abs !ya.(i)) (Float.abs trial.(i)))
      done;
      let ratio = err /. scale_acc.(0) in
      let ratio = if Float.is_finite ratio then ratio else infinity in
      if ratio <= 1. || h_try <= h_min *. 1.0001 then begin
        let grow =
          if ratio <= 0. then 5. else Float.min 5. (0.9 *. (ratio ** -0.2))
        in
        h_suggest.(0) <- Float.min h_max (h_try *. Float.max 1. grow);
        incr n_steps;
        let h_acc = h_try in
        Array.blit trial 0 !yb 0 dim;
        let t_next = tcur.(0) +. h_acc in
        (match monitor with Some m -> m.on_step t_next h_acc | None -> ());
        if n_ev > 0 then begin
          pt.(0) <- t_next;
          Array.blit !yb 0 pt 1 dim;
          gs.gs_eval pt g_next
        end;
        let stop_here = ref None in
        for e = 0 to n_ev - 1 do
          if fires_at e then begin
            (* inline [localize_into]'s
               [Roots.bisect ~tol:1e-13 ~max_iter:100 phi 1e-15 1.]
               (No_bracket falls back to the end of the step) *)
            bst.(5) <- h_acc;
            bei.(0) <- e;
            bst.(3) <- 1e-15;
            eval_phi ();
            let fa = bst.(4) in
            bst.(3) <- 1.;
            eval_phi ();
            let fb = bst.(4) in
            let s_root =
              if fa = 0. then 1e-15
              else if fb = 0. then 1.
              else if fa *. fb > 0. then 1.
              else begin
                bst.(0) <- 1e-15;
                bst.(1) <- 1.;
                bst.(2) <- fa;
                let i = ref 0 in
                while bst.(1) -. bst.(0) > 1e-13 && !i < 100 do
                  incr i;
                  let mid = 0.5 *. (bst.(0) +. bst.(1)) in
                  bst.(3) <- mid;
                  eval_phi ();
                  let fm = bst.(4) in
                  if fm = 0. then begin
                    bst.(0) <- mid;
                    bst.(1) <- mid
                  end
                  else if bst.(2) *. fm < 0. then bst.(1) <- mid
                  else begin
                    bst.(0) <- mid;
                    bst.(2) <- fm
                  end
                done;
                0.5 *. (bst.(0) +. bst.(1))
              end
            in
            ws.dhp.(0) <- s_root *. h_acc;
            dopri5_auto_core ws f !ya scratch err_acc;
            let t_ev = tcur.(0) +. (s_root *. h_acc) in
            (match on_event_raw with
            | Some cb ->
                (* borrowed packed buffer, same protocol as [on_point];
                   [pt] is dead here until the next localization or
                   accepted step rewrites it *)
                pt.(0) <- t_ev;
                Array.blit scratch 0 pt 1 dim;
                cb e pt
            | None -> ());
            if record_occs || Option.is_some on_event || gs.gs_terminal.(e)
            then begin
              let oc =
                {
                  oc_name = gs.gs_names.(e);
                  oc_t = t_ev;
                  oc_y = Array.copy scratch;
                }
              in
              if record_occs then occs := oc :: !occs;
              (match on_event with Some cb -> cb oc | None -> ());
              if gs.gs_terminal.(e) then
                match !stop_here with
                | Some (prev_oc : occurrence) when prev_oc.oc_t <= t_ev -> ()
                | Some _ | None -> stop_here := Some oc
            end
          end
        done;
        match !stop_here with
        | Some oc ->
            terminated := Some oc;
            pt.(0) <- oc.oc_t;
            Array.blit oc.oc_y 0 pt 1 dim;
            on_point pt;
            continue_ := false
        | None ->
            tcur.(0) <- t_next;
            let tmp = !ya in
            ya := !yb;
            yb := tmp;
            pt.(0) <- t_next;
            Array.blit !ya 0 pt 1 dim;
            on_point pt;
            Array.blit g_next 0 g_prev 0 n_ev;
            hcur.(0) <- h_suggest.(0)
      end
      else begin
        let shrink = Float.max 0.1 (0.9 *. (ratio ** -0.25)) in
        let h_new = Float.max h_min (h_try *. shrink) in
        if h_new <= h_min && h_try <= h_min *. 1.0001 then
          failwith "Ode.solve_adaptive_auto_scan: step size underflow";
        h_suggest.(0) <- h_new;
        incr n_rejected;
        (match monitor with Some m -> m.on_reject tcur.(0) h_try0 | None -> ());
        hcur.(0) <- h_new
      end
    end
  done;
  {
    sc_occs = List.rev !occs;
    sc_terminated = !terminated;
    sc_steps = !n_steps;
    sc_rejected = !n_rejected;
  }

let state_at sol t =
  let n = Array.length sol.ts in
  assert (n > 0);
  if t <= sol.ts.(0) then Array.copy sol.ys.(0)
  else if t >= sol.ts.(n - 1) then Array.copy sol.ys.(n - 1)
  else begin
    (* binary search for the bracketing segment *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if sol.ts.(mid) <= t then lo := mid else hi := mid
    done;
    let t0 = sol.ts.(!lo) and t1 = sol.ts.(!hi) in
    let s = if t1 = t0 then 0. else (t -. t0) /. (t1 -. t0) in
    let y0 = sol.ys.(!lo) and y1 = sol.ys.(!hi) in
    Array.init (Array.length y0) (fun i -> y0.(i) +. (s *. (y1.(i) -. y0.(i))))
  end

let convergence_order m f ~t0 ~y0 ~t_end ~exact =
  let err h =
    let sol = solve_fixed ~method_:m ~h ~t_end f ~t0 ~y0 in
    let yn = sol.ys.(Array.length sol.ys - 1) in
    let ye = exact t_end in
    let e = ref 0. in
    Array.iteri (fun i v -> e := Float.max !e (Float.abs (v -. ye.(i)))) yn;
    !e
  in
  let h1 = (t_end -. t0) /. 64. in
  let e1 = err h1 and e2 = err (h1 /. 2.) in
  log (e1 /. e2) /. log 2.
