(** Fixed-bin histograms for simulation measurements (queue occupancy
    distributions, frame latency percentiles).

    Values outside the configured range are counted in saturating
    underflow/overflow bins so the total mass is never lost. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Raises [Invalid_argument] unless [lo < hi] and [bins >= 1]. *)

val add : t -> float -> unit
val add_weighted : t -> float -> float -> unit
(** [add_weighted h v w] adds mass [w] at value [v] (e.g. time-weighted
    queue occupancy). Raises [Invalid_argument] on negative weight. *)

val count : t -> float
(** Total recorded mass (including out-of-range). *)

val underflow : t -> float
val overflow : t -> float

val bin_count : t -> int
val bin_edges : t -> int -> float * float
(** Bounds of bin [i]; raises [Invalid_argument] out of range. *)

val bin_mass : t -> int -> float

val mean : t -> float
(** Mass-weighted mean of in-range samples (bin midpoints); NaN when
    empty. *)

val quantile : t -> float -> float
(** [quantile h p] with [p] in [0,1]: linear interpolation within the
    containing bin; counts underflow mass at [lo] and overflow at [hi].
    Raises [Invalid_argument] when empty or [p] out of range. *)

val to_series : t -> Series.t
(** Bin midpoints vs masses (for plotting). *)

val merge : t -> t -> t
(** Exact bin-wise sum of two histograms with identical geometry
    (same [lo], [hi] and bin count), including the underflow/overflow
    mass; raises [Invalid_argument] otherwise. Associative and
    commutative up to float summation order, which is why per-domain
    registries merged in input order are deterministic. *)

val copy : t -> t
(** Independent snapshot: further [add]s to either side do not affect
    the other. *)

val reset : t -> unit
