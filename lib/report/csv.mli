(** CSV output for the regenerated figure data.

    Every figure of the paper is emitted as a CSV file so the series can
    be re-plotted with any external tool; the ASCII renderings are only a
    terminal convenience. *)

val escape : string -> string
(** RFC-4180 quoting when the cell contains a comma, quote or newline. *)

val to_string : header:string list -> rows:string list list -> string
(** The full document as one string — header line, then one line per
    row, cells {!escape}d. [write] emits exactly these bytes, so
    in-memory consumers (the serve daemon's sweep payloads) match CSV
    files byte for byte. *)

val write : path:string -> header:string list -> rows:string list list -> unit
(** Raises [Sys_error] on IO failure. *)

val write_floats :
  ?fmt:(float -> string) ->
  path:string ->
  header:string list ->
  float list list ->
  unit

val write_series :
  path:string -> name:string -> Numerics.Series.t -> unit
(** Two columns [t,<name>]. *)

val write_columns :
  path:string -> header:string list -> cols:float array list -> unit
(** Column-major write; all columns must have equal length. *)
