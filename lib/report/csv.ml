let escape s =
  let needs_quote =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quote then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_string ~header ~rows =
  let buf = Buffer.create 256 in
  let emit row =
    Buffer.add_string buf (String.concat "," (List.map escape row));
    Buffer.add_char buf '\n'
  in
  emit header;
  List.iter emit rows;
  Buffer.contents buf

let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))

let write_floats ?(fmt = Printf.sprintf "%.9g") ~path ~header rows =
  write ~path ~header ~rows:(List.map (List.map fmt) rows)

let write_series ~path ~name (s : Numerics.Series.t) =
  let rows =
    List.init (Numerics.Series.length s) (fun i ->
        [ s.Numerics.Series.ts.(i); s.Numerics.Series.vs.(i) ])
  in
  write_floats ~path ~header:[ "t"; name ] rows

let write_columns ~path ~header ~cols =
  match cols with
  | [] -> write ~path ~header ~rows:[]
  | first :: rest ->
      let n = Array.length first in
      List.iter
        (fun c ->
          if Array.length c <> n then
            invalid_arg "Csv.write_columns: ragged columns")
        rest;
      let rows =
        List.init n (fun i -> List.map (fun c -> c.(i)) cols)
      in
      write_floats ~path ~header rows
