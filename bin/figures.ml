(* figures — regenerate every paper figure/table; prints the text
   reproductions and writes the data series as CSVs.

   Usage: figures [--out DIR] [ID ...]   (no IDs = all)

   With --adaptive and/or --dense the tool switches to region-tracing
   mode: instead of rasterizing, the strong-stability safe region in
   (q, r) and the stability map in the normalized-gain plane (a, b) are
   traced adaptively (quadtree + marching squares, boundary-length
   cost) and/or evaluated on the dense corner lattice at the matching
   resolution (the baseline). Giving both prints the savings ratio. *)

open Cmdliner

let ensure_dir d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then (
    try Sys.mkdir d 0o755 with Sys_error _ -> ())

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* ---------- region-tracing mode (--adaptive / --dense) ---------- *)

let report_adaptive ~label ~out (t : Refine.Engine.t) =
  print_string (Refine.Engine.render t);
  Printf.printf
    "%s adaptive: %d boundary cells, %d segments, %d verdict evaluations\n"
    label
    (Array.length t.Refine.Engine.boundary_cells)
    (Array.length t.Refine.Engine.segments)
    t.Refine.Engine.evaluations;
  let path = Filename.concat out (label ^ "_boundary.csv") in
  with_out path (fun oc -> output_string oc (Refine.Engine.segments_csv t));
  Printf.printf "wrote %s\n" path;
  t.Refine.Engine.evaluations

let report_dense ~label dom ~n verdicts =
  let cells, evals = Refine.Engine.dense_mixed_cells dom ~nx:n ~ny:n verdicts in
  Printf.printf "%s dense %dx%d lattice: %d mixed cells, %d verdict evaluations\n"
    label n n (Array.length cells) evals;
  evals

let report_ratio label = function
  | Some adaptive, Some dense ->
      Printf.printf "%s: adaptive / dense = %d / %d evaluations (%.1fx fewer)\n"
        label adaptive dense
        (float_of_int dense /. float_of_int (max 1 adaptive))
  | _ -> ()

let region_run out adaptive dense coarse levels jobs store_spec =
  ensure_dir out;
  let p = Fluid.Params.default in
  let cache = Cli_common.open_store store_spec in
  let store =
    Option.map
      (fun c ->
        let lookup, save = Store.Sweep.verdict_memo c in
        if store_spec.Cli_common.no_cache then ((fun _ -> None), save)
        else (lookup, save))
      cache
  in
  let n = coarse * (1 lsl levels) in
  (* safe region in the (q, r) initial-state plane *)
  let a_safe =
    if adaptive then
      Some
        (report_adaptive ~label:"safe_region" ~out
           (Refine.Safe_plane.trace ?jobs ?store ~coarse:(coarse, coarse)
              ~levels p))
    else None
  in
  let d_safe =
    if dense then
      Some
        (report_dense ~label:"safe_region" (Refine.Safe_plane.domain p) ~n
           (Refine.Safe_plane.verdicts ?jobs p))
    else None
  in
  report_ratio "safe_region" (a_safe, d_safe);
  (* stability map in the normalized-gain plane (a, b) around the
     paper's example point *)
  let apply = Refine.Param_plane.gains p in
  let dom =
    {
      Refine.Engine.x0 = 0.25 *. Fluid.Params.a p;
      x1 = 8. *. Fluid.Params.a p;
      y0 = 0.25 *. Fluid.Params.b p;
      y1 = 8. *. Fluid.Params.b p;
    }
  in
  let a_gains =
    if adaptive then
      Some
        (report_adaptive ~label:"gain_plane" ~out
           (Refine.Param_plane.trace ?jobs ?store ~coarse:(coarse, coarse)
              ~levels apply dom))
    else None
  in
  let d_gains =
    if dense then
      Some
        (report_dense ~label:"gain_plane" dom ~n
           (Refine.Param_plane.verdicts ?jobs apply))
    else None
  in
  report_ratio "gain_plane" (a_gains, d_gains);
  Cli_common.report_store store_spec cache;
  0

(* ---------- figure regeneration (default mode) ---------- *)

let run out ids adaptive dense coarse levels jobs store_spec =
  if adaptive || dense then
    region_run out adaptive dense coarse levels jobs store_spec
  else begin
    let all = Dcecc_core.Figures.all ~out () in
    let selected =
      match ids with
      | [] -> all
      | ids ->
          List.filter_map
            (fun id ->
              match List.assoc_opt id all with
              | Some text -> Some (id, text)
              | None ->
                  Printf.eprintf "unknown figure id: %s\n" id;
                  None)
            ids
    in
    List.iter
      (fun (id, text) ->
        Printf.printf "############ %s ############\n%s\n" id text)
      selected;
    Printf.printf "CSV data written to %s\n" out;
    if List.length selected = List.length ids || ids = [] then 0 else 1
  end

let cmd =
  let out =
    Arg.(value & opt string "out" & info [ "out" ] ~docv:"DIR" ~doc:"CSV output directory.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Trace the safe-region and gain-plane stability boundaries \
             adaptively (quadtree + marching squares; verdict cost scales \
             with boundary length, not raster area) instead of \
             regenerating the figures. Writes the traced boundary \
             polylines as CSVs under $(b,--out).")
  in
  let dense =
    Arg.(
      value & flag
      & info [ "dense" ]
          ~doc:
            "Evaluate the dense corner lattice at the resolution matching \
             $(b,--coarse)/$(b,--levels) (the baseline the adaptive path \
             replaces). Combine with $(b,--adaptive) to print the savings \
             ratio.")
  in
  let coarse =
    Arg.(
      value & opt Cli_common.pos_int 8
      & info [ "coarse" ] ~docv:"N"
          ~doc:"Region mode: coarse seeding grid (N x N cells).")
  in
  let levels =
    Arg.(
      value & opt Cli_common.pos_int 3
      & info [ "levels" ] ~docv:"L"
          ~doc:
            "Region mode: subdivision levels (fine lattice = coarse * 2^L).")
  in
  let doc =
    "Regenerate the figures and tables of 'Phase Plane Analysis of \
     Congestion Control in Data Center Ethernet Networks' (ICDCS 2010)."
  in
  Cmd.v (Cmd.info "figures" ~doc)
    Term.(
      const run $ out $ ids $ adaptive $ dense $ coarse $ levels
      $ Cli_common.jobs_term $ Cli_common.store_term)

let () = exit (Cmd.eval' cmd)
