(* bcn_serve — the simulation-as-a-service daemon and its client.

   Examples:
     bcn_serve serve --socket /tmp/bcn.sock --store results &
     bcn_serve request scenario.json --socket /tmp/bcn.sock
     bcn_serve stats --socket /tmp/bcn.sock
     bcn_serve shutdown --socket /tmp/bcn.sock
     bcn_serve smoke                      # CI: dedup + warm + shutdown

   The request file may be either a canonical Simnet.Scenario document
   (as produced by Scenario.encode) or a full protocol request object
   carrying a "kind" field — see Serve.Protocol for the grammar. Warm
   requests are answered from the store without simulating; identical
   concurrent requests share one computation; responses are
   byte-identical to the matching CLI tool's output. *)

open Cmdliner

let socket_term =
  Arg.(
    value
    & opt string "bcn_serve.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

(* ---------- serve ---------- *)

let serve_run socket store jobs max_inflight verbose =
  let base = Serve.Daemon.default_config ~socket_path:socket in
  Serve.Daemon.run
    {
      base with
      Serve.Daemon.store_dir = store;
      jobs = (match jobs with Some j -> j | None -> base.Serve.Daemon.jobs);
      max_inflight;
      log = verbose;
    };
  0

let serve_cmd =
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result store backing the daemon: warm \
             requests are answered from $(docv) without simulating, and \
             every completed point persists immediately, so a killed \
             daemon resumes warm.")
  in
  let max_inflight =
    Arg.(
      value
      & opt Cli_common.pos_int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Bound on distinct queued-or-running requests; cold requests \
             beyond it are refused with a busy error.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose" ] ~doc:"Print one lifecycle line per event.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the daemon: accept scenario/sweep/margin/region requests \
          over a Unix-domain socket, answer warm ones from the store, \
          deduplicate identical in-flight work, stream progress to \
          subscribers.")
    Term.(
      const serve_run $ socket_term $ store $ Cli_common.jobs_term
      $ max_inflight $ verbose)

(* ---------- request ---------- *)

let read_file = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_bin path In_channel.input_all

let rec reemit j =
  let open Simnet.Json_read in
  match j with
  | Null -> "null"
  | Jbool b -> Telemetry.Json.bool b
  | Num f -> Telemetry.Json.float_full f
  | Jstr s -> Telemetry.Json.str s
  | Jarr xs -> Telemetry.Json.arr (List.map reemit xs)
  | Jobj fields ->
      Telemetry.Json.obj (List.map (fun (k, v) -> (k, reemit v)) fields)

(* A scenario document is itself a valid request body: wrap it as a
   run. A document carrying "kind" is a full protocol request; its
   "id" (if any) is replaced by ours. *)
let command_of_document src =
  let open Simnet.Json_read in
  match parse src with
  | exception Bad msg -> invalid_arg ("request file: " ^ msg)
  | j -> (
      let o = as_obj "request" j in
      match field o "kind" with
      | None -> (
          match Simnet.Scenario.of_json j with
          | Ok s -> Serve.Protocol.Compute (Serve.Tasks.Run s)
          | Error msg -> invalid_arg ("request file: " ^ msg))
      | Some _ -> (
          let line =
            Telemetry.Json.obj
              (("id", Telemetry.Json.int 1)
              :: List.filter_map
                   (fun (k, v) -> if k = "id" then None else Some (k, reemit v))
                   o)
          in
          match Serve.Protocol.parse_request line with
          | Ok { Serve.Protocol.command; _ } -> command
          | Error msg -> invalid_arg ("request file: " ^ msg)))

let request_run socket file =
  let command = command_of_document (read_file file) in
  let c = Serve.Client.connect ~path:socket () in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      match Serve.Client.rpc c ~id:1 command with
      | Serve.Protocol.Result { payload; _ } ->
          print_string payload;
          0
      | Serve.Protocol.Error { message; _ } ->
          Printf.eprintf "error: %s\n" message;
          1
      | _ ->
          Printf.eprintf "error: unexpected response\n";
          1)

let request_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Request document: a canonical scenario JSON (run it) or a \
             protocol request object with a \"kind\" field; \"-\" reads \
             standard input.")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request to a running daemon and print the payload \
          (byte-identical to the matching CLI tool's output).")
    Term.(const request_run $ socket_term $ file)

(* ---------- stats / shutdown ---------- *)

let stats_run socket =
  let c = Serve.Client.connect ~path:socket () in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      let metrics = Serve.Client.stats c ~id:1 in
      print_endline
        (Telemetry.Json.obj
           (List.map
              (fun (k, v) -> (k, Telemetry.Json.float_full v))
              metrics));
      0)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print a running daemon's metrics snapshot (store.* counters, \
          queue depth, executed computations) as JSON.")
    Term.(const stats_run $ socket_term)

let shutdown_run socket =
  let c = Serve.Client.connect ~path:socket () in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      Serve.Client.shutdown c ~id:1;
      print_endline "daemon drained and exited";
      0)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:
         "Gracefully stop a running daemon: admission closes, in-flight \
          work drains and persists, then the daemon exits.")
    Term.(const shutdown_run $ socket_term)

(* ---------- smoke (CI) ---------- *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "FAIL: %s\n" s;
      exit 1)
    fmt

let metric name m =
  match List.assoc_opt name m with
  | Some v -> int_of_float v
  | None -> fail "stats: missing metric %s" name

let fork_daemon ~socket ~store ~jobs =
  match Unix.fork () with
  | 0 ->
      (try
         Serve.Daemon.run
           {
             Serve.Daemon.socket_path = socket;
             store_dir = Some store;
             jobs;
             max_inflight = 16;
             log = false;
           }
       with e ->
         Printf.eprintf "daemon died: %s\n%!" (Printexc.to_string e);
         Unix._exit 1);
      Unix._exit 0
  | pid -> pid

let wait_exit pid =
  let rec go tries =
    if tries = 0 then fail "daemon did not exit within the timeout";
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
        Unix.sleepf 0.1;
        go (tries - 1)
    | _, Unix.WEXITED 0 -> ()
    | _, _ -> fail "daemon exited abnormally"
  in
  go 100

(* End-to-end check of the daemon on a throwaway socket + store:
     1. a cold request's payload is byte-identical to direct execution,
        and costs exactly one computation;
     2. the warm repeat simulates nothing: zero miss/executed delta,
        answered from the store;
     3. two identical cold requests written back-to-back share one
        computation (the second is flagged dedup);
     4. graceful shutdown drains, replies bye, exits 0 and unlinks the
        socket within a timeout. *)
let smoke_run () =
  ignore (Unix.alarm 300);
  let dir = Filename.temp_dir "dcecc-serve-smoke" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let socket = Filename.concat dir "serve.sock" in
      let store = Filename.concat dir "store" in
      let pid = fork_daemon ~socket ~store ~jobs:1 in
      let c = Serve.Client.connect ~path:socket () in
      (* 1. cold request: byte-identity + one computation *)
      let req =
        Serve.Tasks.Sweep
          {
            param = "gi";
            lo = 1.;
            hi = 4.;
            steps = 3;
            log_scale = false;
            buffer = 15e6;
          }
      in
      let p1 =
        match Serve.Client.request c ~id:1 req with
        | Serve.Protocol.Result { payload; warm = false; _ } -> payload
        | Serve.Protocol.Result _ -> fail "first request answered warm"
        | Serve.Protocol.Error { message; _ } ->
            fail "cold request failed: %s" message
        | _ -> fail "cold request: unexpected response"
      in
      if p1 <> Serve.Tasks.execute req then
        fail "daemon payload differs from direct execution";
      let m1 = Serve.Client.stats c ~id:2 in
      if metric "serve.executed" m1 <> 1 then
        fail "cold request executed %d computations (expected 1)"
          (metric "serve.executed" m1);
      Printf.printf "cold ok (payload = direct execution, 1 computation)\n";
      (* 2. warm repeat: zero simulations *)
      (match Serve.Client.request c ~id:3 req with
      | Serve.Protocol.Result { payload; warm = true; _ } ->
          if payload <> p1 then fail "warm payload differs from cold"
      | Serve.Protocol.Result _ -> fail "repeat request was not warm"
      | _ -> fail "warm request: unexpected response");
      let m2 = Serve.Client.stats c ~id:4 in
      if metric "serve.executed" m2 <> 1 then
        fail "warm request recomputed (executed %d)"
          (metric "serve.executed" m2);
      if metric "store.misses" m2 <> metric "store.misses" m1 then
        fail "warm request missed the store";
      if metric "conn.warm" m2 <> 1 then
        fail "conn.warm = %d (expected 1)" (metric "conn.warm" m2);
      Printf.printf "warm ok (0 simulations, byte-identical payload)\n";
      (* 3. in-flight dedup: two identical cold requests, one write *)
      let req2 =
        Serve.Tasks.Sweep
          {
            param = "gd";
            lo = 4e-3;
            hi = 16e-3;
            steps = 3;
            log_scale = false;
            buffer = 15e6;
          }
      in
      let cmd = Serve.Protocol.Compute req2 in
      Serve.Client.send_raw c
        (Serve.Protocol.encode_request ~id:5 cmd
        ^ Serve.Protocol.encode_request ~id:6 cmd);
      let rec read_result id =
        match Serve.Client.next c with
        | Serve.Protocol.Result { id = rid; warm; dedup; payload }
          when rid = id ->
            (warm, dedup, payload)
        | Serve.Protocol.Error { id = rid; message } when rid = id ->
            fail "request %d failed: %s" id message
        | _ -> read_result id
      in
      let w5, d5, p5 = read_result 5 in
      let w6, d6, p6 = read_result 6 in
      if w5 || w6 then fail "dedup pair answered warm; wanted in-flight join";
      if d5 then fail "first of the dedup pair was flagged dedup";
      if not d6 then fail "second identical request did not join in flight";
      if p5 <> p6 then fail "dedup pair payloads differ";
      if p5 <> Serve.Tasks.execute req2 then
        fail "dedup payload differs from direct execution";
      let m3 = Serve.Client.stats c ~id:7 in
      if metric "serve.executed" m3 <> 2 then
        fail "dedup pair executed %d computations total (expected 2)"
          (metric "serve.executed" m3);
      if metric "conn.joined" m3 <> 1 then
        fail "conn.joined = %d (expected 1)" (metric "conn.joined" m3);
      Printf.printf
        "dedup ok (2 identical cold requests, 1 computation, dedup flagged)\n";
      (* 4. graceful shutdown *)
      Serve.Client.shutdown c ~id:8;
      Serve.Client.close c;
      wait_exit pid;
      if Sys.file_exists socket then
        fail "socket file survived graceful shutdown";
      Printf.printf "shutdown ok (drained, exit 0, socket unlinked)\n";
      Printf.printf "serve smoke ok\n";
      0)

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "CI check: cold payloads match direct execution byte for byte, \
          warm repeats simulate nothing, identical concurrent requests \
          share one computation, and graceful shutdown drains and exits \
          cleanly.")
    Term.(const smoke_run $ const ())

let cmd =
  Cmd.group
    (Cmd.info "bcn_serve"
       ~doc:
         "Simulation-as-a-service: a daemon answering scenario, sweep, \
          margin and region requests with warm-store answers, in-flight \
          dedup and streamed telemetry.")
    [ serve_cmd; request_cmd; stats_cmd; shutdown_cmd; smoke_cmd ]

let () = exit (Cmd.eval' cmd)
