(* bcn_faults — strong-stability resilience margins under injected faults.

   Examples:
     bcn_faults sweep                         # Case 1-3 x all axes
     bcn_faults sweep --axes bcn-loss --iters 10 --csv margins.csv
     bcn_faults sweep --jobs 4 --json margins.json
     bcn_faults smoke                         # CI: overhead + exactness

   The margin table is deterministic: byte-identical CSV/JSON for any
   --jobs value, and reproducible from the --seed alone. *)

open Cmdliner

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* ---------- sweep ---------- *)

(* axis vocabulary shared with the daemon's margin requests *)
let axis_of_name = Serve.Tasks.axis_of_name

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let resilience_memo store_spec cache =
  Option.map
    (fun c ->
      let m = Store.Sweep.resilience_memo c in
      if store_spec.Cli_common.no_cache then
        (* recompute every probe but still refresh the stored entries *)
        { m with Faultnet.Resilience.lookup = (fun _ -> None) }
      else m)
    cache

(* --set NAME=VALUE: one entry of the shared parameter-axis registry,
   resolved eagerly so typos fail before any simulation runs *)
let parse_override s =
  match String.index_opt s '=' with
  | None -> invalid_arg (Printf.sprintf "--set %s: expected NAME=VALUE" s)
  | Some i ->
      let name = String.trim (String.sub s 0 i) in
      let raw = String.sub s (i + 1) (String.length s - i - 1) in
      let v =
        try float_of_string (String.trim raw)
        with _ ->
          invalid_arg (Printf.sprintf "--set %s: %s is not a number" name raw)
      in
      ignore (Serve.Tasks.find_param name);
      (name, v)

let apply_overrides overrides (sc : Faultnet.Resilience.scenario) =
  let scen =
    List.fold_left
      (fun scen (name, v) ->
        match (Serve.Tasks.find_param name).Serve.Tasks.target with
        | Serve.Tasks.Fluid_param _ ->
            Serve.Tasks.apply_scenario_param scen name v
        | Serve.Tasks.Model_param _ -> (
            (* a model knob lands only on the cases running that model;
               the other rows keep their stock settings, mirroring how
               unsupported fault axes are dropped per row *)
            try Serve.Tasks.apply_scenario_param scen name v
            with Invalid_argument _ -> scen))
      sc.Faultnet.Resilience.scen overrides
  in
  (* re-validate through the front door rather than patching the record *)
  Faultnet.Resilience.of_scenario
    ~transient:sc.Faultnet.Resilience.transient
    ~underflow_frac:sc.Faultnet.Resilience.underflow_frac
    ~label:sc.Faultnet.Resilience.label scen

let sweep_run axes_str flap_period flap_duty t_end transient iters seed jobs
    adaptive dense scan_n protocols set_strs csv json store_spec =
  if adaptive && dense then
    invalid_arg "--adaptive and --dense are mutually exclusive";
  let axes =
    List.map (axis_of_name ~flap_period ~flap_duty) (split_commas axes_str)
  in
  if axes = [] then invalid_arg "--axes must name at least one axis";
  let overrides = List.map parse_override set_strs in
  let cache = Cli_common.open_store store_spec in
  let memo = resilience_memo store_spec cache in
  let scenarios =
    if protocols then Faultnet.Resilience.protocol_cases ~t_end ?transient ()
    else Faultnet.Resilience.paper_cases ~t_end ?transient ()
  in
  let scenarios =
    if overrides = [] then scenarios
    else List.map (apply_overrides overrides) scenarios
  in
  (* With --protocols, an axis a model cannot physically express (e.g.
     capacity flaps on switch-less E2CM/FERA) is dropped for that row —
     the generic [supports] predicate decides, not per-protocol code. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun sc ->
           List.map
             (fun ax -> (sc, ax))
             (if protocols then
                List.filter (Faultnet.Resilience.supports sc) axes
              else axes))
         scenarios)
  in
  let margins =
    if dense then
      (* the baseline bisection replaces: walk every severity step *)
      Array.map
        (fun (sc, ax) -> Faultnet.Resilience.scan ~n:scan_n ?memo ~seed sc ax)
        cells
    else Faultnet.Resilience.sweep_cells ?jobs ?iters ?memo ~seed cells
  in
  Report.Table.print
    ~headers:[ "scenario"; "axis"; "margin"; "ceiling"; "violation"; "runs" ]
    ~rows:
      (Array.to_list
         (Array.map
            (fun (m : Faultnet.Resilience.margin) ->
              [
                m.scenario;
                m.axis;
                Printf.sprintf "%.4f" m.margin;
                Printf.sprintf "%.4f" m.ceiling;
                (match m.violation with
                | Some v -> Faultnet.Resilience.violation_name v
                | None -> "none");
                string_of_int m.evaluations;
              ])
            margins));
  (match csv with
  | Some path ->
      with_out path (fun oc ->
          output_string oc (Faultnet.Resilience.to_csv margins));
      Printf.printf "wrote %s\n" path
  | None -> ());
  (match json with
  | Some path ->
      with_out path (fun oc ->
          output_string oc (Faultnet.Resilience.to_json margins));
      Printf.printf "wrote %s\n" path
  | None -> ());
  Cli_common.report_store store_spec cache;
  0

(* ---------- plane ---------- *)

let plane_run axis_x axis_y flap_period flap_duty t_end transient seed jobs
    coarse levels edge_iters dense csv store_spec =
  let ax = axis_of_name ~flap_period ~flap_duty axis_x in
  let ay = axis_of_name ~flap_period ~flap_duty axis_y in
  let cache = Cli_common.open_store store_spec in
  let memo = resilience_memo store_spec cache in
  let sc = List.hd (Faultnet.Resilience.paper_cases ~t_end ?transient ()) in
  let t =
    Refine.Fault_plane.trace ?memo ?jobs ~coarse:(coarse, coarse) ~levels
      ~edge_iters ~seed sc ax ay
  in
  print_string (Refine.Engine.render t);
  Printf.printf
    "%s x %s plane (%s): %d boundary cells, %d segments, %d probe runs\n"
    (Faultnet.Resilience.axis_name ax)
    (Faultnet.Resilience.axis_name ay)
    sc.Faultnet.Resilience.label
    (Array.length t.Refine.Engine.boundary_cells)
    (Array.length t.Refine.Engine.segments)
    t.Refine.Engine.evaluations;
  if dense then begin
    let n = coarse * (1 lsl levels) in
    let s0 = Faultnet.Resilience.run_summary ?memo sc None in
    let cells, evals =
      Refine.Engine.dense_mixed_cells t.Refine.Engine.dom ~nx:n ~ny:n
        (Refine.Fault_plane.verdicts ?memo ?jobs ~seed
           ~baseline_utilization:s0.Faultnet.Resilience.utilization sc ax ay)
    in
    Printf.printf
      "dense %dx%d lattice: %d mixed cells, %d probe runs (adaptive %.1fx \
       fewer)\n"
      n n (Array.length cells) evals
      (float_of_int evals /. float_of_int (max 1 t.Refine.Engine.evaluations))
  end;
  (match csv with
  | Some path ->
      with_out path (fun oc -> output_string oc (Refine.Engine.segments_csv t));
      Printf.printf "wrote %s\n" path
  | None -> ());
  Cli_common.report_store store_spec cache;
  0

(* ---------- smoke (CI) ---------- *)

(* A single feeder paces pool-allocated frames through a BCN-enabled
   switch whose control output (optionally) runs through an injector
   channel into a releasing sink. Mirrors the bench forwarding harness,
   plus the interposition layer; returns minor words per data frame
   after warmup. The switch's own BCN emission costs ~2 words per
   control frame (a boxed-float store, which predates the injector), so
   the injector's cost is asserted as the {e difference} between the
   wrapped and bare measurements of the same scenario. *)
let injected_forwarding_words ~plan ~frames () =
  let params = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
  let pool = Simnet.Packet.Pool.create () in
  let e = Simnet.Engine.create () in
  let cfg =
    {
      (Simnet.Switch.default_config params ~cpid:1) with
      Simnet.Switch.enable_pause = false;
      pool = Some pool;
    }
  in
  let release _e pkt = Simnet.Packet.Pool.release pool pkt in
  let inj = Option.map Faultnet.Injector.create plan in
  let control_out =
    match inj with
    | None -> release
    | Some inj ->
        let chan = Faultnet.Injector.channel inj in
        fun e pkt -> chan e pkt ~deliver:release ~drop:release
  in
  let sw = Simnet.Switch.create cfg ~control_out in
  Simnet.Switch.set_forward sw release;
  let gap =
    1.05 *. float_of_int Simnet.Packet.data_frame_bits
    /. cfg.Simnet.Switch.capacity
  in
  let seq = ref 0 in
  let rec feed e =
    let pkt =
      Simnet.Packet.Pool.alloc_data pool ~seq:!seq ~now:(Simnet.Engine.now e)
        ~flow:0 ~rrt:None
    in
    incr seq;
    Simnet.Switch.receive sw e pkt;
    Simnet.Engine.schedule e ~delay:gap feed
  in
  Simnet.Engine.schedule e ~delay:0. feed;
  let warm = 2048 in
  Simnet.Engine.run ~until:(float_of_int warm *. gap) e;
  let n0 = !seq in
  let w0 = Gc.minor_words () in
  Simnet.Engine.run ~until:(float_of_int (warm + frames) *. gap) e;
  let dw = Gc.minor_words () -. w0 in
  (dw /. float_of_int (!seq - n0), inj)

let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FAIL: %s\n" s; exit 1) fmt

let smoke_run () =
  (* 1. Zero overhead: relative to the bare switch, an installed
     injector must add ~0 minor words per frame — whether the plan is
     empty or a pure loss plan (classification + RNG draw, no
     allocation on either path). *)
  let words_bare, _ = injected_forwarding_words ~plan:None ~frames:20_000 () in
  let words_none, _ =
    injected_forwarding_words ~plan:(Some Faultnet.Plan.none) ~frames:20_000 ()
  in
  Printf.printf
    "forwarding: bare %.4f, + empty-plan injector %.4f minor words/frame\n"
    words_bare words_none;
  if words_none -. words_bare > 0.01 then
    fail "empty-plan injector adds %.4f words/frame (expected ~0)"
      (words_none -. words_bare);
  let loss_plan =
    Faultnet.Plan.with_bcn_loss
      ~pos:(Faultnet.Plan.Bernoulli 0.5)
      ~neg:(Faultnet.Plan.Bernoulli 0.5)
      (Faultnet.Plan.with_seed Faultnet.Plan.none 7)
  in
  let words_loss, inj_fwd =
    injected_forwarding_words ~plan:(Some loss_plan) ~frames:20_000 ()
  in
  Printf.printf "forwarding: + loss-plan injector %.4f minor words/frame\n"
    words_loss;
  (* A loss decision is one [Random.State] draw per control frame, and
     the OCaml 5 generator boxes an int64 per draw: 2 words per control
     frame = 0.02 words per data frame at pm = 0.01. Budget 0.05 so the
     assertion catches a real regression (a closure or tuple on the
     path) without flagging the generator itself. *)
  if words_loss -. words_bare > 0.05 then
    fail "loss-plan injector adds %.4f words/frame (budget 0.05)"
      (words_loss -. words_bare);
  (match inj_fwd with
  | Some inj when Faultnet.Injector.dropped_total inj > 0 -> ()
  | _ -> fail "loss-plan forwarding run dropped nothing; smoke lost coverage");
  (* 2. Empty-plan transparency: attaching a no-fault injector must not
     perturb the run at all — byte-identical results. *)
  let params =
    Fluid.Params.make ~n_flows:16 ~capacity:10e9 ~q0:2.5e6 ~buffer:15e6
      ~gi:4. ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:2e-3 params) with
      Simnet.Runner.initial_rate = 10e9;
    }
  in
  let bare = Simnet.Runner.run cfg in
  let inj0 = Faultnet.Injector.create Faultnet.Plan.none in
  let thru = Simnet.Runner.run (Faultnet.Injector.attach inj0 cfg) in
  if Marshal.to_string bare [] <> Marshal.to_string thru [] then
    fail "empty-plan injector perturbed the run";
  Printf.printf
    "empty-plan transparency ok (%d events, %d control frames seen)\n"
    thru.Simnet.Runner.events_processed
    (Faultnet.Injector.delivered_total inj0);
  (* 3. Exactness: under a seeded loss plan, the injector's counters,
     the flight recorder's fault events and the runner's own emission
     statistics must agree exactly. *)
  let plan =
    Faultnet.Plan.with_pause_loss
      (Faultnet.Plan.with_bcn_loss
         ~pos:(Faultnet.Plan.Bernoulli 0.3)
         ~neg:
           (Faultnet.Plan.Burst
              { p_enter = 0.2; p_exit = 0.5; p_drop = 0.9 })
         (Faultnet.Plan.with_seed Faultnet.Plan.none 42))
      (Faultnet.Plan.Bernoulli 0.5)
  in
  let inj = Faultnet.Injector.create plan in
  let probe = Telemetry.Probe.create ~capacity:(1 lsl 20) () in
  let r = Simnet.Runner.run ~probe (Faultnet.Injector.attach inj cfg) in
  let rec_ = Telemetry.Probe.recorder probe in
  if Telemetry.Recorder.overwritten rec_ > 0 then
    fail "flight recorder overflowed; counts below would be inexact";
  let expect name got want =
    if got <> want then fail "%s: %d <> %d" name got want
  in
  expect "seen BCN+ = emitted BCN+"
    (Faultnet.Injector.seen inj Faultnet.Plan.Bcn_positive)
    r.Simnet.Runner.bcn_positive;
  expect "seen BCN- = emitted BCN-"
    (Faultnet.Injector.seen inj Faultnet.Plan.Bcn_negative)
    r.Simnet.Runner.bcn_negative;
  expect "seen PAUSE = recorded PAUSE on+off"
    (Faultnet.Injector.seen inj Faultnet.Plan.Pause)
    (Telemetry.Recorder.count rec_ Telemetry.Event.Pause_on
    + Telemetry.Recorder.count rec_ Telemetry.Event.Pause_off);
  expect "recorded Fault_drop = injector drops"
    (Telemetry.Recorder.count rec_ Telemetry.Event.Fault_drop)
    (Faultnet.Injector.dropped_total inj);
  if Faultnet.Injector.dropped_total inj = 0 then
    fail "loss plan dropped nothing; smoke lost coverage";
  Printf.printf
    "exactness ok (%d control frames seen, %d dropped, %d Fault_drop events)\n"
    (Faultnet.Injector.delivered_total inj
    + Faultnet.Injector.dropped_total inj)
    (Faultnet.Injector.dropped_total inj)
    (Telemetry.Recorder.count rec_ Telemetry.Event.Fault_drop);
  (* 4. Determinism: a reduced margin sweep must be byte-identical for
     jobs = 1 and jobs = 4 and reproducible from the seed alone. *)
  let scenarios = [ List.hd (Faultnet.Resilience.paper_cases ()) ] in
  let axes = [ Faultnet.Resilience.Bcn_loss ] in
  let m1 =
    Faultnet.Resilience.sweep ~jobs:1 ~iters:3 ~seed:11 scenarios axes
  in
  let m4 =
    Faultnet.Resilience.sweep ~jobs:4 ~iters:3 ~seed:11 scenarios axes
  in
  if Faultnet.Resilience.to_csv m1 <> Faultnet.Resilience.to_csv m4 then
    fail "margin sweep differs between --jobs 1 and --jobs 4";
  let m1' =
    Faultnet.Resilience.sweep ~jobs:1 ~iters:3 ~seed:11 scenarios axes
  in
  if Faultnet.Resilience.to_csv m1 <> Faultnet.Resilience.to_csv m1' then
    fail "margin sweep not reproducible from its seed";
  Printf.printf "determinism ok (margin %.4f, jobs 1 = jobs 4)\n"
    m1.(0).Faultnet.Resilience.margin;
  Printf.printf "faults smoke ok\n";
  0

(* ---------- store smoke (CI) ---------- *)

(* End-to-end check of the content-addressed result store, in a
   throwaway directory:
     1. a cold scenario sweep persists every point; the warm rerun
        executes zero simulations and is byte-identical, for any jobs;
     2. resilience margins probe through the store: the warm sweep's
        misses are zero and its CSV is byte-identical to the cold one;
     3. a corrupted entry is detected on read, evicted, recomputed and
        healed — never served. *)
let store_smoke_run () =
  let dir = Filename.temp_dir "dcecc-store-smoke" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let cache = Store.Cache.open_ ~dir in
      (* 1. cold vs warm scenario sweep *)
      let params = Fluid.Params.with_buffer Fluid.Params.default 15e6 in
      let scenarios =
        Array.init 3 (fun i ->
            Simnet.Scenario.bcn ~t_end:2e-3
              (Fluid.Params.with_gains ~gi:(2. +. float_of_int i) params))
      in
      let cold = Store.Sweep.sweep ~cache ~jobs:2 scenarios in
      let s = Store.Cache.stats cache in
      if s.Store.Cache.puts <> Array.length scenarios then
        fail "cold sweep stored %d points (expected %d)" s.Store.Cache.puts
          (Array.length scenarios);
      Store.Cache.reset_stats cache;
      let warm = Store.Sweep.sweep ~cache ~jobs:1 scenarios in
      let s = Store.Cache.stats cache in
      if s.Store.Cache.misses <> 0 || s.Store.Cache.puts <> 0 then
        fail "warm sweep simulated (%d misses, %d puts; expected 0)"
          s.Store.Cache.misses s.Store.Cache.puts;
      if Marshal.to_string cold [] <> Marshal.to_string warm [] then
        fail "warm sweep results differ from cold";
      let warm4 = Store.Sweep.sweep ~cache ~jobs:4 scenarios in
      if Marshal.to_string warm [] <> Marshal.to_string warm4 [] then
        fail "warm sweep differs between --jobs 1 and --jobs 4";
      Printf.printf
        "scenario sweep ok (cold stored %d points; warm: 0 simulations, \
         byte-identical at jobs 1 and 4)\n"
        (Array.length scenarios);
      (* 2. resilience margins memoized through the store *)
      let memo = Store.Sweep.resilience_memo cache in
      let cases = [ List.hd (Faultnet.Resilience.paper_cases ()) ] in
      let axes = [ Faultnet.Resilience.Bcn_loss ] in
      let margins () =
        Faultnet.Resilience.to_csv
          (Faultnet.Resilience.sweep ~jobs:1 ~iters:3 ~seed:11 ~memo cases axes)
      in
      Store.Cache.reset_stats cache;
      let cold_csv = margins () in
      let s = Store.Cache.stats cache in
      if s.Store.Cache.puts = 0 then fail "cold margin sweep stored nothing";
      Store.Cache.reset_stats cache;
      let warm_csv = margins () in
      let s = Store.Cache.stats cache in
      if s.Store.Cache.misses <> 0 then
        fail "warm margin sweep simulated (%d misses)" s.Store.Cache.misses;
      if cold_csv <> warm_csv then
        fail "warm margin table differs from cold";
      Printf.printf "resilience memo ok (warm margins: 0 misses, CSV \
                     byte-identical)\n";
      (* 3. corruption is detected, evicted and recomputed *)
      let hex = Store.Key.to_hex (Store.Key.of_scenario scenarios.(0)) in
      let path =
        List.fold_left Filename.concat dir
          [ "objects"; String.sub hex 0 2; hex ]
      in
      let bytes =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let corrupted = Bytes.of_string bytes in
      let last = Bytes.length corrupted - 1 in
      Bytes.set corrupted last (Char.chr (Char.code (Bytes.get corrupted last) lxor 1));
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_bytes oc corrupted);
      Store.Cache.reset_stats cache;
      let healed = Store.Sweep.sweep ~cache ~jobs:1 scenarios in
      let s = Store.Cache.stats cache in
      if s.Store.Cache.evictions <> 1 then
        fail "corrupted entry: %d evictions (expected 1)"
          s.Store.Cache.evictions;
      if s.Store.Cache.misses <> 1 || s.Store.Cache.puts <> 1 then
        fail "corrupted entry: %d misses, %d puts (expected 1, 1)"
          s.Store.Cache.misses s.Store.Cache.puts;
      if Marshal.to_string healed [] <> Marshal.to_string warm [] then
        fail "recomputed results differ after corruption";
      Printf.printf
        "corruption ok (entry evicted, recomputed, byte-identical)\n";
      Printf.printf "store smoke ok\n";
      0)

(* ---------- commands ---------- *)

let sweep_cmd =
  let axes =
    Arg.(value & opt string "bcn-loss,pause-loss,flap-depth"
         & info [ "axes" ] ~docv:"LIST"
             ~doc:("Comma-separated severity axes: " ^ Serve.Tasks.axis_names
                 ^ "."))
  in
  let protocols =
    Arg.(value & flag
         & info [ "protocols" ]
             ~doc:"Sweep one case per congestion-control protocol (bcn, \
                   e2cm, fera, rcp) on the default parameter point instead \
                   of the paper's Case 1-3, under identical fault plans; \
                   axes a model cannot physically express are dropped for \
                   that row.")
  in
  let flap_period =
    Arg.(value & opt float 2e-3
         & info [ "flap-period" ] ~docv:"S" ~doc:"Flap period, seconds.")
  in
  let flap_duty =
    Arg.(value & opt float 0.5
         & info [ "flap-duty" ] ~docv:"F"
             ~doc:"Fraction of each period spent at dipped capacity.")
  in
  let t_end = Cli_common.t_end_term () in
  let transient =
    Arg.(value & opt (some float) None
         & info [ "transient" ] ~docv:"S"
             ~doc:"Head of the run excluded from the queue-bound check \
                   (default: t-end / 2).")
  in
  let iters =
    Arg.(value & opt (some int) None
         & info [ "iters" ] ~docv:"N"
             ~doc:"Bisection refinement steps per cell (default 8).")
  in
  let seed = Cli_common.seed_term ~doc:"Injector RNG seed." in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE.csv" ~doc:"Write the margin table as CSV.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE.json"
             ~doc:"Write the margin table as JSON.")
  in
  let adaptive =
    Arg.(value & flag
         & info [ "adaptive" ]
             ~doc:"Bracketed bisection per cell (the default; stated \
                   explicitly for symmetry with --dense).")
  in
  let dense =
    Arg.(value & flag
         & info [ "dense" ]
             ~doc:"Dense severity scan per cell instead of bisection: walk \
                   --scan-n uniform steps and stop at the first violation \
                   (the baseline bisection replaces).")
  in
  let scan_n =
    Arg.(value & opt Cli_common.pos_int 256
         & info [ "scan-n" ] ~docv:"N"
             ~doc:"With --dense: severity steps per axis (resolution \
                   max_severity / N).")
  in
  let set_ =
    Arg.(value & opt_all string []
         & info [ "set" ] ~docv:"NAME=VALUE"
             ~doc:("Override one parameter axis on every case before \
                    probing (repeatable). NAME is any entry of the shared \
                    registry: " ^ Serve.Tasks.param_names
                  ^ ". Model-specific knobs (rcp-*) land only on the \
                     cases running that model; e.g. --protocols --set \
                     rcp-beta=0 reproduces the queue-term ablation."))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Bisect strong-stability margins for the paper's Case 1-3 \
             points across fault-severity axes.")
    Term.(
      const sweep_run $ axes $ flap_period $ flap_duty $ t_end $ transient
      $ iters $ seed $ Cli_common.jobs_term $ adaptive $ dense $ scan_n
      $ protocols $ set_ $ csv $ json $ Cli_common.store_term)

let plane_cmd =
  let axis name default doc =
    Arg.(value & opt string default & info [ name ] ~docv:"AXIS" ~doc)
  in
  let axis_x = axis "axis-x" "bcn-loss" "Horizontal severity axis." in
  let axis_y = axis "axis-y" "pause-loss" "Vertical severity axis." in
  let flap_period =
    Arg.(value & opt float 2e-3
         & info [ "flap-period" ] ~docv:"S" ~doc:"Flap period, seconds.")
  in
  let flap_duty =
    Arg.(value & opt float 0.5
         & info [ "flap-duty" ] ~docv:"F"
             ~doc:"Fraction of each period spent at dipped capacity.")
  in
  let t_end = Cli_common.t_end_term () in
  let transient =
    Arg.(value & opt (some float) None
         & info [ "transient" ] ~docv:"S"
             ~doc:"Head of the run excluded from the queue-bound check \
                   (default: t-end / 2).")
  in
  let seed = Cli_common.seed_term ~doc:"Injector RNG seed." in
  let coarse =
    Arg.(value & opt Cli_common.pos_int 4
         & info [ "coarse" ] ~docv:"N" ~doc:"Coarse seeding grid (N x N).")
  in
  let levels =
    Arg.(value & opt Cli_common.pos_int 3
         & info [ "levels" ] ~docv:"L"
             ~doc:"Subdivision levels (fine lattice = coarse * 2^L).")
  in
  let edge_iters =
    Arg.(value & opt Cli_common.pos_int 3
         & info [ "edge-iters" ] ~docv:"K"
             ~doc:"Bisection rounds per crossing edge (sub-cell boundary).")
  in
  let dense =
    Arg.(value & flag
         & info [ "dense" ]
             ~doc:"Also evaluate the dense corner lattice at the matching \
                   resolution and print the savings ratio (every lattice \
                   point is a packet run — expensive).")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE.csv"
             ~doc:"Write the traced boundary polyline as CSV.")
  in
  Cmd.v
    (Cmd.info "plane"
       ~doc:"Adaptively trace the survive/violate frontier in a 2-D \
             fault-severity plane (two axes composed onto one plan, one \
             packet run per probed cell).")
    Term.(
      const plane_run $ axis_x $ axis_y $ flap_period $ flap_duty $ t_end
      $ transient $ seed $ Cli_common.jobs_term $ coarse $ levels $ edge_iters
      $ dense $ csv $ Cli_common.store_term)

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:"CI check: an installed no-fault injector costs ~0 minor \
             words/frame and perturbs nothing; under a seeded loss plan \
             the injector's counters, the flight recorder and the \
             runner's statistics agree exactly; the margin sweep is \
             jobs-independent and seed-reproducible.")
    Term.(const smoke_run $ const ())

let store_smoke_cmd =
  Cmd.v
    (Cmd.info "store-smoke"
       ~doc:"CI check of the content-addressed result store: a warm \
             sweep executes zero simulations and is byte-identical to \
             the cold one for any --jobs; resilience margins memoize \
             through it; a corrupted entry is detected, evicted and \
             recomputed.")
    Term.(const store_smoke_run $ const ())

let cmd =
  Cmd.group
    (Cmd.info "bcn_faults"
       ~doc:"Deterministic fault injection: resilience margins of BCN \
             strong stability.")
    [ sweep_cmd; plane_cmd; smoke_cmd; store_smoke_cmd ]

let () = exit (Cmd.eval' cmd)
