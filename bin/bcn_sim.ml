(* bcn_sim — packet-level BCN simulation on the dumbbell topology.

   Example:
     bcn_sim --flows 50 --capacity 10e9 --buffer 15e6 --t-end 0.02 \
             --mode literal --plot

   With --replicas N the scenario is re-run N times under seeded
   Bernoulli frame sampling (Runner.replicate), fanned out over --jobs
   worker domains; the report then shows per-replica rows plus
   mean +/- stddev aggregates. Results are byte-identical for any
   --jobs value.

   With --store DIR the run is routed through the content-addressed
   result store: the flags compile to a Scenario whose canonical
   encoding is the cache key, and an identical invocation is answered
   from DIR without simulating. --trace/--metrics need a live probe on
   the run, so they bypass the store. *)

open Cmdliner

(* Both reports render through Serve.Render — the same strings the
   serve daemon returns for a Run request, so CLI stdout and daemon
   payloads agree byte for byte. *)
let report_replicas seeds results =
  print_string (Serve.Render.replicas ~seeds results)

let report_single r = print_string (Serve.Render.single r)

let plot_and_csv ~plot ~csv (r : Simnet.Runner.result) =
  if plot then begin
    Format.printf "@.queue occupancy (bit):@.%s@."
      (Report.Ascii_plot.render ~width:70 ~height:16
         [ Report.Ascii_plot.of_series "q(t)" r.Simnet.Runner.queue ]);
    Format.printf "aggregate source rate (bit/s):@.%s@."
      (Report.Ascii_plot.render ~width:70 ~height:12
         [ Report.Ascii_plot.of_series "sum r_i(t)" r.Simnet.Runner.agg_rate ])
  end;
  match csv with
  | Some path ->
      Report.Csv.write_series ~path ~name:"queue_bits" r.Simnet.Runner.queue
  | None -> ()

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* The flag set compiles to a first-class scenario; both the store path
   and the legacy direct path derive their execution configs from it,
   so the two paths run the same simulation. *)
let scenario_of_flags p ~t_end ~mode ~timer ~broadcast ~no_pause ~pause_resume
    ~initial_rate ~replicas ~seed ~fault =
  let sampling =
    (* replicas need decorrelation, which only Bernoulli sampling
       provides; this mirrors Runner.replicate's unconditional
       re-seeding of the sampler *)
    if replicas > 1 then Simnet.Scenario.Bernoulli
    else if timer then
      Simnet.Scenario.Timer (Simnet.Switch.fluid_sampling_period p)
    else Simnet.Scenario.Deterministic
  in
  let s =
    Simnet.Scenario.bcn ~t_end
      ~mode:
        (match mode with
        | "literal" -> Simnet.Source.Literal
        | "zoh" -> Simnet.Source.Zoh_fluid
        | other -> invalid_arg ("unknown mode: " ^ other))
      ~sampling ~broadcast_feedback:broadcast ~enable_pause:(not no_pause)
      ~pause_resume ?initial_rate p
  in
  let s = Simnet.Scenario.with_seed s seed in
  let s = Simnet.Scenario.with_replicas s replicas in
  match fault with
  | Some plan -> Simnet.Scenario.with_fault s plan
  | None -> s

let run n c q0 buffer gi gd ru w pm t_end mode broadcast timer no_pause
    pause_resume initial_rate replicas seed jobs plot csv trace metrics
    store_spec mk_fault =
  let p =
    Fluid.Params.make ~n_flows:n ~capacity:c ~q0 ~buffer ~gi ~gd ~ru ~w ~pm ()
  in
  if replicas < 1 then invalid_arg "--replicas must be >= 1";
  let fault = mk_fault t_end in
  if Option.is_some fault && replicas > 1 then
    invalid_arg
      "--fault-* perturbs a single deterministic run; it cannot be combined \
       with --replicas > 1";
  let scenario =
    scenario_of_flags p ~t_end ~mode ~timer ~broadcast ~no_pause ~pause_resume
      ~initial_rate ~replicas ~seed ~fault
  in
  let seeds = Array.init replicas (fun i -> seed + i) in
  let cache =
    if trace = None && metrics = None then Cli_common.open_store store_spec
    else begin
      if store_spec.Cli_common.dir <> None then
        Printf.printf
          "note: --trace/--metrics need a live probe on the run; --store is \
           bypassed\n";
      None
    end
  in
  match cache with
  | Some _ ->
      (* store path: the scenario executes (or is answered) through the
         content-addressed cache *)
      (match
         Store.Sweep.memo_run ?cache ~refresh:store_spec.Cli_common.no_cache
           ?jobs scenario
       with
      | Store.Sweep.Bcn_results results ->
          if replicas > 1 then report_replicas seeds results
          else begin
            report_single results.(0);
            if Option.is_some fault then
              Printf.printf
                "note: injector counters are per-execution state and are \
                 not stored; rerun without --store to see them\n";
            plot_and_csv ~plot ~csv results.(0)
          end
      | _ -> assert false);
      Cli_common.report_store store_spec cache;
      0
  | None ->
      let fault_inj = Option.map Faultnet.Injector.create fault in
      let cfg =
        (* probe/injector instrumentation needs the raw runner config;
           [runner_configs] is the probe-level escape hatch (compile
           wires hooks itself and cannot expose the injector counters
           printed below) *)
        let base = (Simnet.Scenario.runner_configs scenario).(0) in
        match fault_inj with
        | None -> base
        | Some inj -> Faultnet.Injector.attach inj base
      in
      if replicas > 1 then begin
        if trace <> None then
          invalid_arg
            "--trace records a single run's flight recorder; it cannot be \
             combined with --replicas > 1";
        let results, merged =
          if metrics = None then
            (Simnet.Runner.replicate ?jobs ~seeds cfg, None)
          else begin
            let rs, m = Simnet.Runner.replicate_instrumented ?jobs ~seeds cfg in
            (rs, Some m)
          end
        in
        report_replicas seeds results;
        (match (metrics, merged) with
        | Some path, Some m ->
            with_out path (Telemetry.Metrics.write_json m);
            Printf.printf "wrote %s (metrics merged across %d replicas)\n" path
              replicas
        | _ -> ());
        0
      end
      else begin
        let probe =
          if trace = None && metrics = None then Telemetry.Probe.disabled
          else Telemetry.Probe.create ~capacity:(1 lsl 20) ()
        in
        let r = Simnet.Runner.run ~probe cfg in
        report_single r;
        (match fault_inj with
        | None -> ()
        | Some inj ->
            let open Faultnet in
            Format.printf
              "@[<v>faults (%s):@,\
              \  control frames seen: %d BCN+, %d BCN-, %d PAUSE@,\
              \  dropped: %d BCN+, %d BCN-, %d PAUSE@,\
              \  delayed: %d (max added %.3g s)@,\
              \  capacity flaps: %d; blackout toggles: %d@]@."
              (Plan.describe (Injector.plan inj))
              (Injector.seen inj Plan.Bcn_positive)
              (Injector.seen inj Plan.Bcn_negative)
              (Injector.seen inj Plan.Pause)
              (Injector.dropped inj Plan.Bcn_positive)
              (Injector.dropped inj Plan.Bcn_negative)
              (Injector.dropped inj Plan.Pause)
              (Injector.delayed inj) (Injector.max_added_delay inj)
              (Injector.capacity_flaps inj)
              (Injector.blackout_toggles inj));
        plot_and_csv ~plot ~csv r;
        (match trace with
        | Some path ->
            let rec_ = Telemetry.Probe.recorder probe in
            with_out path (Telemetry.Recorder.write_jsonl rec_);
            Printf.printf "wrote %s (%d events retained, %d recorded)\n" path
              (Telemetry.Recorder.length rec_)
              (Telemetry.Recorder.total rec_)
        | None -> ());
        (match metrics with
        | Some path ->
            with_out path
              (Telemetry.Metrics.write_json (Telemetry.Probe.metrics probe));
            Printf.printf "wrote %s\n" path
        | None -> ());
        0
      end

let cmd =
  let open Term in
  let flows = Arg.(value & opt int 50 & info [ "n"; "flows" ] ~doc:"Number of flows.") in
  let capacity = Arg.(value & opt float 10e9 & info [ "c"; "capacity" ] ~doc:"Capacity, bit/s.") in
  let q0 = Arg.(value & opt float 2.5e6 & info [ "q0" ] ~doc:"Reference queue, bits.") in
  let buffer = Arg.(value & opt float 15e6 & info [ "b"; "buffer" ] ~doc:"Buffer size, bits.") in
  let gi = Arg.(value & opt float 4. & info [ "gi" ] ~doc:"Gi.") in
  let gd = Arg.(value & opt float (1. /. 128.) & info [ "gd" ] ~doc:"Gd.") in
  let ru = Arg.(value & opt float 8e6 & info [ "ru" ] ~doc:"Ru, bit/s.") in
  let w = Arg.(value & opt float 2. & info [ "w" ] ~doc:"Sigma weight w.") in
  let pm = Arg.(value & opt float 0.01 & info [ "pm" ] ~doc:"Sampling probability.") in
  let t_end = Cli_common.t_end_term () in
  let mode =
    Arg.(value & opt string "literal"
         & info [ "mode" ] ~doc:"Reaction-point semantics: literal | zoh.")
  in
  let broadcast = Arg.(value & flag & info [ "broadcast" ] ~doc:"Broadcast feedback to all sources.") in
  let timer = Arg.(value & flag & info [ "timer-sampling" ] ~doc:"Timer-driven congestion point.") in
  let no_pause = Arg.(value & flag & info [ "no-pause" ] ~doc:"Disable 802.3x PAUSE.") in
  let pause_resume =
    Arg.(value & opt float 0.9
         & info [ "pause-resume" ] ~docv:"FRAC"
             ~doc:"PAUSE resume threshold as a fraction of the PAUSE \
                   trigger queue: a paused port resumes once the queue \
                   drains below FRAC * qsc.")
  in
  let initial_rate =
    Arg.(value & opt (some float) None & info [ "initial-rate" ] ~doc:"Per-source start rate, bit/s.")
  in
  let replicas =
    Arg.(value & opt int 1
         & info [ "replicas" ] ~docv:"N"
             ~doc:"Monte-Carlo replicas under seeded Bernoulli frame \
                   sampling; 1 keeps the single deterministic run.")
  in
  let seed =
    Cli_common.seed_term ~doc:"Base RNG seed; replica i uses seed S+i."
  in
  let plot = Arg.(value & flag & info [ "plot" ] ~doc:"ASCII plots of queue and rate.") in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write the queue trace to CSV.") in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE.jsonl"
             ~doc:"Record the run under a flight recorder and write the \
                   retained events as JSONL (one event object per line; \
                   summarize or diff with $(b,bcn_trace)). Single runs \
                   only — incompatible with --replicas > 1.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE.json"
             ~doc:"Write the run's metrics registry (event counters, \
                   runner.* counters/gauges/histograms) as JSON. With \
                   --replicas the per-replica registries are merged in \
                   seed order, so the file is byte-identical for any \
                   --jobs value.")
  in
  let doc = "Packet-level BCN simulation (dumbbell: N sources, one congestion point)." in
  Cmd.v
    (Cmd.info "bcn_sim" ~doc)
    (const run $ flows $ capacity $ q0 $ buffer $ gi $ gd $ ru $ w $ pm $ t_end
     $ mode $ broadcast $ timer $ no_pause $ pause_resume $ initial_rate
     $ replicas $ seed $ Cli_common.jobs_term $ plot $ csv $ trace $ metrics
     $ Cli_common.store_term $ Cli_common.fault_term)

let () = exit (Cmd.eval' cmd)
