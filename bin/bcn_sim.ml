(* bcn_sim — packet-level BCN simulation on the dumbbell topology.

   Example:
     bcn_sim --flows 50 --capacity 10e9 --buffer 15e6 --t-end 0.02 \
             --mode literal --plot

   With --replicas N the scenario is re-run N times under seeded
   Bernoulli frame sampling (Runner.replicate), fanned out over --jobs
   worker domains; the report then shows per-replica rows plus
   mean +/- stddev aggregates. Results are byte-identical for any
   --jobs value. *)

open Cmdliner

let mean_std vs =
  let n = float_of_int (Array.length vs) in
  let mean = Array.fold_left ( +. ) 0. vs /. n in
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.)) 0. vs /. n
  in
  (mean, sqrt var)

let report_replicas seeds results =
  let open Simnet.Runner in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i (r : result) ->
           [
             string_of_int seeds.(i);
             string_of_int r.events_processed;
             Printf.sprintf "%.3f" r.utilization;
             string_of_int r.drops;
             string_of_int r.pause_on_events;
             Printf.sprintf "%.3f" (fairness r.final_rates);
           ])
         results)
  in
  Report.Table.print
    ~headers:[ "seed"; "events"; "util"; "drops"; "PAUSEs"; "fairness" ]
    ~rows;
  let agg label f =
    let mean, std = mean_std (Array.map f results) in
    Format.printf "%-10s %.4f +/- %.4f@." label mean std
  in
  Format.printf "@.across %d replicas:@." (Array.length results);
  agg "util" (fun r -> r.utilization);
  agg "fairness" (fun r -> fairness r.final_rates);
  agg "drops" (fun r -> float_of_int r.drops)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let run n c q0 buffer gi gd ru w pm t_end mode broadcast timer no_pause
    pause_resume initial_rate replicas seed jobs plot csv trace metrics
    mk_fault =
  let p =
    Fluid.Params.make ~n_flows:n ~capacity:c ~q0 ~buffer ~gi ~gd ~ru ~w ~pm ()
  in
  let base = Simnet.Runner.default_config ~t_end p in
  let cfg =
    {
      base with
      Simnet.Runner.mode =
        (match mode with
        | "literal" -> Simnet.Source.Literal
        | "zoh" -> Simnet.Source.Zoh_fluid
        | other -> invalid_arg ("unknown mode: " ^ other));
      broadcast_feedback = broadcast;
      sampling =
        (if timer then
           Simnet.Switch.Timer (Simnet.Switch.fluid_sampling_period p)
         else Simnet.Switch.Deterministic);
      enable_pause = not no_pause;
      pause_resume;
      initial_rate =
        (match initial_rate with
        | Some r -> r
        | None -> base.Simnet.Runner.initial_rate);
    }
  in
  if replicas < 1 then invalid_arg "--replicas must be >= 1";
  let fault_inj = Option.map Faultnet.Injector.create (mk_fault t_end) in
  if Option.is_some fault_inj && replicas > 1 then
    invalid_arg
      "--fault-* perturbs a single deterministic run; it cannot be combined \
       with --replicas > 1";
  let cfg =
    match fault_inj with
    | None -> cfg
    | Some inj -> Faultnet.Injector.attach inj cfg
  in
  if replicas > 1 then begin
    if trace <> None then
      invalid_arg
        "--trace records a single run's flight recorder; it cannot be \
         combined with --replicas > 1";
    let seeds = Array.init replicas (fun i -> seed + i) in
    let results, merged =
      if metrics = None then (Simnet.Runner.replicate ?jobs ~seeds cfg, None)
      else begin
        let rs, m = Simnet.Runner.replicate_instrumented ?jobs ~seeds cfg in
        (rs, Some m)
      end
    in
    report_replicas seeds results;
    (match (metrics, merged) with
    | Some path, Some m ->
        with_out path (Telemetry.Metrics.write_json m);
        Printf.printf "wrote %s (metrics merged across %d replicas)\n" path
          replicas
    | _ -> ());
    0
  end
  else begin
  let probe =
    if trace = None && metrics = None then Telemetry.Probe.disabled
    else Telemetry.Probe.create ~capacity:(1 lsl 20) ()
  in
  let r = Simnet.Runner.run ~probe cfg in
  let open Simnet.Runner in
  Format.printf
    "@[<v>events processed: %d@,\
     delivered: %s bit (utilization %.3f)@,\
     drops: %d (%s bit)@,\
     BCN messages: %d positive, %d negative (%d frames sampled)@,\
     PAUSE events: %d@,\
     Jain fairness of final rates: %.4f@]@."
    r.events_processed
    (Report.Table.si r.delivered_bits)
    r.utilization r.drops
    (Report.Table.si r.dropped_bits)
    r.bcn_positive r.bcn_negative r.sampled_frames r.pause_on_events
    (fairness r.final_rates);
  (match fault_inj with
  | None -> ()
  | Some inj ->
      let open Faultnet in
      Format.printf
        "@[<v>faults (%s):@,\
        \  control frames seen: %d BCN+, %d BCN-, %d PAUSE@,\
        \  dropped: %d BCN+, %d BCN-, %d PAUSE@,\
        \  delayed: %d (max added %.3g s)@,\
        \  capacity flaps: %d; blackout toggles: %d@]@."
        (Plan.describe (Injector.plan inj))
        (Injector.seen inj Plan.Bcn_positive)
        (Injector.seen inj Plan.Bcn_negative)
        (Injector.seen inj Plan.Pause)
        (Injector.dropped inj Plan.Bcn_positive)
        (Injector.dropped inj Plan.Bcn_negative)
        (Injector.dropped inj Plan.Pause)
        (Injector.delayed inj) (Injector.max_added_delay inj)
        (Injector.capacity_flaps inj)
        (Injector.blackout_toggles inj));
  if plot then begin
    Format.printf "@.queue occupancy (bit):@.%s@."
      (Report.Ascii_plot.render ~width:70 ~height:16
         [ Report.Ascii_plot.of_series "q(t)" r.queue ]);
    Format.printf "aggregate source rate (bit/s):@.%s@."
      (Report.Ascii_plot.render ~width:70 ~height:12
         [ Report.Ascii_plot.of_series "sum r_i(t)" r.agg_rate ])
  end;
  (match csv with
  | Some path -> Report.Csv.write_series ~path ~name:"queue_bits" r.queue
  | None -> ());
  (match trace with
  | Some path ->
      let rec_ = Telemetry.Probe.recorder probe in
      with_out path (Telemetry.Recorder.write_jsonl rec_);
      Printf.printf "wrote %s (%d events retained, %d recorded)\n" path
        (Telemetry.Recorder.length rec_)
        (Telemetry.Recorder.total rec_)
  | None -> ());
  (match metrics with
  | Some path ->
      with_out path (Telemetry.Metrics.write_json (Telemetry.Probe.metrics probe));
      Printf.printf "wrote %s\n" path
  | None -> ());
  0
  end

(* --fault-* flags compose into a Faultnet.Plan: the term yields a
   [t_end -> Plan.t option] because the square-wave flap schedule needs
   the horizon. *)
let fault_term =
  let mk seed bcn_loss pos_loss neg_loss pause_loss delay jitter reorder flap
      markov blackout blackout_reset t_end =
    let open Faultnet.Plan in
    let bernoulli = function
      | None -> None
      | Some p -> Some (Bernoulli p)
    in
    let pos = bernoulli (match pos_loss with Some _ -> pos_loss | None -> bcn_loss) in
    let neg = bernoulli (match neg_loss with Some _ -> neg_loss | None -> bcn_loss) in
    let p = with_seed none seed in
    let p = match pos with Some l -> with_bcn_loss ~pos:l p | None -> p in
    let p = match neg with Some l -> with_bcn_loss ~neg:l p | None -> p in
    let p =
      match bernoulli pause_loss with
      | Some l -> with_pause_loss p l
      | None -> p
    in
    let p =
      if delay > 0. || jitter > 0. then
        with_delay ~reorder ~jitter p ~fixed:delay
      else p
    in
    let p =
      match flap with
      | Some (period, duty, depth) ->
          with_capacity p (square_flaps ~period ~duty ~depth ~t_end)
      | None -> p
    in
    let p =
      match markov with
      | Some (mean_up, mean_down, factor) ->
          with_capacity p (Flap_markov { mean_up; mean_down; factor })
      | None -> p
    in
    let p =
      match blackout with
      | Some (start, duration) ->
          with_blackout ~reset:blackout_reset p ~start ~duration
      | None -> p
    in
    if is_none p then None else Some p
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "fault-seed" ] ~docv:"S" ~doc:"Fault-injector RNG seed.")
  in
  let prob name doc =
    Arg.(value & opt (some float) None & info [ name ] ~docv:"P" ~doc)
  in
  let bcn_loss = prob "fault-bcn-loss" "Drop each BCN frame (either sign) with probability $(docv)." in
  let pos_loss = prob "fault-bcn-pos-loss" "Drop positive BCN frames with probability $(docv) (overrides --fault-bcn-loss)." in
  let neg_loss = prob "fault-bcn-neg-loss" "Drop negative BCN frames with probability $(docv) (overrides --fault-bcn-loss)." in
  let pause_loss = prob "fault-pause-loss" "Drop PAUSE frames with probability $(docv)." in
  let delay =
    Arg.(value & opt float 0.
         & info [ "fault-delay" ] ~docv:"S"
             ~doc:"Extra fixed delay added to every control frame, seconds.")
  in
  let jitter =
    Arg.(value & opt float 0.
         & info [ "fault-jitter" ] ~docv:"S"
             ~doc:"Uniform [0,$(docv)) random extra control-frame delay.")
  in
  let reorder =
    Arg.(value & flag
         & info [ "fault-reorder" ]
             ~doc:"Let jittered control frames race (default: delivery is \
                   monotonised, preserving emission order).")
  in
  let triple = Arg.(t3 ~sep:':' float float float) in
  let flap =
    Arg.(value & opt (some triple) None
         & info [ "fault-flap" ] ~docv:"PERIOD:DUTY:DEPTH"
             ~doc:"Square-wave capacity flaps: every PERIOD seconds dip to \
                   (1-DEPTH) of nominal for DUTY*PERIOD seconds.")
  in
  let markov =
    Arg.(value & opt (some triple) None
         & info [ "fault-markov-flap" ] ~docv:"UP:DOWN:FACTOR"
             ~doc:"Markov on/off capacity flaps: nominal for ~UP seconds, \
                   FACTOR*nominal for ~DOWN seconds (exponential holding \
                   times).")
  in
  let blackout =
    Arg.(value & opt (some (t2 ~sep:':' float float)) None
         & info [ "fault-blackout" ] ~docv:"START:DURATION"
             ~doc:"Switch the congestion point off during \
                   [START, START+DURATION).")
  in
  let blackout_reset =
    Arg.(value & flag
         & info [ "fault-blackout-reset" ]
             ~doc:"Forget sampler state when the blackout ends (rebooted \
                   congestion point).")
  in
  Term.(
    const mk $ seed $ bcn_loss $ pos_loss $ neg_loss $ pause_loss $ delay
    $ jitter $ reorder $ flap $ markov $ blackout $ blackout_reset)

let cmd =
  let open Term in
  let flows = Arg.(value & opt int 50 & info [ "n"; "flows" ] ~doc:"Number of flows.") in
  let capacity = Arg.(value & opt float 10e9 & info [ "c"; "capacity" ] ~doc:"Capacity, bit/s.") in
  let q0 = Arg.(value & opt float 2.5e6 & info [ "q0" ] ~doc:"Reference queue, bits.") in
  let buffer = Arg.(value & opt float 15e6 & info [ "b"; "buffer" ] ~doc:"Buffer size, bits.") in
  let gi = Arg.(value & opt float 4. & info [ "gi" ] ~doc:"Gi.") in
  let gd = Arg.(value & opt float (1. /. 128.) & info [ "gd" ] ~doc:"Gd.") in
  let ru = Arg.(value & opt float 8e6 & info [ "ru" ] ~doc:"Ru, bit/s.") in
  let w = Arg.(value & opt float 2. & info [ "w" ] ~doc:"Sigma weight w.") in
  let pm = Arg.(value & opt float 0.01 & info [ "pm" ] ~doc:"Sampling probability.") in
  let t_end = Arg.(value & opt float 0.02 & info [ "t-end" ] ~doc:"Simulated seconds.") in
  let mode =
    Arg.(value & opt string "literal"
         & info [ "mode" ] ~doc:"Reaction-point semantics: literal | zoh.")
  in
  let broadcast = Arg.(value & flag & info [ "broadcast" ] ~doc:"Broadcast feedback to all sources.") in
  let timer = Arg.(value & flag & info [ "timer-sampling" ] ~doc:"Timer-driven congestion point.") in
  let no_pause = Arg.(value & flag & info [ "no-pause" ] ~doc:"Disable 802.3x PAUSE.") in
  let pause_resume =
    Arg.(value & opt float 0.9
         & info [ "pause-resume" ] ~docv:"FRAC"
             ~doc:"PAUSE resume threshold as a fraction of the PAUSE \
                   trigger queue: a paused port resumes once the queue \
                   drains below FRAC * qsc.")
  in
  let initial_rate =
    Arg.(value & opt (some float) None & info [ "initial-rate" ] ~doc:"Per-source start rate, bit/s.")
  in
  let replicas =
    Arg.(value & opt int 1
         & info [ "replicas" ] ~docv:"N"
             ~doc:"Monte-Carlo replicas under seeded Bernoulli frame \
                   sampling; 1 keeps the single deterministic run.")
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"S"
             ~doc:"Base RNG seed; replica i uses seed S+i.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains for --replicas (default: DCECC_JOBS or \
                   the machine's domain count). Results do not depend on \
                   this value.")
  in
  let plot = Arg.(value & flag & info [ "plot" ] ~doc:"ASCII plots of queue and rate.") in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write the queue trace to CSV.") in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE.jsonl"
             ~doc:"Record the run under a flight recorder and write the \
                   retained events as JSONL (one event object per line; \
                   summarize or diff with $(b,bcn_trace)). Single runs \
                   only — incompatible with --replicas > 1.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE.json"
             ~doc:"Write the run's metrics registry (event counters, \
                   runner.* counters/gauges/histograms) as JSON. With \
                   --replicas the per-replica registries are merged in \
                   seed order, so the file is byte-identical for any \
                   --jobs value.")
  in
  let doc = "Packet-level BCN simulation (dumbbell: N sources, one congestion point)." in
  Cmd.v
    (Cmd.info "bcn_sim" ~doc)
    (const run $ flows $ capacity $ q0 $ buffer $ gi $ gd $ ru $ w $ pm $ t_end
     $ mode $ broadcast $ timer $ no_pause $ pause_resume $ initial_rate
     $ replicas $ seed $ jobs $ plot $ csv $ trace $ metrics $ fault_term)

let () = exit (Cmd.eval' cmd)
