(* bcn_sweep — sweep one BCN parameter and emit a CSV of stability and
   transient metrics per value.

   Example:
     bcn_sweep --param gi --from 0.5 --to 8 --steps 12 --csv gi_sweep.csv *)

open Cmdliner

(* the parameter vocabulary lives in Serve.Tasks, shared with the
   daemon's sweep/region requests *)
let apply = Serve.Tasks.apply_param

(* The sweep table as one JSON document, through the shared telemetry
   emitter: [{"<param>": v, "case": "...", ...}, ...]. Cells are emitted
   as JSON numbers when they parse as floats, strings otherwise. *)
let write_json ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i row ->
          let cells =
            List.map2
              (fun k v ->
                match float_of_string_opt v with
                | Some f when v <> "" -> (k, Telemetry.Json.float_full f)
                | Some _ | None -> (k, Telemetry.Json.str v))
              header row
          in
          Printf.fprintf oc "  %s%s\n" (Telemetry.Json.obj cells)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "]\n")

(* ---------- 2-D region mode (--param2) ---------- *)

(* Two swept parameters span a plane whose interesting content is the
   strongly-stable / unstable boundary; trace it adaptively instead of
   filling the steps x steps grid. *)
let region_run base param lo hi param2 lo2 hi2 coarse levels dense jobs csv
    store_spec cache =
  let apply2 ~x ~y = apply (apply base param x) param2 y in
  let store =
    Option.map
      (fun c ->
        let lookup, save = Store.Sweep.verdict_memo c in
        if store_spec.Cli_common.no_cache then ((fun _ -> None), save)
        else (lookup, save))
      cache
  in
  let dom = { Refine.Engine.x0 = lo; x1 = hi; y0 = lo2; y1 = hi2 } in
  let t =
    Refine.Param_plane.trace ?jobs ?store ~coarse:(coarse, coarse) ~levels
      apply2 dom
  in
  print_string (Refine.Engine.render t);
  Printf.printf
    "%s x %s stability plane: %d boundary cells, %d segments, %d verdict \
     evaluations\n"
    param param2
    (Array.length t.Refine.Engine.boundary_cells)
    (Array.length t.Refine.Engine.segments)
    t.Refine.Engine.evaluations;
  if dense then begin
    let n = coarse * (1 lsl levels) in
    let _, evals =
      Refine.Engine.dense_mixed_cells dom ~nx:n ~ny:n
        (Refine.Param_plane.verdicts ?jobs apply2)
    in
    Printf.printf "dense %dx%d lattice: %d evaluations (adaptive %.1fx fewer)\n"
      n n evals
      (float_of_int evals /. float_of_int (max 1 t.Refine.Engine.evaluations))
  end;
  (match csv with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Refine.Engine.segments_csv t));
      Printf.printf "wrote %s\n" path
  | None -> ());
  Cli_common.report_store store_spec cache;
  0

(* Route region mode through a running bcn_serve daemon instead of
   tracing locally: the payload is byte-identical (daemon and CLI call
   the same Refine.Param_plane.trace with the same verdict-memo key
   material), and a daemon whose store was warmed by earlier CLI traces
   answers without evaluating a single verdict. *)
let region_via_daemon ~socket ~param ~lo ~hi ~param2 ~lo2 ~hi2 ~buffer ~coarse
    ~levels csv =
  let c = Serve.Client.connect ~path:socket () in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close c)
    (fun () ->
      match
        Serve.Client.request c ~id:1
          (Serve.Tasks.Region
             { param; lo; hi; param2; lo2; hi2; buffer; coarse; levels })
      with
      | Serve.Protocol.Result { payload; warm; _ } ->
          (match csv with
          | Some path ->
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc payload);
              Printf.printf "wrote %s (%s)\n" path
                (if warm then "warm" else "cold")
          | None -> print_string payload);
          0
      | Serve.Protocol.Error { message; _ } ->
          Printf.eprintf "error: %s\n" message;
          1
      | _ ->
          Printf.eprintf "error: unexpected response\n";
          1)

(* --preset names a curated 2-D plane; "nc" is the paper's (N, C)
   operating plane — flow count against link capacity — traced in
   region mode at the paper's BDP buffer (5 Mbit, where the
   strong-stability boundary crosses the plane; at the 15 Mbit CLI
   default the whole window is stable). Every piece is overridable by
   the usual flags. *)
let resolve_preset preset param lo hi buffer param2 range2 =
  match preset with
  | None -> (
      match (param, lo, hi) with
      | Some param, Some lo, Some hi ->
          (param, lo, hi, Option.value buffer ~default:15e6, param2, range2)
      | _ ->
          invalid_arg
            "--param, --from and --to are required (or use --preset nc)")
  | Some "nc" ->
      ( Option.value param ~default:"n",
        Option.value lo ~default:8.,
        Option.value hi ~default:128.,
        Option.value buffer ~default:5e6,
        Some (Option.value param2 ~default:"capacity"),
        Some (Option.value range2 ~default:(1e9, 40e9)) )
  | Some other -> invalid_arg ("unknown preset: " ^ other)

let run preset param lo hi steps log_scale buffer param2 range2 coarse levels
    dense csv json jobs store_spec serve_socket =
  let param, lo, hi, buffer, param2, range2 =
    resolve_preset preset param lo hi buffer param2 range2
  in
  if steps < 2 then invalid_arg "need at least 2 steps";
  let base = Fluid.Params.with_buffer Fluid.Params.default buffer in
  match param2 with
  | Some param2 -> (
      let lo2, hi2 =
        match range2 with
        | Some r -> r
        | None -> invalid_arg "--param2 requires --range2 LO:HI"
      in
      match serve_socket with
      | Some socket ->
          region_via_daemon ~socket ~param ~lo ~hi ~param2 ~lo2 ~hi2 ~buffer
            ~coarse ~levels csv
      | None ->
          let cache = Cli_common.open_store store_spec in
          region_run base param lo hi param2 lo2 hi2 coarse levels dense jobs
            csv store_spec cache)
  | None ->
  if serve_socket <> None then
    invalid_arg "--serve applies to region mode (--param2) only";
  let cache = Cli_common.open_store store_spec in
  let header = Serve.Tasks.sweep_header param in
  let row i =
    let v = Serve.Tasks.sweep_value ~lo ~hi ~steps ~log_scale i in
    let p = apply base param v in
    match cache with
    | None -> Serve.Tasks.sweep_row v p
    | Some c ->
        (* one cache entry per grid point, keyed by the full resolved
           parameter set (the canonical Scenario encoding) plus the raw
           sweep coordinate, so --log/--steps changes that land on the
           same point re-use its row *)
        let key =
          Store.Key.of_material (Serve.Tasks.sweep_row_material ~param p v)
        in
        if store_spec.Cli_common.no_cache then begin
          let r = Serve.Tasks.sweep_row v p in
          Store.Cache.store_value c key r;
          r
        end
        else Store.Cache.memo c key (fun () -> Serve.Tasks.sweep_row v p)
  in
  (* Each grid point is an independent analyze+measure; shard the grid
     across the pool in deterministic chunks (the table is identical to a
     sequential run for any --jobs). *)
  let rows =
    Parallel.Pool.with_pool ?size:jobs (fun pool ->
        Array.to_list
          (Parallel.Pool.parmap_array pool row
             (Array.init steps (fun i -> i))))
  in
  Report.Table.print ~headers:header ~rows;
  (match csv with
  | Some path ->
      Report.Csv.write ~path ~header ~rows;
      Printf.printf "\nwrote %s\n" path
  | None -> ());
  (match json with
  | Some path ->
      write_json ~path ~header ~rows;
      Printf.printf "\nwrote %s\n" path
  | None -> ());
  Cli_common.report_store store_spec cache;
  0

let cmd =
  let open Term in
  let preset =
    Arg.(
      value
      & opt (some string) None
      & info [ "preset" ] ~docv:"NAME"
          ~doc:
            "Curated sweep preset. $(b,nc): trace the strongly-stable \
             boundary of the paper's (N, C) plane — flow count 8..128 \
             against link capacity 1..40 Gbit/s — in region mode; \
             $(b,--from)/$(b,--to)/$(b,--range2) override the default \
             ranges.")
  in
  let param =
    Arg.(
      value
      & opt (some string) None
      & info [ "param" ] ~docv:"NAME"
          ~doc:
            ("Parameter to sweep: " ^ Serve.Tasks.param_names
           ^ ". Required unless --preset picks one."))
  in
  let lo = Arg.(value & opt (some float) None & info [ "from" ] ~doc:"Start value.") in
  let hi = Arg.(value & opt (some float) None & info [ "to" ] ~doc:"End value.") in
  let steps = Arg.(value & opt int 10 & info [ "steps" ] ~doc:"Sweep points.") in
  let log_scale = Arg.(value & flag & info [ "log" ] ~doc:"Geometric spacing.") in
  let buffer =
    Arg.(
      value
      & opt (some float) None
      & info [ "buffer" ]
          ~doc:
            "Buffer for the base config, bits. Default 15e6 (5e6 under \
             --preset nc — the paper's BDP buffer).")
  in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write the table to CSV (with --param2: the traced boundary polyline).") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write the table to JSON.")
  in
  let param2 =
    Arg.(
      value
      & opt (some string) None
      & info [ "param2" ] ~docv:"NAME"
          ~doc:
            "Second swept parameter (same vocabulary as $(b,--param)): \
             switch to 2-D region mode and adaptively trace the \
             strongly-stable boundary of the ($(b,--param), $(docv)) plane \
             over [--from, --to] x --range2 instead of tabulating a grid.")
  in
  let range2 =
    Arg.(
      value
      & opt (some (t2 ~sep:':' float float)) None
      & info [ "range2" ] ~docv:"LO:HI"
          ~doc:"Range of $(b,--param2) in region mode.")
  in
  let coarse =
    Arg.(
      value & opt Cli_common.pos_int 8
      & info [ "coarse" ] ~docv:"N"
          ~doc:"Region mode: coarse seeding grid (N x N cells).")
  in
  let levels =
    Arg.(
      value & opt Cli_common.pos_int 3
      & info [ "levels" ] ~docv:"L"
          ~doc:
            "Region mode: subdivision levels (fine lattice = coarse * 2^L).")
  in
  let dense =
    Arg.(
      value & flag
      & info [ "dense" ]
          ~doc:
            "Region mode: also evaluate the dense corner lattice at the \
             matching resolution and print the savings ratio.")
  in
  let serve =
    Arg.(
      value
      & opt (some string) None
      & info [ "serve" ] ~docv:"SOCKET"
          ~doc:
            "Region mode: send the trace to the $(b,bcn_serve) daemon on \
             $(docv) instead of computing locally. The payload is \
             byte-identical to the local trace, and a daemon with a \
             store warmed by earlier traces answers without evaluating \
             a single verdict.")
  in
  let doc = "Sweep one BCN parameter; stability and transient metrics per value." in
  Cmd.v (Cmd.info "bcn_sweep" ~doc)
    (const run $ preset $ param $ lo $ hi $ steps $ log_scale $ buffer $ param2
   $ range2 $ coarse $ levels $ dense $ csv $ json $ Cli_common.jobs_term
   $ Cli_common.store_term $ serve)

let () = exit (Cmd.eval' cmd)
