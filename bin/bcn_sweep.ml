(* bcn_sweep — sweep one BCN parameter and emit a CSV of stability and
   transient metrics per value.

   Example:
     bcn_sweep --param gi --from 0.5 --to 8 --steps 12 --csv gi_sweep.csv *)

open Cmdliner

let apply base param v =
  match param with
  | "gi" -> Fluid.Params.with_gains ~gi:v base
  | "gd" -> Fluid.Params.with_gains ~gd:v base
  | "ru" -> Fluid.Params.with_gains ~ru:v base
  | "q0" -> Fluid.Params.with_q0 base v
  | "buffer" -> Fluid.Params.with_buffer base v
  | "n" | "flows" -> Fluid.Params.with_flows base (int_of_float v)
  | "w" -> Fluid.Params.with_sampling ~w:v base
  | "pm" -> Fluid.Params.with_sampling ~pm:v base
  | other -> invalid_arg ("unknown parameter: " ^ other)

(* The sweep table as one JSON document, through the shared telemetry
   emitter: [{"<param>": v, "case": "...", ...}, ...]. Cells are emitted
   as JSON numbers when they parse as floats, strings otherwise. *)
let write_json ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i row ->
          let cells =
            List.map2
              (fun k v ->
                match float_of_string_opt v with
                | Some f when v <> "" -> (k, Telemetry.Json.float_full f)
                | Some _ | None -> (k, Telemetry.Json.str v))
              header row
          in
          Printf.fprintf oc "  %s%s\n" (Telemetry.Json.obj cells)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      output_string oc "]\n")

(* ---------- 2-D region mode (--param2) ---------- *)

(* Two swept parameters span a plane whose interesting content is the
   strongly-stable / unstable boundary; trace it adaptively instead of
   filling the steps x steps grid. *)
let region_run base param lo hi param2 lo2 hi2 coarse levels dense jobs csv
    store_spec cache =
  let apply2 ~x ~y = apply (apply base param x) param2 y in
  let store =
    Option.map
      (fun c ->
        let lookup, save = Store.Sweep.verdict_memo c in
        if store_spec.Cli_common.no_cache then ((fun _ -> None), save)
        else (lookup, save))
      cache
  in
  let dom = { Refine.Engine.x0 = lo; x1 = hi; y0 = lo2; y1 = hi2 } in
  let t =
    Refine.Param_plane.trace ?jobs ?store ~coarse:(coarse, coarse) ~levels
      apply2 dom
  in
  print_string (Refine.Engine.render t);
  Printf.printf
    "%s x %s stability plane: %d boundary cells, %d segments, %d verdict \
     evaluations\n"
    param param2
    (Array.length t.Refine.Engine.boundary_cells)
    (Array.length t.Refine.Engine.segments)
    t.Refine.Engine.evaluations;
  if dense then begin
    let n = coarse * (1 lsl levels) in
    let _, evals =
      Refine.Engine.dense_mixed_cells dom ~nx:n ~ny:n
        (Refine.Param_plane.verdicts ?jobs apply2)
    in
    Printf.printf "dense %dx%d lattice: %d evaluations (adaptive %.1fx fewer)\n"
      n n evals
      (float_of_int evals /. float_of_int (max 1 t.Refine.Engine.evaluations))
  end;
  (match csv with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Refine.Engine.segments_csv t));
      Printf.printf "wrote %s\n" path
  | None -> ());
  Cli_common.report_store store_spec cache;
  0

let run param lo hi steps log_scale buffer param2 range2 coarse levels dense
    csv json jobs store_spec =
  if steps < 2 then invalid_arg "need at least 2 steps";
  let base = Fluid.Params.with_buffer Fluid.Params.default buffer in
  let cache = Cli_common.open_store store_spec in
  match param2 with
  | Some param2 ->
      let lo2, hi2 =
        match range2 with
        | Some r -> r
        | None -> invalid_arg "--param2 requires --range2 LO:HI"
      in
      region_run base param lo hi param2 lo2 hi2 coarse levels dense jobs csv
        store_spec cache
  | None ->
  let value i =
    let f = float_of_int i /. float_of_int (steps - 1) in
    if log_scale then lo *. ((hi /. lo) ** f) else lo +. ((hi -. lo) *. f)
  in
  let header =
    [
      param; "case"; "required_B"; "criterion_ok"; "numeric_max_q";
      "numeric_min_q"; "strongly_stable"; "oscillations"; "decay_per_cycle";
    ]
  in
  let compute_row v p =
    let verdict = Fluid.Stability.analyze p in
    let t = Fluid.Transient.measure p in
    [
      Printf.sprintf "%g" v;
      Format.asprintf "%a" Fluid.Cases.pp_case verdict.Fluid.Stability.case;
      Printf.sprintf "%g" (Fluid.Criterion.required_buffer p);
      string_of_bool (Fluid.Criterion.satisfied p);
      Printf.sprintf "%g"
        (verdict.Fluid.Stability.numeric_max +. p.Fluid.Params.q0);
      Printf.sprintf "%g"
        (verdict.Fluid.Stability.numeric_min +. p.Fluid.Params.q0);
      string_of_bool verdict.Fluid.Stability.strongly_stable;
      string_of_int t.Fluid.Transient.oscillations;
      (match t.Fluid.Transient.decay_per_cycle with
      | Some d -> Printf.sprintf "%.6f" d
      | None -> "");
    ]
  in
  let row i =
    let v = value i in
    let p = apply base param v in
    match cache with
    | None -> compute_row v p
    | Some c ->
        (* one cache entry per grid point, keyed by the full resolved
           parameter set (the canonical Scenario encoding) plus the raw
           sweep coordinate, so --log/--steps changes that land on the
           same point re-use its row *)
        let material =
          "bcn_sweep.row@v1\nparam=" ^ param ^ "\n"
          ^ Simnet.Scenario.encode_params p
          ^ "\n"
          ^ Telemetry.Json.float_full v
        in
        let key = Store.Key.of_material material in
        if store_spec.Cli_common.no_cache then begin
          let r = compute_row v p in
          Store.Cache.store_value c key r;
          r
        end
        else Store.Cache.memo c key (fun () -> compute_row v p)
  in
  (* Each grid point is an independent analyze+measure; shard the grid
     across the pool in deterministic chunks (the table is identical to a
     sequential run for any --jobs). *)
  let rows =
    Parallel.Pool.with_pool ?size:jobs (fun pool ->
        Array.to_list
          (Parallel.Pool.parmap_array pool row
             (Array.init steps (fun i -> i))))
  in
  Report.Table.print ~headers:header ~rows;
  (match csv with
  | Some path ->
      Report.Csv.write ~path ~header ~rows;
      Printf.printf "\nwrote %s\n" path
  | None -> ());
  (match json with
  | Some path ->
      write_json ~path ~header ~rows;
      Printf.printf "\nwrote %s\n" path
  | None -> ());
  Cli_common.report_store store_spec cache;
  0

let cmd =
  let open Term in
  let param =
    Arg.(
      required
      & opt (some string) None
      & info [ "param" ] ~docv:"NAME"
          ~doc:"Parameter to sweep: gi | gd | ru | q0 | buffer | n | w | pm.")
  in
  let lo = Arg.(required & opt (some float) None & info [ "from" ] ~doc:"Start value.") in
  let hi = Arg.(required & opt (some float) None & info [ "to" ] ~doc:"End value.") in
  let steps = Arg.(value & opt int 10 & info [ "steps" ] ~doc:"Sweep points.") in
  let log_scale = Arg.(value & flag & info [ "log" ] ~doc:"Geometric spacing.") in
  let buffer =
    Arg.(value & opt float 15e6 & info [ "buffer" ] ~doc:"Buffer for the base config, bits.")
  in
  let csv = Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write the table to CSV (with --param2: the traced boundary polyline).") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write the table to JSON.")
  in
  let param2 =
    Arg.(
      value
      & opt (some string) None
      & info [ "param2" ] ~docv:"NAME"
          ~doc:
            "Second swept parameter (same vocabulary as $(b,--param)): \
             switch to 2-D region mode and adaptively trace the \
             strongly-stable boundary of the ($(b,--param), $(docv)) plane \
             over [--from, --to] x --range2 instead of tabulating a grid.")
  in
  let range2 =
    Arg.(
      value
      & opt (some (t2 ~sep:':' float float)) None
      & info [ "range2" ] ~docv:"LO:HI"
          ~doc:"Range of $(b,--param2) in region mode.")
  in
  let coarse =
    Arg.(
      value & opt Cli_common.pos_int 8
      & info [ "coarse" ] ~docv:"N"
          ~doc:"Region mode: coarse seeding grid (N x N cells).")
  in
  let levels =
    Arg.(
      value & opt Cli_common.pos_int 3
      & info [ "levels" ] ~docv:"L"
          ~doc:
            "Region mode: subdivision levels (fine lattice = coarse * 2^L).")
  in
  let dense =
    Arg.(
      value & flag
      & info [ "dense" ]
          ~doc:
            "Region mode: also evaluate the dense corner lattice at the \
             matching resolution and print the savings ratio.")
  in
  let doc = "Sweep one BCN parameter; stability and transient metrics per value." in
  Cmd.v (Cmd.info "bcn_sweep" ~doc)
    (const run $ param $ lo $ hi $ steps $ log_scale $ buffer $ param2
   $ range2 $ coarse $ levels $ dense $ csv $ json $ Cli_common.jobs_term
   $ Cli_common.store_term)

let () = exit (Cmd.eval' cmd)
