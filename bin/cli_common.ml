(* Flag vocabulary shared by the BCN command-line tools. Every term
   here used to be copy-pasted per binary (jobs/seed/t-end, the whole
   --fault-* family) or would have been (the --store trio); one module
   keeps the spellings, docs and defaults identical everywhere. *)

open Cmdliner

let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_term =
  Arg.(
    value
    & opt (some pos_int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains (default: $(b,DCECC_JOBS) or the machine's \
           recommended domain count; 1 = sequential). Results do not \
           depend on this value.")

let seed_term ~doc = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc)

let t_end_term ?(default = 0.02) () =
  Arg.(value & opt float default & info [ "t-end" ] ~doc:"Simulated seconds.")

(* ---------- the content-addressed result store ---------- *)

type store_spec = { dir : string option; no_cache : bool; stats : bool }

let store_term =
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result store: identical scenario + code \
             version pairs are answered from $(docv) without simulating, \
             and finished points persist immediately, so a killed sweep \
             resumes where it stopped.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "With --store: skip cache reads, recompute everything, and \
             refresh the stored entries.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "store-stats" ]
          ~doc:
            "After the run, print the store's hit/miss/put/eviction \
             counters (and entry count) as JSON.")
  in
  Term.(
    const (fun dir no_cache stats -> { dir; no_cache; stats })
    $ dir $ no_cache $ stats)

let open_store spec = Option.map (fun dir -> Store.Cache.open_ ~dir) spec.dir

(* The counters travel through the shared telemetry registry, so the
   printed JSON has the same shape as every other metrics snapshot. *)
let report_store spec cache =
  match cache with
  | Some c when spec.stats ->
      let mx = Telemetry.Metrics.create () in
      Store.Cache.publish_metrics c mx;
      (* index-backed: --store-stats must stay O(1) on huge stores *)
      Telemetry.Metrics.add mx "store.entries" (Store.Cache.objects c);
      Printf.printf "store %s: %s\n" (Store.Cache.root c)
        (Telemetry.Metrics.to_json_string mx)
  | _ -> ()

(* ---------- fault plans ---------- *)

(* --fault-* flags compose into a Simnet.Fault_plan: the term yields a
   [t_end -> Fault_plan.t option] because the square-wave flap schedule
   needs the horizon. *)
let fault_term =
  let mk seed bcn_loss pos_loss neg_loss pause_loss delay jitter reorder flap
      markov blackout blackout_reset t_end =
    let open Simnet.Fault_plan in
    let bernoulli = function
      | None -> None
      | Some p -> Some (Bernoulli p)
    in
    let pos = bernoulli (match pos_loss with Some _ -> pos_loss | None -> bcn_loss) in
    let neg = bernoulli (match neg_loss with Some _ -> neg_loss | None -> bcn_loss) in
    let p = with_seed none seed in
    let p = match pos with Some l -> with_bcn_loss ~pos:l p | None -> p in
    let p = match neg with Some l -> with_bcn_loss ~neg:l p | None -> p in
    let p =
      match bernoulli pause_loss with
      | Some l -> with_pause_loss p l
      | None -> p
    in
    let p =
      if delay > 0. || jitter > 0. then
        with_delay ~reorder ~jitter p ~fixed:delay
      else p
    in
    let p =
      match flap with
      | Some (period, duty, depth) ->
          with_capacity p (square_flaps ~period ~duty ~depth ~t_end)
      | None -> p
    in
    let p =
      match markov with
      | Some (mean_up, mean_down, factor) ->
          with_capacity p (Flap_markov { mean_up; mean_down; factor })
      | None -> p
    in
    let p =
      match blackout with
      | Some (start, duration) ->
          with_blackout ~reset:blackout_reset p ~start ~duration
      | None -> p
    in
    if is_none p then None else Some p
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "fault-seed" ] ~docv:"S" ~doc:"Fault-injector RNG seed.")
  in
  let prob name doc =
    Arg.(value & opt (some float) None & info [ name ] ~docv:"P" ~doc)
  in
  let bcn_loss = prob "fault-bcn-loss" "Drop each BCN frame (either sign) with probability $(docv)." in
  let pos_loss = prob "fault-bcn-pos-loss" "Drop positive BCN frames with probability $(docv) (overrides --fault-bcn-loss)." in
  let neg_loss = prob "fault-bcn-neg-loss" "Drop negative BCN frames with probability $(docv) (overrides --fault-bcn-loss)." in
  let pause_loss = prob "fault-pause-loss" "Drop PAUSE frames with probability $(docv)." in
  let delay =
    Arg.(value & opt float 0.
         & info [ "fault-delay" ] ~docv:"S"
             ~doc:"Extra fixed delay added to every control frame, seconds.")
  in
  let jitter =
    Arg.(value & opt float 0.
         & info [ "fault-jitter" ] ~docv:"S"
             ~doc:"Uniform [0,$(docv)) random extra control-frame delay.")
  in
  let reorder =
    Arg.(value & flag
         & info [ "fault-reorder" ]
             ~doc:"Let jittered control frames race (default: delivery is \
                   monotonised, preserving emission order).")
  in
  let triple = Arg.(t3 ~sep:':' float float float) in
  let flap =
    Arg.(value & opt (some triple) None
         & info [ "fault-flap" ] ~docv:"PERIOD:DUTY:DEPTH"
             ~doc:"Square-wave capacity flaps: every PERIOD seconds dip to \
                   (1-DEPTH) of nominal for DUTY*PERIOD seconds.")
  in
  let markov =
    Arg.(value & opt (some triple) None
         & info [ "fault-markov-flap" ] ~docv:"UP:DOWN:FACTOR"
             ~doc:"Markov on/off capacity flaps: nominal for ~UP seconds, \
                   FACTOR*nominal for ~DOWN seconds (exponential holding \
                   times).")
  in
  let blackout =
    Arg.(value & opt (some (t2 ~sep:':' float float)) None
         & info [ "fault-blackout" ] ~docv:"START:DURATION"
             ~doc:"Switch the congestion point off during \
                   [START, START+DURATION).")
  in
  let blackout_reset =
    Arg.(value & flag
         & info [ "fault-blackout-reset" ]
             ~doc:"Forget sampler state when the blackout ends (rebooted \
                   congestion point).")
  in
  Term.(
    const mk $ seed $ bcn_loss $ pos_loss $ neg_loss $ pause_loss $ delay
    $ jitter $ reorder $ flap $ markov $ blackout $ blackout_reset)
