(* bcn_trace — record, summarize and diff flight-recorder traces.

   Examples:
     bcn_trace record --flows 16 --t-end 5e-3 --out incast.jsonl
     bcn_trace summarize incast.jsonl
     bcn_trace diff a.jsonl b.jsonl
     bcn_trace smoke            # CI: probes-off cost + round-trip checks *)

open Cmdliner

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* ---------- trace loading ---------- *)

let load_trace path =
  let ic = open_in path in
  let lines = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let l = input_line ic in
           if String.trim l <> "" then lines := l :: !lines
         done
       with End_of_file -> ());
      let raw = Array.of_list (List.rev !lines) in
      let events =
        Array.mapi
          (fun i l ->
            match Telemetry.Event.of_line l with
            | Some ev -> ev
            | None ->
                failwith
                  (Printf.sprintf "%s:%d: unparseable trace line: %s" path
                     (i + 1) l))
          raw
      in
      (raw, events))

(* The queue occupancy an event carries, if any (see the field map in
   Telemetry.Event). *)
let queue_of (ev : Telemetry.Event.t) =
  match ev.kind with
  | Telemetry.Event.Enqueue | Dequeue | Drop | Pause_on | Pause_off ->
      Some ev.a
  | Bcn_positive | Bcn_negative -> Some ev.b
  | Rate_update | Ode_step | Ode_reject | Fault_drop | Fault_delay
  | Fault_capacity | Fault_blackout | Lease_claimed | Lease_stolen
  | Lease_expired ->
      None

(* ---------- summary ---------- *)

type summary = {
  n_events : int;
  counts : int array;  (* indexed by Telemetry.Event.to_code *)
  t_min : float;
  t_max : float;
  bcn_times : float array;  (* notification (BCN+/-) times, trace order *)
  max_q : float;
}

let summarize_events events =
  let counts = Array.make Telemetry.Event.n_kinds 0 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  let bcn_times = ref [] in
  let max_q = ref 0. in
  Array.iter
    (fun (ev : Telemetry.Event.t) ->
      let c = Telemetry.Event.to_code ev.kind in
      counts.(c) <- counts.(c) + 1;
      if ev.t < !t_min then t_min := ev.t;
      if ev.t > !t_max then t_max := ev.t;
      (match ev.kind with
      | Telemetry.Event.Bcn_positive | Bcn_negative ->
          bcn_times := ev.t :: !bcn_times
      | _ -> ());
      match queue_of ev with
      | Some q -> if q > !max_q then max_q := q
      | None -> ())
    events;
  {
    n_events = Array.length events;
    counts;
    t_min = !t_min;
    t_max = !t_max;
    bcn_times = Array.of_list (List.rev !bcn_times);
    max_q = !max_q;
  }

let count s kind = s.counts.(Telemetry.Event.to_code kind)

let gap_stats times =
  let n = Array.length times in
  if n < 2 then None
  else begin
    let gaps = Array.init (n - 1) (fun i -> times.(i + 1) -. times.(i)) in
    let sorted = Array.copy gaps in
    Array.sort compare sorted;
    let m = Array.length sorted in
    let q p = sorted.(Stdlib.min (m - 1) (int_of_float (p *. float_of_int m))) in
    let mean = Array.fold_left ( +. ) 0. gaps /. float_of_int m in
    Some (m, sorted.(0), mean, q 0.5, q 0.9, sorted.(m - 1))
  end

type excursion = {
  x_start : float;
  x_end : float;
  x_peak : float;
  x_events : int;
}

(* Contiguous intervals during which the queue (as seen by q-carrying
   events) stays above [threshold]. *)
let excursions ~threshold events =
  let acc = ref [] in
  let cur = ref None in
  let close t =
    match !cur with
    | Some (s, peak, cnt) ->
        acc := { x_start = s; x_end = t; x_peak = peak; x_events = cnt } :: !acc;
        cur := None
    | None -> ()
  in
  Array.iter
    (fun (ev : Telemetry.Event.t) ->
      match queue_of ev with
      | None -> ()
      | Some q ->
          if q > threshold then
            cur :=
              Some
                (match !cur with
                | None -> (ev.t, q, 1)
                | Some (s, peak, cnt) -> (s, Float.max peak q, cnt + 1))
          else close ev.t)
    events;
  (match !cur with Some (s, peak, cnt) ->
     acc := { x_start = s; x_end = s; x_peak = peak; x_events = cnt } :: !acc
   | None -> ());
  List.rev !acc

let summarize ?threshold path =
  let raw, events = load_trace path in
  let s = summarize_events events in
  Printf.printf "%s: %d events" path s.n_events;
  if s.n_events > 0 then Printf.printf ", t in [%g, %g] s" s.t_min s.t_max;
  print_newline ();
  print_newline ();
  let rows =
    List.filter_map
      (fun c ->
        let kind = Telemetry.Event.of_code c in
        if s.counts.(c) = 0 then None
        else Some [ Telemetry.Event.name kind; string_of_int s.counts.(c) ])
      (List.init Telemetry.Event.n_kinds Fun.id)
  in
  if rows <> [] then Report.Table.print ~headers:[ "event"; "count" ] ~rows;
  (match gap_stats s.bcn_times with
  | None ->
      Printf.printf "\ninter-notification gaps: fewer than 2 BCN events\n"
  | Some (n, min_g, mean, p50, p90, max_g) ->
      Printf.printf
        "\ninter-notification gaps (%d): min %.3g  mean %.3g  p50 %.3g  \
         p90 %.3g  max %.3g s\n"
        n min_g mean p50 p90 max_g);
  if s.max_q > 0. then begin
    let threshold =
      match threshold with Some t -> t | None -> 0.5 *. s.max_q
    in
    let xs = excursions ~threshold events in
    Printf.printf "\nqueue excursions above %s bit (max seen %s bit):\n"
      (Report.Table.si threshold) (Report.Table.si s.max_q);
    if xs = [] then Printf.printf "  none\n"
    else begin
      let shown = List.filteri (fun i _ -> i < 20) xs in
      Report.Table.print
        ~headers:[ "start_s"; "duration_s"; "peak_bits"; "events" ]
        ~rows:
          (List.map
             (fun x ->
               [
                 Printf.sprintf "%.6g" x.x_start;
                 Printf.sprintf "%.3g" (x.x_end -. x.x_start);
                 Report.Table.si x.x_peak;
                 string_of_int x.x_events;
               ])
             shown);
      if List.length xs > 20 then
        Printf.printf "  (%d more excursions not shown)\n"
          (List.length xs - 20)
    end
  end;
  (ignore raw; s)

(* ---------- subcommands ---------- *)

let record_run flows t_end buffer no_pause initial_rate out metrics =
  let p =
    Fluid.Params.with_flows
      (Fluid.Params.with_buffer Fluid.Params.default buffer)
      flows
  in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end p) with
      Simnet.Runner.enable_pause = not no_pause;
      (* incast: every source starts at line rate unless told otherwise,
         so the congestion machinery fires within a short horizon *)
      initial_rate =
        (match initial_rate with
        | Some r -> r
        | None -> p.Fluid.Params.capacity);
    }
  in
  let probe = Telemetry.Probe.create ~capacity:(1 lsl 20) () in
  let r = Simnet.Runner.run ~probe cfg in
  let rec_ = Telemetry.Probe.recorder probe in
  with_out out (Telemetry.Recorder.write_jsonl rec_);
  Printf.printf
    "wrote %s (%d events retained, %d recorded; %d BCN+, %d BCN-, %d drops, \
     %d PAUSE-on)\n"
    out
    (Telemetry.Recorder.length rec_)
    (Telemetry.Recorder.total rec_)
    r.Simnet.Runner.bcn_positive r.Simnet.Runner.bcn_negative
    r.Simnet.Runner.drops r.Simnet.Runner.pause_on_events;
  (match metrics with
  | Some path ->
      with_out path (Telemetry.Metrics.write_json (Telemetry.Probe.metrics probe));
      Printf.printf "wrote %s\n" path
  | None -> ());
  0

let diff_run a b =
  let raw_a, ev_a = load_trace a in
  let raw_b, ev_b = load_trace b in
  let sa = summarize_events ev_a and sb = summarize_events ev_b in
  let count_rows =
    List.filter_map
      (fun c ->
        let ca = sa.counts.(c) and cb = sb.counts.(c) in
        if ca = 0 && cb = 0 then None
        else
          Some
            [
              Telemetry.Event.name (Telemetry.Event.of_code c);
              string_of_int ca;
              string_of_int cb;
              Printf.sprintf "%+d" (cb - ca);
            ])
      (List.init Telemetry.Event.n_kinds Fun.id)
  in
  Report.Table.print ~headers:[ "event"; a; b; "delta" ] ~rows:count_rows;
  let n = Stdlib.min (Array.length raw_a) (Array.length raw_b) in
  let first_diff = ref None in
  (try
     for i = 0 to n - 1 do
       if raw_a.(i) <> raw_b.(i) then begin
         first_diff := Some i;
         raise Exit
       end
     done;
     if Array.length raw_a <> Array.length raw_b then first_diff := Some n
   with Exit -> ());
  match !first_diff with
  | None ->
      Printf.printf "\ntraces are identical (%d events)\n" (Array.length raw_a);
      0
  | Some i ->
      Printf.printf "\nfirst difference at line %d:\n" (i + 1);
      Printf.printf "- %s\n"
        (if i < Array.length raw_a then raw_a.(i) else "<end of trace>");
      Printf.printf "+ %s\n"
        (if i < Array.length raw_b then raw_b.(i) else "<end of trace>");
      1

(* ---------- smoke (CI) ---------- *)

let smoke_run () =
  (* 1. Disabled-probe emitters must cost ~0 minor words per event: the
     [@inline] wrappers reduce to a load and an untaken branch, so a
     million calls should allocate (almost) nothing. *)
  let p = Telemetry.Probe.disabled in
  let n = 1_000_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to n do
    let t = float_of_int i in
    Telemetry.Probe.enqueue p ~t ~q:t ~bits:12000. ~flow:i ~seq:i;
    Telemetry.Probe.bcn p ~t ~fb:(-.t) ~q:t ~flow:i ~seq:i;
    Telemetry.Probe.rate_update p ~t ~rate:t ~fb:t ~id:i ~cpid:1
  done;
  let per_event = (Gc.minor_words () -. w0) /. float_of_int (3 * n) in
  Printf.printf "disabled-probe emitter cost: %.4f minor words/event\n"
    per_event;
  if per_event > 0.01 then begin
    Printf.eprintf
      "FAIL: disabled probe allocates %.4f minor words/event (>0.01)\n"
      per_event;
    exit 1
  end;
  (* 2. Telemetry must not perturb the simulation: the same scenario
     with and without a probe produces identical results. Sources start
     at line rate (16x overload) so the congestion machinery — BCN,
     PAUSE — actually fires within the short horizon. *)
  let params =
    Fluid.Params.make ~n_flows:16 ~capacity:10e9 ~q0:2.5e6 ~buffer:15e6
      ~gi:4. ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  let cfg =
    {
      (Simnet.Runner.default_config ~t_end:2e-3 params) with
      Simnet.Runner.initial_rate = 10e9;
    }
  in
  let check_roundtrip label cfg =
    let bare = Simnet.Runner.run cfg in
    let probe = Telemetry.Probe.create ~capacity:(1 lsl 20) () in
    let r = Simnet.Runner.run ~probe cfg in
    let same =
      r.Simnet.Runner.events_processed = bare.Simnet.Runner.events_processed
      && r.Simnet.Runner.drops = bare.Simnet.Runner.drops
      && r.Simnet.Runner.bcn_positive = bare.Simnet.Runner.bcn_positive
      && r.Simnet.Runner.bcn_negative = bare.Simnet.Runner.bcn_negative
      && r.Simnet.Runner.delivered_bits = bare.Simnet.Runner.delivered_bits
    in
    if not same then begin
      Printf.eprintf "FAIL(%s): probe perturbed the simulation\n" label;
      exit 1
    end;
    let rec_ = Telemetry.Probe.recorder probe in
    if Telemetry.Recorder.overwritten rec_ > 0 then begin
      Printf.eprintf "FAIL(%s): flight recorder overflowed\n" label;
      exit 1
    end;
    (* 3. Round-trip: the JSONL written by the recorder parses back and
       its per-kind counts equal the runner's own statistics. *)
    let path = Filename.temp_file "bcn_trace_smoke" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        with_out path (Telemetry.Recorder.write_jsonl rec_);
        let _, events = load_trace path in
        let s = summarize_events events in
        let expect name got want =
          if got <> want then begin
            Printf.eprintf "FAIL(%s): %s: trace has %d, runner says %d\n"
              label name got want;
            exit 1
          end
        in
        expect "bcn_positive"
          (count s Telemetry.Event.Bcn_positive)
          r.Simnet.Runner.bcn_positive;
        expect "bcn_negative"
          (count s Telemetry.Event.Bcn_negative)
          r.Simnet.Runner.bcn_negative;
        expect "drops" (count s Telemetry.Event.Drop) r.Simnet.Runner.drops;
        expect "pause_on"
          (count s Telemetry.Event.Pause_on)
          r.Simnet.Runner.pause_on_events;
        Printf.printf
          "%s: round-trip ok (%d events; %d BCN+, %d BCN-, %d drops, %d \
           PAUSE-on)\n"
          label s.n_events
          (count s Telemetry.Event.Bcn_positive)
          (count s Telemetry.Event.Bcn_negative)
          (count s Telemetry.Event.Drop)
          (count s Telemetry.Event.Pause_on));
    r
  in
  let _ = check_roundtrip "incast" cfg in
  (* An overload variant — PAUSE off, tiny buffer — so tail drops occur
     and the Drop-event path is exercised too. *)
  let tiny =
    Fluid.Params.make ~n_flows:16 ~capacity:10e9 ~q0:1e5 ~buffer:4e5
      ~gi:4. ~gd:(1. /. 128.) ~ru:8e6 ()
  in
  let overload =
    {
      (Simnet.Runner.default_config ~t_end:1e-3 tiny) with
      Simnet.Runner.enable_pause = false;
      initial_rate = 10e9;
    }
  in
  let r = check_roundtrip "overload" overload in
  if r.Simnet.Runner.drops = 0 then begin
    Printf.eprintf
      "FAIL: overload scenario produced no drops; smoke lost coverage\n";
    exit 1
  end;
  Printf.printf "telemetry smoke ok\n";
  0

let record_cmd =
  let flows = Arg.(value & opt int 16 & info [ "n"; "flows" ] ~doc:"Number of flows.") in
  let t_end = Arg.(value & opt float 5e-3 & info [ "t-end" ] ~doc:"Simulated seconds.") in
  let buffer = Arg.(value & opt float 15e6 & info [ "b"; "buffer" ] ~doc:"Buffer, bits.") in
  let no_pause = Arg.(value & flag & info [ "no-pause" ] ~doc:"Disable 802.3x PAUSE.") in
  let initial_rate =
    Arg.(value & opt (some float) None
         & info [ "initial-rate" ]
             ~doc:"Per-source start rate, bit/s (default: line rate, i.e. \
                   an N-to-1 incast).")
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE.jsonl" ~doc:"Trace output path.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE.json" ~doc:"Also write the metrics registry.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Run an incast scenario under a flight recorder.")
    Term.(
      const record_run $ flows $ t_end $ buffer $ no_pause $ initial_rate
      $ out $ metrics)

let summarize_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE.jsonl")
  in
  let threshold =
    Arg.(value & opt (some float) None
         & info [ "threshold" ] ~docv:"BITS"
             ~doc:"Queue-excursion threshold (default: half the maximum \
                   occupancy seen in the trace).")
  in
  Cmd.v
    (Cmd.info "summarize"
       ~doc:"Event counts, inter-notification gaps and queue excursions.")
    Term.(
      const (fun threshold file ->
          let _ = summarize ?threshold file in
          0)
      $ threshold $ file)

let diff_cmd =
  let a = Arg.(required & pos 0 (some string) None & info [] ~docv:"A.jsonl") in
  let b = Arg.(required & pos 1 (some string) None & info [] ~docv:"B.jsonl") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Compare two traces: per-kind count deltas and the first \
             differing line. Exits 1 when the traces differ.")
    Term.(const diff_run $ a $ b)

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:"CI check: disabled probes cost ~0 minor words/event, enabled \
             probes round-trip through the JSONL format with counts \
             matching the runner's statistics.")
    Term.(const smoke_run $ const ())

let cmd =
  Cmd.group
    (Cmd.info "bcn_trace"
       ~doc:"Record, summarize and diff BCN flight-recorder traces.")
    [ record_cmd; summarize_cmd; diff_cmd; smoke_cmd ]

let () = exit (Cmd.eval' cmd)
