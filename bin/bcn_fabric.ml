(* bcn_fabric — the distributed sweep fabric.

   Examples:
     bcn_fabric spec --seeds 64 --t-end 0.005 > sweep.json
     bcn_fabric work sweep.json --store results &     # terminal 1
     bcn_fabric work sweep.json --store results       # terminal 2
     bcn_fabric status sweep.json --store results
     bcn_fabric merge sweep.json --store results -o sweep.csv
     bcn_fabric fsck --store results
     bcn_fabric gc --store results --min-age 60
     bcn_fabric smoke                                 # CI

   Workers coordinate through the store alone: the manifest names the
   points, lease files (O_CREAT|O_EXCL) assign contiguous ranges,
   heartbeats keep them, expired leases are stolen. Any number of
   workers may join or leave mid-sweep; the merge reads the store in
   manifest order, so its bytes are identical for any worker history. *)

open Cmdliner

let read_file = function
  | "-" -> In_channel.input_all stdin
  | path -> In_channel.with_open_bin path In_channel.input_all

let spec_of_file path =
  match Fabric.Spec.decode (read_file path) with
  | Ok spec -> spec
  | Error msg -> invalid_arg (Printf.sprintf "%s: %s" path msg)

let spec_file_term =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SPEC"
        ~doc:
          "Fabric spec document (see $(b,bcn_fabric spec)); \"-\" reads \
           standard input.")

let store_req_term =
  Arg.(
    required
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Content-addressed result store shared by all workers of the \
           run — the only coordination medium the fabric has.")

let chunk_term =
  Arg.(
    value & opt Cli_common.pos_int 16
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Points per work lease. Must agree across the workers of one \
           run (they derive the lease table from it); never affects the \
           merged bytes.")

(* ---------- spec ---------- *)

let spec_run seeds first_seed t_end sample_dt sets bernoulli replicas =
  let params =
    List.fold_left
      (fun p (name, v) -> Serve.Tasks.apply_param p name v)
      Fluid.Params.default sets
  in
  let base =
    Simnet.Scenario.bcn ~t_end ~sample_dt
      ?sampling:(if bernoulli then Some Simnet.Scenario.Bernoulli else None)
      params
  in
  let base =
    if replicas > 1 then Simnet.Scenario.with_replicas base replicas else base
  in
  print_endline
    (Fabric.Spec.encode (Fabric.Spec.Seeds { base; first_seed; count = seeds }));
  0

let spec_cmd =
  let seeds =
    Arg.(
      value & opt Cli_common.pos_int 8
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Number of sweep points (base scenario at seeds $(i,first)..).")
  in
  let first_seed =
    Arg.(
      value & opt int 0
      & info [ "first-seed" ] ~docv:"S" ~doc:"Seed of the first point.")
  in
  let sample_dt =
    Arg.(
      value & opt float 1e-3
      & info [ "sample-dt" ] ~docv:"T" ~doc:"Congestion sampling period.")
  in
  let sets =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "set" ] ~docv:"PARAM=V"
          ~doc:
            "Override one fluid parameter of the base scenario \
             (gi | gd | ru | q0 | buffer | n | w | pm | capacity); \
             repeatable.")
  in
  let bernoulli =
    Arg.(
      value & flag
      & info [ "bernoulli" ]
          ~doc:
            "Bernoulli congestion sampling — makes the seed axis \
             statistically meaningful (and is required for --replicas).")
  in
  let replicas =
    Arg.(
      value & opt Cli_common.pos_int 1
      & info [ "replicas" ] ~docv:"R"
          ~doc:"Replicas per point (requires --bernoulli).")
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:
         "Print a canonical fabric spec document: a base BCN scenario \
          fanned over a seed range. Hand the same document to every \
          worker of the run.")
    Term.(
      const spec_run $ seeds $ first_seed
      $ Cli_common.t_end_term ~default:0.005 ()
      $ sample_dt $ sets $ bernoulli $ replicas)

(* ---------- work ---------- *)

let work_run spec_file store worker chunk ttl jobs trace =
  let spec = spec_of_file spec_file in
  let cache = Store.Cache.open_ ~dir:store in
  let worker =
    match worker with
    | Some w -> w
    | None -> Printf.sprintf "%s.%d" (Unix.gethostname ()) (Unix.getpid ())
  in
  let trace_oc = Option.map open_out trace in
  let on_event =
    Option.map
      (fun oc ev ->
        output_string oc (Telemetry.Event.to_line ev ^ "\n");
        flush oc)
      trace_oc
  in
  let report =
    Fun.protect
      ~finally:(fun () -> Option.iter close_out_noerr trace_oc)
      (fun () ->
        Fabric.Worker.run ?jobs ~chunk ~ttl ?on_event ~worker cache spec)
  in
  Printf.printf
    "worker %s: %d ranges claimed, %d stolen; %d points executed, %d \
     already stored\n"
    report.Fabric.Worker.worker report.Fabric.Worker.ranges_claimed
    report.Fabric.Worker.ranges_stolen report.Fabric.Worker.executed
    report.Fabric.Worker.cached;
  0

let work_cmd =
  let worker =
    Arg.(
      value
      & opt (some string) None
      & info [ "worker" ] ~docv:"ID"
          ~doc:
            "Worker id, unique among live workers (default \
             $(i,host).$(i,pid)).")
  in
  let ttl =
    Arg.(
      value & opt float 30.
      & info [ "ttl" ] ~docv:"S"
          ~doc:
            "Heartbeat time-to-live: a lease whose beat is older is \
             presumed dead and may be stolen.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Append lease lifecycle events (claimed/stolen/expired) as \
             telemetry JSONL — $(b,bcn_trace) summarizes the merged \
             files of a distributed run.")
  in
  Cmd.v
    (Cmd.info "work"
       ~doc:
         "Run one fabric worker until the sweep completes: claim free \
          lease ranges, execute their points into the store, steal \
          expired leases from crashed or stalled peers. Safe to run any \
          number of these concurrently against one store.")
    Term.(
      const work_run $ spec_file_term $ store_req_term $ worker $ chunk_term
      $ ttl $ Cli_common.jobs_term $ trace)

(* ---------- status ---------- *)

let status_run spec_file store chunk =
  let spec = spec_of_file spec_file in
  let cache = Store.Cache.open_ ~dir:store in
  let p = Fabric.Worker.progress ~chunk cache spec in
  let m = Fabric.Spec.manifest spec in
  let sweep = m.Store.Manifest.sweep_key in
  Printf.printf "sweep %s\n" (Store.Key.to_hex sweep);
  Printf.printf "points %d/%d stored, ranges %d/%d done\n"
    p.Fabric.Worker.stored p.Fabric.Worker.total p.Fabric.Worker.done_ranges
    p.Fabric.Worker.ranges;
  let now = Unix.gettimeofday () in
  List.iter
    (fun (range, info) ->
      Printf.printf "lease r%06d worker %s points %d..%d beat %.1fs ago\n"
        range info.Store.Lease.worker info.Store.Lease.lo info.Store.Lease.hi
        (now -. info.Store.Lease.beat))
    (Store.Lease.list cache ~sweep);
  0

let status_cmd =
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Show a fabric run's progress without touching it: stored \
          points (through the store index — no per-point I/O), completed \
          ranges, and the live leases with heartbeat ages.")
    Term.(const status_run $ spec_file_term $ store_req_term $ chunk_term)

(* ---------- merge ---------- *)

let merge_run spec_file store as_json out =
  let spec = spec_of_file spec_file in
  let cache = Store.Cache.open_ ~dir:store in
  match
    if as_json then Fabric.Merge.json cache spec else Fabric.Merge.csv cache spec
  with
  | payload ->
      (match out with
      | Some path ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc payload)
      | None -> print_string payload);
      0
  | exception Failure msg ->
      Printf.eprintf "error: %s\n" msg;
      1

let merge_cmd =
  let as_json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the JSON document instead of CSV.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write to $(docv) instead of standard output.")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Assemble the completed sweep from the store, in manifest \
          order. Stateless: the bytes depend only on the spec and the \
          stored results — never on which workers ran, joined, died or \
          stole. Fails (exit 1) while points are still missing.")
    Term.(const merge_run $ spec_file_term $ store_req_term $ as_json $ out)

(* ---------- fsck ---------- *)

let fsck_run store jobs no_evict =
  let cache = Store.Cache.open_ ~dir:store in
  let r = Store.Fsck.run ?jobs ~evict:(not no_evict) cache in
  Printf.printf
    "fsck %s: %d checked, %d ok, %d corrupt (%d evicted), index +%d/-%d \
     repaired\n"
    store r.Store.Fsck.checked r.Store.Fsck.ok r.Store.Fsck.corrupt
    r.Store.Fsck.evicted r.Store.Fsck.missing_index r.Store.Fsck.stale_index;
  if r.Store.Fsck.corrupt > 0 then 1 else 0

let fsck_cmd =
  let no_evict =
    Arg.(
      value & flag
      & info [ "no-evict" ]
          ~doc:"Report corrupt entries without removing them.")
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Re-verify every stored object's payload hash in parallel, \
          evict corruption, and reconcile the on-disk index with the \
          object tree. Exit status 1 when corruption was found.")
    Term.(const fsck_run $ store_req_term $ Cli_common.jobs_term $ no_evict)

(* ---------- gc ---------- *)

let gc_run store dry_run min_age =
  let cache = Store.Cache.open_ ~dir:store in
  let r = Store.Gc.run ~dry_run ~min_age cache in
  Printf.printf
    "gc %s:%s %d scanned, %d live, %d collected (%d bytes), %d stale tmp \
     removed\n"
    store
    (if dry_run then " (dry run)" else "")
    r.Store.Gc.scanned r.Store.Gc.live r.Store.Gc.collected
    r.Store.Gc.collected_bytes r.Store.Gc.tmp_removed;
  0

let gc_cmd =
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ] ~doc:"Report what would be collected; delete nothing.")
  in
  let min_age =
    Arg.(
      value & opt float 0.
      & info [ "min-age" ] ~docv:"S"
          ~doc:
            "Widen the generation guard: never collect objects younger \
             than $(docv) seconds, protecting in-flight writers on \
             clock-skewed shared filesystems.")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Collect objects referenced by no manifest. Every point of \
          every live manifest is a root (lease ranges are manifest \
          subsets, so leased work is covered), and objects written \
          during the collection are age-guarded — a concurrent worker \
          never loses a result.")
    Term.(const gc_run $ store_req_term $ dry_run $ min_age)

(* ---------- smoke (CI) ---------- *)

let fail fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "FAIL: %s\n" s;
      exit 1)
    fmt

let tiny_spec ~seeds =
  let params = Fluid.Params.with_flows Fluid.Params.default 4 in
  let base =
    Simnet.Scenario.bcn ~t_end:2e-4 ~sample_dt:1e-4
      ~sampling:Simnet.Scenario.Bernoulli params
  in
  Fabric.Spec.Seeds { base; first_seed = 0; count = seeds }

let smoke_run () =
  ignore (Unix.alarm 300);
  let dir = Filename.temp_dir "dcecc-fabric-smoke" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () ->
      let spec = tiny_spec ~seeds:12 in
      (* 1. single-process oracle: plain Store.Sweep through store A *)
      let store_a = Filename.concat dir "store_a" in
      let cache_a = Store.Cache.open_ ~dir:store_a in
      let outcomes =
        Store.Sweep.sweep ~cache:cache_a ~jobs:1 (Fabric.Spec.scenarios spec)
      in
      let oracle = Fabric.Merge.csv_of spec outcomes in
      if Fabric.Merge.csv cache_a spec <> oracle then
        fail "store-read merge differs from in-memory render";
      (* 2. two worker processes over store B: byte-identical merge *)
      let store_b = Filename.concat dir "store_b" in
      ignore (Store.Cache.open_ ~dir:store_b);
      let child =
        match Unix.fork () with
        | 0 ->
            (try
               let cache = Store.Cache.open_ ~dir:store_b in
               ignore
                 (Fabric.Worker.run ~chunk:2 ~ttl:5. ~worker:"smoke.w2" cache
                    spec)
             with e ->
               Printf.eprintf "worker died: %s\n%!" (Printexc.to_string e);
               Unix._exit 1);
            Unix._exit 0
        | pid -> pid
      in
      let cache_b = Store.Cache.open_ ~dir:store_b in
      let events = ref [] in
      let report =
        Fabric.Worker.run ~chunk:2 ~ttl:5. ~worker:"smoke.w1"
          ~on_event:(fun ev -> events := ev :: !events)
          cache_b spec
      in
      (match Unix.waitpid [] child with
      | _, Unix.WEXITED 0 -> ()
      | _ -> fail "second worker exited abnormally");
      if report.Fabric.Worker.ranges_claimed = 0 then
        fail "first worker claimed no ranges";
      if
        not
          (List.exists
             (fun ev -> ev.Telemetry.Event.kind = Telemetry.Event.Lease_claimed)
             !events)
      then fail "no lease_claimed telemetry event";
      List.iter
        (fun ev ->
          match Telemetry.Event.of_line (Telemetry.Event.to_line ev) with
          | Some ev' when ev' = ev -> ()
          | _ -> fail "lease event does not round-trip through JSONL")
        !events;
      let merged = Fabric.Merge.csv cache_b spec in
      if merged <> oracle then
        fail "two-worker merge differs from single-process bytes";
      Printf.printf
        "fabric ok (2 workers, merged bytes = single-process sweep)\n";
      (* 3. fsck: clean store, then one injected corruption *)
      let r = Store.Fsck.run ~jobs:2 cache_b in
      if r.Store.Fsck.corrupt <> 0 || r.Store.Fsck.stale_index <> 0 then
        fail "fsck of a healthy store found corrupt=%d stale=%d"
          r.Store.Fsck.corrupt r.Store.Fsck.stale_index;
      let victim =
        let m = Fabric.Spec.manifest spec in
        let hex = Store.Key.to_hex m.Store.Manifest.points.(0) in
        Filename.concat
          (Filename.concat
             (Filename.concat store_b "objects")
             (String.sub hex 0 2))
          hex
      in
      let fd = Unix.openfile victim [ O_WRONLY ] 0 in
      ignore (Unix.lseek fd 100 Unix.SEEK_SET);
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      let r = Store.Fsck.run ~jobs:2 cache_b in
      if r.Store.Fsck.corrupt <> 1 || r.Store.Fsck.evicted <> 1 then
        fail "fsck missed the injected corruption (corrupt=%d evicted=%d)"
          r.Store.Fsck.corrupt r.Store.Fsck.evicted;
      let r = Store.Fsck.run ~jobs:2 cache_b in
      if r.Store.Fsck.corrupt <> 0 then fail "fsck left corruption behind";
      Printf.printf "fsck ok (clean store clean, 1 injected corruption \
                     detected and evicted)\n";
      (* 4. gc: orphans collected, manifest-rooted objects kept *)
      let orphan_key = Store.Key.of_material "fabric-smoke orphan" in
      Store.Cache.store_value cache_b orphan_key 42;
      let orphan_path =
        let hex = Store.Key.to_hex orphan_key in
        Filename.concat
          (Filename.concat
             (Filename.concat store_b "objects")
             (String.sub hex 0 2))
          hex
      in
      (* age the orphan past the generation guard *)
      let old = Unix.gettimeofday () -. 3600. in
      Unix.utimes orphan_path old old;
      let live_before = Store.Cache.objects cache_b in
      let r = Store.Gc.run cache_b in
      if r.Store.Gc.collected < 1 then fail "gc did not collect the orphan";
      if Store.Cache.mem cache_b orphan_key then
        fail "gc left the orphan object behind";
      let m = Fabric.Spec.manifest spec in
      if Store.Manifest.progress cache_b m <> Fabric.Spec.size spec - 1 then
        fail "gc touched manifest-rooted objects";
      (* point 0 was evicted by the fsck test above, hence the -1;
         re-running one worker heals it and the merge matches again *)
      ignore (Fabric.Worker.run ~chunk:2 ~worker:"smoke.w3" cache_b spec);
      if Fabric.Merge.csv cache_b spec <> oracle then
        fail "post-gc merge differs";
      if Store.Cache.objects cache_b <> live_before then
        fail "index object count inconsistent after gc + heal";
      Printf.printf
        "gc ok (orphan collected, %d live manifest points kept)\n"
        r.Store.Gc.live;
      Printf.printf "fabric smoke ok\n";
      0)

let smoke_cmd =
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "CI check: a two-worker fabric run merges byte-identically to \
          the single-process sweep, fsck passes a healthy store and \
          detects injected corruption, and gc collects orphans while \
          refusing manifest-rooted objects.")
    Term.(const smoke_run $ const ())

let cmd =
  Cmd.group
    (Cmd.info "bcn_fabric"
       ~doc:
         "Distributed sweep fabric: crash-safe work-leasing workers \
          over the content-addressed store, with stateless \
          byte-deterministic merging, parallel fsck and generational \
          gc.")
    [ spec_cmd; work_cmd; status_cmd; merge_cmd; fsck_cmd; gc_cmd; smoke_cmd ]

let () = exit (Cmd.eval' cmd)
