(* RCP as a first-class protocol, across every layer it touches:
   fluid-model stability and the queue-term ablation, the normalized
   phase-plane view, packet-vs-fluid equilibrium agreement, the
   Scenario codec's version handling (v1 bytes preserved, checked
   against a committed fixture), jobs-independence of the packet
   engine, warm-store resilience margins with zero simulations, and a
   warm serve round trip — the last three exercising exactly the
   generic paths (compile / outcome_stats / Cache), never an
   RCP-specific branch. *)

module Scenario = Simnet.Scenario
module Cache = Store.Cache
module Sweep = Store.Sweep
module R = Faultnet.Resilience

let params = Fluid.Params.default
let fair_share = 10e9 /. 50.

let with_store f =
  let dir = Filename.temp_dir "dcecc-rcp-test" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f (Cache.open_ ~dir))

(* ---------------- fluid model ---------------- *)

let test_equilibrium_and_linearization () =
  List.iter
    (fun variant ->
      let p = Fluid.Rcp.make ~variant params in
      let q_star, r_star = Fluid.Rcp.equilibrium p in
      Alcotest.(check (float 0.)) "empty queue at equilibrium" 0. q_star;
      Alcotest.(check (float 1e-9)) "fair share at equilibrium" fair_share
        r_star;
      (* both variants share one linearization *)
      let m, n = Fluid.Rcp.char_poly p in
      Alcotest.(check (float 1e-9)) "m = alpha/tau"
        (Fluid.Rcp.default_alpha /. Fluid.Rcp.default_tau)
        m;
      Alcotest.(check (float 1e-3)) "n = beta/tau^2"
        (Fluid.Rcp.default_beta /. (Fluid.Rcp.default_tau *. Fluid.Rcp.default_tau))
        n;
      Alcotest.(check bool) "stable for positive gains" true
        (Fluid.Rcp.stable p);
      Alcotest.(check (float 1e-12)) "damping ratio alpha/(2 sqrt beta)"
        (Fluid.Rcp.default_alpha /. (2. *. sqrt Fluid.Rcp.default_beta))
        (Fluid.Rcp.damping_ratio p);
      match Fluid.Rcp.lti p with
      | None -> Alcotest.fail "stock gains must linearize to an Lti2"
      | Some l ->
          Alcotest.(check (float 1e-12)) "Lti2 agrees on the damping ratio"
            (Fluid.Rcp.damping_ratio p)
            (Control.Lti2.damping_ratio l))
    [ Fluid.Rcp.By_capacity; Fluid.Rcp.By_load ]

let test_queue_term_ablation () =
  let p = Fluid.Rcp.make ~beta:0. params in
  Alcotest.(check bool) "beta = 0 is only marginally stable" false
    (Fluid.Rcp.stable p);
  Alcotest.(check bool) "no second-order loop at beta = 0" true
    (Fluid.Rcp.lti p = None);
  Alcotest.(check bool) "damping ratio degenerates" true
    (Fluid.Rcp.damping_ratio p = infinity);
  (match Fluid.Rcp.eigenvalues p with
  | Numerics.Mat2.Real_pair (l1, l2) ->
      Alcotest.(check (float 1e-6)) "fast pole at -alpha/tau"
        (-.Fluid.Rcp.default_alpha /. Fluid.Rcp.default_tau)
        l1;
      Alcotest.(check (float 0.)) "pole at the origin" 0. l2
  | Numerics.Mat2.Complex_pair _ ->
      Alcotest.fail "ablated poles must be real");
  (* the numerical content: start the sources above the fair share so
     the overshoot builds a standing queue. With the queue term that
     queue drains; without it the rate mismatch still dies out but the
     queue is a pure integrator of the transient and parks at whatever
     the overshoot deposited. *)
  let r_init = 1.5 *. fair_share in
  let final (ph : Fluid.Rcp.phys) =
    let s = ph.Fluid.Rcp.q in
    s.Numerics.Series.vs.(Numerics.Series.length s - 1)
  in
  let stock =
    Fluid.Rcp.simulate ~r_init ~t_end:10e-3 (Fluid.Rcp.make params)
  in
  let ablated = Fluid.Rcp.simulate ~r_init ~t_end:10e-3 p in
  Alcotest.(check bool) "stock gains drain the queue" true
    (final stock < 1e4);
  Alcotest.(check bool) "beta = 0 parks the transient's queue" true
    (final ablated > 1e5)

let test_phase_plane_view () =
  let p = Fluid.Rcp.make params in
  let sys = Fluid.Rcp.system p in
  (match sys with
  | Phaseplane.System.Smooth_fast _ -> ()
  | _ -> Alcotest.fail "RCP must expose the allocation-free smooth view");
  let eq = Fluid.Rcp.to_xy p ~q:0. ~r:fair_share in
  let v = Phaseplane.System.eval sys eq in
  Alcotest.(check (float 0.)) "equilibrium is a fixed point (x)" 0.
    v.Numerics.Vec2.x;
  Alcotest.(check (float 0.)) "equilibrium is a fixed point (y)" 0.
    v.Numerics.Vec2.y;
  (* the carried rhs must mirror the closure bit for bit *)
  let rhs = Phaseplane.System.to_auto sys in
  List.iter
    (fun (x, y) ->
      let c = Phaseplane.System.eval sys { Numerics.Vec2.x; y } in
      let dst = [| nan; nan |] in
      rhs [| x; y |] dst;
      Alcotest.(check bool) "rhs mirrors the closure (x)" true
        (Int64.bits_of_float c.Numerics.Vec2.x = Int64.bits_of_float dst.(0));
      Alcotest.(check bool) "rhs mirrors the closure (y)" true
        (Int64.bits_of_float c.Numerics.Vec2.y = Int64.bits_of_float dst.(1)))
    [ (0., 0.); (1e6, -5e8); (-2e5, 3e8); (2.5e6, 1e9) ]

(* ---------------- packet vs fluid ---------------- *)

let rcp_result s =
  match Scenario.compile s with
  | Scenario.Runnable c -> (
      match c.Scenario.pack (c.Scenario.run_many ~jobs:1 c.Scenario.configs) with
      | Scenario.Rcp_result r -> r
      | _ -> Alcotest.fail "expected an Rcp_result")

let test_packet_fluid_equilibrium () =
  let t_end = 10e-3 in
  let pr = rcp_result (Scenario.rcp ~t_end params) in
  let adv = pr.Simnet.Rcp.advertised in
  let final_adv =
    adv.Numerics.Series.vs.(Numerics.Series.length adv - 1)
  in
  Alcotest.(check bool) "packet advertised rate settles at the fair share"
    true
    (abs_float (final_adv -. fair_share) < 0.05 *. fair_share);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "every source paces at the advertised rate" true
        (abs_float (r -. final_adv) < 1e-6))
    pr.Simnet.Rcp.final_rates;
  Alcotest.(check bool) "link well utilized" true
    (pr.Simnet.Rcp.utilization > 0.85);
  let fq = pr.Simnet.Rcp.queue in
  let final_q = fq.Numerics.Series.vs.(Numerics.Series.length fq - 1) in
  Alcotest.(check bool) "packet queue settles low" true
    (final_q < 0.1 *. params.Fluid.Params.buffer);
  (* the fluid trace lands on the same equilibrium *)
  let ph = Fluid.Rcp.simulate ~t_end (Fluid.Rcp.make params) in
  let fr = ph.Fluid.Rcp.r in
  let fluid_r = fr.Numerics.Series.vs.(Numerics.Series.length fr - 1) in
  Alcotest.(check bool) "fluid and packet agree on the equilibrium rate" true
    (abs_float (final_adv -. fluid_r) < 0.05 *. fair_share)

let test_run_many_jobs_identity () =
  let cfgs =
    Array.map
      (fun alpha ->
        { (Simnet.Rcp.default_config ~t_end:2e-3 params) with
          Simnet.Rcp.alpha })
      [| 0.2; 0.4; 0.6; 0.8 |]
  in
  let r1 = Simnet.Rcp.run_many ~jobs:1 cfgs in
  let r4 = Simnet.Rcp.run_many ~jobs:4 cfgs in
  Alcotest.(check string) "jobs 1 = jobs 4 (bytes)"
    (Marshal.to_string r1 [])
    (Marshal.to_string r4 [])

(* ---------------- codec: versioning ---------------- *)

let rcp_scenario_gen =
  QCheck.Gen.(
    let* t_end = float_range 1e-3 1e-2 in
    let* alpha = float_range 0.1 1.0 in
    let* beta = oneof [ return 0.; float_range 0.05 0.5 ] in
    let* interval = float_range 5e-5 5e-4 in
    let* variant = oneofl [ Fluid.Rcp.By_capacity; Fluid.Rcp.By_load ] in
    let* seed = int_range 0 1000 in
    let* fault =
      oneof
        [
          return None;
          (let* p = float_range 0.01 0.5 in
           return
             (Some Simnet.Fault_plan.(with_bcn_loss ~pos:(Bernoulli p) none)));
        ]
    in
    let s = Scenario.rcp ~t_end ~alpha ~beta ~interval ~variant params in
    let s = Scenario.with_seed s seed in
    let s = match fault with Some p -> Scenario.with_fault s p | None -> s in
    return s)

let qcheck_rcp_roundtrip =
  QCheck.Test.make ~name:"rcp: decode (encode s) = Ok s" ~count:200
    (QCheck.make rcp_scenario_gen ~print:Scenario.encode)
    (fun s ->
      match Scenario.decode (Scenario.encode s) with
      | Ok s' -> Scenario.equal s s' && Scenario.encode s' = Scenario.encode s
      | Error _ -> false)

let swap_version line ~from_v ~to_v =
  let pre = Printf.sprintf "{\"v\": %d," from_v in
  let n = String.length pre in
  if String.length line < n || String.sub line 0 n <> pre then
    Alcotest.failf "document does not open with %s: %s" pre line;
  Printf.sprintf "{\"v\": %d,%s" to_v
    (String.sub line n (String.length line - n))

let test_version_tags () =
  let bcn = Scenario.encode (Scenario.bcn ~t_end:2e-3 params) in
  let rcp = Scenario.encode (Scenario.rcp ~t_end:2e-3 params) in
  (* a document carries the smallest version able to express it: the
     pre-RCP arms keep their v1 bytes (and so their store keys) *)
  Alcotest.(check string) "pre-RCP scenarios stay v1" "{\"v\": 1,"
    (String.sub bcn 0 8);
  Alcotest.(check string) "RCP scenarios are v2" "{\"v\": 2,"
    (String.sub rcp 0 8);
  let rejects name doc =
    match Scenario.decode doc with
    | Ok _ -> Alcotest.failf "%s unexpectedly decoded" name
    | Error _ -> ()
  in
  rejects "inflated version on a v1 document"
    (swap_version bcn ~from_v:1 ~to_v:2);
  rejects "understated version on an RCP document"
    (swap_version rcp ~from_v:2 ~to_v:1)

(* The committed fixture holds pre-RCP (v1) documents written before
   the RCP arm existed; they must decode and re-encode byte for byte,
   forever. *)
let test_v1_fixture () =
  let path =
    (* cwd is test/ under dune runtest, the workspace root under exec *)
    if Sys.file_exists "scenario_v1.jsonl" then "scenario_v1.jsonl"
    else Filename.concat "test" "scenario_v1.jsonl"
  in
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  Alcotest.(check bool) "fixture is non-empty" true (List.length lines > 0);
  List.iteri
    (fun i line ->
      match Scenario.decode line with
      | Error e -> Alcotest.failf "fixture line %d no longer decodes: %s" (i + 1) e
      | Ok s -> (
          Alcotest.(check string)
            (Printf.sprintf "fixture line %d re-encodes byte for byte" (i + 1))
            line (Scenario.encode s);
          match s.Scenario.model with
          | Scenario.Rcp _ ->
              Alcotest.failf "fixture line %d is not pre-RCP" (i + 1)
          | _ -> ()))
    lines

(* ---------------- resilience margins, warm store ---------------- *)

let test_supports_matrix () =
  let cases = R.protocol_cases ~t_end:2e-3 () in
  Alcotest.(check (list string))
    "one case per protocol"
    [ "bcn"; "e2cm"; "fera"; "rcp" ]
    (List.map (fun sc -> sc.R.label) cases);
  let find l = List.find (fun sc -> sc.R.label = l) cases in
  let flap = R.Flap_depth { period = 5e-4; duty = 0.5 } in
  List.iter
    (fun sc ->
      Alcotest.(check bool)
        (sc.R.label ^ " takes feedback loss")
        true (R.supports sc R.Bcn_loss))
    cases;
  Alcotest.(check bool) "rcp takes capacity flaps" true
    (R.supports (find "rcp") flap);
  Alcotest.(check bool) "e2cm cannot take capacity flaps" false
    (R.supports (find "e2cm") flap);
  Alcotest.(check bool) "fera cannot take capacity flaps" false
    (R.supports (find "fera") flap)

let test_warm_rcp_margin () =
  with_store (fun c ->
      let sc = R.of_scenario ~label:"rcp" (Scenario.rcp ~t_end:2e-3 params) in
      let memo = Sweep.resilience_memo c in
      let cold = R.bisect ~iters:2 ~memo ~seed:5 sc R.Bcn_loss in
      Cache.reset_stats c;
      let warm = R.bisect ~iters:2 ~memo ~seed:5 sc R.Bcn_loss in
      Alcotest.(check int) "warm RCP bisect: zero simulations" 0
        (Cache.stats c).Cache.misses;
      Alcotest.(check bool) "warm RCP bisect: probes served from store" true
        ((Cache.stats c).Cache.hits > 0);
      Alcotest.(check string) "warm margin byte-identical"
        (Marshal.to_string cold [])
        (Marshal.to_string warm []))

(* ---------------- fabric merge row ---------------- *)

let test_fabric_row () =
  let s = Scenario.rcp ~t_end:2e-3 params in
  let row =
    Fabric.Merge.row_of ~point:0 ~seed:s.Scenario.seed (Sweep.exec s)
  in
  Alcotest.(check string) "model column" "rcp" row.Fabric.Merge.model;
  Alcotest.(check bool) "utilization populated" true
    (row.Fabric.Merge.utilization > 0.);
  Alcotest.(check bool) "rate feedbacks counted" true
    (row.Fabric.Merge.messages > 0);
  match row.Fabric.Merge.fairness with
  | None -> Alcotest.fail "RCP exposes final rates, so fairness must render"
  | Some j ->
      Alcotest.(check bool) "single advertised rate is perfectly fair" true
        (j > 0.999)

(* ---------------- serve: warm RCP requests ---------------- *)

let temp_dir () = Filename.temp_dir "dcecc-rcp-serve" ""

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let fork_daemon ~socket ~store ~jobs =
  match Unix.fork () with
  | 0 ->
      (try
         Serve.Daemon.run
           {
             Serve.Daemon.socket_path = socket;
             store_dir = Some store;
             jobs;
             max_inflight = 16;
             log = false;
           }
       with e ->
         Printf.eprintf "daemon died: %s\n%!" (Printexc.to_string e);
         Unix._exit 1);
      Unix._exit 0
  | pid -> pid

let stop_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let result_exn = function
  | Serve.Protocol.Result { warm; payload; _ } -> (warm, payload)
  | Serve.Protocol.Error { message; _ } ->
      Alcotest.failf "request failed: %s" message
  | _ -> Alcotest.fail "unexpected response"

let test_serve_rcp_warm () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "serve.sock" in
      let store = Filename.concat dir "store" in
      let req =
        Serve.Tasks.Run
          (Scenario.rcp ~t_end:2e-3 (Fluid.Params.with_flows params 8))
      in
      let pid = fork_daemon ~socket ~store ~jobs:1 in
      Fun.protect
        ~finally:(fun () -> stop_daemon pid)
        (fun () ->
          let c = Serve.Client.connect ~path:socket () in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c)
            (fun () ->
              let w1, p1 = result_exn (Serve.Client.request c ~id:1 req) in
              Alcotest.(check bool) "first RCP answer is cold" false w1;
              Alcotest.(check string)
                "daemon payload = direct execution (no RCP branch in the \
                 daemon)"
                (Serve.Tasks.execute req) p1;
              let w2, p2 = result_exn (Serve.Client.request c ~id:2 req) in
              Alcotest.(check bool) "repeat is warm" true w2;
              Alcotest.(check string) "warm payload byte-identical" p1 p2;
              let m = Serve.Client.stats c ~id:3 in
              (match List.assoc_opt "serve.executed" m with
              | Some v ->
                  Alcotest.(check int) "exactly one simulation" 1
                    (int_of_float v)
              | None -> Alcotest.fail "stats missing serve.executed");
              Serve.Client.shutdown c ~id:4)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "rcp"
    [
      (* the serve daemon forks; every fork must happen before any test
         touches a pool and spawns domains, so this suite runs first *)
      ( "serve",
        [
          Alcotest.test_case "RCP run: cold then warm (bytes)" `Quick
            test_serve_rcp_warm;
        ] );
      ( "fluid",
        [
          Alcotest.test_case "equilibrium and linearization" `Quick
            test_equilibrium_and_linearization;
          Alcotest.test_case "queue-term ablation (beta = 0)" `Quick
            test_queue_term_ablation;
          Alcotest.test_case "phase-plane view" `Quick test_phase_plane_view;
        ] );
      ( "packet",
        [
          Alcotest.test_case "packet equilibrium = fluid equilibrium" `Quick
            test_packet_fluid_equilibrium;
          Alcotest.test_case "run_many jobs 1 = jobs 4" `Quick
            test_run_many_jobs_identity;
        ] );
      qsuite "codec-props" [ qcheck_rcp_roundtrip ];
      ( "codec",
        [
          Alcotest.test_case "version tags" `Quick test_version_tags;
          Alcotest.test_case "v1 fixture stays byte-stable" `Quick
            test_v1_fixture;
        ] );
      ( "margins",
        [
          Alcotest.test_case "supports matrix" `Quick test_supports_matrix;
          Alcotest.test_case "warm RCP margin: zero simulations" `Quick
            test_warm_rcp_margin;
          Alcotest.test_case "fabric merge row" `Quick test_fabric_row;
        ] );
    ]
