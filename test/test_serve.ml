(* Tests for the serve daemon's determinism contract, beyond what the
   bcn_serve smoke covers: cold -> warm byte-identity through the
   socket for a scenario (Run) request, in-flight dedup of identical
   concurrent requests, crash-resume (SIGKILL the daemon, restart on
   the same store: the repeat is warm and recomputes nothing), and
   jobs 1 vs jobs 4 response identity.

   Every daemon is forked BEFORE the parent touches a pool: the
   parent's reference computations run through Tasks.execute, whose
   internal pools are jobs:1 and spawn no domains, so fork stays
   safe. *)

let temp_dir () = Filename.temp_dir "dcecc-serve-test" ""

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let fork_daemon ~socket ~store ~jobs =
  match Unix.fork () with
  | 0 ->
      (try
         Serve.Daemon.run
           {
             Serve.Daemon.socket_path = socket;
             store_dir = Some store;
             jobs;
             max_inflight = 16;
             log = false;
           }
       with e ->
         Printf.eprintf "daemon died: %s\n%!" (Printexc.to_string e);
         Unix._exit 1);
      Unix._exit 0
  | pid -> pid

(* reap [pid] whatever state the test left it in *)
let stop_daemon pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let with_daemon ~socket ~store ~jobs f =
  let pid = fork_daemon ~socket ~store ~jobs in
  Fun.protect ~finally:(fun () -> stop_daemon pid) (fun () -> f pid)

let with_client ~socket f =
  let c = Serve.Client.connect ~path:socket () in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let metric name m =
  match List.assoc_opt name m with
  | Some v -> int_of_float v
  | None -> Alcotest.failf "stats: missing metric %s" name

let result_exn = function
  | Serve.Protocol.Result { warm; dedup; payload; _ } -> (warm, dedup, payload)
  | Serve.Protocol.Error { message; _ } ->
      Alcotest.failf "request failed: %s" message
  | _ -> Alcotest.fail "unexpected response"

(* a deliberately small scenario so the cold run stays fast *)
let tiny_scenario () =
  Simnet.Scenario.bcn ~t_end:2e-3 (Fluid.Params.with_flows Fluid.Params.default 8)

(* ---------------- cold -> warm byte-identity (Run) ---------------- *)

let test_run_cold_warm () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "serve.sock" in
      let store = Filename.concat dir "store" in
      let req = Serve.Tasks.Run (tiny_scenario ()) in
      with_daemon ~socket ~store ~jobs:1 (fun _pid ->
          with_client ~socket (fun c ->
              let w1, _, p1 = result_exn (Serve.Client.request c ~id:1 req) in
              Alcotest.(check bool) "first answer is cold" false w1;
              Alcotest.(check string)
                "cold payload = direct execution" (Serve.Tasks.execute req) p1;
              let w2, _, p2 = result_exn (Serve.Client.request c ~id:2 req) in
              Alcotest.(check bool) "repeat is warm" true w2;
              Alcotest.(check string) "warm payload = cold payload" p1 p2;
              let m = Serve.Client.stats c ~id:3 in
              Alcotest.(check int)
                "exactly one computation" 1
                (metric "serve.executed" m);
              Serve.Client.shutdown c ~id:4)))

(* ---------------- in-flight dedup ---------------- *)

let test_inflight_dedup () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "serve.sock" in
      let store = Filename.concat dir "store" in
      let req =
        Serve.Tasks.Sweep
          {
            param = "ru";
            lo = 4e6;
            hi = 16e6;
            steps = 3;
            log_scale = false;
            buffer = 15e6;
          }
      in
      with_daemon ~socket ~store ~jobs:1 (fun _pid ->
          with_client ~socket (fun c ->
              (* one write syscall carrying both request lines: the
                 daemon admits both before any completion can land *)
              let cmd = Serve.Protocol.Compute req in
              Serve.Client.send_raw c
                (Serve.Protocol.encode_request ~id:1 cmd
                ^ Serve.Protocol.encode_request ~id:2 cmd);
              let rec read_result id =
                match Serve.Client.next c with
                | Serve.Protocol.Result { id = rid; warm; dedup; payload }
                  when rid = id ->
                    (warm, dedup, payload)
                | Serve.Protocol.Error { id = rid; message } when rid = id ->
                    Alcotest.failf "request %d failed: %s" id message
                | _ -> read_result id
              in
              let w1, d1, p1 = read_result 1 in
              let w2, d2, p2 = read_result 2 in
              Alcotest.(check bool) "neither answered warm" false (w1 || w2);
              Alcotest.(check bool) "first is the computing one" false d1;
              Alcotest.(check bool) "second joined in flight" true d2;
              Alcotest.(check string) "identical payloads" p1 p2;
              Alcotest.(check string)
                "payload = direct execution" (Serve.Tasks.execute req) p1;
              let m = Serve.Client.stats c ~id:3 in
              Alcotest.(check int)
                "one computation for the pair" 1
                (metric "serve.executed" m);
              Serve.Client.shutdown c ~id:4)))

(* ---------------- crash-resume ---------------- *)

let test_crash_resume () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Filename.concat dir "store" in
      let req =
        Serve.Tasks.Sweep
          {
            param = "gi";
            lo = 1.;
            hi = 4.;
            steps = 3;
            log_scale = false;
            buffer = 15e6;
          }
      in
      let socket1 = Filename.concat dir "serve1.sock" in
      let cold =
        with_daemon ~socket:socket1 ~store ~jobs:1 (fun pid ->
            let p =
              with_client ~socket:socket1 (fun c ->
                  let w, _, p = result_exn (Serve.Client.request c ~id:1 req) in
                  Alcotest.(check bool) "first answer is cold" false w;
                  p)
            in
            (* completed points persist immediately: a SIGKILL here must
               lose nothing *)
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid);
            p)
      in
      let socket2 = Filename.concat dir "serve2.sock" in
      with_daemon ~socket:socket2 ~store ~jobs:1 (fun _pid ->
          with_client ~socket:socket2 (fun c ->
              let w, _, p = result_exn (Serve.Client.request c ~id:1 req) in
              Alcotest.(check bool) "restarted daemon answers warm" true w;
              Alcotest.(check string) "payload survives the crash" cold p;
              let m = Serve.Client.stats c ~id:2 in
              Alcotest.(check int)
                "zero recomputation after restart" 0
                (metric "serve.executed" m);
              Serve.Client.shutdown c ~id:3)))

(* ---------------- jobs 1 = jobs 4 ---------------- *)

let test_jobs_identity () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let req =
        Serve.Tasks.Region
          {
            param = "gi";
            lo = 0.5;
            hi = 8.;
            param2 = "gd";
            lo2 = 2e-3;
            hi2 = 32e-3;
            buffer = 15e6;
            coarse = 4;
            levels = 1;
          }
      in
      let payload_at jobs tag =
        let socket = Filename.concat dir (tag ^ ".sock") in
        let store = Filename.concat dir (tag ^ ".store") in
        with_daemon ~socket ~store ~jobs (fun _pid ->
            with_client ~socket (fun c ->
                let w, _, p = result_exn (Serve.Client.request c ~id:1 req) in
                Alcotest.(check bool) "cold on a fresh store" false w;
                Serve.Client.shutdown c ~id:2;
                p))
      in
      let p1 = payload_at 1 "j1" in
      let p4 = payload_at 4 "j4" in
      Alcotest.(check string) "jobs 1 payload = jobs 4 payload" p1 p4;
      Alcotest.(check string)
        "payload = direct execution" (Serve.Tasks.execute req) p1)

(* ---------------- batch: fabric-backed sweeps ---------------- *)

(* A Batch request makes the daemon one more fabric worker over its
   own store. The answer must equal the storeless single-process
   render byte for byte, a repeat must be warm, and — because the
   answer key deliberately excludes the lease chunking — a repeat at a
   different chunk must be warm too. *)
let test_batch_fabric () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let socket = Filename.concat dir "serve.sock" in
      let store = Filename.concat dir "store" in
      let spec =
        Fabric.Spec.Seeds
          {
            base =
              Simnet.Scenario.bcn ~t_end:2e-4 ~sample_dt:1e-4
                ~sampling:Simnet.Scenario.Bernoulli
                (Fluid.Params.with_flows Fluid.Params.default 4);
            first_seed = 0;
            count = 5;
          }
      in
      let req chunk = Serve.Tasks.Batch { spec; chunk; as_json = false } in
      with_daemon ~socket ~store ~jobs:1 (fun _pid ->
          with_client ~socket (fun c ->
              let w1, _, p1 =
                result_exn (Serve.Client.request c ~id:1 (req 2))
              in
              Alcotest.(check bool) "first batch is cold" false w1;
              Alcotest.(check string)
                "batch payload = direct execution"
                (Serve.Tasks.execute (req 2))
                p1;
              let w2, _, p2 =
                result_exn (Serve.Client.request c ~id:2 (req 2))
              in
              Alcotest.(check bool) "repeat is warm" true w2;
              Alcotest.(check string) "warm bytes identical" p1 p2;
              let w3, _, p3 =
                result_exn (Serve.Client.request c ~id:3 (req 3))
              in
              Alcotest.(check bool)
                "different chunking is still warm" true w3;
              Alcotest.(check string) "chunking never shapes bytes" p1 p3;
              let m = Serve.Client.stats c ~id:4 in
              Alcotest.(check int)
                "one computation for all three" 1
                (metric "serve.executed" m);
              Serve.Client.shutdown c ~id:5)))

let () =
  Alcotest.run "serve"
    [
      ( "daemon",
        [
          Alcotest.test_case "run: cold = warm = direct (bytes)" `Quick
            test_run_cold_warm;
          Alcotest.test_case "in-flight dedup: one computation" `Quick
            test_inflight_dedup;
          Alcotest.test_case "crash-resume: warm after SIGKILL" `Quick
            test_crash_resume;
          Alcotest.test_case "jobs 1 = jobs 4 (bytes)" `Quick
            test_jobs_identity;
          Alcotest.test_case "batch: fabric-backed, chunk-independent" `Quick
            test_batch_fabric;
        ] );
    ]
