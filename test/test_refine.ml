(* Tests for the adaptive boundary-refinement engine and the PR's
   satellites: quadtree-vs-dense-oracle equivalence on half-planes
   (where corner disagreement detects the boundary exactly at every
   stride), jobs byte-identity, warm-memo zero-backend-calls (Hashtbl
   and content-addressed store), the streaming scan solver against the
   recording integrator bit for bit, the streaming Transient.measure
   against a reference copy of the recorded implementation, the
   Safe_region.render extent-label fix, and Resilience.scan. *)

module Engine = Refine.Engine

let marshal_eq msg a b =
  Alcotest.(check bool)
    msg true
    (String.equal (Marshal.to_string a []) (Marshal.to_string b []))

(* ---------------- engine vs dense oracle ---------------- *)

let halfplane a b c (pts : (float * float) array) =
  Array.map (fun (x, y) -> (a *. x) +. (b *. y) +. c >= 0.) pts

let unit_dom = { Engine.x0 = 0.; x1 = 1.; y0 = 0.; y1 = 1. }

(* A straight line crossing any axis-aligned square leaves corners on
   both sides (both half-planes are convex), so corner disagreement
   finds every crossed cell at every stride: the adaptive boundary
   must equal the dense-oracle mixed set exactly. *)
let qcheck_halfplane =
  QCheck.Test.make ~name:"adaptive boundary = dense oracle (half-planes)"
    ~count:100
    QCheck.(
      triple (float_range (-1.) 1.) (float_range (-1.) 1.)
        (float_range (-1.5) 1.5))
    (fun (a, b, c) ->
      let f = halfplane a b c in
      let t = Engine.refine ~coarse:(4, 4) ~levels:2 unit_dom f in
      let dense, _ = Engine.dense_mixed_cells unit_dom ~nx:16 ~ny:16 f in
      if t.Engine.boundary_cells <> dense then
        QCheck.Test.fail_reportf "boundary cells: adaptive %d, dense %d"
          (Array.length t.Engine.boundary_cells)
          (Array.length dense);
      (* every evaluated corner agrees with the verdict function *)
      Array.iter
        (fun (i, j, v) ->
          let pt = Engine.point t i j in
          if v <> (f [| pt |]).(0) then
            QCheck.Test.fail_reportf "corner (%d, %d) disagrees" i j)
        t.Engine.corners;
      (* every uniform leaf is genuinely uniform on the fine lattice *)
      Array.iter
        (fun l ->
          for i = l.Engine.li to l.Engine.li + l.Engine.lstride do
            for j = l.Engine.lj to l.Engine.lj + l.Engine.lstride do
              if (f [| Engine.point t i j |]).(0) <> l.Engine.lverdict then
                QCheck.Test.fail_reportf "leaf (%d, %d) not uniform"
                  l.Engine.li l.Engine.lj
            done
          done)
        t.Engine.leaves;
      (* traced segments stay inside their cells' bounding boxes *)
      Array.iter
        (fun s ->
          if
            not
              (s.Engine.ax >= 0. && s.Engine.ax <= 1. && s.Engine.ay >= 0.
             && s.Engine.ay <= 1. && s.Engine.bx >= 0. && s.Engine.bx <= 1.
             && s.Engine.by >= 0. && s.Engine.by <= 1.)
          then QCheck.Test.fail_report "segment endpoint outside the domain")
        t.Engine.segments;
      true)

let test_engine_savings () =
  (* the headline property on a non-trivial boundary: strictly fewer
     evaluations than the dense corner lattice at equal resolution *)
  let f = halfplane 1. 0.7 (-0.8) in
  let t = Engine.refine ~coarse:(4, 4) ~levels:4 unit_dom f in
  let _, dense_evals = Engine.dense_mixed_cells unit_dom ~nx:64 ~ny:64 f in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %d < dense %d evaluations" t.Engine.evaluations
       dense_evals)
    true
    (t.Engine.evaluations * 4 < dense_evals)

(* ---------------- jobs byte-identity ---------------- *)

let test_jobs_identity () =
  let p = Fluid.Params.default in
  let t1 = Refine.Safe_plane.trace ~jobs:1 ~coarse:(4, 4) ~levels:2 p in
  let t4 = Refine.Safe_plane.trace ~jobs:4 ~coarse:(4, 4) ~levels:2 p in
  marshal_eq "safe-plane refinement jobs 1 = jobs 4" t1 t4

(* ---------------- warm refinement is free ---------------- *)

let counting_backend f calls pts =
  incr calls;
  f pts

let test_warm_zero_calls () =
  let tbl : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let memo =
    {
      Engine.key = (fun ~x ~y -> Printf.sprintf "%.17g,%.17g" x y);
      lookup = Hashtbl.find_opt tbl;
      save = Hashtbl.replace tbl;
    }
  in
  let calls = ref 0 in
  let f = counting_backend (halfplane 0.9 1.1 (-1.)) calls in
  let cold = Engine.refine ~memo ~coarse:(4, 4) ~levels:2 unit_dom f in
  let cold_calls = !calls in
  Alcotest.(check bool) "cold refinement calls the backend" true (cold_calls > 0);
  calls := 0;
  let warm = Engine.refine ~memo ~coarse:(4, 4) ~levels:2 unit_dom f in
  Alcotest.(check int) "warm refinement: zero backend calls" 0 !calls;
  marshal_eq "warm result byte-identical (same logical evaluations)" cold warm

let with_store f =
  let dir = Filename.temp_dir "dcecc-refine-test" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f (Store.Cache.open_ ~dir))

let test_warm_store_zero_sims () =
  with_store (fun cache ->
      let p = Fluid.Params.default in
      let store = Store.Sweep.verdict_memo cache in
      let trace () =
        Refine.Safe_plane.trace ~store ~coarse:(4, 4) ~levels:1 ~edge_iters:2 p
      in
      let cold = trace () in
      let s = Store.Cache.stats cache in
      Alcotest.(check bool)
        "cold trace persists verdicts" true
        (s.Store.Cache.puts > 0);
      Store.Cache.reset_stats cache;
      let warm = trace () in
      let s = Store.Cache.stats cache in
      Alcotest.(check int) "warm trace: no misses" 0 s.Store.Cache.misses;
      Alcotest.(check int) "warm trace: no new entries" 0 s.Store.Cache.puts;
      marshal_eq "warm trace byte-identical" cold warm)

(* ---------------- streaming scan = recording integrator ----------- *)

let test_scan_solver_bits () =
  let p = Fluid.Params.default in
  let sys = Fluid.Model.normalized_system p in
  let p0 = Fluid.Model.start_point p in
  let t_max = 2e-3 in
  let tr = Phaseplane.Trajectory.integrate ~t_max sys p0 in
  let pts = ref [] in
  let sc =
    Phaseplane.Trajectory.scan ~t_max
      ~on_point:(fun pt -> pts := (pt.(0), pt.(1), pt.(2)) :: !pts)
      sys p0
  in
  let streamed = Array.of_list (List.rev !pts) in
  let recorded =
    Array.init
      (Array.length tr.Phaseplane.Trajectory.sol.Numerics.Ode.ts)
      (fun i ->
        ( tr.Phaseplane.Trajectory.sol.Numerics.Ode.ts.(i),
          tr.Phaseplane.Trajectory.sol.Numerics.Ode.ys.(i).(0),
          tr.Phaseplane.Trajectory.sol.Numerics.Ode.ys.(i).(1) ))
  in
  marshal_eq "streamed samples = recorded samples (bits)" streamed recorded;
  marshal_eq "switch crossings" tr.Phaseplane.Trajectory.switch_crossings
    sc.Phaseplane.Trajectory.scan_switch;
  marshal_eq "axis crossings" tr.Phaseplane.Trajectory.axis_crossings
    sc.Phaseplane.Trajectory.scan_axis;
  Alcotest.(check bool)
    "stop reason" true
    (tr.Phaseplane.Trajectory.stop = sc.Phaseplane.Trajectory.scan_stop)

let test_scan_solver_terminal () =
  let p = Fluid.Params.default in
  let sys = Fluid.Model.normalized_system p in
  let p0 = Fluid.Model.start_point p in
  let q0 = p.Fluid.Params.q0 in
  (* a box the trajectory leaves during its first overshoot, forcing
     the terminal-event path through both drivers *)
  let box =
    ( Numerics.Vec2.make (-2. *. q0) (-1e12),
      Numerics.Vec2.make (0.1 *. q0) 1e12 )
  in
  let tr = Phaseplane.Trajectory.integrate ~t_max:1. ~box sys p0 in
  let last = ref (nan, nan, nan) in
  let sc =
    Phaseplane.Trajectory.scan ~t_max:1. ~box
      ~on_point:(fun pt -> last := (pt.(0), pt.(1), pt.(2)))
      sys p0
  in
  Alcotest.(check bool)
    "recorded run left the box" true
    (tr.Phaseplane.Trajectory.stop = Phaseplane.Trajectory.Left_box);
  Alcotest.(check bool)
    "streamed run left the box" true
    (sc.Phaseplane.Trajectory.scan_stop = Phaseplane.Trajectory.Left_box);
  let tf, pf = Phaseplane.Trajectory.final tr in
  marshal_eq "terminal point bits"
    (tf, pf.Numerics.Vec2.x, pf.Numerics.Vec2.y)
    !last

(* ---------------- streaming Transient.measure ---------------- *)

(* reference copy of the pre-streaming implementation (recorded
   trajectory + Series post-processing) *)
let reference_measure ~horizon ?(band = 0.05) p =
  let sys = Fluid.Model.normalized_system p in
  let tr =
    Phaseplane.Trajectory.integrate ~t_max:horizon sys (Fluid.Model.start_point p)
  in
  let xs = Phaseplane.Trajectory.x_series tr in
  let overshoot = Phaseplane.Trajectory.x_max tr in
  let undershoot =
    match tr.Phaseplane.Trajectory.switch_crossings with
    | { Phaseplane.Trajectory.ct; _ } :: _ ->
        let tail = Numerics.Series.tail_from xs ct in
        if Numerics.Series.is_empty tail then Phaseplane.Trajectory.x_min tr
        else snd (Numerics.Series.argmin tail)
    | [] -> Phaseplane.Trajectory.x_min tr
  in
  let threshold = band *. p.Fluid.Params.q0 in
  let settling_time =
    let last = ref None in
    Array.iteri
      (fun i v ->
        if Float.abs v > threshold then last := Some xs.Numerics.Series.ts.(i))
      xs.Numerics.Series.vs;
    match !last with
    | None -> Some 0.
    | Some t
      when t
           < xs.Numerics.Series.ts.(Numerics.Series.length xs - 1)
             -. (0.01 *. horizon) ->
        Some t
    | Some _ -> None
  in
  let decay_of_extrema extrema =
    let mags =
      List.filter_map
        (fun { Phaseplane.Trajectory.cp; _ } ->
          let m = Float.abs cp.Numerics.Vec2.x in
          if m > 0. then Some m else None)
        extrema
    in
    match mags with
    | _ :: (_ :: _ :: _ as tail) ->
        let rec ratios acc = function
          | a :: (b :: _ as rest) -> ratios (log (b /. a) :: acc) rest
          | [ _ ] | [] -> acc
        in
        let rs = ratios [] tail in
        if rs = [] then None
        else
          Some
            (exp (List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)))
    | _ -> None
  in
  ( overshoot,
    undershoot,
    List.length tr.Phaseplane.Trajectory.axis_crossings,
    settling_time,
    decay_of_extrema tr.Phaseplane.Trajectory.axis_crossings )

let test_measure_differential () =
  List.iter
    (fun (label, horizon, p) ->
      let m = Fluid.Transient.measure ~horizon p in
      let got =
        ( m.Fluid.Transient.overshoot,
          m.Fluid.Transient.undershoot,
          m.Fluid.Transient.oscillations,
          m.Fluid.Transient.settling_time,
          m.Fluid.Transient.decay_per_cycle )
      in
      marshal_eq label got (reference_measure ~horizon p))
    [
      ("default, 5 ms", 5e-3, Fluid.Params.default);
      ("default, 1 ms", 1e-3, Fluid.Params.default);
      ("gd = 1", 2e-3, Fluid.Params.with_gains ~gd:1. Fluid.Params.default);
      ( "w = 8000",
        2e-3,
        Fluid.Params.with_sampling ~w:8000. Fluid.Params.default );
    ]

let test_measure_allocation () =
  let p = Fluid.Params.default in
  ignore (Fluid.Transient.measure ~horizon:1e-3 p);
  let w0 = Gc.minor_words () in
  ignore (Fluid.Transient.measure ~horizon:1e-3 p);
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "measure allocates %.0f minor words (< 4000)" dw)
    true (dw < 4000.)

(* ---------------- Safe_region.render extent label ---------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render_header () =
  let p = Fluid.Params.default in
  let ra = Fluid.Safe_region.raster ~nq:6 ~nr:4 p in
  Alcotest.(check (float 0.))
    "q_max is the buffer size" p.Fluid.Params.buffer
    ra.Fluid.Safe_region.q_max;
  Alcotest.(check (float 0.))
    "r_max default" (2. *. Fluid.Params.equilibrium_rate p)
    ra.Fluid.Safe_region.r_max;
  let header =
    Printf.sprintf "%8s  q: 0 .. %s (buffer)" ""
      (Report.Table.si p.Fluid.Params.buffer)
  in
  Alcotest.(check bool)
    "rendered header labels the true extent" true
    (contains (Fluid.Safe_region.render ra) header)

(* ---------------- Resilience.scan ---------------- *)

let test_resilience_scan () =
  let sc =
    Faultnet.Resilience.scenario ~t_end:2e-3 ~label:"scan-test"
      Fluid.Params.default
  in
  let ax = Faultnet.Resilience.Bcn_loss in
  let s = Faultnet.Resilience.scan ~n:8 ~seed:11 sc ax in
  Alcotest.(check bool)
    "margin <= ceiling" true
    (s.Faultnet.Resilience.margin <= s.Faultnet.Resilience.ceiling);
  Alcotest.(check bool)
    "margin in range" true
    (s.Faultnet.Resilience.margin >= 0. && s.Faultnet.Resilience.ceiling <= 1.);
  Alcotest.(check bool)
    "evaluation count sane" true
    (s.Faultnet.Resilience.evaluations >= 2
    && s.Faultnet.Resilience.evaluations <= 9);
  (match s.Faultnet.Resilience.violation with
  | None ->
      Alcotest.(check (float 0.))
        "no violation => full margin" 1. s.Faultnet.Resilience.margin
  | Some _ -> ());
  let s' = Faultnet.Resilience.scan ~n:8 ~seed:11 sc ax in
  marshal_eq "scan is deterministic" s s'

(* ---------------- saddle disambiguation (codes 5/10) ---------------- *)

let edge_of (x, y) =
  if y = 0. then `S
  else if y = 1. then `N
  else if x = 0. then `W
  else if x = 1. then `E
  else Alcotest.fail "crossing point not on a cell edge"

let seg_edges (s : Engine.segment) =
  (edge_of (s.Engine.ax, s.Engine.ay), edge_of (s.Engine.bx, s.Engine.by))

(* |x - y| < 0.3 is a connected diagonal band through the unit cell:
   corners SW and NE true, SE and NW false — the ambiguous marching
   squares code 5. The center probe is true, so the trace must cut off
   the two false corners (segments S-E and W-N). A fixed diagonal
   choice would draw W-S and E-N here: two separated true lobes, the
   wrong topology. *)
let test_saddle_band () =
  let f = Array.map (fun (x, y) -> Float.abs (x -. y) < 0.3) in
  let t = Engine.refine ~coarse:(1, 1) ~levels:0 unit_dom f in
  Alcotest.(check int)
    "one boundary cell" 1
    (Array.length t.Engine.boundary_cells);
  Alcotest.(check int) "two segments" 2 (Array.length t.Engine.segments);
  let edges = Array.to_list (Array.map seg_edges t.Engine.segments) in
  Alcotest.(check bool)
    "band topology: S-E and W-N" true
    (List.mem (`S, `E) edges && List.mem (`W, `N) edges)

(* x + y < 0.5 or x + y > 1.5: the same corner code 5, but the center
   is false — two separated true lobes at SW and NE, which the trace
   must keep separated (segments W-S and E-N). *)
let test_saddle_lobes () =
  let f = Array.map (fun (x, y) -> x +. y < 0.5 || x +. y > 1.5) in
  let t = Engine.refine ~coarse:(1, 1) ~levels:0 unit_dom f in
  Alcotest.(check int) "two segments" 2 (Array.length t.Engine.segments);
  let edges = Array.to_list (Array.map seg_edges t.Engine.segments) in
  Alcotest.(check bool)
    "lobe topology: W-S and E-N" true
    (List.mem (`W, `S) edges && List.mem (`E, `N) edges)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "refine"
    [
      qsuite "oracle" [ qcheck_halfplane ];
      ( "engine",
        [
          Alcotest.test_case "boundary-scaling savings" `Quick
            test_engine_savings;
          Alcotest.test_case "jobs 1 = jobs 4" `Quick test_jobs_identity;
          Alcotest.test_case "warm memo: zero backend calls" `Quick
            test_warm_zero_calls;
          Alcotest.test_case "warm store: zero simulations" `Quick
            test_warm_store_zero_sims;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "scan solver = recording solver (bits)" `Quick
            test_scan_solver_bits;
          Alcotest.test_case "scan solver terminal event" `Quick
            test_scan_solver_terminal;
          Alcotest.test_case "measure = reference (bits)" `Quick
            test_measure_differential;
          Alcotest.test_case "measure allocation bound" `Quick
            test_measure_allocation;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "render labels true extent" `Quick
            test_render_header;
          Alcotest.test_case "resilience dense scan" `Quick test_resilience_scan;
          Alcotest.test_case "saddle: connected band (code 5)" `Quick
            test_saddle_band;
          Alcotest.test_case "saddle: separated lobes (code 5)" `Quick
            test_saddle_lobes;
        ] );
    ]
