(* Equivalence and allocation guarantees of the in-place ODE fast path:
   - [Ode.step_into] / [Ode.step_auto_into] match [Ode.step] bit for bit
     on Euler/Heun/Rk4 across random states and dimensions;
   - [Ode.solve_fixed_into] reproduces [Ode.solve_fixed] exactly,
     events included;
   - [Ode.step_auto_into] performs zero minor-heap allocation per step
     (native code). *)

open Numerics

let methods = [ ("euler", Ode.Euler); ("heun", Ode.Heun); ("rk4", Ode.Rk4) ]

(* A deliberately messy autonomous nonlinear field: couples components,
   mixes transcendentals, exercises every bit of the mantissa. *)
let auto_field n : Ode.field_auto =
 fun y dst ->
  for i = 0 to n - 1 do
    let a = y.(i) in
    let b = y.((i + 1) mod n) in
    dst.(i) <- (sin a *. b) -. (0.3 *. a *. a) +. cos (a -. b)
  done

(* The same dynamics as an allocating [Ode.field], plus a time term for
   the non-autonomous variants. *)
let alloc_field n ~with_t : Ode.field =
 fun t y ->
  let dst = Array.make n 0. in
  for i = 0 to n - 1 do
    let a = y.(i) in
    let b = y.((i + 1) mod n) in
    dst.(i) <- (sin a *. b) -. (0.3 *. a *. a) +. cos (a -. b)
  done;
  if with_t then
    for i = 0 to n - 1 do
      dst.(i) <- dst.(i) +. (0.1 *. sin (t +. float_of_int i))
    done;
  dst

let into_field n : Ode.field_into =
 fun t y dst ->
  for i = 0 to n - 1 do
    let a = y.(i) in
    let b = y.((i + 1) mod n) in
    dst.(i) <- (sin a *. b) -. (0.3 *. a *. a) +. cos (a -. b)
  done;
  for i = 0 to n - 1 do
    dst.(i) <- dst.(i) +. (0.1 *. sin (t +. float_of_int i))
  done

let check_bits name expected got =
  Array.iteri
    (fun i e ->
      Alcotest.(check int64)
        (Printf.sprintf "%s[%d]" name i)
        (Int64.bits_of_float e)
        (Int64.bits_of_float got.(i)))
    expected

let random_state rng n =
  Array.init n (fun _ -> (Random.State.float rng 4.) -. 2.)

let test_step_into_equiv () =
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun (mname, m) ->
      for n = 1 to 5 do
        let ws = Ode.workspace n in
        for trial = 1 to 20 do
          let y = random_state rng n in
          let t = Random.State.float rng 10. in
          let h = 1e-4 +. Random.State.float rng 0.1 in
          let expected = Ode.step m (alloc_field n ~with_t:true) t y h in
          let dst = Array.make n 0. in
          Ode.step_into ws m (into_field n) t y h dst;
          check_bits
            (Printf.sprintf "%s n=%d trial=%d" mname n trial)
            expected dst
        done
      done)
    methods

let test_step_auto_into_equiv () =
  let rng = Random.State.make [| 7 |] in
  List.iter
    (fun (mname, m) ->
      for n = 1 to 5 do
        let ws = Ode.workspace n in
        for trial = 1 to 20 do
          let y = random_state rng n in
          let h = 1e-4 +. Random.State.float rng 0.1 in
          let expected = Ode.step m (alloc_field n ~with_t:false) 0. y h in
          let dst = Array.make n 0. in
          Ode.step_auto_into ws m (auto_field n) y h dst;
          check_bits
            (Printf.sprintf "auto %s n=%d trial=%d" mname n trial)
            expected dst
        done
      done)
    methods

let test_step_into_inplace_alias () =
  (* dst == y is the documented in-place form *)
  let n = 3 in
  let ws = Ode.workspace n in
  let rng = Random.State.make [| 11 |] in
  let y = random_state rng n in
  let expected = Ode.step Ode.Rk4 (alloc_field n ~with_t:false) 0. y 0.01 in
  let state = Array.copy y in
  Ode.step_auto_into ws Ode.Rk4 (auto_field n) state 0.01 state;
  check_bits "aliased dst" expected state

let switched_events =
  [
    {
      Ode.ev_name = "axis";
      guard = (fun _t y -> y.(1));
      dir = Ode.Both;
      terminal = false;
    };
    {
      Ode.ev_name = "ball";
      guard = (fun _t y -> sqrt ((y.(0) *. y.(0)) +. (y.(1) *. y.(1))) -. 0.2);
      dir = Ode.Down;
      terminal = true;
    };
  ]

let test_solve_fixed_into_equiv () =
  (* damped oscillator, with event localization on both solvers *)
  let f : Ode.field = fun _t y -> [| y.(1); -.y.(0) -. (0.4 *. y.(1)) |] in
  let fi : Ode.field_into =
   fun _t y dst ->
    dst.(0) <- y.(1);
    dst.(1) <- -.y.(0) -. (0.4 *. y.(1))
  in
  List.iter
    (fun (mname, m) ->
      let a =
        Ode.solve_fixed ~method_:m ~events:switched_events ~h:0.01 ~t_end:10. f
          ~t0:0. ~y0:[| 1.; 0. |]
      in
      let b =
        Ode.solve_fixed_into ~method_:m ~events:switched_events ~h:0.01
          ~t_end:10. fi ~t0:0. ~y0:[| 1.; 0. |]
      in
      Alcotest.(check int) (mname ^ " n_steps") a.Ode.n_steps b.Ode.n_steps;
      Alcotest.(check int)
        (mname ^ " points")
        (Array.length a.Ode.ts) (Array.length b.Ode.ts);
      Array.iteri
        (fun i t ->
          Alcotest.(check int64)
            (Printf.sprintf "%s ts[%d]" mname i)
            (Int64.bits_of_float t)
            (Int64.bits_of_float b.Ode.ts.(i));
          check_bits (Printf.sprintf "%s ys[%d]" mname i) a.Ode.ys.(i)
            b.Ode.ys.(i))
        a.Ode.ts;
      Alcotest.(check int)
        (mname ^ " occurrences")
        (List.length a.Ode.occs) (List.length b.Ode.occs);
      List.iter2
        (fun (oa : Ode.occurrence) (ob : Ode.occurrence) ->
          Alcotest.(check string) (mname ^ " occ name") oa.Ode.oc_name
            ob.Ode.oc_name;
          Alcotest.(check int64)
            (mname ^ " occ t")
            (Int64.bits_of_float oa.Ode.oc_t)
            (Int64.bits_of_float ob.Ode.oc_t))
        a.Ode.occs b.Ode.occs;
      Alcotest.(check bool)
        (mname ^ " terminated")
        (a.Ode.terminated <> None)
        (b.Ode.terminated <> None))
    methods

let test_zero_allocation () =
  (* The autonomous in-place step must not touch the minor heap: no float
     crosses the closure boundary, the stage buffers are preallocated and
     the loops unbox. Only meaningful in native code — bytecode boxes
     every float temporary. *)
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> ()
  | Sys.Native ->
      let ws = Ode.workspace 2 in
      let field (y : float array) (dst : float array) =
        dst.(0) <- y.(1);
        dst.(1) <- -.y.(0)
      in
      let y = [| 1.; 0. |] in
      List.iter
        (fun (mname, m) ->
          (* warm up: fault in closures and any one-time allocation *)
          for _ = 1 to 100 do
            Ode.step_auto_into ws m field y 0.01 y
          done;
          let w0 = Gc.minor_words () in
          for _ = 1 to 10_000 do
            Ode.step_auto_into ws m field y 0.01 y
          done;
          let dw = Gc.minor_words () -. w0 in
          Alcotest.(check (float 0.))
            (mname ^ " minor words per 10k steps")
            0. dw)
        methods

let test_workspace_validation () =
  let ws = Ode.workspace 2 in
  Alcotest.(check int) "dim" 2 (Ode.workspace_dim ws);
  Alcotest.(check bool) "undersized workspace rejected" true
    (try
       Ode.step_into ws Ode.Rk4
         (fun _t _y _dst -> ())
         0. [| 0.; 0.; 0. |] 0.1 [| 0.; 0.; 0. |];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "workspace dim >= 1" true
    (try
       ignore (Ode.workspace 0);
       false
     with Invalid_argument _ -> true)

let test_adapters () =
  let n = 3 in
  let ws = Ode.workspace n in
  let rng = Random.State.make [| 5 |] in
  let y = random_state rng n in
  let expected = Ode.step Ode.Rk4 (alloc_field n ~with_t:false) 0.3 y 0.02 in
  let dst = Array.make n 0. in
  Ode.step_into ws Ode.Rk4
    (Ode.field_into_of_field (alloc_field n ~with_t:false))
    0.3 y 0.02 dst;
  check_bits "field_into_of_field" expected dst;
  let dst2 = Array.make n 0. in
  Ode.step_into ws Ode.Rk4
    (Ode.field_into_of_auto (auto_field n))
    0.3 y 0.02 dst2;
  check_bits "field_into_of_auto" expected dst2

let () =
  Alcotest.run "ode_into"
    [
      ( "equivalence",
        [
          Alcotest.test_case "step_into = step (bits)" `Quick
            test_step_into_equiv;
          Alcotest.test_case "step_auto_into = step (bits)" `Quick
            test_step_auto_into_equiv;
          Alcotest.test_case "in-place aliasing" `Quick
            test_step_into_inplace_alias;
          Alcotest.test_case "solve_fixed_into = solve_fixed" `Quick
            test_solve_fixed_into_equiv;
          Alcotest.test_case "adapters" `Quick test_adapters;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "step_auto_into allocates zero" `Quick
            test_zero_allocation;
          Alcotest.test_case "workspace validation" `Quick
            test_workspace_validation;
        ] );
    ]
