(* Tests for the distributed sweep fabric: the lease protocol's
   exclusivity and steal semantics, the spec codec and range table,
   worker runs over a shared store (single worker, two forked workers,
   a SIGKILLed worker whose lease is stolen), and the merge invariant —
   bytes are a pure function of the spec, independent of worker count,
   join/leave order and steal history. A qcheck property runs a worker
   against arbitrary dead-claim patterns and asserts no point is ever
   lost or duplicated.

   Everything here runs [jobs:1] (no pool domains) so the fork-based
   tests stay safe: forks happen before the parent ever spawns a
   domain. *)

module Key = Store.Key
module Cache = Store.Cache
module Lease = Store.Lease
module Spec = Fabric.Spec
module Worker = Fabric.Worker
module Merge = Fabric.Merge

let with_store f =
  let dir = Filename.temp_dir "dcecc-fabric-test" "" in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f (Cache.open_ ~dir))

(* the same tiny scenario the bcn_fabric smoke uses: ~0.03 ms per
   point, so whole-fabric runs stay instant *)
let tiny_base () =
  Simnet.Scenario.bcn ~t_end:2e-4 ~sample_dt:1e-4
    ~sampling:Simnet.Scenario.Bernoulli
    (Fluid.Params.with_flows Fluid.Params.default 4)

let tiny_spec count = Spec.Seeds { base = tiny_base (); first_seed = 0; count }
let sweep_of spec = (Spec.manifest spec).Store.Manifest.sweep_key

(* the single-process comparison path: same scenarios, no fabric, no
   store — what any fabric run's merged bytes must equal *)
let oracle_csv spec =
  Merge.csv_of spec (Store.Sweep.sweep ~jobs:1 (Spec.scenarios spec))

(* ---------------- lease protocol ---------------- *)

let test_lease_claim_exclusive () =
  with_store (fun c ->
      let sweep = Key.of_material "lease-exclusive" in
      Alcotest.(check bool)
        "first claim wins" true
        (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:4 ~worker:"a");
      Alcotest.(check bool)
        "second claim loses" false
        (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:4 ~worker:"b");
      (match Lease.read c ~sweep ~range:0 with
      | None -> Alcotest.fail "claimed lease unreadable"
      | Some i ->
          Alcotest.(check string) "holder" "a" i.Lease.worker;
          Alcotest.(check int) "lo" 0 i.Lease.lo;
          Alcotest.(check int) "hi" 4 i.Lease.hi);
      Alcotest.(check bool)
        "other slot independent" true
        (Lease.claim c ~sweep ~range:1 ~lo:5 ~hi:9 ~worker:"b");
      Lease.release c ~sweep ~range:0;
      Alcotest.(check bool)
        "released slot reclaimable" true
        (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:4 ~worker:"b");
      Alcotest.(check int)
        "list sees both live leases" 2
        (List.length (Lease.list c ~sweep)))

let test_lease_heartbeat () =
  with_store (fun c ->
      let sweep = Key.of_material "lease-heartbeat" in
      ignore (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:3 ~worker:"w");
      let b1 = (Option.get (Lease.read c ~sweep ~range:0)).Lease.beat in
      Unix.sleepf 0.01;
      Lease.heartbeat c ~sweep ~range:0 ~worker:"w" ~lo:0 ~hi:3;
      let i = Option.get (Lease.read c ~sweep ~range:0) in
      Alcotest.(check bool) "beat advanced" true (i.Lease.beat > b1);
      Alcotest.(check string) "holder preserved" "w" i.Lease.worker;
      Alcotest.(check bool)
        "fresh beat not expired" false
        (Lease.expired ~ttl:30. ~now:(i.Lease.beat +. 1.) i);
      Alcotest.(check bool)
        "stale beat expired" true
        (Lease.expired ~ttl:30. ~now:(i.Lease.beat +. 31.) i))

let test_lease_steal () =
  with_store (fun c ->
      let sweep = Key.of_material "lease-steal" in
      ignore (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:7 ~worker:"dead");
      let beat = (Option.get (Lease.read c ~sweep ~range:0)).Lease.beat in
      let now = beat +. 10. in
      Alcotest.(check bool)
        "live lease not stealable" false
        (Lease.steal c ~sweep ~range:0 ~lo:0 ~hi:7 ~worker:"thief" ~ttl:100.
           ~now);
      Alcotest.(check string)
        "holder unchanged" "dead"
        (Option.get (Lease.read c ~sweep ~range:0)).Lease.worker;
      Alcotest.(check bool)
        "expired lease stolen" true
        (Lease.steal c ~sweep ~range:0 ~lo:0 ~hi:7 ~worker:"thief" ~ttl:5.
           ~now);
      Alcotest.(check string)
        "thief holds it" "thief"
        (Option.get (Lease.read c ~sweep ~range:0)).Lease.worker;
      (* a vacated slot is claimable through the steal path too *)
      Lease.release c ~sweep ~range:0;
      Alcotest.(check bool)
        "steal of an empty slot claims it" true
        (Lease.steal c ~sweep ~range:0 ~lo:0 ~hi:7 ~worker:"thief2" ~ttl:5.
           ~now))

let test_lease_done_markers () =
  with_store (fun c ->
      let sweep = Key.of_material "lease-done" in
      Alcotest.(check bool) "not done initially" false
        (Lease.is_done c ~sweep ~range:0);
      Lease.mark_done c ~sweep ~range:0 ~worker:"a";
      (* duplicated completions (two workers computed the same range)
         collapse onto one marker *)
      Lease.mark_done c ~sweep ~range:0 ~worker:"b";
      Alcotest.(check bool) "done after mark" true
        (Lease.is_done c ~sweep ~range:0);
      Lease.mark_done c ~sweep ~range:2 ~worker:"a";
      Alcotest.(check int) "two markers" 2 (Lease.dones c ~sweep);
      Lease.clear_done c ~sweep ~range:0;
      Lease.clear_done c ~sweep ~range:0;
      Alcotest.(check bool) "revoked" false (Lease.is_done c ~sweep ~range:0);
      Alcotest.(check int) "one marker left" 1 (Lease.dones c ~sweep))

let test_lease_torn_file () =
  with_store (fun c ->
      let sweep = Key.of_material "lease-torn" in
      ignore (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:3 ~worker:"w");
      let path =
        Filename.concat
          (Filename.concat
             (Filename.concat (Cache.root c) "leases")
             (Key.to_hex sweep))
          "r000000.lease"
      in
      let oc = open_out_bin path in
      output_string oc "not a lease";
      close_out oc;
      Alcotest.(check bool)
        "torn lease reads as None" true
        (Lease.read c ~sweep ~range:0 = None))

let test_lease_worker_validation () =
  with_store (fun c ->
      let sweep = Key.of_material "lease-validate" in
      let msg = "Store.Lease: worker id must be non-empty, newline-free" in
      Alcotest.check_raises "empty id rejected" (Invalid_argument msg)
        (fun () ->
          ignore (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:1 ~worker:""));
      Alcotest.check_raises "newline id rejected" (Invalid_argument msg)
        (fun () ->
          ignore (Lease.claim c ~sweep ~range:0 ~lo:0 ~hi:1 ~worker:"a\nb")))

(* ---------------- spec: ranges and codec ---------------- *)

let ranges_list ~total ~chunk =
  Array.to_list (Spec.ranges ~total ~chunk)

let test_ranges () =
  Alcotest.(check (list (pair int int)))
    "10 points, chunk 3"
    [ (0, 2); (3, 5); (6, 8); (9, 9) ]
    (ranges_list ~total:10 ~chunk:3);
  Alcotest.(check (list (pair int int)))
    "chunk larger than sweep" [ (0, 4) ]
    (ranges_list ~total:5 ~chunk:16);
  Alcotest.(check (list (pair int int)))
    "empty sweep" [] (ranges_list ~total:0 ~chunk:4);
  Alcotest.(check (list (pair int int)))
    "chunk 1 is one slot per point"
    [ (0, 0); (1, 1); (2, 2) ]
    (ranges_list ~total:3 ~chunk:1)

let qcheck_ranges_cover =
  QCheck.Test.make ~name:"ranges tile 0..total-1 exactly" ~count:200
    QCheck.(pair (int_range 0 500) (int_range 1 64))
    (fun (total, chunk) ->
      let r = Spec.ranges ~total ~chunk in
      let covered = Array.make total false in
      Array.iter
        (fun (lo, hi) ->
          for i = lo to hi do
            if covered.(i) then QCheck.Test.fail_report "overlap";
            covered.(i) <- true
          done)
        r;
      Array.for_all Fun.id covered
      && Array.for_all (fun (lo, hi) -> lo <= hi && hi - lo + 1 <= chunk) r)

let test_spec_roundtrip () =
  let check_roundtrip label spec =
    let enc = Spec.encode spec in
    match Spec.decode enc with
    | Error e -> Alcotest.failf "%s: decode failed: %s" label e
    | Ok spec' ->
        Alcotest.(check string) (label ^ ": stable encoding") enc
          (Spec.encode spec');
        Alcotest.(check int) (label ^ ": size preserved") (Spec.size spec)
          (Spec.size spec');
        Alcotest.(check bool)
          (label ^ ": same point keys") true
          (Spec.points spec = Spec.points spec')
  in
  check_roundtrip "seeds" (tiny_spec 5);
  check_roundtrip "explicit" (Spec.Explicit (Spec.scenarios (tiny_spec 3)));
  (match Spec.decode "{\"fabric\": 2}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign version accepted");
  match Spec.decode "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_seeds_expansion () =
  let base = tiny_base () in
  let seeds = Spec.Seeds { base; first_seed = 7; count = 3 } in
  let explicit =
    Spec.Explicit
      (Array.init 3 (fun i -> Simnet.Scenario.with_seed base (7 + i)))
  in
  Alcotest.(check bool)
    "Seeds expands to with_seed base (first_seed + i)" true
    (Spec.points seeds = Spec.points explicit);
  Alcotest.(check (list int))
    "seed sequence" [ 7; 8; 9 ]
    (Array.to_list
       (Array.map
          (fun s -> s.Simnet.Scenario.seed)
          (Spec.scenarios seeds)))

(* ---------------- worker: single process ---------------- *)

let test_single_worker () =
  with_store (fun c ->
      let spec = tiny_spec 7 in
      let events = ref [] in
      let r =
        Worker.run ~chunk:3 ~worker:"w1"
          ~on_event:(fun e -> events := e :: !events)
          c spec
      in
      Alcotest.(check int) "three ranges claimed" 3 r.Worker.ranges_claimed;
      Alcotest.(check int) "nothing stolen" 0 r.Worker.ranges_stolen;
      Alcotest.(check int) "every point executed" 7 r.Worker.executed;
      Alcotest.(check int) "nothing cached cold" 0 r.Worker.cached;
      Alcotest.(check int) "one claim event per range" 3
        (List.length
           (List.filter
              (fun e -> e.Telemetry.Event.kind = Telemetry.Event.Lease_claimed)
              !events));
      let p = Worker.progress ~chunk:3 c spec in
      Alcotest.(check int) "progress: total" 7 p.Worker.total;
      Alcotest.(check int) "progress: stored" 7 p.Worker.stored;
      Alcotest.(check int) "progress: ranges" 3 p.Worker.ranges;
      Alcotest.(check int) "progress: done" 3 p.Worker.done_ranges;
      (* a second worker on the warm store finds only done markers *)
      let r2 = Worker.run ~chunk:3 ~worker:"w2" c spec in
      Alcotest.(check int) "warm run claims nothing" 0 r2.Worker.ranges_claimed;
      Alcotest.(check int) "warm run executes nothing" 0 r2.Worker.executed;
      (* merged bytes = the single-process render, CSV and JSON *)
      Alcotest.(check string)
        "merged CSV = single-process bytes" (oracle_csv spec)
        (Merge.csv c spec);
      Alcotest.(check string)
        "merged JSON = single-process bytes"
        (Merge.json_of spec (Store.Sweep.sweep ~jobs:1 (Spec.scenarios spec)))
        (Merge.json c spec))

let test_merge_incomplete () =
  with_store (fun c ->
      let spec = tiny_spec 4 in
      (match Merge.outcomes c spec with
      | Error n -> Alcotest.(check int) "all four missing" 4 n
      | Ok _ -> Alcotest.fail "merge of an empty store succeeded");
      match Merge.csv c spec with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "csv of an incomplete sweep did not raise")

(* a done marker whose results were evicted (fsck on a corrupt entry)
   is revoked at worker start, and the range heals *)
let test_done_reconcile () =
  with_store (fun c ->
      let spec = tiny_spec 4 in
      ignore (Worker.run ~chunk:2 ~worker:"first" c spec);
      let merged = Merge.csv c spec in
      Cache.evict c (Spec.points spec).(1);
      Alcotest.(check int) "markers intact after evict" 2
        (Lease.dones c ~sweep:(sweep_of spec));
      let r = Worker.run ~chunk:2 ~worker:"healer" c spec in
      Alcotest.(check int) "only the broken range re-claimed" 1
        r.Worker.ranges_claimed;
      Alcotest.(check int) "only the evicted point re-executed" 1
        r.Worker.executed;
      Alcotest.(check string) "healed bytes identical" merged
        (Merge.csv c spec))

(* ---------------- worker: two processes ---------------- *)

let spawn_worker ?(chunk = 2) ?(ttl = 30.) ~worker cache spec =
  match Unix.fork () with
  | 0 ->
      (* fresh handle: the child must not share the parent's index
         append descriptor state *)
      (try
         let c = Cache.open_ ~dir:(Cache.root cache) in
         ignore (Worker.run ~chunk ~ttl ~worker c spec);
         Unix._exit 0
       with e ->
         Printf.eprintf "worker %s died: %s\n%!" worker (Printexc.to_string e);
         Unix._exit 1)
  | pid -> pid

let test_two_workers_fork () =
  with_store (fun c ->
      let spec = tiny_spec 11 in
      let child = spawn_worker ~chunk:2 ~worker:"child" c spec in
      let r = Worker.run ~chunk:2 ~worker:"parent" c spec in
      let _, status = Unix.waitpid [] child in
      Alcotest.(check bool)
        "child exited cleanly" true
        (status = Unix.WEXITED 0);
      (* either worker's [run] returning means the sweep is done *)
      let p = Worker.progress ~chunk:2 c spec in
      Alcotest.(check int) "all points stored" 11 p.Worker.stored;
      Alcotest.(check int) "all ranges done" 6 p.Worker.done_ranges;
      Alcotest.(check bool)
        "parent did not do everything alone (or peer did)" true
        (r.Worker.ranges_claimed + r.Worker.ranges_stolen <= 6);
      Alcotest.(check string)
        "bytes independent of worker count" (oracle_csv spec)
        (Merge.csv c spec))

let test_sigkill_steal () =
  with_store (fun c ->
      let spec = tiny_spec 6 in
      let manifest = Spec.manifest spec in
      let sweep = manifest.Store.Manifest.sweep_key in
      (* the victim claims range 0 and hangs — a worker that died
         mid-lease without releasing *)
      let victim =
        match Unix.fork () with
        | 0 ->
            (try
               let cc = Cache.open_ ~dir:(Cache.root c) in
               Store.Manifest.save cc manifest;
               ignore (Lease.claim cc ~sweep ~range:0 ~lo:0 ~hi:2 ~worker:"victim");
               Unix.sleep 600
             with _ -> ());
            Unix._exit 0
        | pid -> pid
      in
      let rec wait_for_lease n =
        if n = 0 then Alcotest.fail "victim never claimed its lease";
        match Lease.read c ~sweep ~range:0 with
        | Some i when i.Lease.worker = "victim" -> ()
        | _ ->
            Unix.sleepf 0.01;
            wait_for_lease (n - 1)
      in
      wait_for_lease 500;
      Unix.kill victim Sys.sigkill;
      ignore (Unix.waitpid [] victim);
      (* the rescuer claims the free range, then waits out the orphaned
         lease's TTL and steals it *)
      let events = ref [] in
      let r =
        Worker.run ~chunk:3 ~ttl:0.2 ~poll:0.02 ~worker:"rescuer"
          ~on_event:(fun e -> events := e :: !events)
          c spec
      in
      Alcotest.(check int) "stole the victim's range" 1 r.Worker.ranges_stolen;
      Alcotest.(check int) "claimed the free range" 1 r.Worker.ranges_claimed;
      Alcotest.(check int) "executed every point" 6 r.Worker.executed;
      Alcotest.(check bool)
        "emitted lease_expired and lease_stolen" true
        (List.exists
           (fun e -> e.Telemetry.Event.kind = Telemetry.Event.Lease_expired)
           !events
        && List.exists
             (fun e -> e.Telemetry.Event.kind = Telemetry.Event.Lease_stolen)
             !events);
      (match Merge.outcomes c spec with
      | Ok arr ->
          Alcotest.(check int) "no point lost" 6 (Array.length arr)
      | Error n -> Alcotest.failf "%d points missing after rescue" n);
      Alcotest.(check string)
        "rescued bytes = single-process bytes" (oracle_csv spec)
        (Merge.csv c spec))

(* ---------------- qcheck: arbitrary dead-claim patterns ----------------

   Model a kill schedule as its observable residue: some subset of
   ranges is held by leases of workers that will never beat again. A
   live worker with ttl 0 must steal exactly that subset, claim the
   rest, and merge to the oracle bytes with every point exactly once. *)

let qcheck_kill_schedules =
  QCheck.Test.make ~name:"any dead-claim pattern loses no point" ~count:10
    QCheck.(
      triple (int_range 1 10) (int_range 1 4)
        (list_of_size Gen.(return 10) bool))
    (fun (count, chunk, dead_mask) ->
      with_store (fun c ->
          let spec = tiny_spec count in
          let manifest = Spec.manifest spec in
          Store.Manifest.save c manifest;
          let sweep = manifest.Store.Manifest.sweep_key in
          let ranges = Spec.ranges ~total:count ~chunk in
          let dead = ref 0 in
          Array.iteri
            (fun range (lo, hi) ->
              if List.nth_opt dead_mask range = Some true then begin
                ignore
                  (Lease.claim c ~sweep ~range ~lo ~hi
                     ~worker:(Printf.sprintf "dead-%d" range));
                incr dead
              end)
            ranges;
          (* let the dead beats age past ttl 0 *)
          Unix.sleepf 0.002;
          let r = Worker.run ~chunk ~ttl:0. ~poll:0.001 ~worker:"live" c spec in
          let rows =
            match Merge.outcomes c spec with
            | Ok arr -> Merge.rows spec arr
            | Error n -> QCheck.Test.fail_reportf "%d points missing" n
          in
          r.Worker.ranges_stolen = !dead
          && r.Worker.ranges_claimed = Array.length ranges - !dead
          && r.Worker.executed = count
          && List.map (fun (row : Merge.row) -> row.Merge.point) rows
             = List.init count Fun.id
          && Merge.csv c spec = oracle_csv spec))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "fabric"
    [
      ( "lease",
        [
          Alcotest.test_case "claim is exclusive per slot" `Quick
            test_lease_claim_exclusive;
          Alcotest.test_case "heartbeat advances the beat" `Quick
            test_lease_heartbeat;
          Alcotest.test_case "steal: live refused, expired taken" `Quick
            test_lease_steal;
          Alcotest.test_case "done markers idempotent and revocable" `Quick
            test_lease_done_markers;
          Alcotest.test_case "torn lease file reads as unclaimed" `Quick
            test_lease_torn_file;
          Alcotest.test_case "worker id validation" `Quick
            test_lease_worker_validation;
        ] );
      ( "spec",
        [
          Alcotest.test_case "range table shapes" `Quick test_ranges;
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_spec_roundtrip;
          Alcotest.test_case "Seeds = Explicit of with_seed" `Quick
            test_seeds_expansion;
        ] );
      qsuite "spec-qcheck" [ qcheck_ranges_cover ];
      ( "worker",
        [
          Alcotest.test_case "single worker completes and merges" `Quick
            test_single_worker;
          Alcotest.test_case "merge of an incomplete sweep fails" `Quick
            test_merge_incomplete;
          Alcotest.test_case "stale done markers reconcile and heal" `Quick
            test_done_reconcile;
          Alcotest.test_case "two forked workers: byte-identical merge" `Quick
            test_two_workers_fork;
          Alcotest.test_case "SIGKILLed worker's lease is stolen" `Quick
            test_sigkill_steal;
        ] );
      qsuite "kill-schedules" [ qcheck_kill_schedules ];
    ]
