(* Unit and property tests for the numerics substrate. *)

open Numerics

let check_float = Alcotest.(check (float 1e-9))
let checkf eps = Alcotest.(check (float eps))

(* ---------------- Vec2 ---------------- *)

let test_vec2_ops () =
  let u = Vec2.make 3. 4. in
  let v = Vec2.make (-1.) 2. in
  check_float "norm" 5. (Vec2.norm u);
  check_float "dot" 5. (Vec2.dot u v);
  check_float "cross" 10. (Vec2.cross u v);
  Alcotest.(check bool)
    "add" true
    (Vec2.equal (Vec2.add u v) (Vec2.make 2. 6.));
  Alcotest.(check bool)
    "scale" true
    (Vec2.equal (Vec2.scale 2. u) (Vec2.make 6. 8.));
  check_float "dist" (Vec2.norm (Vec2.sub u v)) (Vec2.dist u v)

let test_vec2_rotate () =
  let u = Vec2.make 1. 0. in
  let r = Vec2.rotate (Float.pi /. 2.) u in
  Alcotest.(check bool) "rotate 90" true (Vec2.equal ~eps:1e-12 r (Vec2.make 0. 1.));
  let back = Vec2.rotate (-.Float.pi /. 2.) r in
  Alcotest.(check bool) "rotate back" true (Vec2.equal ~eps:1e-12 back u)

let test_vec2_normalize_zero () =
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec2.normalize: zero vector")
    (fun () -> ignore (Vec2.normalize Vec2.zero))

let test_vec2_lerp () =
  let a = Vec2.make 0. 0. and b = Vec2.make 2. 4. in
  Alcotest.(check bool) "midpoint" true
    (Vec2.equal (Vec2.lerp a b 0.5) (Vec2.make 1. 2.))

(* ---------------- Mat2 ---------------- *)

let test_mat2_basic () =
  let m = Mat2.make 1. 2. 3. 4. in
  check_float "det" (-2.) (Mat2.det m);
  check_float "trace" 5. (Mat2.trace m);
  let mi = Mat2.inv m in
  Alcotest.(check bool) "inv" true
    (Mat2.equal ~eps:1e-12 (Mat2.mul m mi) Mat2.identity)

let test_mat2_eigen_real () =
  (* [[2,0],[0,3]] has eigenvalues 2, 3 *)
  let m = Mat2.make 2. 0. 0. 3. in
  match Mat2.eigenvalues m with
  | Mat2.Real_pair (l1, l2) ->
      check_float "l1" 2. l1;
      check_float "l2" 3. l2
  | Mat2.Complex_pair _ -> Alcotest.fail "expected real eigenvalues"

let test_mat2_eigen_complex () =
  (* rotation-like: [[0,1],[-1,0]] has eigenvalues ±i *)
  let m = Mat2.make 0. 1. (-1.) 0. in
  match Mat2.eigenvalues m with
  | Mat2.Complex_pair { re; im } ->
      check_float "re" 0. re;
      check_float "im" 1. im
  | Mat2.Real_pair _ -> Alcotest.fail "expected complex eigenvalues"

let test_mat2_eigenvector () =
  let m = Mat2.make 2. 1. 0. 3. in
  let v = Mat2.eigenvector m 2. in
  let mv = Mat2.apply m v in
  Alcotest.(check bool) "A v = 2 v" true
    (Vec2.equal ~eps:1e-9 mv (Vec2.scale 2. v))

let test_mat2_char_poly () =
  let m = Mat2.make 1. 2. 3. 4. in
  let c0, c1 = Mat2.char_poly m in
  check_float "c0 = det" (Mat2.det m) c0;
  check_float "c1 = -trace" (-.Mat2.trace m) c1

(* ---------------- Poly ---------------- *)

let test_poly_eval () =
  let p = Poly.make [| 1.; 2.; 3. |] in
  (* 1 + 2x + 3x^2 at x=2: 1+4+12 = 17 *)
  check_float "eval" 17. (Poly.eval p 2.);
  Alcotest.(check int) "degree" 2 (Poly.degree p)

let test_poly_mul () =
  (* (1+x)(1-x) = 1 - x^2 *)
  let p = Poly.mul [| 1.; 1. |] [| 1.; -1. |] in
  check_float "c0" 1. p.(0);
  check_float "c1" 0. p.(1);
  check_float "c2" (-1.) p.(2)

let test_poly_quadratic_roots () =
  (* x^2 - 5x + 6 = (x-2)(x-3) *)
  match Poly.roots_quadratic [| 6.; -5.; 1. |] with
  | Poly.Real r1, Poly.Real r2 ->
      check_float "r1" 2. r1;
      check_float "r2" 3. r2
  | _ -> Alcotest.fail "expected real roots"

let test_poly_quadratic_complex () =
  (* x^2 + 1 *)
  match Poly.roots_quadratic [| 1.; 0.; 1. |] with
  | Poly.Complex { re = r1; im = i1 }, Poly.Complex { re = r2; im = i2 } ->
      check_float "re1" 0. r1;
      check_float "re2" 0. r2;
      check_float "im sum" 0. (i1 +. i2);
      check_float "|im|" 1. (Float.abs i1)
  | _ -> Alcotest.fail "expected complex roots"

let test_poly_cubic_roots () =
  (* (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let roots = Poly.roots_cubic [| -6.; 11.; -6.; 1. |] in
  let reals =
    List.filter_map (function Poly.Real r -> Some r | Poly.Complex _ -> None) roots
    |> List.sort compare
  in
  Alcotest.(check int) "three real" 3 (List.length reals);
  List.iter2 (fun expect got -> checkf 1e-6 "root" expect got) [ 1.; 2.; 3. ] reals

let test_poly_durand_kerner () =
  (* (x-1)(x-2)(x-3)(x-4) *)
  let p = Poly.of_roots [ 1.; 2.; 3.; 4. ] in
  let roots = Poly.roots p in
  let reals =
    List.filter_map (function Poly.Real r -> Some r | Poly.Complex _ -> None) roots
    |> List.sort compare
  in
  Alcotest.(check int) "four real" 4 (List.length reals);
  List.iter2 (fun expect got -> checkf 1e-6 "root" expect got) [ 1.; 2.; 3.; 4. ] reals

let test_poly_is_hurwitz () =
  Alcotest.(check bool) "stable" true (Poly.is_hurwitz (Poly.of_roots [ -1.; -2.; -3. ]));
  Alcotest.(check bool) "unstable" false (Poly.is_hurwitz (Poly.of_roots [ -1.; 2. ]))

let prop_poly_roots_satisfy =
  QCheck.Test.make ~name:"random cubic roots satisfy p(r) ~ 0" ~count:200
    QCheck.(triple (float_range (-5.) 5.) (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (r1, r2, r3) ->
      let p = Poly.of_roots [ r1; r2; r3 ] in
      let roots = Poly.roots_cubic p in
      List.for_all
        (function
          | Poly.Real r -> Float.abs (Poly.eval p r) < 1e-6 *. (1. +. (Float.abs r ** 3.))
          | Poly.Complex { re; im } ->
              let vr, vi = Poly.eval_complex p (re, im) in
              sqrt ((vr *. vr) +. (vi *. vi)) < 1e-6 *. (1. +. ((re *. re) +. (im *. im)) ** 1.5))
        roots)

(* ---------------- Roots ---------------- *)

let test_bisect () =
  let r = Roots.bisect (fun x -> (x *. x) -. 2.) 0. 2. in
  checkf 1e-10 "sqrt 2" (sqrt 2.) r

let test_brent () =
  let r = Roots.brent (fun x -> cos x -. x) 0. 1. in
  checkf 1e-10 "dottie" 0.7390851332151607 r

let test_newton () =
  let r = Roots.newton (fun x -> (x *. x) -. 2.) (fun x -> 2. *. x) 1. in
  checkf 1e-10 "sqrt 2" (sqrt 2.) r

let test_secant () =
  let r = Roots.secant (fun x -> exp x -. 2.) 0. 1. in
  checkf 1e-9 "ln 2" (log 2.) r

let test_no_bracket () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Roots.bisect (fun x -> (x *. x) +. 1.) (-1.) 1.);
       false
     with Roots.No_bracket _ -> true)

let test_bracket_expansion () =
  let a, b = Roots.bracket (fun x -> x -. 10.) 0. 1. in
  Alcotest.(check bool) "contains root" true (a <= 10. && 10. <= b)

let test_find_all () =
  (* sin has roots at 0, pi, 2pi in [−1, 7] *)
  let roots = Roots.find_all ~n:1000 sin (-1.) 7. in
  Alcotest.(check int) "three roots" 3 (List.length roots);
  List.iter2
    (fun expect got -> checkf 1e-8 "root" expect got)
    [ 0.; Float.pi; 2. *. Float.pi ]
    roots

let test_fixed_point () =
  (* x = cos x *)
  let r = Roots.fixed_point cos 1. in
  checkf 1e-9 "dottie" 0.7390851332151607 r

let prop_brent_inverse =
  QCheck.Test.make ~name:"brent inverts monotone cubic" ~count:200
    QCheck.(float_range (-10.) 10.)
    (fun target ->
      let f x = (x *. x *. x) +. x -. target in
      let r = Roots.brent f (-50.) 50. in
      Float.abs (f r) < 1e-6)

(* ---------------- Ode ---------------- *)

let decay _t y = [| -.y.(0) |]

let test_ode_exact_decay () =
  let sol = Ode.solve_fixed ~method_:Ode.Rk4 ~h:0.01 ~t_end:1. decay ~t0:0. ~y0:[| 1. |] in
  let yn = sol.Ode.ys.(Array.length sol.Ode.ys - 1) in
  checkf 1e-8 "e^-1" (exp (-1.)) yn.(0)

let test_ode_convergence_orders () =
  let exact t = [| exp (-.t) |] in
  let order m = Ode.convergence_order m decay ~t0:0. ~y0:[| 1. |] ~t_end:1. ~exact in
  Alcotest.(check bool) "euler ~1" true (Float.abs (order Ode.Euler -. 1.) < 0.2);
  Alcotest.(check bool) "heun ~2" true (Float.abs (order Ode.Heun -. 2.) < 0.2);
  Alcotest.(check bool) "rk4 ~4" true (Float.abs (order Ode.Rk4 -. 4.) < 0.3)

let harmonic _t y = [| y.(1); -.y.(0) |]

let test_ode_adaptive_harmonic () =
  let sol =
    Ode.solve_adaptive ~rtol:1e-10 ~atol:1e-12 ~t_end:(2. *. Float.pi) harmonic
      ~t0:0. ~y0:[| 1.; 0. |]
  in
  let yn = sol.Ode.ys.(Array.length sol.Ode.ys - 1) in
  checkf 1e-7 "x after full period" 1. yn.(0);
  checkf 1e-7 "v after full period" 0. yn.(1)

let test_ode_monitor_counts () =
  (* the monitor hook must see exactly the accepted/rejected steps the
     solution reports, and must not change the trajectory *)
  let steps = ref 0 and rejects = ref 0 and last_t = ref nan in
  let monitor =
    {
      Ode.on_step =
        (fun t _h ->
          incr steps;
          last_t := t);
      on_reject = (fun _t _h -> incr rejects);
    }
  in
  let sol =
    Ode.solve_adaptive ~rtol:1e-6 ~atol:1e-9 ~monitor ~t_end:(2. *. Float.pi)
      harmonic ~t0:0. ~y0:[| 1.; 0. |]
  in
  Alcotest.(check int) "on_step == n_steps" sol.Ode.n_steps !steps;
  Alcotest.(check int) "on_reject == n_rejected" sol.Ode.n_rejected !rejects;
  check_float "last on_step lands on t_end" (2. *. Float.pi) !last_t;
  let bare =
    Ode.solve_adaptive ~rtol:1e-6 ~atol:1e-9 ~t_end:(2. *. Float.pi) harmonic
      ~t0:0. ~y0:[| 1.; 0. |]
  in
  Alcotest.(check int) "monitor does not perturb step count"
    bare.Ode.n_steps sol.Ode.n_steps;
  (* fixed-step: every step accepted, none rejected *)
  steps := 0;
  rejects := 0;
  let fsol =
    Ode.solve_fixed ~method_:Ode.Rk4 ~monitor ~h:0.01 ~t_end:1. decay ~t0:0.
      ~y0:[| 1. |]
  in
  Alcotest.(check int) "fixed on_step" fsol.Ode.n_steps !steps;
  Alcotest.(check int) "fixed on_reject" 0 !rejects

let test_ode_event_detection () =
  (* x(t) = cos t crosses 0 at pi/2 *)
  let ev =
    {
      Ode.ev_name = "zero";
      guard = (fun _t y -> y.(0));
      dir = Ode.Down;
      terminal = true;
    }
  in
  let sol =
    Ode.solve_adaptive ~rtol:1e-10 ~atol:1e-12 ~events:[ ev ] ~t_end:10.
      harmonic ~t0:0. ~y0:[| 1.; 0. |]
  in
  match sol.Ode.terminated with
  | Some oc -> checkf 1e-7 "crossing at pi/2" (Float.pi /. 2.) oc.Ode.oc_t
  | None -> Alcotest.fail "event not detected"

let test_ode_event_direction () =
  (* Up-only event must skip the Down crossing at pi/2 and fire at 3pi/2 *)
  let ev =
    {
      Ode.ev_name = "up";
      guard = (fun _t y -> y.(0));
      dir = Ode.Up;
      terminal = true;
    }
  in
  let sol =
    Ode.solve_adaptive ~rtol:1e-10 ~atol:1e-12 ~events:[ ev ] ~t_end:10.
      harmonic ~t0:0. ~y0:[| 1.; 0. |]
  in
  match sol.Ode.terminated with
  | Some oc -> checkf 1e-6 "crossing at 3pi/2" (3. *. Float.pi /. 2.) oc.Ode.oc_t
  | None -> Alcotest.fail "event not detected"

let test_ode_nonterminal_events () =
  let ev =
    {
      Ode.ev_name = "zero";
      guard = (fun _t y -> y.(0));
      dir = Ode.Both;
      terminal = false;
    }
  in
  let sol =
    Ode.solve_adaptive ~rtol:1e-9 ~atol:1e-12 ~events:[ ev ]
      ~t_end:(4. *. Float.pi) harmonic ~t0:0. ~y0:[| 1.; 0. |]
  in
  (* cos crosses zero 4 times in [0, 4pi] *)
  Alcotest.(check int) "four crossings" 4 (List.length sol.Ode.occs)

let test_ode_state_at () =
  let sol = Ode.solve_fixed ~method_:Ode.Rk4 ~h:0.01 ~t_end:1. decay ~t0:0. ~y0:[| 1. |] in
  let y = Ode.state_at sol 0.5 in
  checkf 1e-4 "interpolated" (exp (-0.5)) y.(0)

let test_rkf45_error_estimate () =
  let y, err = Ode.rkf45_step decay 0. [| 1. |] 0.1 in
  checkf 1e-7 "5th order value" (exp (-0.1)) y.(0);
  Alcotest.(check bool) "error tiny" true (err < 1e-7)

let prop_adaptive_energy =
  QCheck.Test.make ~name:"harmonic oscillator conserves energy" ~count:25
    QCheck.(pair (float_range 0.2 2.) (float_range (-2.) 2.))
    (fun (x0, v0) ->
      let sol =
        Ode.solve_adaptive ~rtol:1e-10 ~atol:1e-13 ~t_end:10. harmonic ~t0:0.
          ~y0:[| x0; v0 |]
      in
      let yn = sol.Ode.ys.(Array.length sol.Ode.ys - 1) in
      let e0 = (x0 *. x0) +. (v0 *. v0) in
      let e1 = (yn.(0) *. yn.(0)) +. (yn.(1) *. yn.(1)) in
      Float.abs (e1 -. e0) < 1e-6 *. e0)

(* ---------------- Quad ---------------- *)

let test_quad_simpson () =
  checkf 1e-8 "int sin [0,pi]" 2. (Quad.simpson sin 0. Float.pi 200)

let test_quad_adaptive () =
  checkf 1e-9 "int exp [0,1]" (exp 1. -. 1.) (Quad.adaptive_simpson exp 0. 1.)

let test_quad_trapezoid_samples () =
  let ts = Array.init 101 (fun i -> float_of_int i /. 100.) in
  let vs = Array.map (fun t -> t) ts in
  checkf 1e-9 "int x [0,1]" 0.5 (Quad.trapezoid_samples ts vs)

(* ---------------- Interp ---------------- *)

let test_interp_linear () =
  let xs = [| 0.; 1.; 2. |] and ys = [| 0.; 10.; 0. |] in
  checkf 1e-12 "mid" 5. (Interp.linear xs ys 0.5);
  checkf 1e-12 "clamp lo" 0. (Interp.linear xs ys (-1.));
  checkf 1e-12 "clamp hi" 0. (Interp.linear xs ys 5.)

let test_interp_hermite_endpoints () =
  let v = Interp.hermite 0. 1. 2. 5. 0. 0. 0. in
  checkf 1e-12 "left endpoint" 2. v;
  let v = Interp.hermite 0. 1. 2. 5. 0. 0. 1. in
  checkf 1e-12 "right endpoint" 5. v

let test_interp_zero_crossings () =
  let xs = [| 0.; 1.; 2.; 3. |] and ys = [| 1.; -1.; -1.; 2. |] in
  let zs = Interp.zero_crossings xs ys in
  Alcotest.(check int) "two crossings" 2 (List.length zs);
  checkf 1e-12 "first" 0.5 (List.nth zs 0)

(* ---------------- Stats ---------------- *)

let test_stats_basic () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  checkf 1e-9 "stddev" (sqrt (32. /. 7.)) (Stats.stddev xs);
  check_float "median" 4.5 (Stats.median xs);
  check_float "min" 2. (Stats.min xs);
  check_float "max" 9. (Stats.max xs)

let test_stats_percentile () =
  let xs = Array.init 101 float_of_int in
  check_float "p25" 25. (Stats.percentile 25. xs);
  check_float "p100" 100. (Stats.percentile 100. xs)

let test_stats_corr () =
  let a = [| 1.; 2.; 3.; 4. |] in
  let b = Array.map (fun x -> (2. *. x) +. 1.) a in
  checkf 1e-12 "perfect corr" 1. (Stats.corr a b);
  let c = Array.map (fun x -> -.x) a in
  checkf 1e-12 "anti corr" (-1.) (Stats.corr a c)

let test_stats_rmse () =
  let a = [| 0.; 0. |] and b = [| 3.; 4. |] in
  checkf 1e-12 "rmse" (5. /. sqrt 2.) (Stats.rmse a b);
  check_float "max abs" 4. (Stats.max_abs_err a b)

(* ---------------- Series ---------------- *)

let test_series_basic () =
  let s = Series.of_fn (fun t -> t *. t) 0. 1. 101 in
  checkf 1e-3 "integral x^2" (1. /. 3.) (Series.integral s);
  checkf 1e-3 "time average" (1. /. 3.) (Series.time_average s);
  checkf 1e-12 "at" 0.25 (Series.at s 0.5)

let test_series_extrema () =
  let s = Series.of_fn sin 0. (2. *. Float.pi) 1001 in
  let ex = Series.local_extrema s in
  Alcotest.(check int) "max and min" 2 (List.length ex);
  (match ex with
  | (t1, v1, `Max) :: (t2, v2, `Min) :: [] ->
      checkf 1e-2 "t max" (Float.pi /. 2.) t1;
      checkf 1e-4 "v max" 1. v1;
      checkf 1e-2 "t min" (3. *. Float.pi /. 2.) t2;
      checkf 1e-4 "v min" (-1.) v2
  | _ -> Alcotest.fail "unexpected extrema structure")

let test_series_crossings () =
  let s = Series.of_fn sin 0.1 6.2 1000 in
  let cs = Series.crossings s in
  Alcotest.(check int) "one crossing" 1 (List.length cs);
  checkf 1e-3 "at pi" Float.pi (List.hd cs)

let test_series_within () =
  let s = Series.of_fn sin 0. 6. 100 in
  Alcotest.(check bool) "within [-2,2]" true (Series.within s (-2.) 2.);
  Alcotest.(check bool) "not within [0,2]" false (Series.within s 0. 2.)

let test_series_monotone_guard () =
  Alcotest.(check bool) "rejects decreasing ts" true
    (try
       ignore (Series.make [| 1.; 0. |] [| 0.; 0. |]);
       false
     with Invalid_argument _ -> true)

(* ---------------- Histogram ---------------- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.99 ];
  check_float "count" 4. (Histogram.count h);
  check_float "bin 0" 1. (Histogram.bin_mass h 0);
  check_float "bin 1" 2. (Histogram.bin_mass h 1);
  check_float "bin 9" 1. (Histogram.bin_mass h 9);
  let a, b = Histogram.bin_edges h 1 in
  check_float "edge lo" 1. a;
  check_float "edge hi" 2. b

let test_histogram_out_of_range () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Histogram.add h (-5.);
  Histogram.add h 2.;
  Histogram.add h 1.;
  (* hi itself overflows: bins are [lo, hi) *)
  check_float "underflow" 1. (Histogram.underflow h);
  check_float "overflow" 2. (Histogram.overflow h);
  check_float "total" 3. (Histogram.count h)

let test_histogram_quantile () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:100 in
  for i = 0 to 99 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  checkf 1.5 "median" 50. (Histogram.quantile h 0.5);
  checkf 1.5 "p90" 90. (Histogram.quantile h 0.9);
  checkf 1.5 "mean" 50. (Histogram.mean h)

let test_histogram_weighted_and_merge () =
  let a = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  let b = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add_weighted a 2.5 3.;
  Histogram.add_weighted b 2.5 1.;
  let m = Histogram.merge a b in
  check_float "merged mass" 4. (Histogram.bin_mass m 2);
  Alcotest.(check bool) "geometry mismatch rejected" true
    (try
       ignore (Histogram.merge a (Histogram.create ~lo:0. ~hi:5. ~bins:10));
       false
     with Invalid_argument _ -> true)

let test_histogram_quantile_all_underflow () =
  (* every sample below [lo]: the quantile must sit at [lo] for any p,
     because all mass is counted there *)
  let h = Histogram.create ~lo:10. ~hi:20. ~bins:8 in
  List.iter (Histogram.add h) [ 1.; 2.; 3. ];
  check_float "p0.01" 10. (Histogram.quantile h 0.01);
  check_float "median" 10. (Histogram.quantile h 0.5);
  check_float "p0.99" 10. (Histogram.quantile h 0.99);
  check_float "count kept" 3. (Histogram.count h)

let test_histogram_quantile_all_overflow () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:8 in
  List.iter (Histogram.add h) [ 5.; 6.; 1. ] (* hi itself overflows too *);
  check_float "p0.01" 1. (Histogram.quantile h 0.01);
  check_float "median" 1. (Histogram.quantile h 0.5);
  check_float "p0.99" 1. (Histogram.quantile h 0.99)

let test_histogram_quantile_single_bin () =
  (* one bin spanning the whole range: quantiles are pure linear
     interpolation across [lo, hi] *)
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:1 in
  for _ = 1 to 4 do
    Histogram.add h 5.
  done;
  check_float "p25" 2.5 (Histogram.quantile h 0.25);
  check_float "median" 5. (Histogram.quantile h 0.5);
  check_float "p100" 10. (Histogram.quantile h 1.)

let test_histogram_quantile_empty_raises () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Histogram.quantile h 0.5);
       false
     with Invalid_argument _ -> true)

let test_histogram_copy_independent () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add h 2.5;
  Histogram.add h (-1.);
  let c = Histogram.copy h in
  Histogram.add h 2.5;
  Histogram.add c 7.5;
  check_float "original bin 2" 2. (Histogram.bin_mass h 2);
  check_float "copy bin 2" 1. (Histogram.bin_mass c 2);
  check_float "copy bin 7" 1. (Histogram.bin_mass c 7);
  check_float "original bin 7" 0. (Histogram.bin_mass h 7);
  check_float "copy underflow" 1. (Histogram.underflow c)

(* merge must equal the histogram of the concatenated sample streams,
   bin for bin, including the out-of-range mass *)
let prop_histogram_merge_is_concat =
  QCheck.Test.make ~name:"merge == histogram of concatenated samples"
    ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 100) (float_range (-20.) 120.))
        (list_of_size (QCheck.Gen.int_range 0 100) (float_range (-20.) 120.)))
    (fun (xs, ys) ->
      let mk vals =
        let h = Histogram.create ~lo:0. ~hi:100. ~bins:16 in
        List.iter (Histogram.add h) vals;
        h
      in
      let m = Histogram.merge (mk xs) (mk ys) in
      let c = mk (xs @ ys) in
      let ok = ref (Histogram.underflow m = Histogram.underflow c
                    && Histogram.overflow m = Histogram.overflow c) in
      for i = 0 to Histogram.bin_count m - 1 do
        if Histogram.bin_mass m i <> Histogram.bin_mass c i then ok := false
      done;
      !ok)

let prop_histogram_quantile_monotone =
  QCheck.Test.make ~name:"histogram quantiles are monotone" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (float_range 0. 100.))
    (fun xs ->
      let h = Histogram.create ~lo:0. ~hi:100. ~bins:32 in
      List.iter (Histogram.add h) xs;
      let q25 = Histogram.quantile h 0.25 in
      let q50 = Histogram.quantile h 0.5 in
      let q75 = Histogram.quantile h 0.75 in
      q25 <= q50 && q50 <= q75)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "numerics"
    [
      ( "vec2",
        [
          Alcotest.test_case "ops" `Quick test_vec2_ops;
          Alcotest.test_case "rotate" `Quick test_vec2_rotate;
          Alcotest.test_case "normalize zero" `Quick test_vec2_normalize_zero;
          Alcotest.test_case "lerp" `Quick test_vec2_lerp;
        ] );
      ( "mat2",
        [
          Alcotest.test_case "basic" `Quick test_mat2_basic;
          Alcotest.test_case "eigen real" `Quick test_mat2_eigen_real;
          Alcotest.test_case "eigen complex" `Quick test_mat2_eigen_complex;
          Alcotest.test_case "eigenvector" `Quick test_mat2_eigenvector;
          Alcotest.test_case "char poly" `Quick test_mat2_char_poly;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "mul" `Quick test_poly_mul;
          Alcotest.test_case "quadratic real" `Quick test_poly_quadratic_roots;
          Alcotest.test_case "quadratic complex" `Quick test_poly_quadratic_complex;
          Alcotest.test_case "cubic" `Quick test_poly_cubic_roots;
          Alcotest.test_case "durand-kerner" `Quick test_poly_durand_kerner;
          Alcotest.test_case "hurwitz" `Quick test_poly_is_hurwitz;
        ] );
      qsuite "poly-props" [ prop_poly_roots_satisfy ];
      ( "roots",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "brent" `Quick test_brent;
          Alcotest.test_case "newton" `Quick test_newton;
          Alcotest.test_case "secant" `Quick test_secant;
          Alcotest.test_case "no bracket" `Quick test_no_bracket;
          Alcotest.test_case "bracket expansion" `Quick test_bracket_expansion;
          Alcotest.test_case "find all" `Quick test_find_all;
          Alcotest.test_case "fixed point" `Quick test_fixed_point;
        ] );
      qsuite "roots-props" [ prop_brent_inverse ];
      ( "ode",
        [
          Alcotest.test_case "exact decay" `Quick test_ode_exact_decay;
          Alcotest.test_case "convergence orders" `Quick test_ode_convergence_orders;
          Alcotest.test_case "adaptive harmonic" `Quick test_ode_adaptive_harmonic;
          Alcotest.test_case "monitor counts" `Quick test_ode_monitor_counts;
          Alcotest.test_case "event detection" `Quick test_ode_event_detection;
          Alcotest.test_case "event direction" `Quick test_ode_event_direction;
          Alcotest.test_case "nonterminal events" `Quick test_ode_nonterminal_events;
          Alcotest.test_case "state_at" `Quick test_ode_state_at;
          Alcotest.test_case "rkf45 step" `Quick test_rkf45_error_estimate;
        ] );
      qsuite "ode-props" [ prop_adaptive_energy ];
      ( "quad",
        [
          Alcotest.test_case "simpson" `Quick test_quad_simpson;
          Alcotest.test_case "adaptive" `Quick test_quad_adaptive;
          Alcotest.test_case "samples" `Quick test_quad_trapezoid_samples;
        ] );
      ( "interp",
        [
          Alcotest.test_case "linear" `Quick test_interp_linear;
          Alcotest.test_case "hermite" `Quick test_interp_hermite_endpoints;
          Alcotest.test_case "zero crossings" `Quick test_interp_zero_crossings;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "corr" `Quick test_stats_corr;
          Alcotest.test_case "rmse" `Quick test_stats_rmse;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "out of range" `Quick test_histogram_out_of_range;
          Alcotest.test_case "quantile" `Quick test_histogram_quantile;
          Alcotest.test_case "weighted + merge" `Quick
            test_histogram_weighted_and_merge;
          Alcotest.test_case "quantile all-underflow" `Quick
            test_histogram_quantile_all_underflow;
          Alcotest.test_case "quantile all-overflow" `Quick
            test_histogram_quantile_all_overflow;
          Alcotest.test_case "quantile single bin" `Quick
            test_histogram_quantile_single_bin;
          Alcotest.test_case "quantile empty raises" `Quick
            test_histogram_quantile_empty_raises;
          Alcotest.test_case "copy independent" `Quick
            test_histogram_copy_independent;
        ] );
      qsuite "histogram-props"
        [ prop_histogram_quantile_monotone; prop_histogram_merge_is_concat ];
      ( "series",
        [
          Alcotest.test_case "basic" `Quick test_series_basic;
          Alcotest.test_case "extrema" `Quick test_series_extrema;
          Alcotest.test_case "crossings" `Quick test_series_crossings;
          Alcotest.test_case "within" `Quick test_series_within;
          Alcotest.test_case "monotone guard" `Quick test_series_monotone_guard;
        ] );
    ]
